package unmasque_test

// One benchmark per paper table/figure (experiments E1–E11 of
// DESIGN.md). Benchmarks run the quick-scale variants so that
// `go test -bench=. -benchmem` finishes in minutes; the full
// paper-scale runs are produced by cmd/benchrunner. Each benchmark
// reports the domain metric (extraction time per query) alongside the
// usual ns/op.

import (
	"io"
	"testing"

	"unmasque/internal/bench"
)

func quickOpts() bench.Options {
	opt := bench.DefaultOptions()
	opt.Quick = true
	return opt
}

// BenchmarkFig8QREComparison regenerates Figure 8 (UNMASQUE vs the
// REGAL baseline on RQ1–RQ11).
func BenchmarkFig8QREComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig8(io.Discard, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var uTotal, rTotal float64
		for _, r := range rows {
			uTotal += r.Unmasque.Seconds()
			rTotal += r.Regal.Seconds()
		}
		b.ReportMetric(uTotal/float64(len(rows))*1000, "unmasque-ms/query")
		b.ReportMetric(rTotal/float64(len(rows))*1000, "regal-ms/query")
	}
}

// BenchmarkFig9TPCHExtraction regenerates Figure 9 (12 TPC-H hidden
// queries with the module breakdown).
func BenchmarkFig9TPCHExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig9(io.Discard, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var total, minimizer float64
		for _, r := range rows {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.Name, r.Err)
			}
			total += r.Total.Seconds()
			minimizer += (r.Sampling + r.Partitioning).Seconds()
		}
		b.ReportMetric(total/float64(len(rows))*1000, "ms/query")
		b.ReportMetric(minimizer/total*100, "minimizer-%")
	}
}

// BenchmarkFig10JOBExtraction regenerates Figure 10 (11 JOB queries,
// 7–12 joins each).
func BenchmarkFig10JOBExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig10(io.Discard, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, r := range rows {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.Name, r.Err)
			}
			total += r.Total.Seconds()
		}
		b.ReportMetric(total/float64(len(rows))*1000, "ms/query")
	}
}

// BenchmarkFig11ScalingProfile regenerates Figure 11 (Q5 extraction
// vs native execution across scales).
func BenchmarkFig11ScalingProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig11(io.Discard, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(last.Extraction.Seconds()*1000, "extract-ms@top")
		b.ReportMetric(last.Native.Seconds()*1000, "native-ms@top")
	}
}

// BenchmarkSchemaScaling regenerates the Section 6.2 wide-catalog
// from-clause experiment (E5).
func BenchmarkSchemaScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.SchemaScale(io.Discard, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Elapsed.Seconds()*1000, "fromclause-ms")
	}
}

// BenchmarkEnkiConversion regenerates the Figure 12 experiment (E6).
func BenchmarkEnkiConversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Enki(io.Discard, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportImperative(b, rows)
	}
}

// BenchmarkWilosConversion regenerates Table 3 (E7).
func BenchmarkWilosConversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Wilos(io.Discard, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportImperative(b, rows)
	}
}

// BenchmarkRubisConversion regenerates the RUBiS experiment (E8).
func BenchmarkRubisConversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Rubis(io.Discard, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportImperative(b, rows)
	}
}

func reportImperative(b *testing.B, rows []bench.QueryTiming) {
	b.Helper()
	var total float64
	for _, r := range rows {
		if r.Err != nil {
			b.Fatalf("%s: %v", r.Name, r.Err)
		}
		total += r.Total.Seconds()
	}
	b.ReportMetric(total/float64(len(rows))*1000, "ms/function")
}

// BenchmarkTPCDSExtraction regenerates the TPC-DS experiment (E9).
func BenchmarkTPCDSExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.TPCDS(io.Discard, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportImperative(b, rows)
	}
}

// BenchmarkAblationMinimizer regenerates the minimizer design-choice
// study (E10).
func BenchmarkAblationMinimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Ablation(io.Discard, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var largest, smallest float64
		var nL, nS int
		for _, r := range rows {
			if !r.Sampling {
				continue
			}
			switch r.Policy {
			case "largest":
				largest += r.Minimizer.Seconds()
				nL++
			case "smallest":
				smallest += r.Minimizer.Seconds()
				nS++
			}
		}
		if nL > 0 && nS > 0 {
			b.ReportMetric(largest/float64(nL)*1000, "largest-ms")
			b.ReportMetric(smallest/float64(nS)*1000, "smallest-ms")
		}
	}
}

// BenchmarkHavingExtraction regenerates the Section 7 exercise (E11).
func BenchmarkHavingExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Having(io.Discard, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportImperative(b, rows)
	}
}
