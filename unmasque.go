// Package unmasque is the public API of the UNMASQUE reproduction —
// an active-learning extractor that unmasks the SQL query hidden
// inside a black-box application ("Shedding Light on Opaque
// Application Queries", SIGMOD 2021).
//
// The package re-exports the embedded relational engine (sqldb), the
// opaque-application abstractions (app), the SQL dialect parser, and
// the extraction pipeline (core), so downstream users interact with a
// single import:
//
//	db := unmasque.NewDatabase()
//	// … create tables, load data …
//	exe := unmasque.MustSQLExecutable("legacy-app", hiddenSQL)
//	ext, err := unmasque.Extract(exe, db, unmasque.DefaultConfig())
//	fmt.Println(ext.SQL)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured evaluation record.
package unmasque

import (
	"context"
	"io"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/obs"
	"unmasque/internal/regal"
	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
)

// Engine types.
type (
	// Database is the embedded in-memory relational engine instance.
	Database = sqldb.Database
	// TableSchema defines one table.
	TableSchema = sqldb.TableSchema
	// Column defines one column, including domain metadata used by
	// extraction probing.
	Column = sqldb.Column
	// ForeignKey declares a key linkage (an edge of the schema graph).
	ForeignKey = sqldb.ForeignKey
	// Value is a single SQL value.
	Value = sqldb.Value
	// Row is one tuple.
	Row = sqldb.Row
	// Result is the output of a query or application execution.
	Result = sqldb.Result
	// SelectStmt is a parsed single-block query.
	SelectStmt = sqldb.SelectStmt
)

// Application types.
type (
	// Executable is the black-box application contract: run against a
	// database, observe the result.
	Executable = app.Executable
	// SQLExecutable hides an obfuscated SQL query.
	SQLExecutable = app.SQLExecutable
	// ImperativeExecutable wraps imperative application code.
	ImperativeExecutable = app.ImperativeExecutable
	// ImperativeFunc is the hidden imperative routine signature.
	ImperativeFunc = app.ImperativeFunc
)

// Extraction types.
type (
	// Config tunes the extraction pipeline.
	Config = core.Config
	// Extraction is the pipeline output: the unmasked query plus all
	// intermediate artifacts and per-module statistics.
	Extraction = core.Extraction
	// Stats is the per-module timing profile.
	Stats = core.Stats
	// FilterPredicate is one extracted filter.
	FilterPredicate = core.FilterPredicate
	// HavingPredicate is one extracted having constraint.
	HavingPredicate = core.HavingPredicate
	// Projection describes one extracted output column.
	Projection = core.Projection
)

// Value type tags.
const (
	TInt   = sqldb.TInt
	TFloat = sqldb.TFloat
	TText  = sqldb.TText
	TDate  = sqldb.TDate
	TBool  = sqldb.TBool
)

// NewDatabase creates an empty database.
func NewDatabase() *Database { return sqldb.NewDatabase() }

// Value constructors.
var (
	NewInt   = sqldb.NewInt
	NewFloat = sqldb.NewFloat
	NewText  = sqldb.NewText
	NewBool  = sqldb.NewBool
	NewDate  = sqldb.NewDate
	MustDate = sqldb.MustDate
	NewNull  = sqldb.NewNull
)

// NewSQLExecutable builds an application hiding the given SQL query
// in obfuscated form; the query is validated eagerly.
func NewSQLExecutable(name, sql string) (*SQLExecutable, error) {
	return app.NewSQLExecutable(name, sql)
}

// MustSQLExecutable is NewSQLExecutable for statically known queries.
func MustSQLExecutable(name, sql string) *SQLExecutable {
	return app.MustSQLExecutable(name, sql)
}

// NewImperativeExecutable wraps imperative application code;
// groundTruthSQL may be empty.
func NewImperativeExecutable(name string, fn ImperativeFunc, groundTruthSQL string) *ImperativeExecutable {
	return app.NewImperativeExecutable(name, fn, groundTruthSQL)
}

// DefaultConfig returns the paper-faithful pipeline parameters.
func DefaultConfig() Config { return core.DefaultConfig() }

// Extract runs the UNMASQUE pipeline: given a black-box executable
// and a database instance on which it produces a populated result, it
// recovers the hidden query.
func Extract(exe Executable, di *Database, cfg Config) (*Extraction, error) {
	return core.Extract(exe, di, cfg)
}

// ExtractContext is Extract under a caller-supplied context: when ctx
// is cancelled or its deadline expires, the pipeline aborts between
// probes and returns an error satisfying errors.Is against ctx.Err().
func ExtractContext(ctx context.Context, exe Executable, di *Database, cfg Config) (*Extraction, error) {
	return core.ExtractContext(ctx, exe, di, cfg)
}

// Parse parses a SQL statement in the supported dialect.
func Parse(sql string) (*SelectStmt, error) { return sqlparser.Parse(sql) }

// WriteResultCSV dumps a query/application result as CSV. Database
// CSV import/export is available as methods on Database (LoadCSV,
// WriteCSV).
var WriteResultCSV = sqldb.WriteResultCSV

// MustParse parses or panics; for statically known queries.
func MustParse(sql string) *SelectStmt { return sqlparser.MustParse(sql) }

// Observability types (wire them into Config.Tracer / Config.Ledger /
// Config.Metrics to trace an extraction).
type (
	// Tracer records the extraction's span tree; the finished tree is
	// returned on Extraction.Trace.
	Tracer = obs.Tracer
	// Ledger records one event per executable invocation or cache hit.
	Ledger = obs.Ledger
	// Metrics is the counters/gauges/histograms registry (expvar-
	// publishable).
	Metrics = obs.Metrics
	// SpanEvent is one flattened span of an exported trace.
	SpanEvent = obs.SpanEvent
	// ProbeEvent is one probe-ledger record.
	ProbeEvent = obs.ProbeEvent
	// RunHeader is the first line of a serialized trace.
	RunHeader = obs.RunHeader
	// TraceSummary is the tally returned by ValidateTrace.
	TraceSummary = obs.TraceSummary
)

// NewTracer creates a span tracer rooted at a span with the given name.
func NewTracer(name string) *Tracer { return obs.NewTracer(name) }

// NewLedger creates an empty probe ledger.
func NewLedger() *Ledger { return obs.NewLedger() }

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// WriteTrace serializes a recorded extraction — run header, span tree,
// canonically ordered probe ledger — as JSONL.
func WriteTrace(w io.Writer, h RunHeader, spans []SpanEvent, l *Ledger) error {
	return obs.WriteTrace(w, h, spans, l)
}

// ValidateTrace schema-checks a serialized trace and tallies it.
func ValidateTrace(r io.Reader) (*TraceSummary, error) { return obs.Validate(r) }

// QRE baseline (the paper's comparison system).
type (
	// RegalConfig caps the REGAL-style reverse-engineering search.
	RegalConfig = regal.Config
	// RegalOutput is the baseline's outcome.
	RegalOutput = regal.Output
)

// RegalReverseEngineer runs the REGAL-style QRE baseline: find a
// candidate query that is instance-equivalent to the given result on
// the given database.
func RegalReverseEngineer(db *Database, res *Result, cfg RegalConfig) *RegalOutput {
	return regal.ReverseEngineer(db, res, cfg)
}

// DefaultRegalConfig mirrors a generously provisioned REGAL run.
func DefaultRegalConfig() RegalConfig { return regal.DefaultConfig() }
