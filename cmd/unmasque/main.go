// Command unmasque extracts the hidden query of a registered opaque
// application and prints the recovered SQL.
//
// The repository's workloads act as the application registry: each
// hosts black-box executables (obfuscated SQL or imperative code)
// over its own database.
//
// Usage:
//
//	unmasque -list                          # list all applications
//	unmasque -app tpch/Q3                   # unmask one application
//	unmasque -app enki/posts_by_tag -stats  # with the timing profile
//	unmasque -app tpch/H1 -having           # Section 7 pipeline
//	unmasque -app tpch/Q3 -trace out.jsonl  # record the probe trace
//	unmasque -app tpch/Q3 -metrics          # print the metrics registry
//	unmasque -app tpch/Q3 -chrome t.json    # Chrome trace-event export
//	unmasque -to-chrome out.jsonl           # convert a recorded trace
//	unmasque -validate-trace out.jsonl      # schema-check a trace file
//	unmasque -validate-prom scrape.prom     # check a /metrics scrape
//	unmasque -validate-stream capture.sse   # check an SSE stream capture
//	unmasque -app tpch/Q3 -store disk       # probe from paged heap files
//	unmasque -app tpch/Q3 -cache-dir d      # durable cross-run probe cache
//	unmasque -store-selfcheck /tmp/sc       # storage crash-recovery check
//
// The -chrome / -to-chrome outputs open directly in about://tracing
// and https://ui.perfetto.dev.
package main

import (
	"context"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr server
	"os"
	"path/filepath"
	"strings"
	"time"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/obs"
	"unmasque/internal/obs/telemetry"
	"unmasque/internal/sqldb"
	"unmasque/internal/storage"
	"unmasque/internal/workloads/registry"
)

// obsFlags holds the observability command-line surface.
type obsFlags struct {
	tracePath  string // -trace: write the JSONL probe trace here
	chromePath string // -chrome: write the Chrome trace-event export here
	metrics    bool   // -metrics: print the metrics registry after extraction
	ledger     *obs.Ledger
	registry   *obs.Metrics
}

// attach wires the requested observability hooks into the pipeline
// config.
func (o *obsFlags) attach(cfg *core.Config) {
	if o.tracePath != "" || o.chromePath != "" {
		cfg.Tracer = obs.NewTracer("extract")
		o.ledger = obs.NewLedger()
		cfg.Ledger = o.ledger
	}
	if o.metrics {
		o.registry = obs.NewMetrics()
		cfg.Metrics = o.registry
		// Scrapeable at /debug/vars when -debug-addr is set.
		o.registry.Publish("unmasque")
	}
}

// finish persists the trace and prints the metrics. It runs on failed
// extractions too — a trace of a failed run (open spans, the probes up
// to the fault) is exactly what debugging needs — so ext may be nil.
func (o *obsFlags) finish(appName string, cfg core.Config, ext *core.Extraction) error {
	if o.tracePath != "" || o.chromePath != "" {
		spans := cfg.Tracer.Events() // ext==nil: tree up to the failure
		if ext != nil {
			spans = ext.Trace
		}
		header := obs.RunHeader{App: appName, Workers: cfg.Workers, Seed: cfg.Seed}
		if ext != nil {
			header.Workers = ext.Stats.Workers
		}
		if o.tracePath != "" {
			f, err := os.Create(o.tracePath)
			if err != nil {
				return err
			}
			if err := obs.WriteTrace(f, header, spans, o.ledger); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("-- trace: %d spans, %d probe events -> %s\n", len(spans), o.ledger.Len(), o.tracePath)
		}
		if o.chromePath != "" {
			f, err := os.Create(o.chromePath)
			if err != nil {
				return err
			}
			if err := telemetry.WriteCatapult(f, header, spans, o.ledger.Events()); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("-- chrome trace -> %s (open in about://tracing or ui.perfetto.dev)\n", o.chromePath)
		}
	}
	if o.metrics {
		fmt.Printf("-- metrics: %s\n", o.registry.String())
	}
	return nil
}

// startDebugServer serves expvar (/debug/vars) and pprof
// (/debug/pprof) for the lifetime of the extraction. The returned
// stop function shuts the server down gracefully; startup errors (a
// busy port, a malformed address) surface on stderr rather than being
// silently dropped with the goroutine.
func startDebugServer(addr string) (stop func()) {
	srv := &http.Server{Addr: addr, Handler: http.DefaultServeMux}
	errc := make(chan error, 1)
	go func() {
		err := srv.ListenAndServe()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
		}
		errc <- err
	}()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "debug server shutdown: %v\n", err)
		}
		<-errc // wait for ListenAndServe to return before exiting
	}
}

// validateTrace schema-checks a recorded trace file and prints its
// summary.
func validateTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sum, err := obs.Validate(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid (%s)\n", path, sum)
	return nil
}

// validatePromFile checks a captured /metrics?format=prom scrape
// against the exposition-format invariants.
func validatePromFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fams, err := telemetry.ParsePromText(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var samples int
	for _, fam := range fams {
		samples += len(fam.Samples)
	}
	fmt.Printf("%s: valid (%d families, %d samples)\n", path, len(fams), samples)
	return nil
}

// validateStreamFile checks a captured SSE trace stream (or raw JSONL
// frame log) against the live-frame schema.
func validateStreamFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sum, err := obs.ValidateStream(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid (%s)\n", path, sum)
	return nil
}

// traceToChrome converts a recorded JSONL trace into Chrome
// trace-event JSON at outPath (default: inPath + ".chrome.json").
func traceToChrome(inPath, outPath string) error {
	if outPath == "" {
		outPath = inPath + ".chrome.json"
	}
	in, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := telemetry.CatapultFromTrace(out, in); err != nil {
		out.Close()
		return fmt.Errorf("%s: %w", inPath, err)
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("%s -> %s (open in about://tracing or ui.perfetto.dev)\n", inPath, outPath)
	return nil
}

// storeFlags holds the storage-tier command-line surface.
type storeFlags struct {
	mode     string // -store: mem | disk
	dir      string // -store-dir: heap-file directory for -store disk
	cacheDir string // -cache-dir: durable cross-run probe cache
}

// apply rehouses db on the paged disk tier (-store disk) and attaches
// the durable probe cache (-cache-dir) under the namespace ns. The
// returned database replaces db for the extraction; cleanup must run
// after it finishes — it closes the store that serves the database's
// lazy page faults, closes the probe cache, and removes an implicit
// temp store directory.
func (sf storeFlags) apply(db *sqldb.Database, cfg *core.Config, ns string) (*sqldb.Database, func(), error) {
	cleanup := func() {}
	switch sf.mode {
	case "", "mem":
	case "disk":
		dir := sf.dir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "unmasque-store-*")
			if err != nil {
				return nil, nil, err
			}
			dir = tmp
			cleanup = func() { os.RemoveAll(tmp) }
		}
		st, err := storage.Open(dir, storage.Options{})
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("opening disk store: %w", err)
		}
		if err := st.BulkLoad(db); err != nil {
			st.Close()
			cleanup()
			return nil, nil, fmt.Errorf("loading disk store: %w", err)
		}
		disk, err := st.OpenDatabase()
		if err != nil {
			st.Close()
			cleanup()
			return nil, nil, fmt.Errorf("opening disk-backed database: %w", err)
		}
		db = disk
		rm := cleanup
		cleanup = func() {
			if err := st.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "disk store: %v\n", err)
			}
			rm()
		}
	default:
		return nil, nil, fmt.Errorf("unknown -store mode %q (want mem or disk)", sf.mode)
	}
	if sf.cacheDir != "" {
		pc, err := storage.OpenProbeCache(filepath.Join(sf.cacheDir, "probecache.log"))
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("opening probe cache: %w", err)
		}
		cfg.SharedCache = pc.Namespace(ns)
		prev := cleanup
		cleanup = func() {
			if err := pc.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "probe cache: %v\n", err)
			}
			prev()
		}
	}
	return db, cleanup, nil
}

// runApp unmasks one registered application.
func runApp(appName string, seed int64, having, noChecker, stats bool, bounded int, execMode string, sf storeFlags, ob *obsFlags) error {
	exe, db, err := registry.Build(appName, seed)
	if err != nil {
		return fmt.Errorf("setup: %w", err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.ExtractHaving = having || strings.Contains(appName, "/H")
	cfg.SkipChecker = noChecker
	cfg.BoundedCheck = bounded
	cfg.ExecMode = execMode
	db, cleanup, err := sf.apply(db, &cfg, storage.AppNamespace(appName, seed))
	if err != nil {
		return err
	}
	defer cleanup()
	ob.attach(&cfg)

	ext, err := core.Extract(exe, db, cfg)
	if ferr := ob.finish(appName, cfg, ext); ferr != nil {
		fmt.Fprintf(os.Stderr, "observability: %v\n", ferr)
	}
	if err != nil {
		return fmt.Errorf("extraction failed: %w", err)
	}
	fmt.Printf("-- unmasked query of %s (%s)\n%s\n", appName, ext.Summary(), ext.SQL)
	if ext.CheckerVerified {
		fmt.Println("-- extraction verified by randomized and targeted instance checks")
	}
	if stats {
		fmt.Printf("-- profile: %s\n", ext.Stats.String())
	}
	return nil
}

// runAdhoc hides an arbitrary user query inside an executable over
// the chosen workload database and unmasks it — a self-demo of the
// full loop on any EQC query the user types.
func runAdhoc(workload, sql string, seed int64, having, noChecker, stats bool, bounded int, execMode string, sf storeFlags, ob *obsFlags) error {
	db, plant, err := registry.AdhocDatabase(workload, seed)
	if err != nil {
		return err
	}
	if err := plant(map[string]string{"adhoc": sql}); err != nil {
		return fmt.Errorf("witness planting: %w (does the query have satisfiable predicates?)", err)
	}
	exe, err := app.NewSQLExecutable("adhoc", sql)
	if err != nil {
		return fmt.Errorf("hidden query does not parse: %w", err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.ExtractHaving = having
	cfg.SkipChecker = noChecker
	cfg.BoundedCheck = bounded
	cfg.ExecMode = execMode
	// The cache namespace must identify the executable; ad-hoc SQL is
	// the executable, so its digest (plus the workload whose generated
	// instance it runs over) is the identity.
	sum := sha256.Sum256([]byte(sql))
	ns := storage.AppNamespace(fmt.Sprintf("adhoc/%s/%x", workload, sum[:12]), seed)
	db, cleanup, err := sf.apply(db, &cfg, ns)
	if err != nil {
		return err
	}
	defer cleanup()
	ob.attach(&cfg)
	ext, err := core.Extract(exe, db, cfg)
	if ferr := ob.finish(exe.Name(), cfg, ext); ferr != nil {
		fmt.Fprintf(os.Stderr, "observability: %v\n", ferr)
	}
	if err != nil {
		return fmt.Errorf("extraction failed: %w", err)
	}
	fmt.Printf("-- unmasked (%s)\n%s\n", ext.Summary(), ext.SQL)
	if stats {
		fmt.Printf("-- profile: %s\n", ext.Stats.String())
	}
	return nil
}

func main() {
	var (
		appName    = flag.String("app", "", "registered application to unmask, e.g. tpch/Q3")
		adhocSQL   = flag.String("sql", "", "ad-hoc hidden query to extract against -workload")
		workload   = flag.String("workload", "tpch", "database for -sql (tpch|tpcds|job|enki|wilos|rubis)")
		list       = flag.Bool("list", false, "list registered applications")
		stats      = flag.Bool("stats", false, "print the per-module timing profile")
		having     = flag.Bool("having", false, "use the Section 7 pipeline (having extraction)")
		seed       = flag.Int64("seed", 1, "data generation / extraction seed")
		noChecker  = flag.Bool("no-checker", false, "skip the final verification module")
		bounded    = flag.Int("bounded-check", 0, "mutant-prune the checker with a bounded equivalence proof at k rows/table (0 = classical suite)")
		execMode   = flag.String("exec", "", "sqldb execution engine for probes: vector (default) or tree (the differential-testing oracle)")
		storeMode  = flag.String("store", "mem", "table storage backend: mem (resident rows) or disk (paged heap files behind a buffer pool)")
		storeDir   = flag.String("store-dir", "", "heap-file directory for -store disk (default: a temp dir removed on exit)")
		cacheDir   = flag.String("cache-dir", "", "durable probe-cache directory; repeat extractions of the same app+seed reuse recorded application outcomes")
		selfCheck  = flag.String("store-selfcheck", "", "run the storage crash-recovery self-check in this directory and exit")
		tracePath  = flag.String("trace", "", "write the probe trace (run header, spans, ledger) as JSONL to this file")
		chromePath = flag.String("chrome", "", "write the Chrome trace-event export to this file (with -app/-sql, or as -to-chrome output)")
		metrics    = flag.Bool("metrics", false, "print the metrics registry after extraction")
		debugAddr  = flag.String("debug-addr", "", "serve expvar and pprof on this address during extraction, e.g. localhost:6060")
		checkFile  = flag.String("validate-trace", "", "schema-check a previously recorded trace file and exit")
		promFile   = flag.String("validate-prom", "", "check a captured Prometheus /metrics scrape and exit")
		streamFile = flag.String("validate-stream", "", "check a captured SSE trace stream and exit")
		toChrome   = flag.String("to-chrome", "", "convert a recorded JSONL trace to Chrome trace-event JSON and exit")
	)
	flag.Parse()

	if *checkFile != "" || *promFile != "" || *streamFile != "" || *toChrome != "" {
		fail := func(err error) {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		if *checkFile != "" {
			if err := validateTrace(*checkFile); err != nil {
				fail(err)
			}
		}
		if *promFile != "" {
			if err := validatePromFile(*promFile); err != nil {
				fail(err)
			}
		}
		if *streamFile != "" {
			if err := validateStreamFile(*streamFile); err != nil {
				fail(err)
			}
		}
		if *toChrome != "" {
			if err := traceToChrome(*toChrome, *chromePath); err != nil {
				fail(err)
			}
		}
		return
	}
	if *selfCheck != "" {
		if err := storage.SelfCheck(*selfCheck); err != nil {
			fmt.Fprintf(os.Stderr, "storage self-check: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("storage self-check: ok (torn-WAL, pre-commit and mid-apply crashes all recover)")
		return
	}
	if *debugAddr != "" {
		stop := startDebugServer(*debugAddr)
		defer stop()
	}
	ob := &obsFlags{tracePath: *tracePath, chromePath: *chromePath, metrics: *metrics}
	sf := storeFlags{mode: *storeMode, dir: *storeDir, cacheDir: *cacheDir}

	if *adhocSQL != "" {
		if err := runAdhoc(*workload, *adhocSQL, *seed, *having, *noChecker, *stats, *bounded, *execMode, sf, ob); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list || *appName == "" {
		fmt.Println("registered opaque applications:")
		for _, n := range registry.Names() {
			fmt.Println("  " + n)
		}
		if *appName == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nusage: unmasque -app <name> [-stats] [-having]")
			os.Exit(2)
		}
		return
	}

	if _, ok := registry.Lookup(*appName); !ok {
		fmt.Fprintf(os.Stderr, "unknown application %q (try -list)\n", *appName)
		os.Exit(2)
	}
	if err := runApp(*appName, *seed, *having, *noChecker, *stats, *bounded, *execMode, sf, ob); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}
