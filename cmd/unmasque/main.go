// Command unmasque extracts the hidden query of a registered opaque
// application and prints the recovered SQL.
//
// The repository's workloads act as the application registry: each
// hosts black-box executables (obfuscated SQL or imperative code)
// over its own database.
//
// Usage:
//
//	unmasque -list                          # list all applications
//	unmasque -app tpch/Q3                   # unmask one application
//	unmasque -app enki/posts_by_tag -stats  # with the timing profile
//	unmasque -app tpch/H1 -having           # Section 7 pipeline
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/sqldb"
	"unmasque/internal/workloads/enki"
	"unmasque/internal/workloads/job"
	"unmasque/internal/workloads/rubis"
	"unmasque/internal/workloads/tpcds"
	"unmasque/internal/workloads/tpch"
	"unmasque/internal/workloads/wilos"
)

// runAdhoc hides an arbitrary user query inside an executable over
// the chosen workload database and unmasks it — a self-demo of the
// full loop on any EQC query the user types.
func runAdhoc(workload, sql string, seed int64, having, noChecker, stats bool) error {
	var db *sqldb.Database
	var plant func(map[string]string) error
	switch workload {
	case "tpch":
		db = tpch.NewDatabase(tpch.ScaleTiny*8, seed)
		plant = func(q map[string]string) error { return tpch.PlantWitnesses(db, q) }
	case "tpcds":
		db = tpcds.NewDatabase(tpcds.ScaleTiny, seed)
		plant = func(q map[string]string) error { return tpcds.PlantWitnesses(db, q) }
	case "job":
		db = job.NewDatabase(job.ScaleTiny, seed)
		plant = func(q map[string]string) error { return job.PlantWitnesses(db, q) }
	case "enki":
		db = enki.NewDatabase(seed)
		plant = func(map[string]string) error { return nil }
	case "wilos":
		db = wilos.NewDatabase(seed)
		plant = func(map[string]string) error { return nil }
	case "rubis":
		db = rubis.NewDatabase(seed)
		plant = func(map[string]string) error { return nil }
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}
	if err := plant(map[string]string{"adhoc": sql}); err != nil {
		return fmt.Errorf("witness planting: %w (does the query have satisfiable predicates?)", err)
	}
	exe, err := app.NewSQLExecutable("adhoc", sql)
	if err != nil {
		return fmt.Errorf("hidden query does not parse: %w", err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.ExtractHaving = having
	cfg.SkipChecker = noChecker
	ext, err := core.Extract(exe, db, cfg)
	if err != nil {
		return fmt.Errorf("extraction failed: %w", err)
	}
	fmt.Printf("-- unmasked (%s)\n%s\n", ext.Summary(), ext.SQL)
	if stats {
		fmt.Printf("-- profile: %s\n", ext.Stats.String())
	}
	return nil
}

// registryEntry lazily builds the database and executable of one
// registered application.
type registryEntry struct {
	build func(seed int64) (app.Executable, *sqldb.Database, error)
}

func registry() map[string]registryEntry {
	reg := map[string]registryEntry{}

	addSQL := func(prefix string, queries map[string]string, mkDB func(seed int64, q map[string]string) (*sqldb.Database, error)) {
		for name, sql := range queries {
			name, sql := name, sql
			reg[prefix+"/"+name] = registryEntry{build: func(seed int64) (app.Executable, *sqldb.Database, error) {
				db, err := mkDB(seed, map[string]string{name: sql})
				if err != nil {
					return nil, nil, err
				}
				exe, err := app.NewSQLExecutable(prefix+"/"+name, sql)
				return exe, db, err
			}}
		}
	}
	addSQL("tpch", tpch.HiddenQueries(), func(seed int64, q map[string]string) (*sqldb.Database, error) {
		db := tpch.NewDatabase(tpch.ScaleTiny*8, seed)
		return db, tpch.PlantWitnesses(db, q)
	})
	addSQL("tpch", tpch.HavingQueries(), func(seed int64, q map[string]string) (*sqldb.Database, error) {
		db := tpch.NewDatabase(tpch.ScaleTiny*8, seed)
		return db, tpch.PlantWitnesses(db, q)
	})
	addSQL("tpcds", tpcds.HiddenQueries(), func(seed int64, q map[string]string) (*sqldb.Database, error) {
		db := tpcds.NewDatabase(tpcds.ScaleTiny, seed)
		return db, tpcds.PlantWitnesses(db, q)
	})
	addSQL("job", job.HiddenQueries(), func(seed int64, q map[string]string) (*sqldb.Database, error) {
		db := job.NewDatabase(job.ScaleTiny, seed)
		return db, job.PlantWitnesses(db, q)
	})

	for _, c := range enki.Commands() {
		c := c
		reg["enki/"+c.Name] = registryEntry{build: func(seed int64) (app.Executable, *sqldb.Database, error) {
			return c.Exe, enki.NewDatabase(seed), nil
		}}
	}
	for _, f := range wilos.Functions() {
		f := f
		reg["wilos/"+f.Name] = registryEntry{build: func(seed int64) (app.Executable, *sqldb.Database, error) {
			return f.Exe, wilos.NewDatabase(seed), nil
		}}
	}
	for _, s := range rubis.Servlets() {
		s := s
		reg["rubis/"+s.Name] = registryEntry{build: func(seed int64) (app.Executable, *sqldb.Database, error) {
			return s.Exe, rubis.NewDatabase(seed), nil
		}}
	}
	return reg
}

func main() {
	var (
		appName   = flag.String("app", "", "registered application to unmask, e.g. tpch/Q3")
		adhocSQL  = flag.String("sql", "", "ad-hoc hidden query to extract against -workload")
		workload  = flag.String("workload", "tpch", "database for -sql (tpch|tpcds|job|enki|wilos|rubis)")
		list      = flag.Bool("list", false, "list registered applications")
		stats     = flag.Bool("stats", false, "print the per-module timing profile")
		having    = flag.Bool("having", false, "use the Section 7 pipeline (having extraction)")
		seed      = flag.Int64("seed", 1, "data generation / extraction seed")
		noChecker = flag.Bool("no-checker", false, "skip the final verification module")
	)
	flag.Parse()

	reg := registry()
	if *adhocSQL != "" {
		if err := runAdhoc(*workload, *adhocSQL, *seed, *having, *noChecker, *stats); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list || *appName == "" {
		names := make([]string, 0, len(reg))
		for n := range reg {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("registered opaque applications:")
		for _, n := range names {
			fmt.Println("  " + n)
		}
		if *appName == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nusage: unmasque -app <name> [-stats] [-having]")
			os.Exit(2)
		}
		return
	}

	entry, ok := reg[*appName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown application %q (try -list)\n", *appName)
		os.Exit(2)
	}
	exe, db, err := entry.build(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "setup: %v\n", err)
		os.Exit(1)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.ExtractHaving = *having || strings.Contains(*appName, "/H")
	cfg.SkipChecker = *noChecker

	ext, err := core.Extract(exe, db, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "extraction failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("-- unmasked query of %s (%s)\n%s\n", *appName, ext.Summary(), ext.SQL)
	if ext.CheckerVerified {
		fmt.Println("-- extraction verified by randomized and targeted instance checks")
	}
	if *stats {
		fmt.Printf("-- profile: %s\n", ext.Stats.String())
	}
}
