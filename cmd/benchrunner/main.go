// Command benchrunner regenerates the paper's tables and figures
// (the per-experiment index is in DESIGN.md; measured outputs are
// recorded in EXPERIMENTS.md).
//
// Usage:
//
//	benchrunner -exp all            # every experiment, paper scales
//	benchrunner -exp fig9 -quick    # one experiment, reduced scale
//	benchrunner -exp equiv -quick -snapshot .   # also write BENCH_equiv.json
//
// Experiments: fig8, fig9, fig10, fig11, schemascale, enki, wilos,
// rubis, tpcds, ablation, having, parallel, equiv, sqldb, trace,
// service, obs, storage, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"unmasque/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (fig8|fig9|fig10|fig11|schemascale|enki|wilos|rubis|tpcds|ablation|having|parallel|equiv|sqldb|trace|service|obs|storage|all)")
		quick    = flag.Bool("quick", false, "reduced scales and budgets (~1 minute total)")
		seed     = flag.Int64("seed", 1, "generation and extraction seed")
		snapshot = flag.String("snapshot", "", "directory to write BENCH_<exp>.json row snapshots into")
	)
	flag.Parse()

	opt := bench.DefaultOptions()
	opt.Quick = *quick
	opt.Seed = *seed

	// Each runner renders its table on stdout and returns its typed
	// rows (nil for experiments without a row form) for -snapshot.
	runners := map[string]func() (any, error){
		"fig8":        func() (any, error) { return bench.Fig8(os.Stdout, opt) },
		"fig9":        func() (any, error) { return bench.Fig9(os.Stdout, opt) },
		"fig10":       func() (any, error) { return bench.Fig10(os.Stdout, opt) },
		"fig11":       func() (any, error) { return bench.Fig11(os.Stdout, opt) },
		"schemascale": func() (any, error) { return bench.SchemaScale(os.Stdout, opt) },
		"enki":        func() (any, error) { return bench.Enki(os.Stdout, opt) },
		"wilos":       func() (any, error) { return bench.Wilos(os.Stdout, opt) },
		"rubis":       func() (any, error) { return bench.Rubis(os.Stdout, opt) },
		"tpcds":       func() (any, error) { return bench.TPCDS(os.Stdout, opt) },
		"ablation":    func() (any, error) { return bench.Ablation(os.Stdout, opt) },
		"having":      func() (any, error) { return bench.Having(os.Stdout, opt) },
		"parallel":    func() (any, error) { return bench.Parallel(os.Stdout, opt) },
		"equiv":       func() (any, error) { return bench.Equiv(os.Stdout, opt) },
		"sqldb":       func() (any, error) { return bench.SqldbEngine(os.Stdout, opt) },
		"trace":       func() (any, error) { return bench.TraceProfile(os.Stdout, opt) },
		"service":     func() (any, error) { return bench.Service(os.Stdout, opt) },
		"obs":         func() (any, error) { return bench.Obs(os.Stdout, opt) },
		"storage": func() (any, error) {
			// The disk-tier experiment needs a scratch directory for
			// heap files and the probe-cache log; bench itself does no
			// file I/O (GL010), so the temp dir is owned here.
			scratch, err := os.MkdirTemp("", "unmasque-bench-storage-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(scratch)
			sopt := opt
			sopt.ScratchDir = scratch
			return bench.Storage(os.Stdout, sopt)
		},
	}
	order := []string{"fig8", "fig9", "fig10", "fig11", "schemascale", "enki", "wilos", "rubis", "tpcds", "ablation", "having", "parallel", "equiv", "sqldb", "trace", "service", "obs", "storage"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s, all\n", name, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}
	run(selected, runners, opt, *snapshot)
}

// writeSnapshot places one experiment's EncodeSnapshot output at path.
func writeSnapshot(path, experiment string, opt bench.Options, rows any) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.EncodeSnapshot(f, experiment, opt, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(selected []string, runners map[string]func() (any, error), opt bench.Options, snapshot string) {
	for _, name := range selected {
		rows, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
		if snapshot != "" && rows != nil {
			path := filepath.Join(snapshot, "BENCH_"+name+".json")
			if err := writeSnapshot(path, name, opt, rows); err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s: snapshot: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}
