// Command benchrunner regenerates the paper's tables and figures
// (the per-experiment index is in DESIGN.md; measured outputs are
// recorded in EXPERIMENTS.md).
//
// Usage:
//
//	benchrunner -exp all            # every experiment, paper scales
//	benchrunner -exp fig9 -quick    # one experiment, reduced scale
//
// Experiments: fig8, fig9, fig10, fig11, schemascale, enki, wilos,
// rubis, tpcds, ablation, having, parallel, trace, service, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"unmasque/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment to run (fig8|fig9|fig10|fig11|schemascale|enki|wilos|rubis|tpcds|ablation|having|parallel|trace|service|all)")
		quick = flag.Bool("quick", false, "reduced scales and budgets (~1 minute total)")
		seed  = flag.Int64("seed", 1, "generation and extraction seed")
	)
	flag.Parse()

	opt := bench.DefaultOptions()
	opt.Quick = *quick
	opt.Seed = *seed

	runners := map[string]func() error{
		"fig8":        func() error { _, err := bench.Fig8(os.Stdout, opt); return err },
		"fig9":        func() error { _, err := bench.Fig9(os.Stdout, opt); return err },
		"fig10":       func() error { _, err := bench.Fig10(os.Stdout, opt); return err },
		"fig11":       func() error { _, err := bench.Fig11(os.Stdout, opt); return err },
		"schemascale": func() error { _, err := bench.SchemaScale(os.Stdout, opt); return err },
		"enki":        func() error { _, err := bench.Enki(os.Stdout, opt); return err },
		"wilos":       func() error { _, err := bench.Wilos(os.Stdout, opt); return err },
		"rubis":       func() error { _, err := bench.Rubis(os.Stdout, opt); return err },
		"tpcds":       func() error { _, err := bench.TPCDS(os.Stdout, opt); return err },
		"ablation":    func() error { _, err := bench.Ablation(os.Stdout, opt); return err },
		"having":      func() error { _, err := bench.Having(os.Stdout, opt); return err },
		"parallel":    func() error { _, err := bench.Parallel(os.Stdout, opt); return err },
		"trace":       func() error { _, err := bench.TraceProfile(os.Stdout, opt); return err },
		"service":     func() error { _, err := bench.Service(os.Stdout, opt); return err },
	}
	order := []string{"fig8", "fig9", "fig10", "fig11", "schemascale", "enki", "wilos", "rubis", "tpcds", "ablation", "having", "parallel", "trace", "service"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s, all\n", name, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}
	for _, name := range selected {
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
	}
}
