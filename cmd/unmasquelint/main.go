// Command unmasquelint is the project's analysis driver. It has two
// modes, mirroring the two tiers of internal/analysis:
//
// Lint mode (default): typecheck the module and run the custom Go
// analyzers (GL001–GL004) over every non-test package.
//
//	unmasquelint            # lint the module rooted at the cwd
//	unmasquelint ./...      # same (spelled like go vet)
//	unmasquelint path/to/mod
//
// Query mode: statically verify a SQL query against a workload schema
// using the EQC verifier (EQC-* rules).
//
//	unmasquelint -query "select ... from lineitem ..." -schema tpch
//	unmasquelint -query ... -schema rubis -disjunction
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"unmasque/internal/analysis/eqcverify"
	"unmasque/internal/analysis/golint"
	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/workloads/enki"
	"unmasque/internal/workloads/job"
	"unmasque/internal/workloads/rubis"
	"unmasque/internal/workloads/tpcds"
	"unmasque/internal/workloads/tpch"
	"unmasque/internal/workloads/wilos"
)

// workloadSchemas maps -schema names to schema providers.
var workloadSchemas = map[string]func() []sqldb.TableSchema{
	"tpch":  tpch.Schemas,
	"tpcds": tpcds.Schemas,
	"job":   job.Schemas,
	"rubis": rubis.Schemas,
	"enki":  enki.Schemas,
	"wilos": wilos.Schemas,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("unmasquelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	query := fs.String("query", "", "SQL query to verify against the extractable class (query mode)")
	schema := fs.String("schema", "", "workload schema for -query: "+strings.Join(schemaNames(), ", "))
	disjunction := fs.Bool("disjunction", false, "admit single-column disjunctive filters (Section 9 extension)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *query != "" {
		return runQueryMode(*query, *schema, *disjunction, stdout, stderr)
	}
	if *schema != "" || *disjunction {
		fmt.Fprintln(stderr, "unmasquelint: -schema and -disjunction require -query")
		return 2
	}
	return runLintMode(fs.Args(), stdout, stderr)
}

func schemaNames() []string {
	names := make([]string, 0, len(workloadSchemas))
	for n := range workloadSchemas {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// runQueryMode parses the query and reports EQC diagnostics with
// clause spans pointing into the query text.
func runQueryMode(query, schema string, disjunction bool, stdout, stderr *os.File) int {
	provider, ok := workloadSchemas[schema]
	if !ok {
		fmt.Fprintf(stderr, "unmasquelint: -query needs -schema, one of: %s\n",
			strings.Join(schemaNames(), ", "))
		return 2
	}
	stmt, spans, err := sqlparser.ParseWithSpans(query)
	if err != nil {
		fmt.Fprintf(stderr, "unmasquelint: %v\n", err)
		return 2
	}
	diags := eqcverify.Verify(stmt, provider(), eqcverify.Options{AllowDisjunction: disjunction})
	for _, d := range diags {
		loc := ""
		if s := spans.Clause(d.Clause); !s.Empty() {
			loc = fmt.Sprintf(" (bytes %d-%d)", s.Start, s.End)
		}
		fmt.Fprintf(stdout, "%s [%s]%s %s: %s\n", d.Rule, d.Clause, loc, d.Span, d.Msg)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stdout, "%d finding(s): query is outside the extractable class\n", len(diags))
		return 1
	}
	fmt.Fprintln(stdout, "ok: query is inside the extractable class")
	return 0
}

// runLintMode lints the module rooted at the given path (default cwd;
// a go-vet-style "./..." argument means the same).
func runLintMode(args []string, stdout, stderr *os.File) int {
	root := "."
	switch len(args) {
	case 0:
	case 1:
		if args[0] != "./..." {
			root = strings.TrimSuffix(args[0], "/...")
		}
	default:
		fmt.Fprintln(stderr, "unmasquelint: at most one package path argument")
		return 2
	}
	findings, err := golint.LintDir(root)
	if err != nil {
		fmt.Fprintf(stderr, "unmasquelint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stdout, "%d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
