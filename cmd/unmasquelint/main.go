// Command unmasquelint is the project's analysis driver. It has four
// modes, mirroring the tiers of internal/analysis:
//
// Lint mode (default): typecheck the module and run the custom Go
// analyzers (GL001–GL010) over every non-test package.
//
//	unmasquelint            # lint the module rooted at the cwd
//	unmasquelint ./...      # same (spelled like go vet)
//	unmasquelint -json path/to/mod
//
// Query mode: statically verify a SQL query against a workload schema
// using the EQC verifier (EQC-* rules).
//
//	unmasquelint -query "select ... from lineitem ..." -schema tpch
//	unmasquelint -query ... -schema rubis -disjunction
//
// Equivalence mode: decide bounded equivalence of two EQC queries with
// the symbolic checker (internal/analysis/eqcequiv).
//
//	unmasquelint -query "select ..." -equiv "select ..." -schema tpch -bound 2
//
// Self-equivalence smoke: prove every query of a workload's corpus
// equivalent to itself within the bound — a fast end-to-end exercise
// of the canonicalizer and enumerator that ci.sh runs per workload.
//
//	unmasquelint -equiv-self -schema tpch -bound 2
//
// The -json flag switches any mode's findings to one JSON object per
// run on stdout, for machine consumption.
//
// Exit status: 0 clean/equivalent, 1 findings (or inequivalence /
// exhausted budget), 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"unmasque/internal/analysis/eqcequiv"
	"unmasque/internal/analysis/eqcverify"
	"unmasque/internal/analysis/golint"
	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/workloads/enki"
	"unmasque/internal/workloads/job"
	"unmasque/internal/workloads/rubis"
	"unmasque/internal/workloads/tpcds"
	"unmasque/internal/workloads/tpch"
	"unmasque/internal/workloads/wilos"
)

// workloadSchemas maps -schema names to schema providers.
var workloadSchemas = map[string]func() []sqldb.TableSchema{
	"tpch":  tpch.Schemas,
	"tpcds": tpcds.Schemas,
	"job":   job.Schemas,
	"rubis": rubis.Schemas,
	"enki":  enki.Schemas,
	"wilos": wilos.Schemas,
}

// workloadCorpora maps -schema names to their hidden-query corpora
// (workloads that ship one), for -equiv-self.
var workloadCorpora = map[string]func() map[string]string{
	"tpch": func() map[string]string {
		qs := map[string]string{}
		for n, q := range tpch.HiddenQueries() {
			qs[n] = q
		}
		for n, q := range tpch.HavingQueries() {
			qs[n] = q
		}
		return qs
	},
	"tpcds": tpcds.HiddenQueries,
	"job":   job.HiddenQueries,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("unmasquelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	query := fs.String("query", "", "SQL query to verify against the extractable class (query mode)")
	schema := fs.String("schema", "", "workload schema for -query: "+strings.Join(schemaNames(), ", "))
	disjunction := fs.Bool("disjunction", false, "admit single-column disjunctive filters (Section 9 extension)")
	equiv := fs.String("equiv", "", "second SQL query: decide bounded equivalence against -query")
	equivSelf := fs.Bool("equiv-self", false, "prove every corpus query of -schema self-equivalent within -bound")
	bound := fs.Int("bound", eqcequiv.DefaultBound, "rows-per-table bound k for equivalence modes")
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *equivSelf:
		if *query != "" || *equiv != "" {
			fmt.Fprintln(stderr, "unmasquelint: -equiv-self takes no -query/-equiv")
			return 2
		}
		return runEquivSelf(*schema, *bound, *jsonOut, stdout, stderr)
	case *equiv != "":
		if *query == "" {
			fmt.Fprintln(stderr, "unmasquelint: -equiv needs -query for the first query")
			return 2
		}
		return runEquivMode(*query, *equiv, *schema, *bound, *jsonOut, stdout, stderr)
	case *query != "":
		return runQueryMode(*query, *schema, *disjunction, *jsonOut, stdout, stderr)
	}
	if *schema != "" || *disjunction {
		fmt.Fprintln(stderr, "unmasquelint: -schema and -disjunction require -query")
		return 2
	}
	return runLintMode(fs.Args(), *jsonOut, stdout, stderr)
}

func schemaNames() []string {
	names := make([]string, 0, len(workloadSchemas))
	for n := range workloadSchemas {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func lookupSchemas(schema string, stderr *os.File) ([]sqldb.TableSchema, bool) {
	provider, ok := workloadSchemas[schema]
	if !ok {
		fmt.Fprintf(stderr, "unmasquelint: need -schema, one of: %s\n",
			strings.Join(schemaNames(), ", "))
		return nil, false
	}
	return provider(), true
}

// queryFinding is the JSON form of one EQC diagnostic.
type queryFinding struct {
	Rule   string `json:"rule"`
	Clause string `json:"clause"`
	Span   string `json:"span,omitempty"`
	Start  int    `json:"start,omitempty"`
	End    int    `json:"end,omitempty"`
	Msg    string `json:"msg"`
}

// runQueryMode parses the query and reports EQC diagnostics with
// clause spans pointing into the query text.
func runQueryMode(query, schema string, disjunction, jsonOut bool, stdout, stderr *os.File) int {
	schemas, ok := lookupSchemas(schema, stderr)
	if !ok {
		return 2
	}
	stmt, spans, err := sqlparser.ParseWithSpans(query)
	if err != nil {
		fmt.Fprintf(stderr, "unmasquelint: %v\n", err)
		return 2
	}
	diags := eqcverify.Verify(stmt, schemas, eqcverify.Options{AllowDisjunction: disjunction})
	if jsonOut {
		out := []queryFinding{}
		for _, d := range diags {
			f := queryFinding{Rule: d.Rule, Clause: string(d.Clause), Span: d.Span, Msg: d.Msg}
			if s := spans.Clause(d.Clause); !s.Empty() {
				f.Start, f.End = s.Start, s.End
			}
			out = append(out, f)
		}
		writeJSON(stdout, map[string]any{"mode": "query", "findings": out})
		if len(diags) > 0 {
			return 1
		}
		return 0
	}
	for _, d := range diags {
		loc := ""
		if s := spans.Clause(d.Clause); !s.Empty() {
			loc = fmt.Sprintf(" (bytes %d-%d)", s.Start, s.End)
		}
		fmt.Fprintf(stdout, "%s [%s]%s %s: %s\n", d.Rule, d.Clause, loc, d.Span, d.Msg)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stdout, "%d finding(s): query is outside the extractable class\n", len(diags))
		return 1
	}
	fmt.Fprintln(stdout, "ok: query is inside the extractable class")
	return 0
}

// equivReport is the JSON form of one bounded-equivalence verdict.
type equivReport struct {
	Name      string `json:"name,omitempty"`
	Outcome   string `json:"outcome"`
	Bound     int    `json:"bound"`
	Proof     string `json:"proof,omitempty"`
	Instances int    `json:"instances"`
	// Counterexample fields (inequivalent only).
	CERows    int    `json:"ce_rows,omitempty"`
	DigestA   string `json:"digest_a,omitempty"`
	DigestB   string `json:"digest_b,omitempty"`
	OrderOnly bool   `json:"order_only,omitempty"`
}

func reportOf(name string, v *eqcequiv.Verdict) equivReport {
	r := equivReport{
		Name:      name,
		Outcome:   v.Outcome.String(),
		Bound:     v.Bound,
		Proof:     v.Proof,
		Instances: v.Instances,
	}
	if ce := v.Counterexample; ce != nil {
		r.CERows = ce.DB.TotalRows()
		r.DigestA = fmt.Sprintf("%x", ce.DigestA)
		r.DigestB = fmt.Sprintf("%x", ce.DigestB)
		r.OrderOnly = ce.OrderOnly
	}
	return r
}

// runEquivMode decides bounded equivalence of two SQL queries.
func runEquivMode(queryA, queryB, schema string, bound int, jsonOut bool, stdout, stderr *os.File) int {
	schemas, ok := lookupSchemas(schema, stderr)
	if !ok {
		return 2
	}
	a, err := sqlparser.Parse(queryA)
	if err != nil {
		fmt.Fprintf(stderr, "unmasquelint: -query: %v\n", err)
		return 2
	}
	b, err := sqlparser.Parse(queryB)
	if err != nil {
		fmt.Fprintf(stderr, "unmasquelint: -equiv: %v\n", err)
		return 2
	}
	v, err := eqcequiv.Check(a, b, schemas, eqcequiv.Options{Bound: bound})
	if err != nil {
		fmt.Fprintf(stderr, "unmasquelint: %v\n", err)
		return 2
	}
	if jsonOut {
		writeJSON(stdout, map[string]any{"mode": "equiv", "verdict": reportOf("", v)})
	} else {
		fmt.Fprintln(stdout, v)
	}
	if v.Outcome == eqcequiv.Equivalent {
		return 0
	}
	return 1
}

// runEquivSelf proves every corpus query of the workload equivalent to
// itself within the bound. Each query must come back Equivalent; the
// smoke fails on any other outcome (or on a query the canonicalizer
// rejects).
func runEquivSelf(schema string, bound int, jsonOut bool, stdout, stderr *os.File) int {
	corpus, ok := workloadCorpora[schema]
	if !ok {
		names := make([]string, 0, len(workloadCorpora))
		for n := range workloadCorpora {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(stderr, "unmasquelint: -equiv-self needs -schema with a query corpus, one of: %s\n",
			strings.Join(names, ", "))
		return 2
	}
	schemas, _ := lookupSchemas(schema, stderr)
	queries := corpus()
	names := make([]string, 0, len(queries))
	for n := range queries {
		names = append(names, n)
	}
	sort.Strings(names)

	reports := []equivReport{}
	failures := 0
	for _, name := range names {
		stmt, err := sqlparser.Parse(queries[name])
		if err != nil {
			fmt.Fprintf(stderr, "unmasquelint: %s/%s: %v\n", schema, name, err)
			return 2
		}
		v, err := eqcequiv.Check(stmt, sqldb.CloneStmt(stmt), schemas, eqcequiv.Options{Bound: bound})
		if err != nil {
			fmt.Fprintf(stderr, "unmasquelint: %s/%s: %v\n", schema, name, err)
			return 2
		}
		if v.Outcome != eqcequiv.Equivalent {
			failures++
		}
		reports = append(reports, reportOf(name, v))
		if !jsonOut {
			fmt.Fprintf(stdout, "%s/%s: %s\n", schema, name, v)
		}
	}
	if jsonOut {
		writeJSON(stdout, map[string]any{"mode": "equiv-self", "schema": schema, "bound": bound, "verdicts": reports})
	} else {
		fmt.Fprintf(stdout, "%s: %d/%d queries self-equivalent at k=%d\n",
			schema, len(names)-failures, len(names), bound)
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// lintFinding is the JSON form of one Go lint finding.
type lintFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// runLintMode lints the module rooted at the given path (default cwd;
// a go-vet-style "./..." argument means the same).
func runLintMode(args []string, jsonOut bool, stdout, stderr *os.File) int {
	root := "."
	switch len(args) {
	case 0:
	case 1:
		if args[0] != "./..." {
			root = strings.TrimSuffix(args[0], "/...")
		}
	default:
		fmt.Fprintln(stderr, "unmasquelint: at most one package path argument")
		return 2
	}
	findings, err := golint.LintDir(root)
	if err != nil {
		fmt.Fprintf(stderr, "unmasquelint: %v\n", err)
		return 2
	}
	if jsonOut {
		out := []lintFinding{}
		for _, f := range findings {
			out = append(out, lintFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Rule: f.Rule, Msg: f.Msg,
			})
		}
		writeJSON(stdout, map[string]any{"mode": "lint", "findings": out})
		if len(findings) > 0 {
			return 1
		}
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stdout, "%d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// writeJSON emits one indented JSON document on stdout.
func writeJSON(stdout *os.File, v any) {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "unmasquelint: encoding output: %v\n", err)
	}
}
