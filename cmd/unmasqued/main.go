// Command unmasqued is the extraction daemon: a long-running HTTP
// server that accepts hidden-query extraction jobs (registered
// workload applications or inline schema+rows+SQL specs), runs them
// on a bounded worker pool, and persists every job transition to an
// append-only JSONL store so a restart recovers the job history and
// re-queues interrupted work.
//
//	unmasqued -addr 127.0.0.1:8774 -workers 4 -store jobs.jsonl
//
// SIGTERM or SIGINT drains gracefully: the listener closes, accepted
// jobs run to completion (bounded by -drain-timeout, after which
// their extractions are cancelled), and the store is synced before
// exit. See DESIGN.md §9 for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"unmasque/internal/obs"
	"unmasque/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8774", "listen address (host:0 picks a free port)")
		workers      = flag.Int("workers", 2, "extraction worker pool size")
		queueDepth   = flag.Int("queue-depth", 64, "admission queue depth (full queue rejects with 429)")
		storePath    = flag.String("store", "unmasqued.jobs.jsonl", "durable job log path (empty disables persistence)")
		portFile     = flag.String("port-file", "", "write the bound address to this file once listening")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on shutdown")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queueDepth, *storePath, *portFile, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "unmasqued:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queueDepth int, storePath, portFile string, drainTimeout time.Duration) error {
	metrics := obs.NewMetrics()
	metrics.Publish("unmasqued")

	// The manager deliberately gets a background context, not the
	// signal context: a SIGTERM must not hard-kill running extractions
	// — the drain below decides their fate.
	mgr, err := service.Start(context.Background(), service.Config{
		Workers:    workers,
		QueueDepth: queueDepth,
		StorePath:  storePath,
		Metrics:    metrics,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing port file: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "unmasqued: listening on %s (workers=%d queue=%d store=%q)\n",
		bound, workers, queueDepth, storePath)

	srv := &http.Server{Handler: service.NewServer(mgr)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	fmt.Fprintf(os.Stderr, "unmasqued: shutting down (drain budget %s)\n", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "unmasqued: http shutdown:", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "unmasqued: serve:", err)
	}
	if err := mgr.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "unmasqued: drained cleanly")
	return nil
}
