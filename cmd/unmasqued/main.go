// Command unmasqued is the extraction daemon: a long-running HTTP
// server that accepts hidden-query extraction jobs (registered
// workload applications or inline schema+rows+SQL specs), runs them
// on a bounded worker pool, and persists every job transition to an
// append-only JSONL store so a restart recovers the job history and
// re-queues interrupted work.
//
//	unmasqued -addr 127.0.0.1:8774 -workers 4 -store jobs.jsonl
//
// SIGTERM or SIGINT drains gracefully: the listener closes, accepted
// jobs run to completion (bounded by -drain-timeout, after which
// their extractions are cancelled), and the store is synced before
// exit. See DESIGN.md §9 for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"unmasque/internal/obs"
	"unmasque/internal/service"
)

// options carries the daemon's flag values.
type options struct {
	addr         string
	workers      int
	queueDepth   int
	storePath    string
	cacheDir     string
	portFile     string
	drainTimeout time.Duration
	pprof        bool
	logLevel     string
}

func main() {
	var opt options
	flag.StringVar(&opt.addr, "addr", "127.0.0.1:8774", "listen address (host:0 picks a free port)")
	flag.IntVar(&opt.workers, "workers", 2, "extraction worker pool size")
	flag.IntVar(&opt.queueDepth, "queue-depth", 64, "admission queue depth (full queue rejects with 429)")
	flag.StringVar(&opt.storePath, "store", "unmasqued.jobs.jsonl", "durable job log path (empty disables persistence)")
	flag.StringVar(&opt.cacheDir, "cache-dir", "", "durable cross-job probe cache directory (empty disables the durable cache tier)")
	flag.StringVar(&opt.portFile, "port-file", "", "write the bound address to this file once listening")
	flag.DurationVar(&opt.drainTimeout, "drain-timeout", 30*time.Second, "graceful-drain budget on shutdown")
	flag.BoolVar(&opt.pprof, "pprof", false, "serve net/http/pprof handlers under /debug/pprof/")
	flag.StringVar(&opt.logLevel, "log-level", "info", "structured log level: debug, info, warn, error, or off")
	flag.Parse()
	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "unmasqued:", err)
		os.Exit(1)
	}
}

func run(opt options) error {
	metrics := obs.NewMetrics()
	metrics.Publish("unmasqued")
	var logger *obs.Logger
	if opt.logLevel != "off" && opt.logLevel != "none" {
		level, err := obs.ParseLevel(opt.logLevel)
		if err != nil {
			return err
		}
		logger = obs.NewLogger(os.Stderr, level)
	}

	// The manager deliberately gets a background context, not the
	// signal context: a SIGTERM must not hard-kill running extractions
	// — the drain below decides their fate.
	mgr, err := service.Start(context.Background(), service.Config{
		Workers:    opt.workers,
		QueueDepth: opt.queueDepth,
		StorePath:  opt.storePath,
		CacheDir:   opt.cacheDir,
		Metrics:    metrics,
		Logger:     logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if opt.portFile != "" {
		if err := os.WriteFile(opt.portFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing port file: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "unmasqued: listening on %s (workers=%d queue=%d store=%q cache-dir=%q pprof=%v)\n",
		bound, opt.workers, opt.queueDepth, opt.storePath, opt.cacheDir, opt.pprof)

	var handler http.Handler = service.NewServer(mgr)
	if opt.pprof {
		// Mount the profiler next to the API on an explicit mux — the
		// service handler keeps owning everything else. Off by default:
		// profiling endpoints on a production port are opt-in.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	fmt.Fprintf(os.Stderr, "unmasqued: shutting down (drain budget %s)\n", opt.drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), opt.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "unmasqued: http shutdown:", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "unmasqued: serve:", err)
	}
	if err := mgr.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "unmasqued: drained cleanly")
	return nil
}
