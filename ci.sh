#!/usr/bin/env sh
# ci.sh — the repository's full verification gate.
#
# Runs, in order: build, formatting check, go vet, the project's own
# linter (internal/analysis via cmd/unmasquelint), the full test suite
# under the race detector, every fuzz target in smoke mode, and a
# coverage gate on the two load-bearing packages. Any failure stops
# the gate.
set -eu

cd "$(dirname "$0")"

echo "== go build"
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== unmasquelint"
go run ./cmd/unmasquelint ./...

echo "== go test -race"
go test -race ./...

# Fuzz smoke: each native fuzz target runs briefly so a regression in
# a fuzzed invariant (parser round-trip, LIKE matcher, expression
# evaluator) fails CI even before a long fuzzing campaign would.
echo "== fuzz smoke (5s per target)"
go test -fuzz='^FuzzParse$' -fuzztime=5s -run='^$' ./internal/sqlparser
go test -fuzz='^FuzzLike$' -fuzztime=5s -run='^$' ./internal/sqldb
go test -fuzz='^FuzzExprEval$' -fuzztime=5s -run='^$' ./internal/sqldb

# Coverage gate: internal/core and internal/sqldb must stay at or
# above the recorded baselines (measured before the scheduler PR,
# minus a small buffer for counting noise).
echo "== coverage gate"
cover_pct() {
    go test -cover "$1" | awk '{for (i=1; i<=NF; i++) if ($i ~ /^[0-9.]+%$/) {sub(/%/, "", $i); print $i; exit}}'
}
check_cover() {
    pkg=$1; floor=$2
    pct=$(cover_pct "$pkg")
    if [ -z "$pct" ]; then
        echo "coverage: could not measure $pkg" >&2
        exit 1
    fi
    echo "coverage: $pkg $pct% (floor $floor%)"
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "coverage: $pkg dropped below $floor%" >&2
        exit 1
    fi
}
check_cover ./internal/core 77.0
check_cover ./internal/sqldb 81.0

echo "ci: all checks passed"
