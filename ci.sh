#!/usr/bin/env sh
# ci.sh — the repository's full verification gate.
#
# Runs, in order: build, formatting check, go vet, the project's own
# linter (internal/analysis via cmd/unmasquelint), the full test suite
# under the race detector, every fuzz target in smoke mode, an
# end-to-end traced extraction whose JSONL output is schema-validated,
# and a coverage gate on the load-bearing packages. Any failure stops
# the gate.
set -eu

cd "$(dirname "$0")"

echo "== go build"
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== unmasquelint"
go run ./cmd/unmasquelint ./...

echo "== go test -race"
go test -race ./...

# Fuzz smoke: each native fuzz target runs briefly so a regression in
# a fuzzed invariant (parser round-trip, LIKE matcher, expression
# evaluator) fails CI even before a long fuzzing campaign would.
echo "== fuzz smoke (5s per target)"
go test -fuzz='^FuzzParse$' -fuzztime=5s -run='^$' ./internal/sqlparser
go test -fuzz='^FuzzLike$' -fuzztime=5s -run='^$' ./internal/sqldb
go test -fuzz='^FuzzExprEval$' -fuzztime=5s -run='^$' ./internal/sqldb

# Trace end-to-end: one real extraction with the observability layer
# on, then schema-validate the JSONL it produced (first line must be
# the run header; every probe line must pass the obs validator).
echo "== trace end-to-end"
trace_file=$(mktemp /tmp/unmasque-trace.XXXXXX)
trap 'rm -f "$trace_file"' EXIT
go run ./cmd/unmasque -app enki/posts_by_tag -trace "$trace_file" >/dev/null
go run ./cmd/unmasque -validate-trace "$trace_file"

# Coverage gate: internal/core, internal/sqldb and internal/obs must
# stay at or above the recorded baselines (measured at their
# introduction, minus a small buffer for counting noise).
echo "== coverage gate"
cover_pct() {
    go test -cover "$1" | awk '{for (i=1; i<=NF; i++) if ($i ~ /^[0-9.]+%$/) {sub(/%/, "", $i); print $i; exit}}'
}
check_cover() {
    pkg=$1; floor=$2
    pct=$(cover_pct "$pkg")
    if [ -z "$pct" ]; then
        echo "coverage: could not measure $pkg" >&2
        exit 1
    fi
    echo "coverage: $pkg $pct% (floor $floor%)"
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "coverage: $pkg dropped below $floor%" >&2
        exit 1
    fi
}
check_cover ./internal/core 77.0
check_cover ./internal/sqldb 81.0
check_cover ./internal/obs 80.0

echo "ci: all checks passed"
