#!/usr/bin/env sh
# ci.sh — the repository's full verification gate.
#
# Runs, in order: build, formatting check, go vet, the project's own
# linter (internal/analysis via cmd/unmasquelint), the full test suite
# under the race detector, every fuzz target in smoke mode, an
# end-to-end traced extraction whose JSONL output is schema-validated,
# the storage-tier end-to-ends (crash-recovery self-check, disk-store
# differential, warm-daemon restart on a durable probe cache), and a
# coverage gate on the load-bearing packages. Any failure stops the
# gate.
set -eu

cd "$(dirname "$0")"

echo "== go build"
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== unmasquelint"
go run ./cmd/unmasquelint ./...

# Bounded-equivalence smoke: every workload-corpus query must be
# provably self-equivalent at k=2 — a fast end-to-end pass through the
# canonicalizer, the constraint-aware enumerator and the evaluator of
# internal/analysis/eqcequiv.
echo "== bounded equivalence self-check (k=2)"
for w in tpch tpcds job; do
    go run ./cmd/unmasquelint -equiv-self -schema "$w" -bound 2 | tail -1
done

echo "== go test -race"
go test -race ./...

# Differential engine harness: the corpus/edge-case/e2e tests execute
# every query under both exec modes internally; here the CLI is also
# cross-checked so the -exec knob itself (flag -> Config -> engine) is
# covered end to end.
echo "== differential engine harness (tree oracle vs vector)"
go test -run 'TestEngineDiff|TestExecDiff|TestVecEval|TestExtractionIdenticalAcrossExecModes' \
    ./internal/sqldb ./internal/core
tree_sql=$(go run ./cmd/unmasque -app enki/posts_by_tag -exec tree | grep -v '^--')
vector_sql=$(go run ./cmd/unmasque -app enki/posts_by_tag -exec vector | grep -v '^--')
if [ "$tree_sql" != "$vector_sql" ]; then
    echo "engine differential: -exec tree and -exec vector extract different SQL" >&2
    printf 'tree:   %s\nvector: %s\n' "$tree_sql" "$vector_sql" >&2
    exit 1
fi

# Fuzz smoke: each native fuzz target runs briefly so a regression in
# a fuzzed invariant (parser round-trip, LIKE matcher, expression
# evaluator, engine equivalence) fails CI even before a long fuzzing
# campaign would.
echo "== fuzz smoke (5s per target)"
go test -fuzz='^FuzzParse$' -fuzztime=5s -run='^$' ./internal/sqlparser
go test -fuzz='^FuzzLike$' -fuzztime=5s -run='^$' ./internal/sqldb
go test -fuzz='^FuzzExprEval$' -fuzztime=5s -run='^$' ./internal/sqldb
go test -fuzz='^FuzzExecDiff$' -fuzztime=5s -run='^$' ./internal/sqldb

# Trace end-to-end: one real extraction with the observability layer
# on, then schema-validate the JSONL it produced (first line must be
# the run header; every probe line must pass the obs validator).
echo "== trace end-to-end"
trace_file=$(mktemp /tmp/unmasque-trace.XXXXXX)
e2e_dir=$(mktemp -d /tmp/unmasqued-e2e.XXXXXX)
cleanup() {
    rm -f "$trace_file"
    rm -rf "$e2e_dir"
    if [ -n "${daemon_pid:-}" ]; then
        kill "$daemon_pid" 2>/dev/null || true
    fi
}
trap cleanup EXIT
go run ./cmd/unmasque -app enki/posts_by_tag -trace "$trace_file" >/dev/null
go run ./cmd/unmasque -validate-trace "$trace_file"

# Daemon end-to-end: boot unmasqued on a random port, submit a
# registered application over HTTP, poll the job to completion, and
# assert (a) the service extracts the same SQL as the one-shot CLI,
# (b) the per-job ledger invariant holds in the result, (c) the
# downloaded trace passes the schema validator, (d) SIGTERM drains
# cleanly with exit status 0.
echo "== daemon end-to-end"
go build -o "$e2e_dir/unmasqued" ./cmd/unmasqued
"$e2e_dir/unmasqued" -addr 127.0.0.1:0 -port-file "$e2e_dir/port" \
    -store "$e2e_dir/jobs.jsonl" -workers 2 2>"$e2e_dir/daemon.log" &
daemon_pid=$!
for _ in $(seq 1 50); do
    if [ -s "$e2e_dir/port" ]; then break; fi
    sleep 0.1
done
addr=$(cat "$e2e_dir/port")
job_id=$(curl -sf -X POST "http://$addr/jobs" -d '{"app":"enki/posts_by_tag"}' | jq -r .id)
state=queued
for _ in $(seq 1 300); do
    state=$(curl -sf "http://$addr/jobs/$job_id" | jq -r .state)
    case "$state" in done|failed|cancelled) break ;; esac
    sleep 0.2
done
if [ "$state" != done ]; then
    echo "daemon e2e: job finished in state $state" >&2
    cat "$e2e_dir/daemon.log" >&2
    exit 1
fi
curl -sf "http://$addr/jobs/$job_id/result" > "$e2e_dir/result.json"
# The one-shot CLI wraps the SQL in `--` comment banners; the service
# returns the bare statement. Compare with comments stripped.
service_sql=$(jq -r .sql "$e2e_dir/result.json" | grep -v '^--')
cli_sql=$(go run ./cmd/unmasque -app enki/posts_by_tag | grep -v '^--')
if [ "$service_sql" != "$cli_sql" ]; then
    echo "daemon e2e: service SQL differs from one-shot CLI" >&2
    printf 'service: %s\ncli:     %s\n' "$service_sql" "$cli_sql" >&2
    exit 1
fi
jq -e '.ledger_events > 0 and .ledger_events == .app_invocations + .cache_hits + .disk_cache_hits' \
    "$e2e_dir/result.json" >/dev/null || {
    echo "daemon e2e: ledger invariant broken in result" >&2
    cat "$e2e_dir/result.json" >&2
    exit 1
}
curl -sf "http://$addr/jobs/$job_id/trace" > "$e2e_dir/trace.jsonl"
go run ./cmd/unmasque -validate-trace "$e2e_dir/trace.jsonl"

# Telemetry end-to-end against the same daemon: (a) the Prometheus
# exposition of /metrics must parse under the strict text-format
# validator and carry the job counters, (b) a live SSE subscription
# opened on a just-submitted job must replay+stream frames that pass
# the stream validator and end at a terminal lifecycle state.
echo "== telemetry end-to-end (prom scrape + live SSE)"
curl -sf "http://$addr/metrics?format=prom" > "$e2e_dir/metrics.prom"
go run ./cmd/unmasque -validate-prom "$e2e_dir/metrics.prom"
grep -q '^unmasque_jobs_done' "$e2e_dir/metrics.prom" || {
    echo "telemetry e2e: unmasque_jobs_done missing from prom exposition" >&2
    cat "$e2e_dir/metrics.prom" >&2
    exit 1
}
sse_id=$(curl -sf -X POST "http://$addr/jobs" -d '{"app":"enki/posts_by_tag"}' | jq -r .id)
# The stream closes itself when the job reaches a terminal state;
# --max-time only guards against a hung stream.
curl -s --max-time 120 "http://$addr/jobs/$sse_id/trace/stream" > "$e2e_dir/stream.sse"
go run ./cmd/unmasque -validate-stream "$e2e_dir/stream.sse"
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=
grep -q "drained cleanly" "$e2e_dir/daemon.log" || {
    echo "daemon e2e: no clean drain in daemon log" >&2
    cat "$e2e_dir/daemon.log" >&2
    exit 1
}

# Storage tier end-to-end: (a) the crash-recovery self-check walks a
# real store through every injected crash stage, (b) an extraction
# over the disk-backed store must produce byte-identical SQL to the
# in-memory default.
echo "== storage tier end-to-end (crash selfcheck + disk differential)"
go run ./cmd/unmasque -store-selfcheck "$e2e_dir/selfcheck"
disk_sql=$(go run ./cmd/unmasque -app enki/posts_by_tag -store disk | grep -v '^--')
if [ "$disk_sql" != "$cli_sql" ]; then
    echo "storage e2e: -store disk extracts different SQL" >&2
    printf 'disk: %s\nmem:  %s\n' "$disk_sql" "$cli_sql" >&2
    exit 1
fi

# Warm-daemon end-to-end: boot the daemon with a durable probe cache,
# run a job cold, SIGTERM-drain it, boot a fresh daemon on the same
# cache directory, and resubmit the identical job. The warm run must
# complete with ZERO application invocations — every probe served from
# the disk tier — and extract the same SQL.
echo "== warm daemon end-to-end (durable probe cache across restart)"
run_cached_job() {
    portfile=$1
    "$e2e_dir/unmasqued" -addr 127.0.0.1:0 -port-file "$portfile" \
        -store "$e2e_dir/jobs-cache.jsonl" -cache-dir "$e2e_dir/cache" \
        -workers 2 2>>"$e2e_dir/daemon-cache.log" &
    daemon_pid=$!
    for _ in $(seq 1 50); do
        if [ -s "$portfile" ]; then break; fi
        sleep 0.1
    done
    caddr=$(cat "$portfile")
    cjob=$(curl -sf -X POST "http://$caddr/jobs" -d '{"app":"enki/posts_by_tag"}' | jq -r .id)
    cstate=queued
    for _ in $(seq 1 300); do
        cstate=$(curl -sf "http://$caddr/jobs/$cjob" | jq -r .state)
        case "$cstate" in done|failed|cancelled) break ;; esac
        sleep 0.2
    done
    if [ "$cstate" != done ]; then
        echo "warm daemon e2e: job finished in state $cstate" >&2
        cat "$e2e_dir/daemon-cache.log" >&2
        exit 1
    fi
    curl -sf "http://$caddr/jobs/$cjob/result"
    kill -TERM "$daemon_pid"
    wait "$daemon_pid"
    daemon_pid=
}
run_cached_job "$e2e_dir/port-cold" > "$e2e_dir/result-cold.json"
run_cached_job "$e2e_dir/port-warm" > "$e2e_dir/result-warm.json"
jq -e '.app_invocations > 0' "$e2e_dir/result-cold.json" >/dev/null || {
    echo "warm daemon e2e: cold run reports zero app invocations" >&2
    cat "$e2e_dir/result-cold.json" >&2
    exit 1
}
jq -e '.app_invocations == 0 and .disk_cache_hits > 0 and
       .ledger_events == .cache_hits + .disk_cache_hits' \
    "$e2e_dir/result-warm.json" >/dev/null || {
    echo "warm daemon e2e: restarted daemon did not serve the job from the durable cache" >&2
    cat "$e2e_dir/result-warm.json" >&2
    exit 1
}
if [ "$(jq -r .sql "$e2e_dir/result-cold.json")" != "$(jq -r .sql "$e2e_dir/result-warm.json")" ]; then
    echo "warm daemon e2e: warm SQL differs from cold SQL" >&2
    exit 1
fi

# Coverage gate: internal/core, internal/sqldb and internal/obs must
# stay at or above the recorded baselines (measured at their
# introduction, minus a small buffer for counting noise).
echo "== coverage gate"
cover_pct() {
    go test -cover "$1" | awk '{for (i=1; i<=NF; i++) if ($i ~ /^[0-9.]+%$/) {sub(/%/, "", $i); print $i; exit}}'
}
check_cover() {
    pkg=$1; floor=$2
    pct=$(cover_pct "$pkg")
    if [ -z "$pct" ]; then
        echo "coverage: could not measure $pkg" >&2
        exit 1
    fi
    echo "coverage: $pkg $pct% (floor $floor%)"
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "coverage: $pkg dropped below $floor%" >&2
        exit 1
    fi
}
check_cover ./internal/core 77.0
check_cover ./internal/sqldb 81.0
check_cover ./internal/obs 80.0
check_cover ./internal/obs/telemetry 80.0
check_cover ./internal/service 78.0
check_cover ./internal/analysis/eqcequiv 80.0
check_cover ./internal/storage 80.0

# Per-file floor on the vectorized engine: the differential harness
# must actually exercise the new batch/index/scan/join code, not just
# keep the package average up.
echo "== per-file coverage floor (vectorized engine, 80%)"
prof=$(mktemp /tmp/unmasque-cover.XXXXXX)
go test -coverprofile="$prof" ./internal/sqldb >/dev/null
for f in batch.go vector.go index.go exec_vector.go agg_vector.go sort_vector.go; do
    pct=$(awk -v f="internal/sqldb/$f:" \
        'index($1, f) { total += $2; if ($3 > 0) covered += $2 }
         END { if (total == 0) print "0.0"; else printf "%.1f", 100 * covered / total }' "$prof")
    echo "coverage: internal/sqldb/$f $pct% (floor 80%)"
    if awk -v p="$pct" 'BEGIN { exit !(p < 80.0) }'; then
        echo "coverage: internal/sqldb/$f dropped below 80%" >&2
        rm -f "$prof"
        exit 1
    fi
done
rm -f "$prof"

echo "ci: all checks passed"
