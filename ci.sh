#!/usr/bin/env sh
# ci.sh — the repository's full verification gate.
#
# Runs, in order: build, formatting check, go vet, the project's own
# linter (internal/analysis via cmd/unmasquelint), the full test suite
# under the race detector. Any failure stops the gate.
set -eu

cd "$(dirname "$0")"

echo "== go build"
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== unmasquelint"
go run ./cmd/unmasquelint ./...

echo "== go test -race"
go test -race ./...

echo "ci: all checks passed"
