// Quickstart: hide a warehouse query inside a black-box executable,
// then unmask it with the UNMASQUE pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"unmasque"
)

func main() {
	// 1. A small warehouse: customers and their orders.
	db := unmasque.NewDatabase()
	must(db.CreateTable(unmasque.TableSchema{
		Name: "customer",
		Columns: []unmasque.Column{
			{Name: "c_custkey", Type: unmasque.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "c_name", Type: unmasque.TText, MaxLen: 25},
			{Name: "c_mktsegment", Type: unmasque.TText, MaxLen: 10},
		},
		PrimaryKey: []string{"c_custkey"},
	}))
	must(db.CreateTable(unmasque.TableSchema{
		Name: "orders",
		Columns: []unmasque.Column{
			{Name: "o_orderkey", Type: unmasque.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "o_custkey", Type: unmasque.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "o_totalprice", Type: unmasque.TFloat, Precision: 2, MinInt: 0, MaxInt: 100000},
			{Name: "o_orderdate", Type: unmasque.TDate,
				MinInt: unmasque.MustDate("1992-01-01").I, MaxInt: unmasque.MustDate("1998-12-31").I},
		},
		PrimaryKey:  []string{"o_orderkey"},
		ForeignKeys: []unmasque.ForeignKey{{Column: "o_custkey", RefTable: "customer", RefColumn: "c_custkey"}},
	}))
	seedData(db)

	// 2. The opaque application: the SQL text lives only in
	// obfuscated form inside the executable.
	exe := unmasque.MustSQLExecutable("billing-report", `
		select c_name, sum(o_totalprice) as total_spent
		from customer, orders
		where c_custkey = o_custkey
		  and c_mktsegment = 'BUILDING'
		  and o_orderdate >= date '1995-01-01'
		group by c_name
		order by total_spent desc
		limit 10`)

	// 3. Unmask it.
	ext, err := unmasque.Extract(exe, db, unmasque.DefaultConfig())
	if err != nil {
		log.Fatalf("extraction failed: %v", err)
	}
	fmt.Println("-- recovered query:")
	fmt.Println(ext.SQL)
	fmt.Println()
	fmt.Println("-- structure:", ext.Summary())
	fmt.Println("-- verified: ", ext.CheckerVerified)
	fmt.Println("-- profile:  ", ext.Stats.String())
}

func seedData(db *unmasque.Database) {
	rng := rand.New(rand.NewSource(7))
	segs := []string{"BUILDING", "AUTOMOBILE", "MACHINERY"}
	for c := 1; c <= 60; c++ {
		must(db.Insert("customer",
			unmasque.NewInt(int64(c)),
			unmasque.NewText(fmt.Sprintf("Customer#%03d", c)),
			unmasque.NewText(segs[rng.Intn(len(segs))])))
	}
	base := unmasque.MustDate("1992-01-01").I
	for o := 1; o <= 600; o++ {
		must(db.Insert("orders",
			unmasque.NewInt(int64(o)),
			unmasque.NewInt(int64(1+rng.Intn(60))),
			unmasque.NewFloat(float64(rng.Intn(1000000))/100),
			unmasque.NewDate(base+int64(rng.Intn(2500)))))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
