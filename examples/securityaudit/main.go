// Security audit (Section 2.1, "Enhancing Database Security"): a
// third-party plugin ships with encoded queries — the classic
// SQL-obfuscation pattern of injection tooling. Rather than
// platform-specific log forensics, the auditor unmasks what the
// plugin actually reads by running it in a test silo.
//
//	go run ./examples/securityaudit
package main

import (
	"fmt"
	"log"

	"unmasque"
)

func main() {
	// The production schema contains a sensitive credentials table.
	db := unmasque.NewDatabase()
	must(db.CreateTable(unmasque.TableSchema{
		Name: "app_users",
		Columns: []unmasque.Column{
			{Name: "uid", Type: unmasque.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "login", Type: unmasque.TText, MaxLen: 40},
			{Name: "password_hash", Type: unmasque.TText, MaxLen: 64},
			{Name: "is_admin", Type: unmasque.TBool},
		},
		PrimaryKey: []string{"uid"},
	}))
	must(db.CreateTable(unmasque.TableSchema{
		Name: "audit_log",
		Columns: []unmasque.Column{
			{Name: "entry_id", Type: unmasque.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "uid", Type: unmasque.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "action", Type: unmasque.TText, MaxLen: 30},
		},
		PrimaryKey:  []string{"entry_id"},
		ForeignKeys: []unmasque.ForeignKey{{Column: "uid", RefTable: "app_users", RefColumn: "uid"}},
	}))
	for u := 1; u <= 40; u++ {
		must(db.Insert("app_users",
			unmasque.NewInt(int64(u)), unmasque.NewText(fmt.Sprintf("user%d", u)),
			unmasque.NewText(fmt.Sprintf("hash-%08x", u*2654435761)), unmasque.NewBool(u%7 == 0)))
	}
	for e := 1; e <= 200; e++ {
		must(db.Insert("audit_log",
			unmasque.NewInt(int64(e)), unmasque.NewInt(int64(1+e%40)),
			unmasque.NewText([]string{"login", "logout", "update"}[e%3])))
	}

	// The suspicious plugin claims to "summarize activity"; its query
	// ships only in encoded form.
	plugin := unmasque.MustSQLExecutable("third-party-activity-plugin", `
		select login, password_hash from app_users where is_admin = true`)

	ext, err := unmasque.Extract(plugin, db, unmasque.DefaultConfig())
	if err != nil {
		log.Fatalf("audit extraction failed: %v", err)
	}
	fmt.Println("-- the plugin's actual data access:")
	fmt.Println(ext.SQL)
	fmt.Println()
	for _, t := range ext.Tables {
		if t == "app_users" {
			fmt.Println("!! FINDING: plugin reads the credentials table (app_users)")
		}
	}
	for _, p := range ext.Projections {
		for _, d := range p.Deps {
			if d.Column == "password_hash" {
				fmt.Println("!! FINDING: plugin exfiltrates password_hash")
			}
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
