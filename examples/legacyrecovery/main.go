// Legacy recovery (explicit opacity, Section 2.1 of the paper): the
// source of a decades-old reporting job has been lost; only the
// executable survives, and its embedded SQL is scrambled so that
// string-extraction tools find nothing. UNMASQUE resurrects the
// query from the executable's observable behaviour alone.
//
//	go run ./examples/legacyrecovery
package main

import (
	"fmt"
	"log"
	"strings"

	"unmasque"
	"unmasque/internal/app"
	"unmasque/internal/workloads/tpch"
)

func main() {
	// The "legacy binary": TPC-H Q10-derivative hidden behind
	// obfuscation, standing in for an encrypted stored procedure.
	lostSQL := tpch.HiddenQueries()["Q10"]
	exe := unmasque.MustSQLExecutable("legacy-revenue-job", lostSQL)

	// A Strings-style scan of the executable's payload finds no SQL —
	// this is exactly why plan/log-less extraction is needed.
	blob := app.Obfuscate(lostSQL)
	if strings.Contains(string(blob), "select") || strings.Contains(string(blob), "from") {
		log.Fatal("obfuscation failed: SQL visible in the binary image")
	}
	fmt.Printf("string-scan of the %d-byte binary payload: no SQL found\n\n", len(blob))

	// The database the job still runs against.
	db := tpch.NewDatabase(tpch.ScaleTiny*4, 42)
	if err := tpch.PlantWitnesses(db, map[string]string{"Q10": lostSQL}); err != nil {
		log.Fatal(err)
	}

	ext, err := unmasque.Extract(exe, db, unmasque.DefaultConfig())
	if err != nil {
		log.Fatalf("extraction failed: %v", err)
	}
	fmt.Println("-- resurrected query:")
	fmt.Println(ext.SQL)
	fmt.Printf("\n-- %d tables, %d joins, %d filters recovered; verified=%v\n",
		len(ext.Tables), len(ext.JoinPredicates), len(ext.Filters), ext.CheckerVerified)
	fmt.Printf("-- application was invoked %d times during extraction\n", ext.Stats.AppInvocations)
}
