// Imperative-to-SQL conversion (implicit opacity, Section 2.2 of the
// paper): a developer wrote a report as nested loops over the ORM
// instead of SQL, losing the optimizer's help. UNMASQUE derives the
// equivalent declarative query purely from the code's observable
// behaviour — no host-language analysis, no special operators.
//
//	go run ./examples/imperative2sql
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"unmasque"
	"unmasque/internal/workloads/enki"
)

func main() {
	db := enki.NewDatabase(9)

	// The hand-written routine: fetch posts for a tag, newest first —
	// three nested loops and an in-process sort.
	imperative := unmasque.NewImperativeExecutable("get-posts-by-tag",
		func(ctx context.Context, db *unmasque.Database) (*unmasque.Result, error) {
			posts, err := db.Table("posts")
			if err != nil {
				return nil, err
			}
			taggings, err := db.Table("taggings")
			if err != nil {
				return nil, err
			}
			tags, err := db.Table("tags")
			if err != nil {
				return nil, err
			}
			var rows []unmasque.Row
			for _, tag := range tags.Rows {
				if tag[1].S != "golang" {
					continue
				}
				for _, tg := range taggings.Rows {
					if tg[1].I != tag[0].I {
						continue
					}
					for _, p := range posts.Rows {
						if p[0].I == tg[0].I {
							rows = append(rows, unmasque.Row{p[0], p[1], p[4]})
						}
					}
				}
			}
			sort.SliceStable(rows, func(a, b int) bool { return rows[a][2].I > rows[b][2].I })
			if len(rows) > 5 {
				rows = rows[:5]
			}
			return &unmasque.Result{Columns: []string{"id", "title", "published_at"}, Rows: rows}, nil
		}, "")

	ext, err := unmasque.Extract(imperative, db, unmasque.DefaultConfig())
	if err != nil {
		log.Fatalf("extraction failed: %v", err)
	}
	fmt.Println("-- the loops above are equivalent to:")
	fmt.Println(ext.SQL)
	fmt.Println()
	fmt.Println("-- clause structure:", ext.Summary())

	// Also run the whole Enki command set, the paper's Figure 12
	// experiment, reporting one line per converted command.
	fmt.Println("\n-- full Enki conversion (14 in-scope commands):")
	for _, cmd := range enki.Commands() {
		ext, err := unmasque.Extract(cmd.Exe, enki.NewDatabase(9), unmasque.DefaultConfig())
		if err != nil {
			fmt.Printf("%-28s ERROR %v\n", cmd.Name, err)
			continue
		}
		fmt.Printf("%-28s %-55s %6.1f ms\n", cmd.Name, ext.Summary(),
			float64(ext.Stats.Total.Microseconds())/1000)
	}
}
