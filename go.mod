module unmasque

go 1.22
