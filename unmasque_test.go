package unmasque_test

import (
	"context"
	"fmt"
	"testing"

	"unmasque"
)

// buildShopDB constructs a small database through the public facade
// only, as an external adopter would.
func buildShopDB(t testing.TB) *unmasque.Database {
	t.Helper()
	db := unmasque.NewDatabase()
	if err := db.CreateTable(unmasque.TableSchema{
		Name: "products",
		Columns: []unmasque.Column{
			{Name: "pid", Type: unmasque.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "name", Type: unmasque.TText, MaxLen: 30},
			{Name: "price", Type: unmasque.TFloat, Precision: 2, MinInt: 0, MaxInt: 1000},
		},
		PrimaryKey: []string{"pid"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(unmasque.TableSchema{
		Name: "sales",
		Columns: []unmasque.Column{
			{Name: "sid", Type: unmasque.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "pid", Type: unmasque.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "qty", Type: unmasque.TInt, MinInt: 1, MaxInt: 100},
		},
		PrimaryKey:  []string{"sid"},
		ForeignKeys: []unmasque.ForeignKey{{Column: "pid", RefTable: "products", RefColumn: "pid"}},
	}); err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 20; p++ {
		if err := db.Insert("products",
			unmasque.NewInt(int64(p)),
			unmasque.NewText(fmt.Sprintf("product%d", p)),
			unmasque.NewFloat(float64(p)*7.25)); err != nil {
			t.Fatal(err)
		}
	}
	for s := 1; s <= 200; s++ {
		if err := db.Insert("sales",
			unmasque.NewInt(int64(s)),
			unmasque.NewInt(int64(1+s%20)),
			unmasque.NewInt(int64(1+s%9))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestPublicAPIEndToEnd exercises the facade exactly as the README
// quickstart does.
func TestPublicAPIEndToEnd(t *testing.T) {
	db := buildShopDB(t)
	hidden := `
		select name, sum(qty) as units
		from products, sales
		where products.pid = sales.pid and price >= 14.50
		group by name
		order by units desc
		limit 5`
	exe := unmasque.MustSQLExecutable("sales-report", hidden)
	ext, err := unmasque.Extract(exe, db, unmasque.DefaultConfig())
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if !ext.CheckerVerified {
		t.Error("checker did not verify")
	}
	want, err := exe.Run(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Execute(context.Background(), ext.Query)
	if err != nil {
		t.Fatalf("extracted query: %v\n%s", err, ext.SQL)
	}
	if !want.EqualUnordered(got) {
		t.Fatalf("results differ\n%s", ext.SQL)
	}
	if ext.Limit != 5 || len(ext.OrderBy) != 1 || !ext.OrderBy[0].Desc {
		t.Errorf("structural extraction: limit=%d order=%v", ext.Limit, ext.OrderBy)
	}
}

// TestPublicAPIImperative covers the imperative entry point.
func TestPublicAPIImperative(t *testing.T) {
	db := buildShopDB(t)
	exe := unmasque.NewImperativeExecutable("cheap-products",
		func(ctx context.Context, db *unmasque.Database) (*unmasque.Result, error) {
			products, err := db.Table("products")
			if err != nil {
				return nil, err
			}
			res := &unmasque.Result{Columns: []string{"name", "price"}}
			for _, r := range products.Rows {
				if r[2].AsFloat() <= 30 {
					res.Rows = append(res.Rows, unmasque.Row{r[1], r[2]})
				}
			}
			return res, nil
		}, "")
	ext, err := unmasque.Extract(exe, db, unmasque.DefaultConfig())
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	f := ext.Filters
	if len(f) != 1 || !f[0].HasHi || f[0].Hi.AsFloat() != 29 {
		// price grid is 0.01; <=30 over the 7.25 multiples means the
		// observed boundary is the largest populated grid point at or
		// below 30 — accept either 29.00 (int grid) or 30.00.
		if len(f) != 1 || !f[0].HasHi || f[0].Hi.AsFloat() > 30 || f[0].Hi.AsFloat() < 29 {
			t.Errorf("filter extraction: %+v", f)
		}
	}
}

// TestPublicAPIRegalBaseline covers the QRE baseline export.
func TestPublicAPIRegalBaseline(t *testing.T) {
	db := buildShopDB(t)
	stmt := unmasque.MustParse("select pid, qty from sales where qty >= 5")
	target, err := db.Execute(context.Background(), stmt)
	if err != nil {
		t.Fatal(err)
	}
	out := unmasque.RegalReverseEngineer(db, target, unmasque.DefaultRegalConfig())
	if out.Query == nil {
		t.Fatalf("baseline found no candidate: %s", out.Reason)
	}
	got, err := db.Execute(context.Background(), out.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualUnordered(target) {
		t.Error("baseline candidate not instance-equivalent")
	}
}
