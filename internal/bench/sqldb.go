package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/workloads/tpch"
)

// ---------------------------------------------------------------- E15

// EngineRow is one tree-vs-vector engine measurement: a point-lookup
// microbenchmark or an end-to-end extraction.
type EngineRow struct {
	Case         string
	Tree         time.Duration
	Vector       time.Duration
	Speedup      float64
	IndexBuilds  int64
	IndexHits    int64
	JoinReuses   int64
	SQLIdentical bool // e2e cases: extracted SQL byte-identical across engines
}

// SqldbEngine measures the vectorized, index-assisted execution
// engine (PR 7) against the tree-walking oracle: first a point-lookup
// microbenchmark (the probe shape minimization hammers on), then
// full TPC-H extractions under both exec modes. The extracted SQL
// must be byte-identical; only the wall clock and the engine counters
// may differ.
func SqldbEngine(w io.Writer, opt Options) ([]EngineRow, error) {
	var out []EngineRow
	tbl := &TextTable{
		Title:  "Execution Engine — tree-walking oracle vs vectorized+indexed (PR 7)",
		Header: []string{"case", "tree_ms", "vector_ms", "speedup", "index_hits", "join_reuse", "sql_identical"},
	}

	micro, err := pointLookupMicrobench(opt)
	if err != nil {
		return nil, err
	}
	out = append(out, micro)
	tbl.Add(micro.Case, ms(micro.Tree), ms(micro.Vector),
		fmt.Sprintf("%.2f", micro.Speedup), micro.IndexHits, micro.JoinReuses, "n/a")

	scale := tpch.Scale100GB
	if opt.Quick {
		scale = tpch.ScaleTiny * 4
	}
	queries := tpch.HiddenQueries()
	db := tpch.NewDatabase(scale, opt.Seed)
	if err := tpch.PlantWitnesses(db, queries); err != nil {
		return nil, err
	}
	for _, name := range []string{"Q3", "Q6", "Q10"} {
		exe := app.MustSQLExecutable(name, queries[name])

		treeCfg := core.DefaultConfig()
		treeCfg.Seed = opt.Seed
		treeCfg.ExecMode = "tree"
		treeExt, err := core.Extract(exe, db, treeCfg)
		if err != nil {
			return nil, fmt.Errorf("%s under tree engine: %w", name, err)
		}

		vecCfg := core.DefaultConfig()
		vecCfg.Seed = opt.Seed
		vecCfg.ExecMode = "vector"
		vecExt, err := core.Extract(exe, db, vecCfg)
		if err != nil {
			return nil, fmt.Errorf("%s under vector engine: %w", name, err)
		}

		row := EngineRow{
			Case:         "extract/" + name,
			Tree:         treeExt.Stats.Total,
			Vector:       vecExt.Stats.Total,
			Speedup:      float64(treeExt.Stats.Total) / float64(vecExt.Stats.Total),
			IndexBuilds:  vecExt.Stats.IndexBuilds,
			IndexHits:    vecExt.Stats.IndexHits,
			JoinReuses:   vecExt.Stats.JoinBuildsReused,
			SQLIdentical: treeExt.SQL == vecExt.SQL,
		}
		out = append(out, row)
		tbl.Add(row.Case, ms(row.Tree), ms(row.Vector), fmt.Sprintf("%.2f", row.Speedup),
			row.IndexHits, row.JoinReuses, row.SQLIdentical)
	}

	tbl.Note("contract: byte-identical SQL under both engines; target >=3x on point lookups, >=1.5x end to end")
	tbl.Render(w)
	return out, nil
}

// pointLookupMicrobench times repeated point-lookup probes — the
// dominant query shape of predicate minimization — under both
// engines on one indexed-size table.
func pointLookupMicrobench(opt Options) (EngineRow, error) {
	rows, iters := 20000, 3000
	if opt.Quick {
		rows, iters = 5000, 600
	}
	db := sqldb.NewDatabase()
	if err := db.CreateTable(sqldb.TableSchema{
		Name: "pt",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt},
			{Name: "grp", Type: sqldb.TInt},
			{Name: "payload", Type: sqldb.TText},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		return EngineRow{}, err
	}
	for i := 0; i < rows; i++ {
		if err := db.Insert("pt",
			sqldb.NewInt(int64(i)), sqldb.NewInt(int64(i%97)),
			sqldb.NewText(fmt.Sprintf("p-%06d", i))); err != nil {
			return EngineRow{}, err
		}
	}
	stmts := make([]*sqldb.SelectStmt, 64)
	for k := range stmts {
		stmt, err := sqlparser.Parse(fmt.Sprintf(
			"select payload from pt where id = %d and grp >= 0", k*131%rows))
		if err != nil {
			return EngineRow{}, err
		}
		stmts[k] = stmt
	}
	ctx := context.Background()
	run := func(mode sqldb.ExecMode) (time.Duration, error) {
		db.SetExecMode(mode)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := db.Execute(ctx, stmts[i%len(stmts)]); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	before := db.EngineCounters()
	treeTime, err := run(sqldb.ExecTree)
	if err != nil {
		return EngineRow{}, fmt.Errorf("point-lookup microbench under tree engine: %w", err)
	}
	vecTime, err := run(sqldb.ExecVector)
	if err != nil {
		return EngineRow{}, fmt.Errorf("point-lookup microbench under vector engine: %w", err)
	}
	after := db.EngineCounters()
	return EngineRow{
		Case:        fmt.Sprintf("point-lookup/%drows", rows),
		Tree:        treeTime,
		Vector:      vecTime,
		Speedup:     float64(treeTime) / float64(vecTime),
		IndexBuilds: after.IndexBuilds - before.IndexBuilds,
		IndexHits:   after.IndexHits - before.IndexHits,
	}, nil
}
