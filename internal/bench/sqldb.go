package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/workloads/tpch"
)

// ---------------------------------------------------------------- E15

// EngineRow is one tree-vs-vector engine measurement: a query-shape
// microbenchmark or an end-to-end extraction.
type EngineRow struct {
	Case        string
	Tree        time.Duration
	Vector      time.Duration
	Speedup     float64
	IndexBuilds int64
	IndexHits   int64
	RangeBuilds int64
	RangeHits   int64
	JoinReuses  int64
	// SQLIdentical: e2e cases — extracted SQL byte-identical across
	// engines; microbenchmarks — rendered results byte-identical.
	SQLIdentical bool
}

// SqldbEngine measures the vectorized, index-assisted execution
// engine (PR 7, extended PR 10) against the tree-walking oracle:
// query-shape microbenchmarks (point lookup, Q1-style aggregation,
// top-K ordering, advised BETWEEN range probes — the shapes
// minimization hammers on), then full TPC-H extractions under both
// exec modes. The extracted SQL must be byte-identical; only the
// wall clock and the engine counters may differ.
func SqldbEngine(w io.Writer, opt Options) ([]EngineRow, error) {
	var out []EngineRow
	tbl := &TextTable{
		Title:  "Execution Engine — tree-walking oracle vs vectorized+indexed (PR 7)",
		Header: []string{"case", "tree_ms", "vector_ms", "speedup", "index_hits", "range_hits", "join_reuse", "sql_identical"},
	}

	micro, err := pointLookupMicrobench(opt)
	if err != nil {
		return nil, err
	}
	out = append(out, micro)
	tbl.Add(micro.Case, ms(micro.Tree), ms(micro.Vector),
		fmt.Sprintf("%.2f", micro.Speedup), micro.IndexHits, micro.RangeHits, micro.JoinReuses, "n/a")

	for _, mk := range []func(Options) (microbenchSpec, error){
		groupAggSpec, topKSpec, rangeProbeSpec,
	} {
		spec, err := mk(opt)
		if err != nil {
			return nil, err
		}
		row, err := runEngineMicrobench(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
		tbl.Add(row.Case, ms(row.Tree), ms(row.Vector), fmt.Sprintf("%.2f", row.Speedup),
			row.IndexHits, row.RangeHits, row.JoinReuses, row.SQLIdentical)
	}

	scale := tpch.Scale100GB
	if opt.Quick {
		scale = tpch.ScaleTiny * 4
	}
	queries := tpch.HiddenQueries()
	db := tpch.NewDatabase(scale, opt.Seed)
	if err := tpch.PlantWitnesses(db, queries); err != nil {
		return nil, err
	}
	for _, name := range []string{"Q3", "Q6", "Q10"} {
		exe := app.MustSQLExecutable(name, queries[name])

		treeCfg := core.DefaultConfig()
		treeCfg.Seed = opt.Seed
		treeCfg.ExecMode = "tree"
		treeExt, err := core.Extract(exe, db, treeCfg)
		if err != nil {
			return nil, fmt.Errorf("%s under tree engine: %w", name, err)
		}

		vecCfg := core.DefaultConfig()
		vecCfg.Seed = opt.Seed
		vecCfg.ExecMode = "vector"
		vecExt, err := core.Extract(exe, db, vecCfg)
		if err != nil {
			return nil, fmt.Errorf("%s under vector engine: %w", name, err)
		}

		row := EngineRow{
			Case:         "extract/" + name,
			Tree:         treeExt.Stats.Total,
			Vector:       vecExt.Stats.Total,
			Speedup:      float64(treeExt.Stats.Total) / float64(vecExt.Stats.Total),
			IndexBuilds:  vecExt.Stats.IndexBuilds,
			IndexHits:    vecExt.Stats.IndexHits,
			RangeBuilds:  vecExt.Stats.RangeBuilds,
			RangeHits:    vecExt.Stats.RangeHits,
			JoinReuses:   vecExt.Stats.JoinBuildsReused,
			SQLIdentical: treeExt.SQL == vecExt.SQL,
		}
		out = append(out, row)
		tbl.Add(row.Case, ms(row.Tree), ms(row.Vector), fmt.Sprintf("%.2f", row.Speedup),
			row.IndexHits, row.RangeHits, row.JoinReuses, row.SQLIdentical)
	}

	tbl.Note("contract: byte-identical SQL under both engines; target >=3x on point lookups, >=1.5x end to end")
	tbl.Render(w)
	return out, nil
}

// pointLookupMicrobench times repeated point-lookup probes — the
// dominant query shape of predicate minimization — under both
// engines on one indexed-size table.
func pointLookupMicrobench(opt Options) (EngineRow, error) {
	rows, iters := 20000, 3000
	if opt.Quick {
		rows, iters = 5000, 600
	}
	db := sqldb.NewDatabase()
	if err := db.CreateTable(sqldb.TableSchema{
		Name: "pt",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt},
			{Name: "grp", Type: sqldb.TInt},
			{Name: "payload", Type: sqldb.TText},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		return EngineRow{}, err
	}
	for i := 0; i < rows; i++ {
		if err := db.Insert("pt",
			sqldb.NewInt(int64(i)), sqldb.NewInt(int64(i%97)),
			sqldb.NewText(fmt.Sprintf("p-%06d", i))); err != nil {
			return EngineRow{}, err
		}
	}
	stmts := make([]*sqldb.SelectStmt, 64)
	for k := range stmts {
		stmt, err := sqlparser.Parse(fmt.Sprintf(
			"select payload from pt where id = %d and grp >= 0", k*131%rows))
		if err != nil {
			return EngineRow{}, err
		}
		stmts[k] = stmt
	}
	ctx := context.Background()
	run := func(mode sqldb.ExecMode) (time.Duration, error) {
		db.SetExecMode(mode)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := db.Execute(ctx, stmts[i%len(stmts)]); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	before := db.EngineCounters()
	treeTime, err := run(sqldb.ExecTree)
	if err != nil {
		return EngineRow{}, fmt.Errorf("point-lookup microbench under tree engine: %w", err)
	}
	vecTime, err := run(sqldb.ExecVector)
	if err != nil {
		return EngineRow{}, fmt.Errorf("point-lookup microbench under vector engine: %w", err)
	}
	after := db.EngineCounters()
	return EngineRow{
		Case:        fmt.Sprintf("point-lookup/%drows", rows),
		Tree:        treeTime,
		Vector:      vecTime,
		Speedup:     float64(treeTime) / float64(vecTime),
		IndexBuilds: after.IndexBuilds - before.IndexBuilds,
		IndexHits:   after.IndexHits - before.IndexHits,
	}, nil
}

// microbenchSpec describes one tree-vs-vector query-shape benchmark:
// a prepared database, the statements to cycle through, and how many
// executions to time per engine.
type microbenchSpec struct {
	name  string
	db    *sqldb.Database
	stmts []*sqldb.SelectStmt
	iters int
	// clone executes against a fresh clone per engine, mirroring the
	// minimizer's advise-then-clone discipline: index advice on the
	// parent pre-installs shared range/hash indexes on vector-mode
	// clones, so probe cost amortizes across the whole clone fleet.
	clone bool
}

// runEngineMicrobench times spec.iters executions under each engine
// and cross-checks that every statement renders byte-identical
// results in both modes (reported as SQLIdentical).
func runEngineMicrobench(spec microbenchSpec) (EngineRow, error) {
	ctx := context.Background()
	run := func(mode sqldb.ExecMode) (time.Duration, string, error) {
		spec.db.SetExecMode(mode)
		target := spec.db
		if spec.clone {
			target = spec.db.Clone()
		}
		start := time.Now()
		for i := 0; i < spec.iters; i++ {
			if _, err := target.Execute(ctx, spec.stmts[i%len(spec.stmts)]); err != nil {
				return 0, "", err
			}
		}
		dur := time.Since(start)
		var digest strings.Builder
		for _, stmt := range spec.stmts {
			res, err := target.Execute(ctx, stmt)
			if err != nil {
				return 0, "", err
			}
			digest.WriteString(res.String())
			digest.WriteByte('\n')
		}
		return dur, digest.String(), nil
	}
	before := spec.db.EngineCounters()
	treeTime, treeDigest, err := run(sqldb.ExecTree)
	if err != nil {
		return EngineRow{}, fmt.Errorf("%s under tree engine: %w", spec.name, err)
	}
	vecTime, vecDigest, err := run(sqldb.ExecVector)
	if err != nil {
		return EngineRow{}, fmt.Errorf("%s under vector engine: %w", spec.name, err)
	}
	after := spec.db.EngineCounters()
	return EngineRow{
		Case:         spec.name,
		Tree:         treeTime,
		Vector:       vecTime,
		Speedup:      float64(treeTime) / float64(vecTime),
		IndexBuilds:  after.IndexBuilds - before.IndexBuilds,
		IndexHits:    after.IndexHits - before.IndexHits,
		RangeBuilds:  after.RangeBuilds - before.RangeBuilds,
		RangeHits:    after.RangeHits - before.RangeHits,
		JoinReuses:   after.JoinReuses - before.JoinReuses,
		SQLIdentical: treeDigest == vecDigest,
	}, nil
}

// groupAggSpec builds a TPC-H Q1-shaped workload: a wide fact table
// folded into a handful of groups under the full aggregate battery.
// This is the aggregation-dominated case the columnar accumulators
// (agg_vector.go) exist for.
func groupAggSpec(opt Options) (microbenchSpec, error) {
	rows, iters := 30000, 40
	if opt.Quick {
		rows, iters = 6000, 10
	}
	db := sqldb.NewDatabase()
	if err := db.CreateTable(sqldb.TableSchema{
		Name: "ln",
		Columns: []sqldb.Column{
			{Name: "flag", Type: sqldb.TText},
			{Name: "stat", Type: sqldb.TText},
			{Name: "qty", Type: sqldb.TInt},
			{Name: "price", Type: sqldb.TFloat},
			{Name: "disc", Type: sqldb.TFloat},
		},
	}); err != nil {
		return microbenchSpec{}, err
	}
	flags, stats := []string{"A", "N", "R"}, []string{"F", "O"}
	for i := 0; i < rows; i++ {
		if err := db.Insert("ln",
			sqldb.NewText(flags[i%3]), sqldb.NewText(stats[i%2]),
			sqldb.NewInt(int64(i%50)+1),
			sqldb.NewFloat(float64(i%997)*1.01),
			sqldb.NewFloat(float64(i%10)/100)); err != nil {
			return microbenchSpec{}, err
		}
	}
	stmt, err := sqlparser.Parse(
		"select flag, stat, count(qty), sum(qty), avg(price), min(disc), max(price) " +
			"from ln group by flag, stat order by flag, stat")
	if err != nil {
		return microbenchSpec{}, err
	}
	return microbenchSpec{
		name:  fmt.Sprintf("group-agg/%drows", rows),
		db:    db,
		stmts: []*sqldb.SelectStmt{stmt},
		iters: iters,
	}, nil
}

// topKSpec builds an ORDER BY + LIMIT workload over heavily tied sort
// keys: the vector engine's bounded top-K heap versus the tree
// engine's full sort-then-truncate.
func topKSpec(opt Options) (microbenchSpec, error) {
	rows, iters := 30000, 40
	if opt.Quick {
		rows, iters = 6000, 10
	}
	db := sqldb.NewDatabase()
	if err := db.CreateTable(sqldb.TableSchema{
		Name: "tk",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt},
			{Name: "grp", Type: sqldb.TInt},
			{Name: "w", Type: sqldb.TText},
		},
	}); err != nil {
		return microbenchSpec{}, err
	}
	words := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i := 0; i < rows; i++ {
		if err := db.Insert("tk",
			sqldb.NewInt(int64(i)), sqldb.NewInt(int64(i%7)),
			sqldb.NewText(words[i%len(words)])); err != nil {
			return microbenchSpec{}, err
		}
	}
	stmt, err := sqlparser.Parse("select grp, w, id from tk order by grp desc, w limit 10")
	if err != nil {
		return microbenchSpec{}, err
	}
	return microbenchSpec{
		name:  fmt.Sprintf("order-limit/%drows", rows),
		db:    db,
		stmts: []*sqldb.SelectStmt{stmt},
		iters: iters,
	}, nil
}

// rangeProbeSpec builds the advised-BETWEEN workload: the probed
// column sits behind a non-indexable (but total) leading predicate,
// so only the minimizer-style AdviseIndexes call makes the range
// index eligible. Executions run against a clone, so the vector
// engine answers every probe from the shared pre-built range index
// while the tree engine re-scans the table each time.
func rangeProbeSpec(opt Options) (microbenchSpec, error) {
	rows, iters := 20000, 2000
	if opt.Quick {
		rows, iters = 5000, 400
	}
	db := sqldb.NewDatabase()
	if err := db.CreateTable(sqldb.TableSchema{
		Name: "rp",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt},
			{Name: "w", Type: sqldb.TInt},
			{Name: "v", Type: sqldb.TInt},
			{Name: "payload", Type: sqldb.TText},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		return microbenchSpec{}, err
	}
	for i := 0; i < rows; i++ {
		if err := db.Insert("rp",
			sqldb.NewInt(int64(i)), sqldb.NewInt(int64(i%7)),
			sqldb.NewInt(int64(i%1000)),
			sqldb.NewText(fmt.Sprintf("r-%06d", i))); err != nil {
			return microbenchSpec{}, err
		}
	}
	if err := db.AdviseIndexes(sqldb.IndexHint{Table: "rp", Column: "v"}); err != nil {
		return microbenchSpec{}, err
	}
	stmts := make([]*sqldb.SelectStmt, 64)
	for k := range stmts {
		lo := (k * 37) % 990
		stmt, err := sqlparser.Parse(fmt.Sprintf(
			"select id from rp where w <> 3 and v between %d and %d", lo, lo+9))
		if err != nil {
			return microbenchSpec{}, err
		}
		stmts[k] = stmt
	}
	return microbenchSpec{
		name:  fmt.Sprintf("between-probe/%drows", rows),
		db:    db,
		stmts: stmts,
		iters: iters,
		clone: true,
	}, nil
}
