package bench

// E16: full-pipeline overhead of the telemetry stack. Three TPC-H
// extractions run twice — once with every observability hook off,
// once with tracer, ledger, metrics, logger AND live stream sinks
// attached — and the row records the relative cost in process CPU
// time (wall clock off unix). The acceptance bar for the production
// deployment is <5% overhead with byte-identical extracted SQL.

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/obs"
	"unmasque/internal/workloads/tpch"
)

// ObsRow is one telemetry-overhead measurement.
type ObsRow struct {
	Query        string  `json:"query"`
	OffMS        float64 `json:"off_ms"`       // CPU ms, telemetry fully off
	OnMS         float64 `json:"on_ms"`        // CPU ms, tracer+ledger+metrics+logger+sinks
	OverheadPct  float64 `json:"overhead_pct"` // (on-off)/off * 100
	Probes       int64   `json:"probes"`       // ledger events in the instrumented run
	SQLIdentical bool    `json:"sql_identical"`
}

// Obs measures the end-to-end cost of the telemetry pipeline on
// three TPC-H extractions. Extraction here is tens of milliseconds
// and shared-machine wall-clock noise is both large (±20% per run)
// and bursty, so the timed quantity is process CPU time, which
// run-queue delay and CPU steal cannot inflate — telemetry costs
// cycles, and cycles are what the acceptance bar guards. Residual
// variance is handled by aggregation: both variants run in every
// iteration with the order alternating (so drift cannot
// systematically favor one), the allocator is equalized before each
// timed region, the first round is an untimed warmup, and each
// variant is summarized by the interquartile mean of its samples.
func Obs(w io.Writer, opt Options) ([]ObsRow, error) {
	queries := tpch.HiddenQueries()
	names := []string{"Q3", "Q6", "Q10"}
	scale := tpch.ScaleTiny * 8
	iters := 16
	if opt.Quick {
		scale = tpch.ScaleTiny
		iters = 4
	}

	once := func(name, sql string, instrument bool) (time.Duration, string, int64, error) {
		db := tpch.NewDatabase(scale, opt.Seed)
		if err := tpch.PlantWitnesses(db, map[string]string{name: sql}); err != nil {
			return 0, "", 0, err
		}
		exe, err := app.NewSQLExecutable("tpch/"+name, sql)
		if err != nil {
			return 0, "", 0, err
		}
		cfg := core.DefaultConfig()
		cfg.Seed = opt.Seed
		var ledger *obs.Ledger
		if instrument {
			cfg.Tracer = obs.NewTracer("extract")
			ledger = obs.NewLedger()
			cfg.Ledger = ledger
			cfg.Metrics = obs.NewMetrics()
			cfg.Logger = obs.NewLogger(io.Discard, obs.LevelDebug)
			// Live sinks too: the production daemon always streams.
			cfg.Tracer.SetSink(func(obs.SpanEvent) {})
			ledger.SetSink(func(obs.ProbeEvent) {})
		}
		// Equalize allocator state before the timed region: without
		// this, whichever variant runs second inherits the other's heap
		// garbage and pays its collection cost.
		runtime.GC()
		cpu0, haveCPU := procCPU()
		start := time.Now()
		ext, err := core.Extract(exe, db, cfg)
		took := time.Since(start)
		if haveCPU {
			if cpu1, ok := procCPU(); ok {
				took = cpu1 - cpu0
			}
		}
		if err != nil {
			return 0, "", 0, fmt.Errorf("%s: %w", name, err)
		}
		var probes int64
		if ledger != nil {
			probes = int64(ledger.Len())
		}
		return took, ext.SQL, probes, nil
	}

	var rows []ObsRow
	tbl := &TextTable{
		Title:  "Telemetry overhead (tracer+ledger+metrics+logger+stream sinks vs. all off)",
		Header: []string{"query", "off_ms", "on_ms", "overhead_%", "probes", "sql_identical"},
	}
	for _, name := range names {
		sql, ok := queries[name]
		if !ok {
			continue
		}
		var offs, ons []time.Duration
		var offSQL, onSQL string
		var probes int64
		for i := 0; i <= iters; i++ { // round 0 is warmup, untimed
			// Alternate which variant runs first so any order-dependent
			// drift (frequency scaling, cache residency) cannot
			// systematically favor one side.
			var off, on time.Duration
			var sqlOff, sqlOn string
			var p int64
			var err error
			if i%2 == 0 {
				off, sqlOff, _, err = once(name, sql, false)
				if err == nil {
					on, sqlOn, p, err = once(name, sql, true)
				}
			} else {
				on, sqlOn, p, err = once(name, sql, true)
				if err == nil {
					off, sqlOff, _, err = once(name, sql, false)
				}
			}
			if err != nil {
				return nil, err
			}
			offSQL, onSQL, probes = sqlOff, sqlOn, p
			if i == 0 {
				continue
			}
			offs = append(offs, off)
			ons = append(ons, on)
		}
		offIQM := iqMean(offs)
		onIQM := iqMean(ons)
		row := ObsRow{
			Query:        name,
			OffMS:        offIQM / float64(time.Millisecond),
			OnMS:         onIQM / float64(time.Millisecond),
			OverheadPct:  (onIQM/offIQM - 1) * 100,
			Probes:       probes,
			SQLIdentical: offSQL == onSQL,
		}
		rows = append(rows, row)
		tbl.Add(row.Query, fmt.Sprintf("%.1f", row.OffMS), fmt.Sprintf("%.1f", row.OnMS),
			fmt.Sprintf("%.2f", row.OverheadPct), row.Probes, row.SQLIdentical)
	}
	tbl.Note("process-CPU ms; scale %v, interquartile mean over %d order-alternating iterations per variant (plus warmup); acceptance: overhead < 5%%, identical SQL", scale, iters)
	tbl.Render(w)
	return rows, nil
}

// iqMean returns the interquartile mean of a non-empty duration
// slice in float64 nanoseconds: samples are sorted and the mean is
// taken over the middle half, discarding the fastest and slowest
// quarter symmetrically.
func iqMean(ds []time.Duration) float64 {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	lo, hi := len(s)/4, len(s)-len(s)/4
	var sum float64
	for _, d := range s[lo:hi] {
		sum += float64(d)
	}
	return sum / float64(hi-lo)
}
