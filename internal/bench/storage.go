package bench

// Disk-tier measurements (the PR 9 subsystem): what the durable
// cross-job probe cache saves a warm daemon, and what the paged heap
// files cost relative to resident rows.

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"unmasque/internal/core"
	"unmasque/internal/sqldb"
	"unmasque/internal/storage"
	"unmasque/internal/workloads/registry"
	"unmasque/internal/workloads/tpch"
)

// StorageExtractRow is one application's cold-vs-warm extraction pair
// against a durable probe cache that survives the "daemon restart"
// between the two runs.
type StorageExtractRow struct {
	App string `json:"app"`
	// Application invocations and wall time of the first (cold-cache)
	// extraction.
	ColdInvocations int64   `json:"cold_invocations"`
	ColdMS          float64 `json:"cold_ms"`
	// The same job repeated after the cache was closed and reopened:
	// every probe outcome replays from disk.
	WarmInvocations int64   `json:"warm_invocations"`
	WarmDiskHits    int64   `json:"warm_disk_hits"`
	WarmMS          float64 `json:"warm_ms"`
	SQLIdentical    bool    `json:"sql_identical"`
}

// StorageScanRow is one corpus-scale point of the scan-throughput
// comparison: touching every row of a resident instance vs faulting
// the same rows from paged heap files through the buffer pool.
type StorageScanRow struct {
	ScaleX         int     `json:"scale_x"`
	Rows           int64   `json:"rows"`
	MemMS          float64 `json:"mem_ms"`
	DiskMS         float64 `json:"disk_ms"`
	MemRowsPerSec  float64 `json:"mem_rows_per_sec"`
	DiskRowsPerSec float64 `json:"disk_rows_per_sec"`
	// Buffer-pool accounting for the disk scan.
	PoolMisses int64 `json:"pool_misses"`
	PoolHits   int64 `json:"pool_hits"`
}

// StorageRows is the storage experiment's snapshot payload.
type StorageRows struct {
	Extract []StorageExtractRow `json:"extract"`
	Scan    []StorageScanRow    `json:"scan"`
}

// Storage measures the disk tier. Part one replays the daemon's
// restart story: each enki application is extracted against a cold
// durable probe cache, the cache is closed and reopened (the restart),
// and the identical job runs again — the warm run must invoke the
// application zero times and produce byte-identical SQL. Part two
// scales a TPC-H instance ×1/×10/×100 and compares full-corpus row
// scans of resident tables against lazy page faults through the
// buffer pool. Requires Options.ScratchDir.
func Storage(w io.Writer, opt Options) (*StorageRows, error) {
	if opt.ScratchDir == "" {
		return nil, fmt.Errorf("storage bench: Options.ScratchDir required")
	}
	out := &StorageRows{}

	cachePath := filepath.Join(opt.ScratchDir, "bench-probecache", "probecache.log")
	etbl := &TextTable{
		Title:  "Durable Probe Cache — identical job on a cold vs warm (restarted) daemon",
		Header: []string{"app", "cold_invocations", "cold_ms", "warm_invocations", "warm_disk_hits", "warm_ms", "speedup", "sql_identical"},
	}
	for _, name := range serviceApps() {
		cold, coldMS, err := storageExtract(name, cachePath, opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("storage bench %s cold: %w", name, err)
		}
		// Closing and reopening the cache between the runs is the
		// restart: the warm run starts from the persisted log alone.
		warm, warmMS, err := storageExtract(name, cachePath, opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("storage bench %s warm: %w", name, err)
		}
		row := StorageExtractRow{
			App:             name,
			ColdInvocations: cold.Stats.AppInvocations,
			ColdMS:          coldMS,
			WarmInvocations: warm.Stats.AppInvocations,
			WarmDiskHits:    warm.Stats.DiskCacheHits,
			WarmMS:          warmMS,
			SQLIdentical:    cold.SQL == warm.SQL,
		}
		out.Extract = append(out.Extract, row)
		speedup := "-"
		if row.WarmMS > 0 {
			speedup = fmt.Sprintf("%.1fx", row.ColdMS/row.WarmMS)
		}
		etbl.Add(row.App, row.ColdInvocations, fmt.Sprintf("%.1f", row.ColdMS),
			row.WarmInvocations, row.WarmDiskHits, fmt.Sprintf("%.1f", row.WarmMS),
			speedup, row.SQLIdentical)
	}
	etbl.Note("the cache is closed and reopened between the runs; warm extractions must invoke the application zero times")
	etbl.Render(w)

	scales := []int{1, 10, 100}
	if opt.Quick {
		scales = []int{1, 10}
	}
	stbl := &TextTable{
		Title:  "Scan Throughput — resident rows vs paged heap files (TPC-H corpus, scaled)",
		Header: []string{"scale", "rows", "mem_ms", "disk_ms", "mem_rows_per_sec", "disk_rows_per_sec", "pool_miss/hit"},
	}
	for _, mult := range scales {
		row, err := storageScan(filepath.Join(opt.ScratchDir, fmt.Sprintf("bench-heap-%dx", mult)), mult, opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("storage bench scan %dx: %w", mult, err)
		}
		out.Scan = append(out.Scan, *row)
		stbl.Add(fmt.Sprintf("%dx", row.ScaleX), row.Rows,
			fmt.Sprintf("%.2f", row.MemMS), fmt.Sprintf("%.2f", row.DiskMS),
			fmt.Sprintf("%.0f", row.MemRowsPerSec), fmt.Sprintf("%.0f", row.DiskRowsPerSec),
			fmt.Sprintf("%d/%d", row.PoolMisses, row.PoolHits))
	}
	stbl.Note("the disk scan opens a fresh database per run, so every page faults through the buffer pool exactly once")
	stbl.Render(w)
	return out, nil
}

// storageExtract runs one extraction with the durable cache open for
// exactly its duration, so consecutive calls model consecutive daemon
// lifetimes.
func storageExtract(appName, cachePath string, seed int64) (*core.Extraction, float64, error) {
	exe, db, err := registry.Build(appName, seed)
	if err != nil {
		return nil, 0, err
	}
	pc, err := storage.OpenProbeCache(cachePath)
	if err != nil {
		return nil, 0, err
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.SharedCache = pc.Namespace(storage.AppNamespace(appName, seed))
	start := time.Now()
	ext, err := core.Extract(exe, db, cfg)
	wall := time.Since(start)
	if cerr := pc.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, err
	}
	return ext, float64(wall.Microseconds()) / 1000, nil
}

// storageScan bulk-loads a ×mult TPC-H instance into heap files, then
// times touching every row twice: once on the resident source and once
// through a freshly opened store-backed database whose tables fault in
// page by page.
func storageScan(dir string, mult int, seed int64) (*StorageScanRow, error) {
	db := tpch.NewDatabase(tpch.ScaleTiny*tpch.Scale(mult), seed)
	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if err := st.BulkLoad(db); err != nil {
		return nil, err
	}

	memStart := time.Now()
	memRows, err := touchAllRows(db)
	if err != nil {
		return nil, err
	}
	memDur := time.Since(memStart)

	disk, err := st.OpenDatabase()
	if err != nil {
		return nil, err
	}
	diskStart := time.Now()
	diskRows, err := touchAllRows(disk)
	if err != nil {
		return nil, err
	}
	diskDur := time.Since(diskStart)
	if memRows != diskRows {
		return nil, fmt.Errorf("row count diverged: mem=%d disk=%d", memRows, diskRows)
	}
	ps := st.PoolStats()
	return &StorageScanRow{
		ScaleX:         mult,
		Rows:           memRows,
		MemMS:          float64(memDur.Microseconds()) / 1000,
		DiskMS:         float64(diskDur.Microseconds()) / 1000,
		MemRowsPerSec:  rate(memRows, memDur),
		DiskRowsPerSec: rate(diskRows, diskDur),
		PoolMisses:     ps.Misses,
		PoolHits:       ps.Hits,
	}, nil
}

// touchAllRows walks every value of every row of every table — the
// full-corpus scan both storage modes are timed on. On a store-backed
// database the first Table call per table faults its pages in through
// the buffer pool.
func touchAllRows(db *sqldb.Database) (int64, error) {
	var rows int64
	var sink int
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			return 0, err
		}
		for _, r := range t.SnapshotRows() {
			rows++
			for _, v := range r {
				sink += len(v.S)
			}
		}
	}
	_ = sink
	return rows, nil
}

func rate(rows int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(rows) / d.Seconds()
}
