package bench

// Per-phase cost profiling on top of the internal/obs trace: instead
// of the coarse four-bucket split of core.Stats, the span tree and
// probe ledger attribute every microsecond and every executable
// invocation to the pipeline phase that spent it.

import (
	"fmt"
	"io"
	"time"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/obs"
	"unmasque/internal/workloads/tpch"
)

// PhaseCost aggregates the trace of one or more extractions by
// pipeline phase.
type PhaseCost struct {
	Phase    string
	Duration time.Duration // wall time inside the phase spans
	Probes   int64         // ledger events (invocations + cache hits)
	Executed int64         // actual executable invocations
	Hits     int64         // invocations absorbed by the run cache
	AppTime  time.Duration // time spent inside the executable
	Share    float64       // Duration / total extraction time
}

// TraceProfile runs the TPC-H extraction suite with the span tracer
// and probe ledger attached and prints the per-phase cost table —
// where the pipeline spends its wall clock and its probe budget.
func TraceProfile(w io.Writer, opt Options) ([]PhaseCost, error) {
	queries := tpch.HiddenQueries()
	names := []string{"Q1", "Q3", "Q6"}
	if opt.Quick {
		names = []string{"Q3", "Q6"}
	}

	byPhase := map[string]*PhaseCost{}
	var order []string // phases in pipeline order (first appearance)
	var total time.Duration
	var extractions int

	for _, name := range names {
		sql, ok := queries[name]
		if !ok {
			continue
		}
		db := tpch.NewDatabase(tpch.ScaleTiny*4, opt.Seed)
		if err := tpch.PlantWitnesses(db, map[string]string{name: sql}); err != nil {
			return nil, fmt.Errorf("trace profile %s: %w", name, err)
		}
		exe, err := app.NewSQLExecutable("tpch/"+name, sql)
		if err != nil {
			return nil, fmt.Errorf("trace profile %s: %w", name, err)
		}
		cfg := core.DefaultConfig()
		cfg.Seed = opt.Seed
		cfg.Tracer = obs.NewTracer("extract")
		cfg.Ledger = obs.NewLedger()
		ext, err := core.Extract(exe, db, cfg)
		if err != nil {
			return nil, fmt.Errorf("trace profile %s: %w", name, err)
		}
		extractions++

		phase := func(p string) *PhaseCost {
			pc, ok := byPhase[p]
			if !ok {
				pc = &PhaseCost{Phase: p}
				byPhase[p] = pc
				order = append(order, p)
			}
			return pc
		}
		// Direct children of the root span are the pipeline phases;
		// their durations partition the extraction's wall clock.
		root := ext.Trace[0]
		for _, ev := range ext.Trace {
			if ev.Parent != root.ID || ev.ID == root.ID {
				continue
			}
			d := time.Duration(ev.DurUS) * time.Microsecond
			phase(ev.Name).Duration += d
			total += d
		}
		// The ledger attributes each invocation/hit to its phase.
		for _, ev := range cfg.Ledger.Events() {
			pc := phase(ev.Phase)
			pc.Probes++
			if ev.Cache == obs.CacheHit {
				pc.Hits++
			} else {
				pc.Executed++
				pc.AppTime += time.Duration(ev.DurUS) * time.Microsecond
			}
		}
	}

	out := make([]PhaseCost, 0, len(order))
	tbl := &TextTable{
		Title:  "Per-phase cost profile (from -trace spans and probe ledger)",
		Header: []string{"phase", "time_ms", "share_%", "probes", "executed", "cache_hits", "app_ms"},
	}
	for _, p := range order {
		pc := byPhase[p]
		if total > 0 {
			pc.Share = float64(pc.Duration) / float64(total)
		}
		tbl.Add(pc.Phase, ms(pc.Duration), fmt.Sprintf("%.1f", pc.Share*100),
			pc.Probes, pc.Executed, pc.Hits, ms(pc.AppTime))
		out = append(out, *pc)
	}
	tbl.Note("aggregated over %d TPC-H extractions; share is of summed phase wall time", extractions)
	tbl.Note("executed + cache_hits = probes; app_ms is time inside the black-box executable")
	tbl.Render(w)
	return out, nil
}
