package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/regal"
	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/workloads/enki"
	"unmasque/internal/workloads/job"
	"unmasque/internal/workloads/rubis"
	"unmasque/internal/workloads/tpcds"
	"unmasque/internal/workloads/tpch"
	"unmasque/internal/workloads/wilos"
)

// Options tunes the experiment drivers.
type Options struct {
	// Quick shrinks database scales and search budgets so the whole
	// suite finishes in roughly a minute (used by tests).
	Quick bool
	// Seed drives data generation and extraction randomness.
	Seed int64
	// ScratchDir is a writable directory for experiments that exercise
	// the disk tier (storage). The caller owns its lifecycle; this
	// package only passes it to storage.Open / OpenProbeCache (which
	// create subdirectories as needed) and never touches the
	// filesystem directly. Empty skips disk-backed measurements.
	ScratchDir string
}

// DefaultOptions mirrors the paper-shaped run.
func DefaultOptions() Options { return Options{Seed: 1} }

// QueryTiming is one extraction measurement.
type QueryTiming struct {
	Name         string
	Total        time.Duration
	Sampling     time.Duration
	Partitioning time.Duration
	Rest         time.Duration
	Checker      time.Duration
	Invocations  int64
	NativeExec   time.Duration
	Verified     bool
	Summary      string
	Err          error

	// Scheduler counters (PR 2): resolved worker-pool size, probes
	// dispatched through the pool, and run-memoization outcomes.
	Workers        int
	ParallelProbes int64
	CacheHits      int64
	CacheMisses    int64
	CacheHitRate   float64
}

// extractOne runs the pipeline on one executable and measures the
// native execution of the hidden logic for comparison.
func extractOne(exe app.Executable, db *sqldb.Database, cfg core.Config) QueryTiming {
	qt := QueryTiming{Name: exe.Name()}
	nativeStart := time.Now()
	if _, err := exe.Run(context.Background(), db); err != nil {
		qt.Err = fmt.Errorf("native execution: %w", err)
		return qt
	}
	qt.NativeExec = time.Since(nativeStart)

	ext, err := core.Extract(exe, db, cfg)
	if err != nil {
		qt.Err = err
		return qt
	}
	st := ext.Stats
	qt.Total = st.Total
	qt.Sampling = st.Sampling
	qt.Partitioning = st.Partitioning
	qt.Rest = st.Remaining()
	qt.Checker = st.Checker
	qt.Invocations = st.AppInvocations
	qt.Verified = ext.CheckerVerified
	qt.Summary = ext.Summary()
	qt.Workers = st.Workers
	qt.ParallelProbes = st.ParallelProbes
	qt.CacheHits = st.CacheHits
	qt.CacheMisses = st.CacheMisses
	qt.CacheHitRate = st.CacheHitRate()
	return qt
}

func ms(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }

// ---------------------------------------------------------------- E1

// Fig8Row is one UNMASQUE-vs-REGAL comparison.
type Fig8Row struct {
	Name       string
	Unmasque   time.Duration
	UnmasqueOK bool
	Regal      time.Duration
	RegalDNC   bool
	RegalOK    bool
}

// Fig8 regenerates Figure 8: extraction time of UNMASQUE vs REGAL on
// the 11 RQ queries over the 5 GB-analogue TPC-H instance.
func Fig8(w io.Writer, opt Options) ([]Fig8Row, error) {
	scale := tpch.Scale5GB
	if opt.Quick {
		scale = tpch.ScaleTiny * 4
	}
	db := tpch.NewDatabase(scale, opt.Seed)
	if err := tpch.PlantWitnesses(db, tpch.RegalQueries()); err != nil {
		return nil, err
	}
	rcfg := regal.DefaultConfig()
	rcfg.Timeout = 30 * time.Second
	if opt.Quick {
		rcfg.Timeout = 10 * time.Second
	}
	ucfg := core.DefaultConfig()
	ucfg.Seed = opt.Seed

	var rows []Fig8Row
	tbl := &TextTable{
		Title:  "Figure 8 — Comparison with QRE (TPC-H, 5 GB analogue)",
		Header: []string{"query", "unmasque_ms", "regal_ms", "regal_status"},
	}
	for _, name := range tpch.RegalOrder() {
		sql := tpch.RegalQueries()[name]
		exe := app.MustSQLExecutable(name, sql)
		row := Fig8Row{Name: name}

		uStart := time.Now()
		_, uErr := core.Extract(exe, db, ucfg)
		row.Unmasque = time.Since(uStart)
		row.UnmasqueOK = uErr == nil

		target, err := exe.Run(context.Background(), db)
		if err != nil {
			return nil, err
		}
		rout := regal.ReverseEngineer(db, target, rcfg)
		row.Regal = rout.Elapsed
		row.RegalDNC = rout.DNC
		row.RegalOK = rout.Query != nil

		status := "ok"
		switch {
		case row.RegalDNC:
			status = "DNC"
		case !row.RegalOK:
			status = "no candidate"
		}
		tbl.Add(name, ms(row.Unmasque), ms(row.Regal), status)
		rows = append(rows, row)
	}
	tbl.Note("paper shape: UNMASQUE roughly an order of magnitude faster; some REGAL runs DNC")
	tbl.Render(w)
	return rows, nil
}

// ---------------------------------------------------------------- E2

// Fig9 regenerates Figure 9: per-query extraction time with the
// module breakdown on the 100 GB-analogue TPC-H instance.
func Fig9(w io.Writer, opt Options) ([]QueryTiming, error) {
	scale := tpch.Scale100GB
	if opt.Quick {
		scale = tpch.ScaleTiny * 4
	}
	db := tpch.NewDatabase(scale, opt.Seed)
	if err := tpch.PlantWitnesses(db, tpch.HiddenQueries()); err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Seed = opt.Seed

	var out []QueryTiming
	tbl := &TextTable{
		Title:  "Figure 9 — Hidden Query Extraction Time (TPC-H, 100 GB analogue)",
		Header: []string{"query", "total_ms", "sampling_ms", "partitioning_ms", "rest_ms", "checker_ms", "invocations", "native_ms", "ratio"},
	}
	for _, name := range tpch.QueryOrder() {
		exe := app.MustSQLExecutable(name, tpch.HiddenQueries()[name])
		qt := extractOne(exe, db, cfg)
		out = append(out, qt)
		if qt.Err != nil {
			tbl.Add(name, "ERROR", qt.Err, "", "", "", "", "", "")
			continue
		}
		ratio := float64(qt.Total) / float64(qt.NativeExec)
		tbl.Add(name, ms(qt.Total), ms(qt.Sampling), ms(qt.Partitioning), ms(qt.Rest),
			ms(qt.Checker), qt.Invocations, ms(qt.NativeExec), fmt.Sprintf("%.2f", ratio))
	}
	tbl.Note("paper shape: minimizer (sampling+partitioning) dominates; queries without lineitem are far cheaper")
	tbl.Render(w)
	return out, nil
}

// ---------------------------------------------------------------- E3

// Fig10 regenerates Figure 10: extraction times on the JOB suite.
func Fig10(w io.Writer, opt Options) ([]QueryTiming, error) {
	scale := job.ScaleFull
	if opt.Quick {
		scale = job.ScaleTiny
	}
	db := job.NewDatabase(scale, opt.Seed)
	if err := job.PlantWitnesses(db, job.HiddenQueries()); err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Seed = opt.Seed

	var out []QueryTiming
	tbl := &TextTable{
		Title:  "Figure 10 — Hidden Query Extraction Time (JOB / IMDB analogue)",
		Header: []string{"query", "joins", "total_ms", "minimizer_ms", "rest_ms", "checker_ms", "invocations"},
	}
	for _, name := range job.QueryOrder() {
		sql := job.HiddenQueries()[name]
		exe := app.MustSQLExecutable(name, sql)
		qt := extractOne(exe, db, cfg)
		out = append(out, qt)
		if qt.Err != nil {
			tbl.Add(name, "", "ERROR", qt.Err, "", "", "")
			continue
		}
		joins := countJoins(sql)
		tbl.Add(name, joins, ms(qt.Total), ms(qt.Sampling+qt.Partitioning), ms(qt.Rest), ms(qt.Checker), qt.Invocations)
	}
	tbl.Note("paper shape: all rich-join queries extracted; database-size reduction dominates")
	tbl.Render(w)
	return out, nil
}

func countJoins(sql string) int {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return 0
	}
	n := 0
	for _, c := range sqldb.Conjuncts(stmt.Where) {
		if b, ok := c.(*sqldb.BinaryExpr); ok && b.Op == sqldb.OpEq {
			if _, lok := b.L.(*sqldb.ColumnExpr); lok {
				if _, rok := b.R.(*sqldb.ColumnExpr); rok {
					n++
				}
			}
		}
	}
	return n
}

// ---------------------------------------------------------------- E4

// Fig11Point is one scaling measurement.
type Fig11Point struct {
	Label      string
	Rows       int
	Extraction time.Duration
	Native     time.Duration
}

// Fig11 regenerates Figure 11: the Q5 extraction scaling profile
// against native execution across instance sizes.
func Fig11(w io.Writer, opt Options) ([]Fig11Point, error) {
	type step struct {
		label string
		scale tpch.Scale
	}
	steps := []step{
		{"200GB", tpch.Scale200GB}, {"400GB", tpch.Scale400GB}, {"600GB", tpch.Scale600GB},
		{"800GB", tpch.Scale800GB}, {"1TB", tpch.Scale1TB},
	}
	if opt.Quick {
		steps = []step{{"200GB", 0.4}, {"400GB", 0.8}, {"600GB", 1.2}, {"800GB", 1.6}, {"1TB", 2.0}}
	}
	cfg := core.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.SkipChecker = true // the paper's scaling curve is extraction only

	q5 := tpch.HiddenQueries()["Q5"]
	var out []Fig11Point
	tbl := &TextTable{
		Title:  "Figure 11 — Extraction Scaling Profile, Q5 (TPC-H)",
		Header: []string{"size", "rows", "extraction_ms", "native_ms", "native/extraction"},
	}
	for _, st := range steps {
		db := tpch.NewDatabase(st.scale, opt.Seed)
		if err := tpch.PlantWitnesses(db, map[string]string{"Q5": q5}); err != nil {
			return nil, err
		}
		exe := app.MustSQLExecutable("Q5", q5)
		qt := extractOne(exe, db, cfg)
		if qt.Err != nil {
			return nil, fmt.Errorf("%s: %w", st.label, qt.Err)
		}
		p := Fig11Point{Label: st.label, Rows: db.TotalRows(), Extraction: qt.Total, Native: qt.NativeExec}
		out = append(out, p)
		tbl.Add(st.label, p.Rows, ms(p.Extraction), ms(p.Native),
			fmt.Sprintf("%.2f", float64(p.Native)/float64(p.Extraction)))
	}
	tbl.Note("paper shape: extraction quasi-linear with a gentler slope than native execution")
	tbl.Render(w)
	return out, nil
}

// ---------------------------------------------------------------- E5

// SchemaScaleResult reports the from-clause identification cost with
// a wide schema.
type SchemaScaleResult struct {
	Tables       int
	QueryTables  int
	Identified   int
	Elapsed      time.Duration
	ProbeTimeout time.Duration
}

// SchemaScale regenerates the Section 6.2 schema-scaling experiment:
// 1000 dummy tables are added and T_E identification is timed for the
// 12-table query (J11) under a 100 ms probe timeout.
func SchemaScale(w io.Writer, opt Options) (*SchemaScaleResult, error) {
	extra := 1000
	if opt.Quick {
		extra = 100
	}
	db := job.NewDatabase(job.ScaleTiny, opt.Seed)
	queries := map[string]string{"J11": job.HiddenQueries()["J11"]}
	if err := job.PlantWitnesses(db, queries); err != nil {
		return nil, err
	}
	for i := 0; i < extra; i++ {
		if err := db.CreateTable(sqldb.TableSchema{
			Name: fmt.Sprintf("dummy_%04d", i),
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TInt},
				{Name: "payload", Type: sqldb.TText},
			},
			PrimaryKey: []string{"id"},
		}); err != nil {
			return nil, err
		}
	}
	exe := app.MustSQLExecutable("J11", queries["J11"])
	cfg := core.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.ProbeTimeout = 100 * time.Millisecond
	cfg.SkipChecker = true

	start := time.Now()
	ext, err := core.Extract(exe, db, cfg)
	if err != nil {
		return nil, err
	}
	res := &SchemaScaleResult{
		Tables:       len(db.TableNames()),
		QueryTables:  12,
		Identified:   len(ext.Tables),
		Elapsed:      ext.Stats.FromClause,
		ProbeTimeout: cfg.ProbeTimeout,
	}
	_ = start
	tbl := &TextTable{
		Title:  "Schema Scaling — T_E identification with a wide catalog (Section 6.2)",
		Header: []string{"catalog_tables", "query_tables", "identified", "from_clause_ms", "probe_timeout_ms"},
	}
	tbl.Add(res.Tables, res.QueryTables, res.Identified, ms(res.Elapsed), res.ProbeTimeout.Milliseconds())
	tbl.Note("paper shape: ~10 s for 1000+ tables at a 100 ms probe timeout")
	tbl.Render(w)
	return res, nil
}

// ---------------------------------------------------------- E6/E7/E8

// imperativeSuite drives one imperative workload.
func imperativeSuite(w io.Writer, title string, execs []*app.ImperativeExecutable, db *sqldb.Database, opt Options) ([]QueryTiming, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = opt.Seed
	tbl := &TextTable{
		Title:  title,
		Header: []string{"function", "extracted_clauses", "time_ms", "verified"},
	}
	var out []QueryTiming
	for _, exe := range execs {
		qt := extractOne(exe, db, cfg)
		out = append(out, qt)
		if qt.Err != nil {
			tbl.Add(exe.Name(), "ERROR: "+qt.Err.Error(), "", "")
			continue
		}
		tbl.Add(exe.Name(), qt.Summary, ms(qt.Total), qt.Verified)
	}
	tbl.Render(w)
	return out, nil
}

// Enki regenerates the Figure 12 experiment: imperative-to-SQL
// conversion of the 14 in-scope Enki commands.
func Enki(w io.Writer, opt Options) ([]QueryTiming, error) {
	db := enki.NewDatabase(opt.Seed)
	var execs []*app.ImperativeExecutable
	for _, c := range enki.Commands() {
		execs = append(execs, c.Exe)
	}
	return imperativeSuite(w, "Enki — Imperative to SQL Conversion (Figure 12; 14 of 17 commands in scope)", execs, db, opt)
}

// Wilos regenerates Table 3: the Wilos function conversions. Only the
// nine detailed functions are shown unless full is requested via
// !opt.Quick (all 22 run either way; the table mirrors the paper).
func Wilos(w io.Writer, opt Options) ([]QueryTiming, error) {
	db := wilos.NewDatabase(opt.Seed)
	var execs []*app.ImperativeExecutable
	for _, f := range wilos.Functions() {
		execs = append(execs, f.Exe)
	}
	return imperativeSuite(w, "Table 3 — Imperative to SQL Conversion, Wilos (22 in-scope functions; 9 detailed)", execs, db, opt)
}

// Rubis regenerates the RUBiS conversion experiment (tech-report
// detail in the paper).
func Rubis(w io.Writer, opt Options) ([]QueryTiming, error) {
	db := rubis.NewDatabase(opt.Seed)
	var execs []*app.ImperativeExecutable
	for _, s := range rubis.Servlets() {
		execs = append(execs, s.Exe)
	}
	return imperativeSuite(w, "RUBiS — Imperative to SQL Conversion (Section 6.3)", execs, db, opt)
}

// ---------------------------------------------------------------- E9

// TPCDS regenerates the TPC-DS extraction experiment.
func TPCDS(w io.Writer, opt Options) ([]QueryTiming, error) {
	scale := tpcds.ScaleUnit
	if opt.Quick {
		scale = tpcds.ScaleTiny
	}
	db := tpcds.NewDatabase(scale, opt.Seed)
	if err := tpcds.PlantWitnesses(db, tpcds.HiddenQueries()); err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Seed = opt.Seed
	tbl := &TextTable{
		Title:  "TPC-DS — Hidden Query Extraction (7 queries; Section 6.2)",
		Header: []string{"query", "total_ms", "minimizer_ms", "rest_ms", "invocations", "verified"},
	}
	var out []QueryTiming
	for _, name := range tpcds.QueryOrder() {
		exe := app.MustSQLExecutable(name, tpcds.HiddenQueries()[name])
		qt := extractOne(exe, db, cfg)
		out = append(out, qt)
		if qt.Err != nil {
			tbl.Add(name, "ERROR", qt.Err, "", "", "")
			continue
		}
		tbl.Add(name, ms(qt.Total), ms(qt.Sampling+qt.Partitioning), ms(qt.Rest), qt.Invocations, qt.Verified)
	}
	tbl.Render(w)
	return out, nil
}

// --------------------------------------------------------------- E10

// AblationRow is one minimizer-configuration measurement.
type AblationRow struct {
	Query       string
	Policy      string
	Sampling    bool
	Minimizer   time.Duration
	Invocations int64
}

// Ablation regenerates the Section 4.2 design-choice study: halving
// policy (largest/smallest/random/roundrobin) and sampling on/off.
func Ablation(w io.Writer, opt Options) ([]AblationRow, error) {
	scale := tpch.Scale100GB
	if opt.Quick {
		scale = tpch.ScaleTiny * 4
	}
	queries := map[string]string{"Q3": tpch.HiddenQueries()["Q3"], "Q5": tpch.HiddenQueries()["Q5"]}
	db := tpch.NewDatabase(scale, opt.Seed)
	if err := tpch.PlantWitnesses(db, queries); err != nil {
		return nil, err
	}
	tbl := &TextTable{
		Title:  "Ablation — Minimizer halving policy and sampling (Section 4.2)",
		Header: []string{"query", "policy", "sampling", "minimizer_ms", "invocations"},
	}
	var out []AblationRow
	for _, q := range []string{"Q3", "Q5"} {
		for _, policy := range []string{"largest", "smallest", "random", "roundrobin"} {
			for _, sampling := range []bool{true, false} {
				cfg := core.DefaultConfig()
				cfg.Seed = opt.Seed
				cfg.HalvingPolicy = policy
				cfg.DisableSampling = !sampling
				cfg.SkipChecker = true
				exe := app.MustSQLExecutable(q, queries[q])
				ext, err := core.Extract(exe, db, cfg)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", q, policy, err)
				}
				row := AblationRow{
					Query: q, Policy: policy, Sampling: sampling,
					Minimizer:   ext.Stats.Minimizer(),
					Invocations: ext.Stats.AppInvocations,
				}
				out = append(out, row)
				tbl.Add(q, policy, sampling, ms(row.Minimizer), row.Invocations)
			}
		}
	}
	tbl.Note("paper finding: halving the currently largest table is usually fastest")
	tbl.Render(w)
	return out, nil
}

// --------------------------------------------------------------- E13

// ParallelRow compares one query's sequential-uncached extraction
// against the concurrent, memoized scheduler.
type ParallelRow struct {
	Query          string
	SeqTotal       time.Duration
	SeqInvocations int64
	ParTotal       time.Duration
	ParInvocations int64
	Workers        int
	CacheHits      int64
	CacheHitRate   float64
	SQLIdentical   bool
}

// Parallel measures the probe scheduler (PR 2) on the TPC-H suite:
// each hidden query is extracted once with the fully sequential,
// uncached pipeline (Workers=1, DisableRunCache) and once with the
// concurrent memoized one (default Workers, cache on). The extracted
// SQL must be byte-identical between the two runs; the table reports
// the wall-clock and application-invocation reductions.
func Parallel(w io.Writer, opt Options) ([]ParallelRow, error) {
	scale := tpch.Scale100GB
	if opt.Quick {
		scale = tpch.ScaleTiny * 4
	}
	db := tpch.NewDatabase(scale, opt.Seed)
	if err := tpch.PlantWitnesses(db, tpch.HiddenQueries()); err != nil {
		return nil, err
	}
	seqCfg := core.DefaultConfig()
	seqCfg.Seed = opt.Seed
	seqCfg.Workers = 1
	seqCfg.DisableRunCache = true
	parCfg := core.DefaultConfig()
	parCfg.Seed = opt.Seed // Workers=0: runtime.GOMAXPROCS

	var out []ParallelRow
	tbl := &TextTable{
		Title:  "Probe Scheduler — sequential/uncached vs concurrent/memoized (TPC-H)",
		Header: []string{"query", "seq_ms", "seq_invocations", "par_ms", "par_invocations", "workers", "cache_hit_rate", "speedup", "sql_identical"},
	}
	for _, name := range tpch.QueryOrder() {
		exe := app.MustSQLExecutable(name, tpch.HiddenQueries()[name])
		seq, err := core.Extract(exe, db, seqCfg)
		if err != nil {
			return nil, fmt.Errorf("%s sequential: %w", name, err)
		}
		par, err := core.Extract(exe, db, parCfg)
		if err != nil {
			return nil, fmt.Errorf("%s parallel: %w", name, err)
		}
		row := ParallelRow{
			Query:          name,
			SeqTotal:       seq.Stats.Total,
			SeqInvocations: seq.Stats.AppInvocations,
			ParTotal:       par.Stats.Total,
			ParInvocations: par.Stats.AppInvocations,
			Workers:        par.Stats.Workers,
			CacheHits:      par.Stats.CacheHits,
			CacheHitRate:   par.Stats.CacheHitRate(),
			SQLIdentical:   seq.SQL == par.SQL,
		}
		out = append(out, row)
		tbl.Add(name, ms(row.SeqTotal), row.SeqInvocations, ms(row.ParTotal), row.ParInvocations,
			row.Workers, fmt.Sprintf("%.2f", row.CacheHitRate),
			fmt.Sprintf("%.2f", float64(row.SeqTotal)/float64(row.ParTotal)), row.SQLIdentical)
	}
	tbl.Note("determinism contract: the extracted SQL text is byte-identical for every worker count")
	tbl.Render(w)
	return out, nil
}

// --------------------------------------------------------------- E11

// Having regenerates the Section 7 exercise: extraction of having
// predicates via the reworked pipeline.
func Having(w io.Writer, opt Options) ([]QueryTiming, error) {
	db := tpch.NewDatabase(tpch.ScaleTiny*4, opt.Seed)
	if err := tpch.PlantWitnesses(db, tpch.HavingQueries()); err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.ExtractHaving = true
	tbl := &TextTable{
		Title:  "Section 7 — Having-Clause Extraction",
		Header: []string{"query", "total_ms", "having_predicates", "verified"},
	}
	var out []QueryTiming
	for _, name := range []string{"H1", "H2", "H3"} {
		exe := app.MustSQLExecutable(name, tpch.HavingQueries()[name])
		qt := QueryTiming{Name: name}
		ext, err := core.Extract(exe, db, cfg)
		if err != nil {
			qt.Err = err
			out = append(out, qt)
			tbl.Add(name, "ERROR", err, "")
			continue
		}
		qt.Total = ext.Stats.Total
		qt.Verified = ext.CheckerVerified
		qt.Summary = ext.Summary()
		out = append(out, qt)
		preds := ""
		for i, h := range ext.Having {
			if i > 0 {
				preds += " and "
			}
			preds += h.String()
		}
		tbl.Add(name, ms(qt.Total), preds, qt.Verified)
	}
	tbl.Render(w)
	return out, nil
}
