package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTextTableRendering(t *testing.T) {
	tbl := &TextTable{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tbl.Add("alpha", 1)
	tbl.Add("beta-long-name", 22.5)
	tbl.Note("footnote %d", 7)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Demo", "name", "beta-long-name", "footnote 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table misses %q:\n%s", want, out)
		}
	}
	// Columns aligned: the header and first row start their second
	// column at the same offset.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

// TestQuickExperimentShapes runs the fast drivers end to end and
// asserts the paper shapes (skipped in -short mode; this is the
// harness's own integration test).
func TestQuickExperimentShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are not short")
	}
	opt := DefaultOptions()
	opt.Quick = true
	var buf bytes.Buffer

	t.Run("fig11-shape", func(t *testing.T) {
		points, err := Fig11(&buf, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(points) != 5 {
			t.Fatalf("expected 5 scale points, got %d", len(points))
		}
		// Quasi-linear growth: the largest instance must take longer
		// than the smallest for both series.
		first, last := points[0], points[len(points)-1]
		if last.Extraction <= first.Extraction/2 {
			t.Errorf("extraction does not grow with scale: %v -> %v", first.Extraction, last.Extraction)
		}
		if last.Rows <= first.Rows {
			t.Errorf("row counts not increasing: %d -> %d", first.Rows, last.Rows)
		}
	})

	t.Run("having-shape", func(t *testing.T) {
		rows, err := Having(&buf, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Err != nil {
				t.Errorf("%s: %v", r.Name, r.Err)
			}
		}
	})

	t.Run("parallel-shape", func(t *testing.T) {
		rows, err := Parallel(&buf, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatal("no parallel measurements")
		}
		anyHits := false
		for _, r := range rows {
			if !r.SQLIdentical {
				t.Errorf("%s: sequential and concurrent extractions disagree on SQL", r.Query)
			}
			if r.Workers < 1 {
				t.Errorf("%s: resolved worker count %d", r.Query, r.Workers)
			}
			if r.ParInvocations > r.SeqInvocations {
				t.Errorf("%s: memoized run used more invocations (%d) than uncached (%d)",
					r.Query, r.ParInvocations, r.SeqInvocations)
			}
			if r.CacheHits > 0 {
				anyHits = true
				if r.ParInvocations >= r.SeqInvocations {
					t.Errorf("%s: %d cache hits but invocations not reduced (%d vs %d)",
						r.Query, r.CacheHits, r.ParInvocations, r.SeqInvocations)
				}
			}
		}
		if !anyHits {
			t.Error("no query recorded a single cache hit across the TPC-H suite")
		}
	})

	t.Run("equiv-shape", func(t *testing.T) {
		rows, err := Equiv(&buf, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatal("no equiv measurements")
		}
		for _, r := range rows {
			if !r.SQLIdentical {
				t.Errorf("%s: bounded checking changed the extracted SQL", r.Query)
			}
			if r.Bound != 2 {
				t.Errorf("%s: proof bound %d, want 2", r.Query, r.Bound)
			}
			if r.MutantsTotal == 0 {
				t.Errorf("%s: empty mutant catalogue", r.Query)
			}
			if got := r.KilledStatic + r.KilledWitness + r.ProvenEquivalent + r.MutantsUnresolved; got != r.MutantsTotal {
				t.Errorf("%s: mutant accounting %d of %d", r.Query, got, r.MutantsTotal)
			}
			if r.BoundedInvocations >= r.ClassicInvocations {
				t.Errorf("%s: bounded checker did not prune invocations (%d vs %d)",
					r.Query, r.BoundedInvocations, r.ClassicInvocations)
			}
		}
	})

	t.Run("service-shape", func(t *testing.T) {
		rows, err := Service(&buf, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("expected 2 worker-pool sizes in quick mode, got %d", len(rows))
		}
		for _, r := range rows {
			if !r.AllDone {
				t.Errorf("workers=%d: not every job reached done", r.Workers)
			}
			if !r.Invariant {
				t.Errorf("workers=%d: ledger invariant broken for some job", r.Workers)
			}
			if r.JobsPerSec <= 0 {
				t.Errorf("workers=%d: throughput %.2f jobs/sec", r.Workers, r.JobsPerSec)
			}
			if r.P50 > r.P99 {
				t.Errorf("workers=%d: p50 %dms > p99 %dms", r.Workers, r.P50, r.P99)
			}
		}
	})

	t.Run("trace-shape", func(t *testing.T) {
		rows, err := TraceProfile(&buf, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatal("no phase rows")
		}
		var share float64
		byPhase := map[string]PhaseCost{}
		for _, r := range rows {
			share += r.Share
			byPhase[r.Phase] = r
			if r.Executed+r.Hits != r.Probes {
				t.Errorf("%s: executed %d + hits %d != probes %d", r.Phase, r.Executed, r.Hits, r.Probes)
			}
		}
		if share < 0.99 || share > 1.01 {
			t.Errorf("phase shares sum to %.3f, want ~1", share)
		}
		for _, want := range []string{"from-clause", "minimizer", "filters", "projection", "checker"} {
			if _, ok := byPhase[want]; !ok {
				t.Errorf("phase %q missing from the profile", want)
			}
		}
	})

	t.Run("schemascale-shape", func(t *testing.T) {
		res, err := SchemaScale(&buf, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Identified != res.QueryTables {
			t.Errorf("identified %d of %d tables", res.Identified, res.QueryTables)
		}
		if res.Elapsed > time.Minute {
			t.Errorf("from-clause took %v with %d tables", res.Elapsed, res.Tables)
		}
	})
}
