package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/workloads/tpch"
)

// EquivRow compares one query's classical checker run against the
// symbolically pruned bounded checker.
type EquivRow struct {
	Query string `json:"query"`
	// Application invocations for the whole extraction (ledger
	// AppInvocations) under each checker.
	ClassicInvocations int64 `json:"classic_invocations"`
	BoundedInvocations int64 `json:"bounded_invocations"`
	// Checker wall time under each mode.
	ClassicCheckerMS float64 `json:"classic_checker_ms"`
	BoundedCheckerMS float64 `json:"bounded_checker_ms"`
	// Bounded-proof accounting.
	Bound             int `json:"bound"`
	MutantsTotal      int `json:"mutants_total"`
	KilledStatic      int `json:"mutants_killed_static"`
	KilledWitness     int `json:"mutants_killed_witness"`
	ProvenEquivalent  int `json:"mutants_proven_equivalent"`
	MutantsUnresolved int `json:"mutants_unresolved"`
	// SQLIdentical asserts the pruned checker changed nothing about
	// the extraction itself.
	SQLIdentical bool `json:"sql_identical"`
}

// Equiv measures the bounded-equivalence mutant pruning (the eqcequiv
// checker wired into core) on the TPC-H suite: each hidden query is
// extracted once with the classical XData instance suite and once with
// Config.BoundedCheck = 2. The extracted SQL must be identical; the
// table reports how many application invocations the symbolic layer
// saved and how the mutant catalogue was classified.
func Equiv(w io.Writer, opt Options) ([]EquivRow, error) {
	scale := tpch.Scale100GB
	if opt.Quick {
		scale = tpch.ScaleTiny * 4
	}
	db := tpch.NewDatabase(scale, opt.Seed)
	if err := tpch.PlantWitnesses(db, tpch.HiddenQueries()); err != nil {
		return nil, err
	}
	classicCfg := core.DefaultConfig()
	classicCfg.Seed = opt.Seed
	boundedCfg := core.DefaultConfig()
	boundedCfg.Seed = opt.Seed
	boundedCfg.BoundedCheck = 2

	var out []EquivRow
	tbl := &TextTable{
		Title:  "Bounded Equivalence — classical instance suite vs symbolic mutant pruning (TPC-H, k=2)",
		Header: []string{"query", "classic_invocations", "bounded_invocations", "saved", "mutants", "static", "witness", "equivalent", "unresolved", "checker_ms(classic/bounded)", "sql_identical"},
	}
	for _, name := range tpch.QueryOrder() {
		exe := app.MustSQLExecutable(name, tpch.HiddenQueries()[name])
		classic, err := core.Extract(exe, db, classicCfg)
		if err != nil {
			return nil, fmt.Errorf("%s classical: %w", name, err)
		}
		bounded, err := core.Extract(exe, db, boundedCfg)
		if err != nil {
			return nil, fmt.Errorf("%s bounded: %w", name, err)
		}
		cs, bs := classic.Stats, bounded.Stats
		row := EquivRow{
			Query:              name,
			ClassicInvocations: cs.AppInvocations,
			BoundedInvocations: bs.AppInvocations,
			ClassicCheckerMS:   float64(cs.Checker.Microseconds()) / 1000,
			BoundedCheckerMS:   float64(bs.Checker.Microseconds()) / 1000,
			Bound:              bs.BoundedBound,
			MutantsTotal:       bs.MutantsTotal,
			KilledStatic:       bs.MutantsKilledStatic,
			KilledWitness:      bs.MutantsKilledWitness,
			ProvenEquivalent:   bs.MutantsProvenEquivalent,
			MutantsUnresolved:  bs.MutantsUnresolved,
			SQLIdentical:       classic.SQL == bounded.SQL,
		}
		out = append(out, row)
		tbl.Add(name, row.ClassicInvocations, row.BoundedInvocations,
			row.ClassicInvocations-row.BoundedInvocations,
			row.MutantsTotal, row.KilledStatic, row.KilledWitness,
			row.ProvenEquivalent, row.MutantsUnresolved,
			fmt.Sprintf("%.1f/%.1f", row.ClassicCheckerMS, row.BoundedCheckerMS),
			row.SQLIdentical)
	}
	tbl.Note("replayed kills never run the executable; a symbolic kill runs it once to certify the counterexample; only unresolved classes fall back to classical instances")
	tbl.Render(w)
	return out, nil
}

// Snapshot is the JSON envelope benchrunner writes for machine
// consumers (one file per experiment).
type Snapshot struct {
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick"`
	Seed       int64  `json:"seed"`
	Generated  string `json:"generated"`
	Rows       any    `json:"rows"`
}

// EncodeSnapshot marshals one experiment's rows onto w. File placement
// is the caller's business (cmd/benchrunner): this package stays free
// of file I/O, like every non-storage library package (lint GL010).
func EncodeSnapshot(w io.Writer, experiment string, opt Options, rows any) error {
	snap := Snapshot{
		Experiment: experiment,
		Quick:      opt.Quick,
		Seed:       opt.Seed,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Rows:       rows,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
