package bench

import (
	"syscall"
	"time"
)

// procCPU returns the process's cumulative CPU time (user + system,
// all threads). Unlike wall clock it is immune to run-queue delay
// and CPU steal on shared machines, which makes it the right meter
// for instrumentation overhead: telemetry costs cycles, not waiting.
// Getrusage is a unix-family call, which is also why this file is
// not build-tagged: the project's own linter loads every file
// tag-blind, and the toolchain targets are unix-only.
func procCPU() (time.Duration, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano()), true
}
