package bench

// Serving-tier throughput: how many extraction jobs per second the
// internal/service manager sustains when a burst of concurrent
// submissions lands on a bounded worker pool (the PR 4 subsystem).

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"unmasque/internal/obs"
	"unmasque/internal/service"
	"unmasque/internal/workloads/registry"
)

// ServiceRow is one worker-pool size of the throughput experiment.
type ServiceRow struct {
	Workers    int
	Jobs       int
	Wall       time.Duration
	JobsPerSec float64
	P50        int64 // job latency p50, ms
	P99        int64 // job latency p99, ms
	AllDone    bool  // every job reached state done
	Invariant  bool  // ledger events == invocations + cache hits, per job
}

// Service measures the job manager under burst load: 32 jobs —
// registered imperative applications — are submitted from 32
// concurrent goroutines against pools of increasing size, every job
// is driven to completion (via graceful drain), and the table reports
// sustained jobs/sec plus the manager's own latency quantiles. The
// per-job ledger invariant is re-checked for every result.
func Service(w io.Writer, opt Options) ([]ServiceRow, error) {
	const jobs = 32
	workerSets := []int{1, 2, 4, 8}
	if opt.Quick {
		workerSets = []int{2, 4}
	}
	apps := serviceApps()
	if len(apps) == 0 {
		return nil, fmt.Errorf("service bench: no registered enki applications")
	}

	tbl := &TextTable{
		Title:  "Extraction Service — burst throughput (32 concurrent submissions)",
		Header: []string{"workers", "jobs", "wall_ms", "jobs_per_sec", "p50_ms", "p99_ms", "all_done", "ledger_invariant"},
	}
	var out []ServiceRow
	for _, workers := range workerSets {
		met := obs.NewMetrics()
		mgr, err := service.Start(context.Background(), service.Config{
			Workers:    workers,
			QueueDepth: jobs,
			Metrics:    met,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ids := make([]int64, jobs)
		errs := make([]error, jobs)
		var wg sync.WaitGroup
		for i := 0; i < jobs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				v, err := mgr.Submit(context.Background(),
					service.JobSpec{App: apps[i%len(apps)], Seed: opt.Seed})
				ids[i], errs[i] = v.ID, err
			}(i)
		}
		wg.Wait()
		// Drain waits for every accepted job to finish — the burst's
		// completion barrier.
		if err := mgr.Drain(context.Background()); err != nil {
			return nil, fmt.Errorf("service bench drain (workers=%d): %w", workers, err)
		}
		wall := time.Since(start)

		row := ServiceRow{
			Workers:    workers,
			Jobs:       jobs,
			Wall:       wall,
			JobsPerSec: float64(jobs) / wall.Seconds(),
			P50:        met.Gauge("job_latency_p50_ms").Value(),
			P99:        met.Gauge("job_latency_p99_ms").Value(),
			AllDone:    true,
			Invariant:  true,
		}
		for i := 0; i < jobs; i++ {
			if errs[i] != nil {
				return nil, fmt.Errorf("service bench submit %d (workers=%d): %w", i, workers, errs[i])
			}
			res, err := mgr.Result(ids[i])
			if err != nil {
				return nil, fmt.Errorf("service bench result %d (workers=%d): %w", ids[i], workers, err)
			}
			if res.State != service.StateDone {
				row.AllDone = false
			}
			if res.LedgerEvents == 0 || res.LedgerEvents != res.AppInvocations+res.CacheHits+res.DiskCacheHits {
				row.Invariant = false
			}
		}
		out = append(out, row)
		tbl.Add(row.Workers, row.Jobs, ms(row.Wall), fmt.Sprintf("%.1f", row.JobsPerSec),
			row.P50, row.P99, row.AllDone, row.Invariant)
	}
	tbl.Note("jobs cycle through the registered enki applications; drain is the completion barrier")
	tbl.Render(w)
	return out, nil
}

// serviceApps lists the registered enki applications — small
// imperative extractions, the right unit of work for a throughput
// burst.
func serviceApps() []string {
	var out []string
	for _, name := range registry.Names() {
		if strings.HasPrefix(name, "enki/") {
			out = append(out, name)
		}
	}
	return out
}
