// Package bench regenerates every table and figure of the paper's
// evaluation section (the per-experiment index lives in DESIGN.md).
// Each driver runs the relevant workload through the extractor (and,
// for Figure 8, the REGAL baseline), prints the paper-style rows or
// series as an aligned text table, and returns structured records so
// tests and the Go benchmarks can assert on shapes.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// TextTable accumulates rows and renders them column-aligned.
type TextTable struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends one row; values are stringified with %v.
func (t *TextTable) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *TextTable) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *TextTable) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  * %s\n", n)
	}
}
