// Package regal re-implements the REGAL-style query reverse
// engineering baseline the paper compares against (Tan et al., PVLDB
// 2017/2018): given only a database instance D_I and a result R_I, it
// speculatively enumerates candidate SPJA queries and prunes them by
// executing against D_I.
//
// The pipeline follows the published structure (and Section 8's
// description):
//
//  1. value-based candidate discovery — every result column is
//     matched against every database column by value containment
//     (a full scan of D_I);
//  2. join enumeration — candidate table sets are connected along
//     the schema graph;
//  3. materialization + lattice search — each candidate view is
//     joined on the full D_I, then grouping subsets and aggregate
//     candidates are evaluated until one reproduces R_I;
//  4. backward filter inference — ranges over non-projected columns
//     are derived from the contributing view partition.
//
// The instance-based nature of the search is what Figure 8 measures:
// cost grows with |D_I| and the candidate space, hitting the time or
// memory caps (DNC) on unlucky inputs, whereas UNMASQUE's cost is
// concentrated in minimization. It is also what Figure 2 illustrates
// semantically: the output is only instance-equivalent, so filters
// and grouping may diverge from the hidden query.
package regal

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"unmasque/internal/sqldb"
)

// Config caps the search.
type Config struct {
	// Timeout bounds the whole reverse-engineering run; exceeding it
	// yields DNC (paper: "REGAL either took several hours or ... ran
	// out of memory").
	Timeout time.Duration
	// MaxViewRows bounds materialized join sizes; exceeding it yields
	// DNC (the memory analogue).
	MaxViewRows int
	// MaxTables bounds candidate join sizes.
	MaxTables int
}

// DefaultConfig mirrors a generously provisioned run.
func DefaultConfig() Config {
	return Config{Timeout: 5 * time.Minute, MaxViewRows: 2_000_000, MaxTables: 4}
}

// Output is the outcome of one reverse-engineering run.
type Output struct {
	// Query is the instance-equivalent candidate, nil when none was
	// found or the run did not complete.
	Query *sqldb.SelectStmt
	// DNC marks a run that hit the time or memory cap.
	DNC bool
	// Reason explains a nil Query.
	Reason  string
	Elapsed time.Duration
	// CandidatesTried counts evaluated candidate queries.
	CandidatesTried int
}

// ReverseEngineer searches for a candidate query Q with Q(D_I) = R_I.
func ReverseEngineer(db *sqldb.Database, res *sqldb.Result, cfg Config) *Output {
	start := time.Now()
	out := &Output{}
	deadline := start.Add(cfg.Timeout)
	e := &engine{db: db, target: res, cfg: cfg, deadline: deadline, out: out}
	q, err := e.search()
	out.Elapsed = time.Since(start)
	if err != nil {
		if err == errTimeout || err == errMemory {
			out.DNC = true
		}
		out.Reason = err.Error()
		return out
	}
	out.Query = q
	return out
}

var (
	errTimeout = fmt.Errorf("time cap exceeded")
	errMemory  = fmt.Errorf("materialized view exceeds the memory cap")
	errNoMatch = fmt.Errorf("no instance-equivalent candidate found")
)

type engine struct {
	db       *sqldb.Database
	target   *sqldb.Result
	cfg      Config
	deadline time.Time
	out      *Output
}

func (e *engine) checkDeadline() error {
	if time.Now().After(e.deadline) {
		return errTimeout
	}
	return nil
}

// colCandidate is a database column whose values cover a result
// column.
type colCandidate struct {
	col sqldb.ColRef
	def sqldb.Column
}

// search runs the full pipeline.
func (e *engine) search() (*sqldb.SelectStmt, error) {
	if e.target.RowCount() == 0 {
		return nil, fmt.Errorf("empty target result")
	}
	// Step 1: per-result-column candidates by value containment —
	// the full-instance scan that dominates on large D_I.
	direct := make([][]colCandidate, len(e.target.Columns))
	var aggCols []colCandidate // numeric columns usable under aggregates
	for _, tname := range e.db.TableNames() {
		tbl, err := e.db.Table(tname)
		if err != nil {
			return nil, err
		}
		for ci, cdef := range tbl.Schema.Columns {
			if err := e.checkDeadline(); err != nil {
				return nil, err
			}
			cand := colCandidate{col: sqldb.ColRef{Table: tname, Column: cdef.Name}, def: cdef}
			if cdef.Type.IsNumeric() {
				aggCols = append(aggCols, cand)
			}
			for oi := range e.target.Columns {
				if e.valuesContained(oi, tbl, ci) {
					direct[oi] = append(direct[oi], cand)
				}
			}
		}
	}

	// Step 2+3: enumerate candidate assignments, smallest table sets
	// first, evaluate each on D_I.
	assignments := e.enumerateAssignments(direct, aggCols)
	for _, asg := range assignments {
		if err := e.checkDeadline(); err != nil {
			return nil, err
		}
		q, ok, err := e.evaluateAssignment(asg)
		if err != nil {
			return nil, err
		}
		if ok {
			return q, nil
		}
	}
	return nil, errNoMatch
}

// valuesContained reports whether every value of target column oi
// appears in table column ci.
func (e *engine) valuesContained(oi int, tbl *sqldb.Table, ci int) bool {
	seen := map[string]bool{}
	for _, r := range tbl.SnapshotRows() {
		seen[r[ci].GroupKey()] = true
	}
	for _, row := range e.target.Rows {
		v := row[oi]
		if v.Null {
			continue
		}
		if v.Typ == sqldb.TFloat {
			// Aggregated floats rarely appear verbatim; treat float
			// outputs as aggregate-only candidates.
			return false
		}
		if !seen[v.GroupKey()] {
			return false
		}
	}
	return true
}

// assignment maps each result column to either a direct column or an
// aggregate over a column (or count(*)).
type assignment struct {
	items  []assignItem
	tables []string
}

type assignItem struct {
	direct *colCandidate
	agg    sqldb.AggFn // with aggCol, or count(*) when star
	aggCol *colCandidate
	star   bool
}

// enumerateAssignments builds candidate assignments ordered by table
// count. To keep the space bounded it considers, per result column,
// the direct candidates plus aggregate options for numeric columns.
func (e *engine) enumerateAssignments(direct [][]colCandidate, aggCols []colCandidate) []assignment {
	options := make([][]assignItem, len(direct))
	for oi := range direct {
		var opts []assignItem
		for i := range direct[oi] {
			opts = append(opts, assignItem{direct: &direct[oi][i]})
		}
		// Aggregate options for numeric result columns.
		if e.columnLooksNumeric(oi) {
			opts = append(opts, assignItem{agg: sqldb.AggCount, star: true})
			for i := range aggCols {
				for _, fn := range []sqldb.AggFn{sqldb.AggSum, sqldb.AggAvg, sqldb.AggMin, sqldb.AggMax, sqldb.AggCount} {
					opts = append(opts, assignItem{agg: fn, aggCol: &aggCols[i]})
				}
			}
		}
		options[oi] = opts
	}
	var out []assignment
	var rec func(oi int, cur []assignItem)
	rec = func(oi int, cur []assignItem) {
		if len(out) > 20000 {
			return
		}
		if oi == len(options) {
			asg := assignment{items: append([]assignItem(nil), cur...)}
			tset := map[string]bool{}
			for _, it := range asg.items {
				if it.direct != nil {
					tset[it.direct.col.Table] = true
				}
				if it.aggCol != nil {
					tset[it.aggCol.col.Table] = true
				}
			}
			if len(tset) == 0 || len(tset) > e.cfg.MaxTables {
				return
			}
			for t := range tset {
				asg.tables = append(asg.tables, t)
			}
			sort.Strings(asg.tables)
			out = append(out, asg)
			return
		}
		for i := range options[oi] {
			rec(oi+1, append(cur, options[oi][i]))
		}
	}
	rec(0, nil)
	// Fewer tables first; ties prefer fewer aggregates (simpler
	// queries), then deterministic order.
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].tables) != len(out[j].tables) {
			return len(out[i].tables) < len(out[j].tables)
		}
		return aggCount(out[i]) < aggCount(out[j])
	})
	return out
}

func aggCount(a assignment) int {
	n := 0
	for _, it := range a.items {
		if it.agg != sqldb.AggNone || it.star {
			n++
		}
	}
	return n
}

func (e *engine) columnLooksNumeric(oi int) bool {
	for _, row := range e.target.Rows {
		v := row[oi]
		if v.Null {
			continue
		}
		return v.Typ.IsNumeric()
	}
	return false
}

// evaluateAssignment builds candidate queries for one assignment:
// join predicates from the schema graph connecting the tables, a
// grouping lattice over the direct columns, and optional inferred
// range filters; each candidate executes against D_I.
func (e *engine) evaluateAssignment(asg assignment) (*sqldb.SelectStmt, bool, error) {
	joins, connected := e.connectTables(asg.tables)
	if !connected {
		return nil, false, nil
	}
	// Memory cap: estimate the join size by the table product of
	// row counts divided by join selectivity is unknowable; REGAL
	// materializes, so cap on the sum-product bound.
	est := 1
	for _, t := range asg.tables {
		tbl, err := e.db.Table(t)
		if err != nil {
			return nil, false, err
		}
		if tbl.RowCount() == 0 {
			return nil, false, nil
		}
		if est > 0 && tbl.RowCount() > 0 && est > e.cfg.MaxViewRows/tbl.RowCount() {
			// Unfiltered cross-product bound blows the cap; rely on
			// join predicates to keep it linear — materialize and
			// check the actual size below.
			est = e.cfg.MaxViewRows
		} else {
			est *= tbl.RowCount()
		}
	}

	// Grouping candidates: all direct items grouped (the common
	// case), then the lattice of subsets when aggregates are present.
	hasAgg := aggCount(asg) > 0
	items := make([]sqldb.SelectItem, len(asg.items))
	var directCols []sqldb.Expr
	for i, it := range asg.items {
		switch {
		case it.direct != nil:
			col := sqldb.Col(it.direct.col.Table, it.direct.col.Column)
			items[i] = sqldb.SelectItem{Expr: col, Alias: strings.ToLower(e.target.Columns[i])}
			directCols = append(directCols, col)
		case it.star:
			items[i] = sqldb.SelectItem{Expr: &sqldb.AggExpr{Fn: sqldb.AggCount, Star: true}, Alias: strings.ToLower(e.target.Columns[i])}
		default:
			items[i] = sqldb.SelectItem{
				Expr:  &sqldb.AggExpr{Fn: it.agg, Arg: sqldb.Col(it.aggCol.col.Table, it.aggCol.col.Column)},
				Alias: strings.ToLower(e.target.Columns[i]),
			}
		}
	}

	stmt := &sqldb.SelectStmt{Items: items, From: asg.tables, Where: sqldb.AndAll(joins)}
	if hasAgg {
		stmt.GroupBy = directCols
	}
	ok, err := e.matches(stmt)
	if err != nil || ok {
		return stmt, ok, err
	}
	// Backward filter inference: derive candidate range filters from
	// the instance and retry (REGAL's matrix step, simplified to
	// single-dimension ranges).
	withFilters, err := e.inferFilters(stmt)
	if err != nil {
		return nil, false, err
	}
	if withFilters != nil {
		ok, err := e.matches(withFilters)
		if err != nil || ok {
			return withFilters, ok, err
		}
	}
	return nil, false, nil
}

// connectTables builds equi-join predicates linking the tables along
// the schema graph; false when they cannot be connected.
func (e *engine) connectTables(tables []string) ([]sqldb.Expr, bool) {
	if len(tables) == 1 {
		return nil, true
	}
	inSet := map[string]bool{}
	for _, t := range tables {
		inSet[t] = true
	}
	edges := e.db.SchemaGraph().EdgesWithin(inSet)
	// Spanning connection over tables.
	connected := map[string]bool{tables[0]: true}
	var preds []sqldb.Expr
	for changed := true; changed; {
		changed = false
		for _, edge := range edges {
			a, b := edge.A.Table, edge.B.Table
			if connected[a] == connected[b] {
				continue
			}
			preds = append(preds, sqldb.Bin(sqldb.OpEq,
				sqldb.Col(edge.A.Table, edge.A.Column), sqldb.Col(edge.B.Table, edge.B.Column)))
			connected[a], connected[b] = true, true
			changed = true
		}
	}
	for _, t := range tables {
		if !connected[t] {
			return nil, false
		}
	}
	return preds, true
}

// matches executes the candidate on D_I and compares with R_I as a
// multiset.
func (e *engine) matches(stmt *sqldb.SelectStmt) (bool, error) {
	e.out.CandidatesTried++
	remaining := time.Until(e.deadline)
	if remaining <= 0 {
		return false, errTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), remaining)
	defer cancel()
	got, err := e.db.Execute(ctx, stmt)
	if err != nil {
		if ctx.Err() != nil {
			return false, errTimeout
		}
		return false, nil // ill-typed candidate; skip
	}
	if got.RowCount() > e.cfg.MaxViewRows {
		return false, errMemory
	}
	return got.EqualUnordered(e.target), nil
}

// inferFilters derives single-column range filters that exclude the
// non-contributing part of the instance: for every numeric or date
// column of the candidate tables that is not projected, the range of
// the rows contributing to R_I is computed and added when it actually
// excludes rows.
func (e *engine) inferFilters(stmt *sqldb.SelectStmt) (*sqldb.SelectStmt, error) {
	// Contributing rows per table: execute the SPJ core with the row
	// projected, track per-column min/max of rows whose projection
	// appears in the target.
	targetKeys := map[string]bool{}
	for _, row := range e.target.Rows {
		targetKeys[approxKey(row)] = true
	}
	var filters []sqldb.Expr
	// Projected dimensions: the target column's own value range bounds
	// the filter directly (REGAL derives partition limits from the
	// result matrix).
	for oi, it := range stmt.Items {
		c, ok := it.Expr.(*sqldb.ColumnExpr)
		if !ok || oi >= len(e.target.Columns) {
			continue
		}
		tbl, err := e.db.Table(c.Table)
		if err != nil {
			continue
		}
		def, err := tbl.Schema.Column(c.Column)
		if err != nil || (def.Type != sqldb.TInt && def.Type != sqldb.TFloat && def.Type != sqldb.TDate) {
			continue
		}
		lo, hi, any := resultColumnRange(e.target, oi)
		if !any {
			continue
		}
		full := columnRange(tbl, c.Column)
		if full == nil || (sqldb.Equal(*full[0], lo) && sqldb.Equal(*full[1], hi)) {
			continue
		}
		filters = append(filters, &sqldb.BetweenExpr{
			X:  sqldb.Col(c.Table, c.Column),
			Lo: sqldb.Lit(lo), Hi: sqldb.Lit(hi),
		})
	}
	for _, tname := range stmt.From {
		tbl, err := e.db.Table(tname)
		if err != nil {
			return nil, err
		}
		for _, cdef := range tbl.Schema.Columns {
			if cdef.Type != sqldb.TInt && cdef.Type != sqldb.TFloat && cdef.Type != sqldb.TDate {
				continue
			}
			if isProjected(stmt, tname, cdef.Name) {
				continue
			}
			lo, hi, any, err := e.contributingRange(stmt, tname, cdef.Name, targetKeys)
			if err != nil {
				return nil, err
			}
			if !any {
				continue
			}
			full := columnRange(tbl, cdef.Name)
			if full == nil {
				continue
			}
			if sqldb.Equal(*full[0], lo) && sqldb.Equal(*full[1], hi) {
				continue // range excludes nothing
			}
			filters = append(filters, &sqldb.BetweenExpr{
				X:  sqldb.Col(tname, cdef.Name),
				Lo: sqldb.Lit(lo), Hi: sqldb.Lit(hi),
			})
		}
	}
	if len(filters) == 0 {
		return nil, nil
	}
	out := *stmt
	out.Where = sqldb.AndAll(append(sqldb.Conjuncts(stmt.Where), filters...))
	return &out, nil
}

func isProjected(stmt *sqldb.SelectStmt, table, column string) bool {
	for _, it := range stmt.Items {
		if c, ok := it.Expr.(*sqldb.ColumnExpr); ok &&
			strings.EqualFold(c.Table, table) && strings.EqualFold(c.Column, column) {
			return true
		}
	}
	return false
}

// contributingRange runs the candidate extended with the probe
// column, keeping the min/max of probe values on rows whose visible
// part belongs to the target.
func (e *engine) contributingRange(stmt *sqldb.SelectStmt, table, column string, targetKeys map[string]bool) (lo, hi sqldb.Value, any bool, err error) {
	probe := *stmt
	probe.GroupBy = nil // examine the SPJ core
	items := make([]sqldb.SelectItem, 0, len(stmt.Items)+1)
	for _, it := range stmt.Items {
		if sqldb.HasAggregate(it.Expr) {
			continue
		}
		items = append(items, it)
	}
	visible := len(items)
	items = append(items, sqldb.SelectItem{Expr: sqldb.Col(table, column), Alias: "probe_col"})
	probe.Items = items
	remaining := time.Until(e.deadline)
	if remaining <= 0 {
		return lo, hi, false, errTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), remaining)
	defer cancel()
	res, err := e.db.Execute(ctx, &probe)
	if err != nil {
		if ctx.Err() != nil {
			return lo, hi, false, errTimeout
		}
		return lo, hi, false, nil
	}
	if res.RowCount() > e.cfg.MaxViewRows {
		return lo, hi, false, errMemory
	}
	for _, row := range res.Rows {
		if !containsVisible(targetKeys, row[:visible]) {
			continue
		}
		v := row[len(row)-1]
		if v.Null {
			continue
		}
		if !any {
			lo, hi, any = v, v, true
			continue
		}
		if c, err := sqldb.Compare(v, lo); err == nil && c < 0 {
			lo = v
		}
		if c, err := sqldb.Compare(v, hi); err == nil && c > 0 {
			hi = v
		}
	}
	return lo, hi, any, nil
}

// containsVisible matches the visible prefix of a probe row against
// the target rows' prefixes (grouped targets compare on the grouped
// columns only, which are exactly the non-aggregate items).
func containsVisible(targetKeys map[string]bool, prefix sqldb.Row) bool {
	for key := range targetKeys {
		if strings.HasPrefix(key, approxKey(prefix)) {
			return true
		}
	}
	return false
}

func approxKey(row sqldb.Row) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.GroupKey()
	}
	return strings.Join(parts, "|")
}

// resultColumnRange computes the min/max of one target column.
func resultColumnRange(res *sqldb.Result, oi int) (lo, hi sqldb.Value, any bool) {
	for _, row := range res.Rows {
		v := row[oi]
		if v.Null {
			continue
		}
		if !any {
			lo, hi, any = v, v, true
			continue
		}
		if c, err := sqldb.Compare(v, lo); err == nil && c < 0 {
			lo = v
		}
		if c, err := sqldb.Compare(v, hi); err == nil && c > 0 {
			hi = v
		}
	}
	return lo, hi, any
}

// columnRange returns pointers to the min and max values of a column.
func columnRange(tbl *sqldb.Table, column string) []*sqldb.Value {
	ci := tbl.Schema.ColumnIndex(column)
	rows := tbl.SnapshotRows()
	if ci < 0 || len(rows) == 0 {
		return nil
	}
	lo, hi := rows[0][ci], rows[0][ci]
	for _, r := range rows {
		v := r[ci]
		if v.Null {
			continue
		}
		if c, err := sqldb.Compare(v, lo); err == nil && c < 0 {
			lo = v
		}
		if c, err := sqldb.Compare(v, hi); err == nil && c > 0 {
			hi = v
		}
	}
	return []*sqldb.Value{&lo, &hi}
}
