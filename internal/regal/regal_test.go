package regal

import (
	"context"
	"testing"
	"time"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/workloads/tpch"
)

func runQuery(t *testing.T, db *sqldb.Database, sql string) *sqldb.Result {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute(context.Background(), stmt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReverseEngineerSimpleGroupCount(t *testing.T) {
	db := tpch.NewDatabase(tpch.ScaleTiny, 5)
	target := runQuery(t, db, "select c_nationkey, count(*) as cnt from customer group by c_nationkey")
	out := ReverseEngineer(db, target, DefaultConfig())
	if out.Query == nil {
		t.Fatalf("no candidate found: %s (dnc=%v)", out.Reason, out.DNC)
	}
	got, err := db.Execute(context.Background(), out.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualUnordered(target) {
		t.Errorf("candidate is not instance-equivalent:\n%s", out.Query)
	}
}

func TestReverseEngineerJoin(t *testing.T) {
	db := tpch.NewDatabase(tpch.ScaleTiny, 5)
	target := runQuery(t, db, "select n_name, count(*) as cnt from nation, supplier where n_nationkey = s_nationkey group by n_name")
	out := ReverseEngineer(db, target, DefaultConfig())
	if out.Query == nil {
		t.Fatalf("no candidate found: %s", out.Reason)
	}
	got, err := db.Execute(context.Background(), out.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualUnordered(target) {
		t.Errorf("candidate is not instance-equivalent:\n%s", out.Query)
	}
}

func TestReverseEngineerProjectionOnly(t *testing.T) {
	db := tpch.NewDatabase(tpch.ScaleTiny, 5)
	target := runQuery(t, db, "select r_name from region")
	out := ReverseEngineer(db, target, DefaultConfig())
	if out.Query == nil {
		t.Fatalf("no candidate found: %s", out.Reason)
	}
	got, err := db.Execute(context.Background(), out.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualUnordered(target) {
		t.Errorf("candidate is not instance-equivalent:\n%s", out.Query)
	}
}

func TestReverseEngineerTimesOut(t *testing.T) {
	db := tpch.NewDatabase(tpch.ScaleTiny, 5)
	target := runQuery(t, db, "select o_custkey, sum(o_totalprice) as total from orders group by o_custkey")
	cfg := DefaultConfig()
	cfg.Timeout = time.Nanosecond
	out := ReverseEngineer(db, target, cfg)
	if !out.DNC {
		t.Errorf("expected DNC under a nanosecond budget, got %+v", out)
	}
}

func TestReverseEngineerEmptyTarget(t *testing.T) {
	db := tpch.NewDatabase(tpch.ScaleTiny, 5)
	out := ReverseEngineer(db, &sqldb.Result{Columns: []string{"x"}}, DefaultConfig())
	if out.Query != nil || out.Reason == "" {
		t.Error("empty target should be rejected with a reason")
	}
}

func TestReverseEngineerCountsCandidates(t *testing.T) {
	db := tpch.NewDatabase(tpch.ScaleTiny, 5)
	target := runQuery(t, db, "select c_mktsegment, count(*) as cnt from customer group by c_mktsegment")
	out := ReverseEngineer(db, target, DefaultConfig())
	if out.CandidatesTried == 0 {
		t.Error("candidate counter not incremented")
	}
	if out.Elapsed <= 0 {
		t.Error("elapsed time not recorded")
	}
}
