package core

import (
	"unmasque/internal/sqldb"
)

// advise.go — minimizer-driven index advice. The engine side (hint
// storage, pre-built clone-shared index payloads, non-leading and
// range pushdown for advised columns) lives in sqldb; this file is
// where the extraction phases declare which columns their upcoming
// probe storms will touch.
//
// Two call patterns cover the pipeline's hot loops. The filter module
// re-executes the hidden query E against a fresh clone of D_1 for
// every probe, so advising the candidate filter columns on the silo
// lets each clone inherit ready-made indexes instead of rebuilding
// them per probe. The bounded checker replays the whole mutant
// catalogue on each witness and planted instance, all filtering on
// (a mutation of) the extracted WHERE columns, so advising those
// columns unlocks index pushdown (including range predicates and
// non-leading conjuncts) across every replay. Phases that execute a
// query only once or twice per instance (compareOn) deliberately do
// NOT advise: an advised range index costs a sort to build, which
// only repeated probes pay back. The tree oracle ignores advice
// entirely, so extraction results are identical in both modes.

// adviseProbeColumns declares cols as repeatedly probed on the working
// database; clones taken during the advising phase inherit pre-built
// indexes on them. The returned release func withdraws the advice —
// phases advise only for the duration of their own fan-out.
func (s *Session) adviseProbeColumns(cols []sqldb.ColRef) (func(), error) {
	hints := make([]sqldb.IndexHint, 0, len(cols))
	for _, c := range cols {
		hints = append(hints, sqldb.IndexHint{Table: c.Table, Column: c.Column})
	}
	if err := s.silo.AdviseIndexes(hints...); err != nil {
		return nil, err
	}
	return s.silo.ClearIndexAdvice, nil
}

// adviseQueryColumns declares the WHERE columns of an assembled
// statement on db. Checker instances each serve many executions — the
// application, Q_E, and every mutant replay — and all of them filter
// on (a mutation of) the same predicate columns.
func adviseQueryColumns(db *sqldb.Database, stmt *sqldb.SelectStmt) (func(), error) {
	seen := map[sqldb.ColRef]bool{}
	var hints []sqldb.IndexHint
	for _, conj := range sqldb.Conjuncts(stmt.Where) {
		for _, c := range sqldb.ColumnsOf(conj) {
			ref := c.Ref()
			if ref.Table == "" || seen[ref] {
				continue
			}
			seen[ref] = true
			hints = append(hints, sqldb.IndexHint{Table: ref.Table, Column: ref.Column})
		}
	}
	if err := db.AdviseIndexes(hints...); err != nil {
		return nil, err
	}
	return db.ClearIndexAdvice, nil
}
