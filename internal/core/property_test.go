package core_test

// Property-based end-to-end test: random EQC queries are generated
// over the warehouse schema, hidden inside executables, extracted,
// and verified semantically equivalent. This exercises arbitrary
// combinations of joins, filter shapes, projected functions,
// grouping, aggregation, ordering and limits in one sweep.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/xdata"
)

// qgen builds a random EQC-compliant query over the warehouse fixture
// (customer/orders/lineitem as defined in extract_test.go).
type qgen struct {
	rng *rand.Rand
}

// tableCols lists the filterable/projectable non-key columns per
// table, with their type class.
var genCols = map[string][]struct {
	name string
	kind string // "int", "float", "date", "text"
}{
	"customer": {
		{"c_mktsegment", "text"},
		{"c_acctbal", "float"},
	},
	"orders": {
		{"o_orderdate", "date"},
		{"o_totalprice", "float"},
		{"o_shippriority", "int"},
	},
	"lineitem": {
		{"l_linenumber", "int"},
		{"l_extendedprice", "float"},
		{"l_discount", "float"},
		{"l_shipdate", "date"},
	},
}

func (g *qgen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

// generate returns a random query and the table set it uses.
func (g *qgen) generate() string {
	// Tables: one of the three connected subsets.
	tableSets := [][]string{
		{"customer"}, {"orders"}, {"lineitem"},
		{"customer", "orders"}, {"orders", "lineitem"},
		{"customer", "orders", "lineitem"},
	}
	tables := tableSets[g.rng.Intn(len(tableSets))]
	inSet := map[string]bool{}
	for _, t := range tables {
		inSet[t] = true
	}

	var conjuncts []string
	if inSet["customer"] && inSet["orders"] {
		conjuncts = append(conjuncts, "c_custkey = o_custkey")
	}
	if inSet["orders"] && inSet["lineitem"] {
		conjuncts = append(conjuncts, "o_orderkey = l_orderkey")
	}

	// Filters: up to two, on columns of used tables.
	used := map[string]bool{}
	var candidates []struct{ table, name, kind string }
	for _, t := range tables {
		for _, c := range genCols[t] {
			candidates = append(candidates, struct{ table, name, kind string }{t, c.name, c.kind})
		}
	}
	nf := g.rng.Intn(3)
	for i := 0; i < nf && len(candidates) > 0; i++ {
		c := candidates[g.rng.Intn(len(candidates))]
		if used[c.name] {
			continue
		}
		used[c.name] = true
		switch c.kind {
		case "text":
			conjuncts = append(conjuncts, g.pick([]string{
				c.name + " = 'BUILDING'",
				c.name + " like 'AUTO%'",
				c.name + " like '%CHI%'",
			}))
		case "int":
			conjuncts = append(conjuncts, g.pick([]string{
				c.name + " >= 1",
				c.name + " <= 4",
				c.name + " between 1 and 3",
			}))
		case "float":
			// Literal pools respect each column's declared domain (the
			// paper's value-spread assumption: query constants lie
			// within the column domain).
			if c.name == "l_discount" {
				conjuncts = append(conjuncts, g.pick([]string{
					c.name + " >= 0.02",
					c.name + " <= 0.08",
					c.name + " between 0.01 and 0.09",
				}))
			} else {
				conjuncts = append(conjuncts, g.pick([]string{
					c.name + " >= 10.50",
					c.name + " <= 40000",
					c.name + " between 5 and 50000",
				}))
			}
		case "date":
			conjuncts = append(conjuncts, g.pick([]string{
				c.name + " >= date '1993-06-15'",
				c.name + " <= date '1997-01-01'",
				c.name + " between date '1993-01-01' and date '1997-12-31'",
			}))
		}
	}

	// Shape: plain SPJ, grouped aggregation, or ungrouped aggregation.
	shape := g.rng.Intn(3)
	var items, groupBy, orderBy []string
	limit := ""
	switch shape {
	case 0: // plain projection
		for _, t := range tables {
			c := genCols[t][g.rng.Intn(len(genCols[t]))]
			items = append(items, c.name)
		}
		if g.rng.Intn(2) == 0 {
			items = append(items, "l_extendedprice * (1 - l_discount) as disc_price")
			if !inSet["lineitem"] {
				items = items[:len(items)-1]
			}
		}
		if g.rng.Intn(2) == 0 && len(items) > 0 {
			orderBy = append(orderBy, items[0])
		}
		if len(orderBy) > 0 && g.rng.Intn(2) == 0 {
			limit = fmt.Sprintf("limit %d", 3+g.rng.Intn(8))
		}
	case 1: // grouped aggregation
		gt := tables[g.rng.Intn(len(tables))]
		gc := genCols[gt][g.rng.Intn(len(genCols[gt]))]
		if used[gc.name] {
			// grouping a filtered column is fine unless pinned; keep
			// simple and group another one
			gc = genCols[gt][0]
		}
		groupBy = append(groupBy, gc.name)
		items = append(items, gc.name)
		items = append(items, "count(*) as cnt")
		aggT := tables[g.rng.Intn(len(tables))]
		ac := genCols[aggT][g.rng.Intn(len(genCols[aggT]))]
		if ac.name != gc.name && (ac.kind == "float" || ac.kind == "int") {
			fn := g.pick([]string{"sum", "avg", "min", "max"})
			items = append(items, fmt.Sprintf("%s(%s) as agg_val", fn, ac.name))
		}
		if g.rng.Intn(2) == 0 {
			orderBy = append(orderBy, gc.name)
		}
	default: // ungrouped aggregation
		aggT := tables[g.rng.Intn(len(tables))]
		ac := genCols[aggT][g.rng.Intn(len(genCols[aggT]))]
		items = append(items, "count(*) as cnt")
		if ac.kind == "float" || ac.kind == "int" {
			items = append(items, fmt.Sprintf("%s(%s) as agg_val", g.pick([]string{"sum", "min", "max", "avg"}), ac.name))
		}
	}

	var b strings.Builder
	b.WriteString("select " + strings.Join(items, ", "))
	b.WriteString(" from " + strings.Join(tables, ", "))
	if len(conjuncts) > 0 {
		b.WriteString(" where " + strings.Join(conjuncts, " and "))
	}
	if len(groupBy) > 0 {
		b.WriteString(" group by " + strings.Join(groupBy, ", "))
	}
	if len(orderBy) > 0 {
		b.WriteString(" order by " + strings.Join(orderBy, ", "))
	}
	if limit != "" {
		b.WriteString(" " + limit)
	}
	return b.String()
}

func TestExtractRandomEQCQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is not short")
	}
	base := warehouseDB(t, 25, 60, 200)
	schemas := base.Schemas()
	const trials = 30
	failures := 0
	for trial := 0; trial < trials; trial++ {
		g := &qgen{rng: rand.New(rand.NewSource(int64(1000 + trial)))}
		sql := g.generate()
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatalf("trial %d: generator produced invalid SQL %q: %v", trial, sql, err)
		}
		db := base.Clone()
		analysis, err := xdata.Analyze(stmt, schemas)
		if err != nil {
			t.Fatalf("trial %d: %v (%s)", trial, err, sql)
		}
		for w := 0; w < 3; w++ {
			if err := analysis.PlantWitness(db, int64(900000+trial*10+w), w, nil); err != nil {
				t.Fatalf("trial %d: witness: %v (%s)", trial, err, sql)
			}
		}
		exe := app.MustSQLExecutable(fmt.Sprintf("rand-%d", trial), sql)
		res, err := exe.Run(context.Background(), db)
		if err != nil || !res.Populated() {
			t.Fatalf("trial %d: fixture unpopulated (%s)", trial, sql)
		}
		// Extract twice — fully sequential and with an 8-worker pool —
		// to pin the scheduler's determinism contract: the SQL text must
		// not depend on the worker count.
		seqCfg := defaultCfg()
		seqCfg.Workers = 1
		parCfg := defaultCfg()
		parCfg.Workers = 8
		ext, err := core.Extract(exe, db, parCfg)
		if err != nil {
			failures++
			t.Errorf("trial %d: extraction failed: %v\nquery: %s", trial, err, sql)
			continue
		}
		seqExt, seqErr := core.Extract(exe, db, seqCfg)
		if seqErr != nil {
			t.Errorf("trial %d: sequential extraction failed where parallel succeeded: %v\nquery: %s", trial, seqErr, sql)
			continue
		}
		if seqExt.SQL != ext.SQL {
			t.Errorf("trial %d: extracted SQL depends on worker count\nworkers=1: %s\nworkers=8: %s", trial, seqExt.SQL, ext.SQL)
		}
		want, _ := exe.Run(context.Background(), db)
		got, err := db.Execute(context.Background(), ext.Query)
		if err != nil {
			t.Errorf("trial %d: extracted query fails: %v\nquery: %s\nextracted: %s", trial, err, sql, ext.SQL)
			continue
		}
		if !want.EqualUnordered(got) {
			t.Errorf("trial %d: results differ (%d vs %d rows)\nquery: %s\nextracted: %s",
				trial, want.RowCount(), got.RowCount(), sql, ext.SQL)
		}
		if len(ext.OrderBy) > 0 && !core.OrderedEquivalent(want, got, ext.OrderBy) {
			t.Errorf("trial %d: order keys differ\nquery: %s\nextracted: %s", trial, sql, ext.SQL)
		}
	}
}

// TestExtractRejectsOutOfScope: hidden logic outside EQC must be
// rejected (an extraction error — typically the checker or a module
// detecting the mismatch), never silently mis-extracted as a verified
// query.
func TestExtractRejectsOutOfScope(t *testing.T) {
	db := warehouseDB(t, 20, 40, 120)
	outOfScope := []string{
		// Disjunctive filter.
		"select o_orderkey from orders where o_shippriority = 0 or o_totalprice >= 490000",
		// NOT LIKE.
		"select c_custkey from customer where c_mktsegment not like 'B%'",
	}
	for _, sql := range outOfScope {
		exe := app.MustSQLExecutable("oos", sql)
		res, err := exe.Run(context.Background(), db)
		if err != nil || !res.Populated() {
			t.Fatalf("fixture unpopulated for %q", sql)
		}
		ext, err := core.Extract(exe, db, defaultCfg())
		if err == nil {
			// Acceptable only if genuinely instance-equivalent on the
			// original database AND checker-verified.
			want, _ := exe.Run(context.Background(), db)
			got, execErr := db.Execute(context.Background(), ext.Query)
			if execErr != nil || !want.EqualUnordered(got) {
				t.Errorf("out-of-scope query silently mis-extracted: %q -> %q", sql, ext.SQL)
			}
			continue
		}
		var extErr *core.ExtractionError
		if !errorsAs(err, &extErr) {
			t.Errorf("expected ExtractionError for %q, got %v", sql, err)
		}
	}
	_ = sqldb.NewInt
}

func errorsAs(err error, target **core.ExtractionError) bool {
	for err != nil {
		if e, ok := err.(*core.ExtractionError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
