package core_test

// Tests for the Section 9 future-work extension: disjunctive
// predicate extraction (interval unions and string IN-sets).

import (
	"context"
	"testing"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/sqldb"
)

func disjCfg() core.Config {
	cfg := defaultCfg()
	cfg.ExtractDisjunction = true
	return cfg
}

func extractDisj(t *testing.T, db *sqldb.Database, sql string) *core.Extraction {
	t.Helper()
	exe := app.MustSQLExecutable(t.Name(), sql)
	res, err := exe.Run(context.Background(), db)
	if err != nil || !res.Populated() {
		t.Fatalf("fixture unpopulated: %v", err)
	}
	ext, err := core.Extract(exe, db, disjCfg())
	if err != nil {
		t.Fatalf("extraction failed: %v", err)
	}
	want, _ := exe.Run(context.Background(), db)
	got, err := db.Execute(context.Background(), ext.Query)
	if err != nil {
		t.Fatalf("extracted query fails: %v\n%s", err, ext.SQL)
	}
	if !want.EqualUnordered(got) {
		t.Fatalf("results differ on D_I (%d vs %d rows)\nextracted: %s",
			want.RowCount(), got.RowCount(), ext.SQL)
	}
	return ext
}

func TestDisjunctionNumericTwoIntervals(t *testing.T) {
	db := warehouseDB(t, 30, 120, 300)
	ext := extractDisj(t, db,
		`select o_orderkey, o_totalprice from orders
		 where o_totalprice <= 100000 or o_totalprice >= 400000`)
	var f *core.FilterPredicate
	for i := range ext.Filters {
		if ext.Filters[i].Col.Column == "o_totalprice" {
			f = &ext.Filters[i]
		}
	}
	if f == nil || f.Kind != core.FilterDisjRange {
		t.Fatalf("disjunctive filter not extracted: %+v", ext.Filters)
	}
	if len(f.Segments) != 2 {
		t.Fatalf("segments: %+v", f.Segments)
	}
	if f.Segments[0].Hi.AsFloat() != 100000 || f.Segments[1].Lo.AsFloat() != 400000 {
		t.Errorf("segment bounds: %+v", f.Segments)
	}
}

func TestDisjunctionNumericInList(t *testing.T) {
	db := warehouseDB(t, 30, 120, 400)
	ext := extractDisj(t, db,
		`select l_orderkey, l_linenumber from lineitem where l_linenumber in (1, 4, 7)`)
	var f *core.FilterPredicate
	for i := range ext.Filters {
		if ext.Filters[i].Col.Column == "l_linenumber" {
			f = &ext.Filters[i]
		}
	}
	if f == nil || f.Kind != core.FilterDisjRange {
		t.Fatalf("disjunctive filter not extracted: %+v", ext.Filters)
	}
	if len(f.Segments) != 3 {
		t.Fatalf("segments: %+v", f.Segments)
	}
	for i, want := range []int64{1, 4, 7} {
		if f.Segments[i].Lo.I != want || f.Segments[i].Hi.I != want {
			t.Errorf("segment %d: %+v, want point %d", i, f.Segments[i], want)
		}
	}
}

func TestDisjunctionTextInSet(t *testing.T) {
	db := warehouseDB(t, 40, 80, 200)
	ext := extractDisj(t, db,
		`select c_custkey, c_mktsegment from customer
		 where c_mktsegment in ('BUILDING', 'MACHINERY')`)
	var f *core.FilterPredicate
	for i := range ext.Filters {
		if ext.Filters[i].Col.Column == "c_mktsegment" {
			f = &ext.Filters[i]
		}
	}
	if f == nil || f.Kind != core.FilterTextIn {
		t.Fatalf("IN-set not extracted: %+v", ext.Filters)
	}
	if len(f.InSet) != 2 || f.InSet[0] != "BUILDING" || f.InSet[1] != "MACHINERY" {
		t.Errorf("IN-set values: %v", f.InSet)
	}
}

// TestDisjunctionKeepsConjunctiveResults: the refinement pass must
// leave ordinary conjunctive extractions untouched.
func TestDisjunctionKeepsConjunctiveResults(t *testing.T) {
	db := warehouseDB(t, 30, 80, 200)
	ext := extractDisj(t, db,
		`select o_orderkey from orders where o_totalprice between 50000 and 300000`)
	if len(ext.Filters) != 1 {
		t.Fatalf("filters: %+v", ext.Filters)
	}
	f := ext.Filters[0]
	if f.Kind != core.FilterRange || f.Lo.AsFloat() != 50000 || f.Hi.AsFloat() != 300000 {
		t.Errorf("conjunctive filter disturbed: %+v", f)
	}
}

// TestDisjunctionKeepsLike: LIKE predicates admit many values and must
// not degrade into IN-sets.
func TestDisjunctionKeepsLike(t *testing.T) {
	db := warehouseDB(t, 30, 80, 300)
	ext := extractDisj(t, db,
		`select l_orderkey from lineitem where l_comment like '%special%'`)
	if len(ext.Filters) != 1 || ext.Filters[0].Kind != core.FilterLike {
		t.Fatalf("like filter disturbed: %+v", ext.Filters)
	}
}

// TestDisjunctionWithDownstreamClauses: grouping/aggregation/order
// still extract over a disjunctively filtered column.
func TestDisjunctionWithDownstreamClauses(t *testing.T) {
	db := warehouseDB(t, 30, 120, 400)
	ext := extractDisj(t, db, `
		select l_linenumber, count(*) as cnt, sum(l_extendedprice) as total
		from lineitem
		where l_linenumber in (2, 5)
		group by l_linenumber
		order by l_linenumber`)
	if len(ext.GroupBy) != 1 || ext.GroupBy[0].Column != "l_linenumber" {
		t.Errorf("group by: %v", ext.GroupBy)
	}
	if len(ext.OrderBy) != 1 || ext.OrderBy[0].Desc {
		t.Errorf("order by: %v", ext.OrderBy)
	}
	var f *core.FilterPredicate
	for i := range ext.Filters {
		if ext.Filters[i].Col.Column == "l_linenumber" {
			f = &ext.Filters[i]
		}
	}
	if f == nil || f.Kind != core.FilterDisjRange || len(f.Segments) != 2 {
		t.Errorf("disjunctive filter: %+v", ext.Filters)
	}
}

// TestDisjunctionOffByDefault: with the flag off, a disjunctive
// hidden query must fail extraction (checker rejection), never be
// silently flattened into its convex hull.
func TestDisjunctionOffByDefault(t *testing.T) {
	db := warehouseDB(t, 30, 120, 300)
	exe := app.MustSQLExecutable("disj-off",
		`select o_orderkey from orders where o_totalprice <= 100000 or o_totalprice >= 400000`)
	_, err := core.Extract(exe, db, defaultCfg())
	if err == nil {
		t.Fatal("disjunctive query must be rejected when the extension is off")
	}
}
