package core

import (
	"fmt"

	"unmasque/internal/sqldb"
)

// Having extraction (Section 7). The pipeline is reworked: G_E is
// identified right after J_E, then every non-key numeric column goes
// through a *unified* value-constraint extraction that first finds
// the threshold constants (the familiar binary searches on D_1 — a
// lower bound of sum/avg/min over a single-row group coincides with
// the constant itself) and then classifies each bound as a plain
// filter or a having predicate on sum, avg, min or max via
// discriminating multi-row probes:
//
//   - lower bound: a two-row group at half the threshold survives
//     only under sum (values compensate); a group pairing one passing
//     row with one far-below row survives only under a row-level
//     filter (having drops whole groups).
//   - upper bound: duplicating the threshold row kills only sum; a
//     far-above companion row kills max/avg but not a filter; an
//     asymmetric pair separates avg from max.
//
// Count-based having predicates require multi-row minimal databases
// and are outside this implementation's scope (the minimizer reports
// them as unextractable), matching the paper's deferral of the
// general case to its technical report.
//
// The module requires (paper restriction) that filter and having
// attribute sets are disjoint, and extends the minimizer with a
// merge-and-boost refinement (minimizer.go) so that a single-row D_1
// satisfying the aggregate constraints exists before this module
// runs.
func (s *Session) extractFiltersAndHaving() error {
	var cols []sqldb.ColRef
	for _, col := range s.allColumns() {
		if s.isKeyColumn(col) || s.inJoinGraph(col) {
			continue
		}
		cols = append(cols, col)
	}
	// Same probe shape as extractFilters: every probe clones D_1 and
	// re-executes E, so clones inherit indexes on the candidate columns.
	release, err := s.adviseProbeColumns(cols)
	if err != nil {
		return err
	}
	defer release()
	for _, col := range cols {
		def, err := s.column(col)
		if err != nil {
			return err
		}
		switch def.Type {
		case sqldb.TText:
			f, err := s.extractTextFilter(nil, col, def)
			if err != nil {
				return fmt.Errorf("column %s: %w", col, err)
			}
			if f != nil {
				s.filters[col] = *f
				s.filterOrder = append(s.filterOrder, col)
			}
		case sqldb.TBool:
			f, err := s.extractBoolFilter(nil, col)
			if err != nil {
				return fmt.Errorf("column %s: %w", col, err)
			}
			if f != nil {
				s.filters[col] = *f
				s.filterOrder = append(s.filterOrder, col)
			}
		case sqldb.TInt, sqldb.TDate, sqldb.TFloat:
			if err := s.extractUnifiedNumeric(col, def); err != nil {
				return fmt.Errorf("column %s: %w", col, err)
			}
		}
	}
	s.filtersKnown = true
	return nil
}

// boundKind classifies one side of a value constraint.
type boundKind uint8

const (
	boundFilter boundKind = iota
	boundSum
	boundAvg
	boundMin // having min(A) >= a (lower side only)
	boundMax // having max(A) <= b (upper side only)
)

// extractUnifiedNumeric finds and classifies the lower/upper value
// constraints of one numeric column.
func (s *Session) extractUnifiedNumeric(col sqldb.ColRef, def sqldb.Column) error {
	raw, err := s.extractNumericFilter(nil, col, def)
	if err != nil {
		return err
	}
	if raw == nil {
		return nil // no constraint on this column
	}
	// Grouping columns cannot carry having aggregates; dates cannot
	// be summed/averaged meaningfully — treat both as filters.
	if s.groupByContains(col) || def.Type == sqldb.TDate {
		s.filters[col] = *raw
		s.filterOrder = append(s.filterOrder, col)
		return nil
	}

	filter := FilterPredicate{Col: col, Kind: FilterRange}
	var hLower, hUpper *HavingPredicate

	if raw.HasLo {
		kind, err := s.classifyLowerBound(col, def, raw.Lo)
		if err != nil {
			return err
		}
		switch kind {
		case boundFilter:
			filter.Lo, filter.HasLo = raw.Lo, true
		case boundSum:
			hLower = &HavingPredicate{Col: col, Fn: sqldb.AggSum, Lo: raw.Lo, HasLo: true}
		case boundAvg:
			hLower = &HavingPredicate{Col: col, Fn: sqldb.AggAvg, Lo: raw.Lo, HasLo: true}
		case boundMin:
			hLower = &HavingPredicate{Col: col, Fn: sqldb.AggMin, Lo: raw.Lo, HasLo: true}
		}
	}
	if raw.HasHi {
		kind, err := s.classifyUpperBound(col, def, raw.Hi)
		if err != nil {
			return err
		}
		switch kind {
		case boundFilter:
			filter.Hi, filter.HasHi = raw.Hi, true
		case boundSum:
			hUpper = &HavingPredicate{Col: col, Fn: sqldb.AggSum, Hi: raw.Hi, HasHi: true}
		case boundAvg:
			hUpper = &HavingPredicate{Col: col, Fn: sqldb.AggAvg, Hi: raw.Hi, HasHi: true}
		case boundMax:
			hUpper = &HavingPredicate{Col: col, Fn: sqldb.AggMax, Hi: raw.Hi, HasHi: true}
		}
	}

	// A sum (or count) upper bound larger than any single row's
	// contribution is invisible to single-row probing; hunt for it
	// with multi-row probes.
	if !raw.HasHi && hUpper == nil {
		h, err := s.detectHighUpperBound(col, def)
		if err != nil {
			return err
		}
		hUpper = h
	}

	if filter.HasLo || filter.HasHi {
		s.filters[col] = filter
		s.filterOrder = append(s.filterOrder, col)
	}
	// Merge same-aggregate bounds into one between-style predicate.
	if hLower != nil && hUpper != nil && hLower.Fn == hUpper.Fn {
		hLower.Hi, hLower.HasHi = hUpper.Hi, true
		hUpper = nil
	}
	if hLower != nil {
		s.having = append(s.having, *hLower)
	}
	if hUpper != nil {
		s.having = append(s.having, *hUpper)
	}
	return nil
}

// multiRowProbe duplicates the column's single D_1 row n times with
// the given per-row values for col. Columns already known to carry a
// sum-type having predicate are scaled by 1/n so their group sums
// survive the duplication; all row-level and avg constraints are
// preserved by plain copying.
func (s *Session) multiRowProbe(col sqldb.ColRef, vals []sqldb.Value) (bool, error) {
	db := s.cloneD1()
	tbl, err := db.Table(col.Table)
	if err != nil {
		return false, err
	}
	if tbl.RowCount() != 1 {
		return false, fmt.Errorf("having probe requires single-row D_1; table %s has %d rows", col.Table, tbl.RowCount())
	}
	n := len(vals)
	for i := 1; i < n; i++ {
		if _, err := tbl.AppendRowCopy(0); err != nil {
			return false, err
		}
	}
	for i, v := range vals {
		if err := tbl.Set(i, col.Column, v); err != nil {
			return false, err
		}
	}
	// Sum-preserving scaling for known sum-having columns of this
	// table (other than the probed one).
	for _, h := range s.having {
		if h.Fn != sqldb.AggSum || h.Col == col || h.Col.Table != col.Table {
			continue
		}
		cur, err := tbl.Get(0, h.Col.Column)
		if err != nil || cur.Null {
			continue
		}
		scaled, err := sqldb.Div(cur, sqldb.NewInt(int64(n)))
		if err != nil {
			continue
		}
		if err := tbl.SetAll(h.Col.Column, scaled); err != nil {
			return false, err
		}
	}
	return s.populated(nil, db)
}

// detectHighUpperBound probes for sum/count upper bounds exceeding a
// single row's reach: group sizes grow geometrically with every row
// at the domain maximum; the first failing size reveals a bound,
// value-sensitivity separates sum from count, and a binary search
// over achievable totals pins the constant.
func (s *Session) detectHighUpperBound(col sqldb.ColRef, def sqldb.Column) (*HavingPredicate, error) {
	scale := numericScale(def)
	gMax := def.DomainMax() * scale
	if gMax <= 0 {
		return nil, nil // non-positive domains: sums cannot exceed a single row
	}
	atMax := func(n int) []sqldb.Value {
		vals := make([]sqldb.Value, n)
		for i := range vals {
			vals[i] = gridValue(def, gMax, scale)
		}
		return vals
	}
	const maxGroup = 64
	failN := 0
	for n := 2; n <= maxGroup; n *= 2 {
		pop, err := s.multiRowProbe(col, atMax(n))
		if err != nil {
			return nil, err
		}
		if !pop {
			failN = n
			break
		}
	}
	if failN == 0 {
		return nil, nil
	}
	// Value sensitivity: the same group size with small values stays
	// populated under a sum bound but still fails under a count
	// bound.
	small := make([]sqldb.Value, failN)
	base, err := s.d1Value(col)
	if err != nil {
		return nil, err
	}
	for i := range small {
		small[i] = base
	}
	pop, err := s.multiRowProbe(col, small)
	if err != nil {
		return nil, err
	}
	if !pop && !sqldb.Equal(base, gridValue(def, gMax, scale)) {
		// Count upper bound: find the largest populated group size.
		lo, hi := failN/2, failN-1
		for lo < hi {
			mid := lo + (hi-lo+1)/2
			pop, err := s.multiRowProbe(col, smallVals(base, mid))
			if err != nil {
				return nil, err
			}
			if pop {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return &HavingPredicate{Col: col, Fn: sqldb.AggCount, Hi: sqldb.NewInt(int64(lo)), HasHi: true}, nil
	}
	// Sum upper bound: binary search the largest populated total over
	// [failN/2 * gMax, failN * gMax], realizing a total T as failN
	// rows with near-equal grid values.
	loT := int64(failN/2) * gMax
	hiT := int64(failN)*gMax - 1
	for loT < hiT {
		mid := loT + (hiT-loT+1)/2
		pop, err := s.multiRowProbe(col, distributeTotal(def, scale, mid, failN))
		if err != nil {
			return nil, err
		}
		if pop {
			loT = mid
		} else {
			hiT = mid - 1
		}
	}
	return &HavingPredicate{Col: col, Fn: sqldb.AggSum, Hi: gridValue(def, loT, scale), HasHi: true}, nil
}

func smallVals(v sqldb.Value, n int) []sqldb.Value {
	out := make([]sqldb.Value, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// distributeTotal renders total T (grid units) as n row values q or
// q+1 summing exactly to T.
func distributeTotal(def sqldb.Column, scale, total int64, n int) []sqldb.Value {
	q := total / int64(n)
	r := total - q*int64(n)
	out := make([]sqldb.Value, n)
	for i := range out {
		g := q
		if int64(i) < r {
			g = q + 1
		}
		out[i] = gridValue(def, g, scale)
	}
	return out
}

// twoRowProbe builds a clone of D_1 with the column's table
// duplicated into two rows carrying values (v1, v2); every other
// column of the duplicate copies row 0 (so joins and group keys
// match), and reports whether the result stays populated.
func (s *Session) twoRowProbe(col sqldb.ColRef, v1, v2 sqldb.Value) (bool, error) {
	db := s.cloneD1()
	tbl, err := db.Table(col.Table)
	if err != nil {
		return false, err
	}
	if tbl.RowCount() != 1 {
		return false, fmt.Errorf("having probe requires single-row D_1; table %s has %d rows", col.Table, tbl.RowCount())
	}
	if _, err := tbl.AppendRowCopy(0); err != nil {
		return false, err
	}
	if err := tbl.Set(0, col.Column, v1); err != nil {
		return false, err
	}
	if err := tbl.Set(1, col.Column, v2); err != nil {
		return false, err
	}
	return s.populated(nil, db)
}

// classifyLowerBound distinguishes filter/min vs sum vs avg for a
// lower threshold a (grid point gA). Probe order matters: each probe
// is conclusive only because earlier probes eliminated alternatives.
func (s *Session) classifyLowerBound(col sqldb.ColRef, def sqldb.Column, a sqldb.Value) (boundKind, error) {
	scale := numericScale(def)
	gA := scaleFloat(a.AsFloat(), scale)
	gMin := def.DomainMin() * scale
	gMax := def.DomainMax() * scale
	probe := func(x, y int64) (bool, error) {
		return s.twoRowProbe(col, gridValue(def, x, scale), gridValue(def, y, scale))
	}

	// Probe S: a two-row group whose values are each strictly below a
	// but sum to a. Only sum(A) >= a survives (filter/min drop rows
	// or the group; avg = a/2 < a). Available when a >= 2 on the
	// grid; for smaller thresholds over signed domains, use a
	// (a+1, -1) pair instead (sum = a; avg, min below).
	switch {
	case gA >= 2:
		hi := (gA + 1) / 2
		lo := gA - hi
		pop, err := probe(hi, lo)
		if err != nil {
			return 0, err
		}
		if pop {
			return boundSum, nil
		}
	case gMin <= -1 && gA+1 <= gMax && gA > 0:
		pop, err := probe(gA+1, -1)
		if err != nil {
			return 0, err
		}
		if pop {
			return boundSum, nil
		}
	}

	// Probe F: one passing row plus one far-below row. A row-level
	// filter keeps the group through the passing row; min and avg
	// (dragged down) kill the whole group, and sum was excluded
	// above (for the far-below value the pair sum falls below a
	// whenever gMin < 0; over non-negative domains sum at small
	// thresholds is unextractable and defaults to filter).
	if gMin < gA {
		pop, err := probe(gA, gMin)
		if err != nil {
			return 0, err
		}
		if pop {
			return boundFilter, nil
		}
	} else {
		return boundFilter, nil // threshold at domain edge
	}

	// Probe V: asymmetric pair (a+3, a-1): mean a+1 >= a survives
	// only under avg; min fails.
	if gA+3 <= gMax && gA-1 >= gMin {
		pop, err := probe(gA+3, gA-1)
		if err != nil {
			return 0, err
		}
		if pop {
			return boundAvg, nil
		}
	}
	// Not a per-row filter (probe F failed), not avg: a min() having
	// predicate. NOTE — deviation from the paper: Section 7 folds
	// min(A) >= a into the filter A >= a, but the two differ on
	// groups with mixed rows (the filter keeps a group through its
	// passing rows; the having drops it whole). The checker's
	// initial-instance comparison rejects the folded form, so the
	// faithful predicate is kept.
	return boundMin, nil
}

// classifyUpperBound distinguishes filter/max vs sum vs avg for an
// upper threshold b (grid point gB).
func (s *Session) classifyUpperBound(col sqldb.ColRef, def sqldb.Column, b sqldb.Value) (boundKind, error) {
	scale := numericScale(def)
	gB := scaleFloat(b.AsFloat(), scale)
	gMin := def.DomainMin() * scale
	gMax := def.DomainMax() * scale
	probe := func(x, y int64) (bool, error) {
		return s.twoRowProbe(col, gridValue(def, x, scale), gridValue(def, y, scale))
	}

	// Probe S: duplicate the threshold value. For positive b the sum
	// doubles past b and only sum(A) <= b empties the result.
	if gB > 0 {
		pop, err := probe(gB, gB)
		if err != nil {
			return 0, err
		}
		if !pop {
			return boundSum, nil
		}
	}

	// Probe F: one passing row plus one far-above row: a filter
	// survives through the passing row; max and avg fail.
	if gMax > gB {
		pop, err := probe(gB, gMax)
		if err != nil {
			return 0, err
		}
		if pop {
			return boundFilter, nil
		}
	} else {
		return boundFilter, nil
	}

	// Probe V: asymmetric pair (b-3, b+1): mean b-1 <= b survives
	// only under avg; max fails.
	if gB-3 >= gMin && gB+1 <= gMax {
		pop, err := probe(gB-3, gB+1)
		if err != nil {
			return 0, err
		}
		if pop {
			return boundAvg, nil
		}
	}
	// Symmetric to the lower side: a genuine max() having predicate.
	return boundMax, nil
}

// havingRowBounds derives per-row value bounds from the extracted
// having predicates on a column: in the single-row-per-group
// instances the generation pipeline builds, sum(A) and avg(A) both
// reduce to A, so their thresholds constrain the row value directly.
func (s *Session) havingRowBounds(col sqldb.ColRef) (lo, hi sqldb.Value, hasLo, hasHi bool) {
	for _, h := range s.having {
		if h.Col != col {
			continue
		}
		if h.HasLo {
			lo, hasLo = h.Lo, true
		}
		if h.HasHi {
			hi, hasHi = h.Hi, true
		}
	}
	return
}

// havingFor returns the having predicate on a column, if any.
func (s *Session) havingFor(col sqldb.ColRef) *HavingPredicate {
	for i := range s.having {
		if s.having[i].Col == col {
			return &s.having[i]
		}
	}
	return nil
}
