package core

import (
	"fmt"
	"sort"

	"unmasque/internal/sqldb"
)

// mutationUnit is the atomic thing the projection module can change:
// either one join component (all of whose columns must change
// together to preserve joins) or a single non-join column.
type mutationUnit struct {
	rep  sqldb.ColRef   // deterministic representative
	cols []sqldb.ColRef // every column mutated together
	comp bool           // true when the unit is a join component
}

// mutationUnits enumerates the units in deterministic order.
func (s *Session) mutationUnits() []mutationUnit {
	var units []mutationUnit
	for i := range s.components {
		comp := &s.components[i]
		units = append(units, mutationUnit{rep: comp.cols[0], cols: comp.cols, comp: true})
	}
	for _, col := range s.allColumns() {
		if s.inJoinGraph(col) {
			continue
		}
		units = append(units, mutationUnit{rep: col, cols: []sqldb.ColRef{col}})
	}
	sort.Slice(units, func(i, j int) bool { return units[i].rep.Less(units[j].rep) })
	return units
}

// extractProjections recovers the scalar function behind every output
// column (Section 4.5): dependency lists by single-unit mutation on
// D_1 (two rounds with re-randomized s-values to defeat coincidental
// zero-sensitivity points), then coefficient identification by
// solving a multi-linear system over grid probes.
func (s *Session) extractProjections() error {
	if s.baseline.RowCount() != 1 {
		return fmt.Errorf("E(D_1) has %d rows, want 1; the hidden query is outside EQC-H", s.baseline.RowCount())
	}
	outputs := s.baseline.Columns
	units := s.mutationUnits()

	deps := make([]map[sqldb.ColRef]mutationUnit, len(outputs))
	for i := range deps {
		deps[i] = map[sqldb.ColRef]mutationUnit{}
	}

	// Two detection rounds. Round 0 runs against D_1 as-is; round 1
	// re-randomizes every mutable column first so that a coincidental
	// value (e.g. B=0 masking O=A*B's dependence on A) cannot hide a
	// dependency in both rounds.
	for round := 0; round < 2; round++ {
		base := s.cloneD1()
		if round == 1 {
			if err := s.rerandomize(base, 17+round); err != nil {
				return err
			}
		}
		baseRes, err := s.mustResult(nil, base)
		if err != nil {
			return err
		}
		if !baseRes.Populated() || baseRes.RowCount() != 1 {
			if round == 1 {
				continue // re-randomized instance degenerated; round 0 stands
			}
			return fmt.Errorf("baseline probe lost the populated result")
		}
		// Per-unit probes are independent (each mutates its own clone
		// of base), so they fan out over the worker pool; the probe
		// results are interpreted afterwards in unit order.
		type unitProbe struct {
			changed bool
			res     *sqldb.Result
		}
		probes := make([]unitProbe, len(units))
		err = s.parallelFor(len(units), func(pc *probeCtx, i int) error {
			mut, changed, err := s.mutateUnit(base, units[i], 29+round*13)
			if err != nil {
				return err
			}
			if !changed {
				return nil // pinned unit: cannot influence detection
			}
			res, err := s.mustResult(pc, mut)
			if err != nil {
				return err
			}
			probes[i] = unitProbe{changed: true, res: res}
			return nil
		})
		if err != nil {
			return err
		}
		for ui, u := range units {
			pr := probes[ui]
			if !pr.changed {
				continue
			}
			if !pr.res.Populated() || pr.res.RowCount() != 1 {
				// A unit mutation must not empty the result (s-values
				// keep all predicates satisfied); joins are preserved
				// component-wise. Treat defensively as no signal.
				continue
			}
			for oi := range outputs {
				if !sqldb.ApproxEqual(pr.res.Rows[0][oi], baseRes.Rows[0][oi]) {
					deps[oi][u.rep] = u
				}
			}
		}
	}

	s.projections = make([]Projection, len(outputs))
	for oi, name := range outputs {
		var depUnits []mutationUnit
		for _, u := range deps[oi] {
			depUnits = append(depUnits, u)
		}
		sort.Slice(depUnits, func(i, j int) bool { return depUnits[i].rep.Less(depUnits[j].rep) })
		p, err := s.identifyFunction(name, oi, depUnits)
		if err != nil {
			return fmt.Errorf("output %q: %w", name, err)
		}
		s.projections[oi] = p
	}
	return nil
}

// rerandomize assigns fresh s-values to every non-join column of db
// (variant-keyed), leaving pinned columns alone.
func (s *Session) rerandomize(db *sqldb.Database, variant int) error {
	for _, col := range s.allColumns() {
		if s.inJoinGraph(col) {
			continue
		}
		v, err := s.sValue(col, variant)
		if err != nil {
			// Pinned column (single s-value): keep current value.
			continue
		}
		tbl, err := db.Table(col.Table)
		if err != nil {
			return err
		}
		if err := tbl.SetAll(col.Column, v); err != nil {
			return err
		}
	}
	return nil
}

// mutateUnit clones db and moves the unit to a different s-value;
// changed=false when the unit is pinned.
func (s *Session) mutateUnit(db *sqldb.Database, u mutationUnit, variant int) (*sqldb.Database, bool, error) {
	out := db.Clone()
	if u.comp {
		// Fresh positive key on every column of the component.
		cur, err := s.d1Value(u.rep)
		if err != nil {
			return nil, false, err
		}
		nv := int64(variant)
		if !cur.Null && cur.Typ == sqldb.TInt && cur.I == nv {
			nv++
		}
		for _, c := range u.cols {
			tbl, err := out.Table(c.Table)
			if err != nil {
				return nil, false, err
			}
			if err := tbl.SetAll(c.Column, sqldb.NewInt(nv)); err != nil {
				return nil, false, err
			}
		}
		return out, true, nil
	}
	col := u.rep
	tbl, err := out.Table(col.Table)
	if err != nil {
		return nil, false, err
	}
	cur, err := tbl.Get(0, col.Column)
	if err != nil {
		return nil, false, err
	}
	for k := 0; k < 8; k++ {
		v, err := s.sValue(col, variant+k)
		if err != nil {
			return nil, false, nil // pinned
		}
		if !sqldb.Equal(v, cur) {
			if err := tbl.SetAll(col.Column, v); err != nil {
				return nil, false, err
			}
			return out, true, nil
		}
	}
	return nil, false, nil
}

// maxFunctionArity bounds the multi-linear solver; the paper presents
// two-column functions, we extend to three.
const maxFunctionArity = 3

// identifyFunction computes the scalar function for one output.
func (s *Session) identifyFunction(name string, oi int, depUnits []mutationUnit) (Projection, error) {
	p := Projection{OutputName: name}
	if len(depUnits) == 0 {
		// Unmapped output: count(*) or a constant; the aggregation
		// module settles which.
		p.Constant = true
		p.ConstVal = s.baseline.Rows[0][oi]
		return p, nil
	}
	for _, u := range depUnits {
		p.Deps = append(p.Deps, u.rep)
	}

	// Non-numeric dependencies: only identity (text, bool) or a
	// day-offset affine (date) are in scope.
	defs := make([]sqldb.Column, len(depUnits))
	for i, u := range depUnits {
		def, err := s.column(u.rep)
		if err != nil {
			return p, err
		}
		defs[i] = def
	}
	if len(depUnits) == 1 {
		switch defs[0].Type {
		case sqldb.TText, sqldb.TBool:
			return s.identifyIdentity(p, oi, depUnits[0])
		case sqldb.TDate:
			return s.identifyDateAffine(p, oi, depUnits[0])
		}
	}
	for _, d := range defs {
		if d.Type != sqldb.TInt && d.Type != sqldb.TFloat {
			return p, fmt.Errorf("multi-column function over non-numeric column %s is outside the extractable class", d.Name)
		}
	}
	if len(depUnits) > maxFunctionArity {
		return p, fmt.Errorf("function depends on %d columns; solver supports up to %d", len(depUnits), maxFunctionArity)
	}
	return s.identifyMultilinear(p, oi, depUnits)
}

// identifyIdentity verifies O == A on two probes.
func (s *Session) identifyIdentity(p Projection, oi int, u mutationUnit) (Projection, error) {
	for k := 0; k < 2; k++ {
		db, changed, err := s.mutateUnit(s.silo, u, 41+k*7)
		if err != nil {
			return p, err
		}
		if !changed {
			break
		}
		res, err := s.mustResult(nil, db)
		if err != nil {
			return p, err
		}
		tbl, err := db.Table(u.rep.Table)
		if err != nil {
			return p, err
		}
		v, err := tbl.Get(0, u.rep.Column)
		if err != nil {
			return p, err
		}
		if res.RowCount() != 1 || !sqldb.ApproxEqual(res.Rows[0][oi], v) {
			return p, fmt.Errorf("non-identity function over column %s is outside the extractable class", u.rep)
		}
	}
	p.Coeffs = []float64{0, 1}
	return p, nil
}

// identifyDateAffine identifies O = A + d (d in days) and verifies
// the offset on a second probe.
func (s *Session) identifyDateAffine(p Projection, oi int, u mutationUnit) (Projection, error) {
	var offset int64
	for k := 0; k < 2; k++ {
		db, changed, err := s.mutateUnit(s.silo, u, 43+k*11)
		if err != nil {
			return p, err
		}
		if !changed {
			if k == 0 {
				return p, fmt.Errorf("date column %s is pinned; cannot identify function", u.rep)
			}
			break
		}
		res, err := s.mustResult(nil, db)
		if err != nil {
			return p, err
		}
		tbl, err := db.Table(u.rep.Table)
		if err != nil {
			return p, err
		}
		v, err := tbl.Get(0, u.rep.Column)
		if err != nil {
			return p, err
		}
		o := res.Rows[0][oi]
		if o.Null || o.Typ != sqldb.TDate || v.Null {
			return p, fmt.Errorf("non-affine date function on %s is outside the extractable class", u.rep)
		}
		d := o.I - v.I
		if k == 0 {
			offset = d
		} else if d != offset {
			return p, fmt.Errorf("inconsistent date offsets (%d vs %d) on %s", offset, d, u.rep)
		}
	}
	p.Coeffs = []float64{float64(offset), 1}
	return p, nil
}

// identifyMultilinear solves for the 2^n multi-linear coefficients
// over a full {v0,v1}^n probe grid; the tensor-product structure
// guarantees linear independence, realizing the paper's "four
// linearly independent vectors" requirement deterministically.
func (s *Session) identifyMultilinear(p Projection, oi int, depUnits []mutationUnit) (Projection, error) {
	n := len(depUnits)
	pairs := make([][2]sqldb.Value, n)
	for i, u := range depUnits {
		v1, v2, ok, err := s.sValuePair(u.rep)
		if err != nil {
			return p, err
		}
		if !ok {
			return p, fmt.Errorf("dependency %s is pinned; cannot identify coefficients", u.rep)
		}
		pairs[i] = [2]sqldb.Value{v1, v2}
	}

	// The 2^n corner probes are independent (each builds its own D_1
	// clone), so the grid fans out over the worker pool; the system is
	// assembled positionally, so the solve sees the same matrix for
	// every worker count.
	rows := 1 << n
	matrix := make([][]float64, rows)
	rhs := make([]float64, rows)
	err := s.parallelFor(rows, func(pc *probeCtx, corner int) error {
		db := s.cloneD1()
		xs := make([]float64, n)
		for i, u := range depUnits {
			v := pairs[i][(corner>>i)&1]
			xs[i] = v.AsFloat()
			for _, c := range u.cols {
				tbl, err := db.Table(c.Table)
				if err != nil {
					return err
				}
				if err := tbl.SetAll(c.Column, v); err != nil {
					return err
				}
			}
		}
		res, err := s.mustResult(pc, db)
		if err != nil {
			return err
		}
		if res.RowCount() != 1 {
			return fmt.Errorf("function probe returned %d rows, want 1", res.RowCount())
		}
		o := res.Rows[0][oi]
		if o.Null || !o.Typ.IsNumeric() {
			return fmt.Errorf("output %q is not numeric under numeric dependencies", p.OutputName)
		}
		rhs[corner] = o.AsFloat()
		row := make([]float64, rows)
		for mask := 0; mask < rows; mask++ {
			term := 1.0
			for bit := 0; bit < n; bit++ {
				if mask&(1<<bit) != 0 {
					term *= xs[bit]
				}
			}
			row[mask] = term
		}
		matrix[corner] = row
		return nil
	})
	if err != nil {
		return p, err
	}
	coeffs, err := solveLinearSystem(matrix, rhs)
	if err != nil {
		return p, fmt.Errorf("coefficient solve: %w", err)
	}
	snapCoefficients(coeffs)
	p.Coeffs = coeffs
	return p, nil
}
