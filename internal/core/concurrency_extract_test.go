package core_test

// Extraction-level tests of the probe scheduler and the run cache:
// worker-count determinism, cache effectiveness and the serialization
// of executables that declare concurrent Run unsafe. All of them run
// under `go test -race` in CI, which is what makes the shared-state
// invariants of the fan-out paths enforceable.

import (
	"context"
	"sync"
	"testing"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/sqldb"
)

// concurrencyQueries exercises every parallelized module: from-clause
// probes (joins), per-column filters of each type class, projection
// dependency probes and the multilinear corner grid.
var concurrencyQueries = []string{
	"select c_name, c_acctbal from customer where c_acctbal >= 500.25 and c_mktsegment = 'BUILDING'",
	"select o_orderkey, o_totalprice from orders, lineitem where o_orderkey = l_orderkey and l_discount between 0.02 and 0.08",
	"select l_extendedprice * (1 - l_discount) as disc_price, l_shipdate from lineitem where l_linenumber <= 4",
	"select c_mktsegment, count(*) as cnt, sum(o_totalprice) as vol from customer, orders where c_custkey = o_custkey group by c_mktsegment order by c_mktsegment",
}

// TestExtractionIndependentOfWorkerCount pins the determinism
// contract across 1, 2 and 8 workers, with and without the cache.
func TestExtractionIndependentOfWorkerCount(t *testing.T) {
	db := warehouseDB(t, 25, 50, 160)
	for _, sql := range concurrencyQueries {
		exe := app.MustSQLExecutable("det", sql)
		var wantSQL string
		for _, workers := range []int{1, 2, 8} {
			for _, disableCache := range []bool{false, true} {
				cfg := defaultCfg()
				cfg.Workers = workers
				cfg.DisableRunCache = disableCache
				ext, err := core.Extract(exe, db, cfg)
				if err != nil {
					t.Fatalf("workers=%d cache=%v: %v\nquery: %s", workers, !disableCache, err, sql)
				}
				if wantSQL == "" {
					wantSQL = ext.SQL
				} else if ext.SQL != wantSQL {
					t.Fatalf("workers=%d cache=%v changed the extracted SQL\nwant: %s\ngot:  %s",
						workers, !disableCache, wantSQL, ext.SQL)
				}
				if ext.Stats.Workers != workers {
					t.Errorf("Stats.Workers = %d, want %d", ext.Stats.Workers, workers)
				}
				if workers > 1 && ext.Stats.ParallelProbes == 0 {
					t.Errorf("workers=%d: no probes went through the pool", workers)
				}
			}
		}
	}
}

// TestRunCacheReducesInvocations: with the cache on, repeated probes
// on content-identical instances must be served without running E.
func TestRunCacheReducesInvocations(t *testing.T) {
	db := warehouseDB(t, 25, 50, 160)
	for _, sql := range concurrencyQueries {
		exe := app.MustSQLExecutable("cache", sql)

		uncached := defaultCfg()
		uncached.DisableRunCache = true
		extU, err := core.Extract(exe, db, uncached)
		if err != nil {
			t.Fatalf("uncached: %v\nquery: %s", err, sql)
		}
		if extU.Stats.CacheHits != 0 || extU.Stats.CacheMisses != 0 {
			t.Errorf("disabled cache recorded traffic: %+v", extU.Stats)
		}

		cached := defaultCfg()
		extC, err := core.Extract(exe, db, cached)
		if err != nil {
			t.Fatalf("cached: %v\nquery: %s", err, sql)
		}
		if extC.Stats.CacheHits == 0 {
			t.Errorf("no cache hits during extraction of %s", sql)
		}
		if extC.Stats.CacheHitRate() <= 0 {
			t.Errorf("cache hit rate %v, want > 0", extC.Stats.CacheHitRate())
		}
		if extC.Stats.AppInvocations >= extU.Stats.AppInvocations {
			t.Errorf("cache did not reduce invocations: %d cached vs %d uncached\nquery: %s",
				extC.Stats.AppInvocations, extU.Stats.AppInvocations, sql)
		}
	}
}

// unsafeExecutable wraps a SQL executable and declares itself unsafe
// for concurrent Run, tracking whether overlapping calls occurred.
type unsafeExecutable struct {
	inner    app.Executable
	mu       sync.Mutex
	active   int
	overlaps int
}

func (u *unsafeExecutable) Name() string { return u.inner.Name() }

func (u *unsafeExecutable) Run(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
	u.mu.Lock()
	u.active++
	if u.active > 1 {
		u.overlaps++
	}
	u.mu.Unlock()
	res, err := u.inner.Run(ctx, db)
	u.mu.Lock()
	u.active--
	u.mu.Unlock()
	return res, err
}

func (u *unsafeExecutable) ConcurrentRunSafe() bool { return false }

// TestUnsafeExecutableIsSerialized: an executable reporting
// ConcurrentRunSafe()==false must never see overlapping Run calls,
// even with a large worker pool, and extraction must still succeed
// with the usual result.
func TestUnsafeExecutableIsSerialized(t *testing.T) {
	db := warehouseDB(t, 25, 50, 160)
	sql := concurrencyQueries[1]
	u := &unsafeExecutable{inner: app.MustSQLExecutable("unsafe", sql)}
	cfg := defaultCfg()
	cfg.Workers = 8
	ext, err := core.Extract(u, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if u.overlaps != 0 {
		t.Errorf("unsafe executable saw %d overlapping Run calls", u.overlaps)
	}
	ref, err := core.Extract(app.MustSQLExecutable("ref", sql), db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ext.SQL != ref.SQL {
		t.Errorf("serialized extraction diverged:\n%s\nvs\n%s", ext.SQL, ref.SQL)
	}
}
