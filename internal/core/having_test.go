package core_test

import (
	"context"
	"testing"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/sqldb"
)

func havingCfg() core.Config {
	cfg := defaultCfg()
	cfg.ExtractHaving = true
	return cfg
}

// extractHaving runs the Section 7 pipeline and verifies equivalence.
func extractHavingQ(t *testing.T, db *sqldb.Database, sql string) *core.Extraction {
	t.Helper()
	exe := app.MustSQLExecutable(t.Name(), sql)
	res, err := exe.Run(context.Background(), db)
	if err != nil || !res.Populated() {
		t.Fatalf("fixture unpopulated: %v", err)
	}
	ext, err := core.Extract(exe, db, havingCfg())
	if err != nil {
		t.Fatalf("having extraction failed: %v", err)
	}
	want, _ := exe.Run(context.Background(), db)
	got, err := db.Execute(context.Background(), ext.Query)
	if err != nil {
		t.Fatalf("extracted query fails: %v\n%s", err, ext.SQL)
	}
	if !want.EqualUnordered(got) {
		t.Fatalf("results differ on D_I\nextracted: %s", ext.SQL)
	}
	return ext
}

func TestHavingSumLowerBound(t *testing.T) {
	db := warehouseDB(t, 30, 80, 250)
	ext := extractHavingQ(t, db, `
		select o_custkey, sum(o_totalprice) as total
		from orders group by o_custkey
		having sum(o_totalprice) >= 400000`)
	if len(ext.Having) != 1 {
		t.Fatalf("having predicates: %v", ext.Having)
	}
	h := ext.Having[0]
	if h.Fn != sqldb.AggSum || !h.HasLo || h.Lo.AsFloat() != 400000 || h.HasHi {
		t.Errorf("predicate: %+v", h)
	}
}

func TestHavingAvgLowerBound(t *testing.T) {
	db := warehouseDB(t, 30, 80, 250)
	ext := extractHavingQ(t, db, `
		select l_orderkey, avg(l_extendedprice) as m
		from lineitem group by l_orderkey
		having avg(l_extendedprice) >= 30000`)
	if len(ext.Having) != 1 {
		t.Fatalf("having predicates: %v", ext.Having)
	}
	h := ext.Having[0]
	if h.Fn != sqldb.AggAvg || !h.HasLo || h.Lo.AsFloat() != 30000 {
		t.Errorf("predicate: %+v", h)
	}
}

func TestHavingSumBetween(t *testing.T) {
	db := warehouseDB(t, 30, 80, 250)
	ext := extractHavingQ(t, db, `
		select o_custkey, sum(o_totalprice) as total
		from orders group by o_custkey
		having sum(o_totalprice) >= 200000 and sum(o_totalprice) <= 900000`)
	if len(ext.Having) != 1 {
		t.Fatalf("having predicates: %v", ext.Having)
	}
	h := ext.Having[0]
	if h.Fn != sqldb.AggSum || !h.HasLo || !h.HasHi ||
		h.Lo.AsFloat() != 200000 || h.Hi.AsFloat() != 900000 {
		t.Errorf("predicate: %+v", h)
	}
}

// TestHavingMinExtractedFaithfully: min() having bounds are kept as
// having predicates. (The paper folds them into filters, but the fold
// changes semantics on groups with mixed rows — a filter keeps a
// group through its passing rows, the having drops it whole — and the
// checker's initial-instance comparison rejects the folded form.)
func TestHavingMinExtractedFaithfully(t *testing.T) {
	db := warehouseDB(t, 30, 80, 250)
	ext := extractHavingQ(t, db, `
		select o_custkey, min(o_totalprice) as lo
		from orders group by o_custkey
		having min(o_totalprice) >= 50000`)
	if len(ext.Having) != 1 {
		t.Fatalf("having predicates: %v", ext.Having)
	}
	h := ext.Having[0]
	if h.Fn != sqldb.AggMin || !h.HasLo || h.Lo.AsFloat() != 50000 {
		t.Errorf("predicate: %+v", h)
	}
}

// TestHavingWithFilterDisjoint: a filter on one attribute and a
// having on another (the paper's disjointness restriction) extract
// together.
func TestHavingWithFilterDisjoint(t *testing.T) {
	db := warehouseDB(t, 30, 80, 250)
	ext := extractHavingQ(t, db, `
		select o_custkey, sum(o_totalprice) as total
		from orders
		where o_shippriority >= 1
		group by o_custkey
		having sum(o_totalprice) >= 150000`)
	if len(ext.Having) != 1 || ext.Having[0].Fn != sqldb.AggSum {
		t.Fatalf("having: %v", ext.Having)
	}
	foundFilter := false
	for _, f := range ext.Filters {
		if f.Col.Column == "o_shippriority" && f.HasLo && f.Lo.I == 1 {
			foundFilter = true
		}
	}
	if !foundFilter {
		t.Errorf("filter missing: %v", ext.Filters)
	}
}

// TestHavingModeOnPlainQuery: the Section 7 pipeline must still
// handle queries with no having at all.
func TestHavingModeOnPlainQuery(t *testing.T) {
	db := warehouseDB(t, 30, 80, 250)
	ext := extractHavingQ(t, db, `
		select c_mktsegment, count(*) as cnt
		from customer
		where c_acctbal >= 0
		group by c_mktsegment`)
	if len(ext.Having) != 0 {
		t.Errorf("spurious having: %v", ext.Having)
	}
	if len(ext.Filters) != 1 || ext.Filters[0].Col.Column != "c_acctbal" {
		t.Errorf("filters: %v", ext.Filters)
	}
}
