package core

// White-box tests of the pipeline's numeric machinery: the linear
// solver, the aggregation-separating k selection (direct search vs
// the closed-form Equation 2 forbidden set), s-value generators and
// the LIKE pattern expander.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearSystemKnown(t *testing.T) {
	// x + y = 3; x - y = 1 -> x=2, y=1.
	x, err := solveLinearSystem([][]float64{{1, 1}, {1, -1}}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !nearly(x[0], 2) || !nearly(x[1], 1) {
		t.Errorf("solution %v", x)
	}
}

func TestSolveLinearSystemSingular(t *testing.T) {
	if _, err := solveLinearSystem([][]float64{{1, 2}, {2, 4}}, []float64{1, 2}); err == nil {
		t.Error("singular system should error")
	}
}

func TestSolveLinearSystemShapeErrors(t *testing.T) {
	if _, err := solveLinearSystem(nil, nil); err == nil {
		t.Error("empty system should error")
	}
	if _, err := solveLinearSystem([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("shape mismatch should error")
	}
	if _, err := solveLinearSystem([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("ragged row should error")
	}
}

func TestSolveLinearSystemRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(4)
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(21) - 10)
		}
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = float64(rng.Intn(19) - 9)
			}
		}
		for i := range a {
			for j := range a[i] {
				b[i] += a[i][j] * x[j]
			}
		}
		got, err := solveLinearSystem(a, b)
		if err != nil {
			continue // singular random matrix; fine
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				t.Fatalf("trial %d: got %v want %v", trial, got, x)
			}
		}
	}
}

func TestSnapCoefficients(t *testing.T) {
	x := []float64{0.9999999999, -2.0000000001, 0.1500000000001, 3.7}
	snapCoefficients(x)
	if x[0] != 1 || x[1] != -2 {
		t.Errorf("integer snap failed: %v", x)
	}
	if x[2] != 0.15 {
		t.Errorf("decimal snap failed: %v", x[2])
	}
	if x[3] != 3.7 {
		t.Errorf("value disturbed: %v", x[3])
	}
}

func TestPickKMakesCandidatesDistinct(t *testing.T) {
	cases := [][2]float64{{3, 4}, {-1, 0}, {1, 2}, {2, 1}, {5, -5}, {0.5, 0.25}, {100, 1}}
	for _, c := range cases {
		k := pickK(c[0], c[1])
		if !aggCandidatesDistinct(c[0], c[1], k) {
			t.Errorf("pickK(%v, %v) = %d does not separate", c[0], c[1], k)
		}
		for smaller := 1; smaller < k; smaller++ {
			if aggCandidatesDistinct(c[0], c[1], smaller) {
				t.Errorf("pickK(%v, %v) = %d is not minimal (%d works)", c[0], c[1], k, smaller)
			}
		}
	}
}

// TestPickKAgreesWithClosedForm property-tests the direct search
// against the Equation 2 forbidden set: every integer k rejected by
// the search must be (near) a forbidden value, and the chosen k must
// avoid all of them.
func TestPickKAgreesWithClosedForm(t *testing.T) {
	f := func(a8, b8 int8) bool {
		o1 := float64(a8%50) / 2
		o2 := float64(b8%50) / 2
		if nearly(o1, 0) || nearly(o1, o2) {
			return true // preconditions of the construction
		}
		k := pickK(o1, o2)
		forbidden := forbiddenKValues(o1, o2)
		near := func(x int) bool {
			for _, fv := range forbidden {
				if math.Abs(float64(x)-fv) < 1e-6 {
					return true
				}
			}
			return false
		}
		// The chosen k avoids the closed-form set…
		if near(k) {
			return false
		}
		// …and every smaller rejected k is explained by it.
		for smaller := 1; smaller < k; smaller++ {
			if !near(smaller) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestForbiddenKValuesContainDerivedCollisions(t *testing.T) {
	// For o1=3, o2=4: count==o1 at k=2, count==o2 at k=3.
	vals := forbiddenKValues(3, 4)
	want := map[float64]bool{2: false, 3: false}
	for _, v := range vals {
		for w := range want {
			if math.Abs(v-w) < 1e-9 {
				want[w] = true
			}
		}
	}
	for w, seen := range want {
		if !seen {
			t.Errorf("forbidden set %v misses %v", vals, w)
		}
	}
}

func TestExpandPattern(t *testing.T) {
	cases := []struct {
		pattern string
		variant int
		maxLen  int
		want    string
		wantErr bool
	}{
		{"%abc%", 0, 10, "abc", false},
		{"%abc%", 1, 10, "babc", false},
		{"a_c", 0, 10, "abc", false},
		{"a_c", 1, 10, "acc", false},
		{"abc", 1, 10, "", true},       // no wildcard: single value only
		{"%abcdefgh%", 1, 8, "", true}, // expansion exceeds budget
	}
	for _, c := range cases {
		got, err := expandPattern(c.pattern, c.variant, c.maxLen)
		if c.wantErr {
			if err == nil {
				t.Errorf("expandPattern(%q,%d): expected error, got %q", c.pattern, c.variant, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("expandPattern(%q,%d): %v", c.pattern, c.variant, err)
			continue
		}
		if got != c.want {
			t.Errorf("expandPattern(%q,%d) = %q, want %q", c.pattern, c.variant, got, c.want)
		}
	}
}

func TestExpandPatternAlwaysMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pieces := []string{"%", "_", "a", "bc", "%", "d"}
		pattern := ""
		for i := 0; i < 1+rng.Intn(4); i++ {
			pattern += pieces[rng.Intn(len(pieces))]
		}
		for v := 0; v < 4; v++ {
			s, err := expandPattern(pattern, v, 64)
			if err != nil {
				continue
			}
			if !likeMatchForTest(pattern, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFreshStringDistinctness(t *testing.T) {
	for _, maxLen := range []int{1, 2, 3, 6, 30} {
		cap := freshStringCapacity(maxLen, 5000)
		seen := map[string]bool{}
		for v := 0; v < cap; v++ {
			s := freshString(v, maxLen)
			if len(s) > maxLen {
				t.Fatalf("maxLen %d: %q too long", maxLen, s)
			}
			if seen[s] {
				t.Fatalf("maxLen %d: duplicate %q at variant %d (capacity %d)", maxLen, s, v, cap)
			}
			seen[s] = true
		}
	}
}

func TestPickInRange(t *testing.T) {
	// Anchored near 1 when the range allows.
	if got := pickInRange(-100, 100, 0); got != 1 {
		t.Errorf("anchor: %d", got)
	}
	// Wraps within the span.
	for k := int64(0); k < 50; k++ {
		v := pickInRange(5, 9, k)
		if v < 5 || v > 9 {
			t.Fatalf("pickInRange(5,9,%d) = %d out of range", k, v)
		}
	}
	// Degenerate range.
	if got := pickInRange(7, 7, 3); got != 7 {
		t.Errorf("degenerate: %d", got)
	}
}

func TestEvalMultilinear(t *testing.T) {
	// f(A,B) = 1*A + 0*B -1*AB + 0 (the revenue shape).
	coeffs := []float64{0, 1, 0, -1}
	if got := evalMultilinear(coeffs, []float64{10, 0.2}); !nearly(got, 8) {
		t.Errorf("revenue(10, 0.2) = %v", got)
	}
	// Constant.
	if got := evalMultilinear([]float64{5}, nil); got != 5 {
		t.Errorf("constant = %v", got)
	}
}

// likeMatchForTest re-implements LIKE matching to avoid importing
// sqldb in a white-box test of pattern expansion.
func likeMatchForTest(pattern, s string) bool {
	var dp func(p, i int) bool
	memo := map[[2]int]int{}
	dp = func(p, i int) bool {
		key := [2]int{p, i}
		if v, ok := memo[key]; ok {
			return v == 1
		}
		res := false
		switch {
		case p == len(pattern):
			res = i == len(s)
		case pattern[p] == '%':
			res = dp(p+1, i) || (i < len(s) && dp(p, i+1))
		case i < len(s) && (pattern[p] == '_' || pattern[p] == s[i]):
			res = dp(p+1, i+1)
		}
		v := 0
		if res {
			v = 1
		}
		memo[key] = v
		return res
	}
	return dp(0, 0)
}
