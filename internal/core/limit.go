package core

import (
	"fmt"
	"math"
	"strings"

	"unmasque/internal/sqldb"
)

// extractLimit recovers l_E (Section 5.4) by generating instances
// whose pre-limit result cardinality follows a geometric progression
// (a, a·r, a·r², …): the first run returning fewer rows than
// generated reveals the limit. The progression is bounded above by
// l_max, the maximum number of distinct groups the grouping columns
// can produce under their domain and filter restrictions, and by the
// configured cap (beyond which the query is concluded unlimited).
func (s *Session) extractLimit() error {
	if s.ungroupedAgg && len(s.groupBy) == 0 {
		return nil // single-row results can never exhibit a limit
	}
	lmax := s.limitCeiling()
	n := s.cfg.LimitStart
	if base := s.baseline.RowCount(); base >= n {
		n = base + 1 // a = max(4, |R_I|) in spirit: start above what we saw
	}
	for {
		if n > lmax {
			n = lmax
		}
		m, generated, err := s.limitProbe(n)
		if err != nil {
			return err
		}
		if m > 0 && m < generated {
			if m < 3 {
				return fmt.Errorf("observed cutoff %d below the EQC minimum limit of 3", m)
			}
			s.limit = int64(m)
			return nil
		}
		if n >= lmax || n >= s.cfg.LimitMax {
			return nil // no limit within the probe ceiling
		}
		n *= s.cfg.LimitRatio
		if n > s.cfg.LimitMax {
			n = s.cfg.LimitMax
		}
	}
}

// limitCeiling computes l_max: with no grouping the pre-limit
// cardinality is unbounded; with grouping it is capped by the product
// of the distinct-value capacities of the functionally independent
// grouping columns (the n1·n2·n3·… bound of Section 5.4).
func (s *Session) limitCeiling() int {
	if len(s.groupBy) == 0 {
		return s.cfg.LimitMax
	}
	prod := 1
	for _, g := range s.groupBy {
		c := s.columnCapacity(g)
		if c <= 0 {
			c = 1
		}
		if prod >= s.cfg.LimitMax/c {
			return s.cfg.LimitMax
		}
		prod *= c
	}
	if prod > s.cfg.LimitMax {
		prod = s.cfg.LimitMax
	}
	return prod
}

// columnCapacity estimates how many distinct s-values a grouping
// column can take.
func (s *Session) columnCapacity(col sqldb.ColRef) int {
	if s.inJoinGraph(col) {
		return s.cfg.LimitMax // keys are unbounded positive integers
	}
	def, err := s.column(col)
	if err != nil {
		return 1
	}
	switch def.Type {
	case sqldb.TBool:
		return 2
	case sqldb.TText:
		f, ok := s.filters[col]
		if ok && f.Kind == FilterTextIn {
			return len(f.InSet)
		}
		if !ok {
			// Bounded by what the s-value generator can distinctly
			// produce within the column length.
			return freshStringCapacity(def.TextMaxLen(), s.cfg.LimitMax)
		}
		if f.Kind == FilterTextEq {
			return 1
		}
		// A '%' wildcard lets the variant marker expand within the
		// remaining length budget; a '_'-only pattern cycles through
		// 26 variants (all underscores shift together).
		for i := 0; i < len(f.Pattern); i++ {
			if f.Pattern[i] == '%' {
				headroom := def.TextMaxLen() - len(sqldb.StripPercent(f.Pattern))
				return freshStringCapacity(headroom, s.cfg.LimitMax)
			}
		}
		if strings.ContainsRune(f.Pattern, '_') {
			return 26
		}
		return 1
	default:
		scale := numericScale(def)
		lo, hi := def.DomainMin()*scale, def.DomainMax()*scale
		if f, ok := s.filters[col]; ok {
			if f.Kind == FilterDisjRange {
				total := int64(0)
				for _, seg := range f.Segments {
					total += scaleFloat(seg.Hi.AsFloat(), scale) - scaleFloat(seg.Lo.AsFloat(), scale) + 1
					if total > int64(s.cfg.LimitMax) {
						return s.cfg.LimitMax
					}
				}
				return int(total)
			}
			if f.HasLo {
				lo = scaleFloat(f.Lo.AsFloat(), scale)
			}
			if f.HasHi {
				hi = scaleFloat(f.Hi.AsFloat(), scale)
			}
		}
		span := hi - lo + 1
		if span <= 0 {
			return 1
		}
		if span > int64(s.cfg.LimitMax) {
			return s.cfg.LimitMax
		}
		return int(span)
	}
}

// limitProbe generates an instance whose pre-limit result holds at
// least n rows and returns (observed, generated) cardinalities.
// Tables not connected by any join edge multiply the SPJ cardinality,
// so each of g disconnected table groups only needs ~n^(1/g) rows —
// without this, a cross-product query would force n² generated rows.
func (s *Session) limitProbe(n int) (int, int, error) {
	groups := s.disconnectedTableGroups()
	rowsPer := n
	if groups > 1 {
		rowsPer = int(math.Ceil(math.Pow(float64(n), 1/float64(groups))))
		if rowsPer < 2 {
			rowsPer = 2
		}
	}
	generated := 1
	for i := 0; i < groups; i++ {
		generated *= rowsPer
	}
	n = rowsPer
	d := s.newDgen()
	for _, t := range s.tables {
		d.setRows(t, n)
	}
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i + 1)
	}
	for ci := range s.components {
		d.setComponentKeys(&s.components[ci], keys, d.rowsOfFn())
	}
	// Assign the grouping columns a mixed-radix enumeration of their
	// value spaces so every row lands in a distinct group: column j
	// takes variant (i / prod(cap_0..cap_{j-1})) mod cap_j.
	divisor := 1
	for _, g := range s.groupBy {
		if s.inJoinGraph(g) {
			continue // component keys 1..n already separate groups
		}
		cap := s.columnCapacity(g)
		if cap <= 0 {
			cap = 1
		}
		vals := make([]sqldb.Value, n)
		for i := 0; i < n; i++ {
			v, err := s.sValue(g, (i/divisor)%cap)
			if err != nil {
				return 0, 0, err
			}
			vals[i] = v
		}
		d.set(g, vals...)
		if divisor <= s.cfg.LimitMax/cap {
			divisor *= cap
		} else {
			divisor = s.cfg.LimitMax
		}
	}
	// With no grouping at all, vary one arbitrary free column so rows
	// are distinguishable (not required for cardinality, but keeps
	// order-by results deterministic).
	db, err := s.materialize(d)
	if err != nil {
		return 0, 0, err
	}
	res, err := s.mustResult(nil, db)
	if err != nil {
		return 0, 0, err
	}
	if !res.Populated() {
		return 0, 0, fmt.Errorf("limit probe with %d rows lost the populated result", n)
	}
	return res.RowCount(), generated, nil
}

// disconnectedTableGroups counts the connected components of the
// extracted tables under the join graph (a table touched by no join
// column forms its own group).
func (s *Session) disconnectedTableGroups() int {
	parent := map[string]string{}
	var find func(t string) string
	find = func(t string) string {
		if parent[t] == t {
			return t
		}
		root := find(parent[t])
		parent[t] = root
		return root
	}
	for _, t := range s.tables {
		parent[t] = t
	}
	for _, comp := range s.components {
		tables := comp.tablesOf()
		var first string
		for t := range tables {
			if first == "" {
				first = t
				continue
			}
			ra, rb := find(first), find(t)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	groups := map[string]bool{}
	for _, t := range s.tables {
		groups[find(t)] = true
	}
	return len(groups)
}
