package core

import (
	"context"
	"fmt"
	"time"

	"unmasque/internal/sqldb"
	"unmasque/internal/xdata"
)

// probeContext builds a cancellable context for one probe execution.
func probeContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), timeout)
}

// check is the final extraction-checker module (Section 5.5): the
// application and the assembled Q_E are executed side by side on (a)
// several randomized databases and (b) an XData-style suite of
// mutant-killing instances, comparing results exactly — including
// physical order via position-dependent checksums when the query
// orders its output.
func (s *Session) check(ext *Extraction) error {
	schemas := make([]sqldb.TableSchema, 0, len(s.tables))
	for _, t := range s.tables {
		schemas = append(schemas, s.schemas[t])
	}
	analysis, err := xdata.Analyze(ext.Query, schemas)
	if err != nil {
		return fmt.Errorf("analysis of assembled query: %w", err)
	}

	// Stage 0: the original instance. Random and targeted instances
	// are generated from the *extracted* predicate structure, so
	// hidden logic invisible to the pipeline (e.g. negated patterns)
	// could satisfy them by construction; D_I is the one instance the
	// pipeline did not shape — which also makes it the first
	// mutant-killing witness for the bounded checker.
	var witnesses []witness
	initRes, err := s.compareOnResult(ext, s.source, "initial-instance")
	if err != nil {
		return err
	}
	witnesses = append(witnesses, witness{db: s.source, appRes: initRes})

	// Stage 1: randomized databases.
	for round := 0; round < s.cfg.CheckerRounds; round++ {
		rng := newRNG(s.cfg.Seed + int64(round) + 1000)
		db, err := analysis.RandomInstance(s.cfg.CheckerRows, rng)
		if err != nil {
			return err
		}
		appRes, err := s.compareOnResult(ext, db, fmt.Sprintf("random#%d", round))
		if err != nil {
			return err
		}
		witnesses = append(witnesses, witness{db: db, appRes: appRes})
	}

	// Stage 2: mutant killing — symbolically pruned when a bounded
	// proof is requested, the classical XData instance suite otherwise.
	if s.cfg.BoundedCheck > 0 {
		return s.checkBounded(ext, schemas, witnesses)
	}
	instances, err := xdata.Generate(ext.Query, schemas, s.cfg.Seed)
	if err != nil {
		return err
	}
	for _, inst := range instances {
		if err := s.compareOn(ext, inst.DB, inst.Label); err != nil {
			return err
		}
	}
	return nil
}

// witness is a database the application has already been executed on,
// together with its recorded (raw) result. The bounded checker reuses
// witnesses to kill mutants without any further executable runs.
type witness struct {
	db     *sqldb.Database
	appRes *sqldb.Result
}

// compareOn runs both the application and Q_E on db and compares the
// results.
func (s *Session) compareOn(ext *Extraction, db *sqldb.Database, label string) error {
	_, err := s.compareOnResult(ext, db, label)
	return err
}

// compareOnResult is compareOn returning the application's (raw)
// result so callers can reuse the instance as a mutant-killing
// witness without rerunning E.
func (s *Session) compareOnResult(ext *Extraction, db *sqldb.Database, label string) (*sqldb.Result, error) {
	// No index advice here: this instance serves exactly two
	// executions (the application and Q_E), which cannot amortize an
	// index build. Instances that go on to replay the mutant
	// catalogue are advised by checkBounded instead.
	appRes, appErr := s.run(nil, db)
	qRes, qErr := s.executeStmt(ext.Query, db)
	if appErr != nil {
		return nil, fmt.Errorf("checker instance %q: application failed: %w", label, appErr)
	}
	if qErr != nil {
		return nil, fmt.Errorf("checker instance %q: extracted query failed: %w", label, qErr)
	}
	// Normalize the "null result" convention: an ungrouped aggregate
	// over empty input is one all-default row in SQL but an empty
	// result to the paper's framework (and to imperative
	// applications); both sides compare as empty.
	raw := appRes
	appRes = normalizeNull(appRes)
	qRes = normalizeNull(qRes)
	if !appRes.EqualUnordered(qRes) {
		return nil, fmt.Errorf("checker instance %q: results differ (%d vs %d rows)",
			label, appRes.RowCount(), qRes.RowCount())
	}
	if len(ext.OrderBy) > 0 && !OrderedEquivalent(appRes, qRes, ext.OrderBy) {
		return nil, fmt.Errorf("checker instance %q: order-key sequences differ (app checksum %x, query checksum %x)",
			label, appRes.Checksum(), qRes.Checksum())
	}
	return raw, nil
}

// normalizeNull maps unpopulated results (empty, or the null row of
// an ungrouped aggregate over empty input) to an empty result.
func normalizeNull(r *sqldb.Result) *sqldb.Result {
	if r.Populated() {
		return r
	}
	return &sqldb.Result{Columns: r.Columns}
}

// OrderedEquivalent reports whether two results agree as multisets
// AND position-by-position on the ordered output columns. Rows tied
// on every order key may legally appear in any relative order (the
// tie-break is plan-dependent even on real engines), so only the key
// columns are compared positionally.
func OrderedEquivalent(a, b *sqldb.Result, keys []OrderItem) bool {
	if a.RowCount() != b.RowCount() {
		return false
	}
	if !a.EqualUnordered(b) {
		return false
	}
	for i := range a.Rows {
		for _, k := range keys {
			if k.OutputIndex >= len(a.Rows[i]) || k.OutputIndex >= len(b.Rows[i]) {
				return false
			}
			if !sqldb.ApproxEqual(a.Rows[i][k.OutputIndex], b.Rows[i][k.OutputIndex]) {
				return false
			}
		}
	}
	return true
}
