package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"unmasque/internal/app"
	"unmasque/internal/obs"
	"unmasque/internal/sqldb"
)

// This file implements the probe scheduler, the executable-run
// memoization cache, and the observation funnel that feeds the
// obs.Ledger / obs.Metrics hooks.
//
// Scheduler: pipeline modules whose probes are mutually independent —
// from-clause rename probes (one per candidate table), filter
// extraction (one search per column), projection dependency and
// coefficient probes (one per mutation unit / grid corner) — fan out
// over a bounded worker pool of Config.Workers goroutines. Every
// probe builds its own database clone, so workers never share mutable
// state; the remaining Session fields read during a fan-out (silo,
// schemas, extracted filters) are frozen for its duration. Results
// are collected positionally and folded back in the sequential probe
// order, so the extracted SQL text is byte-identical for every worker
// count.
//
// Cache: completed executions of E are memoized under a content
// fingerprint of the probe database (sqldb.Fingerprint). Probes on
// content-identical instances — re-probes of a binary-search bound,
// the projection baseline re-run of untouched D_1, symmetric mutation
// corners — skip E.Run entirely. Only databases small enough that
// fingerprinting is far cheaper than execution are eligible
// (Config.CacheMaxRows); timeouts are never cached.
//
// The cache is single-flight: concurrent probes on the same
// fingerprint elect one leader that runs E while the rest wait on the
// flight and reuse its outcome. Beyond avoiding duplicate work, this
// makes the hit/miss *multiset* — and therefore the canonical probe
// ledger — identical for every worker count: each distinct
// fingerprint produces exactly one miss and k hits no matter how its
// k+1 probes interleaved (which probe was the leader is a volatile,
// stripped detail).

// probeCtx identifies one scheduled probe while it executes: which
// pool worker is running it, its fan-out index, and its span in the
// trace tree. Sequential probe sites (the minimizer's dependent
// halvings, binary-search steps, baseline runs) pass a nil probeCtx,
// which reads as worker 0 / index 0 / no span.
type probeCtx struct {
	worker int // 0 = main goroutine, 1..W = pool worker
	index  int // fan-out index within the phase
	span   *obs.Span
}

func (pc *probeCtx) workerID() int {
	if pc == nil {
		return 0
	}
	return pc.worker
}

func (pc *probeCtx) probeIndex() int {
	if pc == nil {
		return 0
	}
	return pc.index
}

// parallelFor runs fn(0..n-1) over the session's worker pool and
// returns the error of the lowest failing index (the same error the
// sequential loop would have surfaced first, keeping failure modes
// deterministic). With one worker — or a single item — it degenerates
// to the plain sequential loop. Each iteration receives a probeCtx
// carrying its worker id, its index and a per-probe trace span.
func (s *Session) parallelFor(n int, fn func(pc *probeCtx, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := s.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := s.probeStep(0, i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	s.parallelProbes.Add(int64(n))
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		worker := w + 1
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = s.probeStep(worker, i, fn)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// probeStep wraps one fan-out iteration in its probe span. The span's
// sibling index is the fan-out index, not arrival order, so the
// exported tree is deterministic for every worker count.
//
// Cancellation is observed here, between probes: a worker about to
// start an iteration after the session context died returns ctx.Err()
// without running the probe (and without opening a span — an aborted
// fan-out must not leave phantom probe children in the trace). The
// lowest-index-error rule of parallelFor then surfaces the context
// error exactly as a sequential loop would have: probes already
// completed keep their outcomes, the first unstarted index carries
// the cancellation.
func (s *Session) probeStep(worker, i int, fn func(pc *probeCtx, i int) error) error {
	if err := s.ctx.Err(); err != nil {
		return err
	}
	pc := &probeCtx{worker: worker, index: i, span: s.phaseSpan.Child("probe", i)}
	err := fn(pc, i)
	pc.span.EndErr(err)
	return err
}

// runCache memoizes completed application executions by database
// fingerprint. It is shared by all workers of one Session and safe
// for concurrent use.
type runCache struct {
	mu       sync.Mutex
	entries  map[sqldb.Fingerprint]*cacheEntry
	hits     atomic.Int64
	misses   atomic.Int64
	diskHits atomic.Int64
}

// cacheEntry is one execution flight. The reserving leader runs E and
// then completes (ok=true, outcome recorded) or aborts (entry removed
// so a later probe can retry — timeouts are never cached); done is
// closed either way, releasing any waiters. Application-level errors
// are deterministic in the database content (a missing table stays
// missing), so they are cached alongside results.
type cacheEntry struct {
	done chan struct{}
	ok   bool
	res  *sqldb.Result
	err  error
}

func newRunCache() *runCache {
	return &runCache{entries: map[sqldb.Fingerprint]*cacheEntry{}}
}

// reserve returns the flight for fp, creating it (leader=true) when
// none is in progress or recorded. A non-leader must wait on done and
// check ok: a completed flight's outcome can be reused, an aborted one
// means reserve again.
func (c *runCache) reserve(fp sqldb.Fingerprint) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[fp]; ok {
		return e, false
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[fp] = e
	return e, true
}

// complete records the leader's outcome and releases the waiters.
// With retain=false the flight is withdrawn after completion: waiters
// already holding the entry still read its outcome, but the result is
// not kept resident — instances above CacheMaxRows are only memoized
// in the persistent tier (disk, not RAM), and a later probe on the
// same fingerprint re-reserves and reads the disk tier instead.
func (c *runCache) complete(fp sqldb.Fingerprint, e *cacheEntry, res *sqldb.Result, err error, retain bool) {
	e.res, e.err, e.ok = res, err, true
	if !retain {
		c.mu.Lock()
		delete(c.entries, fp)
		c.mu.Unlock()
	}
	close(e.done)
}

// abort withdraws the flight (timeout: not a cacheable outcome) so the
// next probe on the same fingerprint starts fresh.
func (c *runCache) abort(fp sqldb.Fingerprint, e *cacheEntry) {
	c.mu.Lock()
	delete(c.entries, fp)
	c.mu.Unlock()
	close(e.done)
}

// runMemoized executes E against db with the general execution
// deadline, serving content-identical probes from the two-tier cache:
// the in-session single-flight map first, then (when a shared
// persistent cache is attached) the durable cross-job tier. Large
// databases bypass each tier independently — above Config.CacheMaxRows
// results are not retained in RAM, above Config.DiskCacheMaxRows the
// persistent tier is not consulted either (hashing would rival
// execution cost). Every path records exactly one ledger event: one
// per completed E invocation, one per in-memory hit, one per
// persistent-tier hit — which is what makes the ledger's event count
// equal Stats.AppInvocations + Stats.CacheHits + Stats.DiskCacheHits.
//
// Determinism note: for instances within CacheMaxRows the flight is
// retained, so the outcome multiset per fingerprint (one miss-or-disk
// plus k hits) is identical for every worker count, exactly as
// before. For larger instances served only by the persistent tier the
// split between "hit" (waited on a flight) and "disk" (re-read the
// persistent tier) is timing-dependent; the executed count is not.
func (s *Session) runMemoized(pc *probeCtx, db *sqldb.Database) (*sqldb.Result, error) {
	if s.cache == nil {
		return s.runObserved(pc, db, obs.CacheOff, "")
	}
	rows := db.TotalRows()
	memOK := rows <= s.cfg.CacheMaxRows
	diskOK := s.shared != nil && rows <= s.cfg.DiskCacheMaxRows
	if !memOK && !diskOK {
		return s.runObserved(pc, db, obs.CacheBypass, "")
	}
	fp := db.Fingerprint()
	for {
		e, leader := s.cache.reserve(fp)
		if !leader {
			start := s.cfg.Clock()
			<-e.done
			if !e.ok {
				continue // flight aborted (timeout); retry as leader
			}
			s.cache.hits.Add(1)
			s.observe(pc, obs.ProbeEvent{Kind: obs.KindExec, FP: fp.Hex(), Cache: obs.CacheHit},
				e.res, e.err, s.cfg.Clock().Sub(start))
			return e.res.Clone(), e.err
		}
		if diskOK {
			start := s.cfg.Clock()
			if res, err, ok := s.shared.Get(fp); ok {
				s.cache.diskHits.Add(1)
				s.observe(pc, obs.ProbeEvent{Kind: obs.KindExec, FP: fp.Hex(), Cache: obs.CacheDisk},
					res, err, s.cfg.Clock().Sub(start))
				s.cache.complete(fp, e, res.Clone(), err, memOK)
				return res, err
			}
		}
		s.cache.misses.Add(1)
		res, err := s.runObserved(pc, db, obs.CacheMiss, fp.Hex())
		if errors.Is(err, app.ErrTimeout) || isCtxErr(err) {
			// Neither outcome describes the database content: a timeout
			// may succeed on retry, a cancelled run belongs to a dying
			// extraction. Withdraw the flight instead of caching it.
			s.cache.abort(fp, e)
			return res, err
		}
		if diskOK {
			s.shared.Put(fp, res, err)
		}
		s.cache.complete(fp, e, res.Clone(), err, memOK)
		return res, err
	}
}

// runObserved executes E once under the general deadline (and the
// session context) and records the invocation.
func (s *Session) runObserved(pc *probeCtx, db *sqldb.Database, cache, fp string) (*sqldb.Result, error) {
	start := s.cfg.Clock()
	res, err := app.RunCtx(s.ctx, s.exe, db, s.cfg.ExecTimeout)
	s.observe(pc, obs.ProbeEvent{Kind: obs.KindExec, FP: fp, Cache: cache}, res, err, s.cfg.Clock().Sub(start))
	return res, err
}

// isCtxErr reports whether err carries a context cancellation or
// deadline expiry — the session-context outcomes that must abort the
// pipeline rather than be folded into probe observations.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// observe fills the outcome, attribution and timing fields of one
// probe event and hands it to the session's ledger and metrics. The
// caller provides the probe identity (kind, table, fingerprint, cache
// outcome); phase attribution comes from the session's current phase,
// which only changes between fan-outs.
func (s *Session) observe(pc *probeCtx, ev obs.ProbeEvent, res *sqldb.Result, err error, dur time.Duration) {
	if s.ledger == nil && s.metrics == nil {
		return
	}
	ev.Phase = s.phaseName
	ev.PhaseSeq = s.phaseSeq
	if err != nil {
		ev.Err = err.Error()
	} else {
		ev.Digest = res.Digest().Hex()
		ev.Rows = res.RowCount()
	}
	ev.Worker = pc.workerID()
	ev.Probe = pc.probeIndex()
	ev.DurUS = dur.Microseconds()
	s.ledger.Record(ev)

	s.metrics.Counter("probes_total").Add(1)
	s.metrics.Counter("cache_" + ev.Cache).Add(1)
	s.metrics.Counter("phase_probes." + ev.Phase).Add(1)
	if ev.Cache != obs.CacheHit && ev.Cache != obs.CacheDisk {
		s.metrics.Counter("app_invocations").Add(1)
		s.metrics.Histogram("probe_latency_ms").Observe(float64(dur.Microseconds()) / 1e3)
	}
	if err != nil {
		s.metrics.Counter("probe_errors").Add(1)
	}
}
