package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"unmasque/internal/app"
	"unmasque/internal/sqldb"
)

// This file implements the probe scheduler and the executable-run
// memoization cache.
//
// Scheduler: pipeline modules whose probes are mutually independent —
// from-clause rename probes (one per candidate table), filter
// extraction (one search per column), projection dependency and
// coefficient probes (one per mutation unit / grid corner) — fan out
// over a bounded worker pool of Config.Workers goroutines. Every
// probe builds its own database clone, so workers never share mutable
// state; the remaining Session fields read during a fan-out (silo,
// schemas, extracted filters) are frozen for its duration. Results
// are collected positionally and folded back in the sequential probe
// order, so the extracted SQL text is byte-identical for every worker
// count.
//
// Cache: completed executions of E are memoized under a content
// fingerprint of the probe database (sqldb.Fingerprint). Probes on
// content-identical instances — re-probes of a binary-search bound,
// the projection baseline re-run of untouched D_1, symmetric mutation
// corners — skip E.Run entirely. Only databases small enough that
// fingerprinting is far cheaper than execution are eligible
// (Config.CacheMaxRows); timeouts are never cached.

// parallelFor runs fn(0..n-1) over the session's worker pool and
// returns the error of the lowest failing index (the same error the
// sequential loop would have surfaced first, keeping failure modes
// deterministic). With one worker — or a single item — it degenerates
// to the plain sequential loop.
func (s *Session) parallelFor(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := s.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	s.parallelProbes.Add(int64(n))
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runCache memoizes completed application executions by database
// fingerprint. It is shared by all workers of one Session and safe
// for concurrent use.
type runCache struct {
	mu      sync.Mutex
	entries map[sqldb.Fingerprint]cachedRun
	hits    atomic.Int64
	misses  atomic.Int64
}

// cachedRun is one recorded execution outcome. Application-level
// errors are deterministic in the database content (a missing table
// stays missing), so they are cached alongside results; timeouts are
// not recorded at all.
type cachedRun struct {
	res *sqldb.Result
	err error
}

func newRunCache() *runCache {
	return &runCache{entries: map[sqldb.Fingerprint]cachedRun{}}
}

// lookup returns the recorded outcome for fp, cloning the result so
// the caller can never alias another probe's rows.
func (c *runCache) lookup(fp sqldb.Fingerprint) (*sqldb.Result, error, bool) {
	c.mu.Lock()
	e, ok := c.entries[fp]
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, nil, false
	}
	c.hits.Add(1)
	return e.res.Clone(), e.err, true
}

// store records an execution outcome. Concurrent duplicate misses may
// both store; the outcomes are identical by construction, so either
// write is fine.
func (c *runCache) store(fp sqldb.Fingerprint, res *sqldb.Result, err error) {
	c.mu.Lock()
	c.entries[fp] = cachedRun{res: res, err: err}
	c.mu.Unlock()
}

// runMemoized executes E against db with the general execution
// deadline, serving content-identical probes from the cache. Large
// databases (above Config.CacheMaxRows) bypass the cache: hashing
// them would rival execution cost, and the minimizer's shrinking
// instances rarely repeat anyway.
func (s *Session) runMemoized(db *sqldb.Database) (*sqldb.Result, error) {
	if s.cache == nil || db.TotalRows() > s.cfg.CacheMaxRows {
		return app.RunWithTimeout(s.exe, db, s.cfg.ExecTimeout)
	}
	fp := db.Fingerprint()
	if res, err, ok := s.cache.lookup(fp); ok {
		return res, err
	}
	res, err := app.RunWithTimeout(s.exe, db, s.cfg.ExecTimeout)
	if errors.Is(err, app.ErrTimeout) {
		return res, err
	}
	s.cache.store(fp, res.Clone(), err)
	return res, err
}
