package core_test

import (
	"testing"

	"unmasque/internal/core"
)

// TestBoundedCheckRecordsProofBound asserts that an extraction run
// with Config.BoundedCheck set records the proof bound and the mutant
// accounting in Stats, and that the mutant catalogue is fully
// classified (every mutant is killed, proven equivalent, or honestly
// reported unresolved).
func TestBoundedCheckRecordsProofBound(t *testing.T) {
	db := warehouseDB(t, 6, 30, 90)
	sql := "select o_orderkey, o_totalprice from orders where o_totalprice >= 1000 and o_shippriority = 1"

	cfg := defaultCfg()
	cfg.BoundedCheck = 2
	ext := extractHidden(t, db, sql, cfg)

	st := ext.Stats
	if st.BoundedBound != 2 {
		t.Fatalf("Stats.BoundedBound = %d, want 2", st.BoundedBound)
	}
	if st.MutantsTotal == 0 {
		t.Fatalf("no mutants generated for %q", sql)
	}
	classified := st.MutantsKilledStatic + st.MutantsKilledWitness +
		st.MutantsProvenEquivalent + st.MutantsUnresolved
	if classified != st.MutantsTotal {
		t.Fatalf("mutant accounting does not add up: %d classified of %d total (static=%d witness=%d equivalent=%d unresolved=%d)",
			classified, st.MutantsTotal, st.MutantsKilledStatic, st.MutantsKilledWitness,
			st.MutantsProvenEquivalent, st.MutantsUnresolved)
	}
	if st.MutantsKilledStatic+st.MutantsKilledWitness == 0 {
		t.Fatalf("no mutants killed at all for %q", sql)
	}
}

// TestBoundedCheckPrunesInvocations asserts the point of the pruned
// checker: the same extraction needs fewer executable invocations with
// BoundedCheck on than with the classical instance suite, because
// symbolically settled mutants never reach the application.
func TestBoundedCheckPrunesInvocations(t *testing.T) {
	db := warehouseDB(t, 6, 30, 90)
	sql := "select o_orderkey, o_totalprice from orders where o_totalprice >= 1000 and o_shippriority = 1"

	classic := extractHidden(t, db, sql, defaultCfg())

	cfg := defaultCfg()
	cfg.BoundedCheck = 2
	bounded := extractHidden(t, db, sql, cfg)

	if bounded.SQL != classic.SQL {
		t.Fatalf("bounded checking changed the extraction:\nclassic: %s\nbounded: %s", classic.SQL, bounded.SQL)
	}
	if bounded.Stats.AppInvocations >= classic.Stats.AppInvocations {
		t.Fatalf("bounded checker did not prune invocations: classic=%d bounded=%d",
			classic.Stats.AppInvocations, bounded.Stats.AppInvocations)
	}
	if classic.Stats.BoundedBound != 0 {
		t.Fatalf("classic run unexpectedly recorded a proof bound: %d", classic.Stats.BoundedBound)
	}
}

// TestBoundedCheckDeterministic asserts the bounded checker's Stats
// are identical across runs and worker counts (the enumeration and the
// mutant walk are sequential and seeded; nothing depends on wall
// clock or scheduling).
func TestBoundedCheckDeterministic(t *testing.T) {
	db := warehouseDB(t, 6, 30, 90)
	sql := "select o_orderkey, o_totalprice from orders where o_totalprice >= 1000 order by o_totalprice desc"

	var base core.Stats
	for i, workers := range []int{1, 4} {
		cfg := defaultCfg()
		cfg.BoundedCheck = 2
		cfg.Workers = workers
		ext := extractHidden(t, db, sql, cfg)
		st := ext.Stats
		if i == 0 {
			base = st
			continue
		}
		if st.BoundedBound != base.BoundedBound ||
			st.MutantsTotal != base.MutantsTotal ||
			st.MutantsKilledStatic != base.MutantsKilledStatic ||
			st.MutantsKilledWitness != base.MutantsKilledWitness ||
			st.MutantsProvenEquivalent != base.MutantsProvenEquivalent ||
			st.MutantsUnresolved != base.MutantsUnresolved {
			t.Fatalf("bounded stats differ across worker counts:\nworkers=1: %+v\nworkers=%d: %+v", base, workers, st)
		}
	}
}
