package core

import (
	"fmt"

	"unmasque/internal/sqldb"
)

// dgen describes one synthetic database instance of the generation
// pipeline (Section 5): per-table row counts plus explicit per-column
// value sequences. Unspecified columns receive defaults that keep the
// instance inside the s-value space: join-graph columns get the key
// value 1 in every row (so every join matches), and all other columns
// get their variant-0 s-value.
type dgen struct {
	rows map[string]int
	vals map[sqldb.ColRef][]sqldb.Value
}

// newDgen starts an instance description; every extracted table
// defaults to one row.
func (s *Session) newDgen() *dgen {
	return &dgen{rows: map[string]int{}, vals: map[sqldb.ColRef][]sqldb.Value{}}
}

// setRows fixes the row count of one table.
func (d *dgen) setRows(table string, n int) { d.rows[table] = n }

// set assigns the full value sequence of one column (must match the
// table's row count at materialization).
func (d *dgen) set(col sqldb.ColRef, vals ...sqldb.Value) {
	d.vals[col] = vals
}

// setConst assigns the same value to every row of the column.
func (d *dgen) setConst(col sqldb.ColRef, v sqldb.Value, n int) {
	vals := make([]sqldb.Value, n)
	for i := range vals {
		vals[i] = v
	}
	d.vals[col] = vals
}

// setComponentKeys assigns a key-value sequence to every column of a
// join component, table row counts permitting: a table whose row
// count equals len(keys) receives the full sequence; a table with
// fewer rows receives the prefix. This keeps joins along the
// component consistent by construction.
func (d *dgen) setComponentKeys(comp *joinComponent, keys []int64, rowsOf func(string) int) {
	for _, col := range comp.cols {
		n := rowsOf(col.Table)
		vals := make([]sqldb.Value, n)
		for i := 0; i < n; i++ {
			k := keys[i%len(keys)]
			if i < len(keys) {
				k = keys[i]
			}
			vals[i] = sqldb.NewInt(k)
		}
		d.vals[col] = vals
	}
}

// materialize builds the database instance: the schema of the silo
// with the described rows in the extracted tables (other tables stay
// empty — they are not referenced by the query).
func (s *Session) materialize(d *dgen) (*sqldb.Database, error) {
	db := s.silo.CloneSchema()
	for _, t := range s.tables {
		n := d.rows[t]
		if n == 0 {
			n = 1
		}
		tbl, err := db.Table(t)
		if err != nil {
			return nil, err
		}
		schema := s.schemas[t]
		for i := 0; i < n; i++ {
			row := make([]sqldb.Value, len(schema.Columns))
			for ci, cdef := range schema.Columns {
				col := sqldb.ColRef{Table: t, Column: cdef.Name}
				if vals, ok := d.vals[col]; ok {
					if i >= len(vals) {
						return nil, fmt.Errorf("dgen: column %s has %d values for %d rows", col, len(vals), n)
					}
					row[ci] = vals[i]
					continue
				}
				if s.inJoinGraph(col) {
					row[ci] = sqldb.NewInt(1)
					continue
				}
				v, err := s.defaultValue(col)
				if err != nil {
					return nil, fmt.Errorf("dgen: %w", err)
				}
				row[ci] = v
			}
			if err := tbl.Insert(row...); err != nil {
				return nil, fmt.Errorf("dgen: %w", err)
			}
		}
	}
	return db, nil
}

// rowsOfFn adapts a dgen's row map into the lookup setComponentKeys
// wants.
func (d *dgen) rowsOfFn() func(string) int {
	return func(t string) int {
		if n, ok := d.rows[t]; ok && n > 0 {
			return n
		}
		return 1
	}
}
