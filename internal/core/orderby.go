package core

import (
	"fmt"

	"unmasque/internal/sqldb"
)

// extractOrderBy recovers the ordered result columns (Section 5.3).
// Keys are discovered left to right: at each position a candidate
// output column is tested with a pair of two-row-per-table instances,
// D_same (every free output ascends together) and D_rev (the
// candidate alone descends). Outputs already ordered (S_1) are tied
// via common argument values, so the candidate's consistency across
// both results exposes whether it drives the sort at this position,
// and in which direction.
func (s *Session) extractOrderBy() error {
	if s.ungroupedAgg && len(s.groupBy) == 0 {
		return nil // single-row results carry no observable order
	}
	// Candidates: every output whose value we can steer. Count-style
	// outputs are included via group-size steering (the paper defers
	// them to its technical report); constants cannot order anything.
	var candidates []int
	for oi, p := range s.projections {
		if p.Constant {
			continue
		}
		candidates = append(candidates, oi)
	}
	inS1 := map[int]bool{}
	for len(s.orderBy) < len(candidates) {
		if s.groupByCovered(inS1) {
			break // remaining keys cannot reorder distinct groups
		}
		found := false
		for _, oi := range candidates {
			if inS1[oi] {
				continue
			}
			desc, ok, err := s.orderProbe(oi, inS1)
			if err != nil {
				return fmt.Errorf("output %q: %w", s.projections[oi].OutputName, err)
			}
			if ok {
				s.orderBy = append(s.orderBy, OrderItem{
					OutputIndex: oi,
					OutputName:  s.projections[oi].OutputName,
					Desc:        desc,
				})
				inS1[oi] = true
				found = true
				break
			}
		}
		if !found {
			break
		}
	}
	return nil
}

// groupByCovered reports whether every group-by column is already
// determined by the ordered outputs (functional coverage), making
// further order keys unobservable and semantically redundant.
func (s *Session) groupByCovered(inS1 map[int]bool) bool {
	if len(s.groupBy) == 0 {
		return false
	}
	covered := map[sqldb.ColRef]bool{}
	for oi := range inS1 {
		p := s.projections[oi]
		if !p.IsIdentity() {
			continue // only identity outputs pin a grouping column
		}
		d := p.Deps[0]
		covered[d] = true
		if comp := s.componentOf(d); comp != nil {
			for _, c := range comp.cols {
				covered[c] = true
			}
		}
	}
	for _, g := range s.groupBy {
		if !covered[g] {
			return false
		}
	}
	return true
}

// orderProbe runs the D_same / D_rev pair for one candidate.
// Value-carrying outputs are steered through their argument columns;
// count-style outputs are steered through group sizes.
func (s *Session) orderProbe(candidate int, inS1 map[int]bool) (desc, isKey bool, err error) {
	build := s.buildOrderInstance
	if p := s.projections[candidate]; p.CountStar || p.Agg == sqldb.AggCount {
		if len(s.groupBy) == 0 {
			return false, false, nil // ungrouped count: single row, no order
		}
		build = s.buildCountOrderInstance
	}
	same, err := build(candidate, inS1, false)
	if err != nil {
		return false, false, err
	}
	if same == nil {
		return false, false, nil // construction not applicable
	}
	rev, err := build(candidate, inS1, true)
	if err != nil {
		return false, false, err
	}
	resSame, err := s.mustResult(nil, same)
	if err != nil {
		return false, false, err
	}
	resRev, err := s.mustResult(nil, rev)
	if err != nil {
		return false, false, err
	}
	if !resSame.Populated() || !resRev.Populated() {
		return false, false, nil
	}
	dirSame := columnDirection(resSame.Column(candidate))
	dirRev := columnDirection(resRev.Column(candidate))
	if dirSame == 0 || dirSame != dirRev {
		return false, false, nil
	}
	return dirSame < 0, true, nil
}

// columnDirection classifies a value sequence: +1 non-decreasing, -1
// non-increasing (each with at least one strict step), 0 otherwise.
func columnDirection(vals []sqldb.Value) int {
	up, down := false, false
	for i := 1; i < len(vals); i++ {
		c, err := sqldb.Compare(vals[i-1], vals[i])
		if err != nil {
			return 0
		}
		if c < 0 {
			up = true
		}
		if c > 0 {
			down = true
		}
	}
	switch {
	case up && !down:
		return 1
	case down && !up:
		return -1
	default:
		return 0
	}
}

// buildOrderInstance constructs the two-row-per-table instance. Every
// join component tied to an S_1 output carries the constant key 1;
// all other components carry keys (1,2). S_1 argument columns take a
// common value; every other output's arguments take a pair of values
// making the output ascend from row 1 to row 2 — except the
// candidate's in the reversed instance.
func (s *Session) buildOrderInstance(candidate int, inS1 map[int]bool, reverse bool) (*sqldb.Database, error) {
	d := s.newDgen()
	for _, t := range s.tables {
		d.setRows(t, 2)
	}

	// Classify join components: pinned when any S_1 output depends on
	// them; flipped when the candidate output is key-driven and this
	// is the reversed instance (component keys are the only way to
	// steer such outputs).
	pinnedComp := map[int]bool{}
	for oi := range inS1 {
		for _, dep := range s.projections[oi].Deps {
			if ci, ok := s.compOf[dep]; ok {
				pinnedComp[ci] = true
			}
		}
	}
	flipComp := -1
	if reverse {
		for _, dep := range s.projections[candidate].Deps {
			if ci, ok := s.compOf[dep]; ok && !pinnedComp[ci] {
				flipComp = ci
				break
			}
		}
	}
	for ci := range s.components {
		keys := []int64{1, 2}
		switch {
		case pinnedComp[ci]:
			keys = []int64{1, 1}
		case ci == flipComp:
			keys = []int64{2, 1}
		}
		d.setComponentKeys(&s.components[ci], keys, d.rowsOfFn())
	}

	handled := map[sqldb.ColRef]bool{}
	for _, comp := range s.components {
		for _, c := range comp.cols {
			handled[c] = true
		}
	}

	// Tie the S_1 outputs' arguments first (they must not vary), then
	// steer the candidate (so a dependency it shares with another
	// output is flipped under the candidate's control), then the
	// remaining outputs.
	for oi, p := range s.projections {
		if p.Constant || p.CountStar || !inS1[oi] {
			continue
		}
		for _, dep := range p.Deps {
			if handled[dep] {
				continue
			}
			v, err := s.sValue(dep, 0)
			if err != nil {
				return nil, err
			}
			d.setConst(dep, v, 2)
			handled[dep] = true
		}
	}
	order := append([]int{candidate}, otherIndices(len(s.projections), candidate)...)
	for _, oi := range order {
		p := s.projections[oi]
		if p.Constant || p.CountStar || inS1[oi] {
			continue
		}
		if err := s.steerOutput(d, &p, handled, reverse && oi == candidate); err != nil {
			return nil, err
		}
	}

	// Remaining free columns: a pair of distinct values keeps unseen
	// grouping columns separating the two rows.
	for _, col := range s.allColumns() {
		if handled[col] || s.inJoinGraph(col) {
			continue
		}
		if _, ok := d.vals[col]; ok {
			continue
		}
		v1, v2, ok, err := s.sValuePair(col)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // pinned: default constant applies
		}
		if c, cerr := sqldb.Compare(v1, v2); cerr == nil && c > 0 {
			v1, v2 = v2, v1
		}
		d.set(col, v1, v2)
	}
	return s.materialize(d)
}

// buildCountOrderInstance steers a count-type candidate through
// group sizes: three input rows form two groups of sizes (1,2) in
// D_same and (2,1) in D_rev, so the count column ascends in one
// instance and descends in the other unless the query genuinely sorts
// by it. The group split is driven by one free grouping column (or a
// grouped join component, in the Case-2 shape); other outputs follow
// the same two-group alignment. Returns nil when no suitable driver
// exists (all grouping columns pinned).
func (s *Session) buildCountOrderInstance(candidate int, inS1 map[int]bool, reverse bool) (*sqldb.Database, error) {
	// Pick the group-split driver: prefer a non-key grouping column.
	var driver sqldb.ColRef
	haveDriver := false
	for _, g := range s.groupBy {
		if !s.inJoinGraph(g) && !s.eqFiltered(g) {
			if _, _, ok, err := s.sValuePair(g); err == nil && ok {
				driver, haveDriver = g, true
				break
			}
		}
	}
	var comp *joinComponent
	if !haveDriver {
		for _, g := range s.groupBy {
			if c := s.componentOf(g); c != nil {
				comp = c
				break
			}
		}
		if comp == nil {
			return nil, nil
		}
	}

	d := s.newDgen()
	sizes := []int{1, 2} // group sizes in D_same
	if reverse {
		sizes = []int{2, 1}
	}
	var driverTable string
	if haveDriver {
		driverTable = driver.Table
		d.setRows(driverTable, 3)
		v1, v2, _, err := s.sValuePair(driver)
		if err != nil {
			return nil, err
		}
		vals := make([]sqldb.Value, 0, 3)
		for g, size := range sizes {
			v := v1
			if g == 1 {
				v = v2
			}
			for i := 0; i < size; i++ {
				vals = append(vals, v)
			}
		}
		d.set(driver, vals...)
	} else {
		// Case-2 shape: the component's first table carries the 3-row
		// size split via its key; connected tables carry both keys.
		driverTable = comp.cols[0].Table
		d.setRows(driverTable, 3)
		for t := range comp.tablesOf() {
			if t != driverTable {
				d.setRows(t, 2)
			}
		}
		keyPattern := []int64{1, 2, 2}
		if reverse {
			keyPattern = []int64{1, 1, 2}
		}
		for _, c := range comp.cols {
			if c.Table == driverTable {
				d.set(c, sqldb.NewInt(keyPattern[0]), sqldb.NewInt(keyPattern[1]), sqldb.NewInt(keyPattern[2]))
			} else {
				d.set(c, sqldb.NewInt(1), sqldb.NewInt(2))
			}
		}
	}

	// Align every other varying output with the two-group split so
	// any true value key sorts both instances consistently: group 1
	// gets the smaller value.
	handled := map[sqldb.ColRef]bool{}
	if haveDriver {
		handled[driver] = true
	} else {
		for _, c := range comp.cols {
			handled[c] = true
		}
	}
	rowsOf := d.rowsOfFn()
	for oi, p := range s.projections {
		if oi == candidate || p.Constant || p.CountStar || p.Agg == sqldb.AggCount {
			continue
		}
		for _, dep := range p.Deps {
			if handled[dep] || s.inJoinGraph(dep) {
				continue
			}
			n := rowsOf(dep.Table)
			if inS1[oi] {
				v, err := s.sValue(dep, 0)
				if err != nil {
					return nil, err
				}
				d.setConst(dep, v, n)
				handled[dep] = true
				continue
			}
			v1, v2, ok, err := s.sValuePair(dep)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			if c, cerr := sqldb.Compare(v1, v2); cerr == nil && c > 0 {
				v1, v2 = v2, v1
			}
			vals := make([]sqldb.Value, n)
			if n == 3 && dep.Table == driverTable {
				for g, size := range sizes {
					v := v1
					if g == 1 {
						v = v2
					}
					idx := 0
					if g == 1 {
						idx = sizes[0]
					}
					for i := 0; i < size; i++ {
						vals[idx+i] = v
					}
				}
			} else {
				for i := range vals {
					if i == 0 {
						vals[i] = v1
					} else {
						vals[i] = v2
					}
				}
			}
			d.set(dep, vals...)
			handled[dep] = true
		}
	}
	return s.materialize(d)
}

// otherIndices lists 0..n-1 without skip.
func otherIndices(n, skip int) []int {
	out := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != skip {
			out = append(out, i)
		}
	}
	return out
}

// steerOutput assigns the output's argument columns so its value
// ascends row1→row2 (or descends when flip is set). Only the first
// unpinned, un-handled dependency varies; the rest stay constant.
func (s *Session) steerOutput(d *dgen, p *Projection, handled map[sqldb.ColRef]bool, flip bool) error {
	varyIdx := -1
	for i, dep := range p.Deps {
		if handled[dep] {
			continue
		}
		if _, _, ok, err := s.sValuePair(dep); err == nil && ok {
			varyIdx = i
			break
		}
	}
	if varyIdx < 0 {
		// All arguments pinned or key-driven: the output follows the
		// component keys (identity over a key) or stays tied.
		for _, dep := range p.Deps {
			if handled[dep] {
				continue
			}
			v, err := s.sValue(dep, 0)
			if err != nil {
				return err
			}
			d.setConst(dep, v, 2)
			handled[dep] = true
		}
		return nil
	}
	vcol := p.Deps[varyIdx]
	v1, v2, _, err := s.sValuePair(vcol)
	if err != nil {
		return err
	}
	// Pin the other deps and compute the induced output direction.
	others := make([]sqldb.Value, len(p.Deps))
	for i, dep := range p.Deps {
		if i == varyIdx {
			continue
		}
		var v sqldb.Value
		if handled[dep] {
			v, err = s.componentProbeValue(d, dep)
		} else {
			v, err = s.sValue(dep, 0)
			if err == nil {
				d.setConst(dep, v, 2)
				handled[dep] = true
			}
		}
		if err != nil {
			return err
		}
		others[i] = v
	}
	ascFirst := v1
	ascSecond := v2
	if o1, o2, ok := pairOutputs(p, varyIdx, others, v1, v2); ok {
		if o1 > o2 {
			ascFirst, ascSecond = v2, v1
		}
	} else if c, cerr := sqldb.Compare(v1, v2); cerr == nil && c > 0 {
		ascFirst, ascSecond = v2, v1
	}
	if flip {
		ascFirst, ascSecond = ascSecond, ascFirst
	}
	d.set(vcol, ascFirst, ascSecond)
	handled[vcol] = true
	return nil
}

// componentProbeValue reports the value a handled (component) column
// already has in the instance's first row.
func (s *Session) componentProbeValue(d *dgen, col sqldb.ColRef) (sqldb.Value, error) {
	if vals, ok := d.vals[col]; ok && len(vals) > 0 {
		return vals[0], nil
	}
	return sqldb.NewInt(1), nil
}

// pairOutputs evaluates the function at the two candidate values of
// the varied argument; ok is false when any argument is non-numeric,
// in which case value ordering applies directly (identity functions
// on text/date are monotone).
func pairOutputs(p *Projection, varyIdx int, others []sqldb.Value, v1, v2 sqldb.Value) (float64, float64, bool) {
	if len(p.Coeffs) != 1<<len(p.Deps) {
		return 0, 0, false
	}
	if v1.Null || v2.Null || !v1.Typ.IsNumeric() || !v2.Typ.IsNumeric() {
		return 0, 0, false
	}
	xs := make([]float64, len(p.Deps))
	for i := range p.Deps {
		if i == varyIdx {
			continue
		}
		v := others[i]
		if v.Null || !v.Typ.IsNumeric() {
			return 0, 0, false
		}
		xs[i] = v.AsFloat()
	}
	xs[varyIdx] = v1.AsFloat()
	o1 := evalMultilinear(p.Coeffs, xs)
	xs[varyIdx] = v2.AsFloat()
	o2 := evalMultilinear(p.Coeffs, xs)
	return o1, o2, true
}
