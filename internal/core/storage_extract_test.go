package core_test

// storage_extract_test.go — pins the two contracts the disk tier owes
// the extraction pipeline: (1) an extraction over a disk-backed
// database is byte-identical to one over the in-memory original, and
// (2) a durable probe cache that survives a "restart" (close/reopen)
// lets a repeat extraction finish with zero application invocations,
// with the ledger invariant len == invocations + memory hits + disk
// hits holding throughout.

import (
	"path/filepath"
	"testing"

	"unmasque/internal/core"
	"unmasque/internal/obs"
	"unmasque/internal/storage"
	"unmasque/internal/workloads/registry"
)

func TestDiskBackedExtractionIdentical(t *testing.T) {
	for _, appName := range []string{"tpch/Q6", "enki/posts_by_tag"} {
		t.Run(appName, func(t *testing.T) {
			exe, memDB, err := registry.Build(appName, 1)
			if err != nil {
				t.Fatal(err)
			}
			st, err := storage.Open(t.TempDir(), storage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if err := st.BulkLoad(memDB); err != nil {
				t.Fatal(err)
			}
			diskDB, err := st.OpenDatabase()
			if err != nil {
				t.Fatal(err)
			}

			cfg := core.DefaultConfig()
			cfg.Seed = 1
			extMem, err := core.Extract(exe, memDB, cfg)
			if err != nil {
				t.Fatal(err)
			}
			extDisk, err := core.Extract(exe, diskDB, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if extDisk.SQL != extMem.SQL {
				t.Fatalf("SQL diverges across tiers\ndisk:\n%s\nmem:\n%s", extDisk.SQL, extMem.SQL)
			}
			if extDisk.Stats.AppInvocations != extMem.Stats.AppInvocations {
				t.Fatalf("invocations diverge: disk=%d mem=%d",
					extDisk.Stats.AppInvocations, extMem.Stats.AppInvocations)
			}
		})
	}
}

func TestDurableCacheWarmRestart(t *testing.T) {
	const appName = "enki/posts_by_tag"
	cachePath := filepath.Join(t.TempDir(), "probecache.log")
	ns := storage.AppNamespace(appName, 1)

	run := func() (*core.Extraction, *obs.Ledger) {
		exe, db, err := registry.Build(appName, 1)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := storage.OpenProbeCache(cachePath)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := pc.Close(); err != nil {
				t.Fatal(err)
			}
		}()
		cfg := core.DefaultConfig()
		cfg.Seed = 1
		cfg.Ledger = obs.NewLedger()
		cfg.SharedCache = pc.Namespace(ns)
		ext, err := core.Extract(exe, db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ext, cfg.Ledger
	}

	cold, coldLedger := run()
	if cold.Stats.AppInvocations == 0 {
		t.Fatal("cold run reports zero app invocations")
	}
	warm, warmLedger := run()

	if warm.SQL != cold.SQL {
		t.Fatalf("SQL diverges across restarts\nwarm:\n%s\ncold:\n%s", warm.SQL, cold.SQL)
	}
	if warm.Stats.AppInvocations != 0 {
		t.Fatalf("warm run invoked the application %d times", warm.Stats.AppInvocations)
	}
	if warm.Stats.DiskCacheHits == 0 {
		t.Fatal("warm run reports zero disk hits")
	}
	if warm.Stats.CacheHitRate() != 1 {
		t.Fatalf("warm CacheHitRate = %v, want 1", warm.Stats.CacheHitRate())
	}

	// Ledger invariant: every cache-eligible probe is accounted to
	// exactly one of invocation / memory hit / disk hit.
	for name, pair := range map[string]struct {
		ext    *core.Extraction
		ledger *obs.Ledger
	}{"cold": {cold, coldLedger}, "warm": {warm, warmLedger}} {
		s := pair.ext.Stats
		if got, want := int64(pair.ledger.Len()), s.AppInvocations+s.CacheHits+s.DiskCacheHits; got != want {
			t.Fatalf("%s: ledger has %d events, stats account for %d (inv=%d mem=%d disk=%d)",
				name, got, want, s.AppInvocations, s.CacheHits, s.DiskCacheHits)
		}
	}
}
