package core

import (
	"fmt"

	"unmasque/internal/sqldb"
)

// minimize shrinks the silo to a minimal result-preserving database
// (Section 4.2). Phase one samples large tables (cheap, coarse);
// phase two repeatedly halves tables, keeping whichever half
// preserves a populated result. For EQC without having, Lemma 1
// guarantees a single-row D_1 exists and that when the first half
// fails the second must succeed, so each halving costs one
// application run. With having extraction enabled the lemma no longer
// holds and the minimizer falls back to verified halving plus row-
// wise removal, stopping at a row-minimal (not necessarily
// single-row) database.
func (s *Session) minimize() error {
	if !s.cfg.DisableSampling {
		if err := s.timed(&s.stats.Sampling, s.samplePhase); err != nil {
			return moduleErr("minimizer/sampling", err)
		}
	}
	s.stats.RowsAfterSampling = s.silo.TotalRows()
	if err := s.timed(&s.stats.Partitioning, s.partitionPhase); err != nil {
		return moduleErr("minimizer/partitioning", err)
	}
	s.stats.RowsFinal = s.silo.TotalRows()

	res, err := s.mustResult(nil, s.silo)
	if err != nil {
		return moduleErr("minimizer", err)
	}
	if !res.Populated() {
		return moduleErrf("minimizer", "minimized database lost the populated result; the hidden query may be outside the extractable class")
	}
	s.baseline = res
	return nil
}

// samplePhase iteratively samples the extracted tables, always
// attacking the currently largest one, and keeps re-sampling the same
// table while the result stays populated: once the biggest table has
// shrunk, every subsequent probe executes against a database that is
// already an order of magnitude smaller, so the whole phase costs
// little more than its first probe (Section 4.2's preprocessing).
// A failed sample is reverted and freezes that table for the phase.
func (s *Session) samplePhase() error {
	frozen := map[string]bool{}
	for {
		name := ""
		best := s.cfg.SampleThreshold
		for _, t := range s.tablesBySizeDesc() {
			if frozen[t] {
				continue
			}
			tbl, err := s.silo.Table(t)
			if err != nil {
				return err
			}
			if tbl.RowCount() > best {
				name, best = t, tbl.RowCount()
				break // tablesBySizeDesc is largest-first
			}
		}
		if name == "" {
			return nil
		}
		tbl, err := s.silo.Table(name)
		if err != nil {
			return err
		}
		backup := tbl.SnapshotRows()
		tbl.SetRows(sqldb.CopyRows(backup))
		tbl.Sample(s.cfg.SampleFraction, s.rng)
		ok, err := s.populated(nil, s.silo)
		if err != nil {
			return err
		}
		if !ok {
			tbl.SetRows(backup)
			frozen[name] = true
		}
	}
}

// tablesBySizeDesc lists the extracted tables by decreasing row
// count.
func (s *Session) tablesBySizeDesc() []string {
	all := s.silo.TableNamesBySize()
	inTE := map[string]bool{}
	for _, t := range s.tables {
		inTE[t] = true
	}
	var out []string
	for _, t := range all {
		if inTE[t] {
			out = append(out, t)
		}
	}
	return out
}

// partitionPhase halves tables down to D_1 (or a row-minimal
// database in having mode).
func (s *Session) partitionPhase() error {
	verify := s.cfg.ExtractHaving
	frozen := map[string]bool{}
	rr := 0 // round-robin cursor
	for {
		name := s.pickHalvingTable(frozen, &rr)
		if name == "" {
			break
		}
		tbl, err := s.silo.Table(name)
		if err != nil {
			return err
		}
		n := tbl.RowCount()
		half := n / 2
		backup := tbl.SnapshotRows()

		tbl.SetRows(sqldb.CopyRows(backup[:half]))
		ok, err := s.populated(nil, s.silo)
		if err != nil {
			return err
		}
		if ok {
			continue
		}
		// First half failed; Lemma 1 says the second must succeed
		// for EQC minus having, so no verification run is needed.
		tbl.SetRows(sqldb.CopyRows(backup[half:]))
		if !verify {
			continue
		}
		ok, err = s.populated(nil, s.silo)
		if err != nil {
			return err
		}
		if !ok {
			// Neither half alone preserves the result (aggregate
			// constraint spans the split): restore and freeze.
			tbl.SetRows(backup)
			frozen[name] = true
		}
	}
	if verify {
		if err := s.rowRemovalRefinement(frozen); err != nil {
			return err
		}
		return s.mergeAndBoost()
	}
	return nil
}

// mergeAndBoost is the having-mode extension that restores Lemma 1:
// a table left multi-row by halving and row removal (an aggregate
// constraint spans its rows) is collapsed to a single row whose
// numeric non-key columns carry a column aggregate (sum, max, min or
// avg) of the surviving rows — each choice preserves feasibility of
// the matching having type, so one of them keeps the result
// populated whenever the hidden aggregate is among the supported
// four. If no collapse works the hidden query needs genuinely
// multi-row groups (e.g. count-based having), which is outside this
// implementation's scope.
func (s *Session) mergeAndBoost() error {
	strategies := []string{"sum", "max", "min", "avg", "first"}
	for _, name := range s.tables {
		tbl, err := s.silo.Table(name)
		if err != nil {
			return err
		}
		if tbl.RowCount() <= 1 {
			continue
		}
		backup := tbl.SnapshotRows()
		collapsed := false
		for base := 0; base < len(backup) && base < 4 && !collapsed; base++ {
			for _, strat := range strategies {
				row, err := s.collapseRow(tbl.Schema, backup, base, strat)
				if err != nil {
					return err
				}
				tbl.SetRows([]sqldb.Row{row})
				ok, err := s.populated(nil, s.silo)
				if err != nil {
					return err
				}
				if ok {
					collapsed = true
					break
				}
				tbl.SetRows(backup)
			}
		}
		if !collapsed {
			return fmt.Errorf("table %s cannot be collapsed to a single row; the hidden query needs multi-row groups (count-style having), which is outside the supported having class", name)
		}
	}
	return nil
}

// collapseRow builds a single row from the given rows: non-numeric
// and key columns copy the base row; numeric non-key columns take the
// strategy's column aggregate.
func (s *Session) collapseRow(schema sqldb.TableSchema, rows []sqldb.Row, base int, strat string) (sqldb.Row, error) {
	out := rows[base].Clone()
	if strat == "first" {
		return out, nil
	}
	for ci, col := range schema.Columns {
		if col.Type != sqldb.TInt && col.Type != sqldb.TFloat {
			continue
		}
		ref := sqldb.ColRef{Table: schema.Name, Column: col.Name}
		if s.isKeyColumn(ref) {
			continue
		}
		var sum float64
		cnt := 0
		minV, maxV := rows[base][ci], rows[base][ci]
		for _, r := range rows {
			v := r[ci]
			if v.Null {
				continue
			}
			sum += v.AsFloat()
			cnt++
			if c, err := sqldb.Compare(v, minV); err == nil && c < 0 {
				minV = v
			}
			if c, err := sqldb.Compare(v, maxV); err == nil && c > 0 {
				maxV = v
			}
		}
		if cnt == 0 {
			continue
		}
		switch strat {
		case "sum":
			out[ci] = numericAs(col, sum)
		case "avg":
			out[ci] = numericAs(col, sum/float64(cnt))
		case "min":
			out[ci] = minV
		case "max":
			out[ci] = maxV
		}
	}
	return out, nil
}

// numericAs renders a float into the column's value family.
func numericAs(col sqldb.Column, f float64) sqldb.Value {
	if col.Type == sqldb.TInt {
		return sqldb.NewInt(int64(f))
	}
	return sqldb.RoundTo(sqldb.NewFloat(f), col.FloatPrecision())
}

// pickHalvingTable selects the next table with more than one row
// according to the configured policy; "" when none remain.
func (s *Session) pickHalvingTable(frozen map[string]bool, rr *int) string {
	var candidates []string
	for _, t := range s.tablesBySizeDesc() { // largest first
		tbl, err := s.silo.Table(t)
		if err != nil {
			continue
		}
		if tbl.RowCount() > 1 && !frozen[t] {
			candidates = append(candidates, t)
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	switch s.cfg.HalvingPolicy {
	case "smallest":
		return candidates[len(candidates)-1]
	case "random":
		return candidates[s.rng.Intn(len(candidates))]
	case "roundrobin":
		*rr++
		return candidates[*rr%len(candidates)]
	default: // largest
		return candidates[0]
	}
}

// rowRemovalRefinement tries removing individual rows from frozen
// tables until no single-row removal preserves the result, yielding
// the row-minimal database of the problem definition.
func (s *Session) rowRemovalRefinement(frozen map[string]bool) error {
	const maxRefineRows = 256
	for name := range frozen {
		tbl, err := s.silo.Table(name)
		if err != nil {
			return err
		}
		if tbl.RowCount() > maxRefineRows {
			return fmt.Errorf("table %s still has %d rows after halving; refinement cap is %d", name, tbl.RowCount(), maxRefineRows)
		}
		for i := 0; i < tbl.RowCount(); {
			if tbl.RowCount() == 1 {
				break
			}
			backup := tbl.SnapshotRows()
			trimmed := append(sqldb.CopyRows(backup[:i]), backup[i+1:]...)
			tbl.SetRows(trimmed)
			ok, err := s.populated(nil, s.silo)
			if err != nil {
				return err
			}
			if ok {
				continue // row i removed; same index now holds the next row
			}
			tbl.SetRows(backup)
			i++
		}
	}
	return nil
}
