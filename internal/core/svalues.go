package core

import (
	"fmt"
	"strings"

	"unmasque/internal/sqldb"
)

// s-values (Section 4.4) are column values that satisfy the extracted
// join and filter predicates; every synthetic database the generation
// pipeline builds is populated exclusively with s-values. variant
// selects deterministic distinct values so callers can request "two
// different s-values" and reproducible randomness.

// sValue returns the variant-th s-value of col.
func (s *Session) sValue(col sqldb.ColRef, variant int) (sqldb.Value, error) {
	def, err := s.column(col)
	if err != nil {
		return sqldb.Value{}, err
	}
	if s.inJoinGraph(col) {
		// Keys are positive integers with no filters (EQC).
		return sqldb.NewInt(int64(1 + variant)), nil
	}
	f, filtered := s.filters[col]
	if filtered && f.Kind == FilterDisjRange {
		return disjSegmentValue(def, f.Segments, variant)
	}
	if filtered && f.Kind == FilterTextIn {
		// Variants cycle through the admitted values (callers that
		// need distinctness check equality themselves).
		return sqldb.NewText(f.InSet[variant%len(f.InSet)]), nil
	}
	hLo, hHi, hasHLo, hasHHi := s.havingRowBounds(col)
	switch def.Type {
	case sqldb.TInt, sqldb.TDate:
		lo, hi := def.DomainMin(), def.DomainMax()
		if filtered {
			if f.HasLo {
				lo = f.Lo.I
			}
			if f.HasHi {
				hi = f.Hi.I
			}
		}
		if hasHLo && hLo.I > lo {
			lo = hLo.I
		}
		if hasHHi && hHi.I < hi {
			hi = hHi.I
		}
		return gridValue(def, pickInRange(lo, hi, int64(variant)), 1), nil
	case sqldb.TFloat:
		scale := numericScale(def)
		lo, hi := def.DomainMin()*scale, def.DomainMax()*scale
		if filtered {
			if f.HasLo {
				lo = scaleFloat(f.Lo.F, scale)
			}
			if f.HasHi {
				hi = scaleFloat(f.Hi.F, scale)
			}
		}
		if hasHLo {
			if g := scaleFloat(hLo.AsFloat(), scale); g > lo {
				lo = g
			}
		}
		if hasHHi {
			if g := scaleFloat(hHi.AsFloat(), scale); g < hi {
				hi = g
			}
		}
		// Prefer integral steps when the range allows, for well-
		// conditioned function-identification systems.
		step := scale
		if hi-lo < scale*8 {
			step = 1
		}
		g := pickInRangeStep(lo, hi, int64(variant), step)
		return gridValue(def, g, scale), nil
	case sqldb.TText:
		if filtered {
			if f.Kind == FilterTextEq {
				if variant > 0 {
					return sqldb.Value{}, fmt.Errorf("column %s is pinned to %q; no second s-value exists", col, f.Pattern)
				}
				return sqldb.NewText(f.Pattern), nil
			}
			str, err := expandPattern(f.Pattern, variant, def.TextMaxLen())
			if err != nil {
				return sqldb.Value{}, fmt.Errorf("column %s: %w", col, err)
			}
			return sqldb.NewText(str), nil
		}
		return sqldb.NewText(freshString(variant, def.TextMaxLen())), nil
	case sqldb.TBool:
		if filtered {
			if variant > 0 {
				return sqldb.Value{}, fmt.Errorf("column %s is pinned to a boolean; no second s-value exists", col)
			}
			return f.Lo, nil
		}
		return sqldb.NewBool(variant%2 == 0), nil
	default:
		return sqldb.Value{}, fmt.Errorf("column %s has unsupported type", col)
	}
}

// sValuePair returns two distinct s-values, or ok=false when the
// column is pinned to a single value by an equality predicate.
func (s *Session) sValuePair(col sqldb.ColRef) (v1, v2 sqldb.Value, ok bool, err error) {
	if s.eqFiltered(col) {
		return sqldb.Value{}, sqldb.Value{}, false, nil
	}
	v1, err = s.sValue(col, 0)
	if err != nil {
		return
	}
	v2, err = s.sValue(col, 1)
	if err != nil {
		// Pinned in a way eqFiltered could not see (e.g. single-point
		// like pattern): report as no pair rather than failing.
		return sqldb.Value{}, sqldb.Value{}, false, nil
	}
	if sqldb.Equal(v1, v2) {
		return sqldb.Value{}, sqldb.Value{}, false, nil
	}
	return v1, v2, true, nil
}

// pickInRange picks a deterministic value lo + k inside [lo, hi],
// preferring to anchor at 1 when the range includes small positive
// integers (readable probes), wrapping within the range size.
func pickInRange(lo, hi, k int64) int64 {
	return pickInRangeStep(lo, hi, k, 1)
}

func pickInRangeStep(lo, hi, k, step int64) int64 {
	if hi < lo {
		return lo
	}
	span := (hi - lo) / step
	base := lo
	if lo <= step && hi >= step*9 {
		base = step // anchor near "1" in grid units
		span = (hi - base) / step
	}
	if span <= 0 {
		return base
	}
	off := k % (span + 1)
	return base + off*step
}

func scaleFloat(f float64, scale int64) int64 {
	return int64(f*float64(scale) + 0.5*sign(f))
}

func sign(f float64) float64 {
	if f < 0 {
		return -1
	}
	return 1
}

// expandPattern renders a concrete string matching a LIKE pattern.
// '_' becomes a variant-dependent letter; the first '%' expands to a
// variant marker (empty for variant 0) and later '%'s to nothing.
// The result is guaranteed to differ across variants whenever the
// pattern contains any wildcard and the length budget allows.
func expandPattern(pattern string, variant, maxLen int) (string, error) {
	var b strings.Builder
	firstPercent := true
	wildSeen := false
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '%':
			if firstPercent && variant > 0 {
				b.WriteString(variantMarker(variant))
			}
			firstPercent = false
			wildSeen = true
		case '_':
			b.WriteByte(byte('a' + (variant+i)%26))
			wildSeen = true
		default:
			b.WriteByte(pattern[i])
		}
	}
	out := b.String()
	if len(out) > maxLen {
		return "", fmt.Errorf("pattern expansion %q exceeds column length %d", out, maxLen)
	}
	if !wildSeen && variant > 0 {
		return "", fmt.Errorf("pattern %q admits a single value", pattern)
	}
	return out, nil
}

// disjSegmentValue maps a variant onto the union of intervals:
// variants cycle across segments, with the residue walking within a
// segment — every returned value satisfies the predicate and
// consecutive variants stay pairwise distinct while capacity allows.
func disjSegmentValue(def sqldb.Column, segments []ValueRange, variant int) (sqldb.Value, error) {
	if len(segments) == 0 {
		return sqldb.Value{}, fmt.Errorf("disjunctive filter without segments")
	}
	scale := numericScale(def)
	seg := segments[variant%len(segments)]
	inner := int64(variant / len(segments))
	lo := scaleFloat(seg.Lo.AsFloat(), scale)
	hi := scaleFloat(seg.Hi.AsFloat(), scale)
	step := scale
	if hi-lo < scale*8 {
		step = 1
	}
	return gridValue(def, pickInRangeStep(lo, hi, inner, step), scale), nil
}

// variantMarker is a short string unique per variant.
func variantMarker(variant int) string {
	var b []byte
	v := variant
	for {
		b = append(b, byte('a'+v%26))
		v /= 26
		if v == 0 {
			break
		}
	}
	return string(b)
}

// freshString builds a deterministic string for unfiltered text
// columns: a base-26 rendering over up to six characters, so strings
// stay pairwise distinct for every variant below the column's
// capacity (see freshStringCapacity) even on single-character
// columns.
func freshString(variant, maxLen int) string {
	if maxLen <= 0 {
		return ""
	}
	width := maxLen
	if width > 6 {
		width = 6
	}
	out := make([]byte, width)
	v := variant
	for i := range out {
		out[i] = byte('a' + v%26)
		v /= 26
	}
	return string(out)
}

// freshStringCapacity is the number of distinct values freshString
// can produce within maxLen, capped at cap.
func freshStringCapacity(maxLen, cap int) int {
	if maxLen <= 0 {
		return 1
	}
	width := maxLen
	if width > 6 {
		width = 6
	}
	n := 1
	for i := 0; i < width; i++ {
		n *= 26
		if n >= cap {
			return cap
		}
	}
	return n
}
