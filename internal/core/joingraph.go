package core

import (
	"fmt"
	"sort"

	"unmasque/internal/sqldb"
)

// cycle is a candidate join cycle: an ordered ring of column vertices
// (Section 4.3). A two-vertex ring represents the single-edge case.
type cycle struct {
	verts []sqldb.ColRef
}

func (c cycle) size() int { return len(c.verts) }

// edges enumerates the ring's edges. For a two-vertex ring there is a
// single edge, not two parallel ones.
func (c cycle) edges() []sqldb.SchemaEdge {
	if len(c.verts) < 2 {
		return nil
	}
	if len(c.verts) == 2 {
		return []sqldb.SchemaEdge{{A: c.verts[0], B: c.verts[1]}}
	}
	out := make([]sqldb.SchemaEdge, 0, len(c.verts))
	for i := range c.verts {
		out = append(out, sqldb.SchemaEdge{A: c.verts[i], B: c.verts[(i+1)%len(c.verts)]})
	}
	return out
}

// extractJoinGraph recovers J_E (Section 4.3 / Algorithm 1). The
// schema graph restricted to T_E's key columns is closed into
// cliques, each clique is reduced to an elementary cycle, and each
// candidate cycle is tested by cutting edge pairs and negating the
// key values of one side in D_1: an empty result proves at least one
// cut edge is in the query.
func (s *Session) extractJoinGraph() error {
	cjg := s.candidateCycles()
	var accepted []cycle

	for len(cjg) > 0 {
		cyc := cjg[0]
		cjg = cjg[1:]

		if cyc.size() < 2 {
			continue // isolated vertex: no join possible
		}
		if cyc.size() == 2 {
			// Limiting case: a single edge, checked by negating one
			// endpoint.
			empty, err := s.negateProbe([]sqldb.ColRef{cyc.verts[0]})
			if err != nil {
				return err
			}
			if empty {
				accepted = append(accepted, cyc)
			}
			continue
		}

		// Try every pair of edges; if some cut yields a populated
		// result, the cycle splits and both parts are re-queued.
		split := false
		pairs := cutPairs(cyc)
		for _, p := range pairs {
			c1, c2 := cut(cyc, p[0], p[1])
			empty, err := s.negateProbe(c1.verts)
			if err != nil {
				return err
			}
			if !empty {
				cjg = append(cjg, c1, c2)
				split = true
				break
			}
		}
		if !split {
			accepted = append(accepted, cyc)
		}
	}

	// Convert accepted cycles into join predicates and components.
	for _, cyc := range accepted {
		s.joinEdges = append(s.joinEdges, canonicalEdges(cyc)...)
		comp := joinComponent{cols: sortedColRefs(cyc.verts)}
		s.components = append(s.components, comp)
		for _, v := range comp.cols {
			s.compOf[v] = len(s.components) - 1
		}
	}
	sort.Slice(s.joinEdges, func(i, j int) bool {
		return s.joinEdges[i].String() < s.joinEdges[j].String()
	})
	return nil
}

// candidateCycles builds CJG_E: the schema graph induced on T_E's key
// columns, transitively closed into connected components, each
// rendered as one elementary cycle.
func (s *Session) candidateCycles() []cycle {
	inTE := map[string]bool{}
	for _, t := range s.tables {
		inTE[t] = true
	}
	schemas := make([]sqldb.TableSchema, 0, len(s.tables))
	for _, t := range s.tables {
		schemas = append(schemas, s.schemas[t])
	}
	// The schema graph must span the whole database (FK-FK linkages
	// may pass through tables outside T_E only in exotic schemas; the
	// paper's scope keeps the join graph a subgraph of edges within
	// T_E).
	graph := sqldb.BuildSchemaGraph(s.source.Schemas())
	edges := graph.EdgesWithin(inTE)

	// Union-find over the edge endpoints.
	parent := map[sqldb.ColRef]sqldb.ColRef{}
	var find func(x sqldb.ColRef) sqldb.ColRef
	find = func(x sqldb.ColRef) sqldb.ColRef {
		if parent[x] == x {
			return x
		}
		root := find(parent[x])
		parent[x] = root
		return root
	}
	union := func(a, b sqldb.ColRef) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range edges {
		if _, ok := parent[e.A]; !ok {
			parent[e.A] = e.A
		}
		if _, ok := parent[e.B]; !ok {
			parent[e.B] = e.B
		}
		union(e.A, e.B)
	}
	comps := map[sqldb.ColRef][]sqldb.ColRef{}
	for v := range parent {
		root := find(v)
		comps[root] = append(comps[root], v)
	}
	var cycles []cycle
	for _, verts := range comps {
		cycles = append(cycles, cycle{verts: sortedColRefs(verts)})
	}
	sort.Slice(cycles, func(i, j int) bool {
		return cycles[i].verts[0].Less(cycles[j].verts[0])
	})
	return cycles
}

// cutPairs enumerates the index pairs of edges to cut; for an n-ring
// the edges are (i, i+1 mod n).
func cutPairs(c cycle) [][2]int {
	n := c.size()
	var out [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// cut removes ring edges i and j, splitting the ring into two paths,
// and closes each path back into a cycle (Section 4.3's Cut
// subroutine). Edge k connects vertex k and k+1 mod n, so removing
// edges i < j leaves paths (i+1..j) and (j+1..i mod n).
func cut(c cycle, i, j int) (cycle, cycle) {
	n := c.size()
	var p1, p2 []sqldb.ColRef
	for k := i + 1; k <= j; k++ {
		p1 = append(p1, c.verts[k%n])
	}
	for k := j + 1; k <= i+n; k++ {
		p2 = append(p2, c.verts[k%n])
	}
	return cycle{verts: p1}, cycle{verts: p2}
}

// negateProbe clones D_1, flips the sign of the given key columns
// (zero values are replaced by -1, preserving the "breaks equality"
// property for the positive-key assumption), runs the application and
// reports whether the result went empty.
func (s *Session) negateProbe(cols []sqldb.ColRef) (bool, error) {
	db := s.cloneD1()
	for _, c := range cols {
		tbl, err := db.Table(c.Table)
		if err != nil {
			return false, err
		}
		if tbl.Schema.ColumnIndex(c.Column) < 0 {
			return false, fmt.Errorf("negate: table %s has no column %s", c.Table, c.Column)
		}
		for r := 0; r < tbl.RowCount(); r++ {
			v, err := tbl.Get(r, c.Column)
			if err != nil {
				return false, fmt.Errorf("negate %s: %w", c, err)
			}
			if v.Null {
				continue
			}
			if v.IsZero() {
				if err := tbl.Set(r, c.Column, sqldb.NewInt(-1)); err != nil {
					return false, fmt.Errorf("negate %s: %w", c, err)
				}
				continue
			}
			n, err := sqldb.Neg(v)
			if err != nil {
				return false, fmt.Errorf("negate %s: %w", c, err)
			}
			if err := tbl.Set(r, c.Column, n); err != nil {
				return false, fmt.Errorf("negate %s: %w", c, err)
			}
		}
	}
	ok, err := s.populated(nil, db)
	return !ok, err
}

// canonicalEdges returns the ring's edges with deterministic endpoint
// order.
func canonicalEdges(c cycle) []sqldb.SchemaEdge {
	out := c.edges()
	for i := range out {
		out[i] = out[i].Canonical()
	}
	return out
}
