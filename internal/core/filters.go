package core

import (
	"fmt"
	"math"

	"unmasque/internal/sqldb"
)

// extractFilters recovers F_E (Section 4.4): every non-key column of
// the extracted tables is probed with domain-extreme values on a
// clone of D_1; the population pattern of the two probes selects one
// of the four cases of Table 2, and binary searches pin the bounds.
//
// Each column's search is a chain of dependent probes, but distinct
// columns never interact (every probe clones D_1 and rewrites only
// its own column), so the per-column extractions fan out over the
// scheduler's worker pool. Results land positionally and are folded
// into the filter map in the sequential column order, keeping the
// assembled predicate list — and hence the extracted SQL text —
// independent of the worker count.
func (s *Session) extractFilters() error {
	var cols []sqldb.ColRef
	for _, col := range s.allColumns() {
		if s.isKeyColumn(col) || s.inJoinGraph(col) {
			continue // EQC: filters feature only non-key columns
		}
		cols = append(cols, col)
	}
	// Every probe clones D_1 and re-executes E against it; declaring
	// the candidate columns up front lets each clone inherit pre-built
	// indexes on them instead of rebuilding per probe.
	release, err := s.adviseProbeColumns(cols)
	if err != nil {
		return err
	}
	defer release()
	found := make([]*FilterPredicate, len(cols))
	err = s.parallelFor(len(cols), func(pc *probeCtx, i int) error {
		f, err := s.extractColumnFilter(pc, cols[i])
		if err != nil {
			return fmt.Errorf("column %s: %w", cols[i], err)
		}
		found[i] = f
		return nil
	})
	if err != nil {
		return err
	}
	for i, col := range cols {
		if f := found[i]; f != nil {
			s.filters[col] = *f
			s.filterOrder = append(s.filterOrder, col)
		}
	}
	s.filtersKnown = true
	return nil
}

// extractColumnFilter dispatches one column to the type-specific
// Table 2 search; nil means the column carries no filter.
func (s *Session) extractColumnFilter(pc *probeCtx, col sqldb.ColRef) (*FilterPredicate, error) {
	def, err := s.column(col)
	if err != nil {
		return nil, err
	}
	switch def.Type {
	case sqldb.TInt, sqldb.TDate, sqldb.TFloat:
		return s.extractNumericFilter(pc, col, def)
	case sqldb.TText:
		return s.extractTextFilter(pc, col, def)
	case sqldb.TBool:
		return s.extractBoolFilter(pc, col)
	default:
		return nil, nil
	}
}

// valueProbe sets every row of col in a clone of the minimized
// database to v and reports whether the result stays populated.
func (s *Session) valueProbe(pc *probeCtx, col sqldb.ColRef, v sqldb.Value) (bool, error) {
	db := s.cloneD1()
	tbl, err := db.Table(col.Table)
	if err != nil {
		return false, err
	}
	if err := tbl.SetAll(col.Column, v); err != nil {
		return false, err
	}
	return s.populated(pc, db)
}

// numericScale maps a column onto an integer probe grid: dates and
// ints are 1:1; fixed-precision floats are scaled by 10^precision so
// one binary search covers both integral and fractional bounds
// (equivalent to the paper's two-phase search, same probe count up to
// a constant).
func numericScale(def sqldb.Column) int64 {
	if def.Type == sqldb.TFloat {
		return int64(math.Pow10(def.FloatPrecision()))
	}
	return 1
}

// gridValue converts a scaled grid point back into a column value.
func gridValue(def sqldb.Column, g int64, scale int64) sqldb.Value {
	switch def.Type {
	case sqldb.TFloat:
		return sqldb.NewFloat(float64(g) / float64(scale))
	case sqldb.TDate:
		return sqldb.NewDate(g)
	default:
		return sqldb.NewInt(g)
	}
}

// extractNumericFilter implements Table 2 for int, date and
// fixed-precision float columns.
func (s *Session) extractNumericFilter(pc *probeCtx, col sqldb.ColRef, def sqldb.Column) (*FilterPredicate, error) {
	scale := numericScale(def)
	gMin := def.DomainMin() * scale
	gMax := def.DomainMax() * scale

	a, err := s.d1Value(col)
	if err != nil {
		return nil, err
	}
	if a.Null {
		// A NULL survives in D_1 only if the column carries no
		// value predicate (a filtered NULL row would be empty);
		// NULL-specific predicates are out of scope here.
		return nil, nil
	}
	var gA int64
	if def.Type == sqldb.TFloat {
		gA = int64(math.Round(a.F * float64(scale)))
	} else {
		gA = a.I
	}

	loPop, err := s.valueProbe(pc, col, gridValue(def, gMin, scale))
	if err != nil {
		return nil, err
	}
	hiPop, err := s.valueProbe(pc, col, gridValue(def, gMax, scale))
	if err != nil {
		return nil, err
	}
	if loPop && hiPop {
		return nil, nil // Case 1: no predicate
	}

	f := &FilterPredicate{Col: col, Kind: FilterRange}
	if !loPop { // Cases 2 and 4: find l
		g, err := s.searchLowerBound(pc, col, def, scale, gMin, gA)
		if err != nil {
			return nil, err
		}
		f.Lo, f.HasLo = gridValue(def, g, scale), true
	}
	if !hiPop { // Cases 3 and 4: find r
		g, err := s.searchUpperBound(pc, col, def, scale, gA, gMax)
		if err != nil {
			return nil, err
		}
		f.Hi, f.HasHi = gridValue(def, g, scale), true
	}
	return f, nil
}

// searchLowerBound finds the smallest grid point in [lo, a] whose
// probe keeps the result populated (the filter's l).
func (s *Session) searchLowerBound(pc *probeCtx, col sqldb.ColRef, def sqldb.Column, scale, lo, a int64) (int64, error) {
	for lo < a {
		mid := lo + (a-lo)/2
		ok, err := s.valueProbe(pc, col, gridValue(def, mid, scale))
		if err != nil {
			return 0, err
		}
		if ok {
			a = mid
		} else {
			lo = mid + 1
		}
	}
	return a, nil
}

// searchUpperBound finds the largest grid point in [a, hi] whose
// probe keeps the result populated (the filter's r).
func (s *Session) searchUpperBound(pc *probeCtx, col sqldb.ColRef, def sqldb.Column, scale, a, hi int64) (int64, error) {
	for a < hi {
		mid := a + (hi-a+1)/2
		ok, err := s.valueProbe(pc, col, gridValue(def, mid, scale))
		if err != nil {
			return 0, err
		}
		if ok {
			a = mid
		} else {
			hi = mid - 1
		}
	}
	return a, nil
}

// extractTextFilter implements Section 4.4.2: existence check via the
// empty string and a single-character probe, MQS discovery via
// per-character substitution (with a deletion probe separating '_'
// from '%'-absorbed characters), then '%' placement via insertion
// probes at every gap including the string boundaries.
func (s *Session) extractTextFilter(pc *probeCtx, col sqldb.ColRef, def sqldb.Column) (*FilterPredicate, error) {
	rep, err := s.d1Value(col)
	if err != nil {
		return nil, err
	}
	if rep.Null {
		return nil, nil
	}

	emptyPop, err := s.valueProbe(pc, col, sqldb.NewText(""))
	if err != nil {
		return nil, err
	}
	singlePop, err := s.valueProbe(pc, col, sqldb.NewText(pickOtherChar(0, 0)))
	if err != nil {
		return nil, err
	}
	if emptyPop && singlePop {
		return nil, nil // only 'like %' behaves this way == no filter
	}

	// MQS discovery over the representative string.
	repS := rep.S
	type posKind uint8
	const (
		literal posKind = iota
		underscore
		absorbed
	)
	kinds := make([]posKind, len(repS))
	for i := 0; i < len(repS); i++ {
		mutated := replaceAt(repS, i, pickOtherChar(repS[i], 0))
		pop, err := s.valueProbe(pc, col, sqldb.NewText(mutated))
		if err != nil {
			return nil, err
		}
		if !pop {
			kinds[i] = literal
			continue
		}
		// Wildcard position: deletion distinguishes '_' (fixed
		// length) from a '%'-absorbed character.
		deleted := repS[:i] + repS[i+1:]
		pop, err = s.valueProbe(pc, col, sqldb.NewText(deleted))
		if err != nil {
			return nil, err
		}
		if pop {
			kinds[i] = absorbed
		} else {
			kinds[i] = underscore
		}
	}
	var mqs []byte      // pattern characters ('_' for wildcards)
	var mqsValue []byte // a concrete string matching the MQS
	for i := 0; i < len(repS); i++ {
		switch kinds[i] {
		case literal:
			mqs = append(mqs, repS[i])
			mqsValue = append(mqsValue, repS[i])
		case underscore:
			mqs = append(mqs, '_')
			mqsValue = append(mqsValue, repS[i])
		}
	}

	// '%' placement: for every gap (including the boundaries),
	// insert a fresh character into the MQS value; a populated
	// result proves a '%' at that gap.
	hasPercent := make([]bool, len(mqs)+1)
	if len(mqsValue)+1 <= def.TextMaxLen() {
		for g := 0; g <= len(mqsValue); g++ {
			var left, right byte
			if g > 0 {
				left = mqsValue[g-1]
			}
			if g < len(mqsValue) {
				right = mqsValue[g]
			}
			ins := pickOtherChar(left, right)
			candidate := string(mqsValue[:g]) + ins + string(mqsValue[g:])
			pop, err := s.valueProbe(pc, col, sqldb.NewText(candidate))
			if err != nil {
				return nil, err
			}
			hasPercent[g] = pop
		}
	}

	var pattern []byte
	anyWild := false
	for g := 0; g <= len(mqs); g++ {
		if hasPercent[g] {
			pattern = append(pattern, '%')
			anyWild = true
		}
		if g < len(mqs) {
			pattern = append(pattern, mqs[g])
			if mqs[g] == '_' {
				anyWild = true
			}
		}
	}
	f := &FilterPredicate{Col: col}
	if anyWild {
		f.Kind = FilterLike
		f.Pattern = string(pattern)
	} else {
		f.Kind = FilterTextEq
		f.Pattern = string(pattern)
	}
	return f, nil
}

// replaceAt substitutes the byte at index i.
func replaceAt(s string, i int, c string) string {
	return s[:i] + c + s[i+1:]
}

// pickOtherChar returns a lower-case letter different from both
// arguments (and from the wildcard bytes).
func pickOtherChar(a, b byte) string {
	for _, c := range []byte{'x', 'y', 'z', 'w'} {
		if c != a && c != b {
			return string(c)
		}
	}
	return "q"
}

// extractBoolFilter probes both truth values; exactly one populated
// probe means an equality predicate.
func (s *Session) extractBoolFilter(pc *probeCtx, col sqldb.ColRef) (*FilterPredicate, error) {
	cur, err := s.d1Value(col)
	if err != nil {
		return nil, err
	}
	if cur.Null {
		return nil, nil
	}
	tPop, err := s.valueProbe(pc, col, sqldb.NewBool(true))
	if err != nil {
		return nil, err
	}
	fPop, err := s.valueProbe(pc, col, sqldb.NewBool(false))
	if err != nil {
		return nil, err
	}
	if tPop == fPop {
		return nil, nil // both or neither: no usable value predicate
	}
	v := sqldb.NewBool(tPop)
	return &FilterPredicate{Col: col, Kind: FilterRange, Lo: v, Hi: v, HasLo: true, HasHi: true}, nil
}
