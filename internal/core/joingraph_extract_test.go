package core_test

// Focused tests of equi-join graph extraction (Section 4.3 /
// Algorithm 1): cliques induced by FK-FK edges must be cut down to
// exactly the joins the hidden query uses.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/sqldb"
)

// cliqueDB builds a schema whose key graph is a 3-column clique:
// orders.customer_id and invoices.customer_id both reference
// customers.id, inducing FK-FK edges among all three.
func cliqueDB(t *testing.T) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.CreateTable(sqldb.TableSchema{
		Name: "customers",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "name", Type: sqldb.TText, MaxLen: 20},
		},
		PrimaryKey: []string{"id"},
	}))
	must(db.CreateTable(sqldb.TableSchema{
		Name: "orders",
		Columns: []sqldb.Column{
			{Name: "order_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "customer_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "total", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 10000},
		},
		PrimaryKey:  []string{"order_id"},
		ForeignKeys: []sqldb.ForeignKey{{Column: "customer_id", RefTable: "customers", RefColumn: "id"}},
	}))
	must(db.CreateTable(sqldb.TableSchema{
		Name: "invoices",
		Columns: []sqldb.Column{
			{Name: "invoice_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "customer_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "amount", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 10000},
		},
		PrimaryKey:  []string{"invoice_id"},
		ForeignKeys: []sqldb.ForeignKey{{Column: "customer_id", RefTable: "customers", RefColumn: "id"}},
	}))
	rng := rand.New(rand.NewSource(5))
	for c := 1; c <= 30; c++ {
		must(db.Insert("customers", sqldb.NewInt(int64(c)), sqldb.NewText(fmt.Sprintf("c%d", c))))
	}
	for o := 1; o <= 120; o++ {
		must(db.Insert("orders", sqldb.NewInt(int64(o)), sqldb.NewInt(int64(1+rng.Intn(30))),
			sqldb.NewFloat(float64(rng.Intn(100000))/100)))
	}
	for i := 1; i <= 120; i++ {
		must(db.Insert("invoices", sqldb.NewInt(int64(i)), sqldb.NewInt(int64(1+rng.Intn(30))),
			sqldb.NewFloat(float64(rng.Intn(100000))/100)))
	}
	return db
}

func joinStrings(ext []sqldb.SchemaEdge) []string {
	out := make([]string, len(ext))
	for i, e := range ext {
		out[i] = e.String()
	}
	sort.Strings(out)
	return out
}

// TestJoinGraphFullClique: a query joining all three tables on the
// shared customer key must recover the full component (as a cycle
// whose edges imply the clique transitively).
func TestJoinGraphFullClique(t *testing.T) {
	db := cliqueDB(t)
	ext := extractHidden(t, db, `
		select name, total, amount
		from customers, orders, invoices
		where customers.id = orders.customer_id
		  and orders.customer_id = invoices.customer_id`, defaultCfg())
	if len(ext.JoinPredicates) < 2 {
		t.Fatalf("clique lost: %v", ext.JoinPredicates)
	}
	// The three columns must all be connected (2 or 3 edges both
	// induce the clique transitively).
	cols := map[string]bool{}
	for _, e := range ext.JoinPredicates {
		cols[e.A.String()] = true
		cols[e.B.String()] = true
	}
	for _, want := range []string{"customers.id", "orders.customer_id", "invoices.customer_id"} {
		if !cols[want] {
			t.Errorf("column %s missing from join graph %v", want, joinStrings(ext.JoinPredicates))
		}
	}
}

// TestJoinGraphPartialClique: a two-table query must NOT drag the
// third clique member in — Algorithm 1's cut must shrink the
// candidate cycle.
func TestJoinGraphPartialClique(t *testing.T) {
	db := cliqueDB(t)
	ext := extractHidden(t, db, `
		select name, total from customers, orders
		where customers.id = orders.customer_id`, defaultCfg())
	if len(ext.Tables) != 2 {
		t.Fatalf("tables: %v", ext.Tables)
	}
	if len(ext.JoinPredicates) != 1 {
		t.Fatalf("join predicates: %v", joinStrings(ext.JoinPredicates))
	}
	if got := ext.JoinPredicates[0].String(); got != "customers.id=orders.customer_id" {
		t.Errorf("edge: %s", got)
	}
}

// TestJoinGraphFKFKOnly: joining the two fact tables directly (no
// dimension) uses the FK-FK edge alone.
func TestJoinGraphFKFKOnly(t *testing.T) {
	db := cliqueDB(t)
	ext := extractHidden(t, db, `
		select total, amount from orders, invoices
		where orders.customer_id = invoices.customer_id`, defaultCfg())
	if len(ext.JoinPredicates) != 1 {
		t.Fatalf("join predicates: %v", joinStrings(ext.JoinPredicates))
	}
	if got := ext.JoinPredicates[0].String(); got != "invoices.customer_id=orders.customer_id" {
		t.Errorf("edge: %s", got)
	}
}

// TestJoinGraphNoJoin: a query with NO join between two tables (a
// cross product) is outside EQC's join-graph scope. The dynamic
// pipeline still reproduces it — the join module finds no edges and
// the checker only tests instance equivalence — but the static EQC
// guard is exactly the layer that rejects it as out-of-class.
func TestJoinGraphNoJoin(t *testing.T) {
	db := cliqueDB(t)
	cfg := defaultCfg()
	cfg.VerifyEQC = false
	ext := extractHidden(t, db, `
		select name from customers, orders`, cfg)
	if len(ext.JoinPredicates) != 0 {
		t.Errorf("spurious join predicates: %v", joinStrings(ext.JoinPredicates))
	}

	exe := app.MustSQLExecutable(t.Name(), `select name from customers, orders`)
	_, err := core.Extract(exe, db, defaultCfg())
	if err == nil {
		t.Fatal("EQC guard should reject a cross-product extraction")
	}
	if !strings.Contains(err.Error(), "EQC-J02") {
		t.Errorf("expected EQC-J02 in guard error, got: %v", err)
	}
}
