package core

import (
	"fmt"
	"sort"

	"unmasque/internal/sqldb"
)

// Disjunction extraction — the Section 9 future-work extension
// ("disjunctions ... could eventually be extracted under some
// restrictions"). After the conjunctive filter pass, every candidate
// column is re-examined:
//
//   - numeric/date columns: a fixed-resolution grid scan over the
//     domain classifies each probe point as satisfying or not; runs of
//     satisfying points become candidate intervals whose edges are
//     pinned by local binary searches between adjacent grid points of
//     opposite polarity. More than one interval replaces the
//     conjunctive range with a FilterDisjRange.
//   - text columns: the distinct values of the source column (plus
//     the D_1 value) are enumerated and probed; a satisfying set not
//     explained by the extracted equality/LIKE predicate becomes a
//     FilterTextIn.
//
// Restrictions (documented, checker-guarded): intervals narrower than
// domain/DisjunctionScanPoints can escape the scan, and strings never
// observed in D_I cannot be enumerated; the checker's initial-instance
// comparison rejects extractions that miss such residuals.
func (s *Session) refineDisjunctions() error {
	if !s.cfg.ExtractDisjunction {
		return nil
	}
	for _, col := range s.allColumns() {
		if s.isKeyColumn(col) || s.inJoinGraph(col) {
			continue
		}
		def, err := s.column(col)
		if err != nil {
			return err
		}
		switch def.Type {
		case sqldb.TInt, sqldb.TDate, sqldb.TFloat:
			if err := s.refineNumericDisjunction(col, def); err != nil {
				return fmt.Errorf("column %s: %w", col, err)
			}
		case sqldb.TText:
			if err := s.refineTextDisjunction(col); err != nil {
				return fmt.Errorf("column %s: %w", col, err)
			}
		}
	}
	return nil
}

// refineNumericDisjunction scans one numeric column for interval
// unions.
func (s *Session) refineNumericDisjunction(col sqldb.ColRef, def sqldb.Column) error {
	scale := numericScale(def)
	gMin := def.DomainMin() * scale
	gMax := def.DomainMax() * scale
	points := int64(s.cfg.DisjunctionScanPoints)
	if gMax-gMin < 2 {
		return nil // degenerate domain: nothing beyond the range pass
	}
	step := (gMax - gMin) / points
	if step < 1 {
		step = 1
	}

	// Scan the grid (always including both domain edges).
	type probePt struct {
		g   int64
		pop bool
	}
	var pts []probePt
	for g := gMin; ; g += step {
		if g > gMax {
			g = gMax
		}
		pop, err := s.valueProbe(nil, col, gridValue(def, g, scale))
		if err != nil {
			return err
		}
		pts = append(pts, probePt{g: g, pop: pop})
		if g == gMax {
			break
		}
	}

	// Collapse into satisfying runs with refined edges.
	var segments []ValueRange
	i := 0
	for i < len(pts) {
		if !pts[i].pop {
			i++
			continue
		}
		runStart, runEnd := i, i
		for runEnd+1 < len(pts) && pts[runEnd+1].pop {
			runEnd++
		}
		lo := pts[runStart].g
		if runStart > 0 {
			// The true edge lies in (pts[runStart-1].g, lo]; binary
			// search for the smallest satisfying grid value.
			g, err := s.searchLowerBound(nil, col, def, scale, pts[runStart-1].g+1, lo)
			if err != nil {
				return err
			}
			lo = g
		}
		hi := pts[runEnd].g
		if runEnd+1 < len(pts) {
			g, err := s.searchUpperBound(nil, col, def, scale, hi, pts[runEnd+1].g-1)
			if err != nil {
				return err
			}
			hi = g
		}
		segments = append(segments, ValueRange{
			Lo: gridValue(def, lo, scale),
			Hi: gridValue(def, hi, scale),
		})
		i = runEnd + 1
	}

	switch {
	case len(segments) <= 1:
		return nil // conjunctive pass already covers 0/1 intervals
	default:
		sort.Slice(segments, func(a, b int) bool {
			c, _ := sqldb.Compare(segments[a].Lo, segments[b].Lo)
			return c < 0
		})
		s.setFilter(col, FilterPredicate{Col: col, Kind: FilterDisjRange, Segments: segments})
		return nil
	}
}

// refineTextDisjunction enumerates candidate strings and replaces an
// equality with an IN-set when several distinct values satisfy.
func (s *Session) refineTextDisjunction(col sqldb.ColRef) error {
	existing, hasFilter := s.filters[col]
	base, err := s.d1Value(col)
	if err != nil || base.Null {
		return err
	}
	candidates := map[string]bool{base.S: true}
	for _, v := range s.sourceAlternatives(col, base, 24) {
		if v.Typ == sqldb.TText {
			candidates[v.S] = true
		}
	}
	var satisfying []string
	for v := range candidates {
		pop, err := s.valueProbe(nil, col, sqldb.NewText(v))
		if err != nil {
			return err
		}
		if pop {
			satisfying = append(satisfying, v)
		}
	}
	sort.Strings(satisfying)
	if len(satisfying) <= 1 {
		return nil // the conjunctive pass (eq / like / none) stands
	}
	if !hasFilter {
		// The existence probes both passed, so the column carries no
		// predicate; several satisfying candidates are expected.
		return nil
	}
	if existing.Kind == FilterLike {
		// A pattern predicate naturally admits many values; keep it
		// unless some satisfying value escapes the pattern (evidence
		// of a genuine disjunction).
		allMatch := true
		for _, v := range satisfying {
			if !sqldb.LikeMatch(existing.Pattern, v) {
				allMatch = false
				break
			}
		}
		if allMatch {
			return nil
		}
	}
	s.setFilter(col, FilterPredicate{Col: col, Kind: FilterTextIn, InSet: satisfying})
	return nil
}

// setFilter installs or replaces the predicate for a column, keeping
// filterOrder stable.
func (s *Session) setFilter(col sqldb.ColRef, f FilterPredicate) {
	if _, ok := s.filters[col]; !ok {
		s.filterOrder = append(s.filterOrder, col)
	}
	s.filters[col] = f
}
