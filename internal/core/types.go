package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"unmasque/internal/obs"
	"unmasque/internal/sqldb"
)

// FilterKind distinguishes the extracted filter-predicate families.
type FilterKind uint8

const (
	// FilterRange is a numeric/date range l <= A <= r (either bound
	// may be open at the domain edge).
	FilterRange FilterKind = iota
	// FilterTextEq is an exact string equality A = 'value'.
	FilterTextEq
	// FilterLike is a pattern predicate A like 'pattern'.
	FilterLike
	// FilterDisjRange is a union of disjoint numeric/date intervals —
	// the Section 9 "disjunctions" extension (Config.ExtractDisjunction).
	FilterDisjRange
	// FilterTextIn is a disjunctive string equality set (IN-list) —
	// same extension for text columns.
	FilterTextIn
)

// ValueRange is one closed interval of a disjunctive filter.
type ValueRange struct {
	Lo, Hi sqldb.Value
}

// FilterPredicate is one extracted filter on a non-key column.
type FilterPredicate struct {
	Col  sqldb.ColRef
	Kind FilterKind

	// Range bounds; HasLo/HasHi report whether the bound is tighter
	// than the column domain.
	Lo, Hi       sqldb.Value
	HasLo, HasHi bool

	// Pattern holds the string for FilterTextEq / FilterLike.
	Pattern string

	// Segments holds the intervals of a FilterDisjRange predicate, in
	// ascending order.
	Segments []ValueRange

	// InSet holds the admitted strings of a FilterTextIn predicate.
	InSet []string
}

// IsEquality reports whether the predicate pins the column to one
// value (numeric l=r, or text equality).
func (f FilterPredicate) IsEquality() bool {
	switch f.Kind {
	case FilterTextEq:
		return true
	case FilterRange:
		return f.HasLo && f.HasHi && sqldb.Equal(f.Lo, f.Hi)
	case FilterTextIn:
		return len(f.InSet) == 1
	case FilterDisjRange:
		return len(f.Segments) == 1 && sqldb.Equal(f.Segments[0].Lo, f.Segments[0].Hi)
	default:
		return false
	}
}

// Expr renders the predicate as an engine expression in canonical
// form: =, <=, >=, between, or like.
func (f FilterPredicate) Expr() sqldb.Expr {
	col := sqldb.Col(f.Col.Table, f.Col.Column)
	switch f.Kind {
	case FilterTextEq:
		return sqldb.Bin(sqldb.OpEq, col, sqldb.Lit(sqldb.NewText(f.Pattern)))
	case FilterLike:
		return &sqldb.LikeExpr{X: col, Pattern: f.Pattern}
	case FilterTextIn:
		var parts []sqldb.Expr
		for _, v := range f.InSet {
			parts = append(parts, sqldb.Bin(sqldb.OpEq, col, sqldb.Lit(sqldb.NewText(v))))
		}
		return orAll(parts)
	case FilterDisjRange:
		var parts []sqldb.Expr
		for _, seg := range f.Segments {
			if sqldb.Equal(seg.Lo, seg.Hi) {
				parts = append(parts, sqldb.Bin(sqldb.OpEq, col, sqldb.Lit(seg.Lo)))
				continue
			}
			parts = append(parts, &sqldb.BetweenExpr{X: col, Lo: sqldb.Lit(seg.Lo), Hi: sqldb.Lit(seg.Hi)})
		}
		return orAll(parts)
	default:
		switch {
		case f.HasLo && f.HasHi && sqldb.Equal(f.Lo, f.Hi):
			return sqldb.Bin(sqldb.OpEq, col, sqldb.Lit(f.Lo))
		case f.HasLo && f.HasHi:
			return &sqldb.BetweenExpr{X: col, Lo: sqldb.Lit(f.Lo), Hi: sqldb.Lit(f.Hi)}
		case f.HasLo:
			return sqldb.Bin(sqldb.OpGe, col, sqldb.Lit(f.Lo))
		case f.HasHi:
			return sqldb.Bin(sqldb.OpLe, col, sqldb.Lit(f.Hi))
		default:
			// Degenerate: no bound survived; render a tautology.
			return sqldb.Bin(sqldb.OpGe, col, sqldb.Lit(f.Lo))
		}
	}
}

func (f FilterPredicate) String() string { return f.Expr().String() }

// orAll combines expressions with OR.
func orAll(es []sqldb.Expr) sqldb.Expr {
	var out sqldb.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = sqldb.Bin(sqldb.OpOr, out, e)
		}
	}
	return out
}

// HavingPredicate is one extracted having constraint agg(A) in
// [Lo, Hi].
type HavingPredicate struct {
	Col          sqldb.ColRef
	Fn           sqldb.AggFn
	Lo, Hi       sqldb.Value
	HasLo, HasHi bool
}

// Expr renders the predicate.
func (h HavingPredicate) Expr() sqldb.Expr {
	agg := &sqldb.AggExpr{Fn: h.Fn, Arg: sqldb.Col(h.Col.Table, h.Col.Column)}
	switch {
	case h.HasLo && h.HasHi && sqldb.Equal(h.Lo, h.Hi):
		return sqldb.Bin(sqldb.OpEq, agg, sqldb.Lit(h.Lo))
	case h.HasLo && h.HasHi:
		return sqldb.Bin(sqldb.OpAnd,
			sqldb.Bin(sqldb.OpGe, agg, sqldb.Lit(h.Lo)),
			sqldb.Bin(sqldb.OpLe, agg, sqldb.Lit(h.Hi)))
	case h.HasLo:
		return sqldb.Bin(sqldb.OpGe, agg, sqldb.Lit(h.Lo))
	default:
		return sqldb.Bin(sqldb.OpLe, agg, sqldb.Lit(h.Hi))
	}
}

func (h HavingPredicate) String() string { return h.Expr().String() }

// Projection describes one output column of the hidden query as
// discovered by the pipeline: a multi-linear function of base
// columns, possibly wrapped in an aggregate.
type Projection struct {
	// OutputName is the result column name reported by the
	// application.
	OutputName string
	// Deps are the base columns the output depends on (one
	// representative per join component), in deterministic order.
	Deps []sqldb.ColRef
	// Coeffs maps each subset of Deps (bitmask index) to its
	// multi-linear coefficient; Coeffs[0] is the constant term.
	// len(Coeffs) == 1 << len(Deps).
	Coeffs []float64
	// Agg is the aggregation wrapped around the function (AggNone
	// for a plain projection).
	Agg sqldb.AggFn
	// Distinct marks a distinct aggregation (count(distinct A)); an
	// extension beyond the paper's base scope (it defers distinct to
	// the technical report).
	Distinct bool
	// CountStar marks a count(*) output (Deps empty).
	CountStar bool
	// Constant marks a constant output (select <literal>).
	Constant bool
	ConstVal sqldb.Value
}

// IsIdentity reports whether the function is exactly one base column.
func (p Projection) IsIdentity() bool {
	if len(p.Deps) != 1 || len(p.Coeffs) != 2 {
		return false
	}
	return nearly(p.Coeffs[0], 0) && nearly(p.Coeffs[1], 1)
}

func nearly(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// FuncExpr renders the scalar function (without aggregation) as an
// engine expression, with light prettification: the bilinear pattern
// a*(A - A*B) is printed as the paper's A * (1 - B) form.
func (p Projection) FuncExpr() sqldb.Expr {
	if p.Constant {
		return sqldb.Lit(p.ConstVal)
	}
	if p.IsIdentity() {
		return sqldb.Col(p.Deps[0].Table, p.Deps[0].Column)
	}
	// Special-case the ubiquitous discount form: A + c*A*B with
	// coefficient pattern a=1, c=-1, rest 0 → A * (1 - B).
	if len(p.Deps) == 2 && len(p.Coeffs) == 4 &&
		nearly(p.Coeffs[0], 0) && nearly(p.Coeffs[1], 1) &&
		nearly(p.Coeffs[2], 0) && nearly(p.Coeffs[3], -1) {
		a := sqldb.Col(p.Deps[0].Table, p.Deps[0].Column)
		b := sqldb.Col(p.Deps[1].Table, p.Deps[1].Column)
		return sqldb.Bin(sqldb.OpMul, a,
			sqldb.Bin(sqldb.OpSub, sqldb.Lit(sqldb.NewInt(1)), b))
	}
	// Symmetric variant with the roles swapped.
	if len(p.Deps) == 2 && len(p.Coeffs) == 4 &&
		nearly(p.Coeffs[0], 0) && nearly(p.Coeffs[2], 1) &&
		nearly(p.Coeffs[1], 0) && nearly(p.Coeffs[3], -1) {
		a := sqldb.Col(p.Deps[1].Table, p.Deps[1].Column)
		b := sqldb.Col(p.Deps[0].Table, p.Deps[0].Column)
		return sqldb.Bin(sqldb.OpMul, a,
			sqldb.Bin(sqldb.OpSub, sqldb.Lit(sqldb.NewInt(1)), b))
	}
	// General multi-linear sum.
	var expr sqldb.Expr
	addTerm := func(t sqldb.Expr) {
		if expr == nil {
			expr = t
		} else {
			expr = sqldb.Bin(sqldb.OpAdd, expr, t)
		}
	}
	for mask := 1; mask < len(p.Coeffs); mask++ {
		c := p.Coeffs[mask]
		if nearly(c, 0) {
			continue
		}
		var term sqldb.Expr
		for bit := 0; bit < len(p.Deps); bit++ {
			if mask&(1<<bit) == 0 {
				continue
			}
			cref := sqldb.Col(p.Deps[bit].Table, p.Deps[bit].Column)
			if term == nil {
				term = cref
			} else {
				term = sqldb.Bin(sqldb.OpMul, term, cref)
			}
		}
		if !nearly(c, 1) {
			term = sqldb.Bin(sqldb.OpMul, sqldb.Lit(coeffValue(c)), term)
		}
		addTerm(term)
	}
	if !nearly(p.Coeffs[0], 0) || expr == nil {
		addTerm(sqldb.Lit(coeffValue(p.Coeffs[0])))
	}
	return expr
}

// coeffValue renders a coefficient as an int literal when it is one.
func coeffValue(c float64) sqldb.Value {
	if c == math.Trunc(c) && math.Abs(c) < 1e15 {
		return sqldb.NewInt(int64(c))
	}
	return sqldb.NewFloat(c)
}

// ItemExpr renders the full output expression including aggregation.
func (p Projection) ItemExpr() sqldb.Expr {
	if p.CountStar {
		return &sqldb.AggExpr{Fn: sqldb.AggCount, Star: true}
	}
	f := p.FuncExpr()
	if p.Agg == sqldb.AggNone {
		return f
	}
	return &sqldb.AggExpr{Fn: p.Agg, Arg: f, Distinct: p.Distinct}
}

// OrderItem is one extracted ORDER BY key: the output column index it
// refers to and the sort direction.
type OrderItem struct {
	OutputIndex int
	OutputName  string
	Desc        bool
}

func (o OrderItem) String() string {
	dir := "asc"
	if o.Desc {
		dir = "desc"
	}
	return o.OutputName + " " + dir
}

// Extraction is the full output of an UNMASQUE run: the assembled
// query plus every intermediate artifact for inspection.
type Extraction struct {
	// Query is the assembled Q_E.
	Query *sqldb.SelectStmt
	// SQL is the canonical text of Q_E.
	SQL string

	Tables         []string
	JoinPredicates []sqldb.SchemaEdge
	Filters        []FilterPredicate
	Projections    []Projection
	GroupBy        []sqldb.ColRef
	Having         []HavingPredicate
	OrderBy        []OrderItem
	Limit          int64
	UngroupedAgg   bool

	// CheckerVerified reports whether the final verification module
	// ran and found no discrepancy.
	CheckerVerified bool

	Stats Stats

	// Trace is the flattened span tree of the extraction — one span
	// per pipeline phase and scheduled probe, in deterministic
	// pre-order — when Config.Tracer was set; nil otherwise.
	Trace []obs.SpanEvent
}

// Summary renders a one-paragraph description of the extracted query
// structure (used by experiment reports, e.g. the Wilos clause table).
func (e *Extraction) Summary() string {
	var parts []string
	hasAgg := false
	native := 0
	for _, p := range e.Projections {
		if p.Agg != sqldb.AggNone || p.CountStar {
			hasAgg = true
		} else {
			native++
		}
	}
	if native > 0 {
		parts = append(parts, "Project")
	}
	if len(e.Filters) > 0 {
		parts = append(parts, "Filter")
	}
	if len(e.JoinPredicates) > 0 {
		parts = append(parts, "Join")
	}
	if len(e.GroupBy) > 0 {
		parts = append(parts, "Group By")
	}
	if hasAgg {
		parts = append(parts, "Aggregation")
	}
	if len(e.Having) > 0 {
		parts = append(parts, "Having")
	}
	if len(e.OrderBy) > 0 {
		parts = append(parts, "Order By")
	}
	if e.Limit > 0 {
		parts = append(parts, "Limit")
	}
	if len(parts) == 0 {
		return "Project"
	}
	return strings.Join(parts, ", ")
}

// sortedColRefs returns the refs in deterministic order.
func sortedColRefs(refs []sqldb.ColRef) []sqldb.ColRef {
	out := append([]sqldb.ColRef(nil), refs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ExtractionError wraps pipeline failures with the module they arose
// in, so callers can tell scope violations from internal errors.
type ExtractionError struct {
	Module string
	Err    error
}

func (e *ExtractionError) Error() string {
	return fmt.Sprintf("unmasque %s: %v", e.Module, e.Err)
}

func (e *ExtractionError) Unwrap() error { return e.Err }

func moduleErr(module string, err error) error {
	if err == nil {
		return nil
	}
	return &ExtractionError{Module: module, Err: err}
}

func moduleErrf(module, format string, args ...any) error {
	return &ExtractionError{Module: module, Err: fmt.Errorf(format, args...)}
}
