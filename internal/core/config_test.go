package core

import (
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	ok := DefaultConfig()
	if err := ok.validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero probe timeout", func(c *Config) { c.ProbeTimeout = 0 }},
		{"negative sample fraction", func(c *Config) { c.SampleFraction = -0.5 }},
		{"fraction one", func(c *Config) { c.SampleFraction = 1 }},
		{"tiny threshold", func(c *Config) { c.SampleThreshold = 1 }},
		{"bad policy", func(c *Config) { c.HalvingPolicy = "fastest" }},
		{"ratio one", func(c *Config) { c.LimitRatio = 1 }},
		{"limit max below start", func(c *Config) { c.LimitMax = 2; c.LimitStart = 50 }},
	}
	for _, cse := range cases {
		cfg := DefaultConfig()
		cse.mutate(&cfg)
		if err := cfg.validate(); err == nil {
			t.Errorf("%s: expected validation error", cse.name)
		}
	}
}

func TestConfigNormalization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HalvingPolicy = ""
	cfg.LimitStart = 1
	cfg.ExecTimeout = 0
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.HalvingPolicy != "largest" {
		t.Errorf("policy default: %q", cfg.HalvingPolicy)
	}
	if cfg.LimitStart < 4 {
		t.Errorf("limit start floor: %d", cfg.LimitStart)
	}
	if cfg.ExecTimeout <= 0 {
		t.Error("exec timeout default not applied")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := Stats{
		Total:        10 * time.Second,
		Sampling:     3 * time.Second,
		Partitioning: 2 * time.Second,
		Checker:      1 * time.Second,
	}
	if s.Minimizer() != 5*time.Second {
		t.Errorf("Minimizer = %v", s.Minimizer())
	}
	if s.Remaining() != 4*time.Second {
		t.Errorf("Remaining = %v", s.Remaining())
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestExtractionErrorWrapping(t *testing.T) {
	err := moduleErrf("filters", "bad column %s", "x")
	var extErr *ExtractionError
	ok := false
	if e, isExt := err.(*ExtractionError); isExt {
		extErr, ok = e, true
	}
	if !ok || extErr.Module != "filters" {
		t.Fatalf("module error shape: %v", err)
	}
	if moduleErr("m", nil) != nil {
		t.Error("moduleErr(nil) should be nil")
	}
}
