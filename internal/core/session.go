package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"unmasque/internal/analysis/eqcverify"
	"unmasque/internal/app"
	"unmasque/internal/obs"
	"unmasque/internal/sqldb"
)

// Session carries the state of one extraction run. It is created by
// Extract and threaded through the pipeline modules. The pipeline
// itself advances sequentially, but individual modules fan
// independent probes out over the scheduler's worker pool
// (scheduler.go); during such a fan-out the Session fields the
// workers read are frozen, every worker operates on its own database
// clone, and the only shared mutable state — the run cache and the
// probe counters — is internally synchronized.
type Session struct {
	cfg Config
	exe *app.CountingExecutable
	rng *rand.Rand

	// ctx is the extraction's lifetime: cancellation or deadline
	// expiry aborts the pipeline between probes (and propagates into
	// in-flight executable runs through app.RunCtx). Never nil;
	// Extract installs context.Background().
	ctx context.Context

	// cache memoizes completed executions of E by database
	// fingerprint; nil when Config.DisableRunCache is set.
	cache *runCache
	// shared is the durable cross-job tier (Config.SharedCache); nil
	// when absent or when the in-session cache is disabled (the shared
	// tier depends on its single-flight discipline).
	shared ProbeCache
	// parallelProbes counts probes dispatched through the worker pool.
	parallelProbes atomic.Int64

	// Observability hooks (Config.Tracer/Ledger/Metrics; all may be
	// nil — the record sites are nil-safe). phaseName/phaseSeq/
	// phaseSpan identify the pipeline phase currently executing; they
	// are written only by the main goroutine between fan-outs, so pool
	// workers read them race-free (happens-before via goroutine
	// creation).
	tracer     *obs.Tracer
	ledger     *obs.Ledger
	metrics    *obs.Metrics
	logger     *obs.Logger
	phaseName  string
	phaseSeq   int
	phaseSpan  *obs.Span
	phaseStart time.Time

	// source is the provided D_I; it is only read (plus temporarily
	// renamed tables during from-clause probing on the silo clone).
	source *sqldb.Database
	// silo is the working database; after minimization it holds D_1.
	silo *sqldb.Database

	stats Stats

	// Pipeline artifacts, in extraction order.
	tables      []string
	schemas     map[string]sqldb.TableSchema
	joinEdges   []sqldb.SchemaEdge
	components  []joinComponent
	compOf      map[sqldb.ColRef]int
	filters     map[sqldb.ColRef]FilterPredicate
	filterOrder []sqldb.ColRef
	// filtersKnown flips once the filter module has run; before that
	// (having-mode group-by) synthetic instances must source values
	// from D_1 rather than the s-value generator.
	filtersKnown bool
	projections  []Projection
	groupBy      []sqldb.ColRef
	groupBySet   map[sqldb.ColRef]bool
	ungroupedAgg bool
	orderBy      []OrderItem
	limit        int64
	having       []HavingPredicate

	// pinned is scratch state for aggregation probes: probe-time
	// values of non-varied function arguments.
	pinned map[sqldb.ColRef]sqldb.Value

	// baseline is E(D_1), used as the reference by the mutation
	// modules.
	baseline *sqldb.Result
}

// joinComponent is one clique of join-equal columns (a connected
// component of the extracted join graph).
type joinComponent struct {
	cols []sqldb.ColRef // sorted
}

// tablesOf lists the tables touched by the component.
func (c joinComponent) tablesOf() map[string]bool {
	out := map[string]bool{}
	for _, col := range c.cols {
		out[col.Table] = true
	}
	return out
}

// Extract runs the full UNMASQUE pipeline against the black-box
// executable exe on database instance di, which must yield a
// populated result. On success the returned Extraction carries the
// assembled query and per-module statistics.
func Extract(exe app.Executable, di *sqldb.Database, cfg Config) (*Extraction, error) {
	return ExtractContext(context.Background(), exe, di, cfg)
}

// ExtractContext is Extract under a caller-supplied context: when ctx
// is cancelled or its deadline expires, the pipeline aborts between
// probes (in-flight executable runs are interrupted too) and the
// error — wrapped in an ExtractionError naming the phase it surfaced
// in — satisfies errors.Is against ctx.Err(). This is the entry point
// of long-running callers (the extraction service, tests with
// deadlines); Extract remains the thin background-context wrapper.
func ExtractContext(ctx context.Context, exe app.Executable, di *sqldb.Database, cfg Config) (*Extraction, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.validate(); err != nil {
		return nil, moduleErr("config", err)
	}
	// Executables that declare concurrent Run unsafe are serialized
	// before the probe scheduler can fan them out; their probes then
	// run one at a time with no extraction-visible difference.
	if rep, ok := exe.(app.ConcurrencyReporter); ok && !rep.ConcurrentRunSafe() {
		exe = &app.Serialized{Inner: exe}
	}
	s := &Session{
		cfg:        cfg,
		ctx:        ctx,
		exe:        &app.CountingExecutable{Inner: exe},
		rng:        newRNG(cfg.Seed),
		source:     di,
		schemas:    map[string]sqldb.TableSchema{},
		compOf:     map[sqldb.ColRef]int{},
		filters:    map[sqldb.ColRef]FilterPredicate{},
		groupBySet: map[sqldb.ColRef]bool{},
		tracer:     cfg.Tracer,
		ledger:     cfg.Ledger,
		metrics:    cfg.Metrics,
		logger:     cfg.Logger,
	}
	if !cfg.DisableRunCache {
		s.cache = newRunCache()
		s.shared = cfg.SharedCache
	}
	// Select the probe execution engine. The silo and every probe
	// clone inherit the mode (and share di's engine counters), so one
	// knob switches the whole extraction.
	mode, err := sqldb.ParseExecMode(cfg.ExecMode)
	if err != nil {
		return nil, moduleErr("config", err)
	}
	di.SetExecMode(mode)
	engineStart := di.EngineCounters()
	start := s.cfg.Clock()
	s.stats.RowsInitial = di.TotalRows()

	steps := []struct {
		name string
		slot *time.Duration
		fn   func() error
	}{
		{"from-clause", &s.stats.FromClause, s.extractFromClause},
		{"minimizer", nil, s.minimize}, // times itself (two phases)
		{"join-graph", &s.stats.JoinGraph, s.extractJoinGraph},
	}
	if cfg.ExtractHaving {
		steps = append(steps,
			// Section 7 pipeline: group-by immediately after joins,
			// then unified filter/having extraction.
			[]struct {
				name string
				slot *time.Duration
				fn   func() error
			}{
				{"group-by", &s.stats.GroupBy, s.extractGroupBy},
				{"filters+having", &s.stats.Having, s.extractFiltersAndHaving},
				{"disjunctions", &s.stats.Filters, s.refineDisjunctions},
				{"projection", &s.stats.Projection, s.extractProjections},
				{"aggregation", &s.stats.Aggregation, s.extractAggregations},
				{"order-by", &s.stats.OrderBy, s.extractOrderBy},
				{"limit", &s.stats.Limit, s.extractLimit},
			}...)
	} else {
		steps = append(steps,
			[]struct {
				name string
				slot *time.Duration
				fn   func() error
			}{
				{"filters", &s.stats.Filters, s.extractFilters},
				{"disjunctions", &s.stats.Filters, s.refineDisjunctions},
				{"projection", &s.stats.Projection, s.extractProjections},
				{"group-by", &s.stats.GroupBy, s.extractGroupBy},
				{"aggregation", &s.stats.Aggregation, s.extractAggregations},
				{"order-by", &s.stats.OrderBy, s.extractOrderBy},
				{"limit", &s.stats.Limit, s.extractLimit},
			}...)
	}

	for _, step := range steps {
		// Cancellation is honoured at phase granularity here and at
		// probe granularity inside each phase (probeStep/runMemoized).
		if err := ctx.Err(); err != nil {
			return nil, moduleErr(step.name, err)
		}
		span := s.beginPhase(step.name)
		var err error
		if step.slot != nil {
			err = s.timed(step.slot, step.fn)
		} else {
			err = step.fn()
		}
		span.EndErr(err)
		s.endPhase(step.name, err)
		if err != nil {
			return nil, moduleErr(step.name, err)
		}
	}

	span := s.beginPhase("assemble")
	ext, err := s.assemble()
	span.EndErr(err)
	s.endPhase("assemble", err)
	if err != nil {
		return nil, moduleErr("assembler", err)
	}
	if !cfg.SkipChecker {
		span := s.beginPhase("checker")
		err := s.timed(&s.stats.Checker, func() error { return s.check(ext) })
		span.EndErr(err)
		s.endPhase("checker", err)
		if err != nil {
			return nil, moduleErr("checker", err)
		}
		ext.CheckerVerified = true
	}
	if cfg.VerifyEQC {
		// Static class membership is orthogonal to the checker's
		// instance equivalence: the checker compares results, this
		// guard proves Q_E has the *shape* the paper's identifiability
		// argument covers. Disjunctive single-column predicates are
		// in-class exactly when the Section 9 extension extracted them.
		span := s.beginPhase("eqc-verify")
		err := s.timed(&s.stats.Checker, func() error {
			diags := eqcverify.Verify(ext.Query, s.source.Schemas(),
				eqcverify.Options{AllowDisjunction: cfg.ExtractDisjunction})
			return eqcverify.Error(diags)
		})
		span.EndErr(err)
		s.endPhase("eqc-verify", err)
		if err != nil {
			return nil, moduleErr("eqc-verify", err)
		}
	}
	s.stats.Total = s.cfg.Clock().Sub(start)
	s.stats.AppInvocations = s.exe.Invocations()
	s.stats.Workers = s.cfg.Workers
	s.stats.ParallelProbes = s.parallelProbes.Load()
	s.stats.CacheEnabled = s.cache != nil
	if s.cache != nil {
		s.stats.CacheHits = s.cache.hits.Load()
		s.stats.CacheMisses = s.cache.misses.Load()
		s.stats.DiskCacheHits = s.cache.diskHits.Load()
	}
	// Engine counters are deltas over this extraction: di (and its
	// shared counters) may serve many sequential extractions.
	s.stats.ExecMode = mode.String()
	engineEnd := di.EngineCounters()
	s.stats.IndexBuilds = engineEnd.IndexBuilds - engineStart.IndexBuilds
	s.stats.IndexHits = engineEnd.IndexHits - engineStart.IndexHits
	s.stats.RangeBuilds = engineEnd.RangeBuilds - engineStart.RangeBuilds
	s.stats.RangeHits = engineEnd.RangeHits - engineStart.RangeHits
	s.stats.JoinBuildsReused = engineEnd.JoinReuses - engineStart.JoinReuses
	s.stats.VectorBatches = engineEnd.VectorBatches - engineStart.VectorBatches
	// Bridge the engine deltas into the metrics registry so a scrape of
	// a long-lived process accumulates them across extractions.
	s.metrics.Counter("engine_index_builds").Add(s.stats.IndexBuilds)
	s.metrics.Counter("engine_index_hits").Add(s.stats.IndexHits)
	s.metrics.Counter("engine_range_builds").Add(s.stats.RangeBuilds)
	s.metrics.Counter("engine_range_hits").Add(s.stats.RangeHits)
	s.metrics.Counter("engine_join_builds_reused").Add(s.stats.JoinBuildsReused)
	s.metrics.Counter("engine_vector_batches").Add(s.stats.VectorBatches)
	ext.Stats = s.stats
	s.tracer.Root().End()
	ext.Trace = s.tracer.Events()
	s.logger.Info("extraction complete",
		"total_ms", float64(s.stats.Total)/float64(time.Millisecond),
		"invocations", s.stats.AppInvocations,
		"exec_mode", s.stats.ExecMode)
	return ext, nil
}

// beginPhase opens the trace span of the next pipeline phase and
// points probe-event attribution at it. Phases run strictly
// sequentially on the main goroutine, so phase state needs no
// synchronization with the fan-outs it brackets.
func (s *Session) beginPhase(name string) *obs.Span {
	s.phaseSeq++
	s.phaseName = name
	s.phaseSpan = s.tracer.Root().Child(name, obs.SeqAuto)
	s.phaseStart = s.cfg.Clock()
	return s.phaseSpan
}

// endPhase records the completed phase's wall time into the
// phase_ms.<name> histogram and emits a structured debug record. It
// pairs with beginPhase; both run on the main goroutine only.
func (s *Session) endPhase(name string, err error) {
	ms := float64(s.cfg.Clock().Sub(s.phaseStart)) / float64(time.Millisecond)
	s.metrics.Histogram("phase_ms." + name).Observe(ms)
	if err != nil {
		s.logger.WithPhase(name).Warn("phase failed", "ms", ms, "err", err.Error())
		return
	}
	s.logger.WithPhase(name).Debug("phase done", "ms", ms)
}

// run executes E against db with the general execution deadline,
// serving content-identical probes from the memoization cache. pc
// attributes the probe to its scheduler slot; sequential sites pass
// nil.
func (s *Session) run(pc *probeCtx, db *sqldb.Database) (*sqldb.Result, error) {
	return s.runMemoized(pc, db)
}

// populated runs E and reports whether the result is populated.
// Application-level execution failures are reported as unpopulated —
// within EQC a probe database can only produce rows, no rows, or (for
// out-of-scope hidden logic) an error we conservatively treat as "no
// rows". Missing-table, timeout and context-cancellation errors are
// real faults and are returned.
func (s *Session) populated(pc *probeCtx, db *sqldb.Database) (bool, error) {
	res, err := s.run(pc, db)
	if err != nil {
		if errors.Is(err, sqldb.ErrNoSuchTable) || errors.Is(err, app.ErrTimeout) || isCtxErr(err) {
			return false, err
		}
		return false, nil
	}
	return res.Populated(), nil
}

// mustResult runs E and requires a usable result.
func (s *Session) mustResult(pc *probeCtx, db *sqldb.Database) (*sqldb.Result, error) {
	res, err := s.run(pc, db)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// d1Table fetches a table of the minimized working database.
func (s *Session) d1Table(name string) (*sqldb.Table, error) {
	return s.silo.Table(name)
}

// d1Value reads the single-row value of a column in D_1.
func (s *Session) d1Value(col sqldb.ColRef) (sqldb.Value, error) {
	t, err := s.silo.Table(col.Table)
	if err != nil {
		return sqldb.Value{}, err
	}
	if t.RowCount() == 0 {
		return sqldb.Value{}, fmt.Errorf("table %s is empty in D1", col.Table)
	}
	return t.Get(0, col.Column)
}

// cloneD1 copies the minimized database for one mutation probe. Only
// the extracted tables carry rows, so the copy is a handful of rows.
func (s *Session) cloneD1() *sqldb.Database { return s.silo.Clone() }

// isKeyColumn reports whether the column participates in the schema
// graph's key linkages (such columns carry no filter predicates under
// EQC).
func (s *Session) isKeyColumn(col sqldb.ColRef) bool {
	sch, ok := s.schemas[col.Table]
	if !ok {
		return false
	}
	return sch.IsKey(col.Column)
}

// inJoinGraph reports whether the column is part of the extracted
// join graph J_E.
func (s *Session) inJoinGraph(col sqldb.ColRef) bool {
	_, ok := s.compOf[col]
	return ok
}

// componentOf returns the join component of a column, or nil.
func (s *Session) componentOf(col sqldb.ColRef) *joinComponent {
	if i, ok := s.compOf[col]; ok {
		return &s.components[i]
	}
	return nil
}

// allColumns lists every column of the extracted tables in
// deterministic order.
func (s *Session) allColumns() []sqldb.ColRef {
	var out []sqldb.ColRef
	for _, t := range s.tables {
		for _, c := range s.schemas[t].Columns {
			out = append(out, sqldb.ColRef{Table: t, Column: c.Name})
		}
	}
	return out
}

// column returns the schema definition of a column.
func (s *Session) column(col sqldb.ColRef) (sqldb.Column, error) {
	sch, ok := s.schemas[col.Table]
	if !ok {
		return sqldb.Column{}, fmt.Errorf("table %s not in T_E", col.Table)
	}
	return sch.Column(col.Column)
}

// eqFiltered reports whether the column is pinned by an equality
// filter (such columns have a single s-value and are skipped by
// group-by and order-by generation).
func (s *Session) eqFiltered(col sqldb.ColRef) bool {
	f, ok := s.filters[col]
	return ok && f.IsEquality()
}
