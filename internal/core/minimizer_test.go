package core_test

import (
	"context"
	"testing"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/sqldb"
)

// TestMinimizerPoliciesAllReachSingleRow: every halving policy must
// reach a single-row D_1 and a correct extraction.
func TestMinimizerPoliciesAllReachSingleRow(t *testing.T) {
	for _, policy := range []string{"largest", "smallest", "random", "roundrobin"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			db := warehouseDB(t, 30, 80, 300)
			cfg := defaultCfg()
			cfg.HalvingPolicy = policy
			ext := extractHidden(t, db,
				"select c_name from customer, orders where c_custkey = o_custkey and o_totalprice >= 100",
				cfg)
			if ext.Stats.RowsFinal > 5 {
				t.Errorf("policy %s left %d rows", policy, ext.Stats.RowsFinal)
			}
		})
	}
}

// TestMinimizerSamplingDisabled still converges, just without the
// preprocessing phase.
func TestMinimizerSamplingDisabled(t *testing.T) {
	db := warehouseDB(t, 30, 80, 300)
	cfg := defaultCfg()
	cfg.DisableSampling = true
	ext := extractHidden(t, db, "select o_orderkey from orders where o_shippriority >= 1", cfg)
	if ext.Stats.Sampling != 0 {
		t.Errorf("sampling ran despite being disabled: %v", ext.Stats.Sampling)
	}
	if ext.Stats.Partitioning == 0 {
		t.Error("partitioning did not run")
	}
}

// TestMinimizerPreservesSelectiveWitness: with a highly selective
// filter (one qualifying row), minimization must keep exactly that
// witness.
func TestMinimizerPreservesSelectiveWitness(t *testing.T) {
	db := warehouseDB(t, 30, 60, 200)
	// Pin one order to a unique extreme price.
	orders, err := db.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	if err := orders.Set(17, "o_totalprice", sqldb.NewFloat(499999.99)); err != nil {
		t.Fatal(err)
	}
	ext := extractHidden(t, db,
		"select o_orderkey, o_totalprice from orders where o_totalprice >= 499999",
		defaultCfg())
	f := ext.Filters[0]
	if !f.HasLo || f.Lo.AsFloat() != 499999 {
		t.Errorf("selective filter bound: %+v", f)
	}
}

// TestEmptyResultRejected: the framework requires a populated result
// on D_I; extraction must fail cleanly otherwise.
func TestEmptyResultRejected(t *testing.T) {
	db := warehouseDB(t, 10, 20, 50)
	exe := app.MustSQLExecutable("empty", "select o_orderkey from orders where o_totalprice >= 99999999")
	if _, err := core.Extract(exe, db, defaultCfg()); err == nil {
		t.Fatal("extraction over an empty result must fail")
	}
}

// TestApplicationTouchingNoTables is rejected with a useful error.
func TestApplicationTouchingNoTables(t *testing.T) {
	db := warehouseDB(t, 5, 10, 20)
	exe := app.NewImperativeExecutable("notables",
		func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
			return &sqldb.Result{Columns: []string{"x"}, Rows: []sqldb.Row{{sqldb.NewInt(1)}}}, nil
		}, "")
	_, err := core.Extract(exe, db, defaultCfg())
	if err == nil {
		t.Fatal("application that reads no tables must be rejected")
	}
}

// TestInvocationCountBounded: the paper reports "typically a few
// hundred" executions; guard against regressions blowing that up.
func TestInvocationCountBounded(t *testing.T) {
	db := warehouseDB(t, 40, 120, 500)
	ext := extractHidden(t, db, `
		select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
		       o_orderdate, o_shippriority
		from customer, orders, lineitem
		where c_mktsegment = 'BUILDING'
		  and c_custkey = o_custkey
		  and l_orderkey = o_orderkey
		  and o_orderdate < date '1995-03-15'
		  and l_shipdate > date '1995-03-15'
		group by l_orderkey, o_orderdate, o_shippriority
		order by revenue desc, o_orderdate
		limit 10`, defaultCfg())
	if n := ext.Stats.AppInvocations; n > 1000 {
		t.Errorf("extraction used %d application invocations; expected a few hundred", n)
	}
}
