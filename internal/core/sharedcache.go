package core

import "unmasque/internal/sqldb"

// ProbeCache is the persistent, cross-job tier of the run-memoization
// cache (Config.SharedCache). The concrete implementation lives in
// internal/storage (a durable append-only log shared by every job of
// a daemon, scoped per executable namespace); core depends only on
// this interface so the pipeline packages stay free of file I/O.
//
// Contract:
//
//   - Get returns the recorded outcome of executing E on a database
//     with fingerprint fp, or ok=false. A returned result is private
//     to the caller (implementations clone).
//   - Put records an outcome. It must be idempotent — outcomes are
//     deterministic functions of (E, database content), so concurrent
//     or repeated puts of one fingerprint carry equal payloads.
//   - The scheduler never passes timeouts or context cancellations to
//     Put; deterministic application-level errors ARE stored, exactly
//     as the in-memory tier caches them.
//   - Implementations must be safe for concurrent use by all workers
//     of all concurrently running jobs.
type ProbeCache interface {
	Get(fp sqldb.Fingerprint) (res *sqldb.Result, err error, ok bool)
	Put(fp sqldb.Fingerprint, res *sqldb.Result, err error)
}
