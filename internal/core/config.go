// Package core implements UNMASQUE, the paper's hidden-query
// extraction pipeline. Given a black-box application executable and a
// database instance on which it produces a populated result, the
// pipeline recovers the hidden query by active learning: it mutates
// and synthesizes database instances, reruns the application, and
// observes only the results.
//
// The pipeline follows Figure 3 of the paper: from-clause detection,
// database minimization, equi-join and filter extraction over mutated
// single-row databases, then projection, group-by, aggregation,
// order-by and limit extraction over generated databases, concluding
// with assembly and a correctness checker. The having clause uses the
// reworked Section 7 pipeline.
package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"unmasque/internal/obs"
	"unmasque/internal/sqldb"
)

// Config tunes the extraction pipeline. The zero value is NOT valid;
// use DefaultConfig.
type Config struct {
	// ProbeTimeout bounds each from-clause probe execution (the paper
	// uses 100 ms in the schema-scaling experiment). Only renames are
	// probed under this deadline; all other pipeline executions use
	// ExecTimeout.
	ProbeTimeout time.Duration

	// ExecTimeout bounds every non-from-clause application execution
	// (minimizer probes on still-large databases can legitimately
	// take a while).
	ExecTimeout time.Duration

	// SampleFraction is the per-pass Bernoulli sampling rate of the
	// minimizer's preprocessing phase.
	SampleFraction float64

	// SampleThreshold is the row count below which a table is no
	// longer sampled (halving takes over).
	SampleThreshold int

	// DisableSampling turns the minimizer's sampling preprocessing
	// off (ablation experiment E10).
	DisableSampling bool

	// HalvingPolicy picks the next table to halve: "largest"
	// (default, the paper's empirically best policy), "smallest",
	// "roundrobin" or "random".
	HalvingPolicy string

	// LimitStart and LimitRatio parameterize the geometric result-
	// cardinality progression of limit extraction (paper: a = max(4,
	// |R_I|), r = 10).
	LimitStart int
	LimitRatio int

	// LimitMax caps the largest generated cardinality when probing
	// for limit; beyond it the query is concluded to have no limit.
	LimitMax int

	// CheckerRounds is the number of randomized databases the
	// extraction checker compares E and Q_E on.
	CheckerRounds int

	// CheckerRows is the per-table row count of those databases.
	CheckerRows int

	// SkipChecker disables the final verification module.
	SkipChecker bool

	// BoundedCheck, when positive, upgrades the checker's mutant stage
	// from instance equivalence to a bounded symbolic proof: the
	// assembled Q_E is compared against the XData mutant catalogue
	// with the internal/analysis/eqcequiv checker over all canonical
	// databases of up to BoundedCheck rows per table. Mutants the
	// checker disproves are killed without invoking the executable
	// (their counterexample database is planted as the witness), so
	// executable runs per extraction drop. The proof bound is recorded
	// in Stats.BoundedBound. Zero keeps the classical instance suite.
	BoundedCheck int

	// VerifyEQC runs the static extractable-class verifier
	// (internal/analysis/eqcverify) over the assembled query after the
	// checker: extraction fails if Q_E falls outside the class the
	// paper's guarantees cover, even when its results happen to match
	// the application on every checker instance. The extraction test
	// suites enable it unconditionally.
	VerifyEQC bool

	// ExtractDisjunction enables the Section 9 future-work extension:
	// after conjunctive filter extraction, every candidate column is
	// re-probed for disjunctive predicates — unions of numeric/date
	// intervals (via a grid scan plus boundary binary searches) and
	// string IN-sets (via enumeration of the source column's distinct
	// values). Segments narrower than domain/DisjunctionScanPoints
	// and strings absent from D_I remain invisible; the checker's
	// initial-instance comparison flags such residuals.
	ExtractDisjunction bool

	// DisjunctionScanPoints is the grid resolution of the numeric
	// disjunction scan (default 48).
	DisjunctionScanPoints int

	// ExtractHaving switches to the Section 7 pipeline that also
	// extracts having predicates (with the paper's restriction that
	// filter and having attribute sets are disjoint).
	ExtractHaving bool

	// ExecMode selects the sqldb execution engine for every probe the
	// pipeline runs: "vector" (default; columnar batches, secondary
	// hash indexes, hash-join build reuse) or "tree" (the original
	// per-row engine, kept as the differential-testing oracle). The
	// extracted SQL is identical under both — only probe wall time
	// changes.
	ExecMode string

	// Seed drives all randomized choices, making extraction
	// deterministic for a given input.
	Seed int64

	// Workers bounds the probe scheduler's worker pool: independent
	// probes (per-table from-clause renames, per-column filter
	// extraction, per-unit projection probes) fan out over up to this
	// many goroutines, each operating on its own database clone. Zero
	// selects runtime.GOMAXPROCS(0); 1 forces the fully sequential
	// pipeline. The extracted SQL text is identical for every worker
	// count — parallelism only changes wall-clock time.
	Workers int

	// DisableRunCache turns off executable-run memoization. With the
	// cache on (default), completed executions of E are keyed by a
	// content fingerprint of the probe database, and a probe on a
	// content-identical instance returns the recorded result without
	// running E again.
	DisableRunCache bool

	// CacheMaxRows bounds the instances eligible for run memoization:
	// databases with more total rows than this are executed directly,
	// since fingerprinting them would rival execution cost. Zero
	// selects the default of 256 (generous for the paper's single-row
	// probe databases, far below any realistic D_I).
	CacheMaxRows int

	// SharedCache, when set, attaches a durable cross-job probe cache
	// (typically storage.ProbeCache.Namespace) as a second memoization
	// tier: completed executions are persisted and consulted before any
	// application invocation, including the from-clause rename probes,
	// so a repeat extraction of the same (executable, instance) pair
	// can finish with zero invocations. The shared tier requires the
	// in-session run cache for its single-flight discipline; with
	// DisableRunCache set it is ignored. The namespace must uniquely
	// identify the executable — fingerprints cover only database
	// content, and two applications probed on identical instances
	// produce different results.
	SharedCache ProbeCache

	// DiskCacheMaxRows bounds the instances eligible for the shared
	// persistent tier. It is deliberately far above CacheMaxRows: disk
	// entries cost no RAM and survive the job, so even the full initial
	// instance's probe results are worth keeping. Zero selects the
	// default of 1,000,000 rows.
	DiskCacheMaxRows int

	// Tracer, when set, receives the extraction's span tree: one span
	// per pipeline phase and one per scheduled probe. The finished
	// tree is also flattened onto Extraction.Trace. Nil disables
	// tracing at zero cost.
	Tracer *obs.Tracer

	// Ledger, when set, records one obs.ProbeEvent per executable
	// invocation or memoization-cache hit. Its canonical JSONL
	// serialization is byte-identical across worker counts once
	// volatile fields are stripped (obs.StripVolatile).
	Ledger *obs.Ledger

	// Metrics, when set, receives probe/cache counters and latency
	// histograms; publishable through expvar (obs.Metrics.Publish).
	// Per-phase wall time lands in phase_ms.<phase> histograms and the
	// engine counter deltas are bridged into engine_* counters at the
	// end of the extraction.
	Metrics *obs.Metrics

	// Logger, when set, receives structured pipeline lifecycle records
	// (phase completions with durations, extraction failures). Nil
	// disables logging at zero cost; all record sites are nil-safe.
	Logger *obs.Logger

	// Clock supplies the pipeline's wall-clock readings (phase timing,
	// probe latencies). Nil selects time.Now. Injectable so the
	// deterministic pipeline packages never call time.Now directly
	// (golint GL007) and so tests can freeze time.
	Clock func() time.Time
}

// DefaultConfig returns the paper-faithful parameterization.
func DefaultConfig() Config {
	return Config{
		ProbeTimeout:    250 * time.Millisecond,
		ExecTimeout:     5 * time.Minute,
		SampleFraction:  0.1,
		SampleThreshold: 64,
		HalvingPolicy:   "largest",
		LimitStart:      4,
		LimitRatio:      10,
		LimitMax:        4000,
		CheckerRounds:   3,
		CheckerRows:     40,
		Seed:            1,
	}
}

// validate normalizes and sanity-checks the configuration.
func (c *Config) validate() error {
	if c.ProbeTimeout <= 0 {
		return fmt.Errorf("ProbeTimeout must be positive")
	}
	if c.ExecTimeout <= 0 {
		c.ExecTimeout = 5 * time.Minute
	}
	if c.SampleFraction <= 0 || c.SampleFraction >= 1 {
		return fmt.Errorf("SampleFraction must be in (0,1)")
	}
	if c.SampleThreshold < 2 {
		return fmt.Errorf("SampleThreshold must be at least 2")
	}
	switch strings.ToLower(c.HalvingPolicy) {
	case "", "largest":
		c.HalvingPolicy = "largest"
	case "smallest", "random", "roundrobin":
		c.HalvingPolicy = strings.ToLower(c.HalvingPolicy)
	default:
		return fmt.Errorf("unknown halving policy %q", c.HalvingPolicy)
	}
	if c.LimitStart < 4 {
		c.LimitStart = 4
	}
	if c.LimitRatio < 2 {
		return fmt.Errorf("LimitRatio must be at least 2")
	}
	if c.LimitMax < c.LimitStart {
		return fmt.Errorf("LimitMax must be at least LimitStart")
	}
	if c.DisjunctionScanPoints <= 0 {
		c.DisjunctionScanPoints = 48
	}
	if c.Workers < 0 {
		return fmt.Errorf("Workers must be non-negative")
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheMaxRows < 0 {
		return fmt.Errorf("CacheMaxRows must be non-negative")
	}
	if c.CacheMaxRows == 0 {
		c.CacheMaxRows = 256
	}
	if c.DiskCacheMaxRows < 0 {
		return fmt.Errorf("DiskCacheMaxRows must be non-negative")
	}
	if c.DiskCacheMaxRows == 0 {
		c.DiskCacheMaxRows = 1_000_000
	}
	if c.BoundedCheck < 0 {
		return fmt.Errorf("BoundedCheck must be non-negative")
	}
	if mode, err := sqldb.ParseExecMode(strings.ToLower(c.ExecMode)); err != nil {
		return err
	} else {
		c.ExecMode = mode.String()
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return nil
}

// Stats records per-module wall-clock time and application invocation
// counts — the breakdown reported in Figures 9-11 of the paper.
type Stats struct {
	Total        time.Duration
	SiloSetup    time.Duration
	FromClause   time.Duration
	Sampling     time.Duration
	Partitioning time.Duration
	JoinGraph    time.Duration
	Filters      time.Duration
	Projection   time.Duration
	GroupBy      time.Duration
	Aggregation  time.Duration
	OrderBy      time.Duration
	Limit        time.Duration
	Having       time.Duration
	Checker      time.Duration

	// AppInvocations counts completed executions of E during
	// extraction (Section 6.2 reports "typically a few hundred").
	// Cache hits do not run E and therefore do not count.
	AppInvocations int64

	// Workers records the resolved worker-pool size the extraction ran
	// with (Config.Workers after defaulting).
	Workers int

	// ParallelProbes counts probes that were dispatched through the
	// worker pool (from-clause renames, per-column filter extractions,
	// projection unit and corner probes). Sequential probes — the
	// minimizer's dependent halvings, binary-search steps — are not
	// included.
	ParallelProbes int64

	// CacheEnabled records whether the run-memoization cache was on
	// for the extraction. When false, CacheHits and CacheMisses are
	// meaningless and reporting surfaces (Stats.String, -stats output)
	// omit them entirely rather than printing misleading zeros.
	CacheEnabled bool

	// CacheHits / CacheMisses count run-memoization outcomes: a hit is
	// a probe whose database fingerprint matched an earlier completed
	// execution, skipping E entirely.
	CacheHits   int64
	CacheMisses int64

	// DiskCacheHits counts probes served from the durable cross-job
	// tier (Config.SharedCache): the fingerprint matched an execution
	// persisted by an earlier job (or an earlier probe of this one),
	// and E was not run. Reported distinctly from CacheHits so a warm
	// daemon's zero-invocation extractions are visible as such.
	DiskCacheHits int64

	// MinimizerRows traces the database size before and after
	// minimization.
	RowsInitial       int
	RowsAfterSampling int
	RowsFinal         int

	// BoundedBound is the k of the bounded equivalence proof the
	// checker ran (Config.BoundedCheck); zero when the classical
	// instance suite ran instead.
	BoundedBound int

	// Mutant accounting of the bounded checker: the catalogue size,
	// how many mutants were killed purely symbolically (a concrete
	// counterexample database found by enumeration, or disagreement
	// with the candidate replayed on a previously planted
	// counterexample — the executable is never invoked), how many were
	// killed against an application-observed witness database at zero
	// extra cost, how many were proven equivalent within the bound (no
	// kill possible at this scale, no run needed), and how many were
	// left to the classical instance fallback.
	MutantsTotal            int
	MutantsKilledStatic     int
	MutantsKilledWitness    int
	MutantsProvenEquivalent int
	MutantsUnresolved       int

	// ExecMode records the sqldb engine the extraction's probes ran on
	// (Config.ExecMode after defaulting).
	ExecMode string

	// Engine counters for this extraction (deltas of the silo's shared
	// sqldb.EngineStats between start and end — the provided database
	// may be reused across extractions, so absolutes would conflate
	// runs): secondary-index builds and lookup hits, hash-join build
	// sides reused from cache, and column batches gathered by the
	// vectorized scan. All zero under ExecMode "tree".
	IndexBuilds      int64
	IndexHits        int64
	RangeBuilds      int64
	RangeHits        int64
	JoinBuildsReused int64
	VectorBatches    int64
}

// CacheHitRate is the fraction of cache-eligible probes served from
// either memoization tier (in-session or persistent): with both tiers
// active, hits from each count towards the numerator and the
// denominator is every cache-eligible probe.
func (s *Stats) CacheHitRate() float64 {
	served := s.CacheHits + s.DiskCacheHits
	total := served + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}

// Minimizer is the total database-minimization time (sampling plus
// iterative partitioning) — the dominant cost in the paper's profile.
func (s *Stats) Minimizer() time.Duration { return s.Sampling + s.Partitioning }

// Remaining is the collective time of all non-minimizer extraction
// modules (the paper's "green" bar).
func (s *Stats) Remaining() time.Duration {
	return s.Total - s.Minimizer() - s.Checker
}

// String renders a compact one-line profile. The cache section is
// present only when the run cache was enabled: a disabled cache has
// no hit/miss counts, and printing zeros would misread as "enabled
// but cold".
func (s *Stats) String() string {
	line := fmt.Sprintf("total=%v minimizer=%v (sampling=%v partitioning=%v) rest=%v checker=%v invocations=%d rows %d->%d workers=%d parallel=%d",
		s.Total.Round(time.Millisecond), s.Minimizer().Round(time.Millisecond),
		s.Sampling.Round(time.Millisecond), s.Partitioning.Round(time.Millisecond),
		s.Remaining().Round(time.Millisecond), s.Checker.Round(time.Millisecond),
		s.AppInvocations, s.RowsInitial, s.RowsFinal,
		s.Workers, s.ParallelProbes)
	if s.CacheEnabled {
		line += fmt.Sprintf(" cache %d/%d", s.CacheHits, s.CacheHits+s.CacheMisses)
		if s.DiskCacheHits > 0 {
			line += fmt.Sprintf(" disk=%d", s.DiskCacheHits)
		}
	}
	if s.BoundedBound > 0 {
		line += fmt.Sprintf(" bounded-check k=%d mutants %d (static=%d witness=%d equivalent=%d unresolved=%d)",
			s.BoundedBound, s.MutantsTotal, s.MutantsKilledStatic, s.MutantsKilledWitness,
			s.MutantsProvenEquivalent, s.MutantsUnresolved)
	}
	if s.ExecMode != "" {
		line += fmt.Sprintf(" exec=%s", s.ExecMode)
		if s.ExecMode == "vector" {
			line += fmt.Sprintf(" (index builds=%d hits=%d range builds=%d hits=%d join-reuse=%d batches=%d)",
				s.IndexBuilds, s.IndexHits, s.RangeBuilds, s.RangeHits,
				s.JoinBuildsReused, s.VectorBatches)
		}
	}
	return line
}

// timed runs fn and adds its duration to *slot, reading the session
// clock (GL007: core never calls time.Now directly).
func (s *Session) timed(slot *time.Duration, fn func() error) error {
	start := s.cfg.Clock()
	err := fn()
	*slot += s.cfg.Clock().Sub(start)
	return err
}

// newRNG builds the session RNG.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
