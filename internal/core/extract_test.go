package core_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
)

// warehouseDB builds a deterministic three-table warehouse instance
// with enough rows to exercise the minimizer.
func warehouseDB(t testing.TB, customers, orders, lines int) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.CreateTable(sqldb.TableSchema{
		Name: "customer",
		Columns: []sqldb.Column{
			{Name: "c_custkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "c_name", Type: sqldb.TText, MaxLen: 25},
			{Name: "c_mktsegment", Type: sqldb.TText, MaxLen: 10},
			{Name: "c_acctbal", Type: sqldb.TFloat, Precision: 2, MinInt: -1000, MaxInt: 10000},
		},
		PrimaryKey: []string{"c_custkey"},
	}))
	must(db.CreateTable(sqldb.TableSchema{
		Name: "orders",
		Columns: []sqldb.Column{
			{Name: "o_orderkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "o_custkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "o_orderdate", Type: sqldb.TDate, MinInt: dateDays("1992-01-01"), MaxInt: dateDays("1998-12-31")},
			{Name: "o_totalprice", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 500000},
			{Name: "o_shippriority", Type: sqldb.TInt, MinInt: 0, MaxInt: 5},
		},
		PrimaryKey:  []string{"o_orderkey"},
		ForeignKeys: []sqldb.ForeignKey{{Column: "o_custkey", RefTable: "customer", RefColumn: "c_custkey"}},
	}))
	must(db.CreateTable(sqldb.TableSchema{
		Name: "lineitem",
		Columns: []sqldb.Column{
			{Name: "l_orderkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "l_linenumber", Type: sqldb.TInt, MinInt: 1, MaxInt: 7},
			{Name: "l_extendedprice", Type: sqldb.TFloat, Precision: 2, MinInt: 1, MaxInt: 100000},
			{Name: "l_discount", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 1},
			{Name: "l_shipdate", Type: sqldb.TDate, MinInt: dateDays("1992-01-01"), MaxInt: dateDays("1998-12-31")},
			{Name: "l_comment", Type: sqldb.TText, MaxLen: 44},
		},
		ForeignKeys: []sqldb.ForeignKey{{Column: "l_orderkey", RefTable: "orders", RefColumn: "o_orderkey"}},
	}))

	rng := rand.New(rand.NewSource(42))
	segments := []string{"BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"}
	i, f, s := sqldb.NewInt, sqldb.NewFloat, sqldb.NewText
	d := func(base string, offset int) sqldb.Value {
		v := sqldb.MustDate(base)
		return sqldb.NewDate(v.I + int64(offset))
	}
	for c := 1; c <= customers; c++ {
		must(db.Insert("customer",
			i(int64(c)), s("customer#"+strings.Repeat("0", 3)+itoa(c)),
			s(segments[rng.Intn(len(segments))]),
			f(float64(rng.Intn(1000000))/100-1000)))
	}
	for o := 1; o <= orders; o++ {
		must(db.Insert("orders",
			i(int64(o)), i(int64(1+rng.Intn(customers))),
			d("1992-01-01", rng.Intn(2500)),
			f(float64(rng.Intn(50000000))/100),
			i(int64(rng.Intn(3)))))
	}
	comments := []string{"quick fox", "special requests", "carefully packed", "express deposits", "pending accounts"}
	for l := 1; l <= lines; l++ {
		must(db.Insert("lineitem",
			i(int64(1+rng.Intn(orders))), i(int64(1+l%7)),
			f(float64(100+rng.Intn(9000000))/100),
			f(float64(rng.Intn(11))/100),
			d("1992-01-01", rng.Intn(2500)),
			s(comments[rng.Intn(len(comments))])))
	}
	return db
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func dateDays(s string) int64 { return sqldb.MustDate(s).I }

// extractHidden runs the full pipeline on a hidden SQL query and
// verifies semantic equivalence of the extraction on randomized
// instances (the checker does that internally; a checker pass plus a
// direct comparison on the original database is the test criterion).
func extractHidden(t *testing.T, db *sqldb.Database, sql string, cfg core.Config) *core.Extraction {
	t.Helper()
	exe := app.MustSQLExecutable(t.Name(), sql)

	// Sanity: populated result on the initial instance.
	res, err := exe.Run(context.Background(), db)
	if err != nil {
		t.Fatalf("hidden query does not run: %v", err)
	}
	if !res.Populated() {
		t.Fatalf("hidden query yields an empty result on the test instance; fixture bug")
	}

	ext, err := core.Extract(exe, db, cfg)
	if err != nil {
		t.Fatalf("extraction failed: %v\nhidden: %s", err, sql)
	}

	// Cross-check on the original database.
	want, err := exe.Run(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Execute(context.Background(), ext.Query)
	if err != nil {
		t.Fatalf("extracted query fails on D_I: %v\nextracted: %s", err, ext.SQL)
	}
	if len(ext.OrderBy) > 0 {
		if !core.OrderedEquivalent(want, got, ext.OrderBy) {
			t.Fatalf("extracted query differs on D_I (ordered)\nhidden: %s\nextracted: %s\nwant %d rows, got %d",
				sql, ext.SQL, want.RowCount(), got.RowCount())
		}
	} else if !want.EqualUnordered(got) {
		t.Fatalf("extracted query differs on D_I\nhidden: %s\nextracted: %s\nwant %d rows, got %d",
			sql, ext.SQL, want.RowCount(), got.RowCount())
	}
	return ext
}

// defaultCfg is the configuration every extraction test uses: the
// paper-faithful defaults plus the static EQC guard, so each suite
// asserts the extracted query is in-class as well as
// instance-equivalent.
func defaultCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.VerifyEQC = true
	return cfg
}

func TestExtractSimpleProjection(t *testing.T) {
	db := warehouseDB(t, 30, 60, 200)
	ext := extractHidden(t, db, "select c_name, c_acctbal from customer", defaultCfg())
	if len(ext.Tables) != 1 || ext.Tables[0] != "customer" {
		t.Errorf("tables: %v", ext.Tables)
	}
	if len(ext.Filters) != 0 || len(ext.GroupBy) != 0 || ext.Limit != 0 {
		t.Errorf("unexpected extras: %+v", ext)
	}
}

func TestExtractNumericFilters(t *testing.T) {
	db := warehouseDB(t, 30, 60, 200)
	ext := extractHidden(t, db,
		"select o_orderkey, o_totalprice from orders where o_totalprice >= 1000.50 and o_shippriority = 1",
		defaultCfg())
	if len(ext.Filters) != 2 {
		t.Fatalf("filters: %v", ext.Filters)
	}
	byCol := map[string]core.FilterPredicate{}
	for _, f := range ext.Filters {
		byCol[f.Col.Column] = f
	}
	tp := byCol["o_totalprice"]
	if !tp.HasLo || tp.Lo.AsFloat() != 1000.50 || tp.HasHi {
		t.Errorf("o_totalprice filter: %+v", tp)
	}
	sp := byCol["o_shippriority"]
	if !sp.IsEquality() || sp.Lo.I != 1 {
		t.Errorf("o_shippriority filter: %+v", sp)
	}
}

func TestExtractDateFilter(t *testing.T) {
	db := warehouseDB(t, 30, 60, 200)
	ext := extractHidden(t, db,
		"select o_orderkey from orders where o_orderdate <= date '1995-03-14'",
		defaultCfg())
	if len(ext.Filters) != 1 {
		t.Fatalf("filters: %v", ext.Filters)
	}
	f := ext.Filters[0]
	if !f.HasHi || f.Hi.String() != "1995-03-14" || f.HasLo {
		t.Errorf("date filter: %+v (hi=%v)", f, f.Hi)
	}
}

func TestExtractBetweenFilter(t *testing.T) {
	db := warehouseDB(t, 30, 60, 200)
	ext := extractHidden(t, db,
		"select l_orderkey from lineitem where l_extendedprice between 5000 and 60000",
		defaultCfg())
	f := ext.Filters[0]
	if !f.HasLo || !f.HasHi || f.Lo.AsFloat() != 5000 || f.Hi.AsFloat() != 60000 {
		t.Errorf("between filter: %+v", f)
	}
}

func TestExtractTextEquality(t *testing.T) {
	db := warehouseDB(t, 30, 60, 200)
	ext := extractHidden(t, db,
		"select c_custkey from customer where c_mktsegment = 'BUILDING'",
		defaultCfg())
	f := ext.Filters[0]
	if f.Kind != core.FilterTextEq || f.Pattern != "BUILDING" {
		t.Errorf("text filter: %+v", f)
	}
}

func TestExtractLikePattern(t *testing.T) {
	db := warehouseDB(t, 30, 60, 300)
	ext := extractHidden(t, db,
		"select l_orderkey from lineitem where l_comment like '%special%'",
		defaultCfg())
	f := ext.Filters[0]
	if f.Kind != core.FilterLike || f.Pattern != "%special%" {
		t.Errorf("like filter: %+v", f)
	}
}

func TestExtractJoin(t *testing.T) {
	db := warehouseDB(t, 30, 60, 200)
	ext := extractHidden(t, db,
		"select c_name, o_totalprice from customer, orders where c_custkey = o_custkey",
		defaultCfg())
	if len(ext.JoinPredicates) != 1 {
		t.Fatalf("join predicates: %v", ext.JoinPredicates)
	}
	if ext.JoinPredicates[0].String() != "customer.c_custkey=orders.o_custkey" {
		t.Errorf("join edge: %s", ext.JoinPredicates[0])
	}
}

func TestExtractThreeWayJoinGroupAgg(t *testing.T) {
	db := warehouseDB(t, 25, 50, 150)
	ext := extractHidden(t, db, `
		select o_custkey, count(*) as cnt, sum(o_totalprice) as total
		from orders group by o_custkey`, defaultCfg())
	if len(ext.GroupBy) != 1 || ext.GroupBy[0].Column != "o_custkey" {
		t.Errorf("group by: %v", ext.GroupBy)
	}
	var sawCount, sawSum bool
	for _, p := range ext.Projections {
		if p.CountStar {
			sawCount = true
		}
		if p.Agg == sqldb.AggSum {
			sawSum = true
		}
	}
	if !sawCount || !sawSum {
		t.Errorf("aggregates: %+v", ext.Projections)
	}
}

func TestExtractComputedColumnFunction(t *testing.T) {
	db := warehouseDB(t, 25, 50, 150)
	ext := extractHidden(t, db, `
		select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue
		from lineitem group by l_orderkey`, defaultCfg())
	var rev *core.Projection
	for i := range ext.Projections {
		if ext.Projections[i].OutputName == "revenue" {
			rev = &ext.Projections[i]
		}
	}
	if rev == nil {
		t.Fatalf("no revenue projection: %+v", ext.Projections)
	}
	if rev.Agg != sqldb.AggSum {
		t.Errorf("revenue aggregate: %v", rev.Agg)
	}
	if len(rev.Deps) != 2 {
		t.Errorf("revenue deps: %v", rev.Deps)
	}
	if got := rev.FuncExpr().String(); got != "lineitem.l_extendedprice * (1 - lineitem.l_discount)" {
		t.Errorf("revenue function rendered as %q", got)
	}
}

func TestExtractTPCHQ3(t *testing.T) {
	db := warehouseDB(t, 40, 120, 500)
	hidden := `
		select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
		       o_orderdate, o_shippriority
		from customer, orders, lineitem
		where c_mktsegment = 'BUILDING'
		  and c_custkey = o_custkey
		  and l_orderkey = o_orderkey
		  and o_orderdate < date '1995-03-15'
		  and l_shipdate > date '1995-03-15'
		group by l_orderkey, o_orderdate, o_shippriority
		order by revenue desc, o_orderdate
		limit 10`
	ext := extractHidden(t, db, hidden, defaultCfg())

	if len(ext.Tables) != 3 {
		t.Errorf("tables: %v", ext.Tables)
	}
	if len(ext.JoinPredicates) != 2 {
		t.Errorf("joins: %v", ext.JoinPredicates)
	}
	if len(ext.Filters) != 3 {
		t.Errorf("filters: %v", ext.Filters)
	}
	if len(ext.GroupBy) != 3 {
		t.Errorf("group by: %v", ext.GroupBy)
	}
	if ext.Limit != 10 {
		t.Errorf("limit: %d", ext.Limit)
	}
	if len(ext.OrderBy) != 2 || !ext.OrderBy[0].Desc || ext.OrderBy[0].OutputName != "revenue" ||
		ext.OrderBy[1].Desc || ext.OrderBy[1].OutputName != "o_orderdate" {
		t.Errorf("order by: %v", ext.OrderBy)
	}
	if !ext.CheckerVerified {
		t.Error("checker did not verify")
	}
	if ext.Stats.AppInvocations == 0 || ext.Stats.Total == 0 {
		t.Errorf("stats not recorded: %+v", ext.Stats)
	}
}

func TestExtractUngroupedAggregate(t *testing.T) {
	db := warehouseDB(t, 25, 50, 150)
	ext := extractHidden(t, db,
		"select count(*) as n, avg(o_totalprice) as a, min(o_orderdate) as d from orders",
		defaultCfg())
	if !ext.UngroupedAgg {
		t.Error("ungrouped aggregation not detected")
	}
	if !ext.Projections[0].CountStar {
		t.Errorf("first output should be count(*): %+v", ext.Projections[0])
	}
	if ext.Projections[1].Agg != sqldb.AggAvg {
		t.Errorf("second output should be avg: %+v", ext.Projections[1])
	}
	if ext.Projections[2].Agg != sqldb.AggMin {
		t.Errorf("third output should be min: %+v", ext.Projections[2])
	}
}

func TestExtractMinMaxAggregates(t *testing.T) {
	db := warehouseDB(t, 25, 50, 150)
	ext := extractHidden(t, db, `
		select o_custkey, min(o_totalprice) as lo, max(o_totalprice) as hi
		from orders group by o_custkey`, defaultCfg())
	if ext.Projections[1].Agg != sqldb.AggMin || ext.Projections[2].Agg != sqldb.AggMax {
		t.Errorf("aggregates: %v %v", ext.Projections[1].Agg, ext.Projections[2].Agg)
	}
}

func TestExtractOrderByAscending(t *testing.T) {
	db := warehouseDB(t, 25, 50, 150)
	ext := extractHidden(t, db,
		"select o_orderkey, o_totalprice from orders order by o_totalprice asc limit 5",
		defaultCfg())
	if len(ext.OrderBy) != 1 || ext.OrderBy[0].Desc || ext.OrderBy[0].OutputName != "o_totalprice" {
		t.Errorf("order by: %v", ext.OrderBy)
	}
	if ext.Limit != 5 {
		t.Errorf("limit: %d", ext.Limit)
	}
}

func TestExtractProjectionRenaming(t *testing.T) {
	db := warehouseDB(t, 25, 50, 150)
	ext := extractHidden(t, db,
		"select c_name as customer_name, c_acctbal as balance from customer",
		defaultCfg())
	if ext.Projections[0].OutputName != "customer_name" {
		t.Errorf("renamed output: %+v", ext.Projections[0])
	}
	// The assembled SQL must alias the column to the observed name.
	if !strings.Contains(ext.SQL, "customer_name") {
		t.Errorf("assembled SQL lost the rename: %s", ext.SQL)
	}
}

func TestExtractScalarFunctionSingleColumn(t *testing.T) {
	db := warehouseDB(t, 25, 50, 150)
	ext := extractHidden(t, db,
		"select o_orderkey, o_totalprice * 2 + 10 as adjusted from orders",
		defaultCfg())
	p := ext.Projections[1]
	if len(p.Deps) != 1 || p.Deps[0].Column != "o_totalprice" {
		t.Fatalf("deps: %v", p.Deps)
	}
	if len(p.Coeffs) != 2 || p.Coeffs[0] != 10 || p.Coeffs[1] != 2 {
		t.Errorf("coefficients: %v", p.Coeffs)
	}
}

func TestExtractStatsProfileShape(t *testing.T) {
	db := warehouseDB(t, 40, 120, 800)
	ext := extractHidden(t, db,
		"select c_custkey from customer, orders where c_custkey = o_custkey and o_totalprice >= 100",
		defaultCfg())
	st := ext.Stats
	if st.RowsInitial <= st.RowsFinal {
		t.Errorf("minimizer did not shrink: %d -> %d", st.RowsInitial, st.RowsFinal)
	}
	if st.RowsFinal > len(ext.Tables)+2 {
		t.Errorf("final database too large: %d rows", st.RowsFinal)
	}
	if st.Minimizer() <= 0 {
		t.Error("minimizer time not recorded")
	}
}

// TestExtractImperativeApp checks the imperative path end to end.
func TestExtractImperativeApp(t *testing.T) {
	db := warehouseDB(t, 30, 60, 200)
	fn := func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
		// Imperative equivalent of:
		//   select c_name from customer where c_acctbal >= 0
		tbl, err := db.Table("customer")
		if err != nil {
			return nil, err
		}
		res := &sqldb.Result{Columns: []string{"c_name"}}
		bal := tbl.Schema.ColumnIndex("c_acctbal")
		name := tbl.Schema.ColumnIndex("c_name")
		for _, r := range tbl.Rows {
			if r[bal].Null {
				continue
			}
			if r[bal].AsFloat() >= 0 {
				res.Rows = append(res.Rows, sqldb.Row{r[name]})
			}
		}
		return res, nil
	}
	exe := app.NewImperativeExecutable("get-positive-customers", fn, "")
	ext, err := core.Extract(exe, db, defaultCfg())
	if err != nil {
		t.Fatalf("imperative extraction failed: %v", err)
	}
	want := sqlparser.MustParse("select c_name from customer where c_acctbal >= 0")
	gotRes, err := db.Execute(context.Background(), ext.Query)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := db.Execute(context.Background(), want)
	if err != nil {
		t.Fatal(err)
	}
	if !gotRes.EqualUnordered(wantRes) {
		t.Errorf("imperative extraction wrong:\n%s", ext.SQL)
	}
}

func TestExtractCountDistinct(t *testing.T) {
	db := warehouseDB(t, 25, 50, 200)
	ext := extractHidden(t, db, `
		select l_orderkey, count(distinct l_linenumber) as distinct_lines
		from lineitem group by l_orderkey`, defaultCfg())
	p := ext.Projections[1]
	if p.Agg != sqldb.AggCount || !p.Distinct {
		t.Errorf("count(distinct) not identified: %+v", p)
	}
}

func TestExtractOrderByCount(t *testing.T) {
	db := warehouseDB(t, 30, 80, 250)
	ext := extractHidden(t, db, `
		select c_mktsegment, count(*) as n
		from customer
		group by c_mktsegment
		order by n desc
		limit 3`, defaultCfg())
	if len(ext.OrderBy) != 1 || !ext.OrderBy[0].Desc || ext.OrderBy[0].OutputName != "n" {
		t.Errorf("count order key: %v", ext.OrderBy)
	}
	if ext.Limit != 3 {
		t.Errorf("limit: %d", ext.Limit)
	}
}

func TestExtractOrderByCountSecondary(t *testing.T) {
	db := warehouseDB(t, 30, 120, 300)
	ext := extractHidden(t, db, `
		select o_shippriority, count(*) as cnt
		from orders
		group by o_shippriority
		order by o_shippriority asc, cnt desc`, defaultCfg())
	if len(ext.OrderBy) < 1 || ext.OrderBy[0].OutputName != "o_shippriority" || ext.OrderBy[0].Desc {
		t.Fatalf("primary key: %v", ext.OrderBy)
	}
	// The secondary count key is only observable when the primary
	// does not functionally determine the groups; with a single
	// grouping column it does, so stopping after the primary is
	// acceptable — assert we did not extract something WRONG.
	for _, k := range ext.OrderBy[1:] {
		if k.OutputName != "cnt" {
			t.Errorf("unexpected secondary key: %v", k)
		}
	}
}
