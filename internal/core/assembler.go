package core

import (
	"fmt"
	"strings"

	"unmasque/internal/sqldb"
)

// assemble combines the extracted elements into the canonical Q_E
// statement (the paper's final pipeline module before checking).
func (s *Session) assemble() (*Extraction, error) {
	stmt := &sqldb.SelectStmt{}

	// Projections, preserving the application's output column order
	// and names.
	for _, p := range s.projections {
		item := sqldb.SelectItem{Expr: p.ItemExpr()}
		natural := naturalName(item.Expr)
		if !strings.EqualFold(natural, p.OutputName) {
			item.Alias = strings.ToLower(p.OutputName)
		}
		stmt.Items = append(stmt.Items, item)
	}

	// From: the detected tables in database order.
	stmt.From = append(stmt.From, s.tables...)

	// Where: join predicates then filters, in deterministic order.
	var conjuncts []sqldb.Expr
	for _, e := range s.joinEdges {
		conjuncts = append(conjuncts, sqldb.Bin(sqldb.OpEq,
			sqldb.Col(e.A.Table, e.A.Column), sqldb.Col(e.B.Table, e.B.Column)))
	}
	for _, col := range s.filterOrder {
		conjuncts = append(conjuncts, s.filters[col].Expr())
	}
	stmt.Where = sqldb.AndAll(conjuncts)

	// Group by.
	for _, g := range s.groupBy {
		stmt.GroupBy = append(stmt.GroupBy, sqldb.Col(g.Table, g.Column))
	}

	// Having.
	var havingConj []sqldb.Expr
	for _, h := range s.having {
		havingConj = append(havingConj, h.Expr())
	}
	stmt.Having = sqldb.AndAll(havingConj)

	// Order by: reference output columns by their (aliased) names.
	for _, o := range s.orderBy {
		stmt.OrderBy = append(stmt.OrderBy, sqldb.OrderKey{
			Expr: &sqldb.ColumnExpr{Column: strings.ToLower(o.OutputName)},
			Desc: o.Desc,
		})
	}
	stmt.Limit = s.limit

	if err := s.validateAssembly(stmt); err != nil {
		return nil, err
	}

	return &Extraction{
		Query:          stmt,
		SQL:            stmt.String(),
		Tables:         append([]string(nil), s.tables...),
		JoinPredicates: append([]sqldb.SchemaEdge(nil), s.joinEdges...),
		Filters:        s.filterList(),
		Projections:    append([]Projection(nil), s.projections...),
		GroupBy:        append([]sqldb.ColRef(nil), s.groupBy...),
		Having:         append([]HavingPredicate(nil), s.having...),
		OrderBy:        append([]OrderItem(nil), s.orderBy...),
		Limit:          s.limit,
		UngroupedAgg:   s.ungroupedAgg,
	}, nil
}

// filterList flattens the filter map in extraction order.
func (s *Session) filterList() []FilterPredicate {
	out := make([]FilterPredicate, 0, len(s.filterOrder))
	for _, col := range s.filterOrder {
		out = append(out, s.filters[col])
	}
	return out
}

// naturalName is the output name an expression would get without an
// alias.
func naturalName(e sqldb.Expr) string {
	return sqldb.SelectItem{Expr: e}.OutputName()
}

// validateAssembly executes Q_E against the minimized database and
// compares with the application baseline — a cheap smoke test before
// the full checker.
func (s *Session) validateAssembly(stmt *sqldb.SelectStmt) error {
	got, err := s.executeStmt(stmt, s.silo)
	if err != nil {
		return fmt.Errorf("assembled query does not execute: %w", err)
	}
	if !got.EqualUnordered(s.baseline) {
		return fmt.Errorf("assembled query disagrees with the application on D_1:\napp: %v\nQ_E: %v", s.baseline.Rows, got.Rows)
	}
	return nil
}

// executeStmt runs an assembled statement with the probe timeout.
func (s *Session) executeStmt(stmt *sqldb.SelectStmt, db *sqldb.Database) (*sqldb.Result, error) {
	ctx, cancel := probeContext(s.cfg.ExecTimeout)
	defer cancel()
	return db.Execute(ctx, stmt)
}
