package core

import (
	"strings"

	"unmasque/internal/analysis/eqcequiv"
	"unmasque/internal/sqldb"
	"unmasque/internal/xdata"
)

// boundedMaxInstances caps the symbolic enumeration per mutant check.
// Extraction runs many checks back to back, so the per-check budget is
// kept below the library default; a check that exhausts it falls back
// to the classical instances targeting its mutant class, losing only
// the pruning, never coverage.
const boundedMaxInstances = 50000

// plantedCE is a counterexample database produced by the symbolic
// checker, kept together with the application's recorded result on it
// (the planting step runs the executable once and requires it to side
// with Q_E there). Later mutants are replayed against planted
// counterexamples before any symbolic work: a mutant disagreeing with
// the application on one is killed without a new enumeration (and
// without another executable run).
type plantedCE struct {
	db     *sqldb.Database
	appRes *sqldb.Result
}

// checkBounded is the symbolically pruned Stage 2 of the extraction
// checker, used when Config.BoundedCheck > 0. The classical checker
// kills every mutant the same way: run the application and Q_E on a
// suite of targeted instances and compare. Here the mutant catalogue
// is walked explicitly and each mutant is settled at the cheapest
// available tier:
//
//  1. Replay on a recorded witness (initial instance or a Stage-1
//     random database, where the application's answer is known): a
//     mutant disagreeing with the recorded application result is dead.
//     No executable run.
//  2. Replay on a previously planted counterexample database, where
//     the application's answer is also already recorded: a mutant
//     disagreeing with it there is dead. No executable run.
//  3. eqcequiv.Check(Q_E, mutant, k): a concrete counterexample kills
//     the mutant (the paper's mutant-killing instance, found
//     symbolically instead of searched for dynamically) — but only
//     after the separating database is certified: the application is
//     executed once on it and must agree with Q_E there, exactly the
//     comparison the classical suite would have made on a targeted
//     instance. The certified database is then planted for tier 2,
//     so the one executable run is amortized over every later mutant
//     it kills. An Equivalent verdict retires the mutant — no
//     database within the bound can separate it from Q_E, so no
//     instance suite at this scale could kill it either.
//
// Only mutants the symbolic layer exhausts its budget on (and
// off-by-one limits beyond the catalogue's range) fall back to the
// classical XData instances — and only the instance classes targeting
// those mutants, not the whole suite. The executable therefore runs
// once per *distinct counterexample database* plus the fallback
// instances, instead of once per suite instance — strictly fewer
// times than under the classical Stage 2, without giving up the
// classical guarantee that every kill is anchored to an instance on
// which the application itself was observed to side with Q_E.
//
// The walk is deterministic: the mutant catalogue is ordered, the
// equivalence checker is deterministic, and witnesses are consulted in
// recording order — the same extraction yields the same counters and
// the same ledger on every run and worker count.
func (s *Session) checkBounded(ext *Extraction, schemas []sqldb.TableSchema, witnesses []witness) error {
	k := s.cfg.BoundedCheck
	s.stats.BoundedBound = k
	opt := eqcequiv.Options{Bound: k, MaxInstances: boundedMaxInstances}

	mutants := xdata.Mutants(ext.Query, schemas)
	s.stats.MutantsTotal = len(mutants)

	// The mutant walk replays the whole catalogue against each witness;
	// advising the extracted WHERE columns lets those replays push
	// predicates into indexes. Advice is withdrawn when the walk ends
	// (the initial witness is the caller's database handle).
	var releases []func()
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	seen := map[sqldb.Fingerprint]bool{}
	for _, w := range witnesses {
		seen[w.db.Fingerprint()] = true
		release, err := adviseQueryColumns(w.db, ext.Query)
		if err != nil {
			return err
		}
		releases = append(releases, release)
	}

	var planted []plantedCE
	var unresolved []string
	for _, m := range mutants {
		if s.mutantDiffersOnWitness(ext, m, witnesses) {
			s.stats.MutantsKilledWitness++
			continue
		}
		if s.mutantDiffersOnPlanted(ext, m, planted) {
			s.stats.MutantsKilledStatic++
			continue
		}
		v, err := eqcequiv.Check(ext.Query, m.Stmt, schemas, opt)
		if err != nil {
			// Analysis rejected the mutant (e.g. a grouping mutation
			// outside the class the analyzer handles) — leave it to
			// the classical instances and record it honestly.
			s.stats.MutantsUnresolved++
			unresolved = append(unresolved, m.Label)
			continue
		}
		switch v.Outcome {
		case eqcequiv.Equivalent:
			s.stats.MutantsProvenEquivalent++
		case eqcequiv.Inequivalent:
			ce := v.Counterexample
			if fp := ce.DB.Fingerprint(); !seen[fp] {
				seen[fp] = true
				// Certify the separating instance: one executable run,
				// and the application must side with Q_E on it (a
				// disagreement here is a failed extraction check, the
				// same as on any classical instance).
				appRes, err := s.compareOnResult(ext, ce.DB, "bounded-ce:"+m.Label)
				if err != nil {
					return err
				}
				planted = append(planted, plantedCE{db: ce.DB, appRes: appRes})
				release, err := adviseQueryColumns(ce.DB, ext.Query)
				if err != nil {
					return err
				}
				releases = append(releases, release)
			}
			s.stats.MutantsKilledStatic++
		default: // Exhausted
			s.stats.MutantsUnresolved++
			unresolved = append(unresolved, m.Label)
		}
	}

	// Classical fallback for whatever the symbolic layer left open —
	// plus the order-limit instance when the query's limit exceeds the
	// catalogue's off-by-one range (those limit mutants are not
	// generated, so no symbolic verdict covers them).
	want := fallbackClasses(unresolved)
	if ext.Query.Limit > xdata.MutantLimitCap {
		want["order-limit"] = true
	}
	if len(want) == 0 {
		return nil
	}
	instances, err := xdata.Generate(ext.Query, schemas, s.cfg.Seed)
	if err != nil {
		return err
	}
	for _, inst := range instances {
		class := inst.Label
		if i := strings.IndexByte(class, ':'); i >= 0 {
			class = class[:i]
		}
		if !want[class] && !want["*"] {
			continue
		}
		if err := s.compareOn(ext, inst.DB, inst.Label); err != nil {
			return err
		}
	}
	return nil
}

// fallbackClasses maps unresolved mutant labels to the classical
// instance classes (xdata.Generate labels, colon-suffix stripped) that
// target them. An unrecognized label conservatively selects every
// class ("*").
func fallbackClasses(labels []string) map[string]bool {
	want := map[string]bool{}
	for _, l := range labels {
		switch {
		case strings.HasPrefix(l, "bound") || strings.HasPrefix(l, "like") || strings.HasPrefix(l, "texteq"):
			want["witnesses"] = true
			want["boundary"] = true
		case strings.HasPrefix(l, "agg:") || strings.HasPrefix(l, "distinct") || strings.HasPrefix(l, "group-"):
			want["witnesses"] = true
			want["group-collapse"] = true
			want["agg-separate"] = true
		case strings.HasPrefix(l, "order-flip") || strings.HasPrefix(l, "limit:"):
			want["order-limit"] = true
		default:
			want["*"] = true
		}
	}
	return want
}

// mutantDiffersOnWitness evaluates the mutant on each recorded witness
// and reports whether it disagrees with the application's recorded
// answer on any of them, under the checker's comparison semantics
// (null-normalized multisets, plus positional order keys when the
// extraction orders its output). A mutant erroring on a witness
// differs by definition — the application produced a result there.
func (s *Session) mutantDiffersOnWitness(ext *Extraction, m xdata.Mutant, witnesses []witness) bool {
	for _, w := range witnesses {
		if resultsDiffer(s, ext, m.Stmt, w.db, w.appRes) {
			return true
		}
	}
	return false
}

// mutantDiffersOnPlanted replays the mutant on counterexample
// databases planted by earlier symbolic kills, comparing against the
// application's recorded result on each (captured when the database
// was certified at planting time).
func (s *Session) mutantDiffersOnPlanted(ext *Extraction, m xdata.Mutant, planted []plantedCE) bool {
	for _, ce := range planted {
		if resultsDiffer(s, ext, m.Stmt, ce.db, ce.appRes) {
			return true
		}
	}
	return false
}

// resultsDiffer evaluates stmt on db and compares it to the reference
// result under the checker's semantics.
func resultsDiffer(s *Session, ext *Extraction, stmt *sqldb.SelectStmt, db *sqldb.Database, ref *sqldb.Result) bool {
	mRes, err := s.executeStmt(stmt, db)
	if err != nil {
		return true
	}
	refRes := normalizeNull(ref)
	mRes = normalizeNull(mRes)
	if !refRes.EqualUnordered(mRes) {
		return true
	}
	if len(ext.OrderBy) > 0 && !OrderedEquivalent(refRes, mRes, ext.OrderBy) {
		return true
	}
	return false
}
