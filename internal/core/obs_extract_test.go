package core_test

// Extraction-level tests of the observability layer: the probe
// ledger's worker-count byte-identity (golden file), the ledger/stats
// count invariant, the span tree on Extraction.Trace, and the cache
// accounting of Stats.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// tracedExtract runs one extraction with full observability and
// returns the extraction plus its serialized trace.
func tracedExtract(t *testing.T, sql string, workers int) (*core.Extraction, *obs.Ledger, []byte) {
	t.Helper()
	db := warehouseDB(t, 25, 50, 160)
	cfg := defaultCfg()
	cfg.Workers = workers
	cfg.Tracer = obs.NewTracer("extract")
	cfg.Ledger = obs.NewLedger()
	cfg.Metrics = obs.NewMetrics()
	exe := app.MustSQLExecutable("golden", sql)
	ext, err := core.Extract(exe, db, cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v\nquery: %s", workers, err, sql)
	}
	var buf bytes.Buffer
	header := obs.RunHeader{App: exe.Name(), Workers: workers, Seed: cfg.Seed}
	if err := obs.WriteTrace(&buf, header, ext.Trace, cfg.Ledger); err != nil {
		t.Fatal(err)
	}
	return ext, cfg.Ledger, buf.Bytes()
}

// TestProbeLedgerGoldenAcrossWorkers: the full trace of an extraction
// — run header, span tree, probe ledger — strips to byte-identical
// JSONL for 1 and 8 workers, and matches the checked-in golden file.
// Regenerate with `go test ./internal/core -run Golden -update`.
func TestProbeLedgerGoldenAcrossWorkers(t *testing.T) {
	sql := concurrencyQueries[1] // joins + filters: exercises every probe kind
	_, _, trace1 := tracedExtract(t, sql, 1)
	_, _, trace8 := tracedExtract(t, sql, 8)

	strip := func(raw []byte) []byte {
		out, err := obs.StripVolatile(raw)
		if err != nil {
			t.Fatalf("trace does not strip: %v", err)
		}
		return out
	}
	s1, s8 := strip(trace1), strip(trace8)
	if !bytes.Equal(s1, s8) {
		t.Fatalf("stripped traces differ between 1 and 8 workers:\n%s", firstDiff(s1, s8))
	}

	golden := filepath.Join("testdata", "ledger_golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, s1, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(s1, want) {
		t.Fatalf("trace deviates from golden file (run with -update if the pipeline changed):\n%s",
			firstDiff(s1, want))
	}
}

// firstDiff renders the first differing line of two JSONL blobs.
func firstDiff(a, b []byte) string {
	la, lb := strings.Split(string(a), "\n"), strings.Split(string(b), "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return "line " + string(rune('0'+i%10)) + ":\n" + la[i] + "\nvs\n" + lb[i]
		}
	}
	return "line counts differ"
}

// TestLedgerCountInvariant: the ledger records exactly one event per
// executable invocation plus one per cache hit, and the trace
// validates against the schema with matching tallies.
func TestLedgerCountInvariant(t *testing.T) {
	for _, workers := range []int{1, 8} {
		ext, ledger, trace := tracedExtract(t, concurrencyQueries[3], workers)
		wantProbes := ext.Stats.AppInvocations + ext.Stats.CacheHits
		if got := int64(ledger.Len()); got != wantProbes {
			t.Errorf("workers=%d: ledger has %d events, want invocations+hits = %d+%d = %d",
				workers, got, ext.Stats.AppInvocations, ext.Stats.CacheHits, wantProbes)
		}
		sum, err := obs.Validate(bytes.NewReader(trace))
		if err != nil {
			t.Fatalf("workers=%d: trace does not validate: %v", workers, err)
		}
		if int64(sum.Probes) != wantProbes {
			t.Errorf("workers=%d: validator counted %d probes, want %d", workers, sum.Probes, wantProbes)
		}
		if int64(sum.Executed()) != ext.Stats.AppInvocations {
			t.Errorf("workers=%d: validator counted %d executions, want %d",
				workers, sum.Executed(), ext.Stats.AppInvocations)
		}
		if int64(sum.Hits) != ext.Stats.CacheHits {
			t.Errorf("workers=%d: validator counted %d hits, want %d", workers, sum.Hits, ext.Stats.CacheHits)
		}
	}
}

// TestExtractionTrace: Extract returns the finished span tree — one
// span per pipeline phase under the root — and none when no tracer is
// configured.
func TestExtractionTrace(t *testing.T) {
	ext, _, _ := tracedExtract(t, concurrencyQueries[0], 2)
	if len(ext.Trace) == 0 {
		t.Fatal("no trace on the extraction")
	}
	root := ext.Trace[0]
	if root.Name != "extract" || root.Parent != 0 || root.Open {
		t.Fatalf("root span wrong: %+v", root)
	}
	phases := map[string]bool{}
	for _, ev := range ext.Trace {
		if ev.Parent == root.ID {
			phases[ev.Name] = true
		}
		if ev.Open {
			t.Errorf("span %q still open on a completed extraction", ev.Name)
		}
	}
	for _, want := range []string{"from-clause", "minimizer", "join-graph", "filters", "projection", "assemble", "checker", "eqc-verify"} {
		if !phases[want] {
			t.Errorf("phase span %q missing (have %v)", want, phases)
		}
	}

	// Without a tracer the extraction carries no trace.
	db := warehouseDB(t, 25, 50, 160)
	plain, err := core.Extract(app.MustSQLExecutable("plain", concurrencyQueries[0]), db, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Errorf("untraced extraction carries %d spans", len(plain.Trace))
	}
}

// TestMetricsMatchStats: the metrics registry's counters agree with
// the extraction's Stats.
func TestMetricsMatchStats(t *testing.T) {
	db := warehouseDB(t, 25, 50, 160)
	cfg := defaultCfg()
	cfg.Metrics = obs.NewMetrics()
	ext, err := core.Extract(app.MustSQLExecutable("m", concurrencyQueries[0]), db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := cfg.Metrics
	if got := m.Counter("app_invocations").Value(); got != ext.Stats.AppInvocations {
		t.Errorf("app_invocations metric %d, stats %d", got, ext.Stats.AppInvocations)
	}
	if got := m.Counter("cache_hit").Value(); got != ext.Stats.CacheHits {
		t.Errorf("cache_hit metric %d, stats %d", got, ext.Stats.CacheHits)
	}
	if got := m.Histogram("probe_latency_ms").Count(); got != ext.Stats.AppInvocations {
		t.Errorf("latency histogram has %d observations, want one per invocation (%d)",
			got, ext.Stats.AppInvocations)
	}
}

// TestStatsCacheAccounting (satellite of the cache rewrite): with the
// run cache disabled the profile omits the cache section instead of
// printing zeros, and the hit-rate is well-defined with no traffic.
func TestStatsCacheAccounting(t *testing.T) {
	var zero core.Stats
	if rate := zero.CacheHitRate(); rate != 0 {
		t.Errorf("hit rate with no traffic = %v, want 0 (not NaN)", rate)
	}

	db := warehouseDB(t, 25, 50, 160)
	off := defaultCfg()
	off.DisableRunCache = true
	extOff, err := core.Extract(app.MustSQLExecutable("off", concurrencyQueries[0]), db, off)
	if err != nil {
		t.Fatal(err)
	}
	if extOff.Stats.CacheEnabled {
		t.Error("CacheEnabled true with DisableRunCache set")
	}
	if strings.Contains(extOff.Stats.String(), "cache") {
		t.Errorf("disabled cache still reported: %s", extOff.Stats.String())
	}

	extOn, err := core.Extract(app.MustSQLExecutable("on", concurrencyQueries[0]), db, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !extOn.Stats.CacheEnabled {
		t.Error("CacheEnabled false with the cache on")
	}
	if !strings.Contains(extOn.Stats.String(), "cache") {
		t.Errorf("enabled cache not reported: %s", extOn.Stats.String())
	}
}

// TestPhaseHistogramsAndEngineBridge (telemetry PR): every pipeline
// phase lands exactly one observation in its phase_ms.<name>
// histogram, the engine counter deltas are bridged into engine_*
// counters at session end, and the structured logger carries phase
// correlation attrs on its records.
func TestPhaseHistogramsAndEngineBridge(t *testing.T) {
	db := warehouseDB(t, 25, 50, 160)
	cfg := defaultCfg()
	cfg.Metrics = obs.NewMetrics()
	var logBuf bytes.Buffer
	cfg.Logger = obs.NewLogger(&logBuf, obs.LevelDebug)
	ext, err := core.Extract(app.MustSQLExecutable("ph", concurrencyQueries[0]), db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{
		"from-clause", "minimizer", "join-graph", "filters", "disjunctions",
		"projection", "group-by", "aggregation", "order-by", "limit",
		"assemble", "checker", "eqc-verify",
	} {
		if got := cfg.Metrics.Histogram("phase_ms." + phase).Count(); got != 1 {
			t.Errorf("phase_ms.%s has %d observations, want 1", phase, got)
		}
	}
	m := cfg.Metrics
	if got := m.Counter("engine_index_hits").Value(); got != ext.Stats.IndexHits {
		t.Errorf("engine_index_hits metric %d, stats %d", got, ext.Stats.IndexHits)
	}
	if got := m.Counter("engine_vector_batches").Value(); got != ext.Stats.VectorBatches {
		t.Errorf("engine_vector_batches metric %d, stats %d", got, ext.Stats.VectorBatches)
	}
	if ext.Stats.ExecMode == "vector" && ext.Stats.VectorBatches == 0 {
		t.Error("vector engine reported zero batches — bridge has nothing to measure")
	}

	var phaseDone, complete int
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if strings.Contains(line, `"msg":"phase done"`) {
			phaseDone++
			if !strings.Contains(line, `"phase":`) {
				t.Errorf("phase record without phase attr: %s", line)
			}
		}
		if strings.Contains(line, `"msg":"extraction complete"`) {
			complete++
		}
	}
	if phaseDone != 13 || complete != 1 {
		t.Errorf("log records: %d phase-done (want 13), %d complete (want 1)\n%s",
			phaseDone, complete, logBuf.String())
	}
}

// TestPhaseInstrumentationNilSafe: an extraction with no metrics and
// no logger still succeeds (all record sites are nil-safe).
func TestPhaseInstrumentationNilSafe(t *testing.T) {
	db := warehouseDB(t, 25, 50, 160)
	if _, err := core.Extract(app.MustSQLExecutable("nil", concurrencyQueries[0]), db, defaultCfg()); err != nil {
		t.Fatal(err)
	}
}
