package core_test

// execmode_test.go — pins end-to-end extraction equivalence across
// execution engines: running the full pipeline with the vectorized
// engine and with the tree-walking oracle must recover byte-identical
// SQL, issue the same number of application invocations, and leave
// the same stripped probe ledger. The engines may differ only in
// speed and in the engine counters they report.

import (
	"bytes"
	"testing"

	"unmasque/internal/core"
	"unmasque/internal/obs"
	"unmasque/internal/workloads/registry"
)

// extractUnderMode runs one registered application through the full
// pipeline under the given exec mode and returns the extraction and
// its stripped trace (run header, span tree, probe ledger).
func extractUnderMode(t *testing.T, appName, mode string) (*core.Extraction, []byte) {
	t.Helper()
	exe, db, err := registry.Build(appName, 1)
	if err != nil {
		t.Fatalf("%s: setup: %v", appName, err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.ExecMode = mode
	cfg.Tracer = obs.NewTracer("extract")
	cfg.Ledger = obs.NewLedger()
	ext, err := core.Extract(exe, db, cfg)
	if err != nil {
		t.Fatalf("%s under %q: %v", appName, mode, err)
	}
	var buf bytes.Buffer
	header := obs.RunHeader{App: exe.Name(), Workers: ext.Stats.Workers, Seed: cfg.Seed}
	if err := obs.WriteTrace(&buf, header, ext.Trace, cfg.Ledger); err != nil {
		t.Fatal(err)
	}
	stripped, err := obs.StripVolatile(buf.Bytes())
	if err != nil {
		t.Fatalf("%s under %q: trace does not strip: %v", appName, mode, err)
	}
	return ext, stripped
}

// TestExtractionIdenticalAcrossExecModes runs three TPC-H
// applications under both engines and asserts the extraction is
// observably identical: same SQL, same invocation count, same
// stripped probe ledger.
func TestExtractionIdenticalAcrossExecModes(t *testing.T) {
	for _, appName := range []string{"tpch/Q3", "tpch/Q6", "tpch/Q10"} {
		t.Run(appName, func(t *testing.T) {
			extV, traceV := extractUnderMode(t, appName, "vector")
			extT, traceT := extractUnderMode(t, appName, "tree")

			if extV.SQL != extT.SQL {
				t.Fatalf("extracted SQL diverges\nvector:\n%s\ntree:\n%s", extV.SQL, extT.SQL)
			}
			if extV.Stats.AppInvocations != extT.Stats.AppInvocations {
				t.Fatalf("app invocations diverge: vector=%d tree=%d",
					extV.Stats.AppInvocations, extT.Stats.AppInvocations)
			}
			if !bytes.Equal(traceV, traceT) {
				t.Fatalf("stripped probe traces diverge (%d vs %d bytes)", len(traceV), len(traceT))
			}

			if extV.Stats.ExecMode != "vector" || extT.Stats.ExecMode != "tree" {
				t.Fatalf("stats report modes %q/%q, want vector/tree",
					extV.Stats.ExecMode, extT.Stats.ExecMode)
			}
			// The oracle never touches the vectorized machinery.
			if extT.Stats.IndexBuilds != 0 || extT.Stats.RangeBuilds != 0 || extT.Stats.VectorBatches != 0 {
				t.Fatalf("tree mode reports vector work: %+v", extT.Stats)
			}
			// The vector engine actually vectorizes on these queries.
			if extV.Stats.VectorBatches == 0 {
				t.Fatal("vector mode reports zero batches")
			}
		})
	}
}

// TestConfigRejectsUnknownExecMode pins the validation surface.
func TestConfigRejectsUnknownExecMode(t *testing.T) {
	exe, db, err := registry.Build("tpch/Q6", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ExecMode = "columnar-ish"
	if _, err := core.Extract(exe, db, cfg); err == nil {
		t.Fatal("extraction accepted an unknown exec mode")
	}
}
