package core

import (
	"fmt"
	"math"
)

// solveLinearSystem solves A·x = b by Gaussian elimination with
// partial pivoting. It returns an error for singular (or numerically
// near-singular) systems, which in the extraction context means the
// probe vectors were not linearly independent.
func solveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("linsolve: bad system shape %dx? vs %d", n, len(b))
	}
	// Working copies.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("linsolve: row %d has %d entries, want %d", i, len(a[i]), n)
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	rhs := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("linsolve: singular system at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := rhs[r]
		for c := r + 1; c < n; c++ {
			sum -= m[r][c] * x[c]
		}
		x[r] = sum / m[r][r]
	}
	return x, nil
}

// snapCoefficients rounds coefficients that are within tolerance of
// an integer or a short decimal, removing float noise from the solve.
func snapCoefficients(x []float64) {
	for i, v := range x {
		r := math.Round(v)
		if math.Abs(v-r) < 1e-6*math.Max(1, math.Abs(v)) {
			x[i] = r
			continue
		}
		// Snap to two decimal places when very close (matching the
		// engine's fixed-precision floats).
		r2 := math.Round(v*100) / 100
		if math.Abs(v-r2) < 1e-9*math.Max(1, math.Abs(v)) {
			x[i] = r2
		}
	}
}
