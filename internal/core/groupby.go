package core

import (
	"fmt"

	"unmasque/internal/sqldb"
)

// extractGroupBy recovers G_E (Section 5.1). For every candidate
// attribute a tiny synthetic instance is generated whose invisible
// SPJ result contains exactly three rows that agree on every column
// except the attribute under test (two distinct values, split 2/1);
// a two-row final result proves the attribute grouped. Columns pinned
// by equality filters are skipped (their grouping is superfluous),
// and join components are tested once through a representative.
//
// In having mode (Section 7) this module runs before filter
// extraction, so generated instances source their default values from
// D_1 (which satisfies all the still-unknown predicates) instead of
// synthesized s-values, and a sum-preserving retry compensates for
// row multiplication breaking aggregate constraints.
func (s *Session) extractGroupBy() error {
	testedComp := map[int]bool{}
	for _, col := range s.allColumns() {
		if s.eqFiltered(col) {
			continue
		}
		if ci, ok := s.compOf[col]; ok {
			if testedComp[ci] {
				continue
			}
			testedComp[ci] = true
			member, err := s.groupByProbeJoin(&s.components[ci])
			if err != nil {
				return err
			}
			if member {
				rep := s.components[ci].cols[0]
				s.groupBy = append(s.groupBy, rep)
				s.groupBySet[rep] = true
				for _, c := range s.components[ci].cols {
					s.groupBySet[c] = true
				}
			}
			continue
		}
		if s.isKeyColumn(col) {
			// Un-joined key column: groupable like any plain column.
			member, err := s.groupByProbePlain(col)
			if err != nil {
				return err
			}
			if member {
				s.groupBy = append(s.groupBy, col)
				s.groupBySet[col] = true
			}
			continue
		}
		member, err := s.groupByProbePlain(col)
		if err != nil {
			return err
		}
		if member {
			s.groupBy = append(s.groupBy, col)
			s.groupBySet[col] = true
		}
	}
	if len(s.groupBy) > 0 {
		return nil
	}
	// No grouping column found: check for an ungrouped aggregation
	// with a two-row instance in which every free column varies.
	return s.detectUngroupedAgg()
}

// groupByProbePlain implements Case 1 (t.A outside the join graph):
// three rows in A's table with A = (p, p, q), one row elsewhere.
func (s *Session) groupByProbePlain(col sqldb.ColRef) (bool, error) {
	pairs, err := s.candidatePairs(col)
	if err != nil {
		return false, err
	}
	for _, pq := range pairs {
		d := s.newDgen()
		d.setRows(col.Table, 3)
		d.set(col, pq[0], pq[0], pq[1])
		card, err := s.dgenCardinality(d, col.Table, 3)
		if err != nil {
			return false, err
		}
		switch card {
		case 2:
			return true, nil
		case 1, 3:
			return false, nil
		default:
			// Probe inconclusive (likely a violated hidden predicate
			// in having mode); try the next candidate pair.
		}
	}
	return false, nil
}

// groupByProbeJoin implements Case 2 (the attribute belongs to a join
// component): the component's table under test gets three rows with
// keys (1, 1, 2); every other table touched by the component gets two
// rows with keys (1, 2); the rest one row.
func (s *Session) groupByProbeJoin(comp *joinComponent) (bool, error) {
	testTable := comp.cols[0].Table
	d := s.newDgen()
	d.setRows(testTable, 3)
	for t := range comp.tablesOf() {
		if t != testTable {
			d.setRows(t, 2)
		}
	}
	for _, c := range comp.cols {
		if c.Table == testTable {
			d.set(c, sqldb.NewInt(1), sqldb.NewInt(1), sqldb.NewInt(2))
		} else {
			d.set(c, sqldb.NewInt(1), sqldb.NewInt(2))
		}
	}
	card, err := s.dgenCardinality(d, testTable, 3)
	if err != nil {
		return false, err
	}
	return card == 2, nil
}

// detectUngroupedAgg builds a two-row instance where every join
// component carries keys (1,2) and every unpinned column takes two
// distinct values; a single-row result reveals an ungrouped
// aggregation.
func (s *Session) detectUngroupedAgg() error {
	d := s.newDgen()
	for _, t := range s.tables {
		d.setRows(t, 2)
	}
	for i := range s.components {
		d.setComponentKeys(&s.components[i], []int64{1, 2}, d.rowsOfFn())
	}
	for _, col := range s.allColumns() {
		if s.inJoinGraph(col) {
			continue
		}
		pairs, err := s.candidatePairs(col)
		if err != nil {
			return err
		}
		if len(pairs) == 0 {
			continue // pinned: keep the constant default
		}
		d.set(col, pairs[0][0], pairs[0][1])
	}
	card, err := s.dgenCardinality(d, "", 2)
	if err != nil {
		return err
	}
	if card == 1 {
		s.ungroupedAgg = true
	}
	return nil
}

// dgenCardinality materializes the instance and returns the result
// cardinality; -1 signals an unpopulated probe. In having mode an
// empty result triggers one sum-preserving retry: the values of every
// numeric non-key untested column in the multiplied table are divided
// by the row multiplicity so per-table column sums survive the
// duplication.
func (s *Session) dgenCardinality(d *dgen, multipliedTable string, mult int) (int, error) {
	db, err := s.materialize(d)
	if err != nil {
		return -1, err
	}
	res, err := s.run(nil, db)
	if err == nil && res.Populated() {
		return res.RowCount(), nil
	}
	if !s.cfg.ExtractHaving || multipliedTable == "" {
		return -1, nil
	}
	// Sum-preserving retry.
	for _, cdef := range s.schemas[multipliedTable].Columns {
		col := sqldb.ColRef{Table: multipliedTable, Column: cdef.Name}
		if s.inJoinGraph(col) || s.isKeyColumn(col) {
			continue
		}
		if _, explicit := d.vals[col]; explicit {
			continue
		}
		if cdef.Type != sqldb.TInt && cdef.Type != sqldb.TFloat {
			continue
		}
		base, err := s.defaultValue(col)
		if err != nil || base.Null {
			continue
		}
		var scaled sqldb.Value
		if cdef.Type == sqldb.TInt {
			scaled = sqldb.NewInt(base.I / int64(mult))
		} else {
			v, err := sqldb.Div(base, sqldb.NewInt(int64(mult)))
			if err != nil {
				continue
			}
			scaled = v
		}
		d.setConst(col, scaled, mult)
	}
	db, err = s.materialize(d)
	if err != nil {
		return -1, err
	}
	res, err = s.run(nil, db)
	if err != nil || !res.Populated() {
		return -1, nil
	}
	return res.RowCount(), nil
}

// candidatePairs yields distinct satisfying value pairs for a column.
// Before filters are known (having mode) the pairs come from the D_1
// value plus alternatives drawn from the source column; afterwards
// from the s-value generator.
func (s *Session) candidatePairs(col sqldb.ColRef) ([][2]sqldb.Value, error) {
	if s.filtersKnown || !s.cfg.ExtractHaving {
		v1, v2, ok, err := s.sValuePair(col)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		return [][2]sqldb.Value{{v1, v2}}, nil
	}
	base, err := s.d1Value(col)
	if err != nil {
		return nil, err
	}
	if base.Null {
		return nil, nil
	}
	var out [][2]sqldb.Value
	for _, alt := range s.sourceAlternatives(col, base, 3) {
		out = append(out, [2]sqldb.Value{base, alt})
	}
	return out, nil
}

// sourceAlternatives samples up to max distinct values different from
// base out of the original D_I column (those values co-existed with a
// populated result, making them plausible s-values).
func (s *Session) sourceAlternatives(col sqldb.ColRef, base sqldb.Value, max int) []sqldb.Value {
	tbl, err := s.source.Table(col.Table)
	if err != nil {
		return nil
	}
	ci := tbl.Schema.ColumnIndex(col.Column)
	if ci < 0 {
		return nil
	}
	seen := map[string]bool{base.GroupKey(): true}
	var out []sqldb.Value
	for _, r := range tbl.SnapshotRows() {
		v := r[ci]
		if v.Null || seen[v.GroupKey()] {
			continue
		}
		seen[v.GroupKey()] = true
		out = append(out, v)
		if len(out) >= max {
			break
		}
	}
	return out
}

// defaultValue is the value materialize would assign to an
// unspecified column.
func (s *Session) defaultValue(col sqldb.ColRef) (sqldb.Value, error) {
	if s.cfg.ExtractHaving && !s.filtersKnown {
		return s.d1Value(col)
	}
	return s.sValue(col, 0)
}

// groupByContains reports whether a column (or its join component) is
// grouped.
func (s *Session) groupByContains(col sqldb.ColRef) bool {
	if s.groupBySet[col] {
		return true
	}
	if comp := s.componentOf(col); comp != nil {
		for _, c := range comp.cols {
			if s.groupBySet[c] {
				return true
			}
		}
	}
	return false
}

// ensureGroupConsistency double-checks the invariant that equality-
// pinned columns were excluded; used by tests.
func (s *Session) ensureGroupConsistency() error {
	for _, g := range s.groupBy {
		if s.eqFiltered(g) {
			return fmt.Errorf("group-by contains equality-pinned column %s", g)
		}
	}
	return nil
}
