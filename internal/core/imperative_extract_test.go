package core_test

import (
	"context"
	"testing"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/workloads/enki"
	"unmasque/internal/workloads/rubis"
	"unmasque/internal/workloads/wilos"
)

// verifyImperative extracts an imperative executable and checks the
// result against its ground-truth SQL on the original instance.
func verifyImperative(t *testing.T, db *sqldb.Database, exe *app.ImperativeExecutable) {
	t.Helper()
	ext, err := core.Extract(exe, db, defaultCfg())
	if err != nil {
		t.Fatalf("extraction failed: %v", err)
	}
	truth := exe.GroundTruthSQL()
	if truth == "" {
		return
	}
	want, err := db.Execute(context.Background(), sqlparser.MustParse(truth))
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Execute(context.Background(), ext.Query)
	if err != nil {
		t.Fatalf("extracted query fails: %v\n%s", err, ext.SQL)
	}
	if !normalizeRows(want).EqualUnordered(normalizeRows(got)) {
		t.Fatalf("extraction diverges from ground truth\ntruth: %s\nextracted: %s\nwant %d rows got %d",
			truth, ext.SQL, want.RowCount(), got.RowCount())
	}
	if len(ext.OrderBy) > 0 && !core.OrderedEquivalent(want, got, ext.OrderBy) {
		t.Fatalf("order-key sequences diverge\nextracted: %s", ext.SQL)
	}
}

func normalizeRows(r *sqldb.Result) *sqldb.Result {
	if r.Populated() {
		return r
	}
	return &sqldb.Result{Columns: r.Columns}
}

// TestExtractEnkiSuite converts every in-scope Enki command
// (experiment E6 / Figure 12).
func TestExtractEnkiSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite extraction is not short")
	}
	db := enki.NewDatabase(31)
	for _, cmd := range enki.Commands() {
		cmd := cmd
		t.Run(cmd.Name, func(t *testing.T) { verifyImperative(t, db, cmd.Exe) })
	}
}

// TestExtractWilosSuite converts every in-scope Wilos function
// (experiment E7 / Table 3).
func TestExtractWilosSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite extraction is not short")
	}
	db := wilos.NewDatabase(37)
	for _, fn := range wilos.Functions() {
		fn := fn
		t.Run(fn.Name, func(t *testing.T) { verifyImperative(t, db, fn.Exe) })
	}
}

// TestExtractRubisSuite converts every RUBiS servlet (experiment E8).
func TestExtractRubisSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite extraction is not short")
	}
	db := rubis.NewDatabase(41)
	for _, sv := range rubis.Servlets() {
		sv := sv
		t.Run(sv.Name, func(t *testing.T) { verifyImperative(t, db, sv.Exe) })
	}
}
