package core_test

// Cancellation tests for ExtractContext: a cancelled or deadline-
// expired context must abort the pipeline promptly — between probes,
// and inside in-flight executable runs — and surface the context
// error wrapped in an ExtractionError naming the phase.

import (
	"context"
	"errors"
	"testing"
	"time"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/workloads/tpch"
)

// cancelledTPCH runs a TPC-H Q3 extraction under the given context
// and returns its error (the extraction must fail).
func cancelledTPCH(t *testing.T, ctx context.Context, workers int) error {
	t.Helper()
	const name = "Q3"
	sql := tpch.HiddenQueries()[name]
	db := tpch.NewDatabase(tpch.ScaleTiny*4, 7)
	if err := tpch.PlantWitnesses(db, map[string]string{name: sql}); err != nil {
		t.Fatal(err)
	}
	cfg := defaultCfg()
	cfg.Workers = workers
	_, err := core.ExtractContext(ctx, app.MustSQLExecutable(name, sql), db, cfg)
	if err == nil {
		t.Fatal("extraction under a dying context succeeded")
	}
	return err
}

func TestExtractContextCancelAbortsPromptly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		err := cancelledTPCH(t, ctx, workers)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: error %v does not wrap context.Canceled", workers, err)
		}
		var xerr *core.ExtractionError
		if !errors.As(err, &xerr) || xerr.Module == "" {
			t.Fatalf("workers=%d: error %v does not name the aborted phase", workers, err)
		}
		// "Promptly": the full extraction takes seconds; an aborted one
		// must come back within a small multiple of the cancel delay.
		if elapsed > 2*time.Second {
			t.Fatalf("workers=%d: cancellation took %v to surface", workers, elapsed)
		}
	}
}

func TestExtractContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := cancelledTPCH(t, ctx, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	// The first pipeline phase must be the one that reports the abort:
	// nothing ran before it.
	var xerr *core.ExtractionError
	if !errors.As(err, &xerr) || xerr.Module != "from-clause" {
		t.Fatalf("pre-cancelled extraction aborted in %v, want from-clause", err)
	}
}

func TestExtractContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	err := cancelledTPCH(t, ctx, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}
