package core_test

import (
	"context"
	"testing"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/sqldb"
	"unmasque/internal/workloads/tpch"
)

// TestExtractTPCHSuite extracts every Figure-9 query end to end on a
// tiny instance and verifies semantic equivalence on the original
// database — the integration backbone of the reproduction.
func TestExtractTPCHSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite extraction is not short")
	}
	db := tpch.NewDatabase(tpch.ScaleTiny, 11)
	if err := tpch.PlantWitnesses(db, tpch.HiddenQueries()); err != nil {
		t.Fatal(err)
	}
	for _, name := range tpch.QueryOrder() {
		name := name
		sql := tpch.HiddenQueries()[name]
		t.Run(name, func(t *testing.T) {
			exe := app.MustSQLExecutable(name, sql)
			ext, err := core.Extract(exe, db, defaultCfg())
			if err != nil {
				t.Fatalf("extraction failed: %v", err)
			}
			verifyEquivalent(t, db, exe, ext)
		})
	}
}

// TestExtractRegalSuite extracts the Figure-8 RQ queries.
func TestExtractRegalSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite extraction is not short")
	}
	db := tpch.NewDatabase(tpch.ScaleTiny, 13)
	if err := tpch.PlantWitnesses(db, tpch.RegalQueries()); err != nil {
		t.Fatal(err)
	}
	for _, name := range tpch.RegalOrder() {
		name := name
		sql := tpch.RegalQueries()[name]
		t.Run(name, func(t *testing.T) {
			exe := app.MustSQLExecutable(name, sql)
			ext, err := core.Extract(exe, db, defaultCfg())
			if err != nil {
				t.Fatalf("extraction failed: %v", err)
			}
			verifyEquivalent(t, db, exe, ext)
		})
	}
}

// TestExtractHavingSuite exercises the Section 7 pipeline.
func TestExtractHavingSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite extraction is not short")
	}
	db := tpch.NewDatabase(tpch.ScaleTiny, 17)
	if err := tpch.PlantWitnesses(db, tpch.HavingQueries()); err != nil {
		t.Fatal(err)
	}
	cfg := defaultCfg()
	cfg.ExtractHaving = true
	for name, sql := range tpch.HavingQueries() {
		name, sql := name, sql
		t.Run(name, func(t *testing.T) {
			exe := app.MustSQLExecutable(name, sql)
			ext, err := core.Extract(exe, db, cfg)
			if err != nil {
				t.Fatalf("having extraction failed: %v", err)
			}
			if len(ext.Having) == 0 {
				t.Errorf("no having predicate extracted: %s", ext.SQL)
			}
			verifyEquivalent(t, db, exe, ext)
		})
	}
}

func verifyEquivalent(t *testing.T, db *sqldb.Database, exe app.Executable, ext *core.Extraction) {
	t.Helper()
	want, err := exe.Run(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Execute(context.Background(), ext.Query)
	if err != nil {
		t.Fatalf("extracted query fails: %v\n%s", err, ext.SQL)
	}
	if len(ext.OrderBy) > 0 {
		if !core.OrderedEquivalent(want, got, ext.OrderBy) {
			t.Fatalf("ordered results differ on D_I\nextracted: %s\nwant %d rows got %d",
				ext.SQL, want.RowCount(), got.RowCount())
		}
		return
	}
	if !want.EqualUnordered(got) {
		t.Fatalf("results differ on D_I\nextracted: %s\nwant %d rows got %d",
			ext.SQL, want.RowCount(), got.RowCount())
	}
}
