package core

import (
	"fmt"
	"math"

	"unmasque/internal/sqldb"
)

// extractAggregations refines the projection list into native
// projections P_E and aggregations A_E (Section 5.2). For each output
// a k+1-row single-group instance is generated in which every
// candidate aggregate of the known scalar function produces a unique
// value, so a single observation identifies the aggregation. Unmapped
// outputs resolve to count(*) or constants.
func (s *Session) extractAggregations() error {
	if len(s.groupBy) == 0 && !s.ungroupedAgg {
		// Plain SPJ query: projections stay native.
		return nil
	}
	for oi := range s.projections {
		p := &s.projections[oi]
		var err error
		switch {
		case p.Constant:
			err = s.resolveUnmapped(oi, p)
		case s.depsAllGrouped(p):
			err = s.resolveGroupConstant(oi, p)
		default:
			err = s.resolveGeneral(oi, p)
		}
		if err != nil {
			return fmt.Errorf("output %q: %w", p.OutputName, err)
		}
	}
	return nil
}

// depsAllGrouped reports whether every dependency of the projection
// is (join-equal to) a group-by column.
func (s *Session) depsAllGrouped(p *Projection) bool {
	for _, d := range p.Deps {
		if !s.groupByContains(d) {
			return false
		}
	}
	return len(p.Deps) > 0
}

// singleGroupInstance builds a k+1-row instance forming exactly one
// output group: the multiplied table's rows share all group-by and
// free columns; overrides pin specific columns.
type aggProbe struct {
	table string
	k     int
	over  map[sqldb.ColRef][]sqldb.Value
}

func (s *Session) runAggProbe(pr aggProbe, oi int) (sqldb.Value, error) {
	d := s.newDgen()
	n := pr.k + 1
	d.setRows(pr.table, n)
	// If the multiplied table participates in join components, the
	// connected tables must provide matching keys. Components touched
	// by explicit overrides are assumed handled by the caller; all
	// other components keep the constant key 1 (dgen default), which
	// joins all n rows against single-row tables.
	for col, vals := range pr.over {
		if len(vals) == 1 {
			d.setConst(col, vals[0], rowsFor(d, col.Table))
		} else {
			d.set(col, vals...)
		}
	}
	db, err := s.materialize(d)
	if err != nil {
		return sqldb.Value{}, err
	}
	res, err := s.mustResult(nil, db)
	if err != nil {
		return sqldb.Value{}, err
	}
	if res.RowCount() != 1 {
		return sqldb.Value{}, fmt.Errorf("aggregation probe produced %d rows, want 1", res.RowCount())
	}
	return res.Rows[0][oi], nil
}

func rowsFor(d *dgen, table string) int {
	if n, ok := d.rows[table]; ok && n > 0 {
		return n
	}
	return 1
}

// resolveUnmapped settles outputs with no column dependencies:
// count(*), a sum over an equality-pinned column, or a constant.
func (s *Session) resolveUnmapped(oi int, p *Projection) error {
	v := p.ConstVal
	// Pick k so that k+1 differs from the constant. (A column pinned
	// to 1 makes sum(col) coincide with count(*) for every k — they
	// are semantically identical under the filter, and count(*) is
	// the canonical choice, so only the constant needs separating.)
	k := 3
	if !v.Null && v.Typ.IsNumeric() {
		for nearly(float64(k+1), v.AsFloat()) {
			k++
		}
	}
	table := s.tables[0]
	got, err := s.runAggProbe(aggProbe{table: table, k: k, over: map[sqldb.ColRef][]sqldb.Value{}}, oi)
	if err != nil {
		return err
	}
	switch {
	case !got.Null && got.Typ.IsNumeric() && nearly(got.AsFloat(), float64(k+1)):
		p.Constant = false
		p.CountStar = true
		p.Agg = sqldb.AggCount
	case sqldb.ApproxEqual(got, v):
		// Looks constant — but count(distinct A) is also constant (1)
		// on every probe where A never varies. Re-probe with varied
		// per-row values before settling on a literal (an extension
		// beyond the paper's base scope, which defers distinct).
		if found, err := s.resolveDistinctCount(oi, p, k); err != nil || found {
			return err
		}
		// Genuine constant output; keep as literal.
	case !got.Null && got.Typ.IsNumeric() && !v.Null && v.Typ.IsNumeric() &&
		nearly(got.AsFloat(), v.AsFloat()*float64(k+1)):
		// Sum over a column pinned by an equality filter.
		col, ok := s.findPinnedNumeric(v, table)
		if !ok {
			return fmt.Errorf("output scales with cardinality but no pinned column matches value %v", v)
		}
		p.Constant = false
		p.Deps = []sqldb.ColRef{col}
		p.Coeffs = []float64{0, 1}
		p.Agg = sqldb.AggSum
	default:
		return fmt.Errorf("unmapped output value %v unexplained by count(*), constant, or pinned sum (probe saw %v)", v, got)
	}
	return nil
}

// resolveDistinctCount hunts for a count(distinct A) hiding behind a
// constant-looking unmapped output: for each extracted table, a
// k+1-row probe varies every free column per row — a distinct-count
// over any of them then reads k+1 instead of 1. A second, per-column
// pass pins down the argument.
func (s *Session) resolveDistinctCount(oi int, p *Projection, k int) (bool, error) {
	for _, table := range s.tables {
		free := s.freeColumnsForDistinct(table, k)
		if len(free) == 0 {
			continue
		}
		over := map[sqldb.ColRef][]sqldb.Value{}
		for col, vals := range free {
			over[col] = vals
		}
		got, err := s.runAggProbe(aggProbe{table: table, k: k, over: over}, oi)
		if err != nil {
			// Group splitting or probe degeneration: not this table.
			continue
		}
		if got.Null || !got.Typ.IsNumeric() || !nearly(got.AsFloat(), float64(k+1)) {
			continue
		}
		// Some column in this table drives a distinct count; isolate it.
		for col, vals := range free {
			single := map[sqldb.ColRef][]sqldb.Value{col: vals}
			got, err := s.runAggProbe(aggProbe{table: table, k: k, over: single}, oi)
			if err != nil {
				continue
			}
			if !got.Null && got.Typ.IsNumeric() && nearly(got.AsFloat(), float64(k+1)) {
				p.Constant = false
				p.Deps = []sqldb.ColRef{col}
				p.Coeffs = []float64{0, 1}
				p.Agg = sqldb.AggCount
				p.Distinct = true
				return true, nil
			}
		}
	}
	return false, nil
}

// freeColumnsForDistinct lists the columns of a table that can take
// k+1 pairwise-distinct s-values without disturbing grouping or
// joins, with those value sequences.
func (s *Session) freeColumnsForDistinct(table string, k int) map[sqldb.ColRef][]sqldb.Value {
	out := map[sqldb.ColRef][]sqldb.Value{}
	for _, cdef := range s.schemas[table].Columns {
		col := sqldb.ColRef{Table: table, Column: cdef.Name}
		if s.inJoinGraph(col) || s.groupByContains(col) || s.eqFiltered(col) {
			continue
		}
		vals := make([]sqldb.Value, 0, k+1)
		seen := map[string]bool{}
		ok := true
		for i := 0; i <= k; i++ {
			v, err := s.sValue(col, i)
			if err != nil || seen[v.GroupKey()] {
				ok = false
				break
			}
			seen[v.GroupKey()] = true
			vals = append(vals, v)
		}
		if ok {
			out[col] = vals
		}
	}
	return out
}

// findPinnedNumeric locates an equality-pinned numeric column whose
// value matches v, preferring the multiplied table.
func (s *Session) findPinnedNumeric(v sqldb.Value, preferred string) (sqldb.ColRef, bool) {
	var fallback sqldb.ColRef
	found := false
	for _, col := range s.filterOrder {
		f := s.filters[col]
		if !f.IsEquality() || f.Kind != FilterRange {
			continue
		}
		if !sqldb.ApproxEqual(f.Lo, v) {
			continue
		}
		if col.Table == preferred {
			return col, true
		}
		if !found {
			fallback, found = col, true
		}
	}
	return fallback, found
}

// resolveGroupConstant handles functions of group-by columns only:
// within one group the function is a constant c, so only sum and
// count are distinguishable from a native projection (min, max and
// avg are all equal to c; the assembler keeps the native form).
func (s *Session) resolveGroupConstant(oi int, p *Projection) error {
	if s.hasNonNumericDep(p) {
		return s.resolveGroupConstantOrdinal(oi, p)
	}
	c, err := s.evalFunction(p, 0)
	if err != nil {
		return err
	}
	// Need c not in {0, 1} so that c, (k+1)c and k+1 can separate.
	variant := 0
	for (nearly(c, 0) || nearly(c, 1)) && variant < 8 {
		variant++
		c, err = s.evalFunction(p, variant)
		if err != nil {
			return err
		}
	}
	if nearly(c, 0) || nearly(c, 1) {
		// Degenerate domain (e.g. a 0/1 flag column): a single probe
		// cannot separate native/sum/count, but two probes at two
		// different constants can.
		return s.resolveGroupConstantTwoProbe(oi, p)
	}
	k := 3
	for nearly(float64(k+1), c) {
		k++
	}
	over := map[sqldb.ColRef][]sqldb.Value{}
	if err := s.pinDeps(p, variant, over); err != nil {
		return err
	}
	got, err := s.runAggProbe(aggProbe{table: p.Deps[0].Table, k: k, over: over}, oi)
	if err != nil {
		return err
	}
	switch {
	case !got.Null && sqldb.ApproxEqual(got, valueLike(got, c)):
		p.Agg = sqldb.AggNone // native projection (≡ min/max/avg)
	case !got.Null && got.Typ.IsNumeric() && nearly(got.AsFloat(), c*float64(k+1)):
		p.Agg = sqldb.AggSum
	case !got.Null && got.Typ.IsNumeric() && nearly(got.AsFloat(), float64(k+1)):
		p.Agg = sqldb.AggCount
	default:
		return fmt.Errorf("group-constant probe value %v matches no aggregate of c=%v", got, c)
	}
	return nil
}

// resolveGroupConstantTwoProbe separates native/sum/count for
// group-constant functions confined to tiny domains (c can only be 0
// or 1): with two probes at constants c_a != c_b the observation
// pairs are distinct — native (c_a, c_b), sum ((k+1)c_a, (k+1)c_b),
// count (k+1, k+1).
func (s *Session) resolveGroupConstantTwoProbe(oi int, p *Projection) error {
	k := 3
	type obs struct{ c, got float64 }
	var seen []obs
	for variant := 0; variant < 10 && len(seen) < 2; variant++ {
		c, err := s.evalFunction(p, variant)
		if err != nil {
			return err
		}
		dup := false
		for _, o := range seen {
			if nearly(o.c, c) {
				dup = true
			}
		}
		if dup {
			continue
		}
		over := map[sqldb.ColRef][]sqldb.Value{}
		if err := s.pinDeps(p, variant, over); err != nil {
			return err
		}
		got, err := s.runAggProbe(aggProbe{table: p.Deps[0].Table, k: k, over: over}, oi)
		if err != nil {
			return err
		}
		if got.Null || !got.Typ.IsNumeric() {
			return fmt.Errorf("two-probe output %v is not numeric", got)
		}
		seen = append(seen, obs{c: c, got: got.AsFloat()})
	}
	if len(seen) < 2 {
		return fmt.Errorf("could not obtain two distinct group-constant values")
	}
	a, b := seen[0], seen[1]
	switch {
	case nearly(a.got, float64(k+1)) && nearly(b.got, float64(k+1)):
		p.Agg = sqldb.AggCount
	case nearly(a.got, a.c) && nearly(b.got, b.c):
		p.Agg = sqldb.AggNone
	case nearly(a.got, a.c*float64(k+1)) && nearly(b.got, b.c*float64(k+1)):
		p.Agg = sqldb.AggSum
	default:
		return fmt.Errorf("two-probe observations (%v,%v),(%v,%v) match no aggregate", a.c, a.got, b.c, b.got)
	}
	return nil
}

// hasNonNumericDep reports whether any dependency column is date,
// text or bool.
func (s *Session) hasNonNumericDep(p *Projection) bool {
	for _, d := range p.Deps {
		def, err := s.column(d)
		if err != nil {
			return true
		}
		if def.Type != sqldb.TInt && def.Type != sqldb.TFloat {
			return true
		}
	}
	return false
}

// resolveGroupConstantOrdinal settles fully grouped date/text/bool
// outputs: within one group the value is constant, so only count
// separates from a native projection (min/max equal the value; sum
// and avg are not defined on these types).
func (s *Session) resolveGroupConstantOrdinal(oi int, p *Projection) error {
	k := 3
	over := map[sqldb.ColRef][]sqldb.Value{}
	if err := s.pinDeps(p, 0, over); err != nil {
		return err
	}
	got, err := s.runAggProbe(aggProbe{table: p.Deps[0].Table, k: k, over: over}, oi)
	if err != nil {
		return err
	}
	if !got.Null && got.Typ == sqldb.TInt && got.I == int64(k+1) {
		p.Agg = sqldb.AggCount
		return nil
	}
	// Expected constant: the dependency value through the (identity
	// or date-offset) function.
	want, err := s.depValue(p.Deps[0], 0)
	if err != nil {
		return err
	}
	if want.Typ == sqldb.TDate && len(p.Coeffs) == 2 {
		want = sqldb.NewDate(want.I + int64(p.Coeffs[0]))
	}
	if sqldb.ApproxEqual(got, want) {
		p.Agg = sqldb.AggNone
		return nil
	}
	return fmt.Errorf("group-constant ordinal probe %v matches neither the value %v nor count %d", got, want, k+1)
}

// pinDeps pins every dependency of p to its variant s-value in the
// probe instance (group-by columns must stay common across rows).
func (s *Session) pinDeps(p *Projection, variant int, over map[sqldb.ColRef][]sqldb.Value) error {
	for _, dcol := range p.Deps {
		v, err := s.depValue(dcol, variant)
		if err != nil {
			return err
		}
		if comp := s.componentOf(dcol); comp != nil {
			for _, c := range comp.cols {
				over[c] = []sqldb.Value{v}
			}
		} else {
			over[dcol] = []sqldb.Value{v}
		}
	}
	return nil
}

// depValue picks the variant s-value of a dependency column (keys use
// positive integers).
func (s *Session) depValue(col sqldb.ColRef, variant int) (sqldb.Value, error) {
	if s.inJoinGraph(col) {
		return sqldb.NewInt(int64(2 + variant)), nil
	}
	return s.sValue(col, variant)
}

// evalFunction evaluates the multi-linear function at its deps'
// variant s-values.
func (s *Session) evalFunction(p *Projection, variant int) (float64, error) {
	xs := make([]float64, len(p.Deps))
	for i, d := range p.Deps {
		v, err := s.depValue(d, variant)
		if err != nil {
			return 0, err
		}
		if v.Null || !v.Typ.IsNumeric() {
			return 0, fmt.Errorf("dependency %s is not numeric", d)
		}
		xs[i] = v.AsFloat()
	}
	return evalMultilinear(p.Coeffs, xs), nil
}

func evalMultilinear(coeffs []float64, xs []float64) float64 {
	total := 0.0
	for mask, c := range coeffs {
		if c == 0 {
			continue
		}
		term := c
		for bit := range xs {
			if mask&(1<<bit) != 0 {
				term *= xs[bit]
			}
		}
		total += term
	}
	return total
}

// valueLike wraps a float as a value of the same family as got, for
// ApproxEqual comparisons.
func valueLike(got sqldb.Value, f float64) sqldb.Value {
	if got.Typ == sqldb.TInt && f == math.Trunc(f) {
		return sqldb.NewInt(int64(f))
	}
	return sqldb.NewFloat(f)
}

// resolveGeneral handles functions with at least one ungrouped
// dependency: the classic k-vs-1 value split over that argument.
func (s *Session) resolveGeneral(oi int, p *Projection) error {
	// Choose the vary-argument: the first dependency not in G_E.
	vi := -1
	for i, d := range p.Deps {
		if !s.groupByContains(d) {
			vi = i
			break
		}
	}
	if vi < 0 {
		return fmt.Errorf("internal: resolveGeneral with fully grouped deps")
	}
	vcol := p.Deps[vi]
	def, err := s.column(vcol)
	if err != nil {
		return err
	}
	switch def.Type {
	case sqldb.TDate, sqldb.TText, sqldb.TBool:
		return s.resolveOrdinal(oi, p, vcol, def)
	}

	// Numeric path: find s-value pair with o1 != o2, o1 != 0.
	var si, si2 sqldb.Value
	var o1, o2 float64
	okPair := false
	for variant := 0; variant < 12 && !okPair; variant++ {
		a, err := s.depValue(vcol, variant)
		if err != nil {
			continue
		}
		b, err := s.depValue(vcol, variant+1)
		if err != nil {
			continue
		}
		if sqldb.Equal(a, b) {
			continue
		}
		oa, err := s.evalFunctionAt(p, vi, a, variant)
		if err != nil {
			return err
		}
		ob, err := s.evalFunctionAt(p, vi, b, variant)
		if err != nil {
			return err
		}
		if nearly(oa, ob) {
			continue
		}
		if nearly(oa, 0) {
			oa, ob = ob, oa
			a, b = b, a
		}
		if nearly(oa, 0) {
			continue
		}
		si, si2, o1, o2, okPair = a, b, oa, ob, true
		// Pin the other deps at this variant for probe construction.
		if err := s.pinOtherDeps(p, vi, variant); err != nil {
			return err
		}
	}
	if !okPair {
		return fmt.Errorf("could not find argument values separating aggregates for %s", vcol)
	}

	k := pickK(o1, o2)
	over := map[sqldb.ColRef][]sqldb.Value{}
	for col, v := range s.pinned {
		over[col] = []sqldb.Value{v}
	}
	// The varied column: k rows at si, one at si'.
	vals := make([]sqldb.Value, k+1)
	for i := 0; i < k; i++ {
		vals[i] = si
	}
	vals[k] = si2
	if comp := s.componentOf(vcol); comp != nil {
		// Key argument: connected tables need both key values.
		for _, c := range comp.cols {
			if c.Table == vcol.Table {
				over[c] = vals
			} else {
				over[c] = []sqldb.Value{si, si2}
			}
		}
		got, err := s.runAggProbeJoin(vcol, comp, k, over, oi)
		if err != nil {
			return err
		}
		return s.matchAggregate(p, got, o1, o2, k)
	}
	over[vcol] = vals
	got, err := s.runAggProbe(aggProbe{table: vcol.Table, k: k, over: over}, oi)
	if err != nil {
		return err
	}
	return s.matchAggregate(p, got, o1, o2, k)
}

// runAggProbeJoin is the Case-2 variant: connected tables carry two
// rows keyed by the two argument values.
func (s *Session) runAggProbeJoin(vcol sqldb.ColRef, comp *joinComponent, k int, over map[sqldb.ColRef][]sqldb.Value, oi int) (sqldb.Value, error) {
	d := s.newDgen()
	d.setRows(vcol.Table, k+1)
	for t := range comp.tablesOf() {
		if t != vcol.Table {
			d.setRows(t, 2)
		}
	}
	for col, vals := range over {
		if len(vals) == 1 {
			d.setConst(col, vals[0], rowsFor(d, col.Table))
		} else {
			d.set(col, vals...)
		}
	}
	db, err := s.materialize(d)
	if err != nil {
		return sqldb.Value{}, err
	}
	res, err := s.mustResult(nil, db)
	if err != nil {
		return sqldb.Value{}, err
	}
	if res.RowCount() != 1 {
		return sqldb.Value{}, fmt.Errorf("join aggregation probe produced %d rows, want 1", res.RowCount())
	}
	return res.Rows[0][oi], nil
}

// matchAggregate compares the observed output against the five unique
// candidate values.
func (s *Session) matchAggregate(p *Projection, got sqldb.Value, o1, o2 float64, k int) error {
	if got.Null || !got.Typ.IsNumeric() {
		return fmt.Errorf("aggregation probe output %v is not numeric", got)
	}
	g := got.AsFloat()
	switch {
	case nearly(g, math.Min(o1, o2)):
		p.Agg = sqldb.AggMin
	case nearly(g, math.Max(o1, o2)):
		p.Agg = sqldb.AggMax
	case nearly(g, float64(k+1)):
		p.Agg = sqldb.AggCount
	case nearly(g, float64(k)*o1+o2):
		p.Agg = sqldb.AggSum
	case nearly(g, (float64(k)*o1+o2)/float64(k+1)):
		p.Agg = sqldb.AggAvg
	case nearly(g, 2) && !nearly(float64(k+1), 2):
		// Extension beyond the paper's base scope: the probe carried
		// exactly two distinct argument values, so an output of 2 that
		// matches none of the five plain aggregates identifies
		// count(distinct A). The checker's D_I and instance stages
		// guard against a coincidental collision.
		p.Agg = sqldb.AggCount
		p.Distinct = true
	default:
		return fmt.Errorf("probe output %v matches no aggregate (o1=%v o2=%v k=%d)", g, o1, o2, k)
	}
	return nil
}

// resolveOrdinal identifies min/max/count over date, text and bool
// functions (identity class) by observing which of two ordered values
// the single-group output reports.
func (s *Session) resolveOrdinal(oi int, p *Projection, vcol sqldb.ColRef, def sqldb.Column) error {
	v1, v2, ok, err := s.sValuePair(vcol)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("argument %s is pinned; cannot separate aggregates", vcol)
	}
	if c, err := sqldb.Compare(v1, v2); err == nil && c > 0 {
		v1, v2 = v2, v1
	}
	k := 2
	over := map[sqldb.ColRef][]sqldb.Value{}
	vals := []sqldb.Value{v1, v1, v2}
	over[vcol] = vals
	got, err := s.runAggProbe(aggProbe{table: vcol.Table, k: k, over: over}, oi)
	if err != nil {
		return err
	}
	// Account for a date offset function: O = A + d.
	adjust := func(v sqldb.Value) sqldb.Value {
		if def.Type == sqldb.TDate && len(p.Coeffs) == 2 {
			return sqldb.NewDate(v.I + int64(p.Coeffs[0]))
		}
		return v
	}
	switch {
	case sqldb.ApproxEqual(got, adjust(v1)):
		p.Agg = sqldb.AggMin
	case sqldb.ApproxEqual(got, adjust(v2)):
		p.Agg = sqldb.AggMax
	case !got.Null && got.Typ.IsNumeric() && nearly(got.AsFloat(), float64(k+1)):
		p.Agg = sqldb.AggCount
	case !got.Null && got.Typ.IsNumeric() && nearly(got.AsFloat(), 2):
		// Two distinct argument values in the probe: count(distinct).
		p.Agg = sqldb.AggCount
		p.Distinct = true
	default:
		return fmt.Errorf("ordinal probe output %v matches no aggregate of (%v, %v)", got, v1, v2)
	}
	return nil
}

// evalFunctionAt evaluates the function with dependency vi at value v
// and the others at the variant s-value.
func (s *Session) evalFunctionAt(p *Projection, vi int, v sqldb.Value, variant int) (float64, error) {
	xs := make([]float64, len(p.Deps))
	for i, d := range p.Deps {
		if i == vi {
			if v.Null || !v.Typ.IsNumeric() {
				return 0, fmt.Errorf("argument %s is not numeric", d)
			}
			xs[i] = v.AsFloat()
			continue
		}
		dv, err := s.depValue(d, variant)
		if err != nil {
			return 0, err
		}
		if dv.Null || !dv.Typ.IsNumeric() {
			return 0, fmt.Errorf("dependency %s is not numeric", d)
		}
		xs[i] = dv.AsFloat()
	}
	return evalMultilinear(p.Coeffs, xs), nil
}

// pinOtherDeps records the probe-time values of the non-varied
// dependencies in the session scratch map.
func (s *Session) pinOtherDeps(p *Projection, vi int, variant int) error {
	if s.pinned == nil {
		s.pinned = map[sqldb.ColRef]sqldb.Value{}
	}
	for k := range s.pinned {
		delete(s.pinned, k)
	}
	for i, d := range p.Deps {
		if i == vi {
			continue
		}
		v, err := s.depValue(d, variant)
		if err != nil {
			return err
		}
		if comp := s.componentOf(d); comp != nil {
			for _, c := range comp.cols {
				s.pinned[c] = v
			}
		} else {
			s.pinned[d] = v
		}
	}
	return nil
}

// pickK returns the smallest positive k making the five aggregate
// candidates pairwise distinct — the direct-search equivalent of the
// paper's closed-form forbidden set (Equation 2); the two are
// property-tested against each other.
func pickK(o1, o2 float64) int {
	for k := 1; ; k++ {
		if aggCandidatesDistinct(o1, o2, k) {
			return k
		}
	}
}

func aggCandidatesDistinct(o1, o2 float64, k int) bool {
	c := []float64{
		math.Min(o1, o2),
		math.Max(o1, o2),
		float64(k + 1),
		float64(k)*o1 + o2,
		(float64(k)*o1 + o2) / float64(k+1),
	}
	for i := 0; i < len(c); i++ {
		for j := i + 1; j < len(c); j++ {
			if nearly(c[i], c[j]) {
				return false
			}
		}
	}
	return true
}

// forbiddenKValues is the closed-form Equation 2 set: every real k at
// which two aggregate candidates coincide (assuming o1 != o2, o1 != 0).
func forbiddenKValues(o1, o2 float64) []float64 {
	out := []float64{
		0,         // sum==min/max at o2; avg==o2
		o1 - 1,    // count==o1
		o2 - 1,    // count==o2
		1 - o2/o1, // sum==o1
		-o2 / o1,  // sum==0 (sum==avg)
	}
	if o1 != 1 {
		out = append(out, (1-o2)/(o1-1)) // sum==count
	}
	// avg==count: k^2 + (2-o1)k + (1-o2) = 0.
	disc := (o1-2)*(o1-2) + 4*(o2-1)
	if disc >= 0 {
		r := math.Sqrt(disc)
		out = append(out, ((o1-2)+r)/2, ((o1-2)-r)/2)
	}
	return out
}
