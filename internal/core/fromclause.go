package core

import (
	"errors"
	"fmt"

	"unmasque/internal/app"
	"unmasque/internal/obs"
	"unmasque/internal/sqldb"
)

// extractFromClause identifies T_E, the set of tables referenced by
// the hidden query (Section 4.1): each candidate table is renamed and
// the application re-run; an immediate missing-table fault means the
// table is part of the query. Applications untouched by the rename
// either complete or are cut off by the probe timeout.
//
// The per-table probes are mutually independent, so they fan out over
// the scheduler's worker pool: each probe runs against a shared-row
// clone of the provided instance (sqldb.CloneShared) carrying only
// its own rename. The clone copies table structs but not rows, so a
// probe costs O(tables) setup regardless of instance size, and the
// untouched source serves every clone concurrently, read-only. The
// working silo is built afterwards carrying only the contents of T_E
// — copying the full instance row-wise would double peak memory for
// nothing, since the query never reads the other tables.
func (s *Session) extractFromClause() error {
	const tempName = "unmasque_probe_tmp"
	names := s.source.TableNames()
	inQuery := make([]bool, len(names))
	err := s.parallelFor(len(names), func(pc *probeCtx, i int) error {
		probe := s.source.CloneShared()
		if err := probe.RenameTable(names[i], tempName); err != nil {
			return err
		}
		// Short probe deadline: a missing-table fault is immediate,
		// while an unaffected application would otherwise run to
		// completion on the full instance for every negative probe.
		// Rename probes never consult the run cache (fingerprinting
		// the full instance would dwarf the probe itself), so they
		// record their ledger event here; a missing-table fault or
		// timeout IS the observation, not an incident.
		start := s.cfg.Clock()
		res, err := app.RunCtx(s.ctx, s.exe, probe, s.cfg.ProbeTimeout)
		s.observe(pc, obs.ProbeEvent{Kind: obs.KindRename, Table: names[i], Cache: obs.CacheNone},
			res, err, s.cfg.Clock().Sub(start))
		switch {
		case errors.Is(err, sqldb.ErrNoSuchTable):
			inQuery[i] = true
		case errors.Is(err, app.ErrTimeout):
			// Execution unaffected by the rename but slow: the table
			// is not in the query.
		case err != nil:
			// Any other failure is unexpected at this stage — the
			// application ran on an intact (modulo rename) instance.
			return fmt.Errorf("probing table %s: %w", names[i], err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i, name := range names {
		if inQuery[i] {
			s.tables = append(s.tables, name)
		}
	}
	if len(s.tables) == 0 {
		return fmt.Errorf("no query tables detected; does the application read this database?")
	}
	// Build the silo: every table's schema, but rows only for T_E
	// (referential constraints are irrelevant — the engine does not
	// enforce them, matching the paper's dropped-RI silo).
	return s.timed(&s.stats.SiloSetup, func() error {
		relevant := map[string]bool{}
		for _, t := range s.tables {
			relevant[t] = true
		}
		s.silo = s.source.CloneTables(relevant)
		for _, t := range s.tables {
			tbl, err := s.silo.Table(t)
			if err != nil {
				return err
			}
			s.schemas[t] = tbl.Schema.Clone()
		}
		return nil
	})
}
