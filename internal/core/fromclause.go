package core

import (
	"errors"
	"fmt"

	"unmasque/internal/app"
	"unmasque/internal/sqldb"
)

// extractFromClause identifies T_E, the set of tables referenced by
// the hidden query (Section 4.1): each candidate table is temporarily
// renamed; if the application immediately errors with a missing-table
// fault, the table is part of the query. Applications untouched by
// the rename either complete or are cut off by the probe timeout.
//
// Probing runs against the provided instance directly (each rename is
// reverted before the next probe), and the working silo is built
// afterwards carrying only the contents of T_E — copying the full
// instance first would double peak memory for nothing, since the
// query never reads the other tables.
func (s *Session) extractFromClause() error {
	const tempName = "unmasque_probe_tmp"
	for _, t := range s.source.TableNames() {
		if err := s.source.RenameTable(t, tempName); err != nil {
			return err
		}
		// Short probe deadline: a missing-table fault is immediate,
		// while an unaffected application would otherwise run to
		// completion on the full instance for every negative probe.
		_, err := app.RunWithTimeout(s.exe, s.source, s.cfg.ProbeTimeout)
		switch {
		case errors.Is(err, sqldb.ErrNoSuchTable):
			s.tables = append(s.tables, t)
		case errors.Is(err, app.ErrTimeout):
			// Execution unaffected by the rename but slow: t is not
			// in the query.
		case err != nil:
			// Any other failure is unexpected at this stage — the
			// application ran on an intact (modulo rename) instance.
			if restoreErr := s.source.RenameTable(tempName, t); restoreErr != nil {
				return restoreErr
			}
			return fmt.Errorf("probing table %s: %w", t, err)
		}
		if err := s.source.RenameTable(tempName, t); err != nil {
			return err
		}
	}
	if len(s.tables) == 0 {
		return fmt.Errorf("no query tables detected; does the application read this database?")
	}
	// Build the silo: every table's schema, but rows only for T_E
	// (referential constraints are irrelevant — the engine does not
	// enforce them, matching the paper's dropped-RI silo).
	return timed(&s.stats.SiloSetup, func() error {
		relevant := map[string]bool{}
		for _, t := range s.tables {
			relevant[t] = true
		}
		s.silo = s.source.CloneTables(relevant)
		for _, t := range s.tables {
			tbl, err := s.silo.Table(t)
			if err != nil {
				return err
			}
			s.schemas[t] = tbl.Schema.Clone()
		}
		return nil
	})
}
