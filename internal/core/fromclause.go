package core

import (
	"errors"
	"fmt"

	"unmasque/internal/app"
	"unmasque/internal/obs"
	"unmasque/internal/sqldb"
)

// extractFromClause identifies T_E, the set of tables referenced by
// the hidden query (Section 4.1): each candidate table is renamed and
// the application re-run; an immediate missing-table fault means the
// table is part of the query. Applications untouched by the rename
// either complete or are cut off by the probe timeout.
//
// The per-table probes are mutually independent, so they fan out over
// the scheduler's worker pool: each probe runs against a shared-row
// clone of the provided instance (sqldb.CloneShared) carrying only
// its own rename. The clone copies table structs but not rows, so a
// probe costs O(tables) setup regardless of instance size, and the
// untouched source serves every clone concurrently, read-only. The
// working silo is built afterwards carrying only the contents of T_E
// — copying the full instance row-wise would double peak memory for
// nothing, since the query never reads the other tables.
func (s *Session) extractFromClause() error {
	const tempName = "unmasque_probe_tmp"
	names := s.source.TableNames()
	inQuery := make([]bool, len(names))
	err := s.parallelFor(len(names), func(pc *probeCtx, i int) error {
		probe := s.source.CloneShared()
		if err := probe.RenameTable(names[i], tempName); err != nil {
			return err
		}
		// Short probe deadline: a missing-table fault is immediate,
		// while an unaffected application would otherwise run to
		// completion on the full instance for every negative probe.
		// Rename probes never consult the in-session run cache
		// (fingerprints never repeat within the fan-out — each probe
		// renames a different table), so they record their ledger
		// event here; a missing-table fault or timeout IS the
		// observation, not an incident. The durable cross-job tier is
		// a different story: a warm daemon has already paid for these
		// exact probes, so when a shared cache is attached (and the
		// instance is within the disk-tier bound) the fingerprint is
		// consulted and a repeat extraction invokes E zero times.
		_, err := s.runRenameProbe(pc, probe, names[i])
		switch {
		case errors.Is(err, sqldb.ErrNoSuchTable):
			inQuery[i] = true
		case errors.Is(err, app.ErrTimeout):
			// Execution unaffected by the rename but slow: the table
			// is not in the query.
		case err != nil:
			// Any other failure is unexpected at this stage — the
			// application ran on an intact (modulo rename) instance.
			return fmt.Errorf("probing table %s: %w", names[i], err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i, name := range names {
		if inQuery[i] {
			s.tables = append(s.tables, name)
		}
	}
	if len(s.tables) == 0 {
		return fmt.Errorf("no query tables detected; does the application read this database?")
	}
	// Build the silo: every table's schema, but rows only for T_E
	// (referential constraints are irrelevant — the engine does not
	// enforce them, matching the paper's dropped-RI silo).
	return s.timed(&s.stats.SiloSetup, func() error {
		relevant := map[string]bool{}
		for _, t := range s.tables {
			relevant[t] = true
		}
		s.silo = s.source.CloneTables(relevant)
		for _, t := range s.tables {
			tbl, err := s.silo.Table(t)
			if err != nil {
				return err
			}
			s.schemas[t] = tbl.Schema.Clone()
		}
		return nil
	})
}

// runRenameProbe executes one from-clause rename probe, serving it
// from the durable cross-job cache when one is attached. Timeouts are
// never persisted (they describe the environment, not (E, D)); a
// deterministic outcome — the missing-table fault of a positive
// probe, or the negative probe's completed result — is.
func (s *Session) runRenameProbe(pc *probeCtx, probe *sqldb.Database, table string) (*sqldb.Result, error) {
	diskOK := s.cache != nil && s.shared != nil && probe.TotalRows() <= s.cfg.DiskCacheMaxRows
	if !diskOK {
		start := s.cfg.Clock()
		res, err := app.RunCtx(s.ctx, s.exe, probe, s.cfg.ProbeTimeout)
		s.observe(pc, obs.ProbeEvent{Kind: obs.KindRename, Table: table, Cache: obs.CacheNone},
			res, err, s.cfg.Clock().Sub(start))
		return res, err
	}
	fp := probe.Fingerprint()
	start := s.cfg.Clock()
	if res, err, ok := s.shared.Get(fp); ok {
		s.cache.diskHits.Add(1)
		s.observe(pc, obs.ProbeEvent{Kind: obs.KindRename, Table: table, FP: fp.Hex(), Cache: obs.CacheDisk},
			res, err, s.cfg.Clock().Sub(start))
		return res, err
	}
	s.cache.misses.Add(1)
	res, err := app.RunCtx(s.ctx, s.exe, probe, s.cfg.ProbeTimeout)
	s.observe(pc, obs.ProbeEvent{Kind: obs.KindRename, Table: table, FP: fp.Hex(), Cache: obs.CacheMiss},
		res, err, s.cfg.Clock().Sub(start))
	if !errors.Is(err, app.ErrTimeout) && !isCtxErr(err) {
		s.shared.Put(fp, res, err)
	}
	return res, err
}
