package core_test

import (
	"testing"

	"unmasque/internal/app"
	"unmasque/internal/core"
	"unmasque/internal/workloads/job"
	"unmasque/internal/workloads/tpcds"
)

// TestExtractTPCDSSuite extracts the seven TPC-DS derivatives
// (experiment E9).
func TestExtractTPCDSSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite extraction is not short")
	}
	db := tpcds.NewDatabase(tpcds.ScaleTiny, 19)
	if err := tpcds.PlantWitnesses(db, tpcds.HiddenQueries()); err != nil {
		t.Fatal(err)
	}
	for _, name := range tpcds.QueryOrder() {
		name := name
		sql := tpcds.HiddenQueries()[name]
		t.Run(name, func(t *testing.T) {
			exe := app.MustSQLExecutable(name, sql)
			ext, err := core.Extract(exe, db, defaultCfg())
			if err != nil {
				t.Fatalf("extraction failed: %v", err)
			}
			verifyEquivalent(t, db, exe, ext)
		})
	}
}

// TestExtractJOBSuite extracts the eleven JOB-style deep-join queries
// (experiment E3 / Figure 10).
func TestExtractJOBSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite extraction is not short")
	}
	db := job.NewDatabase(job.ScaleTiny, 23)
	if err := job.PlantWitnesses(db, job.HiddenQueries()); err != nil {
		t.Fatal(err)
	}
	for _, name := range job.QueryOrder() {
		name := name
		sql := job.HiddenQueries()[name]
		t.Run(name, func(t *testing.T) {
			exe := app.MustSQLExecutable(name, sql)
			ext, err := core.Extract(exe, db, defaultCfg())
			if err != nil {
				t.Fatalf("extraction failed: %v", err)
			}
			if len(ext.JoinPredicates) < 6 {
				t.Errorf("rich join graph lost: only %d join predicates extracted", len(ext.JoinPredicates))
			}
			verifyEquivalent(t, db, exe, ext)
		})
	}
}
