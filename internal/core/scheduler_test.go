package core

// White-box tests of the probe scheduler (parallelFor) and the
// executable-run memoization cache.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"unmasque/internal/sqldb"
)

func schedSession(workers int) *Session {
	return &Session{cfg: Config{Workers: workers}}
}

func TestParallelForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		s := schedSession(workers)
		const n = 100
		var hits [n]atomic.Int64
		if err := s.parallelFor(n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestParallelForReturnsLowestIndexError(t *testing.T) {
	// The same error the sequential loop would surface first must win,
	// regardless of scheduling: index 12 beats index 37.
	for _, workers := range []int{1, 4, 16} {
		s := schedSession(workers)
		err := s.parallelFor(100, func(i int) error {
			if i == 37 || i == 12 {
				return fmt.Errorf("probe %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "probe 12 failed" {
			t.Fatalf("workers=%d: got %v, want error of index 12", workers, err)
		}
	}
}

func TestParallelForCountsPoolProbesOnly(t *testing.T) {
	s := schedSession(4)
	if err := s.parallelFor(10, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := s.parallelProbes.Load(); got != 10 {
		t.Fatalf("parallelProbes = %d, want 10", got)
	}
	// A single-worker run is the plain sequential loop and must not
	// count as pool dispatch.
	seq := schedSession(1)
	if err := seq.parallelFor(10, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := seq.parallelProbes.Load(); got != 0 {
		t.Fatalf("sequential parallelProbes = %d, want 0", got)
	}
}

func TestRunCacheLookupClonesResults(t *testing.T) {
	c := newRunCache()
	var fp sqldb.Fingerprint
	fp[0] = 1
	res := &sqldb.Result{Columns: []string{"x"}, Rows: []sqldb.Row{{sqldb.NewInt(7)}}}
	c.store(fp, res, nil)

	got1, err, ok := c.lookup(fp)
	if !ok || err != nil {
		t.Fatalf("lookup: ok=%v err=%v", ok, err)
	}
	got1.Rows[0][0] = sqldb.NewInt(99) // caller mutates its copy
	got2, _, _ := c.lookup(fp)
	if got2.Rows[0][0].I != 7 {
		t.Fatalf("cache entry aliased by a caller mutation: %v", got2.Rows[0][0])
	}
	if c.hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2", c.hits.Load())
	}
	var other sqldb.Fingerprint
	if _, _, ok := c.lookup(other); ok {
		t.Fatal("lookup of unknown fingerprint succeeded")
	}
	if c.misses.Load() != 1 {
		t.Fatalf("misses = %d, want 1", c.misses.Load())
	}
}
