package core

// White-box tests of the probe scheduler (parallelFor) and the
// executable-run memoization cache.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"unmasque/internal/sqldb"
)

func schedSession(workers int) *Session {
	return &Session{cfg: Config{Workers: workers}, ctx: context.Background()}
}

func TestParallelForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		s := schedSession(workers)
		const n = 100
		var hits [n]atomic.Int64
		if err := s.parallelFor(n, func(_ *probeCtx, i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestParallelForReturnsLowestIndexError(t *testing.T) {
	// The same error the sequential loop would surface first must win,
	// regardless of scheduling: index 12 beats index 37.
	for _, workers := range []int{1, 4, 16} {
		s := schedSession(workers)
		err := s.parallelFor(100, func(_ *probeCtx, i int) error {
			if i == 37 || i == 12 {
				return fmt.Errorf("probe %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "probe 12 failed" {
			t.Fatalf("workers=%d: got %v, want error of index 12", workers, err)
		}
	}
}

func TestParallelForCountsPoolProbesOnly(t *testing.T) {
	s := schedSession(4)
	if err := s.parallelFor(10, func(*probeCtx, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := s.parallelProbes.Load(); got != 10 {
		t.Fatalf("parallelProbes = %d, want 10", got)
	}
	// A single-worker run is the plain sequential loop and must not
	// count as pool dispatch.
	seq := schedSession(1)
	if err := seq.parallelFor(10, func(*probeCtx, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := seq.parallelProbes.Load(); got != 0 {
		t.Fatalf("sequential parallelProbes = %d, want 0", got)
	}
}

func TestRunCacheSingleFlight(t *testing.T) {
	c := newRunCache()
	var fp sqldb.Fingerprint
	fp[0] = 1

	e, leader := c.reserve(fp)
	if !leader {
		t.Fatal("first reserve is not the leader")
	}
	// A second reserve while the flight is open must NOT lead.
	e2, leader2 := c.reserve(fp)
	if leader2 || e2 != e {
		t.Fatalf("concurrent reserve: leader=%v sameEntry=%v", leader2, e2 == e)
	}
	select {
	case <-e2.done:
		t.Fatal("flight reported done before completion")
	default:
	}

	res := &sqldb.Result{Columns: []string{"x"}, Rows: []sqldb.Row{{sqldb.NewInt(7)}}}
	c.complete(fp, e, res, nil, true)
	<-e2.done // released
	if !e2.ok {
		t.Fatal("completed flight not marked ok")
	}
	// Waiters clone before use; mutating a clone must not reach the
	// cached entry.
	got := e2.res.Clone()
	got.Rows[0][0] = sqldb.NewInt(99)
	if e.res.Rows[0][0].I != 7 {
		t.Fatalf("cache entry aliased by a caller mutation: %v", e.res.Rows[0][0])
	}
	// A reserve after completion reuses the recorded outcome.
	e3, leader3 := c.reserve(fp)
	if leader3 || !e3.ok || e3.res.Rows[0][0].I != 7 {
		t.Fatalf("post-completion reserve: leader=%v ok=%v", leader3, e3.ok)
	}
}

func TestRunCacheAbortReleasesWaiters(t *testing.T) {
	c := newRunCache()
	var fp sqldb.Fingerprint
	fp[0] = 2
	e, leader := c.reserve(fp)
	if !leader {
		t.Fatal("first reserve is not the leader")
	}
	w, _ := c.reserve(fp)
	c.abort(fp, e) // e.g. the execution timed out: not a cacheable outcome
	<-w.done
	if w.ok {
		t.Fatal("aborted flight marked ok")
	}
	// The fingerprint is free again: the waiter retries as a leader.
	if _, leader := c.reserve(fp); !leader {
		t.Fatal("reserve after abort did not lead")
	}
}
