package xdata

import (
	"sort"

	"unmasque/internal/sqldb"
)

// This file exports the pieces of the constraint analysis that the
// bounded equivalence checker (internal/analysis/eqcequiv) builds its
// instance enumerator on: which columns join, which carry filter
// constraints, and the per-column "interesting" values — the predicate
// boundaries plus their violating neighbours — that partition a
// column's domain into the equivalence classes the enumeration ranges
// over.

// JoinCols returns every column participating in the candidate's join
// graph, in deterministic order.
func (a *Analysis) JoinCols() []sqldb.ColRef {
	out := make([]sqldb.ColRef, 0, len(a.compOf))
	for c := range a.compOf {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ConstrainedCols returns every column carrying a filter constraint,
// in deterministic order.
func (a *Analysis) ConstrainedCols() []sqldb.ColRef {
	out := make([]sqldb.ColRef, 0, len(a.cons))
	for c := range a.cons {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// BoundaryValues returns the deterministic list of interesting values
// for a column: in-range values (two distinct ones when the domain
// allows), each constraint bound itself, and the violating neighbour
// just outside each bound. Unconstrained columns get the two default
// in-range values. The list is deduplicated and order-stable, so an
// enumeration built on it is reproducible run to run.
func (a *Analysis) BoundaryValues(col sqldb.ColRef) ([]sqldb.Value, error) {
	def, err := a.Schemas[col.Table].Column(col.Column)
	if err != nil {
		return nil, err
	}
	var vals []sqldb.Value
	for variant := 0; variant < 2; variant++ {
		v, err := a.SatisfyingValue(col, variant)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	one := sqldb.NewInt(1)
	if c := a.cons[col]; c != nil {
		if c.hasLo {
			vals = append(vals, c.lo)
			if v, err := sqldb.Sub(c.lo, one); err == nil {
				vals = append(vals, coerceNumeric(def, v))
			}
		}
		if c.hasHi {
			vals = append(vals, c.hi)
			if v, err := sqldb.Add(c.hi, one); err == nil {
				vals = append(vals, coerceNumeric(def, v))
			}
		}
		if c.hasLike {
			// A near-miss for LIKE patterns: first mandatory character
			// flipped, as in the Generate boundary instances.
			if mqs := sqldb.StripPercent(c.like); len(mqs) > 0 {
				vals = append(vals, sqldb.NewText("x"+mqs[1:]))
			}
		}
		for _, s := range c.segments {
			vals = append(vals, coerceNumeric(def, s.lo), coerceNumeric(def, s.hi))
			if v, err := sqldb.Sub(s.lo, one); err == nil {
				vals = append(vals, coerceNumeric(def, v))
			}
			if v, err := sqldb.Add(s.hi, one); err == nil {
				vals = append(vals, coerceNumeric(def, v))
			}
		}
		for _, t := range c.textIn {
			vals = append(vals, sqldb.NewText(t))
		}
	}
	if v, ok, err := a.ViolatingValue(col); err == nil && ok {
		vals = append(vals, v)
	}
	return dedupeValues(vals), nil
}

// dedupeValues removes duplicates while preserving first-seen order.
func dedupeValues(vals []sqldb.Value) []sqldb.Value {
	seen := map[string]bool{}
	out := vals[:0]
	for _, v := range vals {
		k := v.GroupKey()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, v)
	}
	return out
}
