// Package xdata generates small targeted test databases in the
// spirit of the XData grading tool the paper uses for its second
// verification stage: given a candidate query, it builds a suite of
// instances that expose subtle semantic mutants — off-by-one filter
// bounds, wrong LIKE patterns, missing/extra grouping columns, wrong
// aggregate functions, flipped sort directions and wrong limits.
// Running both the candidate and the hidden application on the suite
// and comparing results kills such mutants.
//
// The package also provides the witness-planting primitive used by
// workload generators and the extraction checker: inserting one chain
// of joined rows that satisfies every predicate of a query.
package xdata

import (
	"fmt"
	"math/rand"
	"strings"

	"unmasque/internal/sqldb"
)

// Analysis is the predicate structure of a candidate query, derived
// from its AST.
type Analysis struct {
	Stmt    *sqldb.SelectStmt
	Tables  []string
	Schemas map[string]sqldb.TableSchema

	// compOf maps each join column to its component id; components
	// lists member columns.
	compOf     map[sqldb.ColRef]int
	components [][]sqldb.ColRef

	// Constraints per non-join column.
	cons map[sqldb.ColRef]*constraint
}

type constraint struct {
	hasLo, hasHi bool
	lo, hi       sqldb.Value
	textEq       string
	hasTextEq    bool
	like         string
	hasLike      bool
	boolEq       *bool

	// Disjunctive forms (the extractor's Section 9 extension):
	// interval unions and string IN-sets.
	segments []segment
	textIn   []string
}

type segment struct{ lo, hi sqldb.Value }

// Analyze inspects the candidate query. Schemas must cover every
// table in the from clause.
func Analyze(stmt *sqldb.SelectStmt, schemas []sqldb.TableSchema) (*Analysis, error) {
	a := &Analysis{
		Stmt:    stmt,
		Schemas: map[string]sqldb.TableSchema{},
		compOf:  map[sqldb.ColRef]int{},
		cons:    map[sqldb.ColRef]*constraint{},
	}
	for _, s := range schemas {
		a.Schemas[strings.ToLower(s.Name)] = s
	}
	for _, t := range stmt.From {
		t = strings.ToLower(t)
		if _, ok := a.Schemas[t]; !ok {
			return nil, fmt.Errorf("xdata: no schema for table %s", t)
		}
		a.Tables = append(a.Tables, t)
	}
	// Resolve unqualified columns against the from tables.
	resolve := func(c *sqldb.ColumnExpr) (sqldb.ColRef, error) {
		if c.Table != "" {
			return sqldb.ColRef{Table: strings.ToLower(c.Table), Column: strings.ToLower(c.Column)}, nil
		}
		for _, t := range a.Tables {
			if a.Schemas[t].ColumnIndex(c.Column) >= 0 {
				return sqldb.ColRef{Table: t, Column: strings.ToLower(c.Column)}, nil
			}
		}
		return sqldb.ColRef{}, fmt.Errorf("xdata: cannot resolve column %s", c.Column)
	}

	// Union-find for join components.
	parent := map[sqldb.ColRef]sqldb.ColRef{}
	var find func(x sqldb.ColRef) sqldb.ColRef
	find = func(x sqldb.ColRef) sqldb.ColRef {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}

	for _, conj := range sqldb.Conjuncts(stmt.Where) {
		switch e := conj.(type) {
		case *sqldb.BinaryExpr:
			if e.Op == sqldb.OpOr {
				if err := a.addDisjunct(conj, resolve); err != nil {
					return nil, err
				}
				continue
			}
			lc, lok := e.L.(*sqldb.ColumnExpr)
			rc, rok := e.R.(*sqldb.ColumnExpr)
			if e.Op == sqldb.OpEq && lok && rok {
				l, err := resolve(lc)
				if err != nil {
					return nil, err
				}
				r, err := resolve(rc)
				if err != nil {
					return nil, err
				}
				if l.Table != r.Table {
					lr, rr := find(l), find(r)
					if lr != rr {
						parent[lr] = rr
					}
					continue
				}
			}
			if lok && !rok {
				lit, ok := e.R.(*sqldb.LiteralExpr)
				if !ok {
					return nil, fmt.Errorf("xdata: unsupported predicate %s", conj)
				}
				col, err := resolve(lc)
				if err != nil {
					return nil, err
				}
				a.addComparison(col, e.Op, lit.Val)
				continue
			}
			return nil, fmt.Errorf("xdata: unsupported predicate %s", conj)
		case *sqldb.BetweenExpr:
			c, ok := e.X.(*sqldb.ColumnExpr)
			if !ok {
				return nil, fmt.Errorf("xdata: unsupported between %s", conj)
			}
			lo, lok := e.Lo.(*sqldb.LiteralExpr)
			hi, hok := e.Hi.(*sqldb.LiteralExpr)
			if !lok || !hok {
				return nil, fmt.Errorf("xdata: non-literal between bounds in %s", conj)
			}
			col, err := resolve(c)
			if err != nil {
				return nil, err
			}
			a.addComparison(col, sqldb.OpGe, lo.Val)
			a.addComparison(col, sqldb.OpLe, hi.Val)
		case *sqldb.LikeExpr:
			c, ok := e.X.(*sqldb.ColumnExpr)
			if !ok || e.Not {
				return nil, fmt.Errorf("xdata: unsupported like %s", conj)
			}
			col, err := resolve(c)
			if err != nil {
				return nil, err
			}
			con := a.constraintFor(col)
			con.hasLike = true
			con.like = e.Pattern
		default:
			return nil, fmt.Errorf("xdata: unsupported predicate %T", conj)
		}
	}

	// Materialize components.
	comps := map[sqldb.ColRef][]sqldb.ColRef{}
	for v := range parent {
		r := find(v)
		comps[r] = append(comps[r], v)
	}
	for _, members := range comps {
		id := len(a.components)
		a.components = append(a.components, members)
		for _, m := range members {
			a.compOf[m] = id
		}
	}
	return a, nil
}

func (a *Analysis) constraintFor(col sqldb.ColRef) *constraint {
	c, ok := a.cons[col]
	if !ok {
		c = &constraint{}
		a.cons[col] = c
	}
	return c
}

func (a *Analysis) addComparison(col sqldb.ColRef, op sqldb.BinOp, v sqldb.Value) {
	c := a.constraintFor(col)
	if v.Typ == sqldb.TText {
		if op == sqldb.OpEq {
			c.hasTextEq = true
			c.textEq = v.S
		}
		return
	}
	if v.Typ == sqldb.TBool {
		if op == sqldb.OpEq {
			b := v.Bool()
			c.boolEq = &b
		}
		return
	}
	one := sqldb.NewInt(1)
	switch op {
	case sqldb.OpEq:
		c.hasLo, c.lo = true, v
		c.hasHi, c.hi = true, v
	case sqldb.OpGe:
		c.hasLo, c.lo = true, v
	case sqldb.OpGt:
		if nv, err := sqldb.Add(v, one); err == nil {
			c.hasLo, c.lo = true, nv
		}
	case sqldb.OpLe:
		c.hasHi, c.hi = true, v
	case sqldb.OpLt:
		if nv, err := sqldb.Sub(v, one); err == nil {
			c.hasHi, c.hi = true, nv
		}
	}
}

// addDisjunct folds a single-column OR tree (between / eq arms) into
// a disjunctive constraint; mixed-column disjunctions are rejected.
func (a *Analysis) addDisjunct(e sqldb.Expr, resolve func(*sqldb.ColumnExpr) (sqldb.ColRef, error)) error {
	var arms []sqldb.Expr
	var flatten func(sqldb.Expr)
	flatten = func(x sqldb.Expr) {
		if b, ok := x.(*sqldb.BinaryExpr); ok && b.Op == sqldb.OpOr {
			flatten(b.L)
			flatten(b.R)
			return
		}
		arms = append(arms, x)
	}
	flatten(e)
	var col sqldb.ColRef
	haveCol := false
	var segs []segment
	var texts []string
	for _, arm := range arms {
		switch x := arm.(type) {
		case *sqldb.BetweenExpr:
			c, ok := x.X.(*sqldb.ColumnExpr)
			if !ok {
				return fmt.Errorf("xdata: unsupported disjunct %s", arm)
			}
			lo, lok := x.Lo.(*sqldb.LiteralExpr)
			hi, hok := x.Hi.(*sqldb.LiteralExpr)
			if !lok || !hok {
				return fmt.Errorf("xdata: non-literal disjunct bounds in %s", arm)
			}
			ref, err := resolve(c)
			if err != nil {
				return err
			}
			if haveCol && ref != col {
				return fmt.Errorf("xdata: multi-column disjunction %s unsupported", e)
			}
			col, haveCol = ref, true
			segs = append(segs, segment{lo: lo.Val, hi: hi.Val})
		case *sqldb.BinaryExpr:
			c, ok := x.L.(*sqldb.ColumnExpr)
			lit, lok := x.R.(*sqldb.LiteralExpr)
			if !ok || !lok || x.Op != sqldb.OpEq {
				return fmt.Errorf("xdata: unsupported disjunct %s", arm)
			}
			ref, err := resolve(c)
			if err != nil {
				return err
			}
			if haveCol && ref != col {
				return fmt.Errorf("xdata: multi-column disjunction %s unsupported", e)
			}
			col, haveCol = ref, true
			if lit.Val.Typ == sqldb.TText {
				texts = append(texts, lit.Val.S)
			} else {
				segs = append(segs, segment{lo: lit.Val, hi: lit.Val})
			}
		default:
			return fmt.Errorf("xdata: unsupported disjunct %T", arm)
		}
	}
	con := a.constraintFor(col)
	con.segments = append(con.segments, segs...)
	con.textIn = append(con.textIn, texts...)
	return nil
}

// SatisfyingValue picks the variant-th value satisfying the column's
// constraints.
func (a *Analysis) SatisfyingValue(col sqldb.ColRef, variant int) (sqldb.Value, error) {
	def, err := a.Schemas[col.Table].Column(col.Column)
	if err != nil {
		return sqldb.Value{}, err
	}
	c := a.cons[col]
	if c != nil && len(c.textIn) > 0 {
		return sqldb.NewText(c.textIn[variant%len(c.textIn)]), nil
	}
	if c != nil && len(c.segments) > 0 {
		seg := c.segments[variant%len(c.segments)]
		return numericBetween(def, seg.lo, seg.hi, variant/len(c.segments))
	}
	switch def.Type {
	case sqldb.TText:
		if c != nil && c.hasTextEq {
			return sqldb.NewText(c.textEq), nil
		}
		if c != nil && c.hasLike {
			return expandLike(c.like, variant, def.TextMaxLen())
		}
		return sqldb.NewText(freshText(variant, def.TextMaxLen())), nil
	case sqldb.TBool:
		if c != nil && c.boolEq != nil {
			return sqldb.NewBool(*c.boolEq), nil
		}
		return sqldb.NewBool(variant%2 == 0), nil
	case sqldb.TInt, sqldb.TDate, sqldb.TFloat:
		lo := sqldb.NewInt(def.DomainMin())
		hi := sqldb.NewInt(def.DomainMax())
		if def.Type == sqldb.TDate {
			lo, hi = sqldb.NewDate(def.DomainMin()), sqldb.NewDate(def.DomainMax())
		}
		if c != nil && c.hasLo {
			lo = c.lo
		}
		if c != nil && c.hasHi {
			hi = c.hi
		}
		return numericBetween(def, lo, hi, variant)
	default:
		return sqldb.Value{}, fmt.Errorf("xdata: unsupported type for %s", col)
	}
}

// ViolatingValue picks a value violating the column's constraints;
// ok=false when the column is unconstrained.
func (a *Analysis) ViolatingValue(col sqldb.ColRef) (sqldb.Value, bool, error) {
	c := a.cons[col]
	if c == nil {
		return sqldb.Value{}, false, nil
	}
	def, err := a.Schemas[col.Table].Column(col.Column)
	if err != nil {
		return sqldb.Value{}, false, err
	}
	one := sqldb.NewInt(1)
	switch {
	case len(c.textIn) > 0:
		probe := "zz-absent"
		for containsStr(c.textIn, probe) {
			probe += "z"
		}
		if len(probe) > def.TextMaxLen() {
			return sqldb.Value{}, false, nil
		}
		return sqldb.NewText(probe), true, nil
	case len(c.segments) >= 2:
		// A value in the gap between the first two intervals.
		gap, err := sqldb.Add(c.segments[0].hi, one)
		if err != nil {
			return sqldb.Value{}, false, err
		}
		if cmp, err := sqldb.Compare(gap, c.segments[1].lo); err == nil && cmp < 0 {
			return coerceNumeric(def, gap), true, nil
		}
		return sqldb.Value{}, false, nil
	case c.hasTextEq:
		if len(c.textEq)+1 <= def.TextMaxLen() {
			return sqldb.NewText(c.textEq + "!"), true, nil
		}
		if len(c.textEq) == 0 {
			return sqldb.NewText("x"), true, nil
		}
		// No length headroom: flip the first character instead.
		alt := byte('x')
		if c.textEq[0] == alt {
			alt = 'y'
		}
		return sqldb.NewText(string(alt) + c.textEq[1:]), true, nil
	case c.hasLike:
		mqs := sqldb.StripPercent(c.like)
		if mqs == "" {
			return sqldb.Value{}, false, nil
		}
		return sqldb.NewText(""), true, nil
	case c.boolEq != nil:
		return sqldb.NewBool(!*c.boolEq), true, nil
	case c.hasLo:
		v, err := sqldb.Sub(c.lo, one)
		if err != nil {
			return sqldb.Value{}, false, err
		}
		return coerceNumeric(def, v), true, nil
	case c.hasHi:
		v, err := sqldb.Add(c.hi, one)
		if err != nil {
			return sqldb.Value{}, false, err
		}
		return coerceNumeric(def, v), true, nil
	}
	return sqldb.Value{}, false, nil
}

func containsStr(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func coerceNumeric(def sqldb.Column, v sqldb.Value) sqldb.Value {
	if def.Type == sqldb.TFloat && v.Typ == sqldb.TInt {
		return sqldb.NewFloat(float64(v.I))
	}
	if def.Type == sqldb.TDate && v.Typ == sqldb.TInt {
		return sqldb.NewDate(v.I)
	}
	return v
}

// numericBetween picks lo + variant (clamped) inside [lo, hi].
func numericBetween(def sqldb.Column, lo, hi sqldb.Value, variant int) (sqldb.Value, error) {
	switch def.Type {
	case sqldb.TFloat:
		l, h := lo.AsFloat(), hi.AsFloat()
		v := l + float64(variant)
		if v > h {
			step := 1.0
			span := h - l
			if span <= 0 {
				v = l
			} else {
				v = l + float64(variant)*step
				for v > h {
					v -= span
				}
			}
		}
		return sqldb.RoundTo(sqldb.NewFloat(v), def.FloatPrecision()), nil
	default:
		l, h := lo.I, hi.I
		v := l + int64(variant)
		if v > h {
			span := h - l + 1
			if span <= 0 {
				v = l
			} else {
				v = l + int64(variant)%span
			}
		}
		if def.Type == sqldb.TDate {
			return sqldb.NewDate(v), nil
		}
		return sqldb.NewInt(v), nil
	}
}

// freshText builds a variant-distinct string within the column's
// length budget; for single-character columns the variants cycle
// through the alphabet.
func freshText(variant, maxLen int) string {
	s := fmt.Sprintf("w%d", variant)
	if len(s) <= maxLen {
		return s
	}
	out := make([]byte, maxLen)
	for i := range out {
		out[i] = byte('a' + (variant+i)%26)
	}
	return string(out)
}

// expandLike renders a concrete match for a LIKE pattern.
func expandLike(pattern string, variant, maxLen int) (sqldb.Value, error) {
	var b strings.Builder
	first := true
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '%':
			if first && variant > 0 {
				fmt.Fprintf(&b, "%d", variant)
			}
			first = false
		case '_':
			b.WriteByte(byte('a' + (variant+i)%26))
		default:
			b.WriteByte(pattern[i])
		}
	}
	s := b.String()
	if len(s) > maxLen {
		return sqldb.Value{}, fmt.Errorf("xdata: expansion of %q exceeds length %d", pattern, maxLen)
	}
	return sqldb.NewText(s), nil
}

// PlantWitness inserts one chain of joined rows satisfying every
// predicate, with join keys set to key and per-column overrides
// applied. Overridden columns are the caller's responsibility
// (boundary probing intentionally plants violating values).
func (a *Analysis) PlantWitness(db *sqldb.Database, key int64, variant int, overrides map[sqldb.ColRef]sqldb.Value) error {
	for _, t := range a.Tables {
		schema := a.Schemas[t]
		tbl, err := db.Table(t)
		if err != nil {
			return err
		}
		row := make([]sqldb.Value, len(schema.Columns))
		for ci, cdef := range schema.Columns {
			col := sqldb.ColRef{Table: t, Column: cdef.Name}
			if v, ok := overrides[col]; ok {
				row[ci] = v
				continue
			}
			if _, joined := a.compOf[col]; joined {
				row[ci] = sqldb.NewInt(key)
				continue
			}
			v, err := a.SatisfyingValue(col, variant)
			if err != nil {
				return err
			}
			row[ci] = v
		}
		if err := tbl.Insert(row...); err != nil {
			return err
		}
	}
	return nil
}

// emptyInstance builds a database holding only the analysis tables
// (empty).
func (a *Analysis) emptyInstance() (*sqldb.Database, error) {
	db := sqldb.NewDatabase()
	for _, t := range a.Tables {
		if err := db.CreateTable(a.Schemas[t]); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Instance couples a generated database with the mutant class it
// targets.
type Instance struct {
	Label string
	DB    *sqldb.Database
}

// Generate builds the verification suite for the candidate query.
func Generate(stmt *sqldb.SelectStmt, schemas []sqldb.TableSchema, seed int64) ([]Instance, error) {
	a, err := Analyze(stmt, schemas)
	if err != nil {
		return nil, err
	}
	var out []Instance
	add := func(label string, build func(db *sqldb.Database) error) error {
		db, err := a.emptyInstance()
		if err != nil {
			return err
		}
		if err := build(db); err != nil {
			return err
		}
		out = append(out, Instance{Label: label, DB: db})
		return nil
	}

	// 1. Base witnesses: several distinct joined chains.
	if err := add("witnesses", func(db *sqldb.Database) error {
		for k := int64(1); k <= 4; k++ {
			if err := a.PlantWitness(db, k, int(k), nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// 2. Filter boundaries: for each constrained column, witnesses at
	// the bound plus a violating neighbour (kills off-by-one bounds).
	for col, c := range a.cons {
		col, c := col, c
		if err := add("boundary:"+col.String(), func(db *sqldb.Database) error {
			variant := 0
			if c.hasLo {
				if err := a.PlantWitness(db, 1, variant, map[sqldb.ColRef]sqldb.Value{col: c.lo}); err != nil {
					return err
				}
			}
			if c.hasHi {
				if err := a.PlantWitness(db, 2, variant, map[sqldb.ColRef]sqldb.Value{col: c.hi}); err != nil {
					return err
				}
			}
			if v, ok, err := a.ViolatingValue(col); err != nil {
				return err
			} else if ok {
				if err := a.PlantWitness(db, 3, variant, map[sqldb.ColRef]sqldb.Value{col: v}); err != nil {
					return err
				}
			}
			if c.hasLike {
				// Near-miss strings for pattern mutants.
				mqs := sqldb.StripPercent(c.like)
				if len(mqs) > 0 {
					miss := "x" + mqs[1:]
					if err := a.PlantWitness(db, 4, variant, map[sqldb.ColRef]sqldb.Value{col: sqldb.NewText(miss)}); err != nil {
						return err
					}
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// 3. Group collapse: pairs of witnesses sharing grouping values
	// but differing elsewhere (kills missing group columns and wrong
	// aggregates).
	if len(stmt.GroupBy) > 0 {
		if err := add("group-collapse", func(db *sqldb.Database) error {
			for k := int64(1); k <= 2; k++ {
				// Same variant => same non-key values => same groups;
				// different keys multiply rows per group when keys are
				// not grouped.
				if err := a.PlantWitness(db, k, 0, nil); err != nil {
					return err
				}
			}
			if err := a.PlantWitness(db, 3, 1, nil); err != nil {
				return err
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// 4. Aggregate separation: witnesses with spread values (the k
	// identical / 1 distinct pattern kills min/max/sum/avg/count
	// swaps). Keys stay distinct — sharing one key across witnesses
	// would make the join product exponential in the table count.
	if err := add("agg-separate", func(db *sqldb.Database) error {
		for k := int64(1); k <= 5; k++ {
			v := 0
			if k == 5 {
				v = 3
			}
			if err := a.PlantWitness(db, k, v, nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// 5. Order flip + limit: many distinct witnesses with spread
	// values (kills direction and off-by-one limit mutants).
	n := int64(6)
	if stmt.Limit > 0 {
		n = stmt.Limit + 2
	}
	if n > 64 {
		n = 64
	}
	if err := add("order-limit", func(db *sqldb.Database) error {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Perm(int(n))
		for i := int64(0); i < n; i++ {
			if err := a.PlantWitness(db, i+1, order[i], nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	return out, nil
}

// RandomInstance builds a randomized database of roughly rows rows
// per table: a handful of guaranteed witnesses plus noise rows mixing
// satisfying, violating and random values — the "randomized large
// databases" of the paper's first checker stage, scaled by rows.
func (a *Analysis) RandomInstance(rows int, rng *rand.Rand) (*sqldb.Database, error) {
	db, err := a.emptyInstance()
	if err != nil {
		return nil, err
	}
	witnesses := 3 + rows/10
	for k := 0; k < witnesses; k++ {
		if err := a.PlantWitness(db, int64(k+1), rng.Intn(50), nil); err != nil {
			return nil, err
		}
	}
	for _, t := range a.Tables {
		schema := a.Schemas[t]
		tbl, err := db.Table(t)
		if err != nil {
			return nil, err
		}
		for i := 0; i < rows; i++ {
			row := make([]sqldb.Value, len(schema.Columns))
			for ci, cdef := range schema.Columns {
				col := sqldb.ColRef{Table: t, Column: cdef.Name}
				if _, joined := a.compOf[col]; joined {
					// Sparse keys: a wide range keeps random join
					// fan-out low (deep join chains would otherwise
					// blow up multiplicatively), while the planted
					// witnesses guarantee matches.
					row[ci] = sqldb.NewInt(int64(1 + rng.Intn(8*(rows+witnesses))))
					continue
				}
				switch r := rng.Intn(4); r {
				case 0:
					if v, ok, err := a.ViolatingValue(col); err == nil && ok {
						row[ci] = v
						continue
					}
					fallthrough
				default:
					v, err := a.SatisfyingValue(col, rng.Intn(100))
					if err != nil {
						return nil, err
					}
					row[ci] = v
				}
			}
			if err := tbl.Insert(row...); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}
