package xdata

import (
	"context"
	"math/rand"
	"testing"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
)

func testSchemas() []sqldb.TableSchema {
	return []sqldb.TableSchema{
		{
			Name: "parent",
			Columns: []sqldb.Column{
				{Name: "pk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "label", Type: sqldb.TText, MaxLen: 20},
				{Name: "score", Type: sqldb.TInt, MinInt: 0, MaxInt: 1000},
			},
			PrimaryKey: []string{"pk"},
		},
		{
			Name: "child",
			Columns: []sqldb.Column{
				{Name: "fk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "amount", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 10000},
				{Name: "tag", Type: sqldb.TText, MaxLen: 20},
				{Name: "created", Type: sqldb.TDate, MinInt: sqldb.MustDate("2000-01-01").I, MaxInt: sqldb.MustDate("2020-12-31").I},
			},
			ForeignKeys: []sqldb.ForeignKey{{Column: "fk", RefTable: "parent", RefColumn: "pk"}},
		},
	}
}

const testQuery = `
	select label, sum(amount) as total
	from parent, child
	where pk = fk
	  and score between 10 and 90
	  and tag like '%hot%'
	  and amount >= 5.50
	  and created <= date '2015-06-30'
	group by label
	order by total desc
	limit 5`

func analyzed(t *testing.T) *Analysis {
	t.Helper()
	stmt := sqlparser.MustParse(testQuery)
	a, err := Analyze(stmt, testSchemas())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeFindsJoinAndConstraints(t *testing.T) {
	a := analyzed(t)
	if len(a.Tables) != 2 {
		t.Fatalf("tables: %v", a.Tables)
	}
	if len(a.components) != 1 {
		t.Fatalf("join components: %d", len(a.components))
	}
	score := sqldb.ColRef{Table: "parent", Column: "score"}
	c := a.cons[score]
	if c == nil || !c.hasLo || !c.hasHi || c.lo.I != 10 || c.hi.I != 90 {
		t.Errorf("score constraint: %+v", c)
	}
	tag := sqldb.ColRef{Table: "child", Column: "tag"}
	if a.cons[tag] == nil || !a.cons[tag].hasLike {
		t.Error("like constraint lost")
	}
}

func TestSatisfyingValuesSatisfy(t *testing.T) {
	a := analyzed(t)
	stmt := a.Stmt
	db, err := a.emptyInstance()
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		if err := a.PlantWitness(db, int64(w+1), w, nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Execute(context.Background(), stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Populated() {
		t.Fatal("witnesses do not satisfy the query")
	}
}

func TestViolatingValuesViolate(t *testing.T) {
	a := analyzed(t)
	for col, c := range a.cons {
		v, ok, err := a.ViolatingValue(col)
		if err != nil {
			t.Fatalf("%s: %v", col, err)
		}
		if !ok {
			continue
		}
		// Planting a witness with the violating override must keep the
		// query result empty.
		db, err := a.emptyInstance()
		if err != nil {
			t.Fatal(err)
		}
		if err := a.PlantWitness(db, 1, 0, map[sqldb.ColRef]sqldb.Value{col: v}); err != nil {
			t.Fatalf("%s: %v", col, err)
		}
		res, err := db.Execute(context.Background(), a.Stmt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Populated() {
			t.Errorf("violating value %v for %s still satisfies the query (constraint %+v)", v, col, c)
		}
	}
}

func TestGenerateSuiteRunsCandidate(t *testing.T) {
	stmt := sqlparser.MustParse(testQuery)
	instances, err := Generate(stmt, testSchemas(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) < 4 {
		t.Fatalf("suite too small: %d instances", len(instances))
	}
	labels := map[string]bool{}
	populatedSomewhere := false
	for _, inst := range instances {
		labels[inst.Label] = true
		res, err := inst.DB.Execute(context.Background(), stmt)
		if err != nil {
			t.Fatalf("%s: %v", inst.Label, err)
		}
		if res.Populated() {
			populatedSomewhere = true
		}
	}
	if !populatedSomewhere {
		t.Error("no instance exercises the query's populated path")
	}
	for _, want := range []string{"witnesses", "agg-separate", "order-limit"} {
		if !labels[want] {
			t.Errorf("suite misses instance %q (have %v)", want, labels)
		}
	}
}

// TestGenerateKillsMutants: each targeted instance class must
// distinguish the candidate query from a representative mutant.
func TestGenerateKillsMutants(t *testing.T) {
	stmt := sqlparser.MustParse(testQuery)
	mutants := map[string]string{
		"off-by-one bound": `
			select label, sum(amount) as total from parent, child
			where pk = fk and score between 11 and 90 and tag like '%hot%'
			  and amount >= 5.50 and created <= date '2015-06-30'
			group by label order by total desc limit 5`,
		"wrong aggregate": `
			select label, avg(amount) as total from parent, child
			where pk = fk and score between 10 and 90 and tag like '%hot%'
			  and amount >= 5.50 and created <= date '2015-06-30'
			group by label order by total desc limit 5`,
		"dropped filter": `
			select label, sum(amount) as total from parent, child
			where pk = fk and score between 10 and 90 and tag like '%hot%'
			  and created <= date '2015-06-30'
			group by label order by total desc limit 5`,
		"wrong limit": `
			select label, sum(amount) as total from parent, child
			where pk = fk and score between 10 and 90 and tag like '%hot%'
			  and amount >= 5.50 and created <= date '2015-06-30'
			group by label order by total desc limit 4`,
	}
	instances, err := Generate(stmt, testSchemas(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for name, msql := range mutants {
		mut := sqlparser.MustParse(msql)
		killed := false
		for _, inst := range instances {
			want, err := inst.DB.Execute(context.Background(), stmt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := inst.DB.Execute(context.Background(), mut)
			if err != nil {
				t.Fatal(err)
			}
			if !want.EqualUnordered(got) {
				killed = true
				break
			}
		}
		if !killed {
			t.Errorf("mutant %q survives the generated suite", name)
		}
	}
}

func TestRandomInstancePopulated(t *testing.T) {
	a := analyzed(t)
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db, err := a.RandomInstance(40, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Execute(context.Background(), a.Stmt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Populated() {
			t.Errorf("seed %d: random instance lost the witnesses", seed)
		}
	}
}

func TestAnalyzeRejectsOutOfScope(t *testing.T) {
	for _, q := range []string{
		"select a from t where a = 1 or b = 2",
		"select a from t where not (a = 1)",
		"select a from t where a is null",
	} {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("%q should parse: %v", q, err)
		}
		if _, err := Analyze(stmt, []sqldb.TableSchema{{
			Name: "t",
			Columns: []sqldb.Column{
				{Name: "a", Type: sqldb.TInt},
				{Name: "b", Type: sqldb.TInt},
			},
		}}); err == nil {
			t.Errorf("%q: expected analysis rejection", q)
		}
	}
}
