package xdata

import (
	"fmt"
	"strings"

	"unmasque/internal/sqldb"
)

// Mutant is one systematically mutated variant of a candidate query —
// the classic XData mutant classes expressed as ASTs instead of as
// test databases: off-by-one filter bounds, wrong LIKE patterns and
// text equalities, wrong aggregate functions, distinct toggles,
// missing/extra grouping columns, flipped sort directions and
// off-by-one limits. The bounded equivalence checker disproves a
// mutant by finding a small database on which it differs from the
// candidate; that database then doubles as the killing witness.
type Mutant struct {
	Label string
	Stmt  *sqldb.SelectStmt
}

// MutantLimitCap bounds the limit values for which off-by-one limit
// mutants are generated: a limit beyond the row count any size-k
// database can produce is indistinguishable from limit±1 inside the
// bound, so such mutants would only dilute the catalogue (the
// classical order-limit instance keeps covering them).
const MutantLimitCap = 4

// Mutants derives the mutant catalogue of a candidate query. The
// catalogue is deterministic: same AST in, same mutants (order
// included) out. Schemas drive the extra-group-column class; every
// other class is purely syntactic.
func Mutants(stmt *sqldb.SelectStmt, schemas []sqldb.TableSchema) []Mutant {
	var out []Mutant
	add := func(label string, m *sqldb.SelectStmt) {
		out = append(out, Mutant{Label: label, Stmt: m})
	}

	out = append(out, boundMutants(stmt)...)
	out = append(out, likeMutants(stmt)...)
	out = append(out, textEqMutants(stmt)...)
	out = append(out, aggMutants(stmt)...)
	out = append(out, distinctMutants(stmt)...)
	out = append(out, groupMutants(stmt, schemas)...)

	for i := range stmt.OrderBy {
		m := sqldb.CloneStmt(stmt)
		m.OrderBy[i].Desc = !m.OrderBy[i].Desc
		add(fmt.Sprintf("order-flip#%d", i), m)
	}
	if stmt.Limit >= 1 && stmt.Limit <= MutantLimitCap {
		lo := sqldb.CloneStmt(stmt)
		lo.Limit = stmt.Limit - 1
		add(fmt.Sprintf("limit:%d", lo.Limit), lo)
		hi := sqldb.CloneStmt(stmt)
		hi.Limit = stmt.Limit + 1
		add(fmt.Sprintf("limit:%d", hi.Limit), hi)
	}
	return out
}

// forEachPredicate visits the where and having trees of a statement.
func forEachPredicate(m *sqldb.SelectStmt, fn func(e sqldb.Expr)) {
	if m.Where != nil {
		fn(m.Where)
	}
	if m.Having != nil {
		fn(m.Having)
	}
}

// boundSites visits every mutable numeric/date literal bound of the
// predicate trees in deterministic (syntactic) order.
func boundSites(m *sqldb.SelectStmt, fn func(lit *sqldb.LiteralExpr)) {
	var walk func(e sqldb.Expr)
	visit := func(l *sqldb.LiteralExpr) {
		switch l.Val.Typ {
		case sqldb.TInt, sqldb.TFloat, sqldb.TDate:
			fn(l)
		}
	}
	walk = func(e sqldb.Expr) {
		switch x := e.(type) {
		case *sqldb.BinaryExpr:
			if x.Op == sqldb.OpAnd || x.Op == sqldb.OpOr {
				walk(x.L)
				walk(x.R)
				return
			}
			if x.Op.IsComparison() {
				if l, ok := x.R.(*sqldb.LiteralExpr); ok {
					visit(l)
				}
				if l, ok := x.L.(*sqldb.LiteralExpr); ok {
					visit(l)
				}
			}
		case *sqldb.BetweenExpr:
			if l, ok := x.Lo.(*sqldb.LiteralExpr); ok {
				visit(l)
			}
			if l, ok := x.Hi.(*sqldb.LiteralExpr); ok {
				visit(l)
			}
		case *sqldb.NotExpr:
			walk(x.X)
		}
	}
	forEachPredicate(m, walk)
}

// boundDelta is the off-by-one step for a literal: one for integral
// types, one unit of the engine's default fixed precision for floats.
func boundDelta(v sqldb.Value) sqldb.Value {
	if v.Typ == sqldb.TFloat {
		return sqldb.NewFloat(0.01)
	}
	return sqldb.NewInt(1)
}

func boundMutants(stmt *sqldb.SelectStmt) []Mutant {
	var probe []sqldb.Value
	boundSites(stmt, func(l *sqldb.LiteralExpr) { probe = append(probe, l.Val) })
	var out []Mutant
	for i := range probe {
		for _, dir := range []int{+1, -1} {
			m := sqldb.CloneStmt(stmt)
			idx := 0
			boundSites(m, func(l *sqldb.LiteralExpr) {
				if idx == i {
					d := boundDelta(l.Val)
					var nv sqldb.Value
					var err error
					if dir > 0 {
						nv, err = sqldb.Add(l.Val, d)
					} else {
						nv, err = sqldb.Sub(l.Val, d)
					}
					if err == nil {
						l.Val = nv
					}
				}
				idx++
			})
			sign := "+"
			if dir < 0 {
				sign = "-"
			}
			out = append(out, Mutant{Label: fmt.Sprintf("bound%s#%d", sign, i), Stmt: m})
		}
	}
	return out
}

func likeMutants(stmt *sqldb.SelectStmt) []Mutant {
	countSites := func(m *sqldb.SelectStmt, fn func(l *sqldb.LikeExpr)) {
		var walk func(e sqldb.Expr)
		walk = func(e sqldb.Expr) {
			switch x := e.(type) {
			case *sqldb.BinaryExpr:
				walk(x.L)
				walk(x.R)
			case *sqldb.NotExpr:
				walk(x.X)
			case *sqldb.LikeExpr:
				fn(x)
			}
		}
		forEachPredicate(m, walk)
	}
	n := 0
	countSites(stmt, func(*sqldb.LikeExpr) { n++ })
	var out []Mutant
	for i := 0; i < n; i++ {
		m := sqldb.CloneStmt(stmt)
		idx := 0
		countSites(m, func(l *sqldb.LikeExpr) {
			if idx == i {
				l.Pattern = mutateText(l.Pattern)
			}
			idx++
		})
		out = append(out, Mutant{Label: fmt.Sprintf("like#%d", i), Stmt: m})
	}
	return out
}

// mutateText flips the first non-wildcard character of a pattern or
// literal, always producing a different string.
func mutateText(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] == '%' || b[i] == '_' {
			continue
		}
		if b[i] == 'x' {
			b[i] = 'y'
		} else {
			b[i] = 'x'
		}
		return string(b)
	}
	return s + "x"
}

func textEqMutants(stmt *sqldb.SelectStmt) []Mutant {
	countSites := func(m *sqldb.SelectStmt, fn func(l *sqldb.LiteralExpr)) {
		var walk func(e sqldb.Expr)
		walk = func(e sqldb.Expr) {
			switch x := e.(type) {
			case *sqldb.BinaryExpr:
				if x.Op == sqldb.OpAnd || x.Op == sqldb.OpOr {
					walk(x.L)
					walk(x.R)
					return
				}
				if x.Op == sqldb.OpEq {
					if l, ok := x.R.(*sqldb.LiteralExpr); ok && l.Val.Typ == sqldb.TText {
						fn(l)
					}
				}
			case *sqldb.NotExpr:
				walk(x.X)
			}
		}
		forEachPredicate(m, walk)
	}
	n := 0
	countSites(stmt, func(*sqldb.LiteralExpr) { n++ })
	var out []Mutant
	for i := 0; i < n; i++ {
		m := sqldb.CloneStmt(stmt)
		idx := 0
		countSites(m, func(l *sqldb.LiteralExpr) {
			if idx == i {
				l.Val = sqldb.NewText(mutateText(l.Val.S))
			}
			idx++
		})
		out = append(out, Mutant{Label: fmt.Sprintf("texteq#%d", i), Stmt: m})
	}
	return out
}

// aggSwaps gives the two replacement functions tried for each
// aggregate, cyclic in the canonical AllAggFns order.
func aggSwaps(fn sqldb.AggFn) []sqldb.AggFn {
	order := sqldb.AllAggFns
	for i, f := range order {
		if f == fn {
			return []sqldb.AggFn{order[(i+1)%len(order)], order[(i+2)%len(order)]}
		}
	}
	return nil
}

// aggSites visits every non-star aggregate of the projection and
// having trees in deterministic order.
func aggSites(m *sqldb.SelectStmt, fn func(a *sqldb.AggExpr)) {
	var walk func(e sqldb.Expr)
	walk = func(e sqldb.Expr) {
		switch x := e.(type) {
		case *sqldb.AggExpr:
			if !x.Star {
				fn(x)
			}
		case *sqldb.BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *sqldb.NegExpr:
			walk(x.X)
		case *sqldb.NotExpr:
			walk(x.X)
		case *sqldb.BetweenExpr:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		}
	}
	for _, it := range m.Items {
		walk(it.Expr)
	}
	if m.Having != nil {
		walk(m.Having)
	}
}

func aggMutants(stmt *sqldb.SelectStmt) []Mutant {
	var fns []sqldb.AggFn
	aggSites(stmt, func(a *sqldb.AggExpr) { fns = append(fns, a.Fn) })
	var out []Mutant
	for i, orig := range fns {
		for _, swap := range aggSwaps(orig) {
			swap := swap
			m := sqldb.CloneStmt(stmt)
			idx := 0
			aggSites(m, func(a *sqldb.AggExpr) {
				if idx == i {
					a.Fn = swap
				}
				idx++
			})
			out = append(out, Mutant{Label: fmt.Sprintf("agg:%s->%s#%d", orig, swap, i), Stmt: m})
		}
	}
	return out
}

func distinctMutants(stmt *sqldb.SelectStmt) []Mutant {
	var flags []bool
	aggSites(stmt, func(a *sqldb.AggExpr) { flags = append(flags, a.Fn != sqldb.AggMin && a.Fn != sqldb.AggMax) })
	var out []Mutant
	for i, eligible := range flags {
		if !eligible {
			// min/max are insensitive to duplicates; a distinct toggle
			// there is semantically a no-op and would never be killed.
			continue
		}
		m := sqldb.CloneStmt(stmt)
		idx := 0
		aggSites(m, func(a *sqldb.AggExpr) {
			if idx == i {
				a.Distinct = !a.Distinct
			}
			idx++
		})
		out = append(out, Mutant{Label: fmt.Sprintf("distinct#%d", i), Stmt: m})
	}
	return out
}

// groupMutants derives missing- and extra-group-column mutants. A
// group key is droppable only when it does not appear as a bare
// projection or order key (dropping it would otherwise change the
// query's shape, not just its semantics). Extra columns are taken from
// the from-clause schemas in deterministic order, skipping columns
// already grouped, equality-pinned by a filter (grouping by a pinned
// column never splits a group), or aggregated.
func groupMutants(stmt *sqldb.SelectStmt, schemas []sqldb.TableSchema) []Mutant {
	if len(stmt.GroupBy) == 0 {
		return nil
	}
	var out []Mutant

	bare := map[string]bool{}
	for _, it := range stmt.Items {
		if c, ok := it.Expr.(*sqldb.ColumnExpr); ok {
			bare[strings.ToLower(c.Column)] = true
		}
	}
	for _, k := range stmt.OrderBy {
		if c, ok := k.Expr.(*sqldb.ColumnExpr); ok {
			bare[strings.ToLower(c.Column)] = true
		}
	}
	for i, g := range stmt.GroupBy {
		c, ok := g.(*sqldb.ColumnExpr)
		if !ok || bare[strings.ToLower(c.Column)] {
			continue
		}
		m := sqldb.CloneStmt(stmt)
		m.GroupBy = append(m.GroupBy[:i], m.GroupBy[i+1:]...)
		out = append(out, Mutant{Label: "group-drop:" + c.Column, Stmt: m})
	}

	grouped := map[string]bool{}
	for _, g := range stmt.GroupBy {
		if c, ok := g.(*sqldb.ColumnExpr); ok {
			grouped[strings.ToLower(c.Column)] = true
		}
	}
	pinned := map[string]bool{}
	if a, err := Analyze(stmt, schemas); err == nil {
		for col, c := range a.cons {
			eq := c.hasTextEq || c.boolEq != nil
			if c.hasLo && c.hasHi {
				if cmp, err := sqldb.Compare(c.lo, c.hi); err == nil && cmp == 0 {
					eq = true
				}
			}
			if eq {
				pinned[strings.ToLower(col.Column)] = true
			}
		}
	}
	aggregated := map[string]bool{}
	aggSites(stmt, func(a *sqldb.AggExpr) {
		for _, c := range sqldb.ColumnsOf(a.Arg) {
			aggregated[strings.ToLower(c.Column)] = true
		}
	})
	byName := map[string]sqldb.TableSchema{}
	for _, s := range schemas {
		byName[strings.ToLower(s.Name)] = s
	}
	extras := 0
	for _, t := range stmt.From {
		sch, ok := byName[strings.ToLower(t)]
		if !ok {
			continue
		}
		for _, col := range sch.Columns {
			name := strings.ToLower(col.Name)
			if grouped[name] || pinned[name] || aggregated[name] || extras >= 2 {
				continue
			}
			m := sqldb.CloneStmt(stmt)
			m.GroupBy = append(m.GroupBy, sqldb.Col(t, name))
			out = append(out, Mutant{Label: "group-extra:" + name, Stmt: m})
			extras++
		}
	}
	return out
}
