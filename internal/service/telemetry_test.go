package service_test

// Service-level tests of the telemetry pipeline: Prometheus /metrics
// content negotiation, live SSE trace streaming (mid-job subscribe
// and terminal replay), engine counters on the result JSON, and
// structured job-lifecycle logging.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"unmasque/internal/obs"
	"unmasque/internal/obs/telemetry"
	"unmasque/internal/service"
)

// telemetryServer boots a manager with full observability and wraps
// it in a test server.
func telemetryServer(t *testing.T, workers int) (*service.Manager, *httptest.Server, *obs.Metrics, *bytes.Buffer) {
	t.Helper()
	ctx := context.Background()
	met := obs.NewMetrics()
	var logBuf bytes.Buffer
	mgr, err := service.Start(ctx, service.Config{
		Workers:    workers,
		QueueDepth: 8,
		Metrics:    met,
		Logger:     obs.NewLogger(&logBuf, obs.LevelDebug),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewServer(mgr))
	t.Cleanup(srv.Close)
	return mgr, srv, met, &logBuf
}

func submitSpec(t *testing.T, mgr *service.Manager, name string) int64 {
	t.Helper()
	v, err := mgr.Submit(context.Background(), inlineSpec(name))
	if err != nil {
		t.Fatal(err)
	}
	return v.ID
}

// TestMetricsContentNegotiation: /metrics answers JSON by default
// (back-compat, with latency quantiles computed at read time) and
// Prometheus text exposition under ?format=prom or an Accept header —
// each with the right Content-Type, and the prom document round-trips
// through the exposition parser.
func TestMetricsContentNegotiation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mgr, srv, _, _ := telemetryServer(t, 2)
	id := submitSpec(t, mgr, "prom-job")
	if v := waitTerminal(t, mgr, id); v.State != service.StateDone {
		t.Fatalf("job state %s (%s)", v.State, v.Error)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("JSON Content-Type = %q", ct)
	}
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v", err)
	}
	p50, ok50 := snap["job_latency_p50_ms"].(float64)
	p99, ok99 := snap["job_latency_p99_ms"].(float64)
	if !ok50 || !ok99 || p50 > p99 {
		t.Errorf("read-time quantiles wrong: p50=%v p99=%v (%v %v)", p50, p99, ok50, ok99)
	}

	check := func(how string, req *http.Request) {
		t.Helper()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
			t.Errorf("%s: Content-Type = %q, want %q", how, ct, telemetry.PromContentType)
		}
		fams, err := telemetry.ParsePromText(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: exposition rejected by parser: %v\n%s", how, err, body)
		}
		names := map[string]string{}
		for _, f := range fams {
			names[f.Name] = f.Type
		}
		for fam, typ := range map[string]string{
			"unmasque_jobs_done":      "counter",
			"unmasque_job_latency_ms": "histogram",
			"unmasque_queue_depth":    "gauge",
			"unmasque_probes_total":   "counter",
		} {
			if names[fam] != typ {
				t.Errorf("%s: family %s has type %q, want %q", how, fam, names[fam], typ)
			}
		}
	}
	req, _ := http.NewRequest("GET", srv.URL+"/metrics?format=prom", nil)
	check("query param", req)
	req, _ = http.NewRequest("GET", srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	check("accept header", req)
}

// TestResultEngineCounters: the terminal result JSON carries the
// job's execution-engine accounting.
func TestResultEngineCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mgr, srv, _, _ := telemetryServer(t, 1)
	id := submitSpec(t, mgr, "engine-job")
	if v := waitTerminal(t, mgr, id); v.State != service.StateDone {
		t.Fatalf("job state %s (%s)", v.State, v.Error)
	}
	resp, err := http.Get(srv.URL + "/jobs/1/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var res service.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.ExecMode != "vector" {
		t.Errorf("exec_mode = %q, want vector (the default engine)", res.ExecMode)
	}
	if res.VectorBatches == 0 {
		t.Errorf("vector_batches = 0 on a vector-engine job:\n%s", body)
	}
	want, err := mgr.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexHits != want.IndexHits || res.JoinBuildsReused != want.JoinBuildsReused {
		t.Errorf("engine counters drifted through JSON: got %+v want %+v", res, want)
	}
}

// TestTraceStreamTerminal: subscribing to a finished job's stream
// yields an immediate full replay — run header, live span frames,
// probe events, lifecycle transitions ending in "done" — and the
// response ends. Every frame passes the stream validator.
func TestTraceStreamTerminal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mgr, srv, _, _ := telemetryServer(t, 1)
	id := submitSpec(t, mgr, "sse-terminal")
	if v := waitTerminal(t, mgr, id); v.State != service.StateDone {
		t.Fatalf("job state %s (%s)", v.State, v.Error)
	}
	resp, err := http.Get(srv.URL + "/jobs/1/trace/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	sum, err := obs.ValidateStream(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("terminal stream fails validation: %v", err)
	}
	if sum.Final != "done" {
		t.Errorf("final lifecycle state %q, want done", sum.Final)
	}
	if sum.Spans == 0 || sum.Probes == 0 || sum.Jobs < 3 {
		t.Errorf("replay incomplete: %s", sum)
	}
	if len(sum.Apps) != 1 || sum.Apps[0] != "sse-terminal" {
		t.Errorf("run header missing from replay: apps=%v", sum.Apps)
	}

	// Unknown job and (simulated) pre-daemon jobs are 404s.
	if resp, err := http.Get(srv.URL + "/jobs/99/trace/stream"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job stream: %d, want 404", resp.StatusCode)
		}
	}
}

// TestTraceStreamLive: a subscriber that joins mid-job sees the
// replay prefix plus every event published after it joined, and the
// stream ends when the job reaches a terminal state.
func TestTraceStreamLive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// One worker and a pre-submitted long-ish job make the subscribe
	// race tractable: we attach while the job is queued or running and
	// must still observe a terminal frame.
	mgr, srv, _, _ := telemetryServer(t, 1)
	id := submitSpec(t, mgr, "sse-live")

	resp, err := http.Get(srv.URL + "/jobs/1/trace/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var transcript bytes.Buffer
	done := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		for sc.Scan() {
			transcript.WriteString(sc.Text())
			transcript.WriteByte('\n')
		}
		done <- sc.Err()
	}()

	if v := waitTerminal(t, mgr, id); v.State != service.StateDone {
		t.Fatalf("job state %s (%s)", v.State, v.Error)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end after the job finished")
	}

	sum, err := obs.ValidateStream(bytes.NewReader(transcript.Bytes()))
	if err != nil {
		t.Fatalf("live stream fails validation: %v", err)
	}
	if sum.Final != "done" {
		t.Errorf("final lifecycle state %q, want done", sum.Final)
	}
	if sum.Spans == 0 || sum.Probes == 0 {
		t.Errorf("live stream missing span/probe frames: %s", sum)
	}
}

// TestJobLifecycleLogs: the structured log carries submitted /
// started / done records correlated by job_id.
func TestJobLifecycleLogs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mgr, _, _, logBuf := telemetryServer(t, 1)
	id := submitSpec(t, mgr, "log-job")
	if v := waitTerminal(t, mgr, id); v.State != service.StateDone {
		t.Fatalf("job state %s (%s)", v.State, v.Error)
	}
	if err := mgr.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	logs := logBuf.String()
	for _, msg := range []string{"job submitted", "job started", "job done"} {
		if !strings.Contains(logs, `"msg":"`+msg+`"`) {
			t.Errorf("missing lifecycle record %q in logs:\n%s", msg, logs)
		}
	}
	var sawJobID bool
	for _, line := range strings.Split(strings.TrimSpace(logs), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line: %s", line)
		}
		if rec["job_id"] == float64(1) {
			sawJobID = true
		}
	}
	if !sawJobID {
		t.Error("no log record carries the job_id correlation attr")
	}
}
