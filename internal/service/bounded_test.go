package service_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"unmasque/internal/service"
)

// TestBoundedJob submits a job with the bounded-check knob and asserts
// the result carries the proof bound and the mutant accounting.
func TestBoundedJob(t *testing.T) {
	ctx := context.Background()
	mgr, err := service.Start(ctx, service.Config{
		Workers:    1,
		QueueDepth: 4,
		StorePath:  filepath.Join(t.TempDir(), "jobs.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Drain(ctx)

	spec := inlineSpec("bounded-job")
	spec.Bounded = 2
	v, err := mgr.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, mgr, v.ID)

	res, err := mgr.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != service.StateDone {
		t.Fatalf("job finished %s: %s", res.State, res.Error)
	}
	if res.BoundedBound != 2 {
		t.Fatalf("result bounded_bound = %d, want 2", res.BoundedBound)
	}
	if res.MutantsKilled == 0 {
		t.Fatalf("bounded job killed no mutants: %+v", res)
	}
	if !strings.Contains(res.SQL, "select") {
		t.Fatalf("no extracted SQL in result: %+v", res)
	}
}

// TestBoundedSpecValidation rejects a negative bound at admission.
func TestBoundedSpecValidation(t *testing.T) {
	spec := inlineSpec("bad-bound")
	spec.Bounded = -1
	if err := spec.Validate(); err == nil {
		t.Fatal("negative bounded accepted")
	}
}
