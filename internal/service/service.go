// Package service turns the UNMASQUE library into a long-running
// extraction server: the serving tier the paper's deployment story
// implies (a platform vendor running hidden-query extraction over
// fleets of opaque client applications) on top of the concurrent
// pipeline in internal/core.
//
// The subsystem has four parts:
//
//   - The job Manager (manager.go): a bounded worker pool over
//     extraction jobs with admission control — a fixed-depth queue
//     that rejects submissions when full (HTTP 429) — per-job states
//     queued → running → done|failed|cancelled, monotonic job IDs,
//     end-to-end cancellation (each job runs under its own context,
//     threaded through core.ExtractContext), and graceful drain.
//   - The durable job Store (store.go): an append-only JSONL record
//     stream (job spec, every state transition, extracted SQL, error,
//     stats) from which a restarted daemon recovers its job history;
//     jobs that were queued or running at crash time are re-queued. A
//     torn tail — a record half-written when the process died — is
//     detected and discarded on open.
//   - The HTTP/JSON API (http.go): submit (a registered workload
//     application or an inline schema+rows+hidden-SQL spec), status,
//     result, per-job trace download (the internal/obs JSONL format),
//     list, cancel, /healthz and /metrics.
//   - Observability (wired throughout): every job carries its own
//     obs.Tracer and obs.Ledger — downloadable while the job is
//     terminal — and the Manager publishes service-level metrics
//     (queue depth, jobs by state, p50/p99 job latency) through an
//     internal/obs registry, expvar-scrapeable.
//
// cmd/unmasqued is the daemon binary; see DESIGN.md §9 for the state
// machine, API schema and durability format.
package service

import "errors"

// Admission errors. The HTTP layer maps them onto status codes
// (ErrQueueFull → 429, ErrDraining → 503, ErrUnknownJob → 404,
// ErrNotFinished → 409).
var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// capacity — the backpressure signal.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects a submission while the manager is shutting
	// down.
	ErrDraining = errors.New("service: manager is draining")
	// ErrUnknownJob reports a job ID that does not exist.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrNotFinished reports a result/trace request for a job that has
	// not reached a terminal state.
	ErrNotFinished = errors.New("service: job not finished")
	// ErrTerminal reports a cancel request for a job already in a
	// terminal state.
	ErrTerminal = errors.New("service: job already terminal")
)
