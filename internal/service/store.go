package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"unmasque/internal/core"
	"unmasque/internal/storage"
)

// Store is the append-only durable job log: one JSONL record per
// state transition (the queued record carries the full spec, the
// terminal record the outcome), fsynced per append. A restarted
// daemon replays the log to recover its job history; Open discards a
// torn tail — a record half-written when the process died — by
// truncating the file back to the last intact line.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Record is one JSONL line of the job log.
type Record struct {
	Type  string   `json:"type"` // always "job"
	ID    int64    `json:"id"`
	State State    `json:"state"`
	Spec  *JobSpec `json:"spec,omitempty"` // on the queued record
	SQL   string   `json:"sql,omitempty"`  // on the done record
	Err   string   `json:"err,omitempty"`  // on the failed record
	// Stats rides on terminal records of completed extractions.
	Stats *core.Stats `json:"stats,omitempty"`
	// TSUS is the wall-clock record time in microseconds since the
	// Unix epoch (diagnostic; recovery ignores it).
	TSUS int64 `json:"ts_us"`
}

// RecoveredJob is the replayed final snapshot of one job.
type RecoveredJob struct {
	ID    int64
	Spec  JobSpec
	State State
	SQL   string
	Err   string
	Stats core.Stats
}

// Recovery is what Open replayed from an existing log.
type Recovery struct {
	// Jobs holds one snapshot per job ID, in ID order. Jobs whose last
	// record was queued or running are not terminal: the manager must
	// re-queue them.
	Jobs []RecoveredJob
	// MaxID is the highest job ID seen; new IDs continue above it.
	MaxID int64
	// TornBytes is the size of the discarded torn tail (0 for a clean
	// log).
	TornBytes int64
}

// OpenStore opens (creating if absent) the job log at path, replays
// its records, truncates any torn tail, and returns the store
// positioned for appends. Torn-tail handling is the shared
// storage.RecoverTail discipline (also behind the storage WAL and the
// probe cache): a record is intact when its line is newline-terminated
// and parses as a job record; the first broken line ends the replay
// and everything after it is truncated away — a crash mid-append can
// only damage the end of an append-only file.
func OpenStore(ctx context.Context, path string) (*Store, *Recovery, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening job store: %w", err)
	}
	byID := map[int64]*RecoveredJob{}
	var order []int64
	_, torn, err := storage.RecoverTail(f, func(r *bufio.Reader) (int64, error) {
		line, err := r.ReadString('\n')
		if err == io.EOF {
			if len(line) > 0 {
				// A final line without its newline is by definition
				// torn, whether or not it happens to parse.
				return 0, storage.ErrTornRecord
			}
			return 0, io.EOF
		}
		if err != nil {
			return 0, fmt.Errorf("service: reading job store: %w", err)
		}
		var rec Record
		if uerr := json.Unmarshal([]byte(line), &rec); uerr != nil || rec.Type != "job" || rec.ID <= 0 {
			return 0, storage.ErrTornRecord // damaged record: discard it and everything after
		}
		j, ok := byID[rec.ID]
		if !ok {
			j = &RecoveredJob{ID: rec.ID}
			byID[rec.ID] = j
			order = append(order, rec.ID)
		}
		j.State = rec.State
		if rec.Spec != nil {
			j.Spec = *rec.Spec
		}
		if rec.SQL != "" {
			j.SQL = rec.SQL
		}
		if rec.Err != "" {
			j.Err = rec.Err
		}
		if rec.Stats != nil {
			j.Stats = *rec.Stats
		}
		return int64(len(line)), nil
	})
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	out := &Recovery{TornBytes: torn}
	for _, id := range order {
		if id > out.MaxID {
			out.MaxID = id
		}
		out.Jobs = append(out.Jobs, *byID[id])
	}
	return &Store{f: f, path: path}, out, nil
}

// Append writes one record and syncs it to stable storage.
func (s *Store) Append(ctx context.Context, rec Record) error {
	if s == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	rec.Type = "job"
	enc, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: encoding job record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(append(enc, '\n')); err != nil {
		return fmt.Errorf("service: appending job record: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("service: syncing job store: %w", err)
	}
	return nil
}

// Close releases the underlying file. Append after Close fails.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
