package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"unmasque/internal/core"
	"unmasque/internal/obs"
	"unmasque/internal/obs/telemetry"
	"unmasque/internal/storage"
)

// Config tunes the Manager.
type Config struct {
	// Workers is the extraction worker-pool size: at most this many
	// jobs run concurrently (default 2). Each job additionally fans
	// its probes out over its own core scheduler pool (JobSpec.Workers).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it are
	// rejected with ErrQueueFull (default 64).
	QueueDepth int
	// StorePath is the durable JSONL job log; empty runs ephemeral
	// (no recovery across restarts).
	StorePath string
	// CacheDir holds the daemon's durable probe cache
	// (<CacheDir>/probecache.log): application-run outcomes keyed by
	// database fingerprint, shared across every job and surviving
	// restarts. A repeat of an identical job on a warm cache invokes
	// the application zero times. Empty disables the durable tier (the
	// per-job in-memory cache still runs).
	CacheDir string
	// Metrics receives service-level metrics — queue depth, jobs by
	// state, job latency quantiles — plus the per-probe counters of
	// every extraction. Nil disables metrics.
	Metrics *obs.Metrics
	// Logger receives structured job-lifecycle records (submitted,
	// started, terminal transitions) with job_id correlation attrs,
	// and is threaded into every extraction for phase records. Nil
	// disables logging.
	Logger *obs.Logger
}

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
}

// Manager multiplexes extraction jobs over a bounded worker pool with
// admission control: a fixed-depth queue, reject-on-full, per-job
// cancellation, durable state transitions and graceful drain.
type Manager struct {
	cfg        Config
	store      *Store
	probeCache *storage.ProbeCache // nil without Config.CacheDir
	metrics    *obs.Metrics
	logger     *obs.Logger

	mu       sync.Mutex
	jobs     map[int64]*Job
	order    []int64 // IDs in submission order
	nextID   int64
	queue    chan *Job
	draining bool

	workers sync.WaitGroup
}

// Start opens (and replays) the durable store, re-queues jobs that
// were queued or running when the previous process died, and spawns
// the worker pool. The context bounds both startup I/O and the
// workers' extractions: cancelling it aborts every running job.
func Start(ctx context.Context, cfg Config) (*Manager, error) {
	cfg.normalize()
	m := &Manager{
		cfg:     cfg,
		metrics: cfg.Metrics,
		logger:  cfg.Logger,
		jobs:    map[int64]*Job{},
		nextID:  1,
	}
	if cfg.CacheDir != "" {
		pc, err := storage.OpenProbeCache(filepath.Join(cfg.CacheDir, "probecache.log"))
		if err != nil {
			return nil, fmt.Errorf("service: opening probe cache: %w", err)
		}
		m.probeCache = pc
	}
	var requeue []*Job
	if cfg.StorePath != "" {
		store, rec, err := OpenStore(ctx, cfg.StorePath)
		if err != nil {
			m.probeCache.Close()
			return nil, err
		}
		m.store = store
		m.nextID = rec.MaxID + 1
		for _, rj := range rec.Jobs {
			j := &Job{
				id:        rj.ID,
				spec:      rj.Spec,
				state:     rj.State,
				submitted: time.Now(),
				sql:       rj.SQL,
				errMsg:    rj.Err,
				stats:     rj.Stats,
			}
			m.jobs[j.id] = j
			m.order = append(m.order, j.id)
			if !rj.State.Terminal() {
				// Interrupted by the crash: back to the queue.
				j.state = StateQueued
				j.stream = telemetry.NewStream(0)
				j.stream.Publish(obs.JobEvent{Type: obs.TypeJob, ID: j.id, State: string(StateQueued)})
				requeue = append(requeue, j)
			}
		}
	}
	// The queue must absorb every re-queued job even when the log
	// holds more interrupted jobs than the configured depth.
	depth := cfg.QueueDepth
	if len(requeue) > depth {
		depth = len(requeue)
	}
	m.queue = make(chan *Job, depth)
	for _, j := range requeue {
		if err := m.append(ctx, Record{ID: j.id, State: StateQueued, Spec: &j.spec}); err != nil {
			m.store.Close()
			m.probeCache.Close()
			return nil, err
		}
		m.queue <- j
	}
	m.setGauges()
	for i := 0; i < cfg.Workers; i++ {
		m.workers.Add(1)
		go func() {
			defer m.workers.Done()
			for j := range m.queue {
				m.runJob(ctx, j)
			}
		}()
	}
	return m, nil
}

// Submit validates and admits one job, returning its queued snapshot.
// ErrQueueFull signals backpressure (the HTTP layer answers 429);
// ErrDraining means the manager is shutting down. The admission
// lock is held across the durable append so the log's record order
// matches ID order.
func (m *Manager) Submit(ctx context.Context, spec JobSpec) (View, error) {
	if err := spec.Validate(); err != nil {
		return View{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return View{}, ErrDraining
	}
	if len(m.queue) == cap(m.queue) {
		m.metrics.Counter("jobs_rejected").Add(1)
		return View{}, ErrQueueFull
	}
	j := &Job{
		id:        m.nextID,
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		stream:    telemetry.NewStream(0),
	}
	if err := m.append(ctx, Record{ID: j.id, State: StateQueued, Spec: &spec}); err != nil {
		return View{}, err
	}
	m.nextID++
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	j.stream.Publish(obs.JobEvent{Type: obs.TypeJob, ID: j.id, State: string(StateQueued)})
	m.queue <- j // cannot block: capacity checked under the same lock
	m.metrics.Counter("jobs_submitted").Add(1)
	m.setGaugesLocked()
	m.logger.WithJob(j.id).Info("job submitted", "name", spec.DisplayName())
	return j.view(), nil
}

// runJob drives one job through running to a terminal state.
func (m *Manager) runJob(ctx context.Context, j *Job) {
	m.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting in the queue; nothing to run.
		m.mu.Unlock()
		m.setGauges()
		return
	}
	jctx, cancel := context.WithCancel(ctx)
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.tracer = obs.NewTracer("extract")
	j.ledger = obs.NewLedger()
	// Live telemetry: every span open/close and probe record fans out
	// to the job's SSE stream as it happens. stream is write-once at
	// admission, so reading it outside the lock is safe.
	stream := j.stream
	j.tracer.SetSink(func(e obs.SpanEvent) { stream.Publish(e) })
	j.ledger.SetSink(func(e obs.ProbeEvent) { stream.Publish(e) })
	spec := j.spec
	m.setGaugesLocked()
	m.mu.Unlock()
	m.append(ctx, Record{ID: j.id, State: StateRunning})
	stream.Publish(obs.RunHeader{Type: obs.TypeRun, App: spec.DisplayName(), Workers: spec.Workers, Seed: spec.Seed})
	stream.Publish(obs.JobEvent{Type: obs.TypeJob, ID: j.id, State: string(StateRunning)})
	m.logger.WithJob(j.id).Info("job started", "name", spec.DisplayName())

	exe, db, err := spec.Materialize()
	var ext *core.Extraction
	if err == nil {
		cfg := jobConfig(spec)
		cfg.Tracer = j.tracer
		cfg.Ledger = j.ledger
		cfg.Metrics = m.metrics
		cfg.Logger = m.logger.WithJob(j.id)
		if m.probeCache != nil {
			// The daemon-wide durable tier, scoped to this job's
			// executable identity: an identical job on a warm cache
			// re-invokes the application zero times.
			cfg.SharedCache = m.probeCache.Namespace(spec.CacheKey())
		}
		ext, err = core.ExtractContext(jctx, exe, db, cfg)
	}
	cancel()

	m.mu.Lock()
	j.cancel = nil
	j.finished = time.Now()
	latency := j.finished.Sub(j.started)
	rec := Record{ID: j.id}
	switch {
	case err == nil:
		j.state = StateDone
		j.sql = ext.SQL
		j.summary = ext.Summary()
		j.stats = ext.Stats
		j.trace = ext.Trace
		rec.State, rec.SQL, rec.Stats = StateDone, ext.SQL, &ext.Stats
		m.metrics.Counter("jobs_done").Add(1)
	case j.cancelRequested && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		j.state = StateCancelled
		j.errMsg = err.Error()
		j.trace = j.tracer.Events()
		rec.State, rec.Err = StateCancelled, j.errMsg
		m.metrics.Counter("jobs_cancelled").Add(1)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		j.trace = j.tracer.Events()
		rec.State, rec.Err = StateFailed, j.errMsg
		m.metrics.Counter("jobs_failed").Add(1)
	}
	state, errMsg := j.state, j.errMsg
	m.setGaugesLocked()
	m.mu.Unlock()
	m.append(ctx, rec)

	// Terminal frame, then close: late subscribers get the full replay
	// (header, spans, probes, lifecycle) and an immediate end-of-stream.
	stream.Publish(obs.JobEvent{Type: obs.TypeJob, ID: j.id, State: string(state), Err: errMsg})
	stream.Close()
	log := m.logger.WithJob(j.id).With("latency_ms", float64(latency.Microseconds())/1e3)
	if state == StateDone {
		log.Info("job done")
	} else {
		log.Warn("job "+string(state), "err", errMsg)
	}

	// Latency quantiles are derived from this histogram at scrape time
	// (/metrics), not materialized into gauges here.
	m.metrics.Histogram("job_latency_ms").Observe(float64(latency.Microseconds()) / 1e3)
}

// jobConfig maps the spec's knobs onto the pipeline configuration.
func jobConfig(spec JobSpec) core.Config {
	cfg := core.DefaultConfig()
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	cfg.ExtractHaving = spec.Having
	if spec.Workers > 0 {
		cfg.Workers = spec.Workers
	}
	cfg.BoundedCheck = spec.Bounded
	// The service is the production surface: always verify static
	// class membership on top of the instance checker.
	cfg.VerifyEQC = true
	return cfg
}

// Cancel requests cancellation of a job: a queued job is terminally
// cancelled in place, a running job has its extraction context
// cancelled (the terminal transition is recorded by the worker when
// the pipeline unwinds). Cancelling a terminal job reports
// ErrTerminal.
func (m *Manager) Cancel(ctx context.Context, id int64) (View, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return View{}, ErrUnknownJob
	}
	switch {
	case j.state.Terminal():
		v := j.view()
		m.mu.Unlock()
		return v, ErrTerminal
	case j.state == StateQueued:
		j.state = StateCancelled
		j.finished = time.Now()
		j.errMsg = "cancelled before start"
		j.cancelRequested = true
		v := j.view()
		stream := j.stream
		m.metrics.Counter("jobs_cancelled").Add(1)
		m.setGaugesLocked()
		m.mu.Unlock()
		stream.Publish(obs.JobEvent{Type: obs.TypeJob, ID: id, State: string(StateCancelled), Err: "cancelled before start"})
		stream.Close()
		m.logger.WithJob(id).Warn("job cancelled", "err", "cancelled before start")
		m.append(ctx, Record{ID: id, State: StateCancelled, Err: j.errMsg})
		return v, nil
	default: // running
		j.cancelRequested = true
		cancel := j.cancel
		v := j.view()
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return v, nil
	}
}

// Get returns the status snapshot of one job.
func (m *Manager) Get(id int64) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return View{}, ErrUnknownJob
	}
	return j.view(), nil
}

// Result returns the outcome of a terminal job; ErrNotFinished
// otherwise.
func (m *Manager) Result(id int64) (Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Result{}, ErrUnknownJob
	}
	if !j.state.Terminal() {
		return Result{}, ErrNotFinished
	}
	return j.result(), nil
}

// List returns every job's snapshot in submission order.
func (m *Manager) List() []View {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]View, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].view())
	}
	return out
}

// WriteTrace serializes the job's recorded trace — run header, span
// tree, canonical probe ledger — as JSONL. Only terminal jobs have a
// stable trace; traces are process-local (not recovered from the
// store), so jobs replayed from a previous daemon instance have none.
func (m *Manager) WriteTrace(id int64, w io.Writer) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrUnknownJob
	}
	if !j.state.Terminal() {
		m.mu.Unlock()
		return ErrNotFinished
	}
	if j.tracer == nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: job predates this daemon instance", ErrUnknownJob)
	}
	header := obs.RunHeader{
		App:     j.spec.DisplayName(),
		Workers: j.stats.Workers,
		Seed:    j.spec.Seed,
	}
	spans := j.trace
	ledger := j.ledger
	m.mu.Unlock()
	return obs.WriteTrace(w, header, spans, ledger)
}

// TraceStream returns the job's live telemetry stream for SSE
// subscription. A terminal job's stream is closed: subscribers get
// the full replay and an immediate end-of-stream. Jobs replayed from
// a previous daemon instance carry no stream.
func (m *Manager) TraceStream(id int64) (*telemetry.Stream, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	if j.stream == nil {
		return nil, fmt.Errorf("%w: job predates this daemon instance", ErrUnknownJob)
	}
	return j.stream, nil
}

// Counts tallies jobs by state (for /healthz and tests).
func (m *Manager) Counts() map[State]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[State]int{}
	for _, j := range m.jobs {
		out[j.state]++
	}
	return out
}

// Draining reports whether the manager has stopped admitting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// QueueDepth reports the number of jobs waiting for a worker.
func (m *Manager) QueueDepth() int {
	return len(m.queue)
}

// Drain gracefully shuts the manager down: admission stops
// (submissions fail with ErrDraining), already-accepted jobs — queued
// and running — are completed, then the job store and the durable
// probe cache are closed. If ctx
// expires first, every remaining job's extraction is cancelled and
// Drain waits for the workers to unwind before returning ctx's error.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue) // workers finish the backlog, then exit
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		m.cancelRemaining()
		<-done
	}
	if cerr := m.store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if cerr := m.probeCache.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// cancelRemaining aborts every non-terminal job (hard drain).
func (m *Manager) cancelRemaining() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		if j.state.Terminal() {
			continue
		}
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		} else if j.state == StateQueued {
			j.state = StateCancelled
			j.finished = time.Now()
			j.errMsg = "cancelled by drain"
			j.stream.Publish(obs.JobEvent{Type: obs.TypeJob, ID: j.id, State: string(StateCancelled), Err: j.errMsg})
			j.stream.Close()
		}
	}
}

// append writes one store record stamped with the wall clock; a nil
// store (ephemeral manager) swallows it.
func (m *Manager) append(ctx context.Context, rec Record) error {
	rec.TSUS = time.Now().UnixMicro()
	return m.store.Append(ctx, rec)
}

// setGauges / setGaugesLocked refresh the queue and state gauges.
func (m *Manager) setGauges() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.setGaugesLocked()
}

func (m *Manager) setGaugesLocked() {
	if m.metrics == nil {
		return
	}
	m.metrics.Gauge("queue_depth").Set(int64(len(m.queue)))
	var running, queued int64
	for _, j := range m.jobs {
		switch j.state {
		case StateRunning:
			running++
		case StateQueued:
			queued++
		}
	}
	m.metrics.Gauge("jobs_running").Set(running)
	m.metrics.Gauge("jobs_queued").Set(queued)
}
