package service_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"unmasque/internal/core"
	"unmasque/internal/service"
)

// TestStoreTornTailRecovery is the crash-recovery contract: a log
// whose final record was half-written when the process died must
// reopen cleanly, discard exactly the torn tail, preserve every
// intact record, and leave the file valid for further appends.
func TestStoreTornTailRecovery(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "jobs.jsonl")

	st, rec, err := service.OpenStore(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.MaxID != 0 || len(rec.Jobs) != 0 || rec.TornBytes != 0 {
		t.Fatalf("fresh store recovered %+v, want empty", rec)
	}
	spec1 := inlineSpec("job-one")
	spec2 := inlineSpec("job-two")
	spec3 := inlineSpec("job-three")
	records := []service.Record{
		{ID: 1, State: service.StateQueued, Spec: &spec1},
		{ID: 2, State: service.StateQueued, Spec: &spec2},
		{ID: 1, State: service.StateRunning},
		{ID: 1, State: service.StateDone, SQL: "select a from t", Stats: &core.Stats{AppInvocations: 42}},
		{ID: 2, State: service.StateRunning},
		{ID: 3, State: service.StateQueued, Spec: &spec3},
	}
	for _, r := range records {
		if err := st.Append(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial record with no newline.
	torn := `{"type":"job","id":4,"sta`
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec2, err := service.OpenStore(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.TornBytes != int64(len(torn)) {
		t.Errorf("TornBytes = %d, want %d", rec2.TornBytes, len(torn))
	}
	if rec2.MaxID != 3 {
		t.Errorf("MaxID = %d, want 3", rec2.MaxID)
	}
	if len(rec2.Jobs) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(rec2.Jobs))
	}
	j1, j2, j3 := rec2.Jobs[0], rec2.Jobs[1], rec2.Jobs[2]
	if j1.ID != 1 || j1.State != service.StateDone || j1.SQL != "select a from t" || j1.Stats.AppInvocations != 42 {
		t.Errorf("job 1 recovered as %+v", j1)
	}
	if j1.Spec.Name != "job-one" {
		t.Errorf("job 1 spec lost: %+v", j1.Spec)
	}
	if j2.ID != 2 || j2.State != service.StateRunning || j2.State.Terminal() {
		t.Errorf("job 2 recovered as %+v, want non-terminal running", j2)
	}
	if j3.ID != 3 || j3.State != service.StateQueued {
		t.Errorf("job 3 recovered as %+v, want queued", j3)
	}

	// The truncated file must be positioned for appends: add a record,
	// reopen, and expect a clean (untorn) replay including it.
	if err := st2.Append(ctx, service.Record{ID: 4, State: service.StateQueued, Spec: &spec1}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3, err := service.OpenStore(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.TornBytes != 0 {
		t.Errorf("log torn again after truncation: %d bytes", rec3.TornBytes)
	}
	if rec3.MaxID != 4 || len(rec3.Jobs) != 4 {
		t.Errorf("after append: MaxID %d jobs %d, want 4 and 4", rec3.MaxID, len(rec3.Jobs))
	}
}

// TestStoreUnterminatedLineIsTorn: even a record that parses as
// complete JSON is torn if its newline never made it to disk — the
// append is atomic only once the terminator is durable.
func TestStoreUnterminatedLineIsTorn(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	spec := inlineSpec("whole-but-unterminated")

	st, _, err := service.OpenStore(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(ctx, service.Record{ID: 1, State: service.StateQueued, Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	whole := `{"type":"job","id":2,"state":"queued","ts_us":1}`
	if _, err := f.WriteString(whole); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := service.OpenStore(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornBytes != int64(len(whole)) {
		t.Errorf("TornBytes = %d, want %d", rec.TornBytes, len(whole))
	}
	if rec.MaxID != 1 || len(rec.Jobs) != 1 {
		t.Errorf("unterminated record survived replay: %+v", rec)
	}
}
