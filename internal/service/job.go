package service

import (
	"context"
	"time"

	"unmasque/internal/core"
	"unmasque/internal/obs"
	"unmasque/internal/obs/telemetry"
)

// State is the lifecycle position of a job. Transitions are strictly
// queued → running → done|failed|cancelled (a queued job may also go
// straight to cancelled).
type State string

// Job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one extraction job owned by the Manager. All mutable fields
// are guarded by the Manager's lock; workers and HTTP handlers read
// them only through snapshot methods on the Manager.
type Job struct {
	id   int64
	spec JobSpec

	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time

	// cancel aborts the job's extraction context. Non-nil only while
	// running; cancelling a queued job just flips its state.
	cancel context.CancelFunc
	// cancelRequested distinguishes "extraction failed because the
	// client cancelled" from organic pipeline failures when the
	// context error surfaces.
	cancelRequested bool

	// Extraction outcome.
	sql     string
	summary string
	errMsg  string
	stats   core.Stats

	// Per-job observability: the span tracer and probe ledger attached
	// to the extraction, from which the trace endpoint serves its
	// JSONL download.
	tracer *obs.Tracer
	ledger *obs.Ledger
	trace  []obs.SpanEvent

	// stream fans the job's live telemetry (run header, span frames,
	// probe events, lifecycle transitions) out to SSE subscribers. It
	// is created at admission, closed on the terminal transition, and
	// nil only for jobs replayed from a previous daemon instance.
	stream *telemetry.Stream
}

// View is the JSON snapshot of a job served by the status and list
// endpoints.
type View struct {
	ID        int64  `json:"id"`
	Name      string `json:"name"`
	State     State  `json:"state"`
	Submitted string `json:"submitted,omitempty"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Result is the JSON outcome of a terminal job served by the result
// endpoint. The probe accounting fields restate the per-job ledger
// invariant: LedgerEvents == AppInvocations + CacheHits +
// DiskCacheHits. DiskCacheHits counts probes served by the daemon's
// durable cross-job cache (never omitted so clients can assert on it:
// a warm repeat of an identical job reports app_invocations == 0 and
// disk_cache_hits > 0).
type Result struct {
	ID      int64  `json:"id"`
	Name    string `json:"name"`
	State   State  `json:"state"`
	SQL     string `json:"sql,omitempty"`
	Summary string `json:"summary,omitempty"`
	Error   string `json:"error,omitempty"`

	TotalMS        int64 `json:"total_ms"`
	AppInvocations int64 `json:"app_invocations"`
	CacheHits      int64 `json:"cache_hits"`
	DiskCacheHits  int64 `json:"disk_cache_hits"`
	LedgerEvents   int64 `json:"ledger_events"`
	Workers        int   `json:"workers,omitempty"`
	// BoundedBound is the k of the bounded equivalence proof when the
	// job ran with spec.Bounded > 0; MutantsKilled/MutantsProven count
	// the checker's mutant classifications under that proof.
	BoundedBound  int `json:"bounded_bound,omitempty"`
	MutantsKilled int `json:"mutants_killed,omitempty"`
	MutantsProven int `json:"mutants_proven,omitempty"`

	// Execution-engine accounting (core.Stats deltas for this job's
	// extraction): which sqldb engine probes ran on and, under the
	// vectorized engine, its index/join-reuse/batch counters.
	ExecMode         string `json:"exec_mode,omitempty"`
	IndexBuilds      int64  `json:"index_builds,omitempty"`
	IndexHits        int64  `json:"index_hits,omitempty"`
	RangeBuilds      int64  `json:"range_builds,omitempty"`
	RangeHits        int64  `json:"range_hits,omitempty"`
	JoinBuildsReused int64  `json:"join_builds_reused,omitempty"`
	VectorBatches    int64  `json:"vector_batches,omitempty"`
}

// view renders the job snapshot; the caller holds the Manager lock.
func (j *Job) view() View {
	v := View{
		ID:        j.id,
		Name:      j.spec.DisplayName(),
		State:     j.state,
		Submitted: stamp(j.submitted),
		Started:   stamp(j.started),
		Finished:  stamp(j.finished),
		Error:     j.errMsg,
	}
	return v
}

// result renders the terminal outcome; the caller holds the Manager
// lock and has checked the state is terminal.
func (j *Job) result() Result {
	return Result{
		ID:             j.id,
		Name:           j.spec.DisplayName(),
		State:          j.state,
		SQL:            j.sql,
		Summary:        j.summary,
		Error:          j.errMsg,
		TotalMS:        j.stats.Total.Milliseconds(),
		AppInvocations: j.stats.AppInvocations,
		CacheHits:      j.stats.CacheHits,
		DiskCacheHits:  j.stats.DiskCacheHits,
		LedgerEvents:   int64(j.ledger.Len()),
		Workers:        j.stats.Workers,
		BoundedBound:   j.stats.BoundedBound,
		MutantsKilled:  j.stats.MutantsKilledStatic + j.stats.MutantsKilledWitness,
		MutantsProven:  j.stats.MutantsProvenEquivalent,

		ExecMode:         j.stats.ExecMode,
		IndexBuilds:      j.stats.IndexBuilds,
		IndexHits:        j.stats.IndexHits,
		RangeBuilds:      j.stats.RangeBuilds,
		RangeHits:        j.stats.RangeHits,
		JoinBuildsReused: j.stats.JoinBuildsReused,
		VectorBatches:    j.stats.VectorBatches,
	}
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}
