package service_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"unmasque/internal/obs"
	"unmasque/internal/service"
)

// inlineSpec is a small single-table job that extracts in tens of
// milliseconds — the unit of work for manager tests.
func inlineSpec(name string) service.JobSpec {
	var rows [][]string
	for i := 1; i <= 12; i++ {
		rows = append(rows, []string{strconv.Itoa(i), strconv.Itoa(i * 10)})
	}
	return service.JobSpec{
		Name: name,
		Tables: []service.TableSpec{{
			Name: "t",
			Columns: []service.ColumnSpec{
				{Name: "a", Type: "int", Min: 1, Max: 1000},
				{Name: "b", Type: "int", Min: 1, Max: 1000},
			},
			PrimaryKey: []string{"a"},
			Rows:       rows,
		}},
		SQL:  "select a, b from t where b <= 60",
		Seed: 1,
	}
}

func waitState(t *testing.T, m *service.Manager, id int64, pred func(service.State) bool, what string) service.View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, err := m.Get(id)
		if err != nil {
			t.Fatalf("job %d: %v", id, err)
		}
		if pred(v.State) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %d never became %s", id, what)
	return service.View{}
}

func waitTerminal(t *testing.T, m *service.Manager, id int64) service.View {
	t.Helper()
	return waitState(t, m, id, service.State.Terminal, "terminal")
}

// TestManagerConcurrentJobs is the acceptance scenario: 32 jobs
// submitted concurrently against a 4-worker pool all complete, IDs
// are dense and monotonic, and the per-job ledger invariant
// (ledger events == app invocations + cache hits) holds for each.
func TestManagerConcurrentJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	met := obs.NewMetrics()
	mgr, err := service.Start(ctx, service.Config{
		Workers:    4,
		QueueDepth: 64,
		StorePath:  filepath.Join(t.TempDir(), "jobs.jsonl"),
		Metrics:    met,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 32
	ids := make([]int64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := mgr.Submit(ctx, inlineSpec(fmt.Sprintf("job-%02d", i)))
			ids[i], errs[i] = v.ID, err
		}(i)
	}
	wg.Wait()
	seen := map[int64]bool{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d rejected: %v", i, errs[i])
		}
		if ids[i] < 1 || ids[i] > n || seen[ids[i]] {
			t.Fatalf("submit %d got id %d, want unique in [1,%d]", i, ids[i], n)
		}
		seen[ids[i]] = true
	}

	for id := int64(1); id <= n; id++ {
		if v := waitTerminal(t, mgr, id); v.State != service.StateDone {
			t.Fatalf("job %d state %s (%s), want done", id, v.State, v.Error)
		}
		res, err := mgr.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if res.SQL == "" {
			t.Errorf("job %d has no extracted SQL", id)
		}
		if res.LedgerEvents == 0 || res.LedgerEvents != res.AppInvocations+res.CacheHits {
			t.Errorf("job %d ledger invariant broken: events %d, invocations %d + hits %d",
				id, res.LedgerEvents, res.AppInvocations, res.CacheHits)
		}
	}

	if err := mgr.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := met.Counter("jobs_done").Value(); got != n {
		t.Errorf("jobs_done = %d, want %d", got, n)
	}
	if got := met.Counter("jobs_submitted").Value(); got != n {
		t.Errorf("jobs_submitted = %d, want %d", got, n)
	}
	if got := met.Gauge("jobs_running").Value(); got != 0 {
		t.Errorf("jobs_running gauge = %d after drain", got)
	}
	if got := met.Histogram("job_latency_ms").Count(); got != n {
		t.Errorf("latency histogram has %d observations, want %d", got, n)
	}
	h := met.Histogram("job_latency_ms")
	if p50, p99 := h.Quantile(0.50), h.Quantile(0.99); p50 > p99 {
		t.Errorf("latency quantiles inverted: p50 %v > p99 %v", p50, p99)
	}
}

// TestManagerBackpressureAndCancel drives the admission-control and
// cancellation paths with a single worker: a long job occupies the
// pool, a filler fills the depth-1 queue, the next submission bounces
// with ErrQueueFull; the queued filler cancels in place, the running
// job cancels via its context, and the manager keeps serving
// afterwards until drain.
func TestManagerBackpressureAndCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	met := obs.NewMetrics()
	mgr, err := service.Start(ctx, service.Config{Workers: 1, QueueDepth: 1, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}

	// A full TPC-H extraction keeps the lone worker busy for seconds.
	slow, err := mgr.Submit(ctx, service.JobSpec{App: "tpch/Q3"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, mgr, slow.ID, func(s service.State) bool { return s == service.StateRunning }, "running")

	if _, err := mgr.Result(slow.ID); !errors.Is(err, service.ErrNotFinished) {
		t.Fatalf("result of running job: %v, want ErrNotFinished", err)
	}

	filler, err := mgr.Submit(ctx, inlineSpec("filler"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Submit(ctx, inlineSpec("rejected")); !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("over-capacity submit: %v, want ErrQueueFull", err)
	}
	if got := met.Counter("jobs_rejected").Value(); got != 1 {
		t.Errorf("jobs_rejected = %d, want 1", got)
	}

	// Cancel the queued filler: terminal immediately, no worker involved.
	v, err := mgr.Cancel(ctx, filler.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != service.StateCancelled {
		t.Fatalf("cancelled queued job state %s", v.State)
	}
	if _, err := mgr.Cancel(ctx, filler.ID); !errors.Is(err, service.ErrTerminal) {
		t.Fatalf("re-cancel: %v, want ErrTerminal", err)
	}

	// Cancel the running job: its extraction context unwinds the
	// pipeline between probes.
	if _, err := mgr.Cancel(ctx, slow.ID); err != nil {
		t.Fatal(err)
	}
	if v := waitTerminal(t, mgr, slow.ID); v.State != service.StateCancelled || v.Error == "" {
		t.Fatalf("cancelled running job: state %s error %q", v.State, v.Error)
	}

	// The worker pool survives cancellations.
	after, err := mgr.Submit(ctx, inlineSpec("after-cancel"))
	if err != nil {
		t.Fatal(err)
	}
	if v := waitTerminal(t, mgr, after.ID); v.State != service.StateDone {
		t.Fatalf("post-cancel job state %s (%s)", v.State, v.Error)
	}

	if _, err := mgr.Get(999); !errors.Is(err, service.ErrUnknownJob) {
		t.Fatalf("unknown id: %v, want ErrUnknownJob", err)
	}

	if err := mgr.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := mgr.Submit(ctx, inlineSpec("too-late")); !errors.Is(err, service.ErrDraining) {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
	if got := met.Counter("jobs_cancelled").Value(); got != 2 {
		t.Errorf("jobs_cancelled = %d, want 2", got)
	}
}

// TestManagerRecovery restarts the manager over an existing log:
// terminal jobs come back as history, interrupted jobs re-queue and
// run to completion, and fresh IDs continue above the recovered
// maximum.
func TestManagerRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "jobs.jsonl")

	// Seed the log as a crashed daemon would have left it: job 3
	// finished, job 7 was mid-extraction.
	st, _, err := service.OpenStore(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	doneSpec := inlineSpec("finished-before-crash")
	runSpec := inlineSpec("interrupted-by-crash")
	seed := []service.Record{
		{ID: 3, State: service.StateQueued, Spec: &doneSpec},
		{ID: 3, State: service.StateRunning},
		{ID: 3, State: service.StateDone, SQL: "select a, b from t where b <= 60"},
		{ID: 7, State: service.StateQueued, Spec: &runSpec},
		{ID: 7, State: service.StateRunning},
	}
	for _, r := range seed {
		if err := st.Append(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	mgr, err := service.Start(ctx, service.Config{Workers: 2, StorePath: path})
	if err != nil {
		t.Fatal(err)
	}

	// Recovered history is served.
	if v, err := mgr.Get(3); err != nil || v.State != service.StateDone {
		t.Fatalf("recovered job 3: %+v, %v", v, err)
	}
	res, err := mgr.Result(3)
	if err != nil || res.SQL != "select a, b from t where b <= 60" {
		t.Fatalf("recovered result: %+v, %v", res, err)
	}
	// Traces are process-local: a recovered job has none.
	if err := mgr.WriteTrace(3, nil); !errors.Is(err, service.ErrUnknownJob) {
		t.Fatalf("trace of recovered job: %v, want wrapped ErrUnknownJob", err)
	}

	// The interrupted job was re-queued and completes for real now.
	if v := waitTerminal(t, mgr, 7); v.State != service.StateDone {
		t.Fatalf("re-queued job state %s (%s)", v.State, v.Error)
	}
	if res, err := mgr.Result(7); err != nil || res.SQL == "" {
		t.Fatalf("re-run result: %+v, %v", res, err)
	}

	// New IDs continue above the recovered maximum.
	v, err := mgr.Submit(ctx, inlineSpec("post-restart"))
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 8 {
		t.Fatalf("post-restart id %d, want 8", v.ID)
	}
	waitTerminal(t, mgr, v.ID)
	if err := mgr.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// A second restart finds only terminal jobs: nothing to re-queue.
	mgr2, err := service.Start(ctx, service.Config{Workers: 2, StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if d := mgr2.QueueDepth(); d != 0 {
		t.Errorf("clean restart re-queued %d jobs", d)
	}
	counts := mgr2.Counts()
	if counts[service.StateDone] != 3 || counts[service.StateQueued] != 0 || counts[service.StateRunning] != 0 {
		t.Errorf("clean restart counts: %v", counts)
	}
	if err := mgr2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestManagerHardDrain: a drain whose context expires cancels the
// jobs still in flight instead of waiting for them.
func TestManagerHardDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	mgr, err := service.Start(ctx, service.Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := mgr.Submit(ctx, service.JobSpec{App: "tpch/Q10"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, mgr, slow.ID, func(s service.State) bool { return s == service.StateRunning }, "running")

	dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := mgr.Drain(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hard drain: %v, want DeadlineExceeded", err)
	}
	v, err := mgr.Get(slow.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != service.StateCancelled && v.State != service.StateDone {
		t.Fatalf("after hard drain job is %s, want cancelled (or done if it raced)", v.State)
	}
}
