package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"unmasque/internal/obs/telemetry"
)

// Server is the HTTP/JSON face of the Manager.
//
//	GET  /healthz          liveness + drain state + jobs-by-state tally
//	GET  /metrics          service metrics: JSON snapshot by default;
//	                       Prometheus text exposition (0.0.4) with
//	                       ?format=prom or an Accept header naming
//	                       text/plain. Latency quantiles are computed
//	                       from the job_latency_ms histogram at read
//	                       time.
//	GET  /jobs             all jobs, submission order
//	POST /jobs             submit a JobSpec, 202 {"id": n, ...}
//	GET  /jobs/{id}        status snapshot
//	GET  /jobs/{id}/result terminal outcome (409 until terminal)
//	GET  /jobs/{id}/trace  JSONL trace download (run header, spans, ledger)
//	GET  /jobs/{id}/trace/stream  live SSE telemetry (replay + follow)
//	POST /jobs/{id}/cancel request cancellation
//
// Admission errors map onto status codes: ErrQueueFull → 429,
// ErrDraining → 503, ErrUnknownJob → 404, ErrNotFinished → 409,
// ErrTerminal → 409, spec validation → 400.
type Server struct {
	mgr *Manager
	mux *http.ServeMux
}

// NewServer wires the Manager's routes into a fresh mux.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /jobs/{id}/trace/stream", s.handleTraceStream)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	counts := s.mgr.Counts()
	byState := map[string]int{}
	for st, n := range counts {
		byState[string(st)] = n
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"draining":    s.mgr.Draining(),
		"queue_depth": s.mgr.QueueDepth(),
		"jobs":        byState,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		// Render to a buffer first so an encoding error (conflicting
		// family types) can still answer with a clean 500.
		var buf bytes.Buffer
		if err := telemetry.WritePrometheus(&buf, s.mgr.metrics); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", telemetry.PromContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf.Bytes())
		return
	}
	snap := s.mgr.metrics.Snapshot()
	if snap != nil {
		// Latency quantiles derive from the histogram at read time
		// rather than being materialized into gauges on every job end.
		if h := s.mgr.metrics.Histogram("job_latency_ms"); h.Count() > 0 {
			snap["job_latency_p50_ms"] = h.Quantile(0.50)
			snap["job_latency_p99_ms"] = h.Quantile(0.99)
		}
	}
	writeJSON(w, http.StatusOK, snap)
}

// wantsProm reports whether the request asked for Prometheus text
// exposition: ?format=prom, or an Accept header naming text/plain
// (the Prometheus scraper's preference) rather than JSON.
func wantsProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prom" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.mgr.Submit(r.Context(), spec)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	v, err := s.mgr.Get(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	res, err := s.mgr.Result(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	// Probe the job first so errors surface before the body starts.
	if _, err := s.mgr.Get(id); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := s.mgr.WriteTrace(id, w); err != nil {
		// Headers may already be out for a mid-stream failure; for the
		// not-finished / unknown cases nothing has been written yet.
		writeError(w, statusFor(err), err)
	}
}

func (s *Server) handleTraceStream(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	st, err := s.mgr.TraceStream(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	telemetry.ServeSSE(w, r, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	v, err := s.mgr.Cancel(r.Context(), id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

// jobID parses the {id} path value; on failure it writes the 400
// itself and reports ok=false.
func jobID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil || id <= 0 {
		writeError(w, http.StatusBadRequest, errors.New("service: bad job id"))
		return 0, false
	}
	return id, true
}

// statusFor maps manager errors onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrNotFinished), errors.Is(err, ErrTerminal):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
