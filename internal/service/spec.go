package service

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strings"

	"unmasque/internal/app"
	"unmasque/internal/sqldb"
	"unmasque/internal/storage"
	"unmasque/internal/workloads/registry"
)

// JobSpec describes one extraction job. Exactly one of the two modes
// must be used:
//
//   - Workload mode: App names a registered application
//     ("tpch/Q3", "enki/posts_by_tag", …) whose executable and
//     database the workload registry builds.
//   - Inline mode: Tables carries the schema and rows of the database
//     instance and SQL the hidden query, which is wrapped in an
//     app.SQLExecutable (obfuscated at rest, like every other hidden
//     query in the repo).
type JobSpec struct {
	// App is the registered application name (workload mode).
	App string `json:"app,omitempty"`

	// Name labels an inline job (defaults to "inline").
	Name string `json:"name,omitempty"`
	// Tables is the inline database instance.
	Tables []TableSpec `json:"tables,omitempty"`
	// SQL is the inline hidden query.
	SQL string `json:"sql,omitempty"`

	// Seed drives data generation and extraction randomness
	// (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Having selects the Section 7 pipeline.
	Having bool `json:"having,omitempty"`
	// Workers overrides the per-extraction probe worker pool (0 =
	// pipeline default).
	Workers int `json:"workers,omitempty"`
	// Bounded turns on the symbolically pruned checker with a bounded
	// equivalence proof at k = Bounded rows per table (0 = classical
	// instance suite).
	Bounded int `json:"bounded,omitempty"`
}

// TableSpec is one inline table: schema plus row data.
type TableSpec struct {
	Name        string       `json:"name"`
	Columns     []ColumnSpec `json:"columns"`
	PrimaryKey  []string     `json:"primary_key,omitempty"`
	ForeignKeys []FKSpec     `json:"foreign_keys,omitempty"`
	// Rows are field strings in the engine's CSV literal syntax,
	// parsed against the column types (sqldb.ParseValue).
	Rows [][]string `json:"rows,omitempty"`
}

// ColumnSpec is one inline column definition.
type ColumnSpec struct {
	Name string `json:"name"`
	// Type is int, float, text, date or bool.
	Type string `json:"type"`
	// Min/Max bound the probing domain for int/float/date columns
	// (zero = engine default).
	Min int64 `json:"min,omitempty"`
	Max int64 `json:"max,omitempty"`
	// MaxLen bounds text values (zero = engine default).
	MaxLen int `json:"max_len,omitempty"`
	// Precision is the decimal-digit count of float columns.
	Precision int `json:"precision,omitempty"`
}

// FKSpec is one inline foreign-key edge.
type FKSpec struct {
	Column    string `json:"column"`
	RefTable  string `json:"ref_table"`
	RefColumn string `json:"ref_column"`
}

// DisplayName is the label the job is reported under: the registered
// application name, or the inline name.
func (sp JobSpec) DisplayName() string {
	if sp.App != "" {
		return sp.App
	}
	if sp.Name != "" {
		return sp.Name
	}
	return "inline"
}

// CacheKey is the durable probe-cache namespace of the job: two specs
// share a namespace exactly when they run the same executable against
// the same generated-data seed, so a fingerprint hit is guaranteed to
// describe the same (E, database) pair. Workload jobs key on the
// registered application name plus seed; inline jobs on a digest of
// their table payload and hidden SQL plus seed. Knobs that change how
// the extraction is driven but not what E computes — Name, Workers,
// Having, Bounded — deliberately do not contribute: jobs differing
// only in those reuse each other's probe outcomes.
func (sp JobSpec) CacheKey() string {
	seed := sp.Seed
	if seed == 0 {
		seed = 1
	}
	if sp.App != "" {
		return storage.AppNamespace(sp.App, seed)
	}
	// Specs are built from decoded JSON, so re-encoding cannot fail;
	// appending the SQL separately keeps the executable's identity in
	// the key even if it somehow did.
	enc, _ := json.Marshal(struct {
		Tables []TableSpec `json:"tables"`
		SQL    string      `json:"sql"`
	}{sp.Tables, sp.SQL})
	sum := sha256.Sum256(append(enc, sp.SQL...))
	return fmt.Sprintf("inline/%x#seed=%d", sum[:12], seed)
}

// Validate checks the spec for structural errors without building
// anything: a bad spec must be rejected at admission, not discovered
// by a worker.
func (sp JobSpec) Validate() error {
	if sp.Bounded < 0 {
		return fmt.Errorf("spec: bounded must be non-negative")
	}
	inline := len(sp.Tables) > 0 || sp.SQL != ""
	switch {
	case sp.App == "" && !inline:
		return fmt.Errorf("spec: either app or tables+sql required")
	case sp.App != "" && inline:
		return fmt.Errorf("spec: app and inline tables/sql are mutually exclusive")
	case sp.App != "":
		if _, ok := registry.Lookup(sp.App); !ok {
			return fmt.Errorf("spec: unknown application %q", sp.App)
		}
		return nil
	}
	if len(sp.Tables) == 0 {
		return fmt.Errorf("spec: inline job has no tables")
	}
	if strings.TrimSpace(sp.SQL) == "" {
		return fmt.Errorf("spec: inline job has no hidden sql")
	}
	for _, t := range sp.Tables {
		if t.Name == "" {
			return fmt.Errorf("spec: table with empty name")
		}
		if len(t.Columns) == 0 {
			return fmt.Errorf("spec: table %s has no columns", t.Name)
		}
		for _, c := range t.Columns {
			if _, err := columnType(c.Type); err != nil {
				return fmt.Errorf("spec: table %s column %s: %w", t.Name, c.Name, err)
			}
		}
		for i, r := range t.Rows {
			if len(r) != len(t.Columns) {
				return fmt.Errorf("spec: table %s row %d has %d fields, want %d",
					t.Name, i, len(r), len(t.Columns))
			}
		}
	}
	return nil
}

// Materialize builds the executable and database instance the job
// extracts from. The spec must have passed Validate.
func (sp JobSpec) Materialize() (app.Executable, *sqldb.Database, error) {
	seed := sp.Seed
	if seed == 0 {
		seed = 1
	}
	if sp.App != "" {
		return registry.Build(sp.App, seed)
	}
	db := sqldb.NewDatabase()
	for _, t := range sp.Tables {
		schema, err := t.schema()
		if err != nil {
			return nil, nil, err
		}
		if err := db.CreateTable(schema); err != nil {
			return nil, nil, fmt.Errorf("spec: table %s: %w", t.Name, err)
		}
		for i, r := range t.Rows {
			vals := make([]sqldb.Value, len(r))
			for j, field := range r {
				v, err := sqldb.ParseValue(schema.Columns[j].Type, field)
				if err != nil {
					return nil, nil, fmt.Errorf("spec: table %s row %d column %s: %w",
						t.Name, i, schema.Columns[j].Name, err)
				}
				vals[j] = v
			}
			if err := db.Insert(t.Name, vals...); err != nil {
				return nil, nil, fmt.Errorf("spec: table %s row %d: %w", t.Name, i, err)
			}
		}
	}
	exe, err := app.NewSQLExecutable(sp.DisplayName(), sp.SQL)
	if err != nil {
		return nil, nil, fmt.Errorf("spec: hidden sql: %w", err)
	}
	return exe, db, nil
}

// schema converts the inline table spec to an engine schema.
func (t TableSpec) schema() (sqldb.TableSchema, error) {
	out := sqldb.TableSchema{Name: t.Name, PrimaryKey: t.PrimaryKey}
	for _, c := range t.Columns {
		typ, err := columnType(c.Type)
		if err != nil {
			return sqldb.TableSchema{}, err
		}
		out.Columns = append(out.Columns, sqldb.Column{
			Name:      c.Name,
			Type:      typ,
			MinInt:    c.Min,
			MaxInt:    c.Max,
			MaxLen:    c.MaxLen,
			Precision: c.Precision,
		})
	}
	for _, fk := range t.ForeignKeys {
		out.ForeignKeys = append(out.ForeignKeys, sqldb.ForeignKey{
			Column: fk.Column, RefTable: fk.RefTable, RefColumn: fk.RefColumn,
		})
	}
	return out, nil
}

// columnType parses the wire column-type name.
func columnType(name string) (sqldb.Type, error) {
	switch strings.ToLower(name) {
	case "int":
		return sqldb.TInt, nil
	case "float":
		return sqldb.TFloat, nil
	case "text":
		return sqldb.TText, nil
	case "date":
		return sqldb.TDate, nil
	case "bool":
		return sqldb.TBool, nil
	default:
		return 0, fmt.Errorf("unknown column type %q (want int|float|text|date|bool)", name)
	}
}
