package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"unmasque/internal/obs"
	"unmasque/internal/service"
)

// TestHTTPEndToEnd drives the full API surface over a live test
// server: submit → status → result → trace download, plus the error
// statuses the handlers promise.
func TestHTTPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	mgr, err := service.Start(ctx, service.Config{
		Workers:    2,
		QueueDepth: 8,
		StorePath:  filepath.Join(t.TempDir(), "jobs.jsonl"),
		Metrics:    obs.NewMetrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewServer(mgr))
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}
	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}

	// Liveness.
	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	// Bad submissions.
	if resp, _ := post("/jobs", `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}
	if resp, body := post("/jobs", `{"app":"no-such/app"}`); resp.StatusCode != http.StatusBadRequest ||
		!bytes.Contains(body, []byte("unknown application")) {
		t.Errorf("unknown app: %d %s, want 400", resp.StatusCode, body)
	}

	// Submit an inline job.
	enc, err := json.Marshal(inlineSpec("http-inline"))
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post("/jobs", string(enc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var view service.View
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.ID != 1 || view.State != service.StateQueued {
		t.Fatalf("submit view: %+v", view)
	}

	// Poll status to terminal.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body = get(fmt.Sprintf("/jobs/%d", view.ID))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatal(err)
		}
		if view.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.State != service.StateDone {
		t.Fatalf("job finished %s: %s", view.State, view.Error)
	}

	// Result carries the SQL and the ledger invariant.
	resp, body = get(fmt.Sprintf("/jobs/%d/result", view.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	var res service.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.SQL == "" || !strings.Contains(strings.ToLower(res.SQL), "select") {
		t.Errorf("result sql: %q", res.SQL)
	}
	if res.LedgerEvents == 0 || res.LedgerEvents != res.AppInvocations+res.CacheHits {
		t.Errorf("ledger invariant over HTTP: events %d, invocations %d + hits %d",
			res.LedgerEvents, res.AppInvocations, res.CacheHits)
	}

	// The trace download is a valid obs JSONL stream.
	resp, body = get(fmt.Sprintf("/jobs/%d/trace", view.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("trace content type %q", ct)
	}
	sum, err := obs.Validate(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if int64(sum.Probes) != res.AppInvocations+res.CacheHits {
		t.Errorf("trace ledger has %d probes, result reports %d",
			sum.Probes, res.AppInvocations+res.CacheHits)
	}

	// List includes the job.
	resp, body = get("/jobs")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"http-inline"`)) {
		t.Errorf("list: %d %s", resp.StatusCode, body)
	}

	// Error statuses.
	if resp, _ := get("/jobs/999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
	if resp, _ := get("/jobs/abc"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-numeric id: %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(fmt.Sprintf("/jobs/%d/cancel", view.ID), ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel terminal job: %d, want 409", resp.StatusCode)
	}

	// Drain, then submissions bounce with 503.
	if err := mgr.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, _ := post("/jobs", string(enc)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: %d, want 503", resp.StatusCode)
	}
}
