package sqlparser

import (
	"strings"
	"testing"

	"unmasque/internal/sqldb"
)

func TestParseTPCHQ3Shape(t *testing.T) {
	stmt, err := Parse(`
		select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
		       o_orderdate, o_shippriority
		from customer, orders, lineitem
		where c_mktsegment = 'BUILDING'
		  and c_custkey = o_custkey
		  and l_orderkey = o_orderkey
		  and o_orderdate < date '1995-03-15'
		  and l_shipdate > date '1995-03-15'
		group by l_orderkey, o_orderdate, o_shippriority
		order by revenue desc, o_orderdate
		limit 10;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 4 || len(stmt.From) != 3 || len(stmt.GroupBy) != 3 {
		t.Fatalf("shape: items=%d from=%d group=%d", len(stmt.Items), len(stmt.From), len(stmt.GroupBy))
	}
	if stmt.Limit != 10 {
		t.Errorf("limit = %d", stmt.Limit)
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order keys: %v", stmt.OrderBy)
	}
	conj := sqldb.Conjuncts(stmt.Where)
	if len(conj) != 5 {
		t.Errorf("conjunct count = %d", len(conj))
	}
	if stmt.Items[1].Alias != "revenue" {
		t.Errorf("alias = %q", stmt.Items[1].Alias)
	}
}

func TestParseRoundTrip(t *testing.T) {
	queries := []string{
		"select a from t;",
		"select a, b as x from t where a = 5;",
		"select a from t where a between 1 and 10;",
		"select a from t where s like '%abc_%';",
		"select a from t where s not like 'x%';",
		"select a from t where a is null;",
		"select a from t where a is not null;",
		"select count(*) from t;",
		"select min(a), max(a), sum(a), avg(a), count(a) from t;",
		"select count(distinct a) from t;",
		"select a from t where d >= date '1995-03-14';",
		"select a, b from t, u where a = c group by a, b having sum(b) > 10 order by a desc limit 5;",
		"select a * (1 - b) + 2 as f from t;",
		"select a from t where a = -5;",
		"select a from t where a > 1.25;",
		"select a from t where x = 'it''s';",
		"select a from t where not (a = 1 or b = 2);",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		// Round trip: the printed form must re-parse to the same
		// printed form (fixpoint).
		printed := stmt.String()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q (-> %q): %v", q, printed, err)
		}
		if stmt2.String() != printed {
			t.Errorf("print fixpoint violated:\n first: %s\nsecond: %s", printed, stmt2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		sql     string
		wantSub string
	}{
		{"", "expected"},
		{"select", "unexpected end"},
		{"select a", `expected "from"`},
		{"select a from", "expected table name"},
		{"select a from t where", "unexpected end"},
		{"select a from t limit 0", "invalid limit"},
		{"select a from t limit x", "expected limit count"},
		{"select a from t where a = 1 extra", "trailing input"},
		{"select a from (select b from t)", "expected table name"},
		{"select a from t where exists (select 1 from u)", "subquer"},
		{"select a from t join u on a = b", "JOIN syntax"},
		{"select foo(a) from t", "unknown function"},
		{"select a from t where s like 5", "pattern string"},
		{"select a from t t2", "aliases unsupported"},
		{"select a from t where a = 'unterminated", "unterminated string"},
		{"select a from t where a @ 5", "unexpected character"},
		{"select a from t where d = date 5", "date string"},
		{"select a from t where d = date '99-xx'", "invalid date"},
	}
	for _, c := range cases {
		_, err := Parse(c.sql)
		if err == nil {
			t.Errorf("%q: expected error", c.sql)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q does not mention %q", c.sql, err, c.wantSub)
		}
	}
}

func TestParseCaseInsensitivity(t *testing.T) {
	stmt, err := Parse("SELECT A FROM T WHERE B = 'Mixed' ORDER BY A DESC")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.From[0] != "t" {
		t.Errorf("table name not lower-cased: %q", stmt.From[0])
	}
	col, ok := stmt.Items[0].Expr.(*sqldb.ColumnExpr)
	if !ok || col.Column != "a" {
		t.Errorf("column not lower-cased: %v", stmt.Items[0].Expr)
	}
	// String literals keep their case.
	cmp := stmt.Where.(*sqldb.BinaryExpr)
	lit := cmp.R.(*sqldb.LiteralExpr)
	if lit.Val.S != "Mixed" {
		t.Errorf("string literal case changed: %q", lit.Val.S)
	}
}

func TestParseInListDesugars(t *testing.T) {
	stmt, err := Parse("select a from t where a in (1, 2, 3)")
	if err != nil {
		t.Fatal(err)
	}
	// Desugared into (a = 1 or a = 2) or a = 3.
	want := "t where a = 1 or a = 2 or a = 3"
	_ = want
	or, ok := stmt.Where.(*sqldb.BinaryExpr)
	if !ok || or.Op != sqldb.OpOr {
		t.Fatalf("IN did not desugar to OR: %T %v", stmt.Where, stmt.Where)
	}
	if _, err := Parse("select a from t where a in (b)"); err == nil {
		t.Error("non-literal IN elements should be rejected")
	}
	// NOT IN desugars under a negation.
	stmt, err = Parse("select a from t where a not in (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.Where.(*sqldb.NotExpr); !ok {
		t.Errorf("NOT IN shape: %T", stmt.Where)
	}
}

func TestParseComments(t *testing.T) {
	stmt, err := Parse("select a -- trailing comment\nfrom t -- another\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.From) != 1 {
		t.Error("comment handling broke the parse")
	}
}

func TestParseQualifiedColumns(t *testing.T) {
	stmt, err := Parse("select t.a from t where t.a = 1")
	if err != nil {
		t.Fatal(err)
	}
	col := stmt.Items[0].Expr.(*sqldb.ColumnExpr)
	if col.Table != "t" || col.Column != "a" {
		t.Errorf("qualified column: %+v", col)
	}
}

func TestParseImplicitAlias(t *testing.T) {
	stmt, err := Parse("select sum(a) total from t")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[0].Alias != "total" {
		t.Errorf("implicit alias: %q", stmt.Items[0].Alias)
	}
}

func TestParseNegativeLiteralFolding(t *testing.T) {
	stmt, err := Parse("select a from t where a >= -3.5")
	if err != nil {
		t.Fatal(err)
	}
	cmp := stmt.Where.(*sqldb.BinaryExpr)
	lit, ok := cmp.R.(*sqldb.LiteralExpr)
	if !ok || lit.Val.F != -3.5 {
		t.Errorf("negative literal not folded: %v", cmp.R)
	}
}
