package sqlparser

import "unmasque/internal/sqldb"

// Span is a half-open byte range [Start, End) in the source text.
type Span struct {
	Start, End int
}

// Empty reports whether the span covers no text (clause absent).
func (s Span) Empty() bool { return s.Start >= s.End }

// Spans records the source extent of each clause of a parsed
// statement. A zero Span means the clause is absent. Diagnostics from
// the analysis layer name clauses; these spans let a driver point
// back into the original query text.
type Spans struct {
	Select  Span
	From    Span
	Where   Span
	GroupBy Span
	Having  Span
	OrderBy Span
	Limit   Span
}

// Clause returns the span for a clause name as used by the analysis
// layer's diagnostics ("select", "from", "where", "group by",
// "having", "order by", "limit").
func (s Spans) Clause(name string) Span {
	switch name {
	case "select":
		return s.Select
	case "from":
		return s.From
	case "where":
		return s.Where
	case "group by":
		return s.GroupBy
	case "having":
		return s.Having
	case "order by":
		return s.OrderBy
	case "limit":
		return s.Limit
	default:
		return Span{}
	}
}

// ParseWithSpans parses like Parse and additionally reports the byte
// extent of each clause. The supported dialect is single-block — no
// subqueries — so clause keywords can only occur at the top level and
// the spans are computable directly from the token stream.
func ParseWithSpans(src string) (*sqldb.SelectStmt, Spans, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, Spans{}, err
	}
	tokens, err := lex(src)
	if err != nil {
		return nil, Spans{}, err
	}
	var spans Spans
	if len(tokens) > 0 {
		spans.Select.Start = tokens[0].pos
	}
	cur := &spans.Select
	end := len(src)
	seal := func(at int) {
		if cur != nil && cur.End == 0 {
			cur.End = at
		}
	}
	for _, t := range tokens {
		if t.kind == tkEOF {
			break
		}
		if t.kind == tkSymbol && t.val == ";" {
			end = t.pos
			break
		}
		var next *Span
		switch {
		case t.kind != tkKeyword:
			continue
		case t.val == "from":
			next = &spans.From
		case t.val == "where":
			next = &spans.Where
		case t.val == "group":
			next = &spans.GroupBy
		case t.val == "having":
			next = &spans.Having
		case t.val == "order":
			next = &spans.OrderBy
		case t.val == "limit":
			next = &spans.Limit
		default:
			continue
		}
		seal(t.pos)
		next.Start = t.pos
		cur = next
	}
	seal(end)
	return stmt, spans, nil
}
