package sqlparser

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"unmasque/internal/analysis/eqcverify"
	"unmasque/internal/sqldb"
)

// TestParseNeverPanics feeds the parser random token soup; every
// input must return (stmt, nil) or (nil, err) — never panic.
func TestParseNeverPanics(t *testing.T) {
	tokens := []string{
		"select", "from", "where", "group", "by", "having", "order",
		"limit", "and", "or", "not", "between", "like", "is", "null",
		"date", "count", "sum", "min", "(", ")", ",", ";", "=", "<",
		">", "<=", ">=", "<>", "+", "-", "*", "/", ".", "t", "a", "b",
		"'x'", "'1995-03-14'", "42", "3.14", "distinct", "as", "asc", "desc",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20000; trial++ {
		n := rng.Intn(12)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = tokens[rng.Intn(len(tokens))]
		}
		input := strings.Join(parts, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", input, r)
				}
			}()
			_, _ = Parse(input)
		}()
	}
}

// TestParseByteSoupNeverPanics hits the lexer with raw bytes.
func TestParseByteSoupNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(40)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", b, r)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
}

// TestPrintedQueriesReExecuteIdentically: for executable statements,
// the canonical printed form must produce identical results.
func TestPrintedQueriesReExecuteIdentically(t *testing.T) {
	db := sqldb.NewDatabase()
	if err := db.CreateTable(sqldb.TableSchema{
		Name: "t",
		Columns: []sqldb.Column{
			{Name: "a", Type: sqldb.TInt, MinInt: 0, MaxInt: 100},
			{Name: "b", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 100},
			{Name: "s", Type: sqldb.TText, MaxLen: 10},
			{Name: "d", Type: sqldb.TDate},
		},
	}); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("t")
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 50; i++ {
		tbl.MustInsert(
			sqldb.NewInt(int64(i%13)),
			sqldb.NewFloat(float64(i)*1.5),
			sqldb.NewText(words[i%len(words)]),
			sqldb.NewDate(sqldb.MustDate("2000-01-01").I+int64(i*31)),
		)
	}
	queries := []string{
		"select a, b from t where a between 2 and 9 order by a, b limit 7",
		"select s, count(*) as n, sum(b) as total from t group by s having sum(b) >= 10 order by s",
		"select a, b * 2 + 1 as f from t where s like '%a%'",
		"select min(d) as lo, max(d) as hi, avg(a) as m from t",
		"select a from t where d >= date '2001-06-01' and b <= 60.5",
	}
	for _, q := range queries {
		orig := MustParse(q)
		res1, err := db.Execute(context.Background(), orig)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		reparsed := MustParse(orig.String())
		res2, err := db.Execute(context.Background(), reparsed)
		if err != nil {
			t.Fatalf("reparse of %q: %v", q, err)
		}
		if !res1.EqualOrdered(res2) {
			t.Errorf("round-trip changed semantics of %q\nprinted: %s", q, orig.String())
		}
	}
}

// TestMalformedEQCInputs: the parser is deliberately more liberal
// than the extractable class — these queries all parse, and the
// static verifier is the layer that rejects each with a specific rule
// ID. The division of labor matters: parser errors mean "not our SQL
// dialect", eqcverify diagnostics mean "valid SQL, outside the class
// the extractor's guarantees cover".
func TestMalformedEQCInputs(t *testing.T) {
	schemas := []sqldb.TableSchema{
		{
			Name: "orders",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TInt},
				{Name: "customer_id", Type: sqldb.TInt},
				{Name: "total", Type: sqldb.TFloat},
				{Name: "placed", Type: sqldb.TDate},
			},
			PrimaryKey: []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "customer_id", RefTable: "customers", RefColumn: "id"},
			},
		},
		{
			Name: "customers",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TInt},
				{Name: "name", Type: sqldb.TText},
			},
			PrimaryKey: []string{"id"},
		},
	}
	cases := []struct {
		name string
		sql  string
		rule string
	}{
		{
			name: "disjunctive-where",
			sql:  `select name from customers where name = 'ann' or id = 7`,
			rule: eqcverify.RuleFilterConj,
		},
		{
			name: "order-by-non-projected",
			sql:  `select id from orders order by total`,
			rule: eqcverify.RuleOrderProj,
		},
		{
			name: "limit-2",
			sql:  `select total from orders limit 2`,
			rule: eqcverify.RuleLimitMin,
		},
		{
			name: "having-on-grouping-column",
			sql: `select total, count(*) from orders
				group by total having sum(total) > 100`,
			rule: eqcverify.RuleHavingGrouped,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			stmt, err := Parse(c.sql)
			if err != nil {
				t.Fatalf("parser must accept %q: %v", c.sql, err)
			}
			diags := eqcverify.Verify(stmt, schemas, eqcverify.Options{})
			for _, d := range diags {
				if d.Rule == c.rule {
					return
				}
			}
			t.Errorf("want %s for %q, got %v", c.rule, c.sql, diags)
		})
	}
}

// TestSpans checks ParseWithSpans clause extents against the source
// text.
func TestSpans(t *testing.T) {
	src := "select id from orders where total > 5 group by id having count(*) > 3 order by id limit 10;"
	_, spans, err := ParseWithSpans(src)
	if err != nil {
		t.Fatal(err)
	}
	slice := func(s Span) string { return src[s.Start:s.End] }
	for _, c := range []struct {
		clause string
		want   string
	}{
		{"select", "select id "},
		{"from", "from orders "},
		{"where", "where total > 5 "},
		{"group by", "group by id "},
		{"having", "having count(*) > 3 "},
		{"order by", "order by id "},
		{"limit", "limit 10"},
	} {
		got := slice(spans.Clause(c.clause))
		if got != c.want {
			t.Errorf("%s span: got %q, want %q", c.clause, got, c.want)
		}
	}
	// Absent clauses report empty spans.
	_, sp2, err := ParseWithSpans("select id from orders")
	if err != nil {
		t.Fatal(err)
	}
	if !sp2.Clause("where").Empty() || !sp2.Clause("limit").Empty() {
		t.Errorf("absent clauses must have empty spans: %+v", sp2)
	}
}
