// Package sqlparser provides a lexer and recursive-descent parser for
// the SQL dialect of the embedded engine: single-block SPJGHAOL
// queries with conjunctive predicates, plus LIKE, BETWEEN, IS NULL,
// date literals and aggregate calls — exactly the extractable query
// class of the paper, so hidden queries, extracted queries, and
// checker round-trips all go through the same grammar.
package sqlparser

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tkEOF tokenKind = iota
	tkIdent
	tkNumber
	tkString
	tkSymbol  // punctuation and operators
	tkKeyword // recognised reserved word (lower-cased in val)
)

type token struct {
	kind tokenKind
	val  string
	pos  int
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"by": true, "having": true, "order": true, "limit": true,
	"and": true, "or": true, "not": true, "as": true, "asc": true,
	"desc": true, "between": true, "like": true, "is": true,
	"null": true, "true": true, "false": true, "date": true,
	"distinct": true, "in": true, "exists": true, "union": true,
	"intersect": true, "except": true, "join": true, "on": true,
	"inner": true, "outer": true, "left": true, "right": true,
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, tok)
		if tok.kind == tkEOF {
			return l.tokens, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// Line comment.
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tkEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		lower := strings.ToLower(word)
		if keywords[lower] {
			return token{kind: tkKeyword, val: lower, pos: start}, nil
		}
		return token{kind: tkIdent, val: lower, pos: start}, nil
	case c >= '0' && c <= '9':
		sawDot := false
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d == '.' && !sawDot {
				sawDot = true
				l.pos++
				continue
			}
			if d < '0' || d > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tkNumber, val: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tkString, val: b.String(), pos: start}, nil
			}
			b.WriteByte(d)
			l.pos++
		}
		return token{}, fmt.Errorf("unterminated string literal at offset %d", start)
	default:
		// Multi-character operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=":
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return token{kind: tkSymbol, val: two, pos: start}, nil
		}
		switch c {
		case '(', ')', ',', ';', '=', '<', '>', '+', '-', '*', '/', '.':
			l.pos++
			return token{kind: tkSymbol, val: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("unexpected character %q at offset %d", c, start)
	}
}

// Identifiers are ASCII-only. Widening bytes to runes and asking
// unicode.IsLetter would classify stray 0x80-0xFF bytes as Latin-1
// letters on input while ToLower renders them as U+FFFD on output,
// breaking the parse-print round trip (found by FuzzParse).
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c == '$' || (c >= '0' && c <= '9')
}
