package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"unmasque/internal/sqldb"
)

// Parse parses a single SELECT statement in the supported dialect and
// returns its AST. A trailing semicolon is permitted. IN-lists
// desugar into OR chains of equalities; constructs outside the
// engine's scope (subqueries, set operators, explicit JOIN syntax,
// EXISTS) produce descriptive errors.
func Parse(src string) (*sqldb.SelectStmt, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(tkSymbol, ";")
	if !p.at(tkEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.peek().val)
	}
	return stmt, nil
}

// MustParse parses or panics; for statically known queries in
// workloads and tests.
func MustParse(src string) *sqldb.SelectStmt {
	stmt, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("MustParse(%q): %v", src, err))
	}
	return stmt
}

type parser struct {
	tokens []token
	pos    int
}

func (p *parser) peek() token { return p.tokens[p.pos] }

func (p *parser) advance() token {
	t := p.tokens[p.pos]
	if t.kind != tkEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(kind tokenKind, val string) bool {
	t := p.peek()
	if t.kind != kind {
		return false
	}
	return val == "" || t.val == val
}

func (p *parser) accept(kind tokenKind, val string) bool {
	if p.at(kind, val) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, val string) (token, error) {
	if p.at(kind, val) {
		return p.advance(), nil
	}
	return token{}, p.errf("expected %q, found %q", val, p.peek().val)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*sqldb.SelectStmt, error) {
	if _, err := p.expect(tkKeyword, "select"); err != nil {
		return nil, err
	}
	stmt := &sqldb.SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkKeyword, "from"); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tkIdent {
			return nil, p.errf("expected table name, found %q", t.val)
		}
		p.advance()
		stmt.From = append(stmt.From, t.val)
		if p.at(tkKeyword, "join") || p.at(tkKeyword, "inner") ||
			p.at(tkKeyword, "left") || p.at(tkKeyword, "right") {
			return nil, p.errf("explicit JOIN syntax unsupported; use comma-joins with WHERE equi-joins")
		}
		// Optional table alias equal to the table name is tolerated;
		// other aliases are out of scope.
		if p.at(tkIdent, "") {
			alias := p.peek().val
			if alias != t.val {
				return nil, p.errf("table aliases unsupported (alias %q for %q)", alias, t.val)
			}
			p.advance()
		}
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if p.accept(tkKeyword, "where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.accept(tkKeyword, "group") {
		if _, err := p.expect(tkKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.accept(tkKeyword, "order") {
		if _, err := p.expect(tkKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := sqldb.OrderKey{Expr: e}
			if p.accept(tkKeyword, "desc") {
				key.Desc = true
			} else {
				p.accept(tkKeyword, "asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "limit") {
		t := p.peek()
		if t.kind != tkNumber {
			return nil, p.errf("expected limit count, found %q", t.val)
		}
		p.advance()
		n, err := strconv.ParseInt(t.val, 10, 64)
		if err != nil || n <= 0 {
			return nil, p.errf("invalid limit %q", t.val)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (sqldb.SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return sqldb.SelectItem{}, err
	}
	item := sqldb.SelectItem{Expr: e}
	if p.accept(tkKeyword, "as") {
		t := p.peek()
		if t.kind != tkIdent && t.kind != tkKeyword {
			return sqldb.SelectItem{}, p.errf("expected alias, found %q", t.val)
		}
		p.advance()
		item.Alias = t.val
	} else if p.at(tkIdent, "") {
		item.Alias = p.advance().val
	}
	return item, nil
}

// Expression grammar (precedence climbing):
//   expr    := orExpr
//   orExpr  := andExpr (OR andExpr)*
//   andExpr := notExpr (AND notExpr)*
//   notExpr := NOT notExpr | predicate
//   predicate := addExpr [cmp addExpr | BETWEEN ... | LIKE ... | IS [NOT] NULL]
//   addExpr := mulExpr ((+|-) mulExpr)*
//   mulExpr := unary ((*|/) unary)*
//   unary   := - unary | primary
//   primary := literal | column | agg(...) | ( expr )

func (p *parser) parseExpr() (sqldb.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (sqldb.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = sqldb.Bin(sqldb.OpOr, l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (sqldb.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = sqldb.Bin(sqldb.OpAnd, l, r)
	}
	return l, nil
}

func (p *parser) parseNot() (sqldb.Expr, error) {
	if p.accept(tkKeyword, "not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqldb.NotExpr{X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (sqldb.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// NOT BETWEEN / NOT LIKE.
	negated := false
	if p.at(tkKeyword, "not") {
		nxt := p.tokens[p.pos+1]
		if nxt.kind == tkKeyword && (nxt.val == "between" || nxt.val == "like" || nxt.val == "in") {
			p.advance()
			negated = true
		}
	}
	switch {
	case p.accept(tkKeyword, "between"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		var e sqldb.Expr = &sqldb.BetweenExpr{X: l, Lo: lo, Hi: hi}
		if negated {
			e = &sqldb.NotExpr{X: e}
		}
		return e, nil
	case p.accept(tkKeyword, "like"):
		t := p.peek()
		if t.kind != tkString {
			return nil, p.errf("expected pattern string after like, found %q", t.val)
		}
		p.advance()
		return &sqldb.LikeExpr{X: l, Pattern: t.val, Not: negated}, nil
	case p.accept(tkKeyword, "is"):
		not := p.accept(tkKeyword, "not")
		if _, err := p.expect(tkKeyword, "null"); err != nil {
			return nil, err
		}
		return &sqldb.IsNullExpr{X: l, Not: not}, nil
	case p.accept(tkKeyword, "in"):
		// IN-lists desugar into an OR chain of equalities (the engine
		// has no native IN operator; the disjunction-extraction
		// extension emits exactly this shape).
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var arms sqldb.Expr
		for {
			v, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if _, ok := v.(*sqldb.LiteralExpr); !ok {
				return nil, p.errf("IN-list elements must be literals")
			}
			arm := sqldb.Bin(sqldb.OpEq, l, v)
			if arms == nil {
				arms = arm
			} else {
				arms = sqldb.Bin(sqldb.OpOr, arms, arm)
			}
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		if negated {
			return &sqldb.NotExpr{X: arms}, nil
		}
		return arms, nil
	}
	for _, sym := range []struct {
		s  string
		op sqldb.BinOp
	}{{"=", sqldb.OpEq}, {"<>", sqldb.OpNe}, {"<=", sqldb.OpLe}, {">=", sqldb.OpGe}, {"<", sqldb.OpLt}, {">", sqldb.OpGt}} {
		if p.accept(tkSymbol, sym.s) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return sqldb.Bin(sym.op, l, r), nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (sqldb.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkSymbol, "+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = sqldb.Bin(sqldb.OpAdd, l, r)
		case p.accept(tkSymbol, "-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = sqldb.Bin(sqldb.OpSub, l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (sqldb.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkSymbol, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = sqldb.Bin(sqldb.OpMul, l, r)
		case p.accept(tkSymbol, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = sqldb.Bin(sqldb.OpDiv, l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (sqldb.Expr, error) {
	if p.accept(tkSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation into numeric literals.
		if lit, ok := x.(*sqldb.LiteralExpr); ok && lit.Val.Typ.IsNumeric() {
			n, err := sqldb.Neg(lit.Val)
			if err == nil {
				return sqldb.Lit(n), nil
			}
		}
		return &sqldb.NegExpr{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (sqldb.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.advance()
		if strings.Contains(t.val, ".") {
			f, err := strconv.ParseFloat(t.val, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", t.val)
			}
			return sqldb.Lit(sqldb.NewFloat(f)), nil
		}
		n, err := strconv.ParseInt(t.val, 10, 64)
		if err != nil {
			// Out-of-range integer literals degrade to float, the way
			// a printed float with an integral value (no '.') must
			// read back when it exceeds int64 (found by FuzzParse).
			f, ferr := strconv.ParseFloat(t.val, 64)
			if ferr != nil {
				return nil, p.errf("invalid number %q", t.val)
			}
			return sqldb.Lit(sqldb.NewFloat(f)), nil
		}
		return sqldb.Lit(sqldb.NewInt(n)), nil
	case tkString:
		p.advance()
		return sqldb.Lit(sqldb.NewText(t.val)), nil
	case tkKeyword:
		switch t.val {
		case "null":
			p.advance()
			return sqldb.Lit(sqldb.NewNull(sqldb.TUnknown)), nil
		case "true":
			p.advance()
			return sqldb.Lit(sqldb.NewBool(true)), nil
		case "false":
			p.advance()
			return sqldb.Lit(sqldb.NewBool(false)), nil
		case "date":
			p.advance()
			s := p.peek()
			if s.kind != tkString {
				return nil, p.errf("expected date string after date keyword")
			}
			p.advance()
			v, err := sqldb.DateFromString(s.val)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return sqldb.Lit(v), nil
		case "select", "exists":
			return nil, p.errf("subqueries are outside the supported dialect")
		}
		return nil, p.errf("unexpected keyword %q", t.val)
	case tkSymbol:
		if t.val == "(" {
			p.advance()
			if p.at(tkKeyword, "select") {
				return nil, p.errf("subqueries are outside the supported dialect")
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected symbol %q", t.val)
	case tkIdent:
		p.advance()
		name := t.val
		// Aggregate or function call.
		if p.at(tkSymbol, "(") {
			fn := sqldb.AggFnFromName(name)
			if fn == sqldb.AggNone {
				return nil, p.errf("unknown function %q (only min/max/count/sum/avg supported)", name)
			}
			p.advance() // (
			if fn == sqldb.AggCount && p.accept(tkSymbol, "*") {
				if _, err := p.expect(tkSymbol, ")"); err != nil {
					return nil, err
				}
				return &sqldb.AggExpr{Fn: sqldb.AggCount, Star: true}, nil
			}
			distinct := p.accept(tkKeyword, "distinct")
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return &sqldb.AggExpr{Fn: fn, Arg: arg, Distinct: distinct}, nil
		}
		// Qualified column.
		if p.accept(tkSymbol, ".") {
			c := p.peek()
			if c.kind != tkIdent {
				return nil, p.errf("expected column name after %q.", name)
			}
			p.advance()
			return &sqldb.ColumnExpr{Table: name, Column: c.val}, nil
		}
		return &sqldb.ColumnExpr{Column: name}, nil
	default:
		return nil, p.errf("unexpected end of input")
	}
}
