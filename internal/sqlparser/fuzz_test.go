package sqlparser

import (
	"testing"
)

// FuzzParse asserts the parser's two robustness invariants on
// arbitrary input: it never panics, and accepted statements reach a
// printing fix-point — Parse(stmt.String()) succeeds and prints the
// identical text. The fix-point is what the extraction checker and
// the EQC verifier rely on when they re-parse canonical SQL the
// assembler produced.
//
// Run continuously with:
//
//	go test -fuzz=FuzzParse ./internal/sqlparser
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"select",
		"select a from t",
		"select a, b from t where a between 2 and 9 order by a, b limit 7",
		"select s, count(*) as n, sum(b) as total from t group by s having sum(b) >= 10 order by s",
		"select a, b * 2 + 1 as f from t where s like '%a%'",
		"select min(d) as lo, max(d) as hi, avg(a) as m from t",
		"select a from t where d >= date '2001-06-01' and b <= 60.5",
		"select distinct t.a from t, u where t.a = u.a and not t.b is null",
		"select a from t where a = 'it''s' or a like '_x%';",
		"select -1 + 2.5e3 from t where a <> 4 / 2",
		"sele\xffct \x00 from",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input) // must not panic
		if err != nil || stmt == nil {
			return
		}
		printed := stmt.String()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form of %q does not re-parse: %v\nprinted: %s", input, err, printed)
		}
		if again := stmt2.String(); again != printed {
			t.Fatalf("printing is not a fix-point for %q:\nfirst:  %s\nsecond: %s", input, printed, again)
		}
	})
}
