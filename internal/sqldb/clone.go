package sqldb

// CloneExpr deep-copies an expression tree. The analysis layer
// (canonicalization, mutant generation) rewrites ASTs structurally and
// must never alias nodes of the statement it derives from: the
// extraction pipeline holds on to its assembled query, and a shared
// node mutated by a rewrite would silently corrupt it.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColumnExpr:
		c := *x
		return &c
	case *LiteralExpr:
		l := *x
		return &l
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *NegExpr:
		return &NegExpr{X: CloneExpr(x.X)}
	case *NotExpr:
		return &NotExpr{X: CloneExpr(x.X)}
	case *BetweenExpr:
		return &BetweenExpr{X: CloneExpr(x.X), Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi)}
	case *LikeExpr:
		return &LikeExpr{X: CloneExpr(x.X), Pattern: x.Pattern, Not: x.Not}
	case *IsNullExpr:
		return &IsNullExpr{X: CloneExpr(x.X), Not: x.Not}
	case *AggExpr:
		return &AggExpr{Fn: x.Fn, Arg: CloneExpr(x.Arg), Star: x.Star, Distinct: x.Distinct}
	default:
		// Unknown node kinds cannot be deep-copied; returning the node
		// unchanged keeps the clone usable (the engine evaluates it the
		// same way) at the cost of aliasing — no such kinds exist today.
		return e
	}
}

// CloneStmt deep-copies a select statement, expression trees included.
func CloneStmt(s *SelectStmt) *SelectStmt {
	if s == nil {
		return nil
	}
	out := &SelectStmt{
		From:  append([]string(nil), s.From...),
		Where: CloneExpr(s.Where),
		Limit: s.Limit,
	}
	for _, it := range s.Items {
		out.Items = append(out.Items, SelectItem{Expr: CloneExpr(it.Expr), Alias: it.Alias})
	}
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, CloneExpr(g))
	}
	out.Having = CloneExpr(s.Having)
	for _, k := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderKey{Expr: CloneExpr(k.Expr), Desc: k.Desc})
	}
	return out
}
