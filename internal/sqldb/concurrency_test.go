package sqldb

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// concurrencyDB builds a two-table database with a PK-FK edge and
// enough rows that query execution overlaps across goroutines.
func concurrencyDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	if err := db.CreateTable(TableSchema{
		Name: "customers",
		Columns: []Column{
			{Name: "id", Type: TInt, MinInt: 0, MaxInt: 10000},
			{Name: "name", Type: TText},
			{Name: "balance", Type: TFloat, MinInt: 0, MaxInt: 10000},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableSchema{
		Name: "orders",
		Columns: []Column{
			{Name: "id", Type: TInt, MinInt: 0, MaxInt: 100000},
			{Name: "customer_id", Type: TInt, MinInt: 0, MaxInt: 10000},
			{Name: "total", Type: TFloat, MinInt: 0, MaxInt: 10000},
		},
		PrimaryKey: []string{"id"},
		ForeignKeys: []ForeignKey{
			{Column: "customer_id", RefTable: "customers", RefColumn: "id"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := db.Insert("customers",
			NewInt(int64(i)), NewText(fmt.Sprintf("c%03d", i)), NewFloat(float64(i)*3.5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		if err := db.Insert("orders",
			NewInt(int64(i)), NewInt(int64(i%200)), NewFloat(float64(i%97)*1.25)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestConcurrentReaders exercises the documented concurrency
// contract under the race detector: any number of readers — query
// execution, clones, schema and metadata reads — may share a
// Database. The extractor relies on this when the checker compares E
// and Q_E and when probe clones are built while the source database
// serves reads.
func TestConcurrentReaders(t *testing.T) {
	db := concurrencyDB(t)
	queries := []*SelectStmt{
		{
			Items: []SelectItem{{Expr: Col("customers", "name")}},
			From:  []string{"customers"},
			Where: Bin(OpGt, Col("customers", "balance"), Lit(NewFloat(100))),
		},
		{
			Items: []SelectItem{
				{Expr: Col("customers", "name")},
				{Expr: &AggExpr{Fn: AggSum, Arg: Col("orders", "total")}, Alias: "spent"},
			},
			From: []string{"customers", "orders"},
			Where: Bin(OpEq, Col("customers", "id"),
				Col("orders", "customer_id")),
			GroupBy: []Expr{Col("customers", "name")},
		},
		{
			Items:   []SelectItem{{Expr: Col("orders", "total")}},
			From:    []string{"orders"},
			OrderBy: []OrderKey{{Expr: Col("orders", "total"), Desc: true}},
			Limit:   25,
		},
	}

	const workers = 8
	const rounds = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for r := 0; r < rounds; r++ {
				switch w % 4 {
				case 0: // query execution
					res, err := db.Execute(ctx, queries[r%len(queries)])
					if err != nil {
						t.Errorf("execute: %v", err)
						return
					}
					if res.RowCount() == 0 {
						t.Error("expected populated result")
						return
					}
				case 1: // full and partial clones (probe database setup)
					c := db.Clone()
					if c.TotalRows() != db.TotalRows() {
						t.Error("clone lost rows")
						return
					}
					p := db.CloneTables(map[string]bool{"orders": true})
					if _, err := p.Table("orders"); err != nil {
						t.Errorf("partial clone: %v", err)
						return
					}
				case 2: // metadata reads
					if n := len(db.Schemas()); n != 2 {
						t.Errorf("schemas: %d", n)
						return
					}
					_ = db.SchemaGraph()
					_ = db.TableNamesBySize()
				case 3: // snapshot reads
					tbl, err := db.Table("orders")
					if err != nil {
						t.Errorf("table: %v", err)
						return
					}
					rows := tbl.SnapshotRows()
					if len(rows) == 0 {
						t.Error("snapshot empty")
						return
					}
					if _, err := tbl.Get(len(rows)-1, "total"); err != nil {
						t.Errorf("get: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentCloneMutation: clones taken from a shared source must
// be fully independent — goroutines mutating their own clones while
// others read the source is the extractor's negate-probe pattern.
func TestConcurrentCloneMutation(t *testing.T) {
	db := concurrencyDB(t)
	before := db.TotalRows()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := db.Clone()
			tbl, err := c.Table("orders")
			if err != nil {
				t.Errorf("clone table: %v", err)
				return
			}
			// Mutate the clone in place: negate a column, drop rows.
			for r := 0; r < tbl.RowCount(); r++ {
				v, err := tbl.Get(r, "customer_id")
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				n, err := Neg(v)
				if err != nil {
					t.Errorf("neg: %v", err)
					return
				}
				if err := tbl.Set(r, "customer_id", n); err != nil {
					t.Errorf("set: %v", err)
					return
				}
			}
			tbl.SetRows(tbl.SnapshotRows()[:10])
			if err := c.Insert("orders", NewInt(int64(100000+w)), NewInt(1), NewFloat(1)); err != nil {
				t.Errorf("insert into clone: %v", err)
				return
			}
			// Source reads stay consistent while clones mutate.
			if _, err := db.Execute(context.Background(), &SelectStmt{
				Items: []SelectItem{{Expr: &AggExpr{Fn: AggCount, Star: true}}},
				From:  []string{"orders"},
			}); err != nil {
				t.Errorf("execute on source: %v", err)
			}
		}(w)
	}
	wg.Wait()
	if db.TotalRows() != before {
		t.Errorf("source database changed: %d -> %d rows", before, db.TotalRows())
	}
}
