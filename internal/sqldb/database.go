package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrNoSuchTable is returned (wrapped) when a query or API call
// references a table that does not exist. The extractor's from-clause
// probe relies on this error being raised immediately.
var ErrNoSuchTable = errors.New("no such table")

// Database is an in-memory collection of named tables plus the schema
// graph over them. All access is guarded by a single RW mutex; the
// workloads and extractor are sequential, so contention is not a
// concern, but the lock keeps concurrent benches safe.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string // creation order, for deterministic iteration

	mode   ExecMode     // which engine Execute dispatches to
	estats *EngineStats // engine counters, shared with every clone

	// advice maps table name -> local column indexes the caller has
	// declared it is about to probe repeatedly (AdviseIndexes). The
	// vector engine prefers advised columns when choosing an index,
	// and clones inherit both the advice and the already-built index
	// payloads for advised columns.
	advice map[string][]int

	// Lazy row backend (see tablestore.go). store is set once by
	// AttachStore; pending names the tables whose rows have not been
	// faulted in yet; storeErr is the sticky first load failure.
	store    TableStore
	pending  map[string]bool
	storeErr error
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{tables: map[string]*Table{}, estats: &EngineStats{}}
}

// newLike creates an empty database inheriting db's exec mode, index
// advice and (shared) engine counters — the base of every clone
// flavour.
func (db *Database) newLike() *Database {
	out := &Database{tables: map[string]*Table{}, mode: db.mode, estats: db.estats}
	if len(db.advice) > 0 {
		out.advice = make(map[string][]int, len(db.advice))
		for t, cols := range db.advice {
			out.advice[t] = append([]int(nil), cols...)
		}
	}
	return out
}

// IndexHint names one column an extraction phase is about to probe
// repeatedly. Advice replaces the engine's first-predicate heuristic:
// the planner may answer any eligible pushdown predicate on an
// advised column from an index, and clone operations pre-install the
// (shared, immutable) index payloads so the build cost is paid once
// across a whole probe fan-out.
type IndexHint struct {
	Table  string
	Column string
}

// AdviseIndexes records index advice on this database. Hints
// accumulate until ClearIndexAdvice; duplicates are ignored. Unknown
// tables or columns are an error so extraction phases cannot silently
// advise a column that does not exist.
func (db *Database) AdviseIndexes(hints ...IndexHint) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, h := range hints {
		name := strings.ToLower(h.Table)
		t, ok := db.tables[name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchTable, name)
		}
		ci := t.Schema.ColumnIndex(strings.ToLower(h.Column))
		if ci < 0 {
			return fmt.Errorf("table %s has no column %s", name, h.Column)
		}
		cur := db.advice[name]
		dup := false
		for _, c := range cur {
			if c == ci {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if db.advice == nil {
			db.advice = map[string][]int{}
		}
		db.advice[name] = append(cur, ci)
	}
	return nil
}

// ClearIndexAdvice drops all recorded index advice. Already-built
// indexes stay cached (they invalidate through the normal mutation
// hooks); only the planner preference and clone pre-installation
// stop.
func (db *Database) ClearIndexAdvice() {
	db.mu.Lock()
	db.advice = nil
	db.mu.Unlock()
}

// shareAdvisedLocked pre-installs index payloads for advised columns
// on a freshly cloned table. Tree mode skips this: the oracle engine
// never consults indexes, and its counters must stay free of vector
// work. Callers hold db.mu (read) and src belongs to db.
func (db *Database) shareAdvisedLocked(name string, src, dst *Table) {
	if db.mode != ExecVector {
		return
	}
	if cols := db.advice[name]; len(cols) > 0 {
		src.shareIndexes(dst, cols, db.estats)
	}
}

// CreateTable adds a new empty table.
func (db *Database) CreateTable(schema TableSchema) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	name := strings.ToLower(schema.Name)
	if _, ok := db.tables[name]; ok {
		return fmt.Errorf("table %s already exists", name)
	}
	schema = schema.Clone()
	schema.Name = name
	for i := range schema.Columns {
		schema.Columns[i].Name = strings.ToLower(schema.Columns[i].Name)
	}
	db.tables[name] = NewTable(schema)
	db.order = append(db.order, name)
	return nil
}

// DropTable removes a table.
func (db *Database) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	name = strings.ToLower(name)
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	delete(db.tables, name)
	delete(db.pending, name)
	for i, n := range db.order {
		if n == name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	return nil
}

// RenameTable renames a table — the primitive behind from-clause
// probing (rename t to temp, run E, observe the error).
func (db *Database) RenameTable(oldName, newName string) error {
	if err := db.ensure(oldName); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	oldName, newName = strings.ToLower(oldName), strings.ToLower(newName)
	t, ok := db.tables[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTable, oldName)
	}
	if _, ok := db.tables[newName]; ok {
		return fmt.Errorf("table %s already exists", newName)
	}
	delete(db.tables, oldName)
	t.Schema.Name = newName
	db.tables[newName] = t
	for i, n := range db.order {
		if n == oldName {
			db.order[i] = newName
			break
		}
	}
	return nil
}

// Table returns the named table.
func (db *Database) Table(name string) (*Table, error) {
	if err := db.ensure(name); err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return t, nil
}

// HasTable reports whether the table exists.
func (db *Database) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[strings.ToLower(name)]
	return ok
}

// TableNames lists tables in creation order.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]string(nil), db.order...)
}

// TableNamesBySize lists tables ordered by decreasing row count (ties
// by name), as used by sampling preprocessing and the halving policy.
func (db *Database) TableNamesBySize() []string {
	db.ensureAll() // degraded on store failure; next Table call reports it
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := append([]string(nil), db.order...)
	sort.SliceStable(names, func(i, j int) bool {
		ri, rj := len(db.tables[names[i]].Rows), len(db.tables[names[j]].Rows)
		if ri != rj {
			return ri > rj
		}
		return names[i] < names[j]
	})
	return names
}

// Schemas returns a copy of every table schema, in creation order.
func (db *Database) Schemas() []TableSchema {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]TableSchema, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.tables[n].Schema.Clone())
	}
	return out
}

// SchemaGraph builds the key-linkage graph over all tables.
func (db *Database) SchemaGraph() SchemaGraph {
	return BuildSchemaGraph(db.Schemas())
}

// Clone deep-copies the whole database. The extractor uses this to
// create its silo; referential-integrity enforcement does not exist in
// this engine, matching the paper's "drop all RI constraints in the
// silo" step.
func (db *Database) Clone() *Database {
	db.ensureAll() // clones are fully materialized; see AttachStore
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := db.newLike()
	for _, n := range db.order {
		out.tables[n] = db.tables[n].Clone()
		db.shareAdvisedLocked(n, db.tables[n], out.tables[n])
		out.order = append(out.order, n)
	}
	return out
}

// CloneSchema copies only the table definitions (empty tables).
func (db *Database) CloneSchema() *Database {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := db.newLike()
	for _, n := range db.order {
		out.tables[n] = NewTable(db.tables[n].Schema)
		out.order = append(out.order, n)
	}
	return out
}

// CloneTables copies the schema of every table but the rows of only
// the named subset; other tables stay empty. The extractor uses this
// to carve the relevant part of D_I into the silo cheaply.
func (db *Database) CloneTables(withRows map[string]bool) *Database {
	for name := range withRows {
		if withRows[name] {
			db.ensure(name) // only row-carrying tables need fault-in
		}
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := db.newLike()
	for _, n := range db.order {
		if withRows[n] {
			out.tables[n] = db.tables[n].Clone()
			db.shareAdvisedLocked(n, db.tables[n], out.tables[n])
		} else {
			out.tables[n] = NewTable(db.tables[n].Schema)
		}
		out.order = append(out.order, n)
	}
	return out
}

// TotalRows sums row counts over all tables.
func (db *Database) TotalRows() int {
	db.ensureAll() // degraded on store failure; next Table call reports it
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, t := range db.tables {
		n += len(t.Rows)
	}
	return n
}

// Insert appends a row to the named table.
func (db *Database) Insert(table string, vals ...Value) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return t.Insert(vals...)
}
