package sqldb

import "fmt"

// vector.go — vectorized predicate evaluation over column batches.
//
// evalVec computes an expression across every selected row of a batch
// at once, replacing the tree engine's per-row eval() walk for
// pushdown predicates. Semantics must match the tree engine exactly,
// including which (row, subexpression) pairs get evaluated — that is
// what makes error *presence* identical between the engines:
//
//   - predicates are applied in WHERE order over a narrowing
//     selection, so a row rejected by an earlier predicate is never
//     touched by a later one (like the tree engine's per-row break);
//   - AND/OR evaluate their right side only on the sub-selection the
//     left side leaves undecided (masked short-circuit), mirroring
//     the tree engine's scalar short-circuit row by row;
//   - arithmetic and negation call the scalar operators per element,
//     so overflow-free paths, NULL propagation and error messages are
//     shared with the tree engine rather than re-implemented.
//
// Within one predicate the engines may surface a different error
// first (the tree engine scans row-major, this one operand-major),
// but whether *an* error occurs is identical.

// evalVec evaluates e over the batch and returns a vector with one
// element per selected row.
func (ex *execution) evalVec(e Expr, b *batch) (*vec, error) {
	n := len(b.sel)
	switch x := e.(type) {
	case *ColumnExpr:
		slot, err := ex.slotOf(x)
		if err != nil {
			return nil, fmt.Errorf("unresolved column %s: %w", x, err)
		}
		ci := slot.idx - b.off
		if ci < 0 || ci >= b.ncol() {
			return nil, fmt.Errorf("column %s does not belong to table %s", x, b.name)
		}
		return b.col(ci), nil
	case *LiteralExpr:
		return constVec(x.Val, n), nil
	case *NegExpr:
		v, err := ex.evalVec(x.X, b)
		if err != nil {
			return nil, err
		}
		out := newValsVec(n)
		for k := 0; k < n; k++ {
			r, err := Neg(v.valueAt(k))
			if err != nil {
				return nil, err
			}
			out.vals[k] = r
			if !r.Null && out.typ == TUnknown {
				out.typ = r.Typ
			}
		}
		return out, nil
	case *BinaryExpr:
		switch x.Op {
		case OpAnd, OpOr:
			return ex.evalVecLogic(x, b)
		case OpAdd, OpSub, OpMul, OpDiv:
			lv, err := ex.evalVec(x.L, b)
			if err != nil {
				return nil, err
			}
			rv, err := ex.evalVec(x.R, b)
			if err != nil {
				return nil, err
			}
			out := newValsVec(n)
			for k := 0; k < n; k++ {
				var r Value
				switch x.Op {
				case OpAdd:
					r, err = Add(lv.valueAt(k), rv.valueAt(k))
				case OpSub:
					r, err = Sub(lv.valueAt(k), rv.valueAt(k))
				case OpMul:
					r, err = Mul(lv.valueAt(k), rv.valueAt(k))
				default:
					r, err = Div(lv.valueAt(k), rv.valueAt(k))
				}
				if err != nil {
					return nil, err
				}
				out.vals[k] = r
				if !r.Null && out.typ == TUnknown {
					out.typ = r.Typ
				}
			}
			return out, nil
		default: // comparison
			lv, err := ex.evalVec(x.L, b)
			if err != nil {
				return nil, err
			}
			rv, err := ex.evalVec(x.R, b)
			if err != nil {
				return nil, err
			}
			return cmpVec(x.Op, lv, rv)
		}
	case *NotExpr:
		v, err := ex.evalVec(x.X, b)
		if err != nil {
			return nil, err
		}
		out := newBoolVec(n)
		for k := 0; k < n; k++ {
			if v.nullAt(k) {
				out.null[k] = true
				continue
			}
			if !v.boolAt(k) {
				out.ints[k] = 1
			}
		}
		return out, nil
	case *BetweenExpr:
		// All three operands evaluate before any null check or
		// comparison, exactly like the tree engine — composing this
		// from two cmpVec calls would raise class-mismatch errors on
		// rows where the tree engine returns NULL.
		xv, err := ex.evalVec(x.X, b)
		if err != nil {
			return nil, err
		}
		lov, err := ex.evalVec(x.Lo, b)
		if err != nil {
			return nil, err
		}
		hiv, err := ex.evalVec(x.Hi, b)
		if err != nil {
			return nil, err
		}
		out := newBoolVec(n)
		for k := 0; k < n; k++ {
			if xv.nullAt(k) || lov.nullAt(k) || hiv.nullAt(k) {
				out.null[k] = true
				continue
			}
			c1, err := Compare(xv.valueAt(k), lov.valueAt(k))
			if err != nil {
				return nil, err
			}
			c2, err := Compare(xv.valueAt(k), hiv.valueAt(k))
			if err != nil {
				return nil, err
			}
			if c1 >= 0 && c2 <= 0 {
				out.ints[k] = 1
			}
		}
		return out, nil
	case *LikeExpr:
		v, err := ex.evalVec(x.X, b)
		if err != nil {
			return nil, err
		}
		out := newBoolVec(n)
		for k := 0; k < n; k++ {
			if v.nullAt(k) {
				out.null[k] = true
				continue
			}
			val := v.valueAt(k)
			if val.Typ != TText {
				return nil, fmt.Errorf("like on non-text value (%s)", val.Typ)
			}
			m := LikeMatch(x.Pattern, val.S)
			if x.Not {
				m = !m
			}
			if m {
				out.ints[k] = 1
			}
		}
		return out, nil
	case *IsNullExpr:
		v, err := ex.evalVec(x.X, b)
		if err != nil {
			return nil, err
		}
		out := newBoolVec(n)
		for k := 0; k < n; k++ {
			m := v.nullAt(k)
			if x.Not {
				m = !m
			}
			if m {
				out.ints[k] = 1
			}
		}
		return out, nil
	case *AggExpr:
		return nil, fmt.Errorf("aggregate %s outside grouping context", x)
	default:
		return nil, fmt.Errorf("unsupported expression node %T", e)
	}
}

// evalVecLogic implements three-valued AND/OR with a masked
// short-circuit: the right operand is evaluated only on the
// sub-selection the left side leaves undecided, so the set of
// evaluated (row, subexpression) pairs matches the tree engine's
// scalar short-circuit exactly.
func (ex *execution) evalVecLogic(x *BinaryExpr, b *batch) (*vec, error) {
	n := len(b.sel)
	lv, err := ex.evalVec(x.L, b)
	if err != nil {
		return nil, err
	}
	and := x.Op == OpAnd
	// A position is decided when the left side alone fixes the
	// outcome: false for AND, true for OR (never when NULL).
	decided := make([]bool, n)
	var subSel []int32
	for k := 0; k < n; k++ {
		lnull := lv.nullAt(k)
		lb := lv.boolAt(k)
		if !lnull && (and && !lb || !and && lb) {
			decided[k] = true
			continue
		}
		subSel = append(subSel, b.sel[k])
	}
	var rv *vec
	if len(subSel) > 0 {
		rv, err = ex.evalVec(x.R, b.sub(subSel))
		if err != nil {
			return nil, err
		}
	}
	out := newBoolVec(n)
	j := 0
	for k := 0; k < n; k++ {
		if decided[k] {
			if !and {
				out.ints[k] = 1
			}
			continue
		}
		rnull := rv.nullAt(j)
		rb := rv.boolAt(j)
		j++
		lnull := lv.nullAt(k)
		if and {
			switch {
			case !rnull && !rb:
				// false
			case lnull || rnull:
				out.null[k] = true
			default:
				out.ints[k] = 1
			}
			continue
		}
		switch {
		case !rnull && rb:
			out.ints[k] = 1
		case lnull || rnull:
			out.null[k] = true
		default:
			// false
		}
	}
	return out, nil
}

// cmpVec compares two vectors element-wise under the engine's
// comparison semantics: NULL operands yield NULL, compatible classes
// compare via Compare, incompatible classes error (first offending
// element, via Compare, for an identical message). Same-class typed
// storage takes allocation-free fast paths.
func cmpVec(op BinOp, l, r *vec) (*vec, error) {
	n := l.n
	out := newBoolVec(n)
	switch {
	case l.typed() && r.typed() && l.typ == r.typ && l.typ != TFloat && l.typ != TText:
		// TInt/TDate/TBool vs same: integer payload comparison.
		for k := 0; k < n; k++ {
			if l.nullAt(k) || r.nullAt(k) {
				out.null[k] = true
				continue
			}
			a, bv := l.intAt(k), r.intAt(k)
			c := 0
			if a < bv {
				c = -1
			} else if a > bv {
				c = 1
			}
			if cmpHolds(op, c) {
				out.ints[k] = 1
			}
		}
		return out, nil
	case l.typed() && r.typed() && l.typ.IsNumeric() && r.typ.IsNumeric():
		// Mixed or float numerics: AsFloat comparison.
		for k := 0; k < n; k++ {
			if l.nullAt(k) || r.nullAt(k) {
				out.null[k] = true
				continue
			}
			a, bv := l.floatAt(k), r.floatAt(k)
			c := 0
			if a < bv {
				c = -1
			} else if a > bv {
				c = 1
			}
			if cmpHolds(op, c) {
				out.ints[k] = 1
			}
		}
		return out, nil
	case l.typed() && r.typed() && l.typ == TText && r.typ == TText:
		for k := 0; k < n; k++ {
			if l.nullAt(k) || r.nullAt(k) {
				out.null[k] = true
				continue
			}
			a, bv := l.strAt(k), r.strAt(k)
			c := 0
			if a < bv {
				c = -1
			} else if a > bv {
				c = 1
			}
			if cmpHolds(op, c) {
				out.ints[k] = 1
			}
		}
		return out, nil
	}
	for k := 0; k < n; k++ {
		if l.nullAt(k) || r.nullAt(k) {
			out.null[k] = true
			continue
		}
		c, err := Compare(l.valueAt(k), r.valueAt(k))
		if err != nil {
			return nil, err
		}
		if cmpHolds(op, c) {
			out.ints[k] = 1
		}
	}
	return out, nil
}

// typed reports whether the vec's non-null elements are uniformly of
// vec.typ with unboxed or constant storage — the precondition for the
// comparison fast paths. Boxed computed vectors (vals with mixed
// provenance) still qualify: their non-null elements share out.typ by
// construction; but a TUnknown (all-null) vec does not.
func (v *vec) typed() bool { return v.typ != TUnknown }

func (v *vec) intAt(k int) int64 {
	if v.vals != nil {
		return v.vals[v.at(k)].I
	}
	return v.ints[v.at(k)]
}

func (v *vec) floatAt(k int) float64 {
	if v.vals != nil {
		return v.vals[v.at(k)].AsFloat()
	}
	if v.typ == TFloat {
		return v.floats[v.at(k)]
	}
	return float64(v.ints[v.at(k)])
}

func (v *vec) strAt(k int) string {
	if v.vals != nil {
		return v.vals[v.at(k)].S
	}
	return v.strs[v.at(k)]
}

func cmpHolds(op BinOp, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}
