package sqldb

import (
	"context"
	"strings"
)

// agg_vector.go — vectorized hash aggregation.
//
// aggregateVector replaces the tree engine's row-at-a-time aggregate()
// for the vector path: grouping keys and aggregate arguments are each
// evaluated as one vector over the joined batch, then folded into the
// same aggAcc accumulators the tree engine uses, with typed fast
// paths for the hot adds (COUNT/SUM over unboxed columns). Group key
// strings, first-seen group order, accumulator semantics and the
// empty-input corner are byte-identical to the tree engine — both
// paths then share finalizeGroups for HAVING and item evaluation, so
// per-group semantics cannot drift.
//
// Error parity: the same (row, expression) pairs are evaluated as in
// the tree engine, just operand-major instead of row-major — the
// engines may surface a different error first, but whether an error
// occurs is identical (the differential harness's contract).

func (ex *execution) aggregateVector(ctx context.Context, rows []Row, types []Type, ticks *int) (*Result, error) {
	if err := chargeTicks(ctx, ticks, len(rows)); err != nil {
		return nil, err
	}
	groups := map[string]*group{}
	var order []string
	if len(rows) > 0 {
		b := newWideBatch(rows, types, identitySel(len(rows)), ex.db.estats)
		keyVecs := make([]*vec, len(ex.stmt.GroupBy))
		for i, g := range ex.stmt.GroupBy {
			v, err := ex.evalVec(g, b)
			if err != nil {
				return nil, err
			}
			keyVecs[i] = v
		}
		argVecs := make([]*vec, len(ex.aggs))
		for i, ag := range ex.aggs {
			if ag.Star {
				continue
			}
			v, err := ex.evalVec(ag.Arg, b)
			if err != nil {
				return nil, err
			}
			argVecs[i] = v
		}
		var kb strings.Builder
		for k := range rows {
			kb.Reset()
			for _, v := range keyVecs {
				kb.WriteString(v.valueAt(k).GroupKey())
				kb.WriteByte('|')
			}
			key := kb.String()
			grp, ok := groups[key]
			if !ok {
				grp = &group{rep: rows[k], accs: make([]aggAcc, len(ex.aggs))}
				groups[key] = grp
				order = append(order, key)
			}
			for i, ag := range ex.aggs {
				if ag.Star {
					grp.accs[i].count++
					continue
				}
				grp.accs[i].addVec(argVecs[i], k, ag.Distinct)
			}
		}
	}
	return ex.finalizeGroups(groups, order, len(rows))
}

// addVec folds element k of v into the accumulator. Unboxed typed
// storage takes allocation-free fast paths whose payload comparisons
// coincide exactly with Compare for a uniformly typed column (I for
// TInt/TDate/TBool, F for TFloat, S for TText — the same equivalence
// the comparison fast paths in vector.go rely on). DISTINCT and boxed
// vectors fall back to the tree engine's add().
func (a *aggAcc) addVec(v *vec, k int, distinct bool) {
	if v.nullAt(k) {
		return
	}
	if distinct || v.vals != nil || v.isConst {
		a.add(v.valueAt(k), distinct)
		return
	}
	a.count++
	switch v.typ {
	case TFloat:
		f := v.floats[k]
		a.isFlt = true
		a.sumF += f
		if !a.has {
			a.minV, a.maxV, a.has = Value{Typ: TFloat, F: f}, Value{Typ: TFloat, F: f}, true
			return
		}
		if f < a.minV.F {
			a.minV = Value{Typ: TFloat, F: f}
		}
		if f > a.maxV.F {
			a.maxV = Value{Typ: TFloat, F: f}
		}
	case TText:
		s := v.strs[k]
		if !a.has {
			a.minV, a.maxV, a.has = Value{Typ: TText, S: s}, Value{Typ: TText, S: s}, true
			return
		}
		if s < a.minV.S {
			a.minV = Value{Typ: TText, S: s}
		}
		if s > a.maxV.S {
			a.maxV = Value{Typ: TText, S: s}
		}
	default: // TInt, TDate, TBool
		i := v.ints[k]
		if v.typ == TInt {
			a.sumI += i
		}
		if !a.has {
			a.minV, a.maxV, a.has = Value{Typ: v.typ, I: i}, Value{Typ: v.typ, I: i}, true
			return
		}
		if i < a.minV.I {
			a.minV = Value{Typ: v.typ, I: i}
		}
		if i > a.maxV.I {
			a.maxV = Value{Typ: v.typ, I: i}
		}
	}
}
