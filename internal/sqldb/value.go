// Package sqldb implements an embedded, in-memory relational engine
// supporting the query class needed by the UNMASQUE reproduction:
// single-block SPJGHAOL queries with equi-joins, conjunctive filters
// (numeric / date / LIKE), multi-linear projections, the five basic
// aggregates, grouping, having, ordering and limit — plus the DDL and
// mutation operations (table rename, value negation, sampling, bulk
// load) that the extraction pipeline relies on.
//
// The engine is deliberately non-invasive-friendly: everything the
// extractor does goes through the same public API an application would
// use, and query execution observes context cancellation so that the
// extractor can impose probe timeouts.
package sqldb

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Type enumerates the column data types supported by the engine. These
// mirror the types the paper considers: numerics (int, fixed-precision
// float), character data, and dates; booleans are included for
// completeness of the imperative workloads.
type Type uint8

const (
	// TUnknown is the zero Type; it is only valid on untyped NULL
	// literals before resolution.
	TUnknown Type = iota
	TInt
	TFloat
	TText
	TDate
	TBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "bigint"
	case TFloat:
		return "numeric"
	case TText:
		return "text"
	case TDate:
		return "date"
	case TBool:
		return "boolean"
	default:
		return "unknown"
	}
}

// IsNumeric reports whether the type participates in arithmetic.
func (t Type) IsNumeric() bool { return t == TInt || t == TFloat }

// Value is a single SQL value. Dates are stored as days since
// 1970-01-01 in I; booleans as 0/1 in I.
type Value struct {
	Null bool
	Typ  Type
	I    int64
	F    float64
	S    string
}

// Constructors.

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{Typ: TInt, I: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{Typ: TFloat, F: f} }

// NewText returns a text value.
func NewText(s string) Value { return Value{Typ: TText, S: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	v := Value{Typ: TBool}
	if b {
		v.I = 1
	}
	return v
}

// NewDate returns a date value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{Typ: TDate, I: days} }

// NewNull returns a NULL of the given type.
func NewNull(t Type) Value { return Value{Null: true, Typ: t} }

// dateEpoch anchors date arithmetic.
var dateEpoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// DateFromString parses a YYYY-MM-DD date into a date Value.
func DateFromString(s string) (Value, error) {
	t, err := time.ParseInLocation("2006-01-02", s, time.UTC)
	if err != nil {
		return Value{}, fmt.Errorf("invalid date %q: %w", s, err)
	}
	return NewDate(int64(t.Sub(dateEpoch) / (24 * time.Hour))), nil
}

// MustDate parses a YYYY-MM-DD date and panics on failure. It is meant
// for statically known literals in workload definitions and tests;
// library code parses with DateFromString and propagates the error
// (lint rule GL001 exempts only Must*-named wrappers).
func MustDate(s string) Value {
	v, err := DateFromString(s)
	if err != nil {
		panic(fmt.Sprintf("sqldb: MustDate(%q): %v", s, err))
	}
	return v
}

// DateString renders a date value as YYYY-MM-DD.
func DateString(days int64) string {
	return dateEpoch.Add(time.Duration(days) * 24 * time.Hour).Format("2006-01-02")
}

// Bool reports the boolean interpretation of the value. Only valid for
// TBool values.
func (v Value) Bool() bool { return !v.Null && v.I != 0 }

// AsFloat returns the numeric interpretation of the value. Valid for
// TInt, TFloat, TDate and TBool.
func (v Value) AsFloat() float64 {
	if v.Typ == TFloat {
		return v.F
	}
	return float64(v.I)
}

// IsZero reports whether a numeric value equals zero.
func (v Value) IsZero() bool {
	if v.Null {
		return false
	}
	if v.Typ == TFloat {
		return v.F == 0
	}
	return v.I == 0
}

// comparable type classes: ints, floats and dates inter-compare via
// numeric semantics where sensible; text compares lexically.
func sameClass(a, b Type) bool {
	if a == b {
		return true
	}
	if a.IsNumeric() && b.IsNumeric() {
		return true
	}
	return false
}

// Compare returns -1, 0 or +1 ordering a before/equal/after b. NULLs
// sort before all non-NULL values (matching our ORDER BY semantics).
// Comparing incompatible types returns an error.
func Compare(a, b Value) (int, error) {
	if a.Null || b.Null {
		switch {
		case a.Null && b.Null:
			return 0, nil
		case a.Null:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if !sameClass(a.Typ, b.Typ) {
		return 0, fmt.Errorf("cannot compare %s with %s", a.Typ, b.Typ)
	}
	switch {
	case a.Typ == TText:
		switch {
		case a.S < b.S:
			return -1, nil
		case a.S > b.S:
			return 1, nil
		default:
			return 0, nil
		}
	case a.Typ == TFloat || b.Typ == TFloat:
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	default: // TInt, TDate, TBool
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		default:
			return 0, nil
		}
	}
}

// Equal reports SQL equality between two non-null-aware values; NULL
// never equals anything (including NULL), mirroring WHERE semantics.
func Equal(a, b Value) bool {
	if a.Null || b.Null {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// GroupKey renders the value into a string usable as a hash-grouping
// key. Unlike Equal, NULLs group together (SQL GROUP BY semantics).
func (v Value) GroupKey() string {
	if v.Null {
		return "\x00N"
	}
	switch v.Typ {
	case TText:
		return "s" + v.S
	case TFloat:
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return "i" + strconv.FormatInt(v.I, 10)
	}
}

// String renders the value for display (not as a SQL literal).
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Typ {
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		// Normalize negative zero: "-0" would re-parse as the integer
		// literal 0 and break the parse-print fix-point.
		if v.F == 0 {
			return "0"
		}
		return strconv.FormatFloat(v.F, 'f', -1, 64)
	case TText:
		return v.S
	case TDate:
		return DateString(v.I)
	case TBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// SQLLiteral renders the value as a SQL literal the parser can read
// back.
func (v Value) SQLLiteral() string {
	if v.Null {
		return "NULL"
	}
	switch v.Typ {
	case TText:
		return "'" + escapeSQLString(v.S) + "'"
	case TDate:
		return "date '" + DateString(v.I) + "'"
	default:
		return v.String()
	}
}

func escapeSQLString(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// Arithmetic. Integer op integer stays integer (with / as float
// division to match warehouse semantics for computed columns); any
// float operand promotes to float. Date ± int yields a date.

// Add returns a+b.
func Add(a, b Value) (Value, error) { return arith(a, b, '+') }

// Sub returns a-b.
func Sub(a, b Value) (Value, error) { return arith(a, b, '-') }

// Mul returns a*b.
func Mul(a, b Value) (Value, error) { return arith(a, b, '*') }

// Div returns a/b using float division.
func Div(a, b Value) (Value, error) { return arith(a, b, '/') }

func arith(a, b Value, op byte) (Value, error) {
	if a.Null || b.Null {
		t := a.Typ
		if t == TUnknown {
			t = b.Typ
		}
		return NewNull(t), nil
	}
	// Date arithmetic: date ± int -> date; date - date -> int days.
	if a.Typ == TDate || b.Typ == TDate {
		switch {
		case a.Typ == TDate && b.Typ == TInt && (op == '+' || op == '-'):
			if op == '+' {
				return NewDate(a.I + b.I), nil
			}
			return NewDate(a.I - b.I), nil
		case a.Typ == TInt && b.Typ == TDate && op == '+':
			return NewDate(a.I + b.I), nil
		case a.Typ == TDate && b.Typ == TDate && op == '-':
			return NewInt(a.I - b.I), nil
		default:
			return Value{}, fmt.Errorf("unsupported date arithmetic %s %c %s", a.Typ, op, b.Typ)
		}
	}
	if !a.Typ.IsNumeric() || !b.Typ.IsNumeric() {
		return Value{}, fmt.Errorf("arithmetic on non-numeric types %s, %s", a.Typ, b.Typ)
	}
	if a.Typ == TFloat || b.Typ == TFloat || op == '/' {
		af, bf := a.AsFloat(), b.AsFloat()
		var r float64
		switch op {
		case '+':
			r = af + bf
		case '-':
			r = af - bf
		case '*':
			r = af * bf
		case '/':
			if bf == 0 {
				return Value{}, fmt.Errorf("division by zero")
			}
			r = af / bf
		}
		return NewFloat(r), nil
	}
	var r int64
	switch op {
	case '+':
		r = a.I + b.I
	case '-':
		r = a.I - b.I
	case '*':
		r = a.I * b.I
	}
	return NewInt(r), nil
}

// Neg returns the arithmetic negation of a numeric value. Used by the
// extractor's Negate mutation on join columns.
func Neg(a Value) (Value, error) {
	if a.Null {
		return a, nil
	}
	switch a.Typ {
	case TInt:
		return NewInt(-a.I), nil
	case TFloat:
		return NewFloat(-a.F), nil
	default:
		return Value{}, fmt.Errorf("cannot negate %s", a.Typ)
	}
}

// RoundTo rounds a float to the given number of decimal digits; other
// types pass through unchanged. Fixed-precision columns use this to
// keep binary-search probes on the representable grid.
func RoundTo(v Value, digits int) Value {
	if v.Null || v.Typ != TFloat {
		return v
	}
	p := math.Pow10(digits)
	return NewFloat(math.Round(v.F*p) / p)
}

// ApproxEqual compares two values with a small tolerance on floats;
// exact elsewhere. The extraction checker uses it when comparing
// application output with extracted-query output.
func ApproxEqual(a, b Value) bool {
	if a.Null != b.Null {
		return false
	}
	if a.Null {
		return a.Typ == b.Typ || a.Typ == TUnknown || b.Typ == TUnknown
	}
	if a.Typ == TFloat || b.Typ == TFloat {
		if !a.Typ.IsNumeric() || !b.Typ.IsNumeric() {
			return false
		}
		af, bf := a.AsFloat(), b.AsFloat()
		diff := math.Abs(af - bf)
		scale := math.Max(1, math.Max(math.Abs(af), math.Abs(bf)))
		return diff <= 1e-9*scale
	}
	return Equal(a, b)
}
