package sqldb

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Result is the output of a query or application execution: named
// columns and ordered rows. The extractor treats results as opaque —
// it only inspects cardinalities, values and order.
type Result struct {
	Columns []string
	Rows    []Row

	// aggEmptyInput marks the SQL corner case of an ungrouped
	// aggregate over zero input rows, which yields one all-default
	// row. The paper's pipeline treats that as a "null result", so
	// Populated reports false for it.
	aggEmptyInput bool
}

// Clone deep-copies the result. The extractor's run-memoization cache
// hands out clones so a caller holding a cached result can never
// alias another probe's rows.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	out := &Result{
		Columns:       append([]string(nil), r.Columns...),
		aggEmptyInput: r.aggEmptyInput,
	}
	out.Rows = make([]Row, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = row.Clone()
	}
	return out
}

// RowCount returns the number of result rows.
func (r *Result) RowCount() int {
	if r == nil {
		return 0
	}
	return len(r.Rows)
}

// Populated reports whether the result is non-empty in the paper's
// sense (at least one row, and not the null row of an ungrouped
// aggregate over empty input).
func (r *Result) Populated() bool {
	if r == nil || len(r.Rows) == 0 {
		return false
	}
	return !r.aggEmptyInput
}

// AggEmptyInput exposes the ungrouped-aggregate-over-empty-input flag
// for serialization layers (the durable probe cache must round-trip
// it, or Populated would misclassify a restored result).
func (r *Result) AggEmptyInput() bool {
	return r != nil && r.aggEmptyInput
}

// RestoreResult reassembles a Result from persisted parts. It is the
// inverse of reading Columns/Rows/AggEmptyInput and exists solely for
// the storage tier; the engine itself never constructs results this
// way.
func RestoreResult(columns []string, rows []Row, aggEmptyInput bool) *Result {
	return &Result{Columns: columns, Rows: rows, aggEmptyInput: aggEmptyInput}
}

// ColumnIndex returns the index of the named output column, or -1.
func (r *Result) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Column returns all values of one output column, in row order.
func (r *Result) Column(i int) []Value {
	out := make([]Value, len(r.Rows))
	for j, row := range r.Rows {
		out[j] = row[i]
	}
	return out
}

// rowKey renders a row for hashing/multiset comparison.
func rowKey(row Row) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.GroupKey()
	}
	return strings.Join(parts, "|")
}

// Checksum computes a position-dependent checksum over the result, so
// two results with the same rows in different orders differ. The
// extraction checker uses this to verify physical ordering.
func (r *Result) Checksum() uint64 {
	h := fnv.New64a()
	for i, row := range r.Rows {
		fmt.Fprintf(h, "#%d:%s;", i, rowKey(row))
	}
	return h.Sum64()
}

// EqualOrdered reports exact equality including row order, with
// float tolerance.
func (r *Result) EqualOrdered(o *Result) bool {
	if r.RowCount() != o.RowCount() {
		return false
	}
	for i := range r.Rows {
		if !rowsApproxEqual(r.Rows[i], o.Rows[i]) {
			return false
		}
	}
	return true
}

// EqualUnordered reports multiset equality of the rows, ignoring
// order, with float tolerance via value formatting at high precision.
func (r *Result) EqualUnordered(o *Result) bool {
	if r.RowCount() != o.RowCount() {
		return false
	}
	ra, rb := sortedKeys(r), sortedKeys(o)
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

func sortedKeys(r *Result) []string {
	keys := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		keys[i] = approxRowKey(row)
	}
	sort.Strings(keys)
	return keys
}

// approxRowKey formats floats at 6 decimal digits so results that are
// equal up to float noise compare equal.
func approxRowKey(row Row) string {
	parts := make([]string, len(row))
	for i, v := range row {
		if !v.Null && v.Typ == TFloat {
			parts[i] = fmt.Sprintf("f%.6f", v.F)
		} else {
			parts[i] = v.GroupKey()
		}
	}
	return strings.Join(parts, "|")
}

func rowsApproxEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ApproxEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// String renders the result as an aligned text table (for examples
// and the CLI).
func (r *Result) String() string {
	if r == nil {
		return "(nil result)"
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := v.String()
			cells[i][j] = s
			if j < len(widths) && len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteString("\n")
	for i := range r.Columns {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	for _, row := range cells {
		b.WriteString("\n")
		for j, s := range row {
			if j > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], s)
		}
	}
	return b.String()
}
