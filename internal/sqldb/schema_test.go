package sqldb

import (
	"testing"
)

func warehouseSchemas() []TableSchema {
	return []TableSchema{
		{
			Name: "customer",
			Columns: []Column{
				{Name: "c_custkey", Type: TInt},
				{Name: "c_name", Type: TText},
			},
			PrimaryKey: []string{"c_custkey"},
		},
		{
			Name: "orders",
			Columns: []Column{
				{Name: "o_orderkey", Type: TInt},
				{Name: "o_custkey", Type: TInt},
			},
			PrimaryKey:  []string{"o_orderkey"},
			ForeignKeys: []ForeignKey{{Column: "o_custkey", RefTable: "customer", RefColumn: "c_custkey"}},
		},
		{
			Name: "lineitem",
			Columns: []Column{
				{Name: "l_orderkey", Type: TInt},
			},
			ForeignKeys: []ForeignKey{{Column: "l_orderkey", RefTable: "orders", RefColumn: "o_orderkey"}},
		},
		{
			Name: "history",
			Columns: []Column{
				{Name: "h_custkey", Type: TInt},
			},
			ForeignKeys: []ForeignKey{{Column: "h_custkey", RefTable: "customer", RefColumn: "c_custkey"}},
		},
	}
}

func TestBuildSchemaGraphPKFKAndFKFK(t *testing.T) {
	g := BuildSchemaGraph(warehouseSchemas())
	has := func(a, b string) bool {
		for _, e := range g.Edges {
			if e.String() == a+"="+b || e.String() == b+"="+a {
				return true
			}
		}
		return false
	}
	if !has("orders.o_custkey", "customer.c_custkey") {
		t.Error("missing PK-FK edge orders->customer")
	}
	if !has("lineitem.l_orderkey", "orders.o_orderkey") {
		t.Error("missing PK-FK edge lineitem->orders")
	}
	// FK-FK: both o_custkey and h_custkey reference c_custkey.
	if !has("history.h_custkey", "orders.o_custkey") {
		t.Error("missing FK-FK edge history<->orders")
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, e := range g.Edges {
		k := e.Canonical().String()
		if seen[k] {
			t.Errorf("duplicate edge %s", k)
		}
		seen[k] = true
	}
}

func TestEdgesWithin(t *testing.T) {
	g := BuildSchemaGraph(warehouseSchemas())
	sub := g.EdgesWithin(map[string]bool{"customer": true, "orders": true})
	for _, e := range sub {
		if e.A.Table == "lineitem" || e.B.Table == "lineitem" || e.A.Table == "history" || e.B.Table == "history" {
			t.Errorf("edge %s escapes the table subset", e)
		}
	}
	if len(sub) != 1 {
		t.Errorf("got %d edges within {customer,orders}, want 1", len(sub))
	}
}

func TestSchemaColumnHelpers(t *testing.T) {
	s := warehouseSchemas()[1]
	if !s.IsKey("o_orderkey") || !s.IsKey("o_custkey") {
		t.Error("key detection failed")
	}
	if s.ColumnIndex("O_CUSTKEY") != 1 {
		t.Error("column lookup should be case-insensitive")
	}
	if _, err := s.Column("nope"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestColumnDomainDefaults(t *testing.T) {
	c := Column{Name: "x", Type: TInt}
	if c.DomainMin() != DefaultMinInt || c.DomainMax() != DefaultMaxInt {
		t.Error("int domain defaults wrong")
	}
	d := Column{Name: "d", Type: TDate}
	if DateString(d.DomainMin()) != "1900-01-01" || DateString(d.DomainMax()) != "2099-12-31" {
		t.Errorf("date domain defaults: %s .. %s", DateString(d.DomainMin()), DateString(d.DomainMax()))
	}
	f := Column{Name: "f", Type: TFloat}
	if f.FloatPrecision() != DefaultPrecision {
		t.Error("float precision default wrong")
	}
	bounded := Column{Name: "b", Type: TInt, MinInt: -5, MaxInt: 5}
	if bounded.DomainMin() != -5 || bounded.DomainMax() != 5 {
		t.Error("explicit domain ignored")
	}
}

func TestDatabaseDDL(t *testing.T) {
	db := NewDatabase()
	if err := db.CreateTable(warehouseSchemas()[0]); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(warehouseSchemas()[0]); err == nil {
		t.Error("duplicate create should error")
	}
	if err := db.RenameTable("customer", "customer_tmp"); err != nil {
		t.Fatal(err)
	}
	if db.HasTable("customer") || !db.HasTable("customer_tmp") {
		t.Error("rename did not take effect")
	}
	if err := db.RenameTable("customer_tmp", "customer"); err != nil {
		t.Fatal(err)
	}
	if err := db.RenameTable("ghost", "x"); err == nil {
		t.Error("renaming a missing table should error")
	}
	if err := db.DropTable("customer"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("customer"); err == nil {
		t.Error("double drop should error")
	}
}

func TestDatabaseCloneVariants(t *testing.T) {
	db := NewDatabase()
	for _, s := range warehouseSchemas() {
		if err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("customer", NewInt(1), NewText("a")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("orders", NewInt(1), NewInt(1)); err != nil {
		t.Fatal(err)
	}

	full := db.Clone()
	tbl, _ := full.Table("customer")
	if tbl.RowCount() != 1 {
		t.Error("Clone lost rows")
	}
	tbl.Rows[0][0] = NewInt(99)
	orig, _ := db.Table("customer")
	if orig.Rows[0][0].I != 1 {
		t.Error("Clone shares row storage")
	}

	empty := db.CloneSchema()
	tbl, _ = empty.Table("customer")
	if tbl.RowCount() != 0 {
		t.Error("CloneSchema copied rows")
	}

	part := db.CloneTables(map[string]bool{"orders": true})
	tbl, _ = part.Table("orders")
	if tbl.RowCount() != 1 {
		t.Error("CloneTables dropped requested rows")
	}
	tbl, _ = part.Table("customer")
	if tbl.RowCount() != 0 {
		t.Error("CloneTables copied unrequested rows")
	}
}

func TestTableNamesBySize(t *testing.T) {
	db := NewDatabase()
	for _, s := range warehouseSchemas() {
		if err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	o, _ := db.Table("orders")
	for i := 0; i < 5; i++ {
		o.MustInsert(NewInt(int64(i)), NewInt(1))
	}
	c, _ := db.Table("customer")
	c.MustInsert(NewInt(1), NewText("a"))
	names := db.TableNamesBySize()
	if names[0] != "orders" {
		t.Errorf("largest-first ordering: %v", names)
	}
	if db.TotalRows() != 6 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
}
