package sqldb

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
)

func TestLikeMatchBasics(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"BUILDING", "BUILDING", true},
		{"BUILDING", "building", false},
		{"BUILD%", "BUILDING", true},
		{"%ING", "BUILDING", true},
		{"%UILD%", "BUILDING", true},
		{"%", "", true},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"_", "x", true},
		{"_", "", false},
		{"_", "xy", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%UP_%", "SUPPLY", true},
		{"%UP_%", "UP", false},
		{"%UP_%", "UPS", true},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
		{"%%", "x", true},
		{"x%", "x", true},
		{"%x", "x", true},
		{"ab%ab", "abab", true},
		{"ab%ab", "abxab", true},
		{"ab%ab", "ab", false},
	}
	for _, c := range cases {
		if got := LikeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("LikeMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// likeToRegexp is an independent reference implementation.
func likeToRegexp(pattern string) *regexp.Regexp {
	var b strings.Builder
	b.WriteString("^")
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '%':
			b.WriteString(".*")
		case '_':
			b.WriteString(".")
		default:
			b.WriteString(regexp.QuoteMeta(string(pattern[i])))
		}
	}
	b.WriteString("$")
	return regexp.MustCompile(b.String())
}

func TestLikeMatchAgainstRegexpReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := "ab%_"
	for trial := 0; trial < 5000; trial++ {
		plen, slen := rng.Intn(8), rng.Intn(10)
		var p, s strings.Builder
		for i := 0; i < plen; i++ {
			p.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		for i := 0; i < slen; i++ {
			s.WriteByte(alphabet[rng.Intn(2)]) // only a, b in subject
		}
		pattern, subject := p.String(), s.String()
		want := likeToRegexp(pattern).MatchString(subject)
		if got := LikeMatch(pattern, subject); got != want {
			t.Fatalf("LikeMatch(%q, %q) = %v, reference says %v", pattern, subject, got, want)
		}
	}
}

func TestStripPercent(t *testing.T) {
	cases := []struct{ in, want string }{
		{"%UP_%", "UP_"},
		{"BUILDING", "BUILDING"},
		{"%%%", ""},
		{"a%b%c", "abc"},
	}
	for _, c := range cases {
		if got := StripPercent(c.in); got != c.want {
			t.Errorf("StripPercent(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMQSAlwaysMatchesUnderOriginalPattern(t *testing.T) {
	// Property from the paper: for patterns without '_' boundary
	// subtleties, the MQS (pattern minus '%') matches the pattern
	// whenever the pattern starts and ends with '%'; and in general
	// the MQS is a subsequence witness. We check the specific form
	// used by the extractor: %-wrapped MQS matches any superstring.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 1000; trial++ {
		n := 1 + rng.Intn(6)
		var mqs strings.Builder
		for i := 0; i < n; i++ {
			mqs.WriteByte(byte('a' + rng.Intn(3)))
		}
		m := mqs.String()
		if !LikeMatch("%"+m+"%", "xx"+m+"yy") {
			t.Fatalf("%%%s%% should match embedded occurrence", m)
		}
	}
}
