package sqldb

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
)

// Fingerprint is a content hash over a whole database instance. Two
// databases with identical table names, column definitions and row
// contents (in order) produce the same fingerprint. The extractor's
// run-memoization cache keys completed application executions on it:
// probing E twice on content-identical instances must yield the same
// result, so the second run can be skipped entirely.
type Fingerprint [sha256.Size]byte

// Fingerprint computes the content hash of the database. The hash
// covers, per table in creation order: the table name, every column's
// name, type and precision, and every row value. Schema metadata that
// cannot influence query evaluation (domain bounds, key linkages) is
// deliberately excluded so that equivalent probe instances collide.
//
// Cost is linear in the number of values; callers gating a cache
// should check TotalRows first and skip fingerprinting large
// instances where hashing would rival execution cost.
func (db *Database) Fingerprint() Fingerprint {
	db.mu.RLock()
	defer db.mu.RUnlock()
	h := sha256.New()
	var scratch [8]byte
	writeInt := func(i int64) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(i))
		h.Write(scratch[:])
	}
	writeStr := func(s string) {
		writeInt(int64(len(s)))
		h.Write([]byte(s))
	}
	for _, name := range db.order {
		t := db.tables[name]
		writeStr(t.Schema.Name)
		writeInt(int64(len(t.Schema.Columns)))
		for _, c := range t.Schema.Columns {
			writeStr(c.Name)
			h.Write([]byte{byte(c.Type), byte(c.Precision)})
			writeInt(int64(c.MaxLen))
		}
		writeInt(int64(len(t.Rows)))
		for _, r := range t.Rows {
			for _, v := range r {
				hashValue(h, v, writeInt, writeStr)
			}
		}
	}
	var out Fingerprint
	h.Sum(out[:0])
	return out
}

// hashValue feeds one value into the running hash with an unambiguous
// type-tagged encoding (a NULL, an int 0 and an empty string must all
// hash differently).
func hashValue(h hash.Hash, v Value, writeInt func(int64), writeStr func(string)) {
	if v.Null {
		h.Write([]byte{0xff, byte(v.Typ)})
		return
	}
	h.Write([]byte{byte(v.Typ)})
	switch v.Typ {
	case TText:
		writeStr(v.S)
	case TFloat:
		writeInt(int64(math.Float64bits(v.F)))
	default: // TInt, TDate, TBool
		writeInt(v.I)
	}
}

// CloneShared builds a read-only structural copy of the database: each
// table gets a fresh Table struct and schema, but the row slice is
// SHARED with the receiver. The copy supports the structural mutations
// the from-clause probe needs (RenameTable, DropTable) without paying
// for a row copy, which makes per-table rename probes cheap enough to
// fan out in parallel over the full provided instance.
//
// Callers must not mutate row contents through a shared clone (SetAll,
// Set, NegateColumn, Insert and the minimizer primitives all write
// through to the original); use Clone for a probe that rewrites
// values.
func (db *Database) CloneShared() *Database {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := NewDatabase()
	for _, n := range db.order {
		t := db.tables[n]
		out.tables[n] = &Table{Schema: t.Schema.Clone(), Rows: t.Rows}
		out.order = append(out.order, n)
	}
	return out
}
