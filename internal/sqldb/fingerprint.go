package sqldb

import (
	"crypto/sha256"
	"encoding/binary"
	"io"
	"math"
)

// Fingerprint is a content hash over a whole database instance. Two
// databases with identical table names, column definitions and row
// contents (in order) produce the same fingerprint. The extractor's
// run-memoization cache keys completed application executions on it:
// probing E twice on content-identical instances must yield the same
// result, so the second run can be skipped entirely.
type Fingerprint [sha256.Size]byte

// canonWriter frames values into w with the canonical length-
// prefixed, type-tagged encoding shared by Database.Fingerprint and
// Result.Digest: strings are length-prefixed, numbers little-endian,
// and every value carries its type tag, so a NULL, an int 0 and an
// empty string all encode differently.
type canonWriter struct {
	w       io.Writer
	scratch [8]byte
}

func (c *canonWriter) writeInt(i int64) {
	binary.LittleEndian.PutUint64(c.scratch[:], uint64(i))
	c.w.Write(c.scratch[:])
}

func (c *canonWriter) writeStr(s string) {
	c.writeInt(int64(len(s)))
	io.WriteString(c.w, s)
}

// writeValue encodes one value with an unambiguous type-tagged
// encoding.
func (c *canonWriter) writeValue(v Value) {
	if v.Null {
		c.w.Write([]byte{0xff, byte(v.Typ)})
		return
	}
	c.w.Write([]byte{byte(v.Typ)})
	switch v.Typ {
	case TText:
		c.writeStr(v.S)
	case TFloat:
		c.writeInt(int64(math.Float64bits(v.F)))
	default: // TInt, TDate, TBool
		c.writeInt(v.I)
	}
}

// Fingerprint computes the content hash of the database. The hash
// covers, per table in creation order: the table name, every column's
// name, type and precision, and every row value. Schema metadata that
// cannot influence query evaluation (domain bounds, key linkages) is
// deliberately excluded so that equivalent probe instances collide.
//
// Cost is linear in the number of values; callers gating a cache
// should check TotalRows first and skip fingerprinting large
// instances where hashing would rival execution cost.
func (db *Database) Fingerprint() Fingerprint {
	db.ensureAll() // hash over resident rows; see tablestore.go
	db.mu.RLock()
	defer db.mu.RUnlock()
	h := sha256.New()
	c := &canonWriter{w: h}
	for _, name := range db.order {
		t := db.tables[name]
		c.writeStr(t.Schema.Name)
		c.writeInt(int64(len(t.Schema.Columns)))
		for _, col := range t.Schema.Columns {
			c.writeStr(col.Name)
			h.Write([]byte{byte(col.Type), byte(col.Precision)})
			c.writeInt(int64(col.MaxLen))
		}
		c.writeInt(int64(len(t.Rows)))
		for _, r := range t.Rows {
			for _, v := range r {
				c.writeValue(v)
			}
		}
	}
	var out Fingerprint
	h.Sum(out[:0])
	return out
}

// Hex renders the fingerprint as lower-case hex.
func (f Fingerprint) Hex() string {
	const digits = "0123456789abcdef"
	out := make([]byte, 2*len(f))
	for i, b := range f {
		out[2*i] = digits[b>>4]
		out[2*i+1] = digits[b&0x0f]
	}
	return string(out)
}

// CloneShared builds a read-only structural copy of the database: each
// table gets a fresh Table struct and schema, but the row slice is
// SHARED with the receiver. The copy supports the structural mutations
// the from-clause probe needs (RenameTable, DropTable) without paying
// for a row copy, which makes per-table rename probes cheap enough to
// fan out in parallel over the full provided instance.
//
// Callers must not mutate row contents through a shared clone (SetAll,
// Set, NegateColumn, Insert and the minimizer primitives all write
// through to the original); use Clone for a probe that rewrites
// values.
func (db *Database) CloneShared() *Database {
	db.ensureAll() // shared clones alias resident row slices
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := db.newLike()
	for _, n := range db.order {
		t := db.tables[n]
		// Fresh Table struct: rows are shared, but index/build caches
		// are not — a shared clone never inherits or leaks cache state.
		out.tables[n] = &Table{Schema: t.Schema.Clone(), Rows: t.Rows}
		out.order = append(out.order, n)
	}
	return out
}
