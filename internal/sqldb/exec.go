package sqldb

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Execute runs a single-block SELECT against the database. The
// statement AST is not modified, so a parsed statement can be executed
// repeatedly against different database states (as the extractor
// does). Execution observes ctx cancellation at row granularity so
// callers can impose probe timeouts.
//
// Two engines implement the plan: the default vectorized engine
// (exec_vector.go: columnar batches, secondary hash indexes,
// hash-join build reuse) and the original tree-walking engine, kept
// as the differential-testing oracle. SetExecMode selects between
// them; both produce identical results, column names and row order.
func (db *Database) Execute(ctx context.Context, stmt *SelectStmt) (*Result, error) {
	for _, raw := range stmt.From {
		if err := db.ensure(raw); err != nil {
			return nil, err
		}
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	ex, err := newExecution(db, stmt)
	if err != nil {
		return nil, err
	}
	// Both engines charge cancellation ticks from the same cost model
	// (one tick per logical row touched per stage), so probe timeout
	// behaviour is mode-independent; the totals are recorded for the
	// tick-parity regression tests.
	var ticks int
	var res *Result
	if db.mode == ExecTree {
		db.estats.TreeQueries.Add(1)
		res, err = ex.runTree(ctx, &ticks)
	} else {
		db.estats.VectorQueries.Add(1)
		res, err = ex.runVector(ctx, &ticks)
	}
	db.estats.CtxTicks.Add(int64(ticks))
	return res, err
}

// colSlot is one resolved column reference: the owning table and the
// column's slot in the wide row.
type colSlot struct {
	tbl string
	idx int
}

// execution holds the per-run state: name resolution, classified
// predicates and the working row sets.
type execution struct {
	db   *Database
	stmt *SelectStmt

	tables  []string       // from-clause order, lowercased
	offsets map[string]int // table -> first slot in the wide row
	schemas map[string]*TableSchema
	width   int

	// Column resolution is keyed on the resolved (table, column) NAME,
	// not on *ColumnExpr pointer identity, so a statement cloned
	// between resolution and evaluation (CloneStmt) still evaluates
	// correctly. ptrSlot is a pure cache over the pointers seen at
	// resolve time; slotOf falls back to the name maps for any pointer
	// it has not seen.
	cols    map[string]colSlot // "tbl\x00col" -> slot
	unq     map[string]colSlot // unqualified column -> slot (unambiguous only)
	ptrSlot map[*ColumnExpr]colSlot

	pushdown map[string][]Expr // single-table conjuncts, WHERE order
	joins    []joinEdge        // equi-join conjuncts between tables
	residual []Expr            // everything else

	// Aggregates are deduplicated by canonical rendering: structurally
	// identical AggExpr nodes (including clones) share one accumulator
	// slot. aggPtr caches the nodes seen at resolve time.
	aggs   []*AggExpr
	aggIdx map[string]int
	aggPtr map[*AggExpr]int
}

type joinEdge struct {
	lt, rt string // table names
	li, ri int    // wide-row slots
	used   bool
}

func newExecution(db *Database, stmt *SelectStmt) (*execution, error) {
	ex := &execution{
		db:       db,
		stmt:     stmt,
		offsets:  map[string]int{},
		schemas:  map[string]*TableSchema{},
		cols:     map[string]colSlot{},
		unq:      map[string]colSlot{},
		ptrSlot:  map[*ColumnExpr]colSlot{},
		pushdown: map[string][]Expr{},
		aggIdx:   map[string]int{},
		aggPtr:   map[*AggExpr]int{},
	}
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("query has no from clause")
	}
	for _, raw := range stmt.From {
		name := strings.ToLower(raw)
		if _, dup := ex.offsets[name]; dup {
			return nil, fmt.Errorf("table %s appears twice in from clause (self-joins unsupported)", name)
		}
		t, ok := db.tables[name]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
		}
		ex.tables = append(ex.tables, name)
		ex.offsets[name] = ex.width
		ex.schemas[name] = &t.Schema
		ex.width += len(t.Schema.Columns)
	}
	// Resolve every expression in the statement.
	for _, it := range stmt.Items {
		if err := ex.resolve(it.Expr); err != nil {
			return nil, err
		}
	}
	if err := ex.resolve(stmt.Where); err != nil {
		return nil, err
	}
	for _, g := range stmt.GroupBy {
		if err := ex.resolve(g); err != nil {
			return nil, err
		}
	}
	if err := ex.resolve(stmt.Having); err != nil {
		return nil, err
	}
	for _, k := range stmt.OrderBy {
		if err := ex.resolveOrderKey(k.Expr); err != nil {
			return nil, err
		}
	}
	if err := ex.classifyWhere(); err != nil {
		return nil, err
	}
	ex.collectAggs()
	return ex, nil
}

// resolve validates every column reference in e and records its
// resolution in the name-keyed maps.
func (ex *execution) resolve(e Expr) error {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ColumnExpr:
		_, err := ex.resolveColumn(x)
		return err
	case *LiteralExpr:
		return nil
	case *BinaryExpr:
		if err := ex.resolve(x.L); err != nil {
			return err
		}
		return ex.resolve(x.R)
	case *NegExpr:
		return ex.resolve(x.X)
	case *NotExpr:
		return ex.resolve(x.X)
	case *BetweenExpr:
		if err := ex.resolve(x.X); err != nil {
			return err
		}
		if err := ex.resolve(x.Lo); err != nil {
			return err
		}
		return ex.resolve(x.Hi)
	case *LikeExpr:
		return ex.resolve(x.X)
	case *IsNullExpr:
		return ex.resolve(x.X)
	case *AggExpr:
		if x.Arg != nil {
			return ex.resolve(x.Arg)
		}
		return nil
	default:
		return fmt.Errorf("unsupported expression node %T", e)
	}
}

func (ex *execution) resolveColumn(c *ColumnExpr) (colSlot, error) {
	tbl := strings.ToLower(c.Table)
	col := strings.ToLower(c.Column)
	if tbl != "" {
		s, ok := ex.schemas[tbl]
		if !ok {
			return colSlot{}, fmt.Errorf("column reference %s.%s: table not in from clause", tbl, col)
		}
		ci := s.ColumnIndex(col)
		if ci < 0 {
			return colSlot{}, fmt.Errorf("table %s has no column %s", tbl, col)
		}
		slot := colSlot{tbl: tbl, idx: ex.offsets[tbl] + ci}
		ex.cols[tbl+"\x00"+col] = slot
		ex.ptrSlot[c] = slot
		return slot, nil
	}
	found := ""
	idx := -1
	for _, t := range ex.tables {
		if ci := ex.schemas[t].ColumnIndex(col); ci >= 0 {
			if found != "" {
				return colSlot{}, fmt.Errorf("column %s is ambiguous (%s, %s)", col, found, t)
			}
			found, idx = t, ex.offsets[t]+ci
		}
	}
	if found == "" {
		return colSlot{}, fmt.Errorf("unknown column %s", col)
	}
	slot := colSlot{tbl: found, idx: idx}
	ex.unq[col] = slot
	ex.cols[found+"\x00"+col] = slot
	ex.ptrSlot[c] = slot
	return slot, nil
}

// slotOf resolves a column reference at evaluation time. The pointer
// cache serves references resolved by this execution; the name maps
// serve structurally identical references from cloned statements.
func (ex *execution) slotOf(c *ColumnExpr) (colSlot, error) {
	if slot, ok := ex.ptrSlot[c]; ok {
		return slot, nil
	}
	col := strings.ToLower(c.Column)
	if c.Table != "" {
		if slot, ok := ex.cols[strings.ToLower(c.Table)+"\x00"+col]; ok {
			return slot, nil
		}
	} else if slot, ok := ex.unq[col]; ok {
		return slot, nil
	}
	// Not seen during resolution: resolve it now (validates against
	// the schemas and caches the result).
	return ex.resolveColumn(c)
}

// resolveOrderKey resolves an ORDER BY expression, tolerating
// references to output aliases (resolved later against the items).
func (ex *execution) resolveOrderKey(e Expr) error {
	if c, ok := e.(*ColumnExpr); ok && c.Table == "" {
		for _, it := range ex.stmt.Items {
			if strings.EqualFold(it.OutputName(), c.Column) {
				return nil // alias reference; resolved against output
			}
		}
	}
	return ex.resolve(e)
}

// classifyWhere splits the WHERE conjunction into per-table pushdown
// filters, equi-join edges and residual predicates.
func (ex *execution) classifyWhere() error {
	for _, c := range Conjuncts(ex.stmt.Where) {
		if b, ok := c.(*BinaryExpr); ok && b.Op == OpEq {
			lc, lok := b.L.(*ColumnExpr)
			rc, rok := b.R.(*ColumnExpr)
			if lok && rok {
				ls, err := ex.slotOf(lc)
				if err != nil {
					return err
				}
				rs, err := ex.slotOf(rc)
				if err != nil {
					return err
				}
				if ls.tbl != rs.tbl {
					ex.joins = append(ex.joins, joinEdge{
						lt: ls.tbl, rt: rs.tbl,
						li: ls.idx, ri: rs.idx,
					})
					continue
				}
			}
		}
		tbls := map[string]bool{}
		for _, col := range ColumnsOf(c) {
			s, err := ex.slotOf(col)
			if err != nil {
				return err
			}
			tbls[s.tbl] = true
		}
		if len(tbls) == 1 {
			for t := range tbls {
				ex.pushdown[t] = append(ex.pushdown[t], c)
			}
			continue
		}
		ex.residual = append(ex.residual, c)
	}
	return nil
}

func (ex *execution) collectAggs() {
	record := func(x *AggExpr) {
		key := x.String()
		if i, ok := ex.aggIdx[key]; ok {
			ex.aggPtr[x] = i
			return
		}
		i := len(ex.aggs)
		ex.aggs = append(ex.aggs, x)
		ex.aggIdx[key] = i
		ex.aggPtr[x] = i
	}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *AggExpr:
			record(x)
		case *BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *NegExpr:
			walk(x.X)
		case *NotExpr:
			walk(x.X)
		case *BetweenExpr:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *LikeExpr:
			walk(x.X)
		case *IsNullExpr:
			walk(x.X)
		}
	}
	for _, it := range ex.stmt.Items {
		walk(it.Expr)
	}
	walk(ex.stmt.Having)
	for _, k := range ex.stmt.OrderBy {
		walk(k.Expr)
	}
}

// aggPos maps an aggregate node to its accumulator slot. Clones of
// registered aggregates resolve through their canonical rendering.
func (ex *execution) aggPos(x *AggExpr) (int, bool) {
	if i, ok := ex.aggPtr[x]; ok {
		return i, true
	}
	i, ok := ex.aggIdx[x.String()]
	if ok {
		ex.aggPtr[x] = i
	}
	return i, ok
}

const cancelCheckEvery = 4096

func checkCtx(ctx context.Context, n *int) error {
	*n++
	if *n%cancelCheckEvery == 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	return nil
}

// chargeTicks adds n ticks in one step — the vectorized stages charge
// a whole batch's cost at once instead of calling checkCtx per row —
// and polls ctx whenever the charge crosses a cancelCheckEvery
// boundary, preserving checkCtx's polling cadence.
func chargeTicks(ctx context.Context, ticks *int, n int) error {
	if n <= 0 {
		return nil
	}
	before := *ticks
	*ticks = before + n
	if before/cancelCheckEvery != (before+n)/cancelCheckEvery {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	return nil
}

// runTree executes the compiled plan with the original tree-walking
// engine: per-row predicate evaluation over wide rows, then the
// shared post-join pipeline. It is the oracle the vectorized engine
// is differentially tested against.
func (ex *execution) runTree(ctx context.Context, ticks *int) (*Result, error) {
	// 1. Scan + filter each table into wide-row fragments.
	filtered := map[string][]Row{}
	for _, t := range ex.tables {
		tbl := ex.db.tables[t]
		preds := ex.pushdown[t]
		rows := make([]Row, 0, len(tbl.Rows))
		off := ex.offsets[t]
		for _, r := range tbl.Rows {
			if err := checkCtx(ctx, ticks); err != nil {
				return nil, err
			}
			keep := true
			if len(preds) > 0 {
				wide := make(Row, ex.width)
				copy(wide[off:], r)
				for _, p := range preds {
					ok, err := ex.evalBool(p, wide, nil)
					if err != nil {
						return nil, err
					}
					if !ok {
						keep = false
						break
					}
				}
			}
			if keep {
				rows = append(rows, r)
			}
		}
		filtered[t] = rows
	}

	// 2. Join greedily, smallest first, following equi-join edges.
	current, err := ex.join(ctx, filtered, ticks)
	if err != nil {
		return nil, err
	}

	// 3-6. Residual, aggregation/projection, order, limit.
	return ex.finish(ctx, current, ticks)
}

// finish runs the tree engine's tail of the plan over the joined wide
// rows: residual predicates, grouping/aggregation or projection,
// order by, and limit. The vector engine's finishVector replicates
// every stage batch-at-a-time; the differential harness holds the two
// to digest-, column-, ordering- and error-parity.
func (ex *execution) finish(ctx context.Context, current []Row, ticks *int) (*Result, error) {
	// 3. Residual predicates.
	if len(ex.residual) > 0 {
		kept := current[:0]
		for _, w := range current {
			if err := checkCtx(ctx, ticks); err != nil {
				return nil, err
			}
			ok := true
			for _, p := range ex.residual {
				b, err := ex.evalBool(p, w, nil)
				if err != nil {
					return nil, err
				}
				if !b {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, w)
			}
		}
		current = kept
	}

	// 4. Grouping / aggregation, or plain projection.
	var out *Result
	var err error
	if len(ex.stmt.GroupBy) > 0 || len(ex.aggs) > 0 {
		out, err = ex.aggregate(ctx, current, ticks)
	} else {
		out, err = ex.project(ctx, current, ticks)
	}
	if err != nil {
		return nil, err
	}

	// 5. Order by.
	if len(ex.stmt.OrderBy) > 0 {
		if err := ex.orderResult(out, current); err != nil {
			return nil, err
		}
	}

	// 6. Limit.
	if ex.stmt.Limit > 0 && int64(len(out.Rows)) > ex.stmt.Limit {
		out.Rows = out.Rows[:ex.stmt.Limit]
	}
	return out, nil
}

// join combines the filtered fragments into wide rows.
func (ex *execution) join(ctx context.Context, filtered map[string][]Row, ticks *int) ([]Row, error) {
	remaining := map[string]bool{}
	for _, t := range ex.tables {
		remaining[t] = true
	}
	// Start from the smallest fragment for a small build side; ties
	// break on from-clause position to keep row order deterministic.
	start := ex.tables[0]
	for _, t := range ex.tables[1:] {
		if len(filtered[t]) < len(filtered[start]) {
			start = t
		}
	}
	delete(remaining, start)
	joined := map[string]bool{start: true}
	current := make([]Row, 0, len(filtered[start]))
	off := ex.offsets[start]
	for _, r := range filtered[start] {
		wide := make(Row, ex.width)
		copy(wide[off:], r)
		current = append(current, wide)
	}

	for len(remaining) > 0 {
		// Choose the smallest remaining table reachable via a join
		// edge; fall back to a cross product if none is connected.
		// Iteration follows the from-clause order so ties resolve
		// deterministically (result row order must be reproducible
		// across runs for the extraction checker's comparisons).
		next := ""
		for _, t := range ex.tables {
			if !remaining[t] {
				continue
			}
			connected := false
			for _, e := range ex.joins {
				if (joined[e.lt] && e.rt == t) || (joined[e.rt] && e.lt == t) {
					connected = true
					break
				}
			}
			if connected && (next == "" || len(filtered[t]) < len(filtered[next])) {
				next = t
			}
		}
		cross := false
		if next == "" {
			cross = true
			for _, t := range ex.tables {
				if !remaining[t] {
					continue
				}
				if next == "" || len(filtered[t]) < len(filtered[next]) {
					next = t
				}
			}
		}
		delete(remaining, next)

		nOff := ex.offsets[next]
		if cross {
			var out []Row
			for _, w := range current {
				for _, r := range filtered[next] {
					if err := checkCtx(ctx, ticks); err != nil {
						return nil, err
					}
					nw := w.Clone()
					copy(nw[nOff:], r)
					out = append(out, nw)
				}
			}
			current = out
			joined[next] = true
			continue
		}

		// Hash join: key on every edge connecting `next` to the
		// joined set.
		var probeIdx, buildLocal []int
		for i := range ex.joins {
			e := &ex.joins[i]
			switch {
			case joined[e.lt] && e.rt == next:
				probeIdx = append(probeIdx, e.li)
				buildLocal = append(buildLocal, e.ri-nOff)
				e.used = true
			case joined[e.rt] && e.lt == next:
				probeIdx = append(probeIdx, e.ri)
				buildLocal = append(buildLocal, e.li-nOff)
				e.used = true
			}
		}
		build := make(map[string][]Row, len(filtered[next]))
		for _, r := range filtered[next] {
			if err := checkCtx(ctx, ticks); err != nil {
				return nil, err
			}
			key, ok := joinKeyLocal(r, buildLocal)
			if !ok {
				continue // NULL join key never matches
			}
			build[key] = append(build[key], r)
		}
		var out []Row
		for _, w := range current {
			if err := checkCtx(ctx, ticks); err != nil {
				return nil, err
			}
			key, ok := joinKeyWide(w, probeIdx)
			if !ok {
				continue
			}
			for _, r := range build[key] {
				nw := w.Clone()
				copy(nw[nOff:], r)
				out = append(out, nw)
			}
		}
		current = out
		joined[next] = true
	}

	// Enforce any join edges not used as hash keys (cycle edges).
	var unused []joinEdge
	for _, e := range ex.joins {
		if !e.used {
			unused = append(unused, e)
		}
	}
	if len(unused) > 0 {
		kept := current[:0]
		for _, w := range current {
			ok := true
			for _, e := range unused {
				if !Equal(w[e.li], w[e.ri]) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, w)
			}
		}
		current = kept
	}
	return current, nil
}

func joinKeyLocal(r Row, idx []int) (string, bool) {
	var b strings.Builder
	for _, i := range idx {
		if r[i].Null {
			return "", false
		}
		b.WriteString(r[i].GroupKey())
		b.WriteByte('|')
	}
	return b.String(), true
}

func joinKeyWide(w Row, idx []int) (string, bool) {
	var b strings.Builder
	for _, i := range idx {
		if w[i].Null {
			return "", false
		}
		b.WriteString(w[i].GroupKey())
		b.WriteByte('|')
	}
	return b.String(), true
}

// project emits one output row per input row (no aggregation).
func (ex *execution) project(ctx context.Context, rows []Row, ticks *int) (*Result, error) {
	res := &Result{Columns: ex.outputColumns()}
	for _, w := range rows {
		if err := checkCtx(ctx, ticks); err != nil {
			return nil, err
		}
		out := make(Row, len(ex.stmt.Items))
		for i, it := range ex.stmt.Items {
			v, err := ex.eval(it.Expr, w, nil)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func (ex *execution) outputColumns() []string {
	cols := make([]string, len(ex.stmt.Items))
	for i, it := range ex.stmt.Items {
		cols[i] = it.OutputName()
	}
	return cols
}

// wideTypes returns the schema type of every wide-row slot; the
// vector engine's post-join batches type their columns from it.
func (ex *execution) wideTypes() []Type {
	types := make([]Type, ex.width)
	for _, t := range ex.tables {
		off := ex.offsets[t]
		for i, c := range ex.schemas[t].Columns {
			types[off+i] = c.Type
		}
	}
	return types
}

// group accumulates one hash-aggregation bucket.
type group struct {
	rep  Row // representative input row
	accs []aggAcc
}

type aggAcc struct {
	count int64
	sumI  int64
	sumF  float64
	isFlt bool
	minV  Value
	maxV  Value
	has   bool
	seen  map[string]bool // for DISTINCT
}

func (a *aggAcc) add(v Value, distinct bool) {
	if v.Null {
		return
	}
	if distinct {
		if a.seen == nil {
			a.seen = map[string]bool{}
		}
		k := v.GroupKey()
		if a.seen[k] {
			return
		}
		a.seen[k] = true
	}
	a.count++
	switch v.Typ {
	case TFloat:
		a.isFlt = true
		a.sumF += v.F
	case TInt:
		a.sumI += v.I
	}
	if !a.has {
		a.minV, a.maxV, a.has = v, v, true
		return
	}
	if c, err := Compare(v, a.minV); err == nil && c < 0 {
		a.minV = v
	}
	if c, err := Compare(v, a.maxV); err == nil && c > 0 {
		a.maxV = v
	}
}

func (a *aggAcc) final(fn AggFn) Value {
	switch fn {
	case AggCount:
		return NewInt(a.count)
	case AggMin:
		if !a.has {
			return NewNull(TUnknown)
		}
		return a.minV
	case AggMax:
		if !a.has {
			return NewNull(TUnknown)
		}
		return a.maxV
	case AggSum:
		if a.count == 0 {
			return NewNull(TUnknown)
		}
		if a.isFlt {
			return NewFloat(a.sumF + float64(a.sumI))
		}
		return NewInt(a.sumI)
	case AggAvg:
		if a.count == 0 {
			return NewNull(TUnknown)
		}
		return NewFloat((a.sumF + float64(a.sumI)) / float64(a.count))
	default:
		return NewNull(TUnknown)
	}
}

// aggregate performs hash grouping and evaluates items/having per
// group. Per-group aggregate results live in a positional slice
// aligned with ex.aggs — never in a per-group map (GL008).
func (ex *execution) aggregate(ctx context.Context, rows []Row, ticks *int) (*Result, error) {
	groups := map[string]*group{}
	var order []string
	for _, w := range rows {
		if err := checkCtx(ctx, ticks); err != nil {
			return nil, err
		}
		var kb strings.Builder
		for _, g := range ex.stmt.GroupBy {
			v, err := ex.eval(g, w, nil)
			if err != nil {
				return nil, err
			}
			kb.WriteString(v.GroupKey())
			kb.WriteByte('|')
		}
		key := kb.String()
		grp, ok := groups[key]
		if !ok {
			grp = &group{rep: w, accs: make([]aggAcc, len(ex.aggs))}
			groups[key] = grp
			order = append(order, key)
		}
		for i, ag := range ex.aggs {
			if ag.Star {
				grp.accs[i].count++
				continue
			}
			v, err := ex.eval(ag.Arg, w, nil)
			if err != nil {
				return nil, err
			}
			grp.accs[i].add(v, ag.Distinct)
		}
	}

	return ex.finalizeGroups(groups, order, len(rows))
}

// finalizeGroups evaluates HAVING and the select list per group and
// assembles the result. Both engines share it verbatim, so the
// per-group semantics (the empty-input null-result corner, HAVING
// filtering, item evaluation against the representative row) cannot
// drift between them.
func (ex *execution) finalizeGroups(groups map[string]*group, order []string, inputRows int) (*Result, error) {
	res := &Result{Columns: ex.outputColumns()}
	// SQL corner case: ungrouped aggregation over empty input yields
	// one row; the paper's pipeline treats it as a null result.
	if len(ex.stmt.GroupBy) == 0 && inputRows == 0 {
		grp := &group{rep: make(Row, ex.width), accs: make([]aggAcc, len(ex.aggs))}
		groups[""] = grp
		order = append(order, "")
		res.aggEmptyInput = true
	}

	aggVals := make([]Value, len(ex.aggs))
	for _, key := range order {
		grp := groups[key]
		for i, ag := range ex.aggs {
			aggVals[i] = grp.accs[i].final(ag.Fn)
		}
		if ex.stmt.Having != nil {
			ok, err := ex.evalBool(ex.stmt.Having, grp.rep, aggVals)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out := make(Row, len(ex.stmt.Items))
		for i, it := range ex.stmt.Items {
			v, err := ex.eval(it.Expr, grp.rep, aggVals)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	if res.aggEmptyInput && len(res.Rows) == 0 {
		// Having filtered away the null row: genuinely empty.
		res.aggEmptyInput = false
	}
	return res, nil
}

// orderResult sorts the output rows. Order keys that match an output
// column (by alias or by structural equality with a projection) sort
// on output values; other keys are unsupported after aggregation.
func (ex *execution) orderResult(res *Result, input []Row) error {
	type keyFn func(row Row, idx int) (Value, error)
	var fns []keyFn
	descs := make([]bool, len(ex.stmt.OrderBy))
	for ki, k := range ex.stmt.OrderBy {
		descs[ki] = k.Desc
		outIdx := ex.matchOutputColumn(k.Expr)
		if outIdx >= 0 {
			idx := outIdx
			fns = append(fns, func(row Row, _ int) (Value, error) { return row[idx], nil })
			continue
		}
		if len(ex.stmt.GroupBy) > 0 || len(ex.aggs) > 0 {
			return fmt.Errorf("order by expression %s does not appear in the select list", k.Expr)
		}
		expr := k.Expr
		fns = append(fns, func(_ Row, idx int) (Value, error) { return ex.eval(expr, input[idx], nil) })
	}
	idxs := make([]int, len(res.Rows))
	for i := range idxs {
		idxs[i] = i
	}
	keys := make([][]Value, len(res.Rows))
	for i := range res.Rows {
		keys[i] = make([]Value, len(fns))
		for j, fn := range fns {
			v, err := fn(res.Rows[i], i)
			if err != nil {
				return err
			}
			keys[i][j] = v
		}
	}
	sort.SliceStable(idxs, func(a, b int) bool {
		ka, kb := keys[idxs[a]], keys[idxs[b]]
		for j := range ka {
			c, err := Compare(ka[j], kb[j])
			if err != nil || c == 0 {
				continue
			}
			if descs[j] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sorted := make([]Row, len(res.Rows))
	for i, idx := range idxs {
		sorted[i] = res.Rows[idx]
	}
	res.Rows = sorted
	return nil
}

// matchOutputColumn finds the select-list position an order key refers
// to, or -1.
func (ex *execution) matchOutputColumn(e Expr) int {
	if c, ok := e.(*ColumnExpr); ok && c.Table == "" {
		for i, it := range ex.stmt.Items {
			if strings.EqualFold(it.OutputName(), c.Column) {
				return i
			}
		}
	}
	es := e.String()
	for i, it := range ex.stmt.Items {
		if it.Expr.String() == es {
			return i
		}
		if c, ok := e.(*ColumnExpr); ok {
			if ic, ok2 := it.Expr.(*ColumnExpr); ok2 && strings.EqualFold(ic.Column, c.Column) &&
				(c.Table == "" || strings.EqualFold(ic.Table, c.Table)) {
				return i
			}
		}
	}
	return -1
}

// eval evaluates a scalar expression against a wide row; aggVals is
// non-nil when evaluating post-aggregation (items/having), positioned
// parallel to ex.aggs.
func (ex *execution) eval(e Expr, row Row, aggVals []Value) (Value, error) {
	switch x := e.(type) {
	case *ColumnExpr:
		slot, err := ex.slotOf(x)
		if err != nil {
			return Value{}, fmt.Errorf("unresolved column %s: %w", x, err)
		}
		return row[slot.idx], nil
	case *LiteralExpr:
		return x.Val, nil
	case *NegExpr:
		v, err := ex.eval(x.X, row, aggVals)
		if err != nil {
			return Value{}, err
		}
		return Neg(v)
	case *AggExpr:
		if aggVals == nil {
			return Value{}, fmt.Errorf("aggregate %s outside grouping context", x)
		}
		i, ok := ex.aggPos(x)
		if !ok {
			return Value{}, fmt.Errorf("unregistered aggregate %s", x)
		}
		return aggVals[i], nil
	case *BinaryExpr:
		switch x.Op {
		case OpAnd, OpOr:
			return ex.evalLogic(x, row, aggVals)
		case OpAdd, OpSub, OpMul, OpDiv:
			l, err := ex.eval(x.L, row, aggVals)
			if err != nil {
				return Value{}, err
			}
			r, err := ex.eval(x.R, row, aggVals)
			if err != nil {
				return Value{}, err
			}
			switch x.Op {
			case OpAdd:
				return Add(l, r)
			case OpSub:
				return Sub(l, r)
			case OpMul:
				return Mul(l, r)
			default:
				return Div(l, r)
			}
		default: // comparison
			l, err := ex.eval(x.L, row, aggVals)
			if err != nil {
				return Value{}, err
			}
			r, err := ex.eval(x.R, row, aggVals)
			if err != nil {
				return Value{}, err
			}
			if l.Null || r.Null {
				return NewNull(TBool), nil
			}
			c, err := Compare(l, r)
			if err != nil {
				return Value{}, err
			}
			var b bool
			switch x.Op {
			case OpEq:
				b = c == 0
			case OpNe:
				b = c != 0
			case OpLt:
				b = c < 0
			case OpLe:
				b = c <= 0
			case OpGt:
				b = c > 0
			case OpGe:
				b = c >= 0
			}
			return NewBool(b), nil
		}
	case *NotExpr:
		v, err := ex.eval(x.X, row, aggVals)
		if err != nil {
			return Value{}, err
		}
		if v.Null {
			return NewNull(TBool), nil
		}
		return NewBool(!v.Bool()), nil
	case *BetweenExpr:
		v, err := ex.eval(x.X, row, aggVals)
		if err != nil {
			return Value{}, err
		}
		lo, err := ex.eval(x.Lo, row, aggVals)
		if err != nil {
			return Value{}, err
		}
		hi, err := ex.eval(x.Hi, row, aggVals)
		if err != nil {
			return Value{}, err
		}
		if v.Null || lo.Null || hi.Null {
			return NewNull(TBool), nil
		}
		c1, err := Compare(v, lo)
		if err != nil {
			return Value{}, err
		}
		c2, err := Compare(v, hi)
		if err != nil {
			return Value{}, err
		}
		return NewBool(c1 >= 0 && c2 <= 0), nil
	case *LikeExpr:
		v, err := ex.eval(x.X, row, aggVals)
		if err != nil {
			return Value{}, err
		}
		if v.Null {
			return NewNull(TBool), nil
		}
		if v.Typ != TText {
			return Value{}, fmt.Errorf("like on non-text value (%s)", v.Typ)
		}
		m := LikeMatch(x.Pattern, v.S)
		if x.Not {
			m = !m
		}
		return NewBool(m), nil
	case *IsNullExpr:
		v, err := ex.eval(x.X, row, aggVals)
		if err != nil {
			return Value{}, err
		}
		b := v.Null
		if x.Not {
			b = !b
		}
		return NewBool(b), nil
	default:
		return Value{}, fmt.Errorf("unsupported expression node %T", e)
	}
}

// evalLogic implements three-valued AND/OR.
func (ex *execution) evalLogic(x *BinaryExpr, row Row, aggVals []Value) (Value, error) {
	l, err := ex.eval(x.L, row, aggVals)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit where the outcome is decided.
	if !l.Null {
		if x.Op == OpAnd && !l.Bool() {
			return NewBool(false), nil
		}
		if x.Op == OpOr && l.Bool() {
			return NewBool(true), nil
		}
	}
	r, err := ex.eval(x.R, row, aggVals)
	if err != nil {
		return Value{}, err
	}
	if x.Op == OpAnd {
		if !r.Null && !r.Bool() {
			return NewBool(false), nil
		}
		if l.Null || r.Null {
			return NewNull(TBool), nil
		}
		return NewBool(true), nil
	}
	if !r.Null && r.Bool() {
		return NewBool(true), nil
	}
	if l.Null || r.Null {
		return NewNull(TBool), nil
	}
	return NewBool(false), nil
}

// evalBool evaluates a predicate; NULL counts as false (WHERE/HAVING
// semantics).
func (ex *execution) evalBool(e Expr, row Row, aggVals []Value) (bool, error) {
	v, err := ex.eval(e, row, aggVals)
	if err != nil {
		return false, err
	}
	return !v.Null && v.Bool(), nil
}
