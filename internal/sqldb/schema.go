package sqldb

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Column describes one column of a table, including the domain
// metadata the extractor's filter probing needs (value spread for
// numerics/dates, precision for fixed-point floats, and maximum length
// for character data).
type Column struct {
	Name string
	Type Type

	// Precision is the number of decimal digits for TFloat columns
	// (fixed-precision numeric, as in the paper). Zero means the
	// engine default of 2.
	Precision int

	// MaxLen bounds TText values; zero means the default of 64.
	MaxLen int

	// MinInt/MaxInt give the domain spread [i_min, i_max] for TInt,
	// TFloat (integral part) and TDate (days since epoch) columns.
	// Zero values fall back to engine-wide defaults.
	MinInt int64
	MaxInt int64
}

// Engine-wide domain defaults, chosen wide enough for every workload
// while keeping binary searches short.
const (
	DefaultMinInt    = -1 << 40
	DefaultMaxInt    = 1 << 40
	DefaultPrecision = 2
	DefaultMaxLen    = 64
)

// defaultDateMinDays/defaultDateMaxDays bound the default date domain
// [1900-01-01, 2099-12-31] in days since the Unix epoch. They are
// computed from calendar arithmetic at init, so the library path
// through DomainMin/DomainMax carries no panic (lint rule GL001).
var (
	defaultDateMinDays = epochDays(1900, time.January, 1)
	defaultDateMaxDays = epochDays(2099, time.December, 31)
)

// epochDays converts a calendar date to days since the Unix epoch.
func epochDays(year int, month time.Month, day int) int64 {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return int64(t.Sub(dateEpoch) / (24 * time.Hour))
}

// DomainMin returns the lower end of the column's value spread.
func (c Column) DomainMin() int64 {
	if c.MinInt == 0 && c.MaxInt == 0 {
		if c.Type == TDate {
			return defaultDateMinDays
		}
		return DefaultMinInt
	}
	return c.MinInt
}

// DomainMax returns the upper end of the column's value spread.
func (c Column) DomainMax() int64 {
	if c.MinInt == 0 && c.MaxInt == 0 {
		if c.Type == TDate {
			return defaultDateMaxDays
		}
		return DefaultMaxInt
	}
	return c.MaxInt
}

// FloatPrecision returns the effective decimal precision.
func (c Column) FloatPrecision() int {
	if c.Precision <= 0 {
		return DefaultPrecision
	}
	return c.Precision
}

// TextMaxLen returns the effective maximum text length.
func (c Column) TextMaxLen() int {
	if c.MaxLen <= 0 {
		return DefaultMaxLen
	}
	return c.MaxLen
}

// ForeignKey records one key-connecting edge of the schema graph: a
// column in the owning table referencing a column of another table.
// Both PK-FK and FK-FK linkages are expressed this way.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// TableSchema is the full definition of one table.
type TableSchema struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey
}

// Clone returns a deep copy of the schema.
func (s TableSchema) Clone() TableSchema {
	out := TableSchema{Name: s.Name}
	out.Columns = append([]Column(nil), s.Columns...)
	out.PrimaryKey = append([]string(nil), s.PrimaryKey...)
	out.ForeignKeys = append([]ForeignKey(nil), s.ForeignKeys...)
	return out
}

// ColumnIndex returns the index of the named column, or -1.
func (s TableSchema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column definition.
func (s TableSchema) Column(name string) (Column, error) {
	i := s.ColumnIndex(name)
	if i < 0 {
		return Column{}, fmt.Errorf("table %s has no column %s", s.Name, name)
	}
	return s.Columns[i], nil
}

// IsKey reports whether the named column participates in the primary
// key or any foreign-key linkage of this table.
func (s TableSchema) IsKey(name string) bool {
	for _, k := range s.PrimaryKey {
		if strings.EqualFold(k, name) {
			return true
		}
	}
	for _, fk := range s.ForeignKeys {
		if strings.EqualFold(fk.Column, name) {
			return true
		}
	}
	return false
}

// ColRef names a column of a specific table; the schema graph and the
// extractor's join graph both use this as the vertex identity.
type ColRef struct {
	Table  string
	Column string
}

func (c ColRef) String() string { return c.Table + "." + c.Column }

// Less imposes a deterministic ordering on column references.
func (c ColRef) Less(o ColRef) bool {
	if c.Table != o.Table {
		return c.Table < o.Table
	}
	return c.Column < o.Column
}

// SchemaEdge is one undirected key-connecting edge of the schema
// graph.
type SchemaEdge struct {
	A, B ColRef
}

// Canonical returns the edge with endpoints in deterministic order.
func (e SchemaEdge) Canonical() SchemaEdge {
	if e.B.Less(e.A) {
		return SchemaEdge{A: e.B, B: e.A}
	}
	return e
}

func (e SchemaEdge) String() string { return e.A.String() + "=" + e.B.String() }

// SchemaGraph is the column-granularity graph of all semantically
// valid key linkages (PK-FK edges declared on tables, plus the FK-FK
// edges they imply: two foreign keys referencing the same column are
// joinable with each other).
type SchemaGraph struct {
	Edges []SchemaEdge
}

// BuildSchemaGraph derives the schema graph from a set of table
// schemas. FK-FK edges are added between any two columns referencing
// the same target column, as the paper's join scope includes them.
func BuildSchemaGraph(schemas []TableSchema) SchemaGraph {
	var g SchemaGraph
	seen := map[string]bool{}
	add := func(a, b ColRef) {
		e := SchemaEdge{A: a, B: b}.Canonical()
		if a == b || seen[e.String()] {
			return
		}
		seen[e.String()] = true
		g.Edges = append(g.Edges, e)
	}
	// Group all columns that reference (directly) a given target;
	// together with the target itself they form a joinable cluster.
	clusters := map[ColRef][]ColRef{}
	for _, s := range schemas {
		for _, fk := range s.ForeignKeys {
			target := ColRef{Table: strings.ToLower(fk.RefTable), Column: strings.ToLower(fk.RefColumn)}
			src := ColRef{Table: strings.ToLower(s.Name), Column: strings.ToLower(fk.Column)}
			clusters[target] = append(clusters[target], src)
		}
	}
	for target, srcs := range clusters {
		for i, a := range srcs {
			add(a, target)
			for _, b := range srcs[i+1:] {
				add(a, b)
			}
		}
	}
	return g
}

// EdgesWithin returns the edges of the graph whose endpoints both lie
// in tables from the given set (lower-cased names).
func (g SchemaGraph) EdgesWithin(tables map[string]bool) []SchemaEdge {
	var out []SchemaEdge
	for _, e := range g.Edges {
		if tables[e.A.Table] && tables[e.B.Table] {
			out = append(out, e)
		}
	}
	return out
}

// MaxFloat returns the largest representable value of a float column
// at its precision within the integral domain; used by probe
// construction.
func (c Column) MaxFloat() float64 {
	return float64(c.DomainMax()) + 1 - math.Pow10(-c.FloatPrecision())
}
