package sqldb

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV import/export lets adopters load their own instances into the
// engine (and dump extraction-silo contents for inspection). The
// format is plain RFC-4180 CSV with a header row naming the columns;
// values parse according to the table schema, with the empty string
// reading as NULL for non-text columns and the literal \N as NULL for
// text columns.

// LoadCSV reads rows into an existing table. The header row must name
// a subset (or permutation) of the table's columns; unnamed columns
// are filled with NULL.
func (db *Database) LoadCSV(table string, r io.Reader) (int, error) {
	tbl, err := db.Table(table)
	if err != nil {
		return 0, err
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("csv %s: reading header: %w", table, err)
	}
	cols := make([]int, len(header))
	for i, h := range header {
		ci := tbl.Schema.ColumnIndex(strings.TrimSpace(h))
		if ci < 0 {
			return 0, fmt.Errorf("csv %s: header names unknown column %q", table, h)
		}
		cols[i] = ci
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("csv %s: row %d: %w", table, n+1, err)
		}
		if len(rec) != len(cols) {
			return n, fmt.Errorf("csv %s: row %d has %d fields, want %d", table, n+1, len(rec), len(cols))
		}
		row := make(Row, len(tbl.Schema.Columns))
		for i := range row {
			row[i] = NewNull(tbl.Schema.Columns[i].Type)
		}
		for i, field := range rec {
			ci := cols[i]
			v, err := ParseValue(tbl.Schema.Columns[ci].Type, field)
			if err != nil {
				return n, fmt.Errorf("csv %s: row %d column %s: %w", table, n+1, tbl.Schema.Columns[ci].Name, err)
			}
			row[ci] = v
		}
		vals := make([]Value, len(row))
		copy(vals, row)
		if err := tbl.Insert(vals...); err != nil {
			return n, fmt.Errorf("csv %s: row %d: %w", table, n+1, err)
		}
		n++
	}
}

// ParseValue converts a CSV field into a value of the given type.
func ParseValue(t Type, field string) (Value, error) {
	if field == "" && t != TText {
		return NewNull(t), nil
	}
	switch t {
	case TInt:
		i, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("invalid integer %q", field)
		}
		return NewInt(i), nil
	case TFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return Value{}, fmt.Errorf("invalid number %q", field)
		}
		return NewFloat(f), nil
	case TDate:
		return DateFromString(strings.TrimSpace(field))
	case TBool:
		switch strings.ToLower(strings.TrimSpace(field)) {
		case "true", "t", "1", "yes":
			return NewBool(true), nil
		case "false", "f", "0", "no":
			return NewBool(false), nil
		default:
			return Value{}, fmt.Errorf("invalid boolean %q", field)
		}
	case TText:
		if field == `\N` {
			return NewNull(TText), nil
		}
		return NewText(field), nil
	default:
		return Value{}, fmt.Errorf("unsupported column type")
	}
}

// WriteCSV dumps a table (header plus all rows).
func (db *Database) WriteCSV(table string, w io.Writer) error {
	tbl, err := db.Table(table)
	if err != nil {
		return err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	cw := csv.NewWriter(w)
	header := make([]string, len(tbl.Schema.Columns))
	for i, c := range tbl.Schema.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, row := range tbl.Rows {
		for i, v := range row {
			rec[i] = formatCSV(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatCSV(v Value) string {
	if v.Null {
		if v.Typ == TText {
			return `\N`
		}
		return ""
	}
	return v.String()
}

// WriteResultCSV dumps a query/application result.
func WriteResultCSV(res *Result, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(res.Columns); err != nil {
		return err
	}
	rec := make([]string, len(res.Columns))
	for _, row := range res.Rows {
		for i, v := range row {
			rec[i] = formatCSV(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
