package sqldb

import (
	"math/rand"
	"testing"
)

// digestResult builds a small result fixture.
func digestResult() *Result {
	return &Result{
		Columns: []string{"name", "bal", "day"},
		Rows: []Row{
			{NewText("alice"), NewFloat(10.5), NewInt(3)},
			{NewText("bob"), NewFloat(-2.25), NewInt(7)},
			{NewText("carol"), NewNull(TFloat), NewInt(7)},
			{NewText("bob"), NewFloat(-2.25), NewInt(7)}, // duplicate row: multiset
		},
	}
}

// permuted returns a row-permuted deep copy.
func permuted(r *Result, seed int64) *Result {
	out := r.Clone()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out.Rows), func(i, j int) { out.Rows[i], out.Rows[j] = out.Rows[j], out.Rows[i] })
	return out
}

// TestDigestOrderInsensitive pins the alignment between Digest and
// result equality: permuting rows changes EqualOrdered but neither
// EqualUnordered nor the digest, while changing a value breaks both.
func TestDigestOrderInsensitive(t *testing.T) {
	base := digestResult()
	d := base.Digest()
	for seed := int64(1); seed <= 5; seed++ {
		p := permuted(base, seed)
		if !base.EqualUnordered(p) {
			t.Fatalf("seed %d: permutation broke multiset equality", seed)
		}
		if got := p.Digest(); got != d {
			t.Errorf("seed %d: digest is order-sensitive: %s vs %s", seed, got.Hex(), d.Hex())
		}
	}
	// An actually reordered result differs under ordered equality —
	// the digest must stay order-insensitive exactly there.
	swapped := base.Clone()
	swapped.Rows[0], swapped.Rows[1] = swapped.Rows[1], swapped.Rows[0]
	if base.EqualOrdered(swapped) {
		t.Fatal("fixture rows compare equal after swap; fixture too weak")
	}
	if got := swapped.Digest(); got != d {
		t.Errorf("digest changed under a pure row swap: %s vs %s", got.Hex(), d.Hex())
	}
}

// TestDigestContentSensitive: any content difference result equality
// can see must change the digest.
func TestDigestContentSensitive(t *testing.T) {
	base := digestResult()
	d := base.Digest()

	mutations := map[string]func(r *Result){
		"value changed":   func(r *Result) { r.Rows[0][2] = NewInt(4) },
		"null vs zero":    func(r *Result) { r.Rows[2][1] = NewFloat(0) },
		"row dropped":     func(r *Result) { r.Rows = r.Rows[:len(r.Rows)-1] },
		"dup multiplicty": func(r *Result) { r.Rows = append(r.Rows, r.Rows[0].Clone()) },
		"column renamed":  func(r *Result) { r.Columns[1] = "balance" },
	}
	for name, mutate := range mutations {
		m := base.Clone()
		mutate(m)
		if got := m.Digest(); got == d {
			t.Errorf("%s: digest did not change", name)
		}
	}

	// Type-tag separation inherited from the fingerprint encoding: an
	// int 0, a float 0 and the empty string must all digest apart.
	mk := func(v Value) *Result { return &Result{Columns: []string{"x"}, Rows: []Row{{v}}} }
	a, b, c := mk(NewInt(0)).Digest(), mk(NewFloat(0)).Digest(), mk(NewText("")).Digest()
	if a == b || b == c || a == c {
		t.Errorf("type tags collide: int0=%s float0=%s empty=%s", a.Hex(), b.Hex(), c.Hex())
	}
}

// TestDigestNilAndEmpty: nil digests to the zero digest; an empty
// result digests deterministically and differently from nil.
func TestDigestNilAndEmpty(t *testing.T) {
	var nilRes *Result
	if d := nilRes.Digest(); d != (ResultDigest{}) {
		t.Errorf("nil result digest = %s, want zero", d.Hex())
	}
	empty := &Result{Columns: []string{"x"}}
	if empty.Digest() == (ResultDigest{}) {
		t.Error("empty result digests to the zero digest")
	}
	if empty.Digest() != empty.Digest() {
		t.Error("digest is not deterministic")
	}
}

// TestFingerprintHex: Hex round-trips the raw bytes.
func TestFingerprintHex(t *testing.T) {
	fp := Fingerprint{0x00, 0x0f, 0xab, 0xff}
	got := fp.Hex()
	if len(got) != 2*len(fp) {
		t.Fatalf("hex length %d", len(got))
	}
	if got[:8] != "000fabff" {
		t.Errorf("hex prefix = %q, want 000fabff", got[:8])
	}
}
