package sqldb

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"sort"
)

// ResultDigest is a content hash over a query/application result.
// The probe ledger records one per executable invocation so a stored
// trace can prove what every probe observed without retaining the
// rows themselves.
type ResultDigest [sha256.Size]byte

// Hex renders the digest as lower-case hex.
func (d ResultDigest) Hex() string { return hex.EncodeToString(d[:]) }

// Digest computes the content hash of the result: the column names,
// the empty-aggregate marker, and the multiset of rows. Rows are
// canonicalised with the same type-tagged value encoding as
// Database.Fingerprint (a NULL, an int 0 and an empty string all hash
// differently) and then sorted bytewise, so the digest is
// deliberately insensitive to row order — exactly like the
// extractor's result equality (EqualUnordered), which compares row
// multisets because only explicitly ordered queries pin a physical
// order. Unlike EqualUnordered, the digest hashes exact values (no
// float tolerance) and covers column names: it identifies content,
// not equivalence classes.
//
// A nil result digests to the zero digest.
func (r *Result) Digest() ResultDigest {
	var out ResultDigest
	if r == nil {
		return out
	}
	h := sha256.New()
	c := &canonWriter{w: h}
	c.writeInt(int64(len(r.Columns)))
	for _, col := range r.Columns {
		c.writeStr(col)
	}
	if r.aggEmptyInput {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	// Canonical row encoding: each row is framed into its own buffer,
	// then the frames are sorted — a multiset hash.
	frames := make([][]byte, len(r.Rows))
	for i, row := range r.Rows {
		var buf bytes.Buffer
		rc := &canonWriter{w: &buf}
		rc.writeInt(int64(len(row)))
		for _, v := range row {
			rc.writeValue(v)
		}
		frames[i] = buf.Bytes()
	}
	sort.Slice(frames, func(i, j int) bool { return bytes.Compare(frames[i], frames[j]) < 0 })
	c.writeInt(int64(len(frames)))
	for _, f := range frames {
		c.writeInt(int64(len(f)))
		h.Write(f)
	}
	h.Sum(out[:0])
	return out
}
