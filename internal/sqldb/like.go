package sqldb

// LikeMatch implements SQL LIKE matching over the pattern wildcards
// '%' (any sequence, including empty) and '_' (exactly one character).
// Matching is byte-oriented and case-sensitive, as in PostgreSQL.
//
// The implementation is the classic two-pointer greedy algorithm with
// backtracking to the most recent '%', which runs in O(len(s) *
// number-of-%-segments) worst case and O(len(s)) typically.
func LikeMatch(pattern, s string) bool {
	var (
		p, i  int  // cursors into pattern and s
		starP = -1 // pattern index just after the last '%'
		starI = -1 // s index to resume from on backtrack
	)
	for i < len(s) {
		switch {
		// '%' must be tested before the literal match: when s itself
		// contains a '%' byte, matching it literally against the
		// pattern's wildcard would consume the wildcard without
		// recording a backtrack point.
		case p < len(pattern) && pattern[p] == '%':
			starP = p + 1
			starI = i
			p++
		case p < len(pattern) && (pattern[p] == '_' || pattern[p] == s[i]):
			p++
			i++
		case starP >= 0:
			// Backtrack: let the last '%' absorb one more byte.
			starI++
			i = starI
			p = starP
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '%' {
		p++
	}
	return p == len(pattern)
}

// StripPercent removes every '%' from a LIKE pattern, yielding the
// paper's Minimal Qualifying String (MQS). '_' wildcards remain, as
// they each consume exactly one character.
func StripPercent(pattern string) string {
	out := make([]byte, 0, len(pattern))
	for i := 0; i < len(pattern); i++ {
		if pattern[i] != '%' {
			out = append(out, pattern[i])
		}
	}
	return string(out)
}
