package sqldb_test

// parity_test.go — cross-engine invariants beyond result equality:
// the cancellation cost model must charge the same tick total in both
// exec modes (so timeouts behave identically regardless of engine or
// index cache state), and ORDER BY tie-breaking must be byte-stable
// across engines, repeated runs, concurrency, and the top-K
// short-circuit.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
)

// tickDelta executes sql on db under the given mode and returns the
// CtxTicks the run charged.
func tickDelta(t *testing.T, db *sqldb.Database, mode sqldb.ExecMode, sql string) int64 {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	db.SetExecMode(mode)
	before := db.EngineCounters().CtxTicks
	if _, err := db.Execute(context.Background(), stmt); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return db.EngineCounters().CtxTicks - before
}

// TestCtxTickParityAcrossModes pins the residual-stage (and every
// other stage's) tick accounting: both engines must charge the same
// cancellation ticks for the same statement, covering scan, indexed
// scan, hash join, cross product, residual predicates, aggregation,
// projection, ordering and limits. Equal tick totals are what make
// timeout behaviour independent of the exec mode.
func TestCtxTickParityAcrossModes(t *testing.T) {
	db := edgeDB(t)
	queries := []string{
		"select id from t",
		"select id from t where id = 17",
		"select id from t where id between 8 and 22",
		"select id from t where v > 2.0 and b",
		"select t.id, u.w from t, u where t.id = u.fk",
		"select t.id, u.w from t, u where t.id = u.fk and t.id + u.w > 6",
		"select t.id, u.w from t, u where t.id < 3 and u.w < 1",
		"select grp, count(id), sum(v) from t group by grp",
		"select grp, count(id) from t group by grp having count(id) > 5",
		"select id, v from t order by v desc, id",
		"select id from t order by id desc limit 7",
		"select x from e",
		"select grp, count(distinct s) from t group by grp order by grp limit 2",
	}
	for _, sql := range queries {
		treeTicks := tickDelta(t, db, sqldb.ExecTree, sql)
		vecTicks := tickDelta(t, db, sqldb.ExecVector, sql)
		if treeTicks != vecTicks {
			t.Errorf("tick accounting diverges for %q: tree=%d vector=%d", sql, treeTicks, vecTicks)
		}
		// Re-run under vector: cached indexes and build sides must not
		// change the charge (ticks follow logical rows, not work done).
		if again := tickDelta(t, db, sqldb.ExecVector, sql); again != vecTicks {
			t.Errorf("vector ticks unstable for %q: first=%d cached=%d", sql, vecTicks, again)
		}
	}
}

// tieDB builds a table dominated by duplicate sort keys: 120 rows over
// 3 grp values and 4 words, with NULLs in both tie-prone columns.
func tieDB(t *testing.T) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	if err := db.CreateTable(sqldb.TableSchema{Name: "r", Columns: []sqldb.Column{
		{Name: "id", Type: sqldb.TInt},
		{Name: "grp", Type: sqldb.TInt},
		{Name: "w", Type: sqldb.TText},
	}}); err != nil {
		t.Fatal(err)
	}
	words := []string{"aa", "bb", "cc", "aa"}
	for i := 0; i < 120; i++ {
		g := sqldb.NewInt(int64(i % 3))
		if i%13 == 7 {
			g = sqldb.NewNull(sqldb.TInt)
		}
		w := sqldb.NewText(words[i%len(words)])
		if i%11 == 4 {
			w = sqldb.NewNull(sqldb.TText)
		}
		if err := db.Insert("r", sqldb.NewInt(int64(i)), g, w); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestOrderingDeterministicAcrossModesAndWorkers pins satellite
// ordering determinism: heavily tied ORDER BY output must be
// byte-identical across exec modes, across worker counts (concurrent
// executions sharing one database's caches), and the top-K LIMIT path
// must return exactly the full sort's prefix.
func TestOrderingDeterministicAcrossModesAndWorkers(t *testing.T) {
	db := tieDB(t)
	queries := []string{
		"select grp, w, id from r order by grp",
		"select grp, w, id from r order by grp desc, w",
		"select grp, w, id from r order by w, grp desc",
	}
	for _, sql := range queries {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		db.SetExecMode(sqldb.ExecTree)
		ref, err := db.Execute(context.Background(), stmt)
		if err != nil {
			t.Fatal(err)
		}
		refStr := ref.String()

		for _, workers := range []int{1, 4, 8} {
			for _, mode := range []sqldb.ExecMode{sqldb.ExecTree, sqldb.ExecVector} {
				db.SetExecMode(mode)
				got := make([]string, workers)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						res, err := db.Execute(context.Background(), stmt)
						if err != nil {
							got[w] = fmt.Sprintf("error: %v", err)
							return
						}
						got[w] = res.String()
					}(w)
				}
				wg.Wait()
				for w, g := range got {
					if g != refStr {
						t.Fatalf("%q: mode=%v workers=%d worker %d diverges from reference:\n%s\nvs\n%s",
							sql, mode, workers, w, g, refStr)
					}
				}
			}
		}

		// Top-K short-circuit: the LIMIT-k result must equal the full
		// sort truncated to k, for both engines, at several k.
		for _, k := range []int{1, 5, 37, 120, 500} {
			limited, err := sqlparser.Parse(fmt.Sprintf("%s limit %d", sql, k))
			if err != nil {
				t.Fatal(err)
			}
			wantRows := ref.Rows
			if k < len(wantRows) {
				wantRows = wantRows[:k]
			}
			want := (&sqldb.Result{Columns: ref.Columns, Rows: wantRows}).String()
			for _, mode := range []sqldb.ExecMode{sqldb.ExecTree, sqldb.ExecVector} {
				db.SetExecMode(mode)
				res, err := db.Execute(context.Background(), limited)
				if err != nil {
					t.Fatal(err)
				}
				if res.String() != want {
					t.Fatalf("%q limit %d under %v diverges from sort-then-truncate:\n%s\nvs\n%s",
						sql, k, mode, res, want)
				}
			}
		}
	}
}
