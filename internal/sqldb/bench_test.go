package sqldb_test

// Micro-benchmarks of the engine primitives the extraction pipeline
// leans on: filtered scans, hash equi-joins, hash aggregation and the
// LIKE matcher. These bound the per-probe cost that Figures 9-11
// aggregate.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
)

func benchDB(b *testing.B, rows int) *sqldb.Database {
	b.Helper()
	db := sqldb.NewDatabase()
	if err := db.CreateTable(sqldb.TableSchema{
		Name: "dim",
		Columns: []sqldb.Column{
			{Name: "dk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "dname", Type: sqldb.TText, MaxLen: 20},
		},
		PrimaryKey: []string{"dk"},
	}); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateTable(sqldb.TableSchema{
		Name: "fact",
		Columns: []sqldb.Column{
			{Name: "fk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			{Name: "val", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 10000},
			{Name: "cat", Type: sqldb.TText, MaxLen: 12},
		},
		ForeignKeys: []sqldb.ForeignKey{{Column: "fk", RefTable: "dim", RefColumn: "dk"}},
	}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	dim, _ := db.Table("dim")
	fact, _ := db.Table("fact")
	nDim := rows / 10
	if nDim < 1 {
		nDim = 1
	}
	for d := 1; d <= nDim; d++ {
		dim.MustInsert(sqldb.NewInt(int64(d)), sqldb.NewText(fmt.Sprintf("dim%d", d)))
	}
	cats := []string{"alpha", "beta", "gamma", "delta"}
	for f := 0; f < rows; f++ {
		fact.MustInsert(
			sqldb.NewInt(int64(1+rng.Intn(nDim))),
			sqldb.NewFloat(float64(rng.Intn(1000000))/100),
			sqldb.NewText(cats[rng.Intn(len(cats))]))
	}
	return db
}

func benchQuery(b *testing.B, rows int, sql string) {
	b.Helper()
	db := benchDB(b, rows)
	stmt := sqlparser.MustParse(sql)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(context.Background(), stmt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows)/1e3, "krows")
}

func BenchmarkEngineFilteredScan(b *testing.B) {
	benchQuery(b, 50000, "select val from fact where val >= 5000")
}

func BenchmarkEngineHashJoin(b *testing.B) {
	benchQuery(b, 50000, "select dname, val from dim, fact where dk = fk")
}

func BenchmarkEngineGroupAggregate(b *testing.B) {
	benchQuery(b, 50000, "select cat, count(*) as n, sum(val) as s, avg(val) as a from fact group by cat")
}

func BenchmarkEngineOrderLimit(b *testing.B) {
	benchQuery(b, 50000, "select val from fact order by val desc limit 10")
}

func BenchmarkEngineLikeFilter(b *testing.B) {
	benchQuery(b, 50000, "select cat from fact where cat like '%amm%'")
}

func BenchmarkLikeMatch(b *testing.B) {
	pattern, subject := "%spec_al%req%", "these are the special frequent requests"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sqldb.LikeMatch(pattern, subject) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkDatabaseClone(b *testing.B) {
	db := benchDB(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.Clone()
	}
}
