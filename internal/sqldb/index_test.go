package sqldb

// index_test.go — property tests for the secondary hash indexes and
// the join-build cache: lookups must agree with a full scan across
// arbitrary mutation sequences, caches must survive SnapshotRows /
// SetRows round-trips through invalidation, and clones must never
// share mutable index state.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// newIndexTestTable builds a table with enough rows to clear
// indexMinRows, with NULLs sprinkled into the key column.
func newIndexTestTable(t *testing.T, n int, rng *rand.Rand) *Table {
	t.Helper()
	tbl := NewTable(TableSchema{Name: "p", Columns: []Column{
		{Name: "k", Type: TInt},
		{Name: "w", Type: TInt},
	}})
	for i := 0; i < n; i++ {
		k := NewInt(rng.Int63n(10))
		if rng.Intn(8) == 0 {
			k = NewNull(TInt)
		}
		if err := tbl.Insert(k, NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// scanLookup is the oracle: the row ids a sequential scan keeps for
// `col-ci = key`.
func scanLookup(tbl *Table, ci int, key string) []int32 {
	var ids []int32
	for ri, row := range tbl.Rows {
		if !row[ci].Null && row[ci].GroupKey() == key {
			ids = append(ids, int32(ri))
		}
	}
	return ids
}

func idsMatch(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAllKeys compares pointLookup against the scan oracle for every
// key value in the domain plus an absent one.
func checkAllKeys(t *testing.T, tbl *Table, es *EngineStats, step string) {
	t.Helper()
	for k := int64(0); k <= 10; k++ {
		key := NewInt(k).GroupKey()
		got := tbl.pointLookup(0, key, es)
		want := scanLookup(tbl, 0, key)
		if !idsMatch(got, want) {
			t.Fatalf("%s: key %d: pointLookup=%v scan=%v", step, k, got, want)
		}
	}
}

// TestIndexMatchesScanUnderMutation drives a random mutation sequence
// and re-validates every lookup after each step.
func TestIndexMatchesScanUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tbl := newIndexTestTable(t, 64, rng)
	es := &EngineStats{}
	checkAllKeys(t, tbl, es, "initial")
	for step := 0; step < 200; step++ {
		switch rng.Intn(7) {
		case 0:
			if err := tbl.Insert(NewInt(rng.Int63n(10)), NewInt(int64(step))); err != nil {
				t.Fatal(err)
			}
		case 1:
			if len(tbl.Rows) > 0 {
				if err := tbl.Set(rng.Intn(len(tbl.Rows)), "k", NewInt(rng.Int63n(10))); err != nil {
					t.Fatal(err)
				}
			}
		case 2:
			if len(tbl.Rows) > 0 {
				if err := tbl.Set(rng.Intn(len(tbl.Rows)), "k", NewNull(TInt)); err != nil {
					t.Fatal(err)
				}
			}
		case 3:
			if len(tbl.Rows) > 1 {
				if err := tbl.DeleteRow(rng.Intn(len(tbl.Rows))); err != nil {
					t.Fatal(err)
				}
			}
		case 4:
			if len(tbl.Rows) > 0 {
				if _, err := tbl.AppendRowCopy(rng.Intn(len(tbl.Rows))); err != nil {
					t.Fatal(err)
				}
			}
		case 5:
			// Mutating the non-key column must leave the key index
			// valid (per-column invalidation).
			if err := tbl.SetAll("w", NewInt(rng.Int63n(5))); err != nil {
				t.Fatal(err)
			}
		default:
			if len(tbl.Rows) > 8 {
				lo := rng.Intn(4)
				if err := tbl.KeepRange(lo, lo+rng.Intn(len(tbl.Rows)-lo)); err != nil {
					t.Fatal(err)
				}
			}
		}
		checkAllKeys(t, tbl, es, fmt.Sprintf("step %d", step))
	}
}

// TestIndexSurvivesSetRowsRoundTrip exercises the SnapshotRows /
// SetRows pattern the minimizer uses: the index must be invalidated
// by SetRows and rebuilt correctly against the restored rows.
func TestIndexSurvivesSetRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := newIndexTestTable(t, 48, rng)
	es := &EngineStats{}
	checkAllKeys(t, tbl, es, "before snapshot")

	snap := tbl.SnapshotRows()
	if err := tbl.KeepRange(0, 4); err != nil {
		t.Fatal(err)
	}
	checkAllKeys(t, tbl, es, "after KeepRange")

	tbl.SetRows(snap)
	checkAllKeys(t, tbl, es, "after restore")
	if got, want := tbl.RowCount(), len(snap); got != want {
		t.Fatalf("restored %d rows, want %d", got, want)
	}
}

// TestCloneIndexIsolation asserts clones never share mutable index
// state: a clone starts with no caches, and mutating either side
// leaves the other side's lookups consistent with its own rows.
func TestCloneIndexIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := newIndexTestTable(t, 32, rng)
	es := &EngineStats{}
	checkAllKeys(t, tbl, es, "warm original") // builds the index

	cl := tbl.Clone()
	if cl.indexes != nil || cl.builds != nil {
		t.Fatal("clone inherited index/build caches")
	}
	if err := cl.SetAll("k", NewInt(3)); err != nil {
		t.Fatal(err)
	}
	checkAllKeys(t, cl, es, "mutated clone")
	checkAllKeys(t, tbl, es, "original after clone mutation")

	// CloneShared shares row storage but must not share caches either.
	db := NewDatabase()
	if err := db.CreateTable(TableSchema{Name: "p", Columns: []Column{
		{Name: "k", Type: TInt}, {Name: "w", Type: TInt},
	}}); err != nil {
		t.Fatal(err)
	}
	orig, _ := db.Table("p")
	for i := 0; i < 32; i++ {
		orig.MustInsert(NewInt(int64(i%6)), NewInt(int64(i)))
	}
	checkAllKeys(t, orig, db.estats, "warm shared original")
	shared := db.CloneShared()
	st, _ := shared.Table("p")
	if st.indexes != nil || st.builds != nil {
		t.Fatal("CloneShared table inherited index/build caches")
	}
	st.SetRows(append([]Row{}, orig.Rows[:8]...))
	checkAllKeys(t, st, shared.estats, "shared clone after SetRows")
	checkAllKeys(t, orig, db.estats, "shared original")
}

// TestConcurrentPointLookup hammers the lazy build path from many
// goroutines (run under -race by CI): concurrent first lookups must
// serialize the build and all return scan-consistent results.
func TestConcurrentPointLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tbl := newIndexTestTable(t, 128, rng)
	es := &EngineStats{}
	want := map[int64][]int32{}
	for k := int64(0); k < 10; k++ {
		want[k] = scanLookup(tbl, 0, NewInt(k).GroupKey())
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := int64(0); k < 10; k++ {
				got := tbl.pointLookup(0, NewInt(k).GroupKey(), es)
				if !idsMatch(got, want[k]) {
					errs <- fmt.Errorf("goroutine %d key %d: got %v want %v", g, k, got, want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if b := es.IndexBuilds.Load(); b != 1 {
		t.Fatalf("index built %d times under concurrency, want 1", b)
	}
}

// TestIndexPerColumnInvalidation pins the counter behavior: touching
// another column keeps the index (hits keep accruing, no rebuild);
// touching the indexed column forces exactly one rebuild.
func TestIndexPerColumnInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tbl := newIndexTestTable(t, 32, rng)
	es := &EngineStats{}
	key := NewInt(1).GroupKey()

	tbl.pointLookup(0, key, es)
	if got := es.IndexBuilds.Load(); got != 1 {
		t.Fatalf("builds=%d after first lookup, want 1", got)
	}
	if err := tbl.SetAll("w", NewInt(7)); err != nil {
		t.Fatal(err)
	}
	tbl.pointLookup(0, key, es)
	if got := es.IndexBuilds.Load(); got != 1 {
		t.Fatalf("builds=%d after non-key mutation, want 1 (index should survive)", got)
	}
	if got := es.IndexHits.Load(); got == 0 {
		t.Fatal("expected index hits to accrue")
	}
	if err := tbl.SetAll("k", NewInt(2)); err != nil {
		t.Fatal(err)
	}
	tbl.pointLookup(0, key, es)
	if got := es.IndexBuilds.Load(); got != 2 {
		t.Fatalf("builds=%d after key mutation, want 2 (rebuild)", got)
	}
}

// TestJoinBuildCache pins build-side reuse: identical (cols, sel)
// pairs hit the cache, different selections rebuild, and the FIFO cap
// bounds retained builds.
func TestJoinBuildCache(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tbl := newIndexTestTable(t, 40, rng)
	es := &EngineStats{}
	sel := make([]int32, tbl.RowCount())
	for i := range sel {
		sel[i] = int32(i)
	}
	b1 := tbl.joinBuildFor([]int{0}, sel, es)
	if got := es.JoinBuilds.Load(); got != 1 {
		t.Fatalf("builds=%d, want 1", got)
	}
	b2 := tbl.joinBuildFor([]int{0}, sel, es)
	if got := es.JoinReuses.Load(); got != 1 {
		t.Fatalf("reuses=%d, want 1", got)
	}
	if len(b1) != len(b2) {
		t.Fatalf("cached build differs: %d vs %d buckets", len(b1), len(b2))
	}
	// A different selection must not hit the cache.
	tbl.joinBuildFor([]int{0}, sel[:10], es)
	if got := es.JoinReuses.Load(); got != 1 {
		t.Fatalf("reuses=%d after different sel, want 1", got)
	}
	// Build map contents agree with a scan.
	for k := int64(0); k < 10; k++ {
		key := NewInt(k).GroupKey() + "|"
		if !idsMatch(b1[key], scanLookup(tbl, 0, NewInt(k).GroupKey())) {
			t.Fatalf("build bucket for key %d disagrees with scan", k)
		}
	}
	// FIFO cap: many distinct selections never grow past maxJoinBuilds.
	for i := 0; i < 3*maxJoinBuilds; i++ {
		tbl.joinBuildFor([]int{0}, sel[:1+i%20], es)
	}
	tbl.idxMu.Lock()
	n := len(tbl.builds)
	tbl.idxMu.Unlock()
	if n > maxJoinBuilds {
		t.Fatalf("build cache holds %d entries, cap is %d", n, maxJoinBuilds)
	}
}

// TestExecModeKnob pins the mode surface: parsing, stringing, the
// database getter/setter and counter snapshots.
func TestExecModeKnob(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ExecMode
		ok   bool
	}{
		{"", ExecVector, true},
		{"vector", ExecVector, true},
		{"tree", ExecTree, true},
		{"columnar", ExecVector, false},
	} {
		got, err := ParseExecMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseExecMode(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if ExecVector.String() != "vector" || ExecTree.String() != "tree" {
		t.Fatalf("mode strings: %q/%q", ExecVector, ExecTree)
	}
	db := NewDatabase()
	if db.ExecMode() != ExecVector {
		t.Fatal("default mode is not vector")
	}
	db.SetExecMode(ExecTree)
	if db.ExecMode() != ExecTree {
		t.Fatal("SetExecMode did not take")
	}
	if db.Clone().ExecMode() != ExecTree {
		t.Fatal("clone did not inherit the exec mode")
	}
	c := db.EngineCounters()
	if c.IndexBuilds != 0 || c.VectorQueries != 0 {
		t.Fatalf("fresh database has nonzero counters: %+v", c)
	}
}

// TestBuildCacheColumnInvalidation pins invalidateColumn against the
// build cache: mutating a key column drops the builds using it,
// mutating another column keeps them.
func TestBuildCacheColumnInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tbl := newIndexTestTable(t, 40, rng)
	es := &EngineStats{}
	sel := make([]int32, tbl.RowCount())
	for i := range sel {
		sel[i] = int32(i)
	}
	tbl.joinBuildFor([]int{0}, sel, es)
	if err := tbl.SetAll("w", NewInt(9)); err != nil { // column 1: build on column 0 survives
		t.Fatal(err)
	}
	tbl.joinBuildFor([]int{0}, sel, es)
	if got := es.JoinReuses.Load(); got != 1 {
		t.Fatalf("reuses=%d after non-key mutation, want 1", got)
	}
	if err := tbl.SetAll("k", NewInt(9)); err != nil { // column 0: build dropped
		t.Fatal(err)
	}
	tbl.joinBuildFor([]int{0}, sel, es)
	if got := es.JoinBuilds.Load(); got != 2 {
		t.Fatalf("builds=%d after key mutation, want 2", got)
	}
	// Same length, different ids: elementwise comparison must miss.
	sel2 := append([]int32(nil), sel...)
	sel2[len(sel2)-1] = sel2[0]
	tbl.joinBuildFor([]int{0}, sel2, es)
	if got := es.JoinBuilds.Load(); got != 3 {
		t.Fatalf("builds=%d after permuted sel, want 3", got)
	}
}

// TestExecutionSurvivesCloneStmt is the regression test for the
// pointer-identity resolution bug: an execution compiled from one
// statement must evaluate a structurally equal clone (all-new
// expression pointers) identically under both engines. Keying
// resolution maps on *ColumnExpr identity broke this.
func TestExecutionSurvivesCloneStmt(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	db := NewDatabase()
	if err := db.CreateTable(TableSchema{Name: "p", Columns: []Column{
		{Name: "k", Type: TInt}, {Name: "w", Type: TInt},
	}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := db.Insert("p", NewInt(rng.Int63n(6)), NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	stmt := &SelectStmt{
		Items: []SelectItem{
			{Expr: Col("p", "k")},
			{Expr: &AggExpr{Fn: AggSum, Arg: Col("p", "w")}, Alias: "tot"},
		},
		From:    []string{"p"},
		Where:   Bin(OpGe, Col("p", "w"), Lit(NewInt(3))),
		GroupBy: []Expr{Col("p", "k")},
		Having:  Bin(OpGt, &AggExpr{Fn: AggCount, Arg: Col("p", "w")}, Lit(NewInt(1))),
		OrderBy: []OrderKey{{Expr: Col("p", "k")}},
	}
	ctx := context.Background()
	want, err := db.Execute(ctx, stmt)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ExecMode{ExecTree, ExecVector} {
		ex, err := newExecution(db, stmt)
		if err != nil {
			t.Fatal(err)
		}
		// Swap in a deep clone: every expression node is a fresh
		// pointer, so any pointer-keyed resolution state is useless
		// and name-based resolution must carry the run.
		ex.stmt = CloneStmt(stmt)
		var got *Result
		var ticks int
		if mode == ExecTree {
			got, err = ex.runTree(ctx, &ticks)
		} else {
			got, err = ex.runVector(ctx, &ticks)
		}
		if err != nil {
			t.Fatalf("%s: execution over cloned statement failed: %v", mode, err)
		}
		if got.Digest() != want.Digest() {
			t.Fatalf("%s: cloned-statement digest %s != original %s", mode, got.Digest().Hex(), want.Digest().Hex())
		}
	}
}
