package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpInvalid BinOp = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// String returns the SQL spelling of the operator.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	default:
		return "?op?"
	}
}

// IsComparison reports whether the operator yields a boolean from two
// scalar operands.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// AggFn enumerates the aggregate functions.
type AggFn uint8

const (
	AggNone AggFn = iota
	AggMin
	AggMax
	AggCount
	AggSum
	AggAvg
)

// String returns the SQL name of the aggregate.
func (a AggFn) String() string {
	switch a {
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	default:
		return "?agg?"
	}
}

// AggFnFromName parses an aggregate name; AggNone when unknown.
func AggFnFromName(s string) AggFn {
	switch strings.ToLower(s) {
	case "min":
		return AggMin
	case "max":
		return AggMax
	case "count":
		return AggCount
	case "sum":
		return AggSum
	case "avg":
		return AggAvg
	default:
		return AggNone
	}
}

// AllAggFns lists the five basic aggregates in canonical order.
var AllAggFns = []AggFn{AggMin, AggMax, AggCount, AggSum, AggAvg}

// Expr is a scalar or boolean expression tree node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColumnExpr references a column, optionally table-qualified.
type ColumnExpr struct {
	Table  string // may be empty (unqualified)
	Column string
}

func (*ColumnExpr) exprNode() {}

func (e *ColumnExpr) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Column
	}
	return e.Column
}

// Ref returns the fully qualified reference; only valid after
// resolution has filled Table.
func (e *ColumnExpr) Ref() ColRef { return ColRef{Table: e.Table, Column: e.Column} }

// Col is shorthand for a qualified column expression.
func Col(table, column string) *ColumnExpr {
	return &ColumnExpr{Table: strings.ToLower(table), Column: strings.ToLower(column)}
}

// LiteralExpr is a constant value.
type LiteralExpr struct{ Val Value }

func (*LiteralExpr) exprNode() {}

func (e *LiteralExpr) String() string { return e.Val.SQLLiteral() }

// Lit wraps a value as a literal expression.
func Lit(v Value) *LiteralExpr { return &LiteralExpr{Val: v} }

// BinaryExpr combines two operands with an operator.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
}

func (*BinaryExpr) exprNode() {}

func (e *BinaryExpr) String() string {
	ls, rs := operandString(e.L, e.Op), operandString(e.R, e.Op)
	if e.Op == OpAnd || e.Op == OpOr {
		return fmt.Sprintf("%s %s %s", ls, e.Op, rs)
	}
	return fmt.Sprintf("%s %s %s", ls, e.Op, rs)
}

// operandString parenthesizes operands whose top-level operator binds
// more loosely than the parent.
func operandString(e Expr, parent BinOp) string {
	b, ok := e.(*BinaryExpr)
	if !ok {
		return e.String()
	}
	if prec(b.Op) < prec(parent) {
		return "(" + b.String() + ")"
	}
	return b.String()
}

func prec(op BinOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 3
	case OpAdd, OpSub:
		return 4
	case OpMul, OpDiv:
		return 5
	default:
		return 6
	}
}

// Bin builds a binary expression.
func Bin(op BinOp, l, r Expr) *BinaryExpr { return &BinaryExpr{Op: op, L: l, R: r} }

// NegExpr is unary arithmetic negation.
type NegExpr struct{ X Expr }

func (*NegExpr) exprNode() {}

func (e *NegExpr) String() string { return "-" + e.X.String() }

// NotExpr is boolean negation.
type NotExpr struct{ X Expr }

func (*NotExpr) exprNode() {}

func (e *NotExpr) String() string { return "not (" + e.X.String() + ")" }

// BetweenExpr is x between lo and hi (inclusive).
type BetweenExpr struct {
	X, Lo, Hi Expr
}

func (*BetweenExpr) exprNode() {}

func (e *BetweenExpr) String() string {
	return fmt.Sprintf("%s between %s and %s", e.X, e.Lo, e.Hi)
}

// LikeExpr is x like 'pattern' with SQL wildcards % and _.
type LikeExpr struct {
	X       Expr
	Pattern string
	Not     bool
}

func (*LikeExpr) exprNode() {}

func (e *LikeExpr) String() string {
	op := "like"
	if e.Not {
		op = "not like"
	}
	return fmt.Sprintf("%s %s '%s'", e.X, op, escapeSQLString(e.Pattern))
}

// IsNullExpr is x is [not] null.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) exprNode() {}

func (e *IsNullExpr) String() string {
	if e.Not {
		return fmt.Sprintf("%s is not null", e.X)
	}
	return fmt.Sprintf("%s is null", e.X)
}

// AggExpr is an aggregate invocation: fn(arg) or count(*) (Star).
type AggExpr struct {
	Fn       AggFn
	Arg      Expr // nil iff Star
	Star     bool
	Distinct bool
}

func (*AggExpr) exprNode() {}

func (e *AggExpr) String() string {
	if e.Star {
		return "count(*)"
	}
	d := ""
	if e.Distinct {
		d = "distinct "
	}
	return fmt.Sprintf("%s(%s%s)", e.Fn, d, e.Arg)
}

// SelectItem is one projection with an optional output alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OutputName is the result column name: the alias if present,
// otherwise a name derived from the expression.
func (si SelectItem) OutputName() string {
	if si.Alias != "" {
		return si.Alias
	}
	if c, ok := si.Expr.(*ColumnExpr); ok {
		return c.Column
	}
	if a, ok := si.Expr.(*AggExpr); ok {
		return a.Fn.String()
	}
	return "?column?"
}

func (si SelectItem) String() string {
	if si.Alias != "" {
		return fmt.Sprintf("%s as %s", si.Expr, si.Alias)
	}
	return si.Expr.String()
}

// OrderKey is one ORDER BY entry.
type OrderKey struct {
	Expr Expr
	Desc bool
}

func (k OrderKey) String() string {
	if k.Desc {
		return k.Expr.String() + " desc"
	}
	return k.Expr.String() + " asc"
}

// SelectStmt is a single-block query — the only query form this
// engine supports, matching the paper's EQC scope.
type SelectStmt struct {
	Items   []SelectItem
	From    []string
	Where   Expr // nil means no predicate
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderKey
	Limit   int64 // <=0 means no limit
}

// String renders the statement as canonical SQL.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("select ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString("\nfrom ")
	b.WriteString(strings.Join(s.From, ", "))
	if s.Where != nil {
		b.WriteString("\nwhere ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		b.WriteString("\ngroup by ")
		b.WriteString(strings.Join(parts, ", "))
	}
	if s.Having != nil {
		b.WriteString("\nhaving ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, k := range s.OrderBy {
			parts[i] = k.String()
		}
		b.WriteString("\norder by ")
		b.WriteString(strings.Join(parts, ", "))
	}
	if s.Limit > 0 {
		b.WriteString("\nlimit ")
		b.WriteString(strconv.FormatInt(s.Limit, 10))
	}
	b.WriteString(";")
	return b.String()
}

// Conjuncts splits a predicate tree into its top-level AND conjuncts.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll combines expressions with AND; nil when the list is empty.
func AndAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = Bin(OpAnd, out, e)
		}
	}
	return out
}

// HasAggregate reports whether the expression tree contains an
// aggregate invocation.
func HasAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *AggExpr:
		return true
	case *BinaryExpr:
		return HasAggregate(x.L) || HasAggregate(x.R)
	case *NegExpr:
		return HasAggregate(x.X)
	case *NotExpr:
		return HasAggregate(x.X)
	case *BetweenExpr:
		return HasAggregate(x.X) || HasAggregate(x.Lo) || HasAggregate(x.Hi)
	case *LikeExpr:
		return HasAggregate(x.X)
	case *IsNullExpr:
		return HasAggregate(x.X)
	default:
		return false
	}
}

// ColumnsOf collects every column reference in the expression tree.
func ColumnsOf(e Expr) []*ColumnExpr {
	var out []*ColumnExpr
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *ColumnExpr:
			out = append(out, x)
		case *BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *NegExpr:
			walk(x.X)
		case *NotExpr:
			walk(x.X)
		case *BetweenExpr:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *LikeExpr:
			walk(x.X)
		case *IsNullExpr:
			walk(x.X)
		case *AggExpr:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	walk(e)
	return out
}
