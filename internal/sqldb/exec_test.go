package sqldb_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
)

// miniDB builds a three-table warehouse fixture:
//
//	customer(c_custkey PK, c_name, c_mktsegment, c_acctbal)
//	orders(o_orderkey PK, o_custkey FK, o_orderdate, o_totalprice, o_shippriority)
//	lineitem(l_orderkey FK, l_linenumber, l_extendedprice, l_discount, l_shipdate)
func miniDB(t *testing.T) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.CreateTable(sqldb.TableSchema{
		Name: "customer",
		Columns: []sqldb.Column{
			{Name: "c_custkey", Type: sqldb.TInt},
			{Name: "c_name", Type: sqldb.TText},
			{Name: "c_mktsegment", Type: sqldb.TText, MaxLen: 10},
			{Name: "c_acctbal", Type: sqldb.TFloat, Precision: 2},
		},
		PrimaryKey: []string{"c_custkey"},
	}))
	must(db.CreateTable(sqldb.TableSchema{
		Name: "orders",
		Columns: []sqldb.Column{
			{Name: "o_orderkey", Type: sqldb.TInt},
			{Name: "o_custkey", Type: sqldb.TInt},
			{Name: "o_orderdate", Type: sqldb.TDate},
			{Name: "o_totalprice", Type: sqldb.TFloat, Precision: 2},
			{Name: "o_shippriority", Type: sqldb.TInt},
		},
		PrimaryKey:  []string{"o_orderkey"},
		ForeignKeys: []sqldb.ForeignKey{{Column: "o_custkey", RefTable: "customer", RefColumn: "c_custkey"}},
	}))
	must(db.CreateTable(sqldb.TableSchema{
		Name: "lineitem",
		Columns: []sqldb.Column{
			{Name: "l_orderkey", Type: sqldb.TInt},
			{Name: "l_linenumber", Type: sqldb.TInt},
			{Name: "l_extendedprice", Type: sqldb.TFloat, Precision: 2},
			{Name: "l_discount", Type: sqldb.TFloat, Precision: 2},
			{Name: "l_shipdate", Type: sqldb.TDate},
		},
		ForeignKeys: []sqldb.ForeignKey{{Column: "l_orderkey", RefTable: "orders", RefColumn: "o_orderkey"}},
	}))

	i, f, s, d := sqldb.NewInt, sqldb.NewFloat, sqldb.NewText, sqldb.MustDate
	must(db.Insert("customer", i(1), s("alice"), s("BUILDING"), f(100.50)))
	must(db.Insert("customer", i(2), s("bob"), s("AUTOMOBILE"), f(-50.25)))
	must(db.Insert("customer", i(3), s("carol"), s("BUILDING"), f(900.00)))
	must(db.Insert("orders", i(10), i(1), d("1995-03-01"), f(1000), i(0)))
	must(db.Insert("orders", i(11), i(2), d("1995-03-10"), f(2000), i(1)))
	must(db.Insert("orders", i(12), i(3), d("1995-04-01"), f(3000), i(0)))
	must(db.Insert("orders", i(13), i(1), d("1995-02-01"), f(500), i(2)))
	must(db.Insert("lineitem", i(10), i(1), f(100), f(0.1), d("1995-03-20")))
	must(db.Insert("lineitem", i(10), i(2), f(200), f(0.0), d("1995-03-25")))
	must(db.Insert("lineitem", i(11), i(1), f(300), f(0.2), d("1995-03-18")))
	must(db.Insert("lineitem", i(12), i(1), f(400), f(0.05), d("1995-04-10")))
	must(db.Insert("lineitem", i(13), i(1), f(50), f(0.0), d("1995-02-15")))
	return db
}

func run(t *testing.T, db *sqldb.Database, sql string) *sqldb.Result {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := db.Execute(context.Background(), stmt)
	if err != nil {
		t.Fatalf("execute %q: %v", sql, err)
	}
	return res
}

func TestExecuteSimpleScan(t *testing.T) {
	db := miniDB(t)
	res := run(t, db, "select c_name from customer")
	if res.RowCount() != 3 {
		t.Fatalf("got %d rows, want 3", res.RowCount())
	}
	if res.Columns[0] != "c_name" {
		t.Errorf("column name %q", res.Columns[0])
	}
}

func TestExecuteFilterComparisons(t *testing.T) {
	db := miniDB(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"select c_custkey from customer where c_acctbal > 0", 2},
		{"select c_custkey from customer where c_acctbal >= 100.50", 2},
		{"select c_custkey from customer where c_acctbal = 100.50", 1},
		{"select c_custkey from customer where c_acctbal < 0", 1},
		{"select c_custkey from customer where c_acctbal between 0 and 200", 1},
		{"select c_custkey from customer where c_mktsegment = 'BUILDING'", 2},
		{"select c_custkey from customer where c_mktsegment <> 'BUILDING'", 1},
		{"select o_orderkey from orders where o_orderdate <= date '1995-03-10'", 3},
		{"select c_custkey from customer where c_name like '%o%'", 2},
		{"select c_custkey from customer where c_name like '_lice'", 1},
		{"select c_custkey from customer where c_name not like '%o%'", 1},
		{"select c_custkey from customer where c_acctbal > 0 and c_mktsegment = 'BUILDING'", 2},
		{"select c_custkey from customer where c_acctbal < 0 or c_mktsegment = 'BUILDING'", 3},
		{"select c_custkey from customer where not (c_mktsegment = 'BUILDING')", 1},
	}
	for _, c := range cases {
		if got := run(t, db, c.sql).RowCount(); got != c.want {
			t.Errorf("%s: got %d rows, want %d", c.sql, got, c.want)
		}
	}
}

func TestExecuteEquiJoin(t *testing.T) {
	db := miniDB(t)
	res := run(t, db, `select c_name, o_orderkey from customer, orders where c_custkey = o_custkey`)
	if res.RowCount() != 4 {
		t.Fatalf("join cardinality %d, want 4", res.RowCount())
	}
	res = run(t, db, `
		select c_name, l_extendedprice from customer, orders, lineitem
		where c_custkey = o_custkey and o_orderkey = l_orderkey and c_mktsegment = 'BUILDING'`)
	if res.RowCount() != 4 {
		t.Fatalf("3-way join for BUILDING: %d rows, want 4", res.RowCount())
	}
}

func TestExecuteCrossJoin(t *testing.T) {
	db := miniDB(t)
	res := run(t, db, "select c_custkey, o_orderkey from customer, orders")
	if res.RowCount() != 12 {
		t.Fatalf("cross join %d rows, want 12", res.RowCount())
	}
}

func TestExecuteGroupByAggregates(t *testing.T) {
	db := miniDB(t)
	res := run(t, db, `
		select o_custkey, count(*) as cnt, sum(o_totalprice) as total, avg(o_totalprice) as m,
		       min(o_orderdate) as lo, max(o_orderdate) as hi
		from orders group by o_custkey order by o_custkey`)
	if res.RowCount() != 3 {
		t.Fatalf("got %d groups, want 3", res.RowCount())
	}
	// customer 1 has orders 10 (1000) and 13 (500).
	row := res.Rows[0]
	if row[0].I != 1 || row[1].I != 2 {
		t.Fatalf("group row: %v", row)
	}
	if row[2].AsFloat() != 1500 || row[3].AsFloat() != 750 {
		t.Errorf("sum/avg: %v %v", row[2], row[3])
	}
	if row[4].String() != "1995-02-01" || row[5].String() != "1995-03-01" {
		t.Errorf("min/max date: %v %v", row[4], row[5])
	}
}

func TestExecuteComputedProjection(t *testing.T) {
	db := miniDB(t)
	res := run(t, db, `
		select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue
		from lineitem group by l_orderkey order by revenue desc`)
	if res.RowCount() != 4 {
		t.Fatalf("got %d rows", res.RowCount())
	}
	// order 12: 400*0.95 = 380; order 10: 100*0.9 + 200 = 290.
	if res.Rows[0][0].I != 12 || res.Rows[0][1].AsFloat() != 380 {
		t.Errorf("top row %v", res.Rows[0])
	}
	if res.Rows[1][0].I != 10 || res.Rows[1][1].AsFloat() != 290 {
		t.Errorf("second row %v", res.Rows[1])
	}
}

func TestExecuteHaving(t *testing.T) {
	db := miniDB(t)
	res := run(t, db, `
		select o_custkey, sum(o_totalprice) as total
		from orders group by o_custkey having sum(o_totalprice) >= 2000 order by o_custkey`)
	if res.RowCount() != 2 {
		t.Fatalf("having kept %d groups, want 2", res.RowCount())
	}
	if res.Rows[0][0].I != 2 || res.Rows[1][0].I != 3 {
		t.Errorf("groups: %v", res.Rows)
	}
}

func TestExecuteOrderByMultiKeyAndLimit(t *testing.T) {
	db := miniDB(t)
	res := run(t, db, `
		select o_shippriority, o_orderkey from orders
		order by o_shippriority desc, o_orderkey asc limit 3`)
	if res.RowCount() != 3 {
		t.Fatalf("limit not applied: %d rows", res.RowCount())
	}
	want := [][2]int64{{2, 13}, {1, 11}, {0, 10}}
	for i, w := range want {
		if res.Rows[i][0].I != w[0] || res.Rows[i][1].I != w[1] {
			t.Errorf("row %d = %v, want %v", i, res.Rows[i], w)
		}
	}
}

func TestExecuteOrderByAlias(t *testing.T) {
	db := miniDB(t)
	res := run(t, db, `
		select c_custkey as id, c_acctbal as bal from customer order by bal desc`)
	if res.Rows[0][0].I != 3 {
		t.Errorf("order by alias: top row %v", res.Rows[0])
	}
}

func TestExecuteUngroupedAggregate(t *testing.T) {
	db := miniDB(t)
	res := run(t, db, "select count(*) as n, sum(o_totalprice) as s from orders")
	if res.RowCount() != 1 || res.Rows[0][0].I != 4 {
		t.Fatalf("ungrouped agg: %v", res.Rows)
	}
	if !res.Populated() {
		t.Error("non-empty aggregate should be populated")
	}
	// Empty input: SQL yields one row, but Populated() must be false.
	res = run(t, db, "select count(*) as n from orders where o_totalprice > 99999")
	if res.RowCount() != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("empty-input count: %v", res.Rows)
	}
	if res.Populated() {
		t.Error("ungrouped aggregate over empty input must not count as populated")
	}
}

func TestExecuteCountDistinct(t *testing.T) {
	db := miniDB(t)
	res := run(t, db, "select count(distinct o_custkey) as n from orders")
	if res.Rows[0][0].I != 3 {
		t.Errorf("count distinct = %v, want 3", res.Rows[0][0])
	}
}

func TestExecuteNullHandling(t *testing.T) {
	db := miniDB(t)
	tbl, err := db.Table("customer")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Set(0, "c_acctbal", sqldb.NewNull(sqldb.TFloat)); err != nil {
		t.Fatal(err)
	}
	// NULL never satisfies comparisons.
	if got := run(t, db, "select c_custkey from customer where c_acctbal > -100000").RowCount(); got != 2 {
		t.Errorf("NULL row leaked through filter: %d rows", got)
	}
	if got := run(t, db, "select c_custkey from customer where c_acctbal is null").RowCount(); got != 1 {
		t.Errorf("is null: %d rows", got)
	}
	if got := run(t, db, "select c_custkey from customer where c_acctbal is not null").RowCount(); got != 2 {
		t.Errorf("is not null: %d rows", got)
	}
	// Aggregates skip NULLs; count(*) does not.
	res := run(t, db, "select count(*) as a, count(c_acctbal) as b, sum(c_acctbal) as s from customer")
	if res.Rows[0][0].I != 3 || res.Rows[0][1].I != 2 {
		t.Errorf("count behaviour with NULLs: %v", res.Rows[0])
	}
	if res.Rows[0][2].AsFloat() != 849.75 {
		t.Errorf("sum with NULLs: %v", res.Rows[0][2])
	}
	// NULL join keys never match.
	otbl, _ := db.Table("orders")
	if err := otbl.Set(0, "o_custkey", sqldb.NewNull(sqldb.TInt)); err != nil {
		t.Fatal(err)
	}
	if got := run(t, db, "select o_orderkey from customer, orders where c_custkey = o_custkey").RowCount(); got != 3 {
		t.Errorf("NULL join key matched: %d rows", got)
	}
}

func TestExecuteMissingTableError(t *testing.T) {
	db := miniDB(t)
	stmt := sqlparser.MustParse("select x from nosuch")
	_, err := db.Execute(context.Background(), stmt)
	if !errors.Is(err, sqldb.ErrNoSuchTable) {
		t.Fatalf("want ErrNoSuchTable, got %v", err)
	}
}

func TestExecuteUnknownColumnError(t *testing.T) {
	db := miniDB(t)
	stmt := sqlparser.MustParse("select nope from customer")
	if _, err := db.Execute(context.Background(), stmt); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestExecuteAmbiguousColumnError(t *testing.T) {
	db := sqldb.NewDatabase()
	for _, n := range []string{"t1", "t2"} {
		if err := db.CreateTable(sqldb.TableSchema{
			Name:    n,
			Columns: []sqldb.Column{{Name: "x", Type: sqldb.TInt}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	stmt := sqlparser.MustParse("select x from t1, t2")
	if _, err := db.Execute(context.Background(), stmt); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguity error, got %v", err)
	}
}

func TestExecuteContextCancellation(t *testing.T) {
	db := sqldb.NewDatabase()
	if err := db.CreateTable(sqldb.TableSchema{
		Name:    "big",
		Columns: []sqldb.Column{{Name: "x", Type: sqldb.TInt}},
	}); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("big")
	for i := 0; i < 200000; i++ {
		tbl.MustInsert(sqldb.NewInt(int64(i)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	stmt := sqlparser.MustParse("select x from big where x > 5")
	if _, err := db.Execute(ctx, stmt); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestExecuteOrderingDeterminism(t *testing.T) {
	db := miniDB(t)
	q := `select o_custkey, sum(o_totalprice) as s from orders group by o_custkey order by s desc`
	a := run(t, db, q)
	b := run(t, db, q)
	if a.Checksum() != b.Checksum() {
		t.Error("repeated execution should be deterministic")
	}
}

func TestResultComparisons(t *testing.T) {
	db := miniDB(t)
	asc := run(t, db, "select o_orderkey from orders order by o_orderkey asc")
	desc := run(t, db, "select o_orderkey from orders order by o_orderkey desc")
	if asc.EqualOrdered(desc) {
		t.Error("opposite orders should not be EqualOrdered")
	}
	if !asc.EqualUnordered(desc) {
		t.Error("same multiset should be EqualUnordered")
	}
	if asc.Checksum() == desc.Checksum() {
		t.Error("checksums should be position-dependent")
	}
}

func TestExecuteResidualJoinCycleEdge(t *testing.T) {
	// Join cycle: all three edges must hold even though only two are
	// used as hash keys.
	db := sqldb.NewDatabase()
	for _, n := range []string{"a", "b", "c"} {
		if err := db.CreateTable(sqldb.TableSchema{
			Name:    n,
			Columns: []sqldb.Column{{Name: n + "k", Type: sqldb.TInt}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"a", "b", "c"} {
		tbl, _ := db.Table(n)
		tbl.MustInsert(sqldb.NewInt(1))
		tbl.MustInsert(sqldb.NewInt(2))
	}
	// Break the cycle for one tuple in c.
	tbl, _ := db.Table("c")
	if err := tbl.Set(1, "ck", sqldb.NewInt(3)); err != nil {
		t.Fatal(err)
	}
	res := run(t, db, "select ak from a, b, c where ak = bk and bk = ck and ak = ck")
	if res.RowCount() != 1 {
		t.Fatalf("cycle join: %d rows, want 1", res.RowCount())
	}
}
