package sqldb

import (
	"fmt"
	"math/rand"
	"sync"
)

// Row is one tuple; values are positionally aligned with the table's
// schema columns.
type Row []Value

// Clone deep-copies the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table stores the rows of one table together with its schema, plus
// lazily built engine caches (secondary hash indexes and hash-join
// build sides). The caches are strictly derived state: every mutator
// below invalidates the affected entries, clones start with none, and
// idxMu serializes lazy builds under concurrent read-only Executes.
type Table struct {
	Schema TableSchema
	Rows   []Row

	idxMu    sync.Mutex
	indexes  map[int]map[string][]int32 // column -> group key -> row ids
	rindexes map[int]*rangeIndex        // column -> sorted range index
	builds   []*joinBuild               // cached hash-join build sides
	advBuilt map[int]bool               // advised columns built once; survives invalidation
}

// NewTable creates an empty table for the schema.
func NewTable(schema TableSchema) *Table {
	return &Table{Schema: schema.Clone()}
}

// Clone deep-copies the table (schema and all rows).
func (t *Table) Clone() *Table {
	out := NewTable(t.Schema)
	out.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		out.Rows[i] = r.Clone()
	}
	return out
}

// RowCount returns the number of rows.
func (t *Table) RowCount() int { return len(t.Rows) }

// SnapshotRows returns the table's current row slice as an opaque
// restore token: callers outside sqldb hold it only to hand back to
// SetRows (or to build a trimmed copy with CopyRows) and must not
// mutate the rows it references. Together with SetRows it is the
// sanctioned backup/restore protocol of the minimizer's probing loops;
// direct access to the Rows field from other packages is a lint
// violation (GL004).
func (t *Table) SnapshotRows() []Row { return t.Rows }

// SetRows replaces the table's rows wholesale. The slice is adopted,
// not copied; pass a fresh slice (e.g. from CopyRows) when the caller
// keeps a snapshot it intends to restore later.
func (t *Table) SetRows(rows []Row) {
	t.Rows = rows
	t.invalidateIndexes()
}

// CopyRows shallow-copies a row slice: a fresh backing array whose
// elements reference the same Row values. Row-set mutations (sampling,
// halving, row removal) on the copy leave the original slice intact.
func CopyRows(rows []Row) []Row { return append([]Row(nil), rows...) }

// Insert appends a row after validating arity and types; NULLs are
// accepted for any column, and int literals are coerced into float
// columns.
func (t *Table) Insert(vals ...Value) error {
	if len(vals) != len(t.Schema.Columns) {
		return fmt.Errorf("table %s: insert arity %d, want %d", t.Schema.Name, len(vals), len(t.Schema.Columns))
	}
	row := make(Row, len(vals))
	for i, v := range vals {
		cv, err := coerce(v, t.Schema.Columns[i])
		if err != nil {
			return fmt.Errorf("table %s column %s: %w", t.Schema.Name, t.Schema.Columns[i].Name, err)
		}
		row[i] = cv
	}
	t.Rows = append(t.Rows, row)
	t.invalidateIndexes()
	return nil
}

// MustInsert inserts and panics on error; for generators and tests.
// Library code must use Insert and propagate the error (lint rule
// GL001 exempts only Must*-named wrappers).
func (t *Table) MustInsert(vals ...Value) {
	if err := t.Insert(vals...); err != nil {
		panic(fmt.Sprintf("sqldb: MustInsert into %s: %v", t.Schema.Name, err))
	}
}

func coerce(v Value, c Column) (Value, error) {
	if v.Null {
		return NewNull(c.Type), nil
	}
	switch c.Type {
	case TInt:
		if v.Typ == TInt {
			return v, nil
		}
		if v.Typ == TFloat && v.F == float64(int64(v.F)) {
			return NewInt(int64(v.F)), nil
		}
	case TFloat:
		if v.Typ == TFloat {
			return RoundTo(v, c.FloatPrecision()), nil
		}
		if v.Typ == TInt {
			return NewFloat(float64(v.I)), nil
		}
	case TText:
		if v.Typ == TText {
			if len(v.S) > c.TextMaxLen() {
				return Value{}, fmt.Errorf("text value of length %d exceeds limit %d", len(v.S), c.TextMaxLen())
			}
			return v, nil
		}
	case TDate:
		if v.Typ == TDate {
			return v, nil
		}
		if v.Typ == TInt {
			return NewDate(v.I), nil
		}
	case TBool:
		if v.Typ == TBool {
			return v, nil
		}
	}
	return Value{}, fmt.Errorf("cannot store %s value in %s column", v.Typ, c.Type)
}

// Get returns the value at (row, column-name).
func (t *Table) Get(row int, col string) (Value, error) {
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return Value{}, fmt.Errorf("table %s has no column %s", t.Schema.Name, col)
	}
	if row < 0 || row >= len(t.Rows) {
		return Value{}, fmt.Errorf("table %s has no row %d", t.Schema.Name, row)
	}
	return t.Rows[row][ci], nil
}

// Set overwrites the value at (row, column-name), with coercion.
func (t *Table) Set(row int, col string, v Value) error {
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return fmt.Errorf("table %s has no column %s", t.Schema.Name, col)
	}
	if row < 0 || row >= len(t.Rows) {
		return fmt.Errorf("table %s has no row %d", t.Schema.Name, row)
	}
	cv, err := coerce(v, t.Schema.Columns[ci])
	if err != nil {
		return err
	}
	t.Rows[row][ci] = cv
	t.invalidateColumn(ci)
	return nil
}

// SetAll overwrites every row's value for a column.
func (t *Table) SetAll(col string, v Value) error {
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return fmt.Errorf("table %s has no column %s", t.Schema.Name, col)
	}
	cv, err := coerce(v, t.Schema.Columns[ci])
	if err != nil {
		return err
	}
	for i := range t.Rows {
		t.Rows[i][ci] = cv
	}
	t.invalidateColumn(ci)
	return nil
}

// NegateColumn flips the sign of every value in a numeric column.
// This is the extractor's Negate mutation primitive.
func (t *Table) NegateColumn(col string) error {
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return fmt.Errorf("table %s has no column %s", t.Schema.Name, col)
	}
	for i := range t.Rows {
		n, err := Neg(t.Rows[i][ci])
		if err != nil {
			return fmt.Errorf("table %s column %s: %w", t.Schema.Name, col, err)
		}
		t.Rows[i][ci] = n
	}
	t.invalidateColumn(ci)
	return nil
}

// Truncate removes all rows.
func (t *Table) Truncate() {
	t.Rows = t.Rows[:0]
	t.invalidateIndexes()
}

// KeepRange retains only rows in [lo, hi) — the minimizer's halving
// primitive.
func (t *Table) KeepRange(lo, hi int) error {
	if lo < 0 || hi > len(t.Rows) || lo > hi {
		return fmt.Errorf("table %s: invalid range [%d,%d) of %d rows", t.Schema.Name, lo, hi, len(t.Rows))
	}
	kept := make([]Row, hi-lo)
	copy(kept, t.Rows[lo:hi])
	t.Rows = kept
	t.invalidateIndexes()
	return nil
}

// Sample retains a Bernoulli sample of roughly fraction*RowCount rows
// using the provided RNG, guaranteeing at least one row is kept when
// the table is non-empty. It mirrors the engine-native TABLESAMPLE the
// paper's minimizer preprocessing leans on.
func (t *Table) Sample(fraction float64, rng *rand.Rand) {
	if len(t.Rows) == 0 || fraction >= 1 {
		return
	}
	kept := t.Rows[:0]
	for _, r := range t.Rows {
		if rng.Float64() < fraction {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		kept = append(kept, t.Rows[rng.Intn(len(t.Rows))])
	}
	t.Rows = kept
	t.invalidateIndexes()
}

// DeleteRow removes the row at the given index.
func (t *Table) DeleteRow(i int) error {
	if i < 0 || i >= len(t.Rows) {
		return fmt.Errorf("table %s has no row %d", t.Schema.Name, i)
	}
	t.Rows = append(t.Rows[:i], t.Rows[i+1:]...)
	t.invalidateIndexes()
	return nil
}

// AppendRowCopy duplicates the row at index i and returns the new
// row's index.
func (t *Table) AppendRowCopy(i int) (int, error) {
	if i < 0 || i >= len(t.Rows) {
		return 0, fmt.Errorf("table %s has no row %d", t.Schema.Name, i)
	}
	t.Rows = append(t.Rows, t.Rows[i].Clone())
	t.invalidateIndexes()
	return len(t.Rows) - 1, nil
}
