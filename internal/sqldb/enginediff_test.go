package sqldb_test

// enginediff_test.go — the differential harness locking the
// vectorized engine to the tree-walking oracle: every corpus query,
// table-driven edge cases and fuzz-generated statements execute under
// both exec modes and must produce identical digests, column names
// and ordered row renderings (and identical error *presence* when
// they fail).

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/workloads/job"
	"unmasque/internal/workloads/tpcds"
	"unmasque/internal/workloads/tpch"
)

// compareEngines executes stmt under both exec modes on db and
// reports a non-empty divergence description if the engines disagree.
func compareEngines(db *sqldb.Database, stmt *sqldb.SelectStmt) string {
	ctx := context.Background()
	db.SetExecMode(sqldb.ExecTree)
	rt, errT := db.Execute(ctx, stmt)
	db.SetExecMode(sqldb.ExecVector)
	rv, errV := db.Execute(ctx, stmt)
	if (errT != nil) != (errV != nil) {
		return fmt.Sprintf("error presence diverges: tree=%v vector=%v", errT, errV)
	}
	if errT != nil {
		return "" // both error: presence parity is the contract
	}
	if len(rt.Columns) != len(rv.Columns) {
		return fmt.Sprintf("column counts differ: tree=%v vector=%v", rt.Columns, rv.Columns)
	}
	for i := range rt.Columns {
		if rt.Columns[i] != rv.Columns[i] {
			return fmt.Sprintf("column %d differs: tree=%q vector=%q", i, rt.Columns[i], rv.Columns[i])
		}
	}
	if rt.Digest() != rv.Digest() {
		return fmt.Sprintf("digests differ: tree=%s vector=%s\ntree:\n%s\nvector:\n%s",
			rt.Digest().Hex(), rv.Digest().Hex(), rt, rv)
	}
	if rt.String() != rv.String() {
		return fmt.Sprintf("ordered renderings differ:\ntree:\n%s\nvector:\n%s", rt, rv)
	}
	return ""
}

func compareSQL(t *testing.T, db *sqldb.Database, label, sql string) {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	if msg := compareEngines(db, stmt); msg != "" {
		t.Errorf("%s: %s\nquery: %s", label, msg, sql)
	}
}

// TestEngineDiffCorpus runs every corpus query (TPC-H hidden +
// having, TPC-DS, JOB) through both engines on witness-planted
// workload databases.
func TestEngineDiffCorpus(t *testing.T) {
	const seed = 7
	total := 0
	runAll := func(wl string, qs map[string]string, db *sqldb.Database) {
		names := make([]string, 0, len(qs))
		for n := range qs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			total++
			compareSQL(t, db, wl+"/"+n, qs[n])
		}
	}

	db := tpch.NewDatabase(tpch.ScaleTiny*8, seed)
	if err := tpch.PlantWitnesses(db, tpch.HiddenQueries()); err != nil {
		t.Fatal(err)
	}
	runAll("tpch", tpch.HiddenQueries(), db)

	db = tpch.NewDatabase(tpch.ScaleTiny*8, seed)
	if err := tpch.PlantWitnesses(db, tpch.HavingQueries()); err != nil {
		t.Fatal(err)
	}
	runAll("tpch-having", tpch.HavingQueries(), db)

	db = tpcds.NewDatabase(tpcds.ScaleTiny, seed)
	if err := tpcds.PlantWitnesses(db, tpcds.HiddenQueries()); err != nil {
		t.Fatal(err)
	}
	runAll("tpcds", tpcds.HiddenQueries(), db)

	db = job.NewDatabase(job.ScaleTiny, seed)
	if err := job.PlantWitnesses(db, job.HiddenQueries()); err != nil {
		t.Fatal(err)
	}
	runAll("job", job.HiddenQueries(), db)

	if total < 33 {
		t.Fatalf("corpus covered %d queries, want at least 33", total)
	}
}

// edgeDB builds a small database exercising the engine's corner
// cases: an indexed-size table with NULLs, a joinable second table,
// an empty table, and a table whose join key is entirely NULL.
func edgeDB(t *testing.T) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	mustCreate := func(s sqldb.TableSchema) {
		t.Helper()
		if err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate(sqldb.TableSchema{Name: "t", Columns: []sqldb.Column{
		{Name: "id", Type: sqldb.TInt},
		{Name: "grp", Type: sqldb.TInt},
		{Name: "v", Type: sqldb.TFloat},
		{Name: "s", Type: sqldb.TText},
		{Name: "b", Type: sqldb.TBool},
	}})
	mustCreate(sqldb.TableSchema{Name: "u", Columns: []sqldb.Column{
		{Name: "fk", Type: sqldb.TInt},
		{Name: "w", Type: sqldb.TInt},
		{Name: "lbl", Type: sqldb.TText},
	}})
	mustCreate(sqldb.TableSchema{Name: "e", Columns: []sqldb.Column{
		{Name: "x", Type: sqldb.TInt},
	}})
	mustCreate(sqldb.TableSchema{Name: "nk", Columns: []sqldb.Column{
		{Name: "k", Type: sqldb.TInt},
		{Name: "z", Type: sqldb.TInt},
	}})
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 40; i++ {
		s := sqldb.NewText(words[i%len(words)])
		if i%7 == 3 {
			s = sqldb.NewNull(sqldb.TText)
		}
		v := sqldb.NewFloat(float64(i%10) + 0.5)
		if i%11 == 5 {
			v = sqldb.NewNull(sqldb.TFloat)
		}
		if err := db.Insert("t",
			sqldb.NewInt(int64(i)), sqldb.NewInt(int64(i%4)), v, s,
			sqldb.NewBool(i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		if err := db.Insert("u",
			sqldb.NewInt(int64(i%10)), sqldb.NewInt(int64(i%5)),
			sqldb.NewText(words[i%len(words)])); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := db.Insert("nk",
			sqldb.NewNull(sqldb.TInt), sqldb.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestEngineDiffEdgeCases table-drives the tricky corners through
// both engines: empty tables, all-NULL join keys, DISTINCT
// aggregates, ORDER BY ties, index eligibility boundaries, NULL
// logic and error parity.
func TestEngineDiffEdgeCases(t *testing.T) {
	db := edgeDB(t)
	cases := []struct{ name, sql string }{
		{"point-lookup-int", "select id, s from t where id = 17"},
		{"point-lookup-text", "select id from t where s = 'alpha'"},
		{"point-lookup-absent", "select id from t where id = 999"},
		{"point-lookup-reversed", "select id from t where 17 = id"},
		{"point-lookup-then-filter", "select id from t where id = 17 and v > 1.0"},
		{"float-eq-not-indexable", "select id from t where v = 2.5"},
		{"int-eq-float-literal", "select id from t where id = 3.0"},
		{"empty-table-scan", "select x from e"},
		{"empty-table-count", "select count(x) from e"},
		{"empty-table-group", "select x, count(x) from e group by x"},
		{"join-empty-table", "select t.id from t, e where t.id = e.x"},
		{"all-null-join-keys", "select z from nk, u where nk.k = u.fk"},
		{"join-basic", "select t.id, u.w from t, u where t.id = u.fk and u.w > 2"},
		{"join-residual", "select t.id, u.w from t, u where t.id = u.fk and t.id + u.w > 6"},
		{"cross-product", "select t.id, u.w from t, u where t.id < 3 and u.w < 1"},
		{"distinct-aggregates", "select grp, count(distinct s), sum(distinct id) from t group by grp"},
		{"order-by-ties", "select grp, id from t order by grp"},
		{"order-by-ties-desc", "select grp, id, s from t order by grp desc"},
		{"having", "select grp, count(id) from t group by grp having count(id) > 5"},
		{"between-and-like", "select id from t where id between 5 and 15 and s like 'a%'"},
		{"not-like", "select id from t where s not like '%a%'"},
		{"is-null", "select id from t where s is null"},
		{"is-not-null", "select id from t where v is not null and b"},
		{"null-or-logic", "select id from t where b or v > 8.0"},
		{"not-over-null", "select id from t where not (v > 3.0)"},
		{"arith-pushdown", "select id from t where v * 2.0 - 1.0 > 3.0"},
		{"neg-pushdown", "select id from t where -id < -35"},
		{"limit-after-order", "select id from t order by id desc limit 7"},
		{"between-int-pushdown", "select id from t where id between 8 and 22"},
		{"between-text-pushdown", "select id from t where s between 'alpha' and 'delta'"},
		{"between-float-not-indexable", "select id from t where v between 1.0 and 5.5"},
		{"between-mixed-class", "select id from t where id between 1.5 and 20"},
		{"between-empty-span", "select id from t where id between 50 and 60"},
		{"between-then-residual", "select t.id, u.w from t, u where t.id = u.fk and t.id between 2 and 8 and t.v + u.w > 3.0"},
		{"inequality-pushdown-ge", "select id from t where id >= 33"},
		{"inequality-pushdown-lt", "select id from t where id < 4"},
		{"inequality-literal-left", "select id from t where 33 <= id"},
		{"inequality-text", "select id from t where s > 'beta'"},
		{"null-heavy-residual", "select t.id from t, u where t.id = u.fk and t.v > 2.0 and t.s like '%a%'"},
		{"null-heavy-residual-or", "select t.id from t, u where t.id = u.fk and (t.v > 8.0 or t.s = 'beta')"},
		{"group-by-nullable-key", "select s, count(id) from t group by s"},
		{"group-all-null-key", "select k, count(z) from nk group by k"},
		{"group-all-null-agg-arg", "select z, sum(k) from nk group by z"},
		{"order-limit-ties", "select grp, id from t order by grp limit 5"},
		{"order-limit-exceeds-rows", "select id from t order by id limit 100"},
		{"order-desc-nulls-limit", "select v, id from t order by v desc limit 6"},
		{"order-multi-key-limit", "select grp, s, id from t order by grp, s desc limit 9"},
		{"order-hidden-float-text", "select id from t order by v desc, s"},
		{"order-hidden-int", "select id, s from t order by grp desc, id"},
		{"order-hidden-expr", "select id from t order by grp - id / 3, id desc"},
		{"order-hidden-limit", "select id from t order by s, v desc limit 5"},
		{"type-mismatch-error", "select id from t where s > 5"},
		{"div-by-zero-error", "select id from t where v / 0.0 > 1.0 and id >= 0"},
		{"div-by-zero-unreached", "select id from t where id < 0 and v / 0.0 > 1.0"},
		{"or-short-circuit", "select id from t where id >= 0 or v / 0.0 > 1.0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { compareSQL(t, db, tc.name, tc.sql) })
	}
}

// fuzzDB builds the deterministic statement-fuzzing database.
func fuzzDB(rng *rand.Rand) (*sqldb.Database, error) {
	db := sqldb.NewDatabase()
	if err := db.CreateTable(sqldb.TableSchema{Name: "t", Columns: []sqldb.Column{
		{Name: "a", Type: sqldb.TInt},
		{Name: "b", Type: sqldb.TInt},
		{Name: "v", Type: sqldb.TFloat},
		{Name: "s", Type: sqldb.TText},
	}}); err != nil {
		return nil, err
	}
	if err := db.CreateTable(sqldb.TableSchema{Name: "u", Columns: []sqldb.Column{
		{Name: "k", Type: sqldb.TInt},
		{Name: "m", Type: sqldb.TInt},
	}}); err != nil {
		return nil, err
	}
	words := []string{"x", "xy", "xyz", "abc", ""}
	null := func(t sqldb.Type) sqldb.Value { return sqldb.NewNull(t) }
	for i := 0; i < 30; i++ {
		a := sqldb.NewInt(rng.Int63n(8))
		if rng.Intn(7) == 0 {
			a = null(sqldb.TInt)
		}
		v := sqldb.NewFloat(float64(rng.Intn(40)) / 4)
		if rng.Intn(7) == 0 {
			v = null(sqldb.TFloat)
		}
		s := sqldb.NewText(words[rng.Intn(len(words))])
		if rng.Intn(7) == 0 {
			s = null(sqldb.TText)
		}
		if err := db.Insert("t", a, sqldb.NewInt(rng.Int63n(5)), v, s); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 18; i++ {
		if err := db.Insert("u", sqldb.NewInt(rng.Int63n(8)), sqldb.NewInt(rng.Int63n(4))); err != nil {
			return nil, err
		}
	}
	// Advise the integer columns so fuzzing also exercises the advised
	// paths (below-gate index use, non-leading pushdown behind total
	// prefixes, clone-shared builds). The tree oracle ignores advice,
	// so the differential contract is unchanged.
	if err := db.AdviseIndexes(
		sqldb.IndexHint{Table: "t", Column: "a"},
		sqldb.IndexHint{Table: "t", Column: "b"},
		sqldb.IndexHint{Table: "u", Column: "k"},
	); err != nil {
		return nil, err
	}
	return db, nil
}

// genOperand yields a random scalar operand over table t's columns.
func genOperand(rng *rand.Rand) sqldb.Expr {
	switch rng.Intn(6) {
	case 0:
		return sqldb.Col("t", "a")
	case 1:
		return sqldb.Col("t", "b")
	case 2:
		return sqldb.Col("t", "v")
	case 3:
		return sqldb.Lit(sqldb.NewInt(rng.Int63n(8)))
	case 4:
		return sqldb.Lit(sqldb.NewFloat(float64(rng.Intn(40)) / 4))
	default:
		ops := []sqldb.BinOp{sqldb.OpAdd, sqldb.OpSub, sqldb.OpMul, sqldb.OpDiv}
		return sqldb.Bin(ops[rng.Intn(len(ops))],
			sqldb.Col("t", "a"), sqldb.Lit(sqldb.NewInt(rng.Int63n(4))))
	}
}

// genPred yields a random predicate over table t, deliberately
// including type mismatches and division hazards so the fuzzer
// exercises error-presence parity, not just value parity.
func genPred(rng *rand.Rand, depth int) sqldb.Expr {
	if depth > 0 && rng.Intn(3) == 0 {
		op := sqldb.OpAnd
		if rng.Intn(2) == 0 {
			op = sqldb.OpOr
		}
		return sqldb.Bin(op, genPred(rng, depth-1), genPred(rng, depth-1))
	}
	switch rng.Intn(9) {
	case 0:
		return &sqldb.LikeExpr{X: sqldb.Col("t", "s"), Pattern: []string{"x%", "%y%", "a_c", "%"}[rng.Intn(4)], Not: rng.Intn(4) == 0}
	case 1:
		return &sqldb.IsNullExpr{X: genOperand(rng), Not: rng.Intn(2) == 0}
	case 2:
		return &sqldb.BetweenExpr{X: genOperand(rng), Lo: genOperand(rng), Hi: genOperand(rng)}
	case 3:
		return &sqldb.NotExpr{X: genPred(rng, 0)}
	case 4:
		// Occasionally compare text against a number: both engines
		// must raise (or not raise) the class error together.
		return sqldb.Bin(sqldb.OpGt, sqldb.Col("t", "s"), sqldb.Lit(sqldb.NewInt(1)))
	case 5:
		// Index-eligible BETWEEN: col between int literals (the range
		// pushdown shape, advised so the gate does not matter).
		col := []string{"a", "b"}[rng.Intn(2)]
		return &sqldb.BetweenExpr{X: sqldb.Col("t", col),
			Lo: sqldb.Lit(sqldb.NewInt(rng.Int63n(5))),
			Hi: sqldb.Lit(sqldb.NewInt(2 + rng.Int63n(6)))}
	case 6:
		// Index-eligible inequality, literal on either side.
		cmps := []sqldb.BinOp{sqldb.OpLt, sqldb.OpLe, sqldb.OpGt, sqldb.OpGe}
		op := cmps[rng.Intn(len(cmps))]
		col := sqldb.Col("t", []string{"a", "b"}[rng.Intn(2)])
		lit := sqldb.Lit(sqldb.NewInt(rng.Int63n(8)))
		if rng.Intn(2) == 0 {
			return sqldb.Bin(op, col, lit)
		}
		return sqldb.Bin(op, lit, col)
	default:
		cmps := []sqldb.BinOp{sqldb.OpEq, sqldb.OpNe, sqldb.OpLt, sqldb.OpLe, sqldb.OpGt, sqldb.OpGe}
		return sqldb.Bin(cmps[rng.Intn(len(cmps))], genOperand(rng), genOperand(rng))
	}
}

// genStmt yields a random single-block statement: plain projections
// or grouped aggregates, sometimes joined to u, with random ORDER BY
// and LIMIT.
func genStmt(rng *rand.Rand) *sqldb.SelectStmt {
	stmt := &sqldb.SelectStmt{From: []string{"t"}}
	join := rng.Intn(3) == 0
	if join {
		stmt.From = append(stmt.From, "u")
		stmt.Where = sqldb.Bin(sqldb.OpEq, sqldb.Col("t", "a"), sqldb.Col("u", "k"))
	}
	if rng.Intn(2) == 0 {
		p := genPred(rng, 2)
		if stmt.Where != nil {
			stmt.Where = sqldb.Bin(sqldb.OpAnd, stmt.Where, p)
		} else {
			stmt.Where = p
		}
	}
	if rng.Intn(3) == 0 { // grouped aggregate
		stmt.GroupBy = []sqldb.Expr{sqldb.Col("t", "b")}
		fns := []sqldb.AggFn{sqldb.AggCount, sqldb.AggSum, sqldb.AggAvg, sqldb.AggMin, sqldb.AggMax}
		agg := &sqldb.AggExpr{Fn: fns[rng.Intn(len(fns))], Arg: sqldb.Col("t", "a"), Distinct: rng.Intn(3) == 0}
		stmt.Items = []sqldb.SelectItem{
			{Expr: sqldb.Col("t", "b")},
			{Expr: agg, Alias: "agg"},
		}
		if rng.Intn(2) == 0 {
			stmt.Having = sqldb.Bin(sqldb.OpGt, &sqldb.AggExpr{Fn: sqldb.AggCount, Arg: sqldb.Col("t", "a")}, sqldb.Lit(sqldb.NewInt(1)))
		}
		if rng.Intn(2) == 0 {
			stmt.OrderBy = []sqldb.OrderKey{{Expr: sqldb.Col("", "b"), Desc: rng.Intn(2) == 0}}
		}
	} else {
		stmt.Items = []sqldb.SelectItem{{Expr: sqldb.Col("t", "a")}, {Expr: sqldb.Col("t", "v")}}
		if join {
			stmt.Items = append(stmt.Items, sqldb.SelectItem{Expr: sqldb.Col("u", "m")})
		}
		if rng.Intn(2) == 0 {
			stmt.OrderBy = []sqldb.OrderKey{
				{Expr: sqldb.Col("t", "a")},
				{Expr: sqldb.Col("t", "v"), Desc: rng.Intn(2) == 0},
			}
		}
	}
	if rng.Intn(3) == 0 {
		stmt.Limit = int64(1 + rng.Intn(9))
	}
	return stmt
}

// FuzzExecDiff cross-checks vectorized vs tree execution on random
// statements over a randomized database.
func FuzzExecDiff(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 424242, -1} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		db, err := fuzzDB(rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			stmt := genStmt(rng)
			if msg := compareEngines(db, stmt); msg != "" {
				t.Fatalf("seed %d stmt %d: %s\nstatement: %s", seed, i, msg, stmt)
			}
		}
	})
}

// TestExecDiffRandomStatements is the deterministic in-CI slice of
// FuzzExecDiff.
func TestExecDiffRandomStatements(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	db, err := fuzzDB(rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		stmt := genStmt(rng)
		if msg := compareEngines(db, stmt); msg != "" {
			t.Fatalf("stmt %d: %s\nstatement: %s", i, msg, stmt)
		}
	}
}
