package sqldb

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// This file differentially tests the engine's scalar expression
// evaluator (execution.eval) against oval/oeval, an independent
// straightforward tree-walking oracle, on randomly generated
// well-typed expressions over randomly generated rows (NULLs
// included). The oracle re-implements SQL's three-valued logic and
// arithmetic from scratch over nullable float64/bool/string — it
// shares no code with the engine's Value arithmetic — but it does
// mirror the engine's evaluation ORDER, because observable behavior
// includes errors: `false and 1/0 < 2` must short-circuit past the
// division in both implementations.
//
// Generated leaves are kept small (|int| <= 9, depth <= 3) so every
// intermediate value stays exactly representable in float64 and the
// engine's int64 fast path cannot diverge from the oracle's floats.

// oval is the oracle's value: a nullable scalar tagged numeric,
// boolean or text.
type oval struct {
	null bool
	kind byte // 'n', 'b', 't'
	f    float64
	b    bool
	s    string
}

func onum(f float64) oval { return oval{kind: 'n', f: f} }
func obool(b bool) oval   { return oval{kind: 'b', b: b} }
func otext(s string) oval { return oval{kind: 't', s: s} }
func onull(k byte) oval   { return oval{null: true, kind: k} }
func errDiv() error       { return fmt.Errorf("oracle: division by zero") }

// oeval walks an expression tree the naive way. cols maps column
// names to row slots.
func oeval(e Expr, row Row, cols map[string]int) (oval, error) {
	switch x := e.(type) {
	case *ColumnExpr:
		v := row[cols[x.Column]]
		switch {
		case v.Null:
			k := byte('n')
			if v.Typ == TText {
				k = 't'
			} else if v.Typ == TBool {
				k = 'b'
			}
			return onull(k), nil
		case v.Typ == TText:
			return otext(v.S), nil
		case v.Typ == TBool:
			return obool(v.I != 0), nil
		default:
			return onum(v.AsFloat()), nil
		}
	case *LiteralExpr:
		v := x.Val
		switch {
		case v.Null:
			return onull('n'), nil
		case v.Typ == TText:
			return otext(v.S), nil
		case v.Typ == TBool:
			return obool(v.I != 0), nil
		default:
			return onum(v.AsFloat()), nil
		}
	case *NegExpr:
		v, err := oeval(x.X, row, cols)
		if err != nil {
			return oval{}, err
		}
		if v.null {
			return v, nil
		}
		return onum(-v.f), nil
	case *BinaryExpr:
		if x.Op == OpAnd || x.Op == OpOr {
			return oevalLogic(x, row, cols)
		}
		l, err := oeval(x.L, row, cols)
		if err != nil {
			return oval{}, err
		}
		r, err := oeval(x.R, row, cols)
		if err != nil {
			return oval{}, err
		}
		switch x.Op {
		case OpAdd, OpSub, OpMul, OpDiv:
			if l.null || r.null {
				return onull('n'), nil
			}
			switch x.Op {
			case OpAdd:
				return onum(l.f + r.f), nil
			case OpSub:
				return onum(l.f - r.f), nil
			case OpMul:
				return onum(l.f * r.f), nil
			default:
				if r.f == 0 {
					return oval{}, errDiv()
				}
				return onum(l.f / r.f), nil
			}
		default: // comparison
			if l.null || r.null {
				return onull('b'), nil
			}
			var c int
			if l.kind == 't' {
				switch {
				case l.s < r.s:
					c = -1
				case l.s > r.s:
					c = 1
				}
			} else {
				switch {
				case l.f < r.f:
					c = -1
				case l.f > r.f:
					c = 1
				}
			}
			switch x.Op {
			case OpEq:
				return obool(c == 0), nil
			case OpNe:
				return obool(c != 0), nil
			case OpLt:
				return obool(c < 0), nil
			case OpLe:
				return obool(c <= 0), nil
			case OpGt:
				return obool(c > 0), nil
			default:
				return obool(c >= 0), nil
			}
		}
	case *NotExpr:
		v, err := oeval(x.X, row, cols)
		if err != nil {
			return oval{}, err
		}
		if v.null {
			return onull('b'), nil
		}
		return obool(!v.b), nil
	case *BetweenExpr:
		v, err := oeval(x.X, row, cols)
		if err != nil {
			return oval{}, err
		}
		lo, err := oeval(x.Lo, row, cols)
		if err != nil {
			return oval{}, err
		}
		hi, err := oeval(x.Hi, row, cols)
		if err != nil {
			return oval{}, err
		}
		if v.null || lo.null || hi.null {
			return onull('b'), nil
		}
		return obool(v.f >= lo.f && v.f <= hi.f), nil
	case *LikeExpr:
		v, err := oeval(x.X, row, cols)
		if err != nil {
			return oval{}, err
		}
		if v.null {
			return onull('b'), nil
		}
		m, err := likeOracle(x.Pattern, v.s)
		if err != nil {
			return oval{}, err
		}
		if x.Not {
			m = !m
		}
		return obool(m), nil
	case *IsNullExpr:
		v, err := oeval(x.X, row, cols)
		if err != nil {
			return oval{}, err
		}
		b := v.null
		if x.Not {
			b = !b
		}
		return obool(b), nil
	default:
		return oval{}, fmt.Errorf("oracle: unsupported node %T", e)
	}
}

// oevalLogic mirrors the engine's short-circuit order: the right
// operand is not evaluated (so cannot error) when the left decides.
func oevalLogic(x *BinaryExpr, row Row, cols map[string]int) (oval, error) {
	l, err := oeval(x.L, row, cols)
	if err != nil {
		return oval{}, err
	}
	if !l.null {
		if x.Op == OpAnd && !l.b {
			return obool(false), nil
		}
		if x.Op == OpOr && l.b {
			return obool(true), nil
		}
	}
	r, err := oeval(x.R, row, cols)
	if err != nil {
		return oval{}, err
	}
	if x.Op == OpAnd {
		if !r.null && !r.b {
			return obool(false), nil
		}
		if l.null || r.null {
			return onull('b'), nil
		}
		return obool(true), nil
	}
	if !r.null && r.b {
		return obool(true), nil
	}
	if l.null || r.null {
		return onull('b'), nil
	}
	return obool(false), nil
}

// ---------------------------------------------------------------------
// Random generation

var diffSchema = TableSchema{
	Name: "t",
	Columns: []Column{
		{Name: "a", Type: TInt},
		{Name: "b", Type: TInt},
		{Name: "c", Type: TFloat, Precision: 2},
		{Name: "d", Type: TFloat, Precision: 2},
		{Name: "s", Type: TText, MaxLen: 8},
		{Name: "u", Type: TText, MaxLen: 8},
	},
}

var diffWords = []string{"", "a", "ab", "abc", "xya", "zb", "a_b", "%x"}

// genNum/genText/genBool generate well-typed expressions; depth bounds
// the tree so intermediate products stay exact in float64.
func genNum(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return Lit(NewInt(int64(rng.Intn(19) - 9)))
		case 1:
			return Lit(NewFloat(float64(rng.Intn(37)-18) * 0.5))
		case 2:
			return &ColumnExpr{Column: []string{"a", "b"}[rng.Intn(2)]}
		default:
			return &ColumnExpr{Column: []string{"c", "d"}[rng.Intn(2)]}
		}
	}
	if rng.Intn(8) == 0 {
		return &NegExpr{X: genNum(rng, depth-1)}
	}
	ops := []BinOp{OpAdd, OpSub, OpMul, OpDiv}
	return Bin(ops[rng.Intn(len(ops))], genNum(rng, depth-1), genNum(rng, depth-1))
}

func genText(rng *rand.Rand) Expr {
	if rng.Intn(2) == 0 {
		return Lit(NewText(diffWords[rng.Intn(len(diffWords))]))
	}
	return &ColumnExpr{Column: []string{"s", "u"}[rng.Intn(2)]}
}

func genBool(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(5) {
		case 0: // numeric comparison
			cmps := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
			return Bin(cmps[rng.Intn(len(cmps))], genNum(rng, 1), genNum(rng, 1))
		case 1: // text comparison
			cmps := []BinOp{OpEq, OpNe, OpLt, OpGt}
			return Bin(cmps[rng.Intn(len(cmps))], genText(rng), genText(rng))
		case 2:
			pats := []string{"%", "a%", "%b", "_", "a_%", "%a%b%", "", "x"}
			return &LikeExpr{X: genText(rng), Pattern: pats[rng.Intn(len(pats))], Not: rng.Intn(2) == 0}
		case 3:
			if rng.Intn(2) == 0 {
				return &IsNullExpr{X: genNum(rng, 1), Not: rng.Intn(2) == 0}
			}
			return &IsNullExpr{X: genText(rng), Not: rng.Intn(2) == 0}
		default:
			return &BetweenExpr{X: genNum(rng, 1), Lo: genNum(rng, 0), Hi: genNum(rng, 0)}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &NotExpr{X: genBool(rng, depth-1)}
	case 1:
		return Bin(OpAnd, genBool(rng, depth-1), genBool(rng, depth-1))
	default:
		return Bin(OpOr, genBool(rng, depth-1), genBool(rng, depth-1))
	}
}

// genRow draws one row for diffSchema; every column is NULL with
// probability ~1/7.
func genRow(rng *rand.Rand) Row {
	row := make(Row, len(diffSchema.Columns))
	for i, col := range diffSchema.Columns {
		if rng.Intn(7) == 0 {
			row[i] = NewNull(col.Type)
			continue
		}
		switch col.Type {
		case TInt:
			row[i] = NewInt(int64(rng.Intn(19) - 9))
		case TFloat:
			row[i] = NewFloat(float64(rng.Intn(37)-18) * 0.5)
		default:
			row[i] = NewText(diffWords[rng.Intn(len(diffWords))])
		}
	}
	return row
}

// diffTrial generates one expression and checks engine vs oracle on
// several rows. It reports the number of checked evaluations.
func diffTrial(t *testing.T, rng *rand.Rand) int {
	t.Helper()
	db := NewDatabase()
	if err := db.CreateTable(diffSchema); err != nil {
		t.Fatal(err)
	}
	cols := map[string]int{}
	for i, c := range diffSchema.Columns {
		cols[c.Name] = i
	}

	var e Expr
	if rng.Intn(2) == 0 {
		e = genBool(rng, 3)
	} else {
		e = genNum(rng, 3)
	}
	stmt := &SelectStmt{
		Items: []SelectItem{{Expr: e, Alias: "o"}},
		From:  []string{"t"},
	}
	ex, err := newExecution(db, stmt)
	if err != nil {
		t.Fatalf("resolution of generated %s: %v", e, err)
	}

	checked := 0
	for r := 0; r < 16; r++ {
		row := genRow(rng)
		got, gerr := ex.eval(e, row, nil)
		want, werr := oeval(e, row, cols)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("error divergence on %s\nrow: %v\nengine: %v %v\noracle: %+v %v", e, row, got, gerr, want, werr)
		}
		if gerr != nil {
			checked++
			continue
		}
		if got.Null != want.null {
			t.Fatalf("null divergence on %s\nrow: %v\nengine: %v\noracle: %+v", e, row, got, want)
		}
		if !got.Null {
			switch want.kind {
			case 'b':
				if got.Bool() != want.b {
					t.Fatalf("bool divergence on %s\nrow: %v\nengine: %v\noracle: %+v", e, row, got, want)
				}
			case 't':
				if got.S != want.s {
					t.Fatalf("text divergence on %s\nrow: %v\nengine: %v\noracle: %+v", e, row, got, want)
				}
			default:
				gf := got.AsFloat()
				if math.Abs(gf-want.f) > 1e-9*math.Max(1, math.Abs(want.f)) {
					t.Fatalf("numeric divergence on %s\nrow: %v\nengine: %v\noracle: %+v", e, row, got, want)
				}
			}
		}
		checked++
	}
	return checked
}

// vecTrial generates one boolean WHERE expression, plants it in a
// single-table statement over generated rows, and executes it under
// both exec modes: the vectorized evaluator must agree with the tree
// walker on digests and on error presence. This is the third corner
// of the differential triangle (tree vs oracle vs vector).
func vecTrial(t *testing.T, rng *rand.Rand) {
	t.Helper()
	db := NewDatabase()
	if err := db.CreateTable(diffSchema); err != nil {
		t.Fatal(err)
	}
	tbl := db.tables["t"]
	for r := 0; r < 24; r++ {
		tbl.Rows = append(tbl.Rows, genRow(rng))
	}
	tbl.invalidateIndexes()

	e := genBool(rng, 3)
	stmt := &SelectStmt{
		Items: []SelectItem{{Expr: &ColumnExpr{Column: "a"}}, {Expr: &ColumnExpr{Column: "s"}}},
		From:  []string{"t"},
		Where: e,
	}
	ctx := context.Background()
	db.SetExecMode(ExecTree)
	rt, errT := db.Execute(ctx, stmt)
	db.SetExecMode(ExecVector)
	rv, errV := db.Execute(ctx, stmt)
	if (errT != nil) != (errV != nil) {
		t.Fatalf("error presence divergence on where %s\ntree: %v\nvector: %v", e, errT, errV)
	}
	if errT != nil {
		return
	}
	if rt.Digest() != rv.Digest() {
		t.Fatalf("engine divergence on where %s\ntree:\n%s\nvector:\n%s", e, rt, rv)
	}
}

// TestExprEvalDifferential is the deterministic property-test entry:
// many generated expressions, fixed seed.
func TestExprEvalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	total := 0
	for trial := 0; trial < 400; trial++ {
		total += diffTrial(t, rng)
	}
	if total < 400*16 {
		t.Fatalf("checked only %d evaluations", total)
	}
}

// TestVecEvalDifferential is the deterministic vectorized
// counterpart: generated WHERE clauses through both engines.
func TestVecEvalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 400; trial++ {
		vecTrial(t, rng)
	}
}

// FuzzExprEval lets the fuzzer drive the generator seed, exploring
// expression shapes the fixed-seed test never reaches.
//
// Run continuously with:
//
//	go test -fuzz=FuzzExprEval ./internal/sqldb
func FuzzExprEval(f *testing.F) {
	for _, s := range []int64{0, 1, 7, 424242, -1} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 8; trial++ {
			diffTrial(t, rng)
			vecTrial(t, rng)
		}
	})
}
