package sqldb

import (
	"regexp"
	"strings"
	"testing"
)

// likeOracle translates a LIKE pattern into an anchored regular
// expression: '%' becomes ".*", '_' becomes ".", everything else is
// quoted. It is only a faithful oracle for ASCII inputs — LikeMatch
// is byte-oriented while Go regexps are rune-oriented, so multi-byte
// and invalid UTF-8 inputs are out of its scope (and skipped by the
// fuzz target below).
func likeOracle(pattern, s string) (bool, error) {
	var b strings.Builder
	b.WriteString(`\A(?s)`)
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '%':
			b.WriteString(`.*`)
		case '_':
			b.WriteString(`.`)
		default:
			b.WriteString(regexp.QuoteMeta(string(pattern[i])))
		}
	}
	b.WriteString(`\z`)
	re, err := regexp.Compile(b.String())
	if err != nil {
		return false, err
	}
	return re.MatchString(s), nil
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// FuzzLike differentially checks the two-pointer greedy LIKE matcher
// against the regexp translation oracle on arbitrary ASCII
// pattern/string pairs (the backtracking logic is the part worth
// fuzzing; byte-vs-rune semantics are covered by unit tests).
//
// Run continuously with:
//
//	go test -fuzz=FuzzLike ./internal/sqldb
func FuzzLike(f *testing.F) {
	for _, seed := range [][2]string{
		{"", ""},
		{"%", "anything"},
		{"a%b%c", "aXbYbZc"},
		{"_b%", "abc"},
		{"%%a%%", "a"},
		{"a_c", "abc"},
		{"%ab%ab%", "ababab"},
		{"x", ""},
		{"%a", "ba"},
		{"a%", "ab"},
	} {
		f.Add(seed[0], seed[1])
	}
	f.Fuzz(func(t *testing.T, pattern, s string) {
		if !isASCII(pattern) || !isASCII(s) {
			t.Skip("oracle is rune-oriented; matcher is byte-oriented")
		}
		if len(pattern) > 128 || len(s) > 512 {
			t.Skip("bounded to keep the quadratic worst case fast")
		}
		want, err := likeOracle(pattern, s)
		if err != nil {
			t.Fatalf("oracle failed to compile pattern %q: %v", pattern, err)
		}
		if got := LikeMatch(pattern, s); got != want {
			t.Fatalf("LikeMatch(%q, %q) = %v, oracle says %v", pattern, s, got, want)
		}
	})
}
