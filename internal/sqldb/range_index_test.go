package sqldb

// range_index_test.go — property tests for the sorted range indexes:
// binary-searched spans must agree with a sequential scan for every
// bound shape across arbitrary mutation sequences, advised clones must
// share one immutable build, and the totality gate must decide when an
// advised index may answer a non-leading predicate.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// scanRange is the oracle: the row ids a sequential scan keeps for the
// interval described by bnd over column ci.
func scanRange(tbl *Table, ci int, bnd rangeBounds) []int32 {
	var ids []int32
	for ri, row := range tbl.Rows {
		v := row[ci]
		if v.Null {
			continue
		}
		ok := true
		if bnd.hasLo {
			c, err := Compare(v, bnd.lo)
			if err != nil || c < 0 || (c == 0 && !bnd.loIncl) {
				ok = false
			}
		}
		if ok && bnd.hasHi {
			c, err := Compare(v, bnd.hi)
			if err != nil || c > 0 || (c == 0 && !bnd.hiIncl) {
				ok = false
			}
		}
		if ok {
			ids = append(ids, int32(ri))
		}
	}
	return ids
}

// randBounds yields a random bound shape (one-sided, two-sided, empty,
// inclusive and exclusive ends) over the int key domain.
func randBounds(rng *rand.Rand) rangeBounds {
	bnd := rangeBounds{}
	if rng.Intn(4) != 0 {
		bnd.hasLo = true
		bnd.lo = NewInt(rng.Int63n(12) - 1)
		bnd.loIncl = rng.Intn(2) == 0
	}
	if rng.Intn(4) != 0 {
		bnd.hasHi = true
		bnd.hi = NewInt(rng.Int63n(12) - 1)
		bnd.hiIncl = rng.Intn(2) == 0
	}
	return bnd
}

// checkRanges compares rangeLookup against the scan oracle on a batch
// of random bounds.
func checkRanges(t *testing.T, tbl *Table, es *EngineStats, rng *rand.Rand, step string) {
	t.Helper()
	for i := 0; i < 12; i++ {
		bnd := randBounds(rng)
		got := tbl.rangeLookup(0, bnd, es)
		want := scanRange(tbl, 0, bnd)
		if !idsMatch(got, want) {
			t.Fatalf("%s: bounds %+v: rangeLookup=%v scan=%v", step, bnd, got, want)
		}
	}
}

// TestRangeLookupMatchesScanUnderMutation drives the same mutation
// storm as the hash-index property test and revalidates random range
// probes after every step.
func TestRangeLookupMatchesScanUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tbl := newIndexTestTable(t, 64, rng)
	es := &EngineStats{}
	checkRanges(t, tbl, es, rng, "initial")
	for step := 0; step < 120; step++ {
		switch rng.Intn(6) {
		case 0:
			if err := tbl.Insert(NewInt(rng.Int63n(10)), NewInt(int64(step))); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := tbl.Set(rng.Intn(len(tbl.Rows)), "k", NewInt(rng.Int63n(10))); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := tbl.Set(rng.Intn(len(tbl.Rows)), "k", NewNull(TInt)); err != nil {
				t.Fatal(err)
			}
		case 3:
			if len(tbl.Rows) > 1 {
				if err := tbl.DeleteRow(rng.Intn(len(tbl.Rows))); err != nil {
					t.Fatal(err)
				}
			}
		case 4:
			// Non-key mutation: the range index must survive
			// (per-column invalidation).
			if err := tbl.SetAll("w", NewInt(rng.Int63n(5))); err != nil {
				t.Fatal(err)
			}
		default:
			if _, err := tbl.AppendRowCopy(rng.Intn(len(tbl.Rows))); err != nil {
				t.Fatal(err)
			}
		}
		checkRanges(t, tbl, es, rng, fmt.Sprintf("step %d", step))
	}
}

// TestRangeLookupTextColumn pins the text payload path of the sorted
// index, including duplicate keys (ids must come back in scan order).
func TestRangeLookupTextColumn(t *testing.T) {
	tbl := NewTable(TableSchema{Name: "s", Columns: []Column{
		{Name: "w", Type: TText, MaxLen: 8},
	}})
	words := []string{"pear", "fig", "apple", "fig", "", "kiwi", "fig", "apple"}
	for _, w := range words {
		if err := tbl.Insert(NewText(w)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Insert(NewNull(TText)); err != nil {
		t.Fatal(err)
	}
	es := &EngineStats{}
	cases := []rangeBounds{
		{hasLo: true, lo: NewText("apple"), loIncl: true, hasHi: true, hi: NewText("fig"), hiIncl: true},
		{hasLo: true, lo: NewText("fig"), loIncl: false},
		{hasHi: true, hi: NewText("fig"), hiIncl: false},
		{hasLo: true, lo: NewText(""), loIncl: true},
		{},
	}
	for _, bnd := range cases {
		got := tbl.rangeLookup(0, bnd, es)
		want := scanRange(tbl, 0, bnd)
		if !idsMatch(got, want) {
			t.Fatalf("bounds %+v: rangeLookup=%v scan=%v", bnd, got, want)
		}
	}
}

// adviseTestDB builds a small (below indexMinRows) advised database so
// any index activity is attributable to advice, never the size gate.
func adviseTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	if err := db.CreateTable(TableSchema{Name: "p", Columns: []Column{
		{Name: "k", Type: TInt},
		{Name: "w", Type: TInt},
	}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Insert("p", NewInt(int64(i%5)), NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestAdvisedClonesShareRangeIndex pins the amortization contract:
// advising a column builds its hash and range indexes once, every
// clone inherits the shared payloads, and each clone's range probe is
// a hit — with results identical to the tree oracle throughout.
func TestAdvisedClonesShareRangeIndex(t *testing.T) {
	db := adviseTestDB(t)
	if err := db.AdviseIndexes(IndexHint{Table: "p", Column: "k"}); err != nil {
		t.Fatal(err)
	}
	stmt := &SelectStmt{
		Items: []SelectItem{{Expr: Col("p", "w")}},
		From:  []string{"p"},
		Where: &BetweenExpr{X: Col("p", "k"), Lo: Lit(NewInt(1)), Hi: Lit(NewInt(3))},
	}
	// Snapshot before the first clone: advice materializes the shared
	// build at clone time, and that one build is the whole budget.
	before := db.EngineCounters()
	oracle := db.Clone()
	oracle.SetExecMode(ExecTree)
	want, err := oracle.Execute(context.Background(), stmt)
	if err != nil {
		t.Fatal(err)
	}

	const clones = 5
	for i := 0; i < clones; i++ {
		c := db.Clone()
		got, err := c.Execute(context.Background(), stmt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest() != want.Digest() || got.String() != want.String() {
			t.Fatalf("clone %d diverges from tree oracle:\n%s\nvs\n%s", i, got, want)
		}
	}
	after := db.EngineCounters()
	if builds := after.RangeBuilds - before.RangeBuilds; builds != 1 {
		t.Errorf("RangeBuilds delta = %d, want 1 (one shared build)", builds)
	}
	if hits := after.RangeHits - before.RangeHits; hits != clones {
		t.Errorf("RangeHits delta = %d, want %d (one per clone execution)", hits, clones)
	}
}

// TestAdvisedNonLeadingIndexTotalityGate pins chooseIndexPred's
// soundness rule: an advised index may answer a non-leading predicate
// only when every earlier predicate is provably total. A leading
// same-class comparison is total (index used); a leading division is
// not (index refused — skipping rows could skip its error).
func TestAdvisedNonLeadingIndexTotalityGate(t *testing.T) {
	run := func(t *testing.T, where Expr, wantIndexed bool) {
		t.Helper()
		db := adviseTestDB(t)
		if err := db.AdviseIndexes(IndexHint{Table: "p", Column: "k"}); err != nil {
			t.Fatal(err)
		}
		stmt := &SelectStmt{
			Items: []SelectItem{{Expr: Col("p", "w")}},
			From:  []string{"p"},
			Where: where,
		}
		oracle := db.Clone()
		oracle.SetExecMode(ExecTree)
		want, err := oracle.Execute(context.Background(), stmt)
		if err != nil {
			t.Fatal(err)
		}
		before := db.EngineCounters()
		got, err := db.Execute(context.Background(), stmt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest() != want.Digest() {
			t.Fatalf("engines diverge:\n%s\nvs\n%s", got, want)
		}
		after := db.EngineCounters()
		probes := (after.IndexBuilds - before.IndexBuilds) +
			(after.IndexHits - before.IndexHits) +
			(after.RangeBuilds - before.RangeBuilds) +
			(after.RangeHits - before.RangeHits)
		if wantIndexed && probes == 0 {
			t.Error("advised non-leading predicate was not index-served despite total prefix")
		}
		if !wantIndexed && probes != 0 {
			t.Error("index served a non-leading predicate behind a non-total prefix")
		}
	}

	// w <> 3 is total (same-class simple comparison) but not
	// indexable; the advised k-range behind it may use the index.
	t.Run("total-prefix", func(t *testing.T) {
		run(t, Bin(OpAnd,
			Bin(OpNe, Col("p", "w"), Lit(NewInt(3))),
			Bin(OpGe, Col("p", "k"), Lit(NewInt(2)))), true)
	})
	// w / (k+1) contains arithmetic (never provably total), so the
	// advised predicate behind it must not be index-served.
	t.Run("non-total-prefix", func(t *testing.T) {
		run(t, Bin(OpAnd,
			Bin(OpGt, Bin(OpDiv, Col("p", "w"), Bin(OpAdd, Col("p", "k"), Lit(NewInt(1)))), Lit(NewInt(0))),
			Bin(OpGe, Col("p", "k"), Lit(NewInt(2)))), false)
	})
}
