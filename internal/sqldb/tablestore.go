package sqldb

import (
	"fmt"
	"strings"
)

// TableStore is a pluggable row backend: a Database whose tables were
// registered with AttachStore faults each table's rows in on first
// access instead of holding them in memory from the start. The
// concrete implementation lives in internal/storage (paged heap files
// behind a buffer pool); this interface keeps sqldb itself free of
// any file I/O (lint rule GL010).
//
// LoadRows must return rows in exactly the order they were saved —
// fingerprints and result digests are computed over loaded rows and
// must match the in-memory engine byte for byte.
type TableStore interface {
	LoadRows(table string) ([]Row, error)
}

// AttachStore registers ts as the lazy row source for the named
// tables (which must already exist, typically created empty from the
// store's catalog). It must be called before the database is shared
// across goroutines; after that, fault-in itself is goroutine-safe.
//
// Clones produced by Clone/CloneShared/CloneTables materialize every
// pending table first and do not carry the store — probe mutation
// runs entirely in memory, exactly as without a store.
func (db *Database) AttachStore(ts TableStore, tables []string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.store = ts
	if db.pending == nil {
		db.pending = make(map[string]bool, len(tables))
	}
	for _, name := range tables {
		name = strings.ToLower(name)
		if _, ok := db.tables[name]; ok {
			db.pending[name] = true
		}
	}
}

// StoreBacked reports whether any table still faults in from a store.
func (db *Database) StoreBacked() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store != nil && len(db.pending) > 0
}

// ensure faults in the named table if it is still pending. Must be
// called before taking db.mu (the mutex is not reentrant).
func (db *Database) ensure(name string) error {
	if db.store == nil {
		return nil
	}
	name = strings.ToLower(name)
	db.mu.RLock()
	err := db.storeErr
	pending := db.pending[name]
	db.mu.RUnlock()
	if err != nil {
		return err
	}
	if !pending {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.faultLocked(name)
}

// ensureAll faults in every pending table. Must be called before
// taking db.mu.
func (db *Database) ensureAll() error {
	if db.store == nil {
		return nil
	}
	db.mu.RLock()
	err := db.storeErr
	n := len(db.pending)
	db.mu.RUnlock()
	if err != nil || n == 0 {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.pending))
	for name := range db.pending {
		names = append(names, name)
	}
	for _, name := range names {
		if err := db.faultLocked(name); err != nil {
			return err
		}
	}
	return nil
}

// faultLocked loads one pending table's rows. Caller holds db.mu.
// Load failures are sticky: the database stays usable for what is
// already resident, and every later fault-in reports the same error
// (bulk read-only paths like Clone proceed degraded; the next
// Table call surfaces it).
func (db *Database) faultLocked(name string) error {
	if db.storeErr != nil {
		return db.storeErr
	}
	if !db.pending[name] {
		return nil
	}
	rows, err := db.store.LoadRows(name)
	if err != nil {
		db.storeErr = fmt.Errorf("sqldb: fault in table %s: %w", name, err)
		return db.storeErr
	}
	if t, ok := db.tables[name]; ok {
		t.SetRows(rows)
	}
	delete(db.pending, name)
	return nil
}
