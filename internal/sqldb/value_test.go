package sqldb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCompareNumeric(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewText("abc"), NewText("abd"), -1},
		{NewText("abc"), NewText("abc"), 0},
		{MustDate("1995-03-14"), MustDate("1995-03-15"), -1},
		{NewBool(false), NewBool(true), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Fatalf("Compare(%v, %v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIncompatible(t *testing.T) {
	if _, err := Compare(NewInt(1), NewText("1")); err == nil {
		t.Error("Compare(int, text) should error")
	}
	if _, err := Compare(NewBool(true), NewInt(1)); err == nil {
		t.Error("Compare(bool, int) should error")
	}
}

func TestNullOrdering(t *testing.T) {
	c, err := Compare(NewNull(TInt), NewInt(-100))
	if err != nil || c != -1 {
		t.Errorf("NULL should sort before values, got %d err=%v", c, err)
	}
	c, _ = Compare(NewNull(TInt), NewNull(TText))
	if c != 0 {
		t.Errorf("NULL vs NULL should compare 0, got %d", c)
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(NewNull(TInt), NewNull(TInt)) {
		t.Error("NULL = NULL must be false under WHERE semantics")
	}
	if Equal(NewNull(TInt), NewInt(0)) {
		t.Error("NULL = 0 must be false")
	}
}

func TestGroupKeyNullsGroupTogether(t *testing.T) {
	if NewNull(TInt).GroupKey() != NewNull(TText).GroupKey() {
		t.Error("NULLs must share a group key")
	}
	if NewInt(1).GroupKey() == NewText("1").GroupKey() {
		t.Error("int 1 and text '1' must not collide")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		name string
		got  func() (Value, error)
		want Value
	}{
		{"int+int", func() (Value, error) { return Add(NewInt(2), NewInt(3)) }, NewInt(5)},
		{"int*int", func() (Value, error) { return Mul(NewInt(2), NewInt(3)) }, NewInt(6)},
		{"int-int", func() (Value, error) { return Sub(NewInt(2), NewInt(3)) }, NewInt(-1)},
		{"int/int is float", func() (Value, error) { return Div(NewInt(3), NewInt(2)) }, NewFloat(1.5)},
		{"float+int", func() (Value, error) { return Add(NewFloat(1.5), NewInt(1)) }, NewFloat(2.5)},
		{"date+int", func() (Value, error) { return Add(MustDate("1995-03-14"), NewInt(2)) }, MustDate("1995-03-16")},
		{"date-date", func() (Value, error) { return Sub(MustDate("1995-03-16"), MustDate("1995-03-14")) }, NewInt(2)},
	}
	for _, c := range cases {
		got, err := c.got()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := Add(NewText("a"), NewInt(1)); err == nil {
		t.Error("text arithmetic should error")
	}
	if _, err := Mul(MustDate("2000-01-01"), NewInt(2)); err == nil {
		t.Error("date multiplication should error")
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	v, err := Add(NewNull(TInt), NewInt(1))
	if err != nil || !v.Null {
		t.Errorf("NULL + 1 should be NULL, got %v err=%v", v, err)
	}
}

func TestNeg(t *testing.T) {
	v, err := Neg(NewInt(5))
	if err != nil || v.I != -5 {
		t.Errorf("Neg(5) = %v, %v", v, err)
	}
	v, err = Neg(NewFloat(2.5))
	if err != nil || v.F != -2.5 {
		t.Errorf("Neg(2.5) = %v, %v", v, err)
	}
	if _, err := Neg(NewText("x")); err == nil {
		t.Error("Neg(text) should error")
	}
	n, err := Neg(NewNull(TInt))
	if err != nil || !n.Null {
		t.Error("Neg(NULL) should stay NULL")
	}
}

func TestDateRoundTrip(t *testing.T) {
	for _, s := range []string{"1970-01-01", "1969-12-31", "1995-03-14", "2099-12-31", "1900-01-01"} {
		v, err := DateFromString(s)
		if err != nil {
			t.Fatalf("DateFromString(%q): %v", s, err)
		}
		if got := DateString(v.I); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	if _, err := DateFromString("not-a-date"); err == nil {
		t.Error("invalid date should error")
	}
}

func TestDateRoundTripProperty(t *testing.T) {
	f := func(days int32) bool {
		d := int64(days % 60000) // within a few hundred years of epoch
		v, err := DateFromString(DateString(d))
		return err == nil && v.I == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTo(t *testing.T) {
	v := RoundTo(NewFloat(1.23456), 2)
	if v.F != 1.23 {
		t.Errorf("RoundTo(1.23456, 2) = %v", v.F)
	}
	v = RoundTo(NewFloat(1.235), 2)
	if math.Abs(v.F-1.24) > 1e-12 {
		t.Errorf("RoundTo(1.235, 2) = %v", v.F)
	}
	// Non-floats pass through.
	if RoundTo(NewInt(7), 2) != NewInt(7) {
		t.Error("RoundTo should not touch ints")
	}
}

func TestSQLLiteral(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewFloat(1.5), "1.5"},
		{NewText("it's"), "'it''s'"},
		{MustDate("1995-03-14"), "date '1995-03-14'"},
		{NewNull(TInt), "NULL"},
		{NewBool(true), "true"},
	}
	for _, c := range cases {
		if got := c.v.SQLLiteral(); got != c.want {
			t.Errorf("SQLLiteral(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(NewFloat(1.0000000001), NewFloat(1.0)) {
		t.Error("tiny float differences should be approx-equal")
	}
	if ApproxEqual(NewFloat(1.01), NewFloat(1.0)) {
		t.Error("1.01 vs 1.0 should differ")
	}
	if !ApproxEqual(NewInt(3), NewFloat(3.0)) {
		t.Error("int 3 vs float 3.0 should be approx-equal")
	}
	if ApproxEqual(NewNull(TInt), NewInt(0)) {
		t.Error("NULL vs 0 should differ")
	}
	if !ApproxEqual(NewNull(TInt), NewNull(TInt)) {
		t.Error("NULL vs NULL should be approx-equal for result comparison")
	}
}
