package sqldb

import (
	"strings"
	"testing"
)

func csvTable(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	if err := db.CreateTable(TableSchema{
		Name: "people",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "name", Type: TText, MaxLen: 30},
			{Name: "balance", Type: TFloat, Precision: 2},
			{Name: "joined", Type: TDate},
			{Name: "active", Type: TBool},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadCSVAllTypes(t *testing.T) {
	db := csvTable(t)
	const data = `id,name,balance,joined,active
1,alice,10.50,2020-01-15,true
2,bob,-3.25,2019-06-30,f
3,\N,,2021-11-02,0
`
	n, err := db.LoadCSV("people", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d rows", n)
	}
	tbl, _ := db.Table("people")
	if v, _ := tbl.Get(0, "balance"); v.F != 10.50 {
		t.Errorf("balance: %v", v)
	}
	if v, _ := tbl.Get(1, "active"); v.Bool() {
		t.Errorf("bob should be inactive")
	}
	if v, _ := tbl.Get(2, "name"); !v.Null {
		t.Errorf(`\N should read as NULL text, got %v`, v)
	}
	if v, _ := tbl.Get(2, "balance"); !v.Null {
		t.Errorf("empty numeric should read as NULL, got %v", v)
	}
	if v, _ := tbl.Get(0, "joined"); v.String() != "2020-01-15" {
		t.Errorf("date: %v", v)
	}
}

func TestLoadCSVColumnSubsetAndPermutation(t *testing.T) {
	db := csvTable(t)
	const data = `name,id
carol,7
`
	if _, err := db.LoadCSV("people", strings.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("people")
	if v, _ := tbl.Get(0, "id"); v.I != 7 {
		t.Errorf("permuted id: %v", v)
	}
	if v, _ := tbl.Get(0, "balance"); !v.Null {
		t.Errorf("unnamed column should be NULL: %v", v)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := csvTable(t)
	cases := []struct {
		name, data string
	}{
		{"unknown column", "id,nope\n1,2\n"},
		{"bad int", "id\nxyz\n"},
		{"bad date", "joined\n2020-13-99\n"},
		{"bad bool", "active\nmaybe\n"},
		{"ragged row", "id,name\n1\n"},
		{"missing table", ""},
	}
	for _, c := range cases {
		var err error
		if c.name == "missing table" {
			_, err = db.LoadCSV("ghost", strings.NewReader("x\n1\n"))
		} else {
			_, err = db.LoadCSV("people", strings.NewReader(c.data))
		}
		if err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := csvTable(t)
	const data = `id,name,balance,joined,active
1,alice,10.50,2020-01-15,true
2,"comma, name",-3.25,2019-06-30,false
`
	if _, err := db.LoadCSV("people", strings.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := db.WriteCSV("people", &out); err != nil {
		t.Fatal(err)
	}
	// Reload the dump into a fresh table and compare contents.
	db2 := csvTable(t)
	if _, err := db2.LoadCSV("people", strings.NewReader(out.String())); err != nil {
		t.Fatalf("reload: %v\ndump:\n%s", err, out.String())
	}
	t1, _ := db.Table("people")
	t2, _ := db2.Table("people")
	if t1.RowCount() != t2.RowCount() {
		t.Fatalf("row counts differ: %d vs %d", t1.RowCount(), t2.RowCount())
	}
	for i := range t1.Rows {
		for j := range t1.Rows[i] {
			if !ApproxEqual(t1.Rows[i][j], t2.Rows[i][j]) {
				t.Errorf("cell (%d,%d): %v vs %v", i, j, t1.Rows[i][j], t2.Rows[i][j])
			}
		}
	}
}

func TestWriteResultCSV(t *testing.T) {
	res := &Result{
		Columns: []string{"a", "b"},
		Rows: []Row{
			{NewInt(1), NewText("x")},
			{NewNull(TInt), NewNull(TText)},
		},
	}
	var out strings.Builder
	if err := WriteResultCSV(res, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"a,b", "1,x", `,\N`} {
		if !strings.Contains(got, want) {
			t.Errorf("dump missing %q:\n%s", want, got)
		}
	}
}
