package sqldb

import (
	"testing"
)

func TestExprStringPrecedence(t *testing.T) {
	a, b, c := Col("t", "a"), Col("t", "b"), Col("t", "c")
	cases := []struct {
		e    Expr
		want string
	}{
		// Multiplication over addition needs parentheses on the
		// addition side.
		{Bin(OpMul, Bin(OpAdd, a, b), c), "(t.a + t.b) * t.c"},
		{Bin(OpAdd, Bin(OpMul, a, b), c), "t.a * t.b + t.c"},
		// The revenue form.
		{Bin(OpMul, a, Bin(OpSub, Lit(NewInt(1)), b)), "t.a * (1 - t.b)"},
		// Comparisons bind looser than arithmetic.
		{Bin(OpGe, Bin(OpAdd, a, b), Lit(NewInt(3))), "t.a + t.b >= 3"},
		// AND binds looser than comparison.
		{Bin(OpAnd, Bin(OpEq, a, b), Bin(OpLt, b, c)), "t.a = t.b and t.b < t.c"},
		// OR under AND is parenthesized.
		{Bin(OpAnd, Bin(OpOr, Bin(OpEq, a, b), Bin(OpEq, b, c)), Bin(OpEq, a, c)),
			"(t.a = t.b or t.b = t.c) and t.a = t.c"},
	}
	for _, cse := range cases {
		if got := cse.e.String(); got != cse.want {
			t.Errorf("got %q, want %q", got, cse.want)
		}
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	a := Bin(OpEq, Col("t", "a"), Lit(NewInt(1)))
	b := Bin(OpEq, Col("t", "b"), Lit(NewInt(2)))
	c := Bin(OpEq, Col("t", "c"), Lit(NewInt(3)))
	combined := AndAll([]Expr{a, b, c})
	parts := Conjuncts(combined)
	if len(parts) != 3 {
		t.Fatalf("conjunct count %d", len(parts))
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	if AndAll([]Expr{a}) != Expr(a) {
		t.Error("AndAll singleton should be identity")
	}
	if len(Conjuncts(nil)) != 0 {
		t.Error("Conjuncts(nil) should be empty")
	}
	// OR is not split.
	or := Bin(OpOr, a, b)
	if len(Conjuncts(or)) != 1 {
		t.Error("Conjuncts must not split OR")
	}
}

func TestHasAggregateWalks(t *testing.T) {
	agg := &AggExpr{Fn: AggSum, Arg: Col("t", "a")}
	cases := []struct {
		e    Expr
		want bool
	}{
		{agg, true},
		{Bin(OpAdd, Col("t", "a"), agg), true},
		{&BetweenExpr{X: agg, Lo: Lit(NewInt(1)), Hi: Lit(NewInt(2))}, true},
		{&NotExpr{X: Bin(OpGe, agg, Lit(NewInt(1)))}, true},
		{Col("t", "a"), false},
		{Bin(OpMul, Col("t", "a"), Col("t", "b")), false},
		{&LikeExpr{X: Col("t", "s"), Pattern: "%x%"}, false},
	}
	for _, c := range cases {
		if got := HasAggregate(c.e); got != c.want {
			t.Errorf("HasAggregate(%s) = %v", c.e, got)
		}
	}
}

func TestColumnsOfCollectsAll(t *testing.T) {
	e := Bin(OpAnd,
		Bin(OpEq, Col("t", "a"), Col("u", "b")),
		&BetweenExpr{X: Col("t", "c"), Lo: Lit(NewInt(1)), Hi: Col("u", "d")})
	cols := ColumnsOf(e)
	if len(cols) != 4 {
		t.Fatalf("collected %d columns", len(cols))
	}
	seen := map[string]bool{}
	for _, c := range cols {
		seen[c.String()] = true
	}
	for _, want := range []string{"t.a", "u.b", "t.c", "u.d"} {
		if !seen[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestSelectItemOutputName(t *testing.T) {
	cases := []struct {
		item SelectItem
		want string
	}{
		{SelectItem{Expr: Col("t", "a")}, "a"},
		{SelectItem{Expr: Col("t", "a"), Alias: "x"}, "x"},
		{SelectItem{Expr: &AggExpr{Fn: AggSum, Arg: Col("t", "a")}}, "sum"},
		{SelectItem{Expr: Bin(OpAdd, Col("t", "a"), Lit(NewInt(1)))}, "?column?"},
	}
	for _, c := range cases {
		if got := c.item.OutputName(); got != c.want {
			t.Errorf("OutputName(%s) = %q, want %q", c.item, got, c.want)
		}
	}
}

func TestSelectStmtString(t *testing.T) {
	stmt := &SelectStmt{
		Items:   []SelectItem{{Expr: Col("t", "a")}, {Expr: &AggExpr{Fn: AggCount, Star: true}, Alias: "n"}},
		From:    []string{"t"},
		Where:   Bin(OpGe, Col("t", "a"), Lit(NewInt(3))),
		GroupBy: []Expr{Col("t", "a")},
		Having:  Bin(OpGe, &AggExpr{Fn: AggCount, Star: true}, Lit(NewInt(2))),
		OrderBy: []OrderKey{{Expr: &ColumnExpr{Column: "n"}, Desc: true}},
		Limit:   7,
	}
	want := "select t.a, count(*) as n\nfrom t\nwhere t.a >= 3\ngroup by t.a\nhaving count(*) >= 2\norder by n desc\nlimit 7;"
	if got := stmt.String(); got != want {
		t.Errorf("String:\n%s\nwant:\n%s", got, want)
	}
}

func TestAggExprString(t *testing.T) {
	if got := (&AggExpr{Fn: AggCount, Star: true}).String(); got != "count(*)" {
		t.Errorf("count(*): %q", got)
	}
	if got := (&AggExpr{Fn: AggCount, Arg: Col("t", "a"), Distinct: true}).String(); got != "count(distinct t.a)" {
		t.Errorf("distinct: %q", got)
	}
}
