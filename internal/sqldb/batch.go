package sqldb

// batch.go — typed column batches for the vectorized engine.
//
// A batch exposes a row source, restricted to a selection of row ids,
// as typed column vectors: per-column value slices plus a validity
// (null) bitmap, gathered lazily on first reference. The vectorized
// predicate evaluator (vector.go) computes over these instead of
// per-row []Value wide rows, which removes the tree engine's dominant
// allocation (one width-sized Row per scanned row).
//
// Two sources exist: a table (scan-side batches, addressing the
// table's own columns) and a slice of joined wide rows (post-join
// batches, addressing every wide-row slot). Both store values coerced
// to their column's schema type, so the typed fast paths apply to
// either.

// vec is one column vector: len(sel) logical elements of a single
// type. Storage is typed — ints carries TInt/TDate/TBool payloads,
// floats TFloat, strs TText — with null as the validity bitmap (a nil
// null slice means no NULLs). Two special layouts exist:
//
//   - isConst: a broadcast scalar (literal); physical length 1.
//   - vals:    boxed Values, used for computed results (arithmetic,
//     negation) whose elements are produced by the scalar operators
//     to keep semantics identical to the tree engine.
//
// A vec's non-null elements all share the vec's type; the nominal
// type of a NULL element is not tracked because no predicate outcome
// or error can observe it (every operator null-checks before any
// type-sensitive step, mirroring the tree evaluator).
type vec struct {
	typ     Type
	n       int // logical length
	isConst bool
	null    []bool
	ints    []int64
	floats  []float64
	strs    []string
	vals    []Value
}

// at maps a logical position to a physical storage index.
func (v *vec) at(k int) int {
	if v.isConst {
		return 0
	}
	return k
}

func (v *vec) nullAt(k int) bool {
	if v.vals != nil {
		return v.vals[v.at(k)].Null
	}
	return v.null != nil && v.null[v.at(k)]
}

// valueAt reconstructs the element as a scalar Value. For typed
// storage this is exact: stored values are coerced to their column
// type on insert, so a TFloat element always has I==0 and a
// TInt/TDate/TBool element always has F==0 — reconstruction loses
// nothing the tree engine could observe.
func (v *vec) valueAt(k int) Value {
	i := v.at(k)
	if v.vals != nil {
		return v.vals[i]
	}
	if v.null != nil && v.null[i] {
		return NewNull(v.typ)
	}
	switch v.typ {
	case TFloat:
		return Value{Typ: TFloat, F: v.floats[i]}
	case TText:
		return Value{Typ: TText, S: v.strs[i]}
	default: // TInt, TDate, TBool
		return Value{Typ: v.typ, I: v.ints[i]}
	}
}

// boolAt reports the element's truth value (Value.Bool semantics:
// NULL is false, and only the I payload counts).
func (v *vec) boolAt(k int) bool {
	if v.nullAt(k) {
		return false
	}
	if v.vals != nil {
		return v.vals[v.at(k)].Bool()
	}
	switch v.typ {
	case TFloat, TText:
		return false // I payload is zero for these layouts
	default:
		return v.ints[v.at(k)] != 0
	}
}

// newBoolVec allocates a TBool result vector of length n.
func newBoolVec(n int) *vec {
	return &vec{typ: TBool, n: n, null: make([]bool, n), ints: make([]int64, n)}
}

// newValsVec allocates a boxed-values vector of length n for computed
// results; typ is refined as elements are produced.
func newValsVec(n int) *vec {
	return &vec{typ: TUnknown, n: n, vals: make([]Value, n)}
}

// constVec broadcasts one scalar (a literal) across the batch.
func constVec(val Value, n int) *vec {
	return &vec{typ: val.Typ, n: n, isConst: true, vals: []Value{val}}
}

// batch is a row source restricted to a selection, with lazily
// gathered column vectors aligned to that selection. Exactly one of
// tbl/rows is set.
type batch struct {
	tbl   *Table // table source (scan-side batches)
	rows  []Row  // wide-row source (post-join batches)
	types []Type // wide-row source: schema type of every slot
	name  string // source name for resolution error messages

	off int     // first wide-row slot addressed by this batch
	sel []int32 // selected row ids, ascending scan order
	es  *EngineStats

	cols map[int]*vec // local column index -> gathered vector
}

func newBatch(tbl *Table, off int, sel []int32, es *EngineStats) *batch {
	return &batch{tbl: tbl, name: tbl.Schema.Name, off: off, sel: sel, es: es, cols: map[int]*vec{}}
}

// newWideBatch exposes joined wide rows as a batch: every slot is
// addressable (off 0), typed by the owning column's schema type. The
// post-join stages (residual, aggregation, projection, ordering)
// evaluate over these.
func newWideBatch(rows []Row, types []Type, sel []int32, es *EngineStats) *batch {
	return &batch{rows: rows, types: types, name: "the join result", sel: sel, es: es, cols: map[int]*vec{}}
}

// ncol reports the number of addressable local columns.
func (b *batch) ncol() int {
	if b.tbl != nil {
		return len(b.tbl.Schema.Columns)
	}
	return len(b.types)
}

// sub derives a batch over the same source restricted to subSel.
func (b *batch) sub(subSel []int32) *batch {
	nb := *b
	nb.sel = subSel
	nb.cols = map[int]*vec{}
	return &nb
}

// col gathers (once) and returns the vector for a local column.
func (b *batch) col(ci int) *vec {
	if v, ok := b.cols[ci]; ok {
		return v
	}
	n := len(b.sel)
	src := b.rows
	typ := TUnknown
	if b.tbl != nil {
		src = b.tbl.Rows
		typ = b.tbl.Schema.Columns[ci].Type
	} else {
		typ = b.types[ci]
	}
	v := &vec{typ: typ, n: n}
	switch typ {
	case TFloat:
		v.floats = make([]float64, n)
	case TText:
		v.strs = make([]string, n)
	default:
		v.ints = make([]int64, n)
	}
	for k, ri := range b.sel {
		val := src[ri][ci]
		if val.Null {
			if v.null == nil {
				v.null = make([]bool, n)
			}
			v.null[k] = true
			continue
		}
		switch typ {
		case TFloat:
			v.floats[k] = val.F
		case TText:
			v.strs[k] = val.S
		default:
			v.ints[k] = val.I
		}
	}
	b.cols[ci] = v
	b.es.VectorBatches.Add(1)
	return v
}
