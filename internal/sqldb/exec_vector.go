package sqldb

import (
	"context"
	"strings"
)

// exec_vector.go — the vectorized, index-assisted execution engine.
//
// runVector executes the same compiled plan as runTree but replaces
// every stage:
//
//   - scan+filter works on selections ([]int32 row ids) narrowed by
//     vectorized predicate evaluation over column batches, with
//     secondary indexes (hash for equality, sorted for
//     BETWEEN/inequality ranges) serving eligible predicates;
//   - the greedy hash join runs over row-id tuple columns and reuses
//     cached build sides, materializing wide rows only for tuples
//     that survive every join;
//   - the post-join tail (residual predicates, aggregation,
//     projection, ORDER BY, LIMIT) evaluates batch-at-a-time in
//     finishVector, with a top-K heap short-circuiting ordered
//     limited queries.
//
// The tree engine is the differential oracle: every stage here must
// match it on digests, column names, row order and error presence
// (enginediff_test.go). The join replicates the tree engine's greedy
// order (smallest fragment first, from-clause tie-break) and emission
// order (probe order x bucket order), so row order matches too.
//
// Which predicate an index answers is decided by chooseIndexPred: by
// default only the leading pushdown predicate qualifies (skipping it
// cannot skip an error another predicate would have raised), but a
// column carrying index advice (Database.AdviseIndexes — the
// extraction phases declare their repeated probe columns) may be
// served out of order when every predicate before it is provably
// total.

// indexMinRows gates the secondary index: tables smaller than this
// are cheaper to scan than to index. Advised columns bypass the gate
// — the build is amortized across a whole probe fan-out via clone
// sharing, so it pays off even on small tables.
const indexMinRows = 16

func (ex *execution) runVector(ctx context.Context, ticks *int) (*Result, error) {
	sels := map[string][]int32{}
	for _, t := range ex.tables {
		sel, err := ex.scanVector(ctx, t, ticks)
		if err != nil {
			return nil, err
		}
		sels[t] = sel
	}
	current, err := ex.joinVector(ctx, sels, ticks)
	if err != nil {
		return nil, err
	}
	return ex.finishVector(ctx, current, ticks)
}

// identitySel returns the selection covering rows [0, n).
func identitySel(n int) []int32 {
	sel := make([]int32, n)
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// scanVector evaluates a table's pushdown predicates over a narrowing
// selection of row ids. One predicate may be answered by an index
// (chooseIndexPred); the rest evaluate vectorized, in WHERE order,
// each over only the rows the previous ones kept (matching the tree
// engine's per-row short-circuit).
func (ex *execution) scanVector(ctx context.Context, t string, ticks *int) ([]int32, error) {
	tbl := ex.db.tables[t]
	preds := ex.pushdown[t]
	// Cost model: a scan charges one tick per stored row whether or
	// not an index short-circuits the work, so timeout behaviour does
	// not depend on the engine or on index cache state.
	if err := chargeTicks(ctx, ticks, len(tbl.Rows)); err != nil {
		return nil, err
	}
	var sel []int32
	skip, plan := ex.chooseIndexPred(t, tbl, preds)
	if skip >= 0 {
		if plan.eq {
			sel = tbl.pointLookup(plan.ci, plan.key, ex.db.estats)
		} else {
			sel = tbl.rangeLookup(plan.ci, plan.bnd, ex.db.estats)
		}
	} else {
		sel = identitySel(len(tbl.Rows))
	}
	for i, p := range preds {
		if i == skip {
			continue
		}
		if len(sel) == 0 {
			break // no rows left; the tree engine evaluates nothing either
		}
		b := newBatch(tbl, ex.offsets[t], sel, ex.db.estats)
		v, err := ex.evalVec(p, b)
		if err != nil {
			return nil, err
		}
		// Fresh slice: sel may be owned by the index (or by a cached
		// build side) and must never be narrowed in place.
		kept := make([]int32, 0, len(sel))
		for k := range sel {
			if !v.nullAt(k) && v.boolAt(k) {
				kept = append(kept, sel[k])
			}
		}
		sel = kept
	}
	return sel, nil
}

// indexPlan describes how an index answers one pushdown predicate.
type indexPlan struct {
	ci  int
	eq  bool   // hash point lookup (true) vs sorted range probe
	key string // eq: the literal's group key
	bnd rangeBounds
}

// chooseIndexPred picks the pushdown predicate (by position) an index
// will answer, or -1. The leading predicate qualifies when the table
// clears the size gate or its column is advised; a range predicate
// additionally needs advice or an already-built index. A later
// predicate qualifies only when its column is advised AND every
// predicate before it is provably total: rows the index rejects skip
// the earlier predicates entirely, which must not skip an error the
// tree engine would have raised.
//
// Among qualifying predicates, one whose index is already built wins
// over one that would force a build: during minimization the probed
// column is invalidated on every mutation, so serving the probe from
// a sibling column's still-valid index turns an O(n log n) rebuild
// per probe into a cached lookup. Any single qualifying choice is
// result-identical (the remaining predicates filter in WHERE order),
// so preference only shifts cost, never semantics.
func (ex *execution) chooseIndexPred(t string, tbl *Table, preds []Expr) (int, indexPlan) {
	best, bestPlan := -1, indexPlan{}
	for i, p := range preds {
		plan, ok := ex.indexablePred(t, p)
		if !ok {
			continue
		}
		adv := ex.advised(t, plan.ci)
		if !plan.eq && !adv && !tbl.cachedIndex(plan.ci, false) {
			// A range build is a sort — O(n log n) against the O(n)
			// scan it replaces — so it never pays on a one-shot
			// execution. Range pushdown is minimizer-driven: a phase
			// advised the column, or a previous execution already
			// paid for the build.
			continue
		}
		if i == 0 {
			if len(tbl.Rows) < indexMinRows && !adv {
				continue
			}
		} else {
			if !adv {
				continue
			}
			total := true
			for _, q := range preds[:i] {
				if !ex.totalPred(q) {
					total = false
					break
				}
			}
			if !total {
				continue
			}
		}
		if tbl.cachedIndex(plan.ci, plan.eq) {
			return i, plan
		}
		if best < 0 {
			best, bestPlan = i, plan
		}
	}
	return best, bestPlan
}

// advised reports whether (table, local column) carries index advice.
func (ex *execution) advised(t string, ci int) bool {
	for _, c := range ex.db.advice[t] {
		if c == ci {
			return true
		}
	}
	return false
}

// indexablePred recognizes a predicate an index answers with
// scan-identical semantics: equality (hash) or BETWEEN/inequality
// (sorted range).
func (ex *execution) indexablePred(t string, p Expr) (indexPlan, bool) {
	if ci, key, ok := ex.indexableEq(t, p); ok {
		return indexPlan{ci: ci, eq: true, key: key}, true
	}
	if ci, bnd, ok := ex.indexableRange(t, p); ok {
		return indexPlan{ci: ci, bnd: bnd}, true
	}
	return indexPlan{}, false
}

// indexableEq recognizes a predicate a point lookup can answer with
// semantics identical to scanning: `col = literal` (either operand
// order) where the literal is non-NULL and its type equals the
// column's type, the column being int, date, bool or text. For those
// pairings Compare()==0 coincides exactly with group-key equality, so
// the index returns precisely the rows the tree engine keeps, and the
// comparison can never error. Floats are excluded (-0.0 vs 0.0 and
// int/float widening break the key equivalence), as are cross-class
// pairs (the tree engine may need to raise a comparison error).
func (ex *execution) indexableEq(t string, p Expr) (ci int, key string, ok bool) {
	b, isBin := p.(*BinaryExpr)
	if !isBin || b.Op != OpEq {
		return 0, "", false
	}
	col, isCol := b.L.(*ColumnExpr)
	lit, isLit := b.R.(*LiteralExpr)
	if !isCol || !isLit {
		col, isCol = b.R.(*ColumnExpr)
		lit, isLit = b.L.(*LiteralExpr)
		if !isCol || !isLit {
			return 0, "", false
		}
	}
	if lit.Val.Null {
		return 0, "", false
	}
	ci, colTyp, ok := ex.localIndexCol(t, col)
	if !ok || colTyp != lit.Val.Typ {
		return 0, "", false
	}
	switch colTyp {
	case TInt, TDate, TBool, TText:
		return ci, lit.Val.GroupKey(), true
	default:
		return 0, "", false
	}
}

// indexableRange recognizes a predicate a sorted-index probe can
// answer with scan-identical semantics: `col BETWEEN lit AND lit` or
// a single inequality between the column and a literal (either
// operand order), with non-NULL literals whose type equals the
// column's. Eligible types are those whose payload order coincides
// with Compare order (rangeIndexable); floats are excluded exactly as
// for the hash index.
func (ex *execution) indexableRange(t string, p Expr) (int, rangeBounds, bool) {
	switch x := p.(type) {
	case *BetweenExpr:
		col, isCol := x.X.(*ColumnExpr)
		lo, loLit := x.Lo.(*LiteralExpr)
		hi, hiLit := x.Hi.(*LiteralExpr)
		if !isCol || !loLit || !hiLit || lo.Val.Null || hi.Val.Null {
			return 0, rangeBounds{}, false
		}
		ci, typ, ok := ex.localIndexCol(t, col)
		if !ok || !rangeIndexable(typ) || lo.Val.Typ != typ || hi.Val.Typ != typ {
			return 0, rangeBounds{}, false
		}
		return ci, rangeBounds{
			lo: lo.Val, hi: hi.Val,
			hasLo: true, hasHi: true,
			loIncl: true, hiIncl: true,
		}, true
	case *BinaryExpr:
		op := x.Op
		if op != OpLt && op != OpLe && op != OpGt && op != OpGe {
			return 0, rangeBounds{}, false
		}
		col, isCol := x.L.(*ColumnExpr)
		lit, isLit := x.R.(*LiteralExpr)
		if !isCol || !isLit {
			col, isCol = x.R.(*ColumnExpr)
			lit, isLit = x.L.(*LiteralExpr)
			if !isCol || !isLit {
				return 0, rangeBounds{}, false
			}
			// Literal on the left: flip the operator to col-op-lit.
			switch op {
			case OpLt:
				op = OpGt
			case OpLe:
				op = OpGe
			case OpGt:
				op = OpLt
			default:
				op = OpLe
			}
		}
		if lit.Val.Null {
			return 0, rangeBounds{}, false
		}
		ci, typ, ok := ex.localIndexCol(t, col)
		if !ok || !rangeIndexable(typ) || lit.Val.Typ != typ {
			return 0, rangeBounds{}, false
		}
		var bnd rangeBounds
		switch op {
		case OpLt:
			bnd = rangeBounds{hi: lit.Val, hasHi: true}
		case OpLe:
			bnd = rangeBounds{hi: lit.Val, hasHi: true, hiIncl: true}
		case OpGt:
			bnd = rangeBounds{lo: lit.Val, hasLo: true}
		default: // OpGe
			bnd = rangeBounds{lo: lit.Val, hasLo: true, loIncl: true}
		}
		return ci, bnd, true
	}
	return 0, rangeBounds{}, false
}

// localIndexCol resolves a column reference to table t's local column
// index and type; ok is false when the reference belongs to another
// table (or fails to resolve).
func (ex *execution) localIndexCol(t string, col *ColumnExpr) (int, Type, bool) {
	slot, err := ex.slotOf(col)
	if err != nil || slot.tbl != t {
		return 0, TUnknown, false
	}
	ci := slot.idx - ex.offsets[t]
	return ci, ex.schemas[t].Columns[ci].Type, true
}

// totalPred reports whether evaluating p is provably error-free on
// every possible row — the precondition for letting an advised index
// answer a *later* predicate. Comparisons between same-class simple
// operands cannot error (Compare only fails across classes);
// arithmetic can (division by zero, class errors), so any predicate
// containing it is conservatively non-total.
func (ex *execution) totalPred(p Expr) bool {
	switch x := p.(type) {
	case *ColumnExpr:
		_, err := ex.slotOf(x)
		return err == nil
	case *LiteralExpr:
		return true
	case *BinaryExpr:
		switch x.Op {
		case OpAnd, OpOr:
			return ex.totalPred(x.L) && ex.totalPred(x.R)
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			lt, lok := ex.operandClass(x.L)
			rt, rok := ex.operandClass(x.R)
			return lok && rok && sameClass(lt, rt)
		default:
			return false
		}
	case *NotExpr:
		return ex.totalPred(x.X)
	case *IsNullExpr:
		_, ok := ex.operandClass(x.X)
		return ok
	case *LikeExpr:
		typ, ok := ex.operandClass(x.X)
		return ok && typ == TText
	case *BetweenExpr:
		xt, xok := ex.operandClass(x.X)
		lt, lok := ex.operandClass(x.Lo)
		ht, hok := ex.operandClass(x.Hi)
		return xok && lok && hok && sameClass(xt, lt) && sameClass(xt, ht)
	default:
		return false
	}
}

// operandClass returns the type class of a simple operand: a resolved
// column reference (its non-NULL values carry exactly the column
// type, by insert-time coercion) or a non-NULL literal. Anything else
// — including NULL literals, whose class depends on context — is not
// simple and defeats the totality proof.
func (ex *execution) operandClass(e Expr) (Type, bool) {
	switch x := e.(type) {
	case *ColumnExpr:
		slot, err := ex.slotOf(x)
		if err != nil {
			return TUnknown, false
		}
		ci := slot.idx - ex.offsets[slot.tbl]
		return ex.schemas[slot.tbl].Columns[ci].Type, true
	case *LiteralExpr:
		if x.Val.Null {
			return TUnknown, false
		}
		return x.Val.Typ, true
	}
	return TUnknown, false
}

// joinVector replicates the tree engine's greedy hash join over
// columnar tuples: one []int32 of row ids per joined table, aligned
// by tuple position. Build sides come from the per-table cache, so a
// probe re-executed on an unchanged (or non-key-mutated) clone
// rebuilds nothing. Wide rows materialize only after every join and
// cycle edge has been applied. Ticks are charged per logical row
// exactly as the tree engine's per-row checkCtx calls do: build side
// size per hash join, probe-tuple count per probe pass, pair count
// per cross product — independent of build-cache hits.
func (ex *execution) joinVector(ctx context.Context, sels map[string][]int32, ticks *int) ([]Row, error) {
	// Reverse slot mapping for probe-side key construction.
	slotTab := make([]string, ex.width)
	for _, t := range ex.tables {
		off := ex.offsets[t]
		for i := range ex.schemas[t].Columns {
			slotTab[off+i] = t
		}
	}

	remaining := map[string]bool{}
	for _, t := range ex.tables {
		remaining[t] = true
	}
	start := ex.tables[0]
	for _, t := range ex.tables[1:] {
		if len(sels[t]) < len(sels[start]) {
			start = t
		}
	}
	delete(remaining, start)
	joined := map[string]bool{start: true}
	cols := map[string][]int32{start: sels[start]}
	tupLen := len(sels[start])

	for len(remaining) > 0 {
		next := ""
		for _, t := range ex.tables {
			if !remaining[t] {
				continue
			}
			connected := false
			for _, e := range ex.joins {
				if (joined[e.lt] && e.rt == t) || (joined[e.rt] && e.lt == t) {
					connected = true
					break
				}
			}
			if connected && (next == "" || len(sels[t]) < len(sels[next])) {
				next = t
			}
		}
		cross := false
		if next == "" {
			cross = true
			for _, t := range ex.tables {
				if !remaining[t] {
					continue
				}
				if next == "" || len(sels[t]) < len(sels[next]) {
					next = t
				}
			}
		}
		delete(remaining, next)
		nOff := ex.offsets[next]
		nTbl := ex.db.tables[next]

		if cross {
			if err := chargeTicks(ctx, ticks, tupLen*len(sels[next])); err != nil {
				return nil, err
			}
			out := map[string][]int32{}
			for t := range joined {
				out[t] = nil
			}
			out[next] = nil
			newLen := 0
			for i := 0; i < tupLen; i++ {
				for _, rid := range sels[next] {
					for t := range joined {
						out[t] = append(out[t], cols[t][i])
					}
					out[next] = append(out[next], rid)
					newLen++
				}
			}
			cols = out
			tupLen = newLen
			joined[next] = true
			continue
		}

		var probeIdx, buildLocal []int
		for i := range ex.joins {
			e := &ex.joins[i]
			switch {
			case joined[e.lt] && e.rt == next:
				probeIdx = append(probeIdx, e.li)
				buildLocal = append(buildLocal, e.ri-nOff)
				e.used = true
			case joined[e.rt] && e.lt == next:
				probeIdx = append(probeIdx, e.ri)
				buildLocal = append(buildLocal, e.li-nOff)
				e.used = true
			}
		}
		if err := chargeTicks(ctx, ticks, len(sels[next])); err != nil {
			return nil, err
		}
		build := nTbl.joinBuildFor(buildLocal, sels[next], ex.db.estats)
		if err := chargeTicks(ctx, ticks, tupLen); err != nil {
			return nil, err
		}
		out := map[string][]int32{}
		for t := range joined {
			out[t] = nil
		}
		out[next] = nil
		newLen := 0
		var kb strings.Builder
		for i := 0; i < tupLen; i++ {
			kb.Reset()
			nullKey := false
			for _, p := range probeIdx {
				pt := slotTab[p]
				v := ex.db.tables[pt].Rows[cols[pt][i]][p-ex.offsets[pt]]
				if v.Null {
					nullKey = true
					break
				}
				kb.WriteString(v.GroupKey())
				kb.WriteByte('|')
			}
			if nullKey {
				continue
			}
			for _, rid := range build[kb.String()] {
				for t := range joined {
					out[t] = append(out[t], cols[t][i])
				}
				out[next] = append(out[next], rid)
				newLen++
			}
		}
		cols = out
		tupLen = newLen
		joined[next] = true
	}

	// Enforce cycle edges not consumed as hash keys.
	valAt := func(i, slot int) Value {
		t := slotTab[slot]
		return ex.db.tables[t].Rows[cols[t][i]][slot-ex.offsets[t]]
	}
	var unused []joinEdge
	for _, e := range ex.joins {
		if !e.used {
			unused = append(unused, e)
		}
	}
	keepTuple := make([]bool, tupLen)
	kept := 0
	for i := 0; i < tupLen; i++ {
		ok := true
		for _, e := range unused {
			if !Equal(valAt(i, e.li), valAt(i, e.ri)) {
				ok = false
				break
			}
		}
		keepTuple[i] = ok
		if ok {
			kept++
		}
	}

	// Materialize wide rows for surviving tuples only. No ticks: the
	// tree engine charges nothing for this stage either.
	current := make([]Row, 0, kept)
	for i := 0; i < tupLen; i++ {
		if !keepTuple[i] {
			continue
		}
		wide := make(Row, ex.width)
		for _, t := range ex.tables {
			copy(wide[ex.offsets[t]:], ex.db.tables[t].Rows[cols[t][i]])
		}
		current = append(current, wide)
	}
	return current, nil
}

// finishVector is the vector engine's post-join tail: the same
// residual → aggregate/project → order → limit pipeline as finish(),
// evaluated batch-at-a-time over the joined wide rows. Stage
// semantics — which (row, expression) pairs get evaluated, grouping
// key equality and first-seen order, ordering ties, the empty-input
// aggregation corner — replicate the tree engine exactly.
func (ex *execution) finishVector(ctx context.Context, current []Row, ticks *int) (*Result, error) {
	types := ex.wideTypes()

	// 3. Residual predicates, vectorized over a narrowing selection.
	if len(ex.residual) > 0 {
		// One tick per joined row, like finish(): the charge does not
		// depend on the predicate count in either engine.
		if err := chargeTicks(ctx, ticks, len(current)); err != nil {
			return nil, err
		}
		sel := identitySel(len(current))
		b := newWideBatch(current, types, sel, ex.db.estats)
		for _, p := range ex.residual {
			if len(sel) == 0 {
				break
			}
			v, err := ex.evalVec(p, b)
			if err != nil {
				return nil, err
			}
			kept := make([]int32, 0, len(sel))
			for k := range sel {
				if !v.nullAt(k) && v.boolAt(k) {
					kept = append(kept, sel[k])
				}
			}
			sel = kept
			b = b.sub(sel)
		}
		next := make([]Row, len(sel))
		for i, ri := range sel {
			next[i] = current[ri]
		}
		current = next
	}

	// 4. Grouping / aggregation, or plain projection.
	var out *Result
	var err error
	if len(ex.stmt.GroupBy) > 0 || len(ex.aggs) > 0 {
		out, err = ex.aggregateVector(ctx, current, types, ticks)
	} else {
		out, err = ex.projectVector(ctx, current, types, ticks)
	}
	if err != nil {
		return nil, err
	}

	// 5. Order by (with top-K short-circuit under LIMIT).
	if len(ex.stmt.OrderBy) > 0 {
		if err := ex.orderVector(out, current, types); err != nil {
			return nil, err
		}
	}

	// 6. Limit. A top-K sort already returned exactly the limit
	// prefix; this is then a no-op.
	if ex.stmt.Limit > 0 && int64(len(out.Rows)) > ex.stmt.Limit {
		out.Rows = out.Rows[:ex.stmt.Limit]
	}
	return out, nil
}

// projectVector emits one output row per input row (no aggregation),
// evaluating each select item as one vector over the batch.
func (ex *execution) projectVector(ctx context.Context, rows []Row, types []Type, ticks *int) (*Result, error) {
	if err := chargeTicks(ctx, ticks, len(rows)); err != nil {
		return nil, err
	}
	res := &Result{Columns: ex.outputColumns()}
	if len(rows) == 0 {
		return res, nil
	}
	b := newWideBatch(rows, types, identitySel(len(rows)), ex.db.estats)
	vecs := make([]*vec, len(ex.stmt.Items))
	for i, it := range ex.stmt.Items {
		v, err := ex.evalVec(it.Expr, b)
		if err != nil {
			return nil, err
		}
		vecs[i] = v
	}
	res.Rows = make([]Row, len(rows))
	for k := range rows {
		out := make(Row, len(vecs))
		for i, v := range vecs {
			out[i] = v.valueAt(k)
		}
		res.Rows[k] = out
	}
	return res, nil
}
