package sqldb

import (
	"context"
	"strings"
)

// exec_vector.go — the vectorized, index-assisted execution engine.
//
// runVector executes the same compiled plan as runTree but replaces
// the two hot stages:
//
//   - scan+filter works on selections ([]int32 row ids) narrowed by
//     vectorized predicate evaluation over column batches, with a
//     secondary hash index serving eligible leading equality
//     predicates (the point lookups minimization hammers on);
//   - the greedy hash join runs over row-id tuple columns and reuses
//     cached build sides, materializing wide rows only for tuples
//     that survive every join.
//
// Everything after the join (residual predicates, aggregation,
// projection, ORDER BY, LIMIT) is the shared finish() pipeline, so
// post-join semantics are identical to the tree engine by
// construction. The join replicates the tree engine's greedy order
// (smallest fragment first, from-clause tie-break) and emission order
// (probe order x bucket order), so row order matches too.

// indexMinRows gates the secondary index: tables smaller than this
// are cheaper to scan than to index.
const indexMinRows = 16

func (ex *execution) runVector(ctx context.Context) (*Result, error) {
	var ticks int
	sels := map[string][]int32{}
	for _, t := range ex.tables {
		sel, err := ex.scanVector(ctx, t, &ticks)
		if err != nil {
			return nil, err
		}
		sels[t] = sel
	}
	current, err := ex.joinVector(ctx, sels, &ticks)
	if err != nil {
		return nil, err
	}
	return ex.finish(ctx, current, &ticks)
}

// scanVector evaluates a table's pushdown predicates over a narrowing
// selection of row ids. The first predicate may be answered by a
// point lookup on a secondary hash index; the rest evaluate
// vectorized, in WHERE order, each over only the rows the previous
// ones kept (matching the tree engine's per-row short-circuit).
func (ex *execution) scanVector(ctx context.Context, t string, ticks *int) ([]int32, error) {
	tbl := ex.db.tables[t]
	preds := ex.pushdown[t]
	var sel []int32
	start := 0
	if len(preds) > 0 && len(tbl.Rows) >= indexMinRows {
		if ci, key, ok := ex.indexableEq(t, preds[0]); ok {
			sel = tbl.pointLookup(ci, key, ex.db.estats)
			start = 1
		}
	}
	if start == 0 {
		sel = make([]int32, len(tbl.Rows))
		for i := range sel {
			sel[i] = int32(i)
		}
	}
	for _, p := range preds[start:] {
		if len(sel) == 0 {
			break // no rows left; the tree engine evaluates nothing either
		}
		b := newBatch(tbl, ex.offsets[t], sel, ex.db.estats)
		v, err := ex.evalVec(p, b)
		if err != nil {
			return nil, err
		}
		// Fresh slice: sel may be owned by the index (or by a cached
		// build side) and must never be narrowed in place.
		kept := make([]int32, 0, len(sel))
		for k := range sel {
			if err := checkCtx(ctx, ticks); err != nil {
				return nil, err
			}
			if !v.nullAt(k) && v.boolAt(k) {
				kept = append(kept, sel[k])
			}
		}
		sel = kept
	}
	return sel, nil
}

// indexableEq recognizes a predicate a point lookup can answer with
// semantics identical to scanning: `col = literal` (either operand
// order) where the literal is non-NULL and its type equals the
// column's type, the column being int, date, bool or text. For those
// pairings Compare()==0 coincides exactly with group-key equality, so
// the index returns precisely the rows the tree engine keeps, and the
// comparison can never error. Floats are excluded (-0.0 vs 0.0 and
// int/float widening break the key equivalence), as are cross-class
// pairs (the tree engine may need to raise a comparison error).
func (ex *execution) indexableEq(t string, p Expr) (ci int, key string, ok bool) {
	b, isBin := p.(*BinaryExpr)
	if !isBin || b.Op != OpEq {
		return 0, "", false
	}
	col, isCol := b.L.(*ColumnExpr)
	lit, isLit := b.R.(*LiteralExpr)
	if !isCol || !isLit {
		col, isCol = b.R.(*ColumnExpr)
		lit, isLit = b.L.(*LiteralExpr)
		if !isCol || !isLit {
			return 0, "", false
		}
	}
	if lit.Val.Null {
		return 0, "", false
	}
	slot, err := ex.slotOf(col)
	if err != nil || slot.tbl != t {
		return 0, "", false
	}
	ci = slot.idx - ex.offsets[t]
	colTyp := ex.schemas[t].Columns[ci].Type
	if colTyp != lit.Val.Typ {
		return 0, "", false
	}
	switch colTyp {
	case TInt, TDate, TBool, TText:
		return ci, lit.Val.GroupKey(), true
	default:
		return 0, "", false
	}
}

// joinVector replicates the tree engine's greedy hash join over
// columnar tuples: one []int32 of row ids per joined table, aligned
// by tuple position. Build sides come from the per-table cache, so a
// probe re-executed on an unchanged (or non-key-mutated) clone
// rebuilds nothing. Wide rows materialize only after every join and
// cycle edge has been applied.
func (ex *execution) joinVector(ctx context.Context, sels map[string][]int32, ticks *int) ([]Row, error) {
	// Reverse slot mapping for probe-side key construction.
	slotTab := make([]string, ex.width)
	for _, t := range ex.tables {
		off := ex.offsets[t]
		for i := range ex.schemas[t].Columns {
			slotTab[off+i] = t
		}
	}

	remaining := map[string]bool{}
	for _, t := range ex.tables {
		remaining[t] = true
	}
	start := ex.tables[0]
	for _, t := range ex.tables[1:] {
		if len(sels[t]) < len(sels[start]) {
			start = t
		}
	}
	delete(remaining, start)
	joined := map[string]bool{start: true}
	cols := map[string][]int32{start: sels[start]}
	tupLen := len(sels[start])

	for len(remaining) > 0 {
		next := ""
		for _, t := range ex.tables {
			if !remaining[t] {
				continue
			}
			connected := false
			for _, e := range ex.joins {
				if (joined[e.lt] && e.rt == t) || (joined[e.rt] && e.lt == t) {
					connected = true
					break
				}
			}
			if connected && (next == "" || len(sels[t]) < len(sels[next])) {
				next = t
			}
		}
		cross := false
		if next == "" {
			cross = true
			for _, t := range ex.tables {
				if !remaining[t] {
					continue
				}
				if next == "" || len(sels[t]) < len(sels[next]) {
					next = t
				}
			}
		}
		delete(remaining, next)
		nOff := ex.offsets[next]
		nTbl := ex.db.tables[next]

		if cross {
			out := map[string][]int32{}
			for t := range joined {
				out[t] = nil
			}
			out[next] = nil
			newLen := 0
			for i := 0; i < tupLen; i++ {
				for _, rid := range sels[next] {
					if err := checkCtx(ctx, ticks); err != nil {
						return nil, err
					}
					for t := range joined {
						out[t] = append(out[t], cols[t][i])
					}
					out[next] = append(out[next], rid)
					newLen++
				}
			}
			cols = out
			tupLen = newLen
			joined[next] = true
			continue
		}

		var probeIdx, buildLocal []int
		for i := range ex.joins {
			e := &ex.joins[i]
			switch {
			case joined[e.lt] && e.rt == next:
				probeIdx = append(probeIdx, e.li)
				buildLocal = append(buildLocal, e.ri-nOff)
				e.used = true
			case joined[e.rt] && e.lt == next:
				probeIdx = append(probeIdx, e.ri)
				buildLocal = append(buildLocal, e.li-nOff)
				e.used = true
			}
		}
		build := nTbl.joinBuildFor(buildLocal, sels[next], ex.db.estats)
		out := map[string][]int32{}
		for t := range joined {
			out[t] = nil
		}
		out[next] = nil
		newLen := 0
		var kb strings.Builder
		for i := 0; i < tupLen; i++ {
			if err := checkCtx(ctx, ticks); err != nil {
				return nil, err
			}
			kb.Reset()
			nullKey := false
			for _, p := range probeIdx {
				pt := slotTab[p]
				v := ex.db.tables[pt].Rows[cols[pt][i]][p-ex.offsets[pt]]
				if v.Null {
					nullKey = true
					break
				}
				kb.WriteString(v.GroupKey())
				kb.WriteByte('|')
			}
			if nullKey {
				continue
			}
			for _, rid := range build[kb.String()] {
				for t := range joined {
					out[t] = append(out[t], cols[t][i])
				}
				out[next] = append(out[next], rid)
				newLen++
			}
		}
		cols = out
		tupLen = newLen
		joined[next] = true
	}

	// Enforce cycle edges not consumed as hash keys.
	valAt := func(i, slot int) Value {
		t := slotTab[slot]
		return ex.db.tables[t].Rows[cols[t][i]][slot-ex.offsets[t]]
	}
	var unused []joinEdge
	for _, e := range ex.joins {
		if !e.used {
			unused = append(unused, e)
		}
	}
	keepTuple := make([]bool, tupLen)
	kept := 0
	for i := 0; i < tupLen; i++ {
		ok := true
		for _, e := range unused {
			if !Equal(valAt(i, e.li), valAt(i, e.ri)) {
				ok = false
				break
			}
		}
		keepTuple[i] = ok
		if ok {
			kept++
		}
	}

	// Materialize wide rows for surviving tuples only.
	current := make([]Row, 0, kept)
	for i := 0; i < tupLen; i++ {
		if !keepTuple[i] {
			continue
		}
		if err := checkCtx(ctx, ticks); err != nil {
			return nil, err
		}
		wide := make(Row, ex.width)
		for _, t := range ex.tables {
			copy(wide[ex.offsets[t]:], ex.db.tables[t].Rows[cols[t][i]])
		}
		current = append(current, wide)
	}
	return current, nil
}
