package sqldb

import (
	"fmt"
	"sort"
)

// sort_vector.go — vectorized multi-key ordering with a top-K
// short-circuit.
//
// orderVector replicates orderResult: order keys matching an output
// column (by alias or structural equality with a projection) sort on
// output values; other keys are legal only before aggregation and are
// evaluated vectorized over the joined input rows. Comparison
// semantics are identical — NULLs sort first, comparison errors are
// ignored (treated as ties, as orderResult has always done and the
// differential harness pins), and full-key ties preserve input order
// (sort.SliceStable there, an explicit index tie-break here, which
// are equivalent).
//
// When the statement carries a LIMIT smaller than the result, a
// bounded heap keeps only the limit smallest rows under the sort
// order. Because the index tie-break makes the order total, the top-K
// prefix is exactly the prefix a full stable sort would produce, so
// the subsequent limit truncation in finishVector is a no-op.

// sortKey is one compiled ORDER BY key over the result rows: either a
// gathered output column or a vectorized input expression.
type sortKey struct {
	desc bool
	v    *vec    // input-expression key (nil for output-column keys)
	vals []Value // output-column key, gathered per result row
}

// cmp compares elements a and b under Compare semantics with errors
// squashed to 0 — exactly how orderResult's comparator treats them.
func (s *sortKey) cmp(a, b int) int {
	if s.v != nil {
		return s.v.cmpElems(a, b)
	}
	c, err := Compare(s.vals[a], s.vals[b])
	if err != nil {
		return 0
	}
	return c
}

// cmpElems compares two elements of one vector under Compare
// semantics (NULLs first, cross-class errors → 0), taking the same
// typed payload fast paths as cmpVec.
func (v *vec) cmpElems(a, b int) int {
	an, bn := v.nullAt(a), v.nullAt(b)
	if an || bn {
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		default:
			return 1
		}
	}
	if v.vals == nil && !v.isConst {
		switch v.typ {
		case TFloat:
			fa, fb := v.floats[a], v.floats[b]
			switch {
			case fa < fb:
				return -1
			case fa > fb:
				return 1
			default:
				return 0
			}
		case TText:
			sa, sb := v.strs[a], v.strs[b]
			switch {
			case sa < sb:
				return -1
			case sa > sb:
				return 1
			default:
				return 0
			}
		default: // TInt, TDate, TBool
			ia, ib := v.ints[a], v.ints[b]
			switch {
			case ia < ib:
				return -1
			case ia > ib:
				return 1
			default:
				return 0
			}
		}
	}
	c, err := Compare(v.valueAt(a), v.valueAt(b))
	if err != nil {
		return 0
	}
	return c
}

// orderVector sorts res.Rows in place. input is the joined wide-row
// set aligned 1:1 with res.Rows in the non-aggregated case (the only
// case where input-expression keys are legal).
func (ex *execution) orderVector(res *Result, input []Row, types []Type) error {
	keys := make([]*sortKey, len(ex.stmt.OrderBy))
	var inBatch *batch
	for ki, k := range ex.stmt.OrderBy {
		sk := &sortKey{desc: k.Desc}
		outIdx := ex.matchOutputColumn(k.Expr)
		if outIdx >= 0 {
			sk.vals = make([]Value, len(res.Rows))
			for i, row := range res.Rows {
				sk.vals[i] = row[outIdx]
			}
			keys[ki] = sk
			continue
		}
		if len(ex.stmt.GroupBy) > 0 || len(ex.aggs) > 0 {
			return fmt.Errorf("order by expression %s does not appear in the select list", k.Expr)
		}
		if inBatch == nil {
			inBatch = newWideBatch(input, types, identitySel(len(input)), ex.db.estats)
		}
		v, err := ex.evalVec(k.Expr, inBatch)
		if err != nil {
			return err
		}
		sk.v = v
		keys[ki] = sk
	}

	less := func(a, b int) bool {
		for _, k := range keys {
			c := k.cmp(a, b)
			if c == 0 {
				continue
			}
			if k.desc {
				return c > 0
			}
			return c < 0
		}
		// Full tie: preserve input order — equivalent to the tree
		// engine's stable sort.
		return a < b
	}

	n := len(res.Rows)
	if limit := int(ex.stmt.Limit); limit > 0 && limit < n {
		res.Rows = topK(res.Rows, limit, less)
		return nil
	}
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	sort.Slice(idxs, func(i, j int) bool { return less(idxs[i], idxs[j]) })
	sorted := make([]Row, n)
	for i, idx := range idxs {
		sorted[i] = res.Rows[idx]
	}
	res.Rows = sorted
	return nil
}

// topK returns the first k rows of the full sort order without
// sorting the rest: a bounded max-heap (ordered by `worse`, the
// inverse of less) keeps the k best row indexes seen so far, evicting
// the current worst whenever a better row arrives. less must be a
// total order (orderVector's index tie-break guarantees it), which
// makes the result identical to sort-then-truncate.
func topK(rows []Row, k int, less func(a, b int) bool) []Row {
	worse := func(a, b int) bool { return less(b, a) }
	h := make([]int, 0, k)
	sink := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && worse(h[l], h[m]) {
				m = l
			}
			if r < len(h) && worse(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	swim := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !worse(h[i], h[p]) {
				return
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	for i := range rows {
		if len(h) < k {
			h = append(h, i)
			swim(len(h) - 1)
			continue
		}
		if less(i, h[0]) {
			h[0] = i
			sink(0)
		}
	}
	// Pop from worst to best, filling the output back to front.
	out := make([]Row, len(h))
	for j := len(out) - 1; j >= 0; j-- {
		out[j] = rows[h[0]]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		sink(0)
	}
	return out
}
