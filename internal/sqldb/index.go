package sqldb

import (
	"fmt"
	"sync/atomic"
)

// ExecMode selects which execution engine Execute uses.
type ExecMode uint8

const (
	// ExecVector is the default engine: columnar batches, vectorized
	// pushdown predicates, secondary hash indexes and hash-join
	// build-side reuse (exec_vector.go).
	ExecVector ExecMode = iota
	// ExecTree is the original per-row tree-walking engine, kept as
	// the oracle for the differential harness (enginediff_test.go).
	ExecTree
)

func (m ExecMode) String() string {
	if m == ExecTree {
		return "tree"
	}
	return "vector"
}

// ParseExecMode parses a -exec / Config.ExecMode knob value. The
// empty string means the default (vector).
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "", "vector":
		return ExecVector, nil
	case "tree":
		return ExecTree, nil
	default:
		return ExecVector, fmt.Errorf("unknown exec mode %q (want \"vector\" or \"tree\")", s)
	}
}

// SetExecMode selects the execution engine for this database handle.
// Clones made afterwards inherit the mode.
func (db *Database) SetExecMode(m ExecMode) {
	db.mu.Lock()
	db.mode = m
	db.mu.Unlock()
}

// ExecMode reports the engine this database executes with.
func (db *Database) ExecMode() ExecMode {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.mode
}

// EngineStats aggregates engine-internal event counters. One instance
// is shared by a database and every clone derived from it, so the
// extractor's per-run numbers survive silo cloning. All fields are
// atomics: index builds happen lazily under concurrent Executes.
type EngineStats struct {
	IndexBuilds   atomic.Int64 // secondary hash indexes constructed
	IndexHits     atomic.Int64 // point lookups served by an index
	JoinBuilds    atomic.Int64 // hash-join build sides constructed
	JoinReuses    atomic.Int64 // build sides served from the cache
	VectorQueries atomic.Int64 // Execute calls on the vector engine
	TreeQueries   atomic.Int64 // Execute calls on the tree engine
	VectorBatches atomic.Int64 // column batches materialized
}

// EngineCounters is a plain snapshot of EngineStats.
type EngineCounters struct {
	IndexBuilds   int64
	IndexHits     int64
	JoinBuilds    int64
	JoinReuses    int64
	VectorQueries int64
	TreeQueries   int64
	VectorBatches int64
}

// EngineCounters snapshots the engine counters shared by this
// database and all its clones. Callers interested in a single run
// should snapshot before and after and subtract.
func (db *Database) EngineCounters() EngineCounters {
	s := db.estats
	return EngineCounters{
		IndexBuilds:   s.IndexBuilds.Load(),
		IndexHits:     s.IndexHits.Load(),
		JoinBuilds:    s.JoinBuilds.Load(),
		JoinReuses:    s.JoinReuses.Load(),
		VectorQueries: s.VectorQueries.Load(),
		TreeQueries:   s.TreeQueries.Load(),
		VectorBatches: s.VectorBatches.Load(),
	}
}

// joinBuild is one cached hash-join build side: the map from join key
// to row ids, valid for exactly the (columns, selected row ids) pair
// it was built from. Row ids (not rows) are stored, so value
// mutations of non-key columns never stale an entry; row-set
// mutations invalidate everything via the table's mutation hooks.
type joinBuild struct {
	cols []int   // local column indexes forming the key
	sel  []int32 // the filtered row ids the map covers
	m    map[string][]int32
}

// maxJoinBuilds caps the per-table build cache (FIFO eviction). Probe
// workloads hammer a handful of join shapes per table; eight covers
// every query in the corpus with room to spare.
const maxJoinBuilds = 8

// invalidateIndexes drops all cached index/build state. Called by
// every row-set mutation (insert, truncate, sampling, row deletion,
// SetRows): row ids shift, so id-based caches cannot be remapped.
func (t *Table) invalidateIndexes() {
	t.idxMu.Lock()
	t.indexes = nil
	t.builds = nil
	t.idxMu.Unlock()
}

// invalidateColumn drops cached state that keys on column ci. Value
// mutations (Set, SetAll, NegateColumn) leave row ids stable, so
// indexes and build sides over *other* columns stay valid — that is
// what lets join-key indexes survive the minimizer's filter probes,
// which rewrite candidate filter columns in place.
func (t *Table) invalidateColumn(ci int) {
	t.idxMu.Lock()
	if t.indexes != nil {
		delete(t.indexes, ci)
	}
	if len(t.builds) > 0 {
		kept := t.builds[:0]
		for _, b := range t.builds {
			uses := false
			for _, c := range b.cols {
				if c == ci {
					uses = true
					break
				}
			}
			if !uses {
				kept = append(kept, b)
			}
		}
		t.builds = kept
	}
	t.idxMu.Unlock()
}

// pointLookup returns the ids of rows whose column ci equals the
// value with the given group key, building the secondary hash index
// on first use. The returned slice is owned by the index; callers
// must not mutate it.
func (t *Table) pointLookup(ci int, key string, es *EngineStats) []int32 {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	idx, ok := t.indexes[ci]
	if !ok {
		idx = make(map[string][]int32, len(t.Rows))
		for i, r := range t.Rows {
			if r[ci].Null {
				continue
			}
			k := r[ci].GroupKey()
			idx[k] = append(idx[k], int32(i))
		}
		if t.indexes == nil {
			t.indexes = map[int]map[string][]int32{}
		}
		t.indexes[ci] = idx
		es.IndexBuilds.Add(1)
	} else {
		es.IndexHits.Add(1)
	}
	return idx[key]
}

// joinBuildFor returns the hash-join build map for (cols, sel),
// reusing a cached build when an identical one exists. A hit requires
// the same key columns and the exact same selected row ids — compared
// elementwise, never by hash, so a stale or colliding entry can never
// be returned. sel must be immutable after the call (the vector
// engine builds a fresh selection per execution and never mutates it).
func (t *Table) joinBuildFor(cols []int, sel []int32, es *EngineStats) map[string][]int32 {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	for _, b := range t.builds {
		if intsEqual(b.cols, cols) && idsEqual(b.sel, sel) {
			es.JoinReuses.Add(1)
			return b.m
		}
	}
	m := make(map[string][]int32, len(sel))
	for _, ri := range sel {
		key, ok := joinKeyLocal(t.Rows[ri], cols)
		if !ok {
			continue // NULL join key never matches
		}
		m[key] = append(m[key], ri)
	}
	b := &joinBuild{cols: append([]int(nil), cols...), sel: sel, m: m}
	if len(t.builds) >= maxJoinBuilds {
		t.builds = append(t.builds[:0], t.builds[1:]...)
	}
	t.builds = append(t.builds, b)
	es.JoinBuilds.Add(1)
	return m
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func idsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
