package sqldb

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// ExecMode selects which execution engine Execute uses.
type ExecMode uint8

const (
	// ExecVector is the default engine: columnar batches, vectorized
	// pushdown predicates, secondary hash indexes and hash-join
	// build-side reuse (exec_vector.go).
	ExecVector ExecMode = iota
	// ExecTree is the original per-row tree-walking engine, kept as
	// the oracle for the differential harness (enginediff_test.go).
	ExecTree
)

func (m ExecMode) String() string {
	if m == ExecTree {
		return "tree"
	}
	return "vector"
}

// ParseExecMode parses a -exec / Config.ExecMode knob value. The
// empty string means the default (vector).
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "", "vector":
		return ExecVector, nil
	case "tree":
		return ExecTree, nil
	default:
		return ExecVector, fmt.Errorf("unknown exec mode %q (want \"vector\" or \"tree\")", s)
	}
}

// SetExecMode selects the execution engine for this database handle.
// Clones made afterwards inherit the mode.
func (db *Database) SetExecMode(m ExecMode) {
	db.mu.Lock()
	db.mode = m
	db.mu.Unlock()
}

// ExecMode reports the engine this database executes with.
func (db *Database) ExecMode() ExecMode {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.mode
}

// EngineStats aggregates engine-internal event counters. One instance
// is shared by a database and every clone derived from it, so the
// extractor's per-run numbers survive silo cloning. All fields are
// atomics: index builds happen lazily under concurrent Executes.
type EngineStats struct {
	IndexBuilds   atomic.Int64 // secondary hash indexes constructed
	IndexHits     atomic.Int64 // point lookups served by an index
	RangeBuilds   atomic.Int64 // sorted range indexes constructed
	RangeHits     atomic.Int64 // range probes served by an index
	JoinBuilds    atomic.Int64 // hash-join build sides constructed
	JoinReuses    atomic.Int64 // build sides served from the cache
	VectorQueries atomic.Int64 // Execute calls on the vector engine
	TreeQueries   atomic.Int64 // Execute calls on the tree engine
	VectorBatches atomic.Int64 // column batches materialized
	CtxTicks      atomic.Int64 // cancellation cost-model ticks charged
}

// EngineCounters is a plain snapshot of EngineStats.
type EngineCounters struct {
	IndexBuilds   int64
	IndexHits     int64
	RangeBuilds   int64
	RangeHits     int64
	JoinBuilds    int64
	JoinReuses    int64
	VectorQueries int64
	TreeQueries   int64
	VectorBatches int64
	CtxTicks      int64
}

// EngineCounters snapshots the engine counters shared by this
// database and all its clones. Callers interested in a single run
// should snapshot before and after and subtract.
func (db *Database) EngineCounters() EngineCounters {
	s := db.estats
	return EngineCounters{
		IndexBuilds:   s.IndexBuilds.Load(),
		IndexHits:     s.IndexHits.Load(),
		RangeBuilds:   s.RangeBuilds.Load(),
		RangeHits:     s.RangeHits.Load(),
		JoinBuilds:    s.JoinBuilds.Load(),
		JoinReuses:    s.JoinReuses.Load(),
		VectorQueries: s.VectorQueries.Load(),
		TreeQueries:   s.TreeQueries.Load(),
		VectorBatches: s.VectorBatches.Load(),
		CtxTicks:      s.CtxTicks.Load(),
	}
}

// joinBuild is one cached hash-join build side: the map from join key
// to row ids, valid for exactly the (columns, selected row ids) pair
// it was built from. Row ids (not rows) are stored, so value
// mutations of non-key columns never stale an entry; row-set
// mutations invalidate everything via the table's mutation hooks.
type joinBuild struct {
	cols []int   // local column indexes forming the key
	sel  []int32 // the filtered row ids the map covers
	m    map[string][]int32
}

// maxJoinBuilds caps the per-table build cache (FIFO eviction). Probe
// workloads hammer a handful of join shapes per table; eight covers
// every query in the corpus with room to spare.
const maxJoinBuilds = 8

// invalidateIndexes drops all cached index/build state. Called by
// every row-set mutation (insert, truncate, sampling, row deletion,
// SetRows): row ids shift, so id-based caches cannot be remapped.
func (t *Table) invalidateIndexes() {
	t.idxMu.Lock()
	t.indexes = nil
	t.rindexes = nil
	t.builds = nil
	t.idxMu.Unlock()
}

// invalidateColumn drops cached state that keys on column ci. Value
// mutations (Set, SetAll, NegateColumn) leave row ids stable, so
// indexes and build sides over *other* columns stay valid — that is
// what lets join-key indexes survive the minimizer's filter probes,
// which rewrite candidate filter columns in place.
func (t *Table) invalidateColumn(ci int) {
	t.idxMu.Lock()
	if t.indexes != nil {
		delete(t.indexes, ci)
	}
	if t.rindexes != nil {
		delete(t.rindexes, ci)
	}
	if len(t.builds) > 0 {
		kept := t.builds[:0]
		for _, b := range t.builds {
			uses := false
			for _, c := range b.cols {
				if c == ci {
					uses = true
					break
				}
			}
			if !uses {
				kept = append(kept, b)
			}
		}
		t.builds = kept
	}
	t.idxMu.Unlock()
}

// hashIndexLocked returns column ci's hash index, building it if
// missing; built reports whether this call constructed it. Callers
// hold idxMu. Once built, an index map is never mutated again
// (invalidation only unlinks it from the table), which is what makes
// sharing it with clones safe.
func (t *Table) hashIndexLocked(ci int, es *EngineStats) (idx map[string][]int32, built bool) {
	idx, ok := t.indexes[ci]
	if ok {
		return idx, false
	}
	idx = make(map[string][]int32, len(t.Rows))
	for i, r := range t.Rows {
		if r[ci].Null {
			continue
		}
		k := r[ci].GroupKey()
		idx[k] = append(idx[k], int32(i))
	}
	if t.indexes == nil {
		t.indexes = map[int]map[string][]int32{}
	}
	t.indexes[ci] = idx
	es.IndexBuilds.Add(1)
	return idx, true
}

// pointLookup returns the ids of rows whose column ci equals the
// value with the given group key, building the secondary hash index
// on first use. The returned slice is owned by the index; callers
// must not mutate it.
func (t *Table) pointLookup(ci int, key string, es *EngineStats) []int32 {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	idx, built := t.hashIndexLocked(ci, es)
	if !built {
		es.IndexHits.Add(1)
	}
	return idx[key]
}

// rangeIndex is a sorted secondary index over one column: the
// non-NULL values ordered ascending (stably, so row ids ascend within
// equal keys) with payload storage matching the column class —
// Compare() for these types is exactly payload order, which is what
// makes a binary-searched span equal to a scan's answer. Like the
// hash indexes, a built rangeIndex is immutable: invalidation unlinks
// it, so parent and clones can share one safely.
type rangeIndex struct {
	typ  Type
	ints []int64  // TInt/TDate/TBool payloads, sorted
	strs []string // TText payloads, sorted
	ids  []int32  // row ids parallel to the payloads
}

// rangeIndexable reports whether a column type supports a sorted
// index with scan-identical semantics. Floats are excluded for the
// same reason as in the hash index: -0.0 vs 0.0 and int/float
// widening make payload identity diverge from Compare.
func rangeIndexable(t Type) bool {
	return t == TInt || t == TDate || t == TBool || t == TText
}

// rangeBounds is a compiled one-column interval probe. Missing bounds
// (hasLo/hasHi false) are unbounded ends.
type rangeBounds struct {
	lo, hi         Value
	hasLo, hasHi   bool
	loIncl, hiIncl bool
}

// rangeIndexLocked returns column ci's range index, building it if
// missing. Callers hold idxMu and have checked rangeIndexable.
func (t *Table) rangeIndexLocked(ci int, es *EngineStats) (r *rangeIndex, built bool) {
	if r, ok := t.rindexes[ci]; ok {
		return r, false
	}
	typ := t.Schema.Columns[ci].Type
	r = &rangeIndex{typ: typ}
	for i, row := range t.Rows {
		v := row[ci]
		if v.Null {
			continue
		}
		r.ids = append(r.ids, int32(i))
		if typ == TText {
			r.strs = append(r.strs, v.S)
		} else {
			r.ints = append(r.ints, v.I)
		}
	}
	ord := make([]int, len(r.ids))
	for i := range ord {
		ord[i] = i
	}
	if typ == TText {
		sort.SliceStable(ord, func(a, b int) bool { return r.strs[ord[a]] < r.strs[ord[b]] })
	} else {
		sort.SliceStable(ord, func(a, b int) bool { return r.ints[ord[a]] < r.ints[ord[b]] })
	}
	ids := make([]int32, len(ord))
	for i, o := range ord {
		ids[i] = r.ids[o]
	}
	r.ids = ids
	if typ == TText {
		strs := make([]string, len(ord))
		for i, o := range ord {
			strs[i] = r.strs[o]
		}
		r.strs = strs
	} else {
		ints := make([]int64, len(ord))
		for i, o := range ord {
			ints[i] = r.ints[o]
		}
		r.ints = ints
	}
	if t.rindexes == nil {
		t.rindexes = map[int]*rangeIndex{}
	}
	t.rindexes[ci] = r
	es.RangeBuilds.Add(1)
	return r, true
}

// span returns the half-open position range [lo, hi) of entries
// satisfying the bounds.
func (r *rangeIndex) span(bnd rangeBounds) (int, int) {
	n := len(r.ids)
	lo, hi := 0, n
	if r.typ == TText {
		if bnd.hasLo {
			key := bnd.lo.S
			if bnd.loIncl {
				lo = sort.Search(n, func(i int) bool { return r.strs[i] >= key })
			} else {
				lo = sort.Search(n, func(i int) bool { return r.strs[i] > key })
			}
		}
		if bnd.hasHi {
			key := bnd.hi.S
			if bnd.hiIncl {
				hi = sort.Search(n, func(i int) bool { return r.strs[i] > key })
			} else {
				hi = sort.Search(n, func(i int) bool { return r.strs[i] >= key })
			}
		}
		return lo, hi
	}
	if bnd.hasLo {
		key := bnd.lo.I
		if bnd.loIncl {
			lo = sort.Search(n, func(i int) bool { return r.ints[i] >= key })
		} else {
			lo = sort.Search(n, func(i int) bool { return r.ints[i] > key })
		}
	}
	if bnd.hasHi {
		key := bnd.hi.I
		if bnd.hiIncl {
			hi = sort.Search(n, func(i int) bool { return r.ints[i] > key })
		} else {
			hi = sort.Search(n, func(i int) bool { return r.ints[i] >= key })
		}
	}
	return lo, hi
}

// rangeLookup returns the ids of rows whose column ci falls within
// the bounds, in ascending row-id order (scan order — the vector
// engine's emission order must match the tree engine's). The range
// index is built on first use.
func (t *Table) rangeLookup(ci int, bnd rangeBounds, es *EngineStats) []int32 {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	r, built := t.rangeIndexLocked(ci, es)
	if !built {
		es.RangeHits.Add(1)
	}
	lo, hi := r.span(bnd)
	if lo >= hi {
		return nil
	}
	out := append([]int32(nil), r.ids[lo:hi]...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// shareIndexes builds (if necessary) the hash and range indexes for
// the given local columns on t and installs shared references on the
// freshly cloned dst, whose rows are id-for-id copies of t's. Sharing
// is safe because built index payloads are immutable — invalidation
// only unlinks them from a table, never mutates them — so parent and
// clone invalidate independently. This is how index advice amortizes
// one build across the minimizer's per-probe clones.
//
// A column that was built once and has since been invalidated is
// churning: the minimizer mutates the probed column before every
// clone, so eagerly rebuilding it here would cost a sort per probe
// for an index used at most once. Such columns are skipped — the
// planner prefers the sibling columns' still-valid indexes instead
// (chooseIndexPred), and a lookup that truly needs the churning
// column rebuilds lazily on the clone.
func (t *Table) shareIndexes(dst *Table, cols []int, es *EngineStats) {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	for _, ci := range cols {
		if ci < 0 || ci >= len(t.Schema.Columns) {
			continue
		}
		_, hCached := t.indexes[ci]
		_, rCached := t.rindexes[ci]
		if !hCached && !rCached && t.advBuilt[ci] {
			continue
		}
		h, _ := t.hashIndexLocked(ci, es)
		if dst.indexes == nil {
			dst.indexes = map[int]map[string][]int32{}
		}
		dst.indexes[ci] = h
		if rangeIndexable(t.Schema.Columns[ci].Type) {
			r, _ := t.rangeIndexLocked(ci, es)
			if dst.rindexes == nil {
				dst.rindexes = map[int]*rangeIndex{}
			}
			dst.rindexes[ci] = r
		}
		if t.advBuilt == nil {
			t.advBuilt = map[int]bool{}
		}
		t.advBuilt[ci] = true
	}
}

// cachedIndex reports whether t already holds a built index able to
// answer the plan kind: the hash index for an equality lookup, the
// sorted range index otherwise. Used by the planner to prefer free
// lookups over index builds.
func (t *Table) cachedIndex(ci int, eq bool) bool {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if eq {
		_, ok := t.indexes[ci]
		return ok
	}
	_, ok := t.rindexes[ci]
	return ok
}

// joinBuildFor returns the hash-join build map for (cols, sel),
// reusing a cached build when an identical one exists. A hit requires
// the same key columns and the exact same selected row ids — compared
// elementwise, never by hash, so a stale or colliding entry can never
// be returned. sel must be immutable after the call (the vector
// engine builds a fresh selection per execution and never mutates it).
func (t *Table) joinBuildFor(cols []int, sel []int32, es *EngineStats) map[string][]int32 {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	for _, b := range t.builds {
		if intsEqual(b.cols, cols) && idsEqual(b.sel, sel) {
			es.JoinReuses.Add(1)
			return b.m
		}
	}
	m := make(map[string][]int32, len(sel))
	for _, ri := range sel {
		key, ok := joinKeyLocal(t.Rows[ri], cols)
		if !ok {
			continue // NULL join key never matches
		}
		m[key] = append(m[key], ri)
	}
	b := &joinBuild{cols: append([]int(nil), cols...), sel: sel, m: m}
	if len(t.builds) >= maxJoinBuilds {
		t.builds = append(t.builds[:0], t.builds[1:]...)
	}
	t.builds = append(t.builds, b)
	es.JoinBuilds.Add(1)
	return m
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func idsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
