package sqldb

import (
	"math/rand"
	"testing"
)

func testSchema() TableSchema {
	return TableSchema{
		Name: "t",
		Columns: []Column{
			{Name: "k", Type: TInt},
			{Name: "v", Type: TFloat, Precision: 2},
			{Name: "s", Type: TText, MaxLen: 5},
			{Name: "d", Type: TDate},
		},
		PrimaryKey: []string{"k"},
	}
}

func TestInsertCoercion(t *testing.T) {
	tbl := NewTable(testSchema())
	if err := tbl.Insert(NewInt(1), NewInt(2), NewText("abc"), NewInt(100)); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][1].Typ != TFloat || tbl.Rows[0][1].F != 2 {
		t.Errorf("int->float coercion: %v", tbl.Rows[0][1])
	}
	if tbl.Rows[0][3].Typ != TDate || tbl.Rows[0][3].I != 100 {
		t.Errorf("int->date coercion: %v", tbl.Rows[0][3])
	}
	// Float rounding at column precision.
	if err := tbl.Insert(NewInt(2), NewFloat(1.239), NewText("x"), NewInt(0)); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[1][1].F != 1.24 {
		t.Errorf("precision rounding: %v", tbl.Rows[1][1])
	}
}

func TestInsertErrors(t *testing.T) {
	tbl := NewTable(testSchema())
	if err := tbl.Insert(NewInt(1)); err == nil {
		t.Error("arity mismatch should error")
	}
	if err := tbl.Insert(NewText("x"), NewFloat(0), NewText("a"), NewInt(0)); err == nil {
		t.Error("text into int should error")
	}
	if err := tbl.Insert(NewInt(1), NewFloat(0), NewText("toolong"), NewInt(0)); err == nil {
		t.Error("overlong text should error")
	}
}

func TestGetSetNegate(t *testing.T) {
	tbl := NewTable(testSchema())
	tbl.MustInsert(NewInt(5), NewFloat(1.5), NewText("a"), NewInt(10))
	tbl.MustInsert(NewInt(-7), NewFloat(2.5), NewText("b"), NewInt(20))
	if err := tbl.NegateColumn("k"); err != nil {
		t.Fatal(err)
	}
	v, _ := tbl.Get(0, "k")
	if v.I != -5 {
		t.Errorf("negate: %v", v)
	}
	v, _ = tbl.Get(1, "k")
	if v.I != 7 {
		t.Errorf("negate: %v", v)
	}
	if err := tbl.NegateColumn("s"); err == nil {
		t.Error("negating a text column should error")
	}
	if err := tbl.SetAll("v", NewFloat(9.99)); err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		if got, _ := tbl.Get(i, "v"); got.F != 9.99 {
			t.Errorf("SetAll row %d: %v", i, got)
		}
	}
	if _, err := tbl.Get(5, "k"); err == nil {
		t.Error("out-of-range Get should error")
	}
	if err := tbl.Set(0, "nope", NewInt(1)); err == nil {
		t.Error("unknown column Set should error")
	}
}

func TestKeepRange(t *testing.T) {
	tbl := NewTable(testSchema())
	for i := 0; i < 10; i++ {
		tbl.MustInsert(NewInt(int64(i)), NewFloat(0), NewText("x"), NewInt(0))
	}
	if err := tbl.KeepRange(3, 7); err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 4 {
		t.Fatalf("KeepRange kept %d rows", tbl.RowCount())
	}
	if v, _ := tbl.Get(0, "k"); v.I != 3 {
		t.Errorf("first kept row: %v", v)
	}
	if err := tbl.KeepRange(3, 5); err == nil {
		t.Error("invalid range should error")
	}
}

func TestSampleKeepsAtLeastOneRow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		tbl := NewTable(testSchema())
		for i := 0; i < 20; i++ {
			tbl.MustInsert(NewInt(int64(i)), NewFloat(0), NewText("x"), NewInt(0))
		}
		tbl.Sample(0.001, rng)
		if tbl.RowCount() == 0 {
			t.Fatal("sample emptied the table")
		}
		if tbl.RowCount() > 20 {
			t.Fatal("sample grew the table")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	tbl := NewTable(testSchema())
	tbl.MustInsert(NewInt(1), NewFloat(1), NewText("a"), NewInt(0))
	cp := tbl.Clone()
	if err := cp.Set(0, "k", NewInt(99)); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Get(0, "k"); v.I != 1 {
		t.Error("clone mutation leaked into original")
	}
}

func TestDeleteAndAppendCopy(t *testing.T) {
	tbl := NewTable(testSchema())
	tbl.MustInsert(NewInt(1), NewFloat(1), NewText("a"), NewInt(0))
	tbl.MustInsert(NewInt(2), NewFloat(2), NewText("b"), NewInt(0))
	idx, err := tbl.AppendRowCopy(0)
	if err != nil || idx != 2 {
		t.Fatalf("AppendRowCopy: %d, %v", idx, err)
	}
	if v, _ := tbl.Get(2, "k"); v.I != 1 {
		t.Errorf("copied row value %v", v)
	}
	if err := tbl.DeleteRow(0); err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 2 {
		t.Errorf("after delete: %d rows", tbl.RowCount())
	}
	if v, _ := tbl.Get(0, "k"); v.I != 2 {
		t.Errorf("row shifted wrong: %v", v)
	}
}
