package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"unmasque/internal/sqldb"
)

// Store is a disk-backed table store: one catalog (catalog.json), one
// heap file per table (<table>.heap) and one shared WAL (wal.log),
// all inside a single directory. It implements sqldb.TableStore, so a
// Database opened via OpenDatabase faults rows in lazily through the
// buffer pool on first access.
//
// Concurrency: one Store per directory, all operations serialized by
// an internal mutex. The extraction pipeline only reads after bulk
// load, so this is not a bottleneck; the mutex is about correctness
// of the WAL protocol, not throughput.
type Store struct {
	dir     string
	opt     Options
	schemas map[string]sqldb.TableSchema // keyed by lower-case name
	order   []string                     // catalog order (creation order)
	heaps   map[string]*heapFile
	wal     *wal
	pool    *Pool
	closed  bool

	// crash is the injected failure point for the recovery test suite
	// and SelfCheck; it fires once and leaves the store poisoned, as a
	// real crash would.
	crash crashStage

	mu sync.Mutex
}

type crashStage int

const (
	crashNone crashStage = iota
	// crashWALTorn: die mid-append, leaving a torn commit frame.
	crashWALTorn
	// crashBeforeApply: die after the commit fsync, before any heap
	// byte changes — recovery must redo the whole transaction.
	crashBeforeApply
	// crashMidApply: die after writing half of the first heap page —
	// recovery must overwrite the torn page from the logged image.
	crashMidApply
	// crashBeforeCheckpoint: die with the heaps fully applied and
	// synced but the WAL not yet truncated — redo must be idempotent.
	crashBeforeCheckpoint
)

const (
	catalogName = "catalog.json"
	walName     = "wal.log"
)

func (st *Store) lock()   { st.mu.Lock() }
func (st *Store) unlock() { st.mu.Unlock() }

// Open opens (creating if absent) the store in dir, recovering any
// committed-but-unapplied WAL transactions and truncating torn tails.
func Open(dir string, opt Options) (*Store, error) {
	opt.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open store: %w", err)
	}
	st := &Store{
		dir:     dir,
		opt:     opt,
		schemas: make(map[string]sqldb.TableSchema),
		heaps:   make(map[string]*heapFile),
		pool:    NewPool(opt.PoolPages),
	}
	if err := st.loadCatalog(); err != nil {
		return nil, err
	}
	w, recs, err := openWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	st.wal = w
	if err := st.redo(recs); err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}

func (st *Store) loadCatalog() error {
	raw, err := os.ReadFile(filepath.Join(st.dir, catalogName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: read catalog: %w", err)
	}
	var cat struct {
		Tables []sqldb.TableSchema `json:"tables"`
	}
	if err := json.Unmarshal(raw, &cat); err != nil {
		return fmt.Errorf("storage: decode catalog: %w", err)
	}
	for _, sch := range cat.Tables {
		name := strings.ToLower(sch.Name)
		st.schemas[name] = sch
		st.order = append(st.order, name)
	}
	return nil
}

// writeCatalog persists the catalog atomically (temp file + rename).
func (st *Store) writeCatalog() error {
	cat := struct {
		Tables []sqldb.TableSchema `json:"tables"`
	}{}
	for _, name := range st.order {
		cat.Tables = append(cat.Tables, st.schemas[name])
	}
	raw, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: encode catalog: %w", err)
	}
	tmp := filepath.Join(st.dir, catalogName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: write catalog: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("storage: write catalog: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: sync catalog: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: close catalog: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, catalogName)); err != nil {
		return fmt.Errorf("storage: install catalog: %w", err)
	}
	return nil
}

// redo replays committed WAL transactions onto the heaps and
// checkpoints. Trailing records without a commit are discarded.
func (st *Store) redo(recs []walRecord) error {
	applied := false
	var txn []walRecord
	for _, rec := range recs {
		if rec.typ != walCommit {
			txn = append(txn, rec)
			continue
		}
		for _, r := range txn {
			h, err := st.heap(r.table)
			if err != nil {
				return err
			}
			switch r.typ {
			case walPage:
				if err := h.writePage(int(r.page), r.image); err != nil {
					return err
				}
			case walSize:
				if err := h.truncate(int(r.page)); err != nil {
					return err
				}
			}
			applied = true
		}
		txn = txn[:0]
	}
	if applied {
		for _, h := range st.heaps {
			if err := h.sync(); err != nil {
				return err
			}
		}
	}
	// Checkpoint even when nothing was applied: a torn or uncommitted
	// tail may remain in the log and must not survive.
	return st.wal.reset()
}

// heap returns (opening or creating if needed) the heap file for a
// catalogued table. Redo may open heaps for tables the catalog lost —
// that cannot happen with the atomic catalog write, so require the
// catalog entry.
func (st *Store) heap(name string) (*heapFile, error) {
	name = strings.ToLower(name)
	if h, ok := st.heaps[name]; ok {
		return h, nil
	}
	if _, ok := st.schemas[name]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	h, err := openHeap(filepath.Join(st.dir, name+".heap"))
	if err != nil {
		return nil, err
	}
	st.heaps[name] = h
	return h, nil
}

// Tables returns the catalogued table names in creation order.
func (st *Store) Tables() []string {
	st.lock()
	defer st.unlock()
	return append([]string(nil), st.order...)
}

// Schema returns the schema of a catalogued table.
func (st *Store) Schema(name string) (sqldb.TableSchema, bool) {
	st.lock()
	defer st.unlock()
	sch, ok := st.schemas[strings.ToLower(name)]
	return sch, ok
}

// CreateTable adds a table to the catalog. Creating an existing
// table is an error; the store is a load-once corpus, not a DDL
// engine.
func (st *Store) CreateTable(sch sqldb.TableSchema) error {
	st.lock()
	defer st.unlock()
	name := strings.ToLower(sch.Name)
	if _, ok := st.schemas[name]; ok {
		return fmt.Errorf("storage: table %s already exists", name)
	}
	sch = sch.Clone()
	sch.Name = name
	st.schemas[name] = sch
	st.order = append(st.order, name)
	if err := st.writeCatalog(); err != nil {
		delete(st.schemas, name)
		st.order = st.order[:len(st.order)-1]
		return err
	}
	return nil
}

// SaveRows replaces a table's contents with rows, atomically with
// respect to crashes: the new page images and final page count are
// committed to the WAL (fsync) before any heap byte changes, the
// heap is rewritten and fsynced, then the WAL is checkpointed.
func (st *Store) SaveRows(table string, rows []sqldb.Row) error {
	st.lock()
	defer st.unlock()
	name := strings.ToLower(table)
	if _, ok := st.schemas[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	pages, err := packRows(rows)
	if err != nil {
		return err
	}
	for i, img := range pages {
		if err := st.wal.append(walRecord{typ: walPage, table: name, page: uint32(i), image: img}); err != nil {
			return err
		}
	}
	if err := st.wal.append(walRecord{typ: walSize, table: name, page: uint32(len(pages))}); err != nil {
		return err
	}
	if st.crash == crashWALTorn {
		// Simulate dying mid-append of the commit frame: write a
		// partial header and stop. Recovery must drop the whole
		// uncommitted transaction.
		var torn = []byte{7, 0, 0}
		if _, err := st.wal.f.Write(torn); err != nil {
			return err
		}
		if err := st.wal.sync(); err != nil {
			return err
		}
		st.closed = true
		return errCrashed
	}
	if err := st.wal.append(walRecord{typ: walCommit}); err != nil {
		return err
	}
	if err := st.wal.sync(); err != nil {
		return err
	}
	// --- commit point ---
	if st.crash == crashBeforeApply {
		st.closed = true
		return errCrashed
	}
	h, err := st.heap(name)
	if err != nil {
		return err
	}
	for i, img := range pages {
		if st.crash == crashMidApply && i == 0 {
			if _, werr := h.f.WriteAt(img[:PageSize/2], 0); werr != nil {
				return werr
			}
			st.closed = true
			return errCrashed
		}
		if err := h.writePage(i, img); err != nil {
			return err
		}
	}
	if err := h.truncate(len(pages)); err != nil {
		return err
	}
	if err := h.sync(); err != nil {
		return err
	}
	if st.crash == crashBeforeCheckpoint {
		st.closed = true
		return errCrashed
	}
	if err := st.wal.reset(); err != nil {
		return err
	}
	st.pool.InvalidateFile(h)
	return nil
}

// LoadRows returns the table's rows in exactly the order they were
// saved (pages in sequence, slots in insertion order) — the property
// the sqldb fingerprint/digest contract depends on. It implements
// sqldb.TableStore. Pages are faulted through the buffer pool.
func (st *Store) LoadRows(table string) ([]sqldb.Row, error) {
	st.lock()
	defer st.unlock()
	name := strings.ToLower(table)
	sch, ok := st.schemas[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	h, err := st.heap(name)
	if err != nil {
		return nil, err
	}
	var rows []sqldb.Row
	for p := 0; p < h.npages; p++ {
		fr, err := st.pool.Get(h, p)
		if err != nil {
			return nil, err
		}
		rows, err = unpackPage(fr.Data, len(sch.Columns), rows)
		st.pool.Unpin(fr, false)
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// BulkLoad creates (if needed) and fills one store table per table of
// db, preserving db's creation order for new tables.
func (st *Store) BulkLoad(db *sqldb.Database) error {
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			return fmt.Errorf("storage: bulk load: %w", err)
		}
		if _, ok := st.Schema(name); !ok {
			if err := st.CreateTable(t.Schema); err != nil {
				return err
			}
		}
		if err := st.SaveRows(name, t.SnapshotRows()); err != nil {
			return err
		}
	}
	return nil
}

// OpenDatabase builds a Database whose tables carry the store's
// schemas but no rows; rows fault in lazily through LoadRows on
// first access (see sqldb.AttachStore).
func (st *Store) OpenDatabase() (*sqldb.Database, error) {
	st.lock()
	order := append([]string(nil), st.order...)
	schemas := make([]sqldb.TableSchema, 0, len(order))
	for _, name := range order {
		schemas = append(schemas, st.schemas[name])
	}
	st.unlock()
	db := sqldb.NewDatabase()
	for _, sch := range schemas {
		if err := db.CreateTable(sch); err != nil {
			return nil, fmt.Errorf("storage: open database: %w", err)
		}
	}
	db.AttachStore(st, order)
	return db, nil
}

// PoolStats exposes the buffer pool counters.
func (st *Store) PoolStats() PoolStats { return st.pool.Stats() }

// Close flushes nothing (the WAL protocol leaves no deferred work)
// and releases the file handles.
func (st *Store) Close() error {
	st.lock()
	defer st.unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	var first error
	for _, h := range st.heaps {
		if err := h.close(); err != nil && first == nil {
			first = err
		}
	}
	if st.wal != nil {
		if err := st.wal.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// abandon drops the handles without the usual Close bookkeeping —
// the test-suite analogue of the process dying. The on-disk state is
// whatever the crash stage left.
func (st *Store) abandon() {
	st.lock()
	defer st.unlock()
	st.closed = true
	for _, h := range st.heaps {
		h.f.Close()
	}
	if st.wal != nil {
		st.wal.f.Close()
	}
}
