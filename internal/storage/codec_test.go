package storage

import (
	"errors"
	"math"
	"testing"

	"unmasque/internal/sqldb"
)

// codecRows exercises every value type, typed NULLs, and the edge
// payloads (empty text, NaN-adjacent floats, extreme ints).
func codecRows() []sqldb.Row {
	return []sqldb.Row{
		{sqldb.NewInt(0), sqldb.NewInt(-1), sqldb.NewInt(math.MaxInt64), sqldb.NewInt(math.MinInt64)},
		{sqldb.NewFloat(0), sqldb.NewFloat(-0.0), sqldb.NewFloat(math.SmallestNonzeroFloat64), sqldb.NewFloat(math.Inf(-1))},
		{sqldb.NewText(""), sqldb.NewText("hello"), sqldb.NewText("naïve — ünïcode\x00binary")},
		{sqldb.NewBool(true), sqldb.NewBool(false), sqldb.NewDate(19000), sqldb.NewDate(-3)},
		{sqldb.NewNull(sqldb.TInt), sqldb.NewNull(sqldb.TFloat), sqldb.NewNull(sqldb.TText), sqldb.NewNull(sqldb.TDate), sqldb.NewNull(sqldb.TBool)},
		{}, // zero-column row
	}
}

func TestRowRoundTrip(t *testing.T) {
	for i, row := range codecRows() {
		enc := appendRow(nil, row)
		got, err := decodeRow(enc)
		if err != nil {
			t.Fatalf("row %d: decode: %v", i, err)
		}
		if len(got) != len(row) {
			t.Fatalf("row %d: arity %d, want %d", i, len(got), len(row))
		}
		for c := range row {
			if got[c] != row[c] {
				t.Errorf("row %d col %d: %#v != %#v", i, c, got[c], row[c])
			}
		}
	}
}

// Float bits must survive exactly — fingerprint parity depends on it.
func TestFloatBitExact(t *testing.T) {
	v := sqldb.Value{Typ: sqldb.TFloat, F: math.Float64frombits(0x7ff8000000000001)} // quiet NaN payload
	enc := appendValue(nil, v)
	got, _, err := decodeValue(enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.F) != math.Float64bits(v.F) {
		t.Fatalf("NaN bits changed: %x != %x", math.Float64bits(got.F), math.Float64bits(v.F))
	}
}

func TestDecodeRowTruncation(t *testing.T) {
	enc := appendRow(nil, sqldb.Row{sqldb.NewInt(7), sqldb.NewText("abcdef")})
	// Every strict prefix must fail with ErrTornRecord, never panic.
	for n := 0; n < len(enc); n++ {
		if _, err := decodeRow(enc[:n]); !errors.Is(err, ErrTornRecord) {
			t.Fatalf("prefix %d/%d: err = %v, want ErrTornRecord", n, len(enc), err)
		}
	}
}

func TestDecodeRowTrailingBytes(t *testing.T) {
	enc := appendRow(nil, sqldb.Row{sqldb.NewInt(7)})
	enc = append(enc, 0xEE)
	if _, err := decodeRow(enc); !errors.Is(err, ErrTornRecord) {
		t.Fatalf("trailing byte: err = %v, want ErrTornRecord", err)
	}
}

func TestDecodeValueShortText(t *testing.T) {
	// Text tag claiming 100 payload bytes with only 3 present.
	enc := appendValue(nil, sqldb.NewText("abc"))
	enc[1] = 100 // little-endian length field
	if _, _, err := decodeValue(enc, 0); !errors.Is(err, ErrTornRecord) {
		t.Fatalf("short text: err = %v, want ErrTornRecord", err)
	}
}
