package storage

import (
	"testing"

	"unmasque/internal/sqldb"
	"unmasque/internal/workloads/enki"
	"unmasque/internal/workloads/job"
	"unmasque/internal/workloads/rubis"
	"unmasque/internal/workloads/tpcds"
	"unmasque/internal/workloads/tpch"
	"unmasque/internal/workloads/wilos"
)

// TestWorkloadFingerprintParity is the byte-identity contract of the
// disk tier: for every corpus workload, a database bulk-loaded into a
// store, closed, reopened and faulted back in must carry exactly the
// fingerprint of the in-memory original. Extraction keyed on those
// fingerprints (the probe cache, the run memoizer) is then oblivious
// to which tier the rows came from.
func TestWorkloadFingerprintParity(t *testing.T) {
	cases := []struct {
		name string
		mk   func(seed int64) *sqldb.Database
	}{
		{"tpch", func(seed int64) *sqldb.Database { return tpch.NewDatabase(tpch.ScaleTiny, seed) }},
		{"tpcds", func(seed int64) *sqldb.Database { return tpcds.NewDatabase(tpcds.ScaleTiny, seed) }},
		{"job", func(seed int64) *sqldb.Database { return job.NewDatabase(job.ScaleTiny, seed) }},
		{"enki", enki.NewDatabase},
		{"wilos", wilos.NewDatabase},
		{"rubis", rubis.NewDatabase},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mem := tc.mk(7)
			dir := t.TempDir()
			st, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := st.BulkLoad(mem); err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			st2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			disk, err := st2.OpenDatabase()
			if err != nil {
				t.Fatal(err)
			}
			if got, want := disk.Fingerprint(), mem.Fingerprint(); got != want {
				t.Fatalf("fingerprint diverged across the disk round-trip: %x != %x", got, want)
			}
			// Faulting happened through the pool, not some side channel.
			if s := st2.PoolStats(); s.Misses == 0 {
				t.Fatal("no pool traffic during fingerprinting")
			}
		})
	}
}
