package storage

import "testing"

func TestSelfCheck(t *testing.T) {
	if err := SelfCheck(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
