package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"unmasque/internal/sqldb"
)

// Row codec: the byte encoding of sqldb rows inside heap pages and
// probe-cache records. The encoding is exact — every sqldb.Value
// round-trips bit-for-bit (floats via IEEE-754 bits, dates/bools via
// their canonical int64 payloads) so that fingerprints and result
// digests computed over loaded rows are byte-identical to the ones
// computed over the rows that were saved. See DESIGN.md §13.1.
//
// Record layout:
//
//	[u16 ncols] value*
//
// Value layout:
//
//	[tag byte] payload
//
// where tag = type | 0x80 when NULL (no payload; the type survives so
// typed NULLs round-trip), and the payload is: u32 length + bytes for
// TText, 8-byte IEEE-754 bits for TFloat, and the int64 I field
// little-endian for everything else.

const nullBit = 0x80

// appendValue appends the encoding of v to buf.
func appendValue(buf []byte, v sqldb.Value) []byte {
	tag := byte(v.Typ) & 0x7f
	if v.Null {
		return append(buf, tag|nullBit)
	}
	buf = append(buf, tag)
	switch v.Typ {
	case sqldb.TText:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.S)))
		buf = append(buf, v.S...)
	case sqldb.TFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	default:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
	}
	return buf
}

// appendRow appends the encoding of row to buf.
func appendRow(buf []byte, row sqldb.Row) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(row)))
	for _, v := range row {
		buf = appendValue(buf, v)
	}
	return buf
}

// decodeValue decodes one value at b[off:], returning the value and
// the offset just past it.
func decodeValue(b []byte, off int) (sqldb.Value, int, error) {
	if off >= len(b) {
		return sqldb.Value{}, 0, fmt.Errorf("storage: short value at %d: %w", off, ErrTornRecord)
	}
	tag := b[off]
	off++
	v := sqldb.Value{Typ: sqldb.Type(tag &^ nullBit)}
	if tag&nullBit != 0 {
		v.Null = true
		return v, off, nil
	}
	switch v.Typ {
	case sqldb.TText:
		if off+4 > len(b) {
			return sqldb.Value{}, 0, fmt.Errorf("storage: short text length at %d: %w", off, ErrTornRecord)
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if n < 0 || off+n > len(b) {
			return sqldb.Value{}, 0, fmt.Errorf("storage: short text payload at %d: %w", off, ErrTornRecord)
		}
		v.S = string(b[off : off+n])
		off += n
	case sqldb.TFloat:
		if off+8 > len(b) {
			return sqldb.Value{}, 0, fmt.Errorf("storage: short float at %d: %w", off, ErrTornRecord)
		}
		v.F = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	default:
		if off+8 > len(b) {
			return sqldb.Value{}, 0, fmt.Errorf("storage: short int at %d: %w", off, ErrTornRecord)
		}
		v.I = int64(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return v, off, nil
}

// decodeRow decodes one full row record (as produced by appendRow).
// The record must be exactly consumed.
func decodeRow(b []byte) (sqldb.Row, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("storage: short row header: %w", ErrTornRecord)
	}
	ncols := int(binary.LittleEndian.Uint16(b))
	off := 2
	row := make(sqldb.Row, 0, ncols)
	for i := 0; i < ncols; i++ {
		v, next, err := decodeValue(b, off)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
		off = next
	}
	if off != len(b) {
		return nil, fmt.Errorf("storage: %d trailing bytes after row: %w", len(b)-off, ErrTornRecord)
	}
	return row, nil
}
