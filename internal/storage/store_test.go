package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"unmasque/internal/sqldb"
)

func testSchema(name string) sqldb.TableSchema {
	return sqldb.TableSchema{
		Name: name,
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt},
			{Name: "note", Type: sqldb.TText},
			{Name: "score", Type: sqldb.TFloat},
		},
	}
}

func intRow(id int, note string, score float64) sqldb.Row {
	return sqldb.Row{sqldb.NewInt(int64(id)), sqldb.NewText(note), sqldb.NewFloat(score)}
}

func rowsEqual(t *testing.T, ctx string, got, want []sqldb.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d arity %d, want %d", ctx, i, len(got[i]), len(want[i]))
		}
		for c := range want[i] {
			if got[i][c] != want[i][c] {
				t.Fatalf("%s: row %d col %d: %#v != %#v", ctx, i, c, got[i][c], want[i][c])
			}
		}
	}
}

func TestStoreRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable(testSchema("orders")); err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable(testSchema("lines")); err != nil {
		t.Fatal(err)
	}
	// Wide rows force multiple pages; order must survive page breaks.
	var orders []sqldb.Row
	for i := 0; i < 300; i++ {
		orders = append(orders, intRow(i, strings.Repeat("x", 100+i%37), float64(i)/3))
	}
	lines := []sqldb.Row{intRow(1, "only", 0.5)}
	if err := st.SaveRows("orders", orders); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveRows("lines", lines); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "same-handle", got, orders)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if names := st2.Tables(); len(names) != 2 || names[0] != "orders" || names[1] != "lines" {
		t.Fatalf("catalog order = %v", names)
	}
	if sch, ok := st2.Schema("ORDERS"); !ok || len(sch.Columns) != 3 {
		t.Fatalf("schema lookup failed: ok=%v", ok)
	}
	got, err = st2.LoadRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "reopened", got, orders)
	got, err = st2.LoadRows("lines")
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "reopened-lines", got, lines)
	if s := st2.PoolStats(); s.Misses == 0 {
		t.Fatal("loads did not go through the buffer pool")
	}
}

func TestStoreOverwriteShrinks(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.CreateTable(testSchema("t")); err != nil {
		t.Fatal(err)
	}
	var big []sqldb.Row
	for i := 0; i < 500; i++ {
		big = append(big, intRow(i, strings.Repeat("y", 200), 1))
	}
	if err := st.SaveRows("t", big); err != nil {
		t.Fatal(err)
	}
	small := []sqldb.Row{intRow(1, "tiny", 2)}
	if err := st.SaveRows("t", small); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadRows("t")
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "after-shrink", got, small)
	if h := st.heaps["t"]; h.npages != 1 {
		t.Fatalf("heap still %d pages after shrink, want 1", h.npages)
	}
	// Empty overwrite is legal too.
	if err := st.SaveRows("t", nil); err != nil {
		t.Fatal(err)
	}
	got, err = st.LoadRows("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("%d rows after empty save", len(got))
	}
}

func TestStoreErrors(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.SaveRows("ghost", nil); !errors.Is(err, ErrNoTable) {
		t.Fatalf("SaveRows unknown table: %v", err)
	}
	if _, err := st.LoadRows("ghost"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("LoadRows unknown table: %v", err)
	}
	if err := st.CreateTable(testSchema("t")); err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable(testSchema("T")); err == nil {
		t.Fatal("duplicate CreateTable accepted (case-insensitive)")
	}
	huge := sqldb.Row{sqldb.NewInt(1), sqldb.NewText(strings.Repeat("z", PageSize)), sqldb.NewFloat(0)}
	if err := st.SaveRows("t", []sqldb.Row{huge}); !errors.Is(err, ErrRowTooLarge) {
		t.Fatalf("oversized row: %v", err)
	}
}

// TestCrashRecoveryProperty drives the store through a random log of
// overwrites with crash stages injected at every point of the commit
// protocol, reopening after each simulated crash and comparing every
// table to an in-memory oracle. The oracle advances only when the
// transaction reached its commit point (the WAL commit fsync);
// pre-commit crashes must leave the previous contents intact.
func TestCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	tables := []string{"alpha", "beta"}
	oracle := map[string][]sqldb.Row{}

	reopen := func() *Store {
		st, err := Open(dir, Options{PoolPages: 4})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		return st
	}
	randRows := func() []sqldb.Row {
		n := rng.Intn(300)
		rows := make([]sqldb.Row, 0, n)
		for i := 0; i < n; i++ {
			row := sqldb.Row{
				sqldb.NewInt(rng.Int63()),
				sqldb.NewText(strings.Repeat("a", rng.Intn(180))),
				sqldb.NewFloat(float64(rng.Intn(1000)) / 7),
			}
			if rng.Intn(10) == 0 {
				row[rng.Intn(3)] = sqldb.NewNull(sqldb.TText)
			}
			rows = append(rows, row)
		}
		return rows
	}

	st := reopen()
	for _, name := range tables {
		if err := st.CreateTable(testSchema(name)); err != nil {
			t.Fatal(err)
		}
		oracle[name] = nil
	}

	stages := []crashStage{crashNone, crashWALTorn, crashBeforeApply, crashMidApply, crashBeforeCheckpoint}
	for step := 0; step < 60; step++ {
		name := tables[rng.Intn(len(tables))]
		rows := randRows()
		stage := stages[rng.Intn(len(stages))]
		st.crash = stage
		err := st.SaveRows(name, rows)

		// crashMidApply fires while writing page 0; an empty save has no
		// pages, so the injection point is never reached.
		fires := stage != crashNone && !(stage == crashMidApply && len(rows) == 0)
		if !fires {
			if err != nil {
				t.Fatalf("step %d (%v): %v", step, stage, err)
			}
			st.crash = crashNone
			oracle[name] = rows
		} else {
			if err != errCrashed {
				t.Fatalf("step %d (%v): err = %v, want simulated crash", step, stage, err)
			}
			st.abandon()
			st = reopen()
			if stage != crashWALTorn {
				// Past the commit point: redo must make the new rows win.
				oracle[name] = rows
			}
		}

		for _, tn := range tables {
			got, err := st.LoadRows(tn)
			if err != nil {
				t.Fatalf("step %d (%v): load %s: %v", step, stage, tn, err)
			}
			rowsEqual(t, fmt.Sprintf("step %d (%v) table %s", step, stage, tn), got, oracle[tn])
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is a no-op.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
