package storage

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
)

// RecoverTail scans an append-only file from the start and truncates
// any torn final record left behind by a crash mid-append.
//
// next consumes exactly one record from the reader and returns the
// number of encoded bytes it occupied. It reports io.EOF for a clean
// end of file and ErrTornRecord (or io.ErrUnexpectedEOF) when the
// bytes at the current position are a partial or corrupt record — the
// residue of an interrupted write. Any other error aborts recovery
// and is returned wrapped.
//
// On return the file is positioned at the end of the last intact
// record, the torn suffix (if any) has been truncated away, and torn
// reports how many bytes were dropped. The helper is shared by the
// service tier's JSONL job store and this package's binary WAL and
// probe-cache logs; both formats guarantee that records are appended
// atomically *in the log's framing* (length/CRC or newline), so a
// prefix of intact records is always a consistent state.
func RecoverTail(f *os.File, next func(r *bufio.Reader) (int64, error)) (good, torn int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("storage: recover tail: %w", err)
	}
	r := bufio.NewReader(f)
	tornTail := false
	for {
		n, err := next(r)
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrTornRecord) || errors.Is(err, io.ErrUnexpectedEOF) {
			tornTail = true
			break
		}
		if err != nil {
			return good, 0, fmt.Errorf("storage: recover tail: %w", err)
		}
		good += n
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return good, 0, fmt.Errorf("storage: recover tail: %w", err)
	}
	torn = size - good
	if torn < 0 {
		// next over-reported record sizes; refuse to truncate valid data.
		return good, 0, fmt.Errorf("storage: recover tail: record sizes exceed file size (%d > %d)", good, size)
	}
	if torn > 0 {
		if err := f.Truncate(good); err != nil {
			return good, torn, fmt.Errorf("storage: recover tail: truncate: %w", err)
		}
	} else if !tornTail {
		torn = 0
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		return good, torn, fmt.Errorf("storage: recover tail: %w", err)
	}
	return good, torn, nil
}
