package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"unmasque/internal/sqldb"
)

func cachePath(t *testing.T) string {
	return filepath.Join(t.TempDir(), "probecache.log")
}

func openCache(t *testing.T, path string) *ProbeCache {
	t.Helper()
	pc, err := OpenProbeCache(path)
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

func sampleResult() *sqldb.Result {
	return sqldb.RestoreResult(
		[]string{"o_orderkey", "revenue"},
		[]sqldb.Row{
			{sqldb.NewInt(7), sqldb.NewFloat(1234.5)},
			{sqldb.NewInt(9), sqldb.NewNull(sqldb.TFloat)},
		},
		false,
	)
}

func resultsEqual(t *testing.T, ctx string, got, want *sqldb.Result) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: got %v, want %v", ctx, got, want)
	}
	if got == nil {
		return
	}
	if got.AggEmptyInput() != want.AggEmptyInput() {
		t.Fatalf("%s: aggEmptyInput %v != %v", ctx, got.AggEmptyInput(), want.AggEmptyInput())
	}
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("%s: %d columns, want %d", ctx, len(got.Columns), len(want.Columns))
	}
	for i := range want.Columns {
		if got.Columns[i] != want.Columns[i] {
			t.Fatalf("%s: column %d = %q, want %q", ctx, i, got.Columns[i], want.Columns[i])
		}
	}
	rowsEqual(t, ctx, got.Rows, want.Rows)
}

func TestProbeCacheResultRoundTrip(t *testing.T) {
	path := cachePath(t)
	pc := openCache(t, path)
	ns := pc.Namespace(AppNamespace("tpch/Q3", 1))
	fp := sqldb.Fingerprint{1, 2, 3}
	want := sampleResult()

	if _, _, ok := ns.Get(fp); ok {
		t.Fatal("hit on empty cache")
	}
	ns.Put(fp, want, nil)
	res, err, ok := ns.Get(fp)
	if !ok || err != nil {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	resultsEqual(t, "same-handle", res, want)
	// Mutating the returned clone must not poison the cache.
	res.Rows[0][0] = sqldb.NewInt(999)
	res2, _, _ := ns.Get(fp)
	resultsEqual(t, "after-mutation", res2, want)
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}

	// The outcome survives a restart.
	pc2 := openCache(t, path)
	defer pc2.Close()
	if pc2.Len() != 1 {
		t.Fatalf("reloaded Len = %d, want 1", pc2.Len())
	}
	res, err, ok = pc2.Namespace(AppNamespace("tpch/Q3", 1)).Get(fp)
	if !ok || err != nil {
		t.Fatalf("reloaded get: ok=%v err=%v", ok, err)
	}
	resultsEqual(t, "reloaded", res, want)
}

func TestProbeCacheErrorRoundTrip(t *testing.T) {
	path := cachePath(t)
	pc := openCache(t, path)
	ns := pc.Namespace("app/x#seed=1")
	fpNoTable := sqldb.Fingerprint{1}
	fpApp := sqldb.Fingerprint{2}

	ns.Put(fpNoTable, nil, fmt.Errorf("exec: %w: part", sqldb.ErrNoSuchTable))
	ns.Put(fpApp, nil, errors.New("application rejected the instance"))
	pc.Close()

	pc2 := openCache(t, path)
	defer pc2.Close()
	ns2 := pc2.Namespace("app/x#seed=1")
	res, err, ok := ns2.Get(fpNoTable)
	if !ok || res != nil {
		t.Fatalf("ok=%v res=%v", ok, res)
	}
	if !errors.Is(err, sqldb.ErrNoSuchTable) {
		t.Fatalf("classification lost across restart: %v", err)
	}
	if want := fmt.Sprintf("exec: %v: part", sqldb.ErrNoSuchTable); err.Error() != want {
		t.Fatalf("message = %q, want %q", err.Error(), want)
	}
	_, err, ok = ns2.Get(fpApp)
	if !ok || err == nil || errors.Is(err, sqldb.ErrNoSuchTable) {
		t.Fatalf("app error mangled: ok=%v err=%v", ok, err)
	}
	if err.Error() != "application rejected the instance" {
		t.Fatalf("message = %q", err.Error())
	}
}

func TestProbeCacheNamespacesAreDisjoint(t *testing.T) {
	pc := openCache(t, cachePath(t))
	defer pc.Close()
	fp := sqldb.Fingerprint{42}
	a := pc.Namespace(AppNamespace("enki/posts_by_tag", 1))
	b := pc.Namespace(AppNamespace("enki/posts_by_tag", 2)) // different seed
	a.Put(fp, sampleResult(), nil)
	if _, _, ok := b.Get(fp); ok {
		t.Fatal("namespaces leak: same fingerprint visible across seeds")
	}
	if _, _, ok := a.Get(fp); !ok {
		t.Fatal("own namespace missed")
	}
}

func TestProbeCachePutIsIdempotent(t *testing.T) {
	path := cachePath(t)
	pc := openCache(t, path)
	ns := pc.Namespace("n")
	fp := sqldb.Fingerprint{5}
	want := sampleResult()
	ns.Put(fp, want, nil)
	ns.Put(fp, nil, errors.New("second writer must lose"))
	if pc.writes != 1 {
		t.Fatalf("writes = %d, want 1", pc.writes)
	}
	res, err, ok := ns.Get(fp)
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	resultsEqual(t, "first-write-wins", res, want)
	pc.Close()

	pc2 := openCache(t, path)
	defer pc2.Close()
	if pc2.Len() != 1 {
		t.Fatalf("Len = %d after duplicate puts, want 1", pc2.Len())
	}
}

func TestProbeCacheTornTailTruncated(t *testing.T) {
	path := cachePath(t)
	pc := openCache(t, path)
	pc.Namespace("n").Put(sqldb.Fingerprint{1}, sampleResult(), nil)
	pc.Close()
	intact, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: garbage partial frame at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0xFF, 0x01})
	f.Close()

	pc2 := openCache(t, path)
	defer pc2.Close()
	if pc2.Len() != 1 {
		t.Fatalf("Len = %d after torn tail, want 1", pc2.Len())
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != intact.Size() {
		t.Fatalf("torn bytes survive: %d != %d", after.Size(), intact.Size())
	}
	if _, _, ok := pc2.Namespace("n").Get(sqldb.Fingerprint{1}); !ok {
		t.Fatal("intact record lost during tail recovery")
	}
}

func TestProbeCacheDegradesToReadOnly(t *testing.T) {
	pc := openCache(t, cachePath(t))
	ns := pc.Namespace("n")
	ns.Put(sqldb.Fingerprint{1}, sampleResult(), nil)
	// Yank the log handle: the next append must fail, the cache must
	// keep serving memory hits, and Close must surface the failure.
	pc.f.Close()
	ns.Put(sqldb.Fingerprint{2}, nil, nil)
	if pc.err == nil {
		t.Fatal("append failure not recorded")
	}
	if _, _, ok := ns.Get(sqldb.Fingerprint{1}); !ok {
		t.Fatal("memory hit lost after degrade")
	}
	if err := pc.Close(); err == nil {
		t.Fatal("Close swallowed the sticky append error")
	}
}

func TestProbeCacheNilReceiverClose(t *testing.T) {
	var pc *ProbeCache
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppNamespaceFormat(t *testing.T) {
	if got := AppNamespace("tpch/Q3", 7); got != "app/tpch/Q3#seed=7" {
		t.Fatalf("AppNamespace = %q", got)
	}
}
