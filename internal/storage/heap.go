package storage

import (
	"fmt"
	"io"
	"os"

	"unmasque/internal/sqldb"
)

// heapFile is one table's page file: a flat sequence of PageSize
// slotted pages. It is a dumb byte store — all crash-consistency
// comes from the WAL above it (pages are only written after their
// images are durably logged), so a torn page write is always
// repairable by redo.
type heapFile struct {
	f      *os.File
	path   string
	npages int
}

func openHeap(path string) (*heapFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open heap: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: open heap: %w", err)
	}
	// A trailing partial page can only exist when a crash interrupted a
	// page write; the WAL still holds the committed image, so redo (or
	// the pre-transaction truncate) repairs it. Round down here.
	return &heapFile{f: f, path: path, npages: int(size / PageSize)}, nil
}

// readPage reads page n into buf (len PageSize) and verifies it.
func (h *heapFile) readPage(n int, buf []byte) error {
	if n < 0 || n >= h.npages {
		return fmt.Errorf("%w: %s: page %d of %d", ErrCorruptPage, h.path, n, h.npages)
	}
	if _, err := h.f.ReadAt(buf[:PageSize], int64(n)*PageSize); err != nil {
		return fmt.Errorf("storage: read %s page %d: %w", h.path, n, err)
	}
	if err := verifyPage(buf[:PageSize], uint32(n)); err != nil {
		return fmt.Errorf("%s: %w", h.path, err)
	}
	return nil
}

// writePage writes the image of page n, extending the file as needed.
func (h *heapFile) writePage(n int, img []byte) error {
	if _, err := h.f.WriteAt(img, int64(n)*PageSize); err != nil {
		return fmt.Errorf("storage: write %s page %d: %w", h.path, n, err)
	}
	if n >= h.npages {
		h.npages = n + 1
	}
	return nil
}

// truncate shrinks (or confirms) the heap to exactly npages.
func (h *heapFile) truncate(npages int) error {
	if err := h.f.Truncate(int64(npages) * PageSize); err != nil {
		return fmt.Errorf("storage: truncate %s: %w", h.path, err)
	}
	h.npages = npages
	return nil
}

func (h *heapFile) sync() error {
	if err := h.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync %s: %w", h.path, err)
	}
	return nil
}

func (h *heapFile) close() error {
	if err := h.f.Close(); err != nil {
		return fmt.Errorf("storage: close %s: %w", h.path, err)
	}
	return nil
}

// packRows encodes rows into finalized page images, preserving order:
// pages in sequence, slots within a page in insertion order.
func packRows(rows []sqldb.Row) ([][]byte, error) {
	var pages [][]byte
	cur := make([]byte, PageSize)
	initPage(cur, 0)
	dirty := false
	var scratch []byte
	for i, row := range rows {
		scratch = appendRow(scratch[:0], row)
		if pageInsert(cur, scratch) {
			dirty = true
			continue
		}
		if !dirty {
			return nil, fmt.Errorf("%w: row %d is %d bytes", ErrRowTooLarge, i, len(scratch))
		}
		finalizePage(cur)
		pages = append(pages, cur)
		cur = make([]byte, PageSize)
		initPage(cur, uint32(len(pages)))
		if !pageInsert(cur, scratch) {
			return nil, fmt.Errorf("%w: row %d is %d bytes", ErrRowTooLarge, i, len(scratch))
		}
		dirty = true
	}
	if dirty {
		finalizePage(cur)
		pages = append(pages, cur)
	}
	return pages, nil
}

// unpackPage decodes every record on a verified page image into rows,
// checking column arity against the table schema.
func unpackPage(img []byte, ncols int, into []sqldb.Row) ([]sqldb.Row, error) {
	n := pageCount(img)
	for i := 0; i < n; i++ {
		row, err := decodeRow(pageRecord(img, i))
		if err != nil {
			return into, err
		}
		if len(row) != ncols {
			return into, fmt.Errorf("%w: record has %d columns, schema has %d", ErrCorruptPage, len(row), ncols)
		}
		into = append(into, row)
	}
	return into, nil
}
