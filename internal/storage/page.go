package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Slotted heap page layout (little-endian, PageSize bytes):
//
//	[0:4)   magic "UMPG"
//	[4:8)   page number within the heap file
//	[8:10)  slot count
//	[10:12) free-space offset (records grow DOWN from PageSize)
//	[12:16) CRC32 (IEEE) over the page with this field zeroed
//	[16:..) slot directory, 4 bytes per slot: u16 offset, u16 length
//	        (grows UP towards the free-space offset)
//	[..:PageSize) record bytes
//
// Slots are append-only and never reordered, so iterating the slot
// directory in index order yields records in exactly their insertion
// order — the property the fingerprint/digest contract in codec.go
// depends on.

const (
	pageMagic  = 0x47504d55 // "UMPG" little-endian
	pageHdrLen = 16
	slotLen    = 4
)

// initPage formats buf (len PageSize) as an empty page.
func initPage(buf []byte, pageNo uint32) {
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:4], pageMagic)
	binary.LittleEndian.PutUint32(buf[4:8], pageNo)
	binary.LittleEndian.PutUint16(buf[8:10], 0)
	binary.LittleEndian.PutUint16(buf[10:12], PageSize)
}

// pageFree reports the bytes available for one more record (its slot
// included).
func pageFree(buf []byte) int {
	nslots := int(binary.LittleEndian.Uint16(buf[8:10]))
	freeOff := int(binary.LittleEndian.Uint16(buf[10:12]))
	return freeOff - (pageHdrLen + nslots*slotLen) - slotLen
}

// pageInsert appends rec to the page, returning false when it does
// not fit. Records larger than an empty page's capacity can never be
// inserted (ErrRowTooLarge at a higher layer).
func pageInsert(buf []byte, rec []byte) bool {
	if len(rec) > pageFree(buf) {
		return false
	}
	nslots := int(binary.LittleEndian.Uint16(buf[8:10]))
	freeOff := int(binary.LittleEndian.Uint16(buf[10:12]))
	off := freeOff - len(rec)
	copy(buf[off:freeOff], rec)
	slot := pageHdrLen + nslots*slotLen
	binary.LittleEndian.PutUint16(buf[slot:slot+2], uint16(off))
	binary.LittleEndian.PutUint16(buf[slot+2:slot+4], uint16(len(rec)))
	binary.LittleEndian.PutUint16(buf[8:10], uint16(nslots+1))
	binary.LittleEndian.PutUint16(buf[10:12], uint16(off))
	return true
}

// pageCount returns the number of records on the page.
func pageCount(buf []byte) int {
	return int(binary.LittleEndian.Uint16(buf[8:10]))
}

// pageRecord returns the i-th record's bytes (aliasing buf).
func pageRecord(buf []byte, i int) []byte {
	slot := pageHdrLen + i*slotLen
	off := int(binary.LittleEndian.Uint16(buf[slot : slot+2]))
	n := int(binary.LittleEndian.Uint16(buf[slot+2 : slot+4]))
	return buf[off : off+n]
}

// pageChecksum computes the page CRC with the checksum field zeroed.
func pageChecksum(buf []byte) uint32 {
	crc := crc32.NewIEEE()
	crc.Write(buf[0:12])
	var zero [4]byte
	crc.Write(zero[:])
	crc.Write(buf[pageHdrLen:])
	return crc.Sum32()
}

// finalizePage stamps the checksum; call after the last insert and
// before the page image leaves memory (WAL append or heap write).
func finalizePage(buf []byte) {
	binary.LittleEndian.PutUint32(buf[12:16], pageChecksum(buf))
}

// verifyPage validates magic, page number, slot-directory bounds and
// checksum of a page image read from disk.
func verifyPage(buf []byte, wantPage uint32) error {
	if len(buf) != PageSize {
		return fmt.Errorf("%w: page %d: %d bytes", ErrCorruptPage, wantPage, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != pageMagic {
		return fmt.Errorf("%w: page %d: bad magic", ErrCorruptPage, wantPage)
	}
	if got := binary.LittleEndian.Uint32(buf[4:8]); got != wantPage {
		return fmt.Errorf("%w: page %d: header says page %d", ErrCorruptPage, wantPage, got)
	}
	if got := binary.LittleEndian.Uint32(buf[12:16]); got != pageChecksum(buf) {
		return fmt.Errorf("%w: page %d: checksum mismatch", ErrCorruptPage, wantPage)
	}
	nslots := int(binary.LittleEndian.Uint16(buf[8:10]))
	freeOff := int(binary.LittleEndian.Uint16(buf[10:12]))
	if pageHdrLen+nslots*slotLen > freeOff || freeOff > PageSize {
		return fmt.Errorf("%w: page %d: slot directory overlaps data", ErrCorruptPage, wantPage)
	}
	for i := 0; i < nslots; i++ {
		slot := pageHdrLen + i*slotLen
		off := int(binary.LittleEndian.Uint16(buf[slot : slot+2]))
		n := int(binary.LittleEndian.Uint16(buf[slot+2 : slot+4]))
		if off < freeOff || off+n > PageSize {
			return fmt.Errorf("%w: page %d: slot %d out of bounds", ErrCorruptPage, wantPage, i)
		}
	}
	return nil
}
