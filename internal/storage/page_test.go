package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

func newTestPage(pageNo uint32) []byte {
	buf := make([]byte, PageSize)
	initPage(buf, pageNo)
	return buf
}

func TestPageInsertOrder(t *testing.T) {
	buf := newTestPage(3)
	var want [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf("record-%02d", i))
		if !pageInsert(buf, rec) {
			t.Fatalf("insert %d failed with %d bytes free", i, pageFree(buf))
		}
		want = append(want, rec)
	}
	if got := pageCount(buf); got != len(want) {
		t.Fatalf("pageCount = %d, want %d", got, len(want))
	}
	for i, rec := range want {
		if !bytes.Equal(pageRecord(buf, i), rec) {
			t.Errorf("record %d = %q, want %q", i, pageRecord(buf, i), rec)
		}
	}
	finalizePage(buf)
	if err := verifyPage(buf, 3); err != nil {
		t.Fatalf("verifyPage: %v", err)
	}
}

func TestPageFillToFull(t *testing.T) {
	buf := newTestPage(0)
	rec := bytes.Repeat([]byte{0xAB}, 100)
	n := 0
	for pageInsert(buf, rec) {
		n++
	}
	if n == 0 {
		t.Fatal("no record fit on an empty page")
	}
	// The refusal must be a capacity fact, not corruption.
	if free := pageFree(buf); free >= len(rec) {
		t.Fatalf("insert refused with %d bytes free for a %d-byte record", free, len(rec))
	}
	finalizePage(buf)
	if err := verifyPage(buf, 0); err != nil {
		t.Fatalf("full page does not verify: %v", err)
	}
	if pageCount(buf) != n {
		t.Fatalf("pageCount = %d, want %d", pageCount(buf), n)
	}
}

func TestPageFreeAccounting(t *testing.T) {
	buf := newTestPage(0)
	before := pageFree(buf)
	if want := PageSize - pageHdrLen - slotLen; before != want {
		t.Fatalf("empty pageFree = %d, want %d", before, want)
	}
	rec := []byte("0123456789")
	pageInsert(buf, rec)
	if got := pageFree(buf); got != before-len(rec)-slotLen {
		t.Fatalf("pageFree after insert = %d, want %d", got, before-len(rec)-slotLen)
	}
}

func TestVerifyPageCorruption(t *testing.T) {
	mk := func() []byte {
		buf := newTestPage(5)
		pageInsert(buf, []byte("payload"))
		finalizePage(buf)
		return buf
	}
	cases := []struct {
		name    string
		corrupt func(buf []byte)
	}{
		{"bad-magic", func(buf []byte) { buf[0] ^= 0xFF }},
		{"wrong-page-no", func(buf []byte) {
			binary.LittleEndian.PutUint32(buf[4:8], 99)
			finalizePage(buf) // checksum valid, page number still wrong
		}},
		{"flipped-data-bit", func(buf []byte) { buf[PageSize-1] ^= 0x01 }},
		{"slot-overlaps-header", func(buf []byte) {
			binary.LittleEndian.PutUint16(buf[8:10], PageSize) // absurd slot count
			finalizePage(buf)
		}},
		{"slot-out-of-bounds", func(buf []byte) {
			binary.LittleEndian.PutUint16(buf[pageHdrLen:pageHdrLen+2], PageSize-2)
			binary.LittleEndian.PutUint16(buf[pageHdrLen+2:pageHdrLen+4], 100)
			finalizePage(buf)
		}},
		{"short-image", func(buf []byte) {}}, // handled below
	}
	for _, tc := range cases {
		buf := mk()
		tc.corrupt(buf)
		if tc.name == "short-image" {
			buf = buf[:PageSize-1]
		}
		if err := verifyPage(buf, 5); !errors.Is(err, ErrCorruptPage) {
			t.Errorf("%s: err = %v, want ErrCorruptPage", tc.name, err)
		}
	}
}

func TestChecksumCoversWholePage(t *testing.T) {
	buf := newTestPage(0)
	pageInsert(buf, []byte("x"))
	finalizePage(buf)
	sum := pageChecksum(buf)
	// Flipping any non-checksum region must change the checksum.
	for _, off := range []int{0, 5, 9, pageHdrLen, PageSize / 2, PageSize - 1} {
		buf[off] ^= 0x40
		if pageChecksum(buf) == sum {
			t.Errorf("flip at %d not covered by checksum", off)
		}
		buf[off] ^= 0x40
	}
	// Flipping the checksum field itself must NOT change the computed value.
	buf[13] ^= 0x40
	if pageChecksum(buf) != sum {
		t.Error("checksum field bytes leaked into the checksum")
	}
}
