package storage

import (
	"fmt"

	"unmasque/internal/sqldb"
)

// SelfCheck runs the crash-recovery protocol end to end inside dir
// (which must be empty or absent): it creates a store, commits rows,
// then simulates each crash stage in turn — torn WAL append,
// committed-but-unapplied transaction, torn heap-page write,
// missed checkpoint — reopening after each and verifying the store
// recovers to exactly the last committed state. It backs the
// `unmasque -store-selfcheck` CLI verb and the ci.sh storage e2e.
func SelfCheck(dir string) error {
	sch := sqldb.TableSchema{
		Name: "sc",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt},
			{Name: "note", Type: sqldb.TText},
		},
	}
	mkRows := func(gen int, n int) []sqldb.Row {
		rows := make([]sqldb.Row, 0, n)
		for i := 0; i < n; i++ {
			rows = append(rows, sqldb.Row{
				sqldb.NewInt(int64(gen*1000 + i)),
				sqldb.NewText(fmt.Sprintf("gen-%d-row-%d", gen, i)),
			})
		}
		return rows
	}

	st, err := Open(dir, Options{})
	if err != nil {
		return err
	}
	if err := st.CreateTable(sch); err != nil {
		st.Close()
		return err
	}
	committed := mkRows(1, 500)
	if err := st.SaveRows("sc", committed); err != nil {
		st.Close()
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}

	verify := func(stage string, want []sqldb.Row) error {
		st, err := Open(dir, Options{})
		if err != nil {
			return fmt.Errorf("storage selfcheck %s: reopen: %w", stage, err)
		}
		defer st.Close()
		got, err := st.LoadRows("sc")
		if err != nil {
			return fmt.Errorf("storage selfcheck %s: load: %w", stage, err)
		}
		if len(got) != len(want) {
			return fmt.Errorf("storage selfcheck %s: recovered %d rows, want %d", stage, len(got), len(want))
		}
		for i := range got {
			if len(got[i]) != len(want[i]) {
				return fmt.Errorf("storage selfcheck %s: row %d arity mismatch", stage, i)
			}
			for c := range got[i] {
				if got[i][c] != want[i][c] {
					return fmt.Errorf("storage selfcheck %s: row %d col %d: %v != %v", stage, i, c, got[i][c], want[i][c])
				}
			}
		}
		return nil
	}

	// Each stage attempts to overwrite with generation-g rows, dies at
	// its injection point, and recovery must land on the last durable
	// state: the pre-crash rows for pre-commit stages, the new rows for
	// post-commit stages.
	stages := []struct {
		name       string
		stage      crashStage
		durableNew bool
	}{
		{"torn-wal-append", crashWALTorn, false},
		{"before-apply", crashBeforeApply, true},
		{"mid-page-write", crashMidApply, true},
		{"before-checkpoint", crashBeforeCheckpoint, true},
	}
	for g, tc := range stages {
		next := mkRows(g+2, 500)
		st, err := Open(dir, Options{})
		if err != nil {
			return fmt.Errorf("storage selfcheck %s: open: %w", tc.name, err)
		}
		st.crash = tc.stage
		err = st.SaveRows("sc", next)
		st.abandon()
		if err != errCrashed {
			if err == nil {
				return fmt.Errorf("storage selfcheck %s: SaveRows succeeded, want simulated crash", tc.name)
			}
			return fmt.Errorf("storage selfcheck %s: want simulated crash, got: %w", tc.name, err)
		}
		if tc.durableNew {
			committed = next
		}
		if err := verify(tc.name, committed); err != nil {
			return err
		}
	}
	return nil
}
